// Observability-layer tests: golden-trace determinism, span
// well-formedness invariants, Chrome-export shape, trace-vs-QueryStats
// reconciliation, the metrics registry, and the QueryStats accounting
// invariants asserted at driver aggregation time.
#include <algorithm>
#include <cctype>
#include <string>
#include <vector>

#include "driver/bench_driver.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "obs/trace_export.h"
#include "serve/server.h"
#include "serve/slo_monitor.h"
#include "test_helpers.h"
#include "topk/query_metrics.h"

namespace sparta::test {
namespace {

using obs::InstantKind;
using obs::SpanKind;
using obs::TraceEvent;
using obs::Tracer;

/// Simulator config for byte-identical trace runs: the coherence model
/// keys cache lines by real heap addresses, so an address-independent
/// cost model (coherence_miss == l1_hit) is required for traces — and
/// latencies — to replay exactly across executor instances (see
/// obs/trace.h).
sim::SimConfig TraceSimConfig(int workers, bool trace = true) {
  sim::SimConfig config;
  config.num_workers = workers;
  config.costs.coherence_miss = config.costs.l1_hit;
  config.trace.enabled = trace;
  return config;
}

struct TracedRun {
  topk::SearchResult result;
  exec::VirtualTime latency = 0;
  std::string json;
};

/// Runs `algo_name` on a traced simulator and exports the trace.
TracedRun RunTraced(const index::InvertedIndex& idx,
                    std::string_view algo_name,
                    const std::vector<TermId>& terms,
                    topk::SearchParams params, const sim::SimConfig& config,
                    const Tracer** tracer_out = nullptr,
                    sim::SimExecutor* keep = nullptr) {
  const auto algo = algos::MakeAlgorithm(algo_name);
  SPARTA_CHECK(algo != nullptr);
  params.trace.enabled = config.trace.enabled;
  TracedRun run;
  sim::SimExecutor local(config);
  sim::SimExecutor& executor = keep != nullptr ? *keep : local;
  auto ctx = executor.CreateQuery();
  run.result = algo->Run(idx, terms, params, *ctx);
  run.latency = ctx->end_time() - ctx->start_time();
  if (executor.tracer() != nullptr) {
    run.json = obs::ExportChromeTrace(*executor.tracer());
  }
  if (tracer_out != nullptr) *tracer_out = executor.tracer();
  return run;
}

// ---------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------

TEST(MetricsTest, RegistryHandlesAreStableAndSnapshotCopies) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.GetCounter("queries");
  c.Add();
  c.Add(4);
  EXPECT_EQ(&c, &reg.GetCounter("queries"));  // same handle on re-lookup
  reg.GetGauge("depth").Set(3);
  reg.GetGauge("depth").Add(-1);
  auto& h = reg.GetHistogram("latency_ns");
  for (int i = 1; i <= 100; ++i) h.Add(i * 1000);

  const obs::MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.counters.at("queries"), 5u);
  EXPECT_EQ(snap.gauges.at("depth"), 2);
  const obs::HistogramSummary& s = snap.histograms.at("latency_ns");
  EXPECT_EQ(s.count, 100u);
  EXPECT_EQ(s.min, 1000);
  EXPECT_EQ(s.max, 100000);
  EXPECT_GE(s.p99, s.p50);
  EXPECT_GE(s.p999, s.p99);
  EXPECT_LE(s.p999, s.max);

  // Snapshot is a copy: later updates do not retroactively change it.
  c.Add(100);
  EXPECT_EQ(snap.counters.at("queries"), 5u);
  EXPECT_EQ(reg.Snapshot().counters.at("queries"), 105u);
}

TEST(MetricsTest, AccumulateQueryStatsMatchesFields) {
  topk::QueryStats stats;
  stats.postings_processed = 120;
  stats.postings_total = 400;
  stats.heap_inserts = 7;
  stats.random_accesses = 3;
  stats.io_retries = 2;
  stats.faults_injected = 1;
  stats.latency = 5000;
  stats.queue_wait = 1000;
  obs::MetricsRegistry reg;
  topk::AccumulateQueryStats(stats, reg);
  topk::AccumulateQueryStats(stats, reg);
  const auto snap = reg.Snapshot();
  EXPECT_EQ(snap.counters.at("query.count"), 2u);
  EXPECT_EQ(snap.counters.at("query.postings_processed"), 240u);
  EXPECT_EQ(snap.counters.at("query.postings_total"), 800u);
  EXPECT_EQ(snap.counters.at("query.heap_inserts"), 14u);
  EXPECT_EQ(snap.counters.at("query.io_retries"), 4u);
  EXPECT_EQ(snap.histograms.at("query.latency_ns").count, 2u);
}

TEST(MetricsTest, TextFormatEmitsPrometheusShape) {
  obs::MetricsRegistry reg;
  reg.GetCounter("query.count").Add(5);
  reg.GetGauge("serve.queue_depth").Set(-2);
  auto& h = reg.GetHistogram("query.latency_ns");
  for (int i = 1; i <= 100; ++i) h.Add(i * 1000);

  const std::string text = obs::TextFormat(reg.Snapshot());
  // Names sanitized to [a-zA-Z0-9_:], one TYPE line per metric.
  EXPECT_NE(text.find("# TYPE query_count counter\nquery_count 5\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE serve_queue_depth gauge\n"
                      "serve_queue_depth -2\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE query_latency_ns summary\n"),
            std::string::npos);
  EXPECT_NE(text.find("query_latency_ns{quantile=\"0.5\"} "),
            std::string::npos);
  EXPECT_NE(text.find("query_latency_ns{quantile=\"0.99\"} "),
            std::string::npos);
  EXPECT_NE(text.find("query_latency_ns{quantile=\"0.999\"} "),
            std::string::npos);
  EXPECT_NE(text.find("query_latency_ns_count 100\n"), std::string::npos);
  EXPECT_NE(text.find("query_latency_ns_sum "), std::string::npos);
  // No unsanitized characters survive anywhere.
  for (const char ch : text) {
    EXPECT_TRUE(std::isalnum(static_cast<unsigned char>(ch)) ||
                std::string("#_:{}=\". \n-+e").find(ch) !=
                    std::string::npos)
        << "unexpected char " << ch;
  }
  // Deterministic: same snapshot, same bytes.
  EXPECT_EQ(text, obs::TextFormat(reg.Snapshot()));
}

// ---------------------------------------------------------------------
// QueryStats invariants (satellite: accounting-drift fix)
// ---------------------------------------------------------------------

TEST(QueryStatsTest, ConsistencyInvariants) {
  topk::QueryStats good;
  good.postings_processed = 10;
  good.postings_total = 20;
  good.latency = 100;
  EXPECT_TRUE(topk::ConsistentQueryStats(good));

  topk::QueryStats drift = good;
  drift.postings_processed = 21;  // processed > total
  EXPECT_FALSE(topk::ConsistentQueryStats(drift));

  topk::QueryStats negative = good;
  negative.latency = -1;
  EXPECT_FALSE(topk::ConsistentQueryStats(negative));
  negative = good;
  negative.queue_wait = -5;
  EXPECT_FALSE(topk::ConsistentQueryStats(negative));

  // Unknown total (0) reports no fraction and is not drift.
  topk::QueryStats unknown;
  unknown.postings_processed = 10;
  EXPECT_TRUE(topk::ConsistentQueryStats(unknown));
  EXPECT_EQ(unknown.PostingsFraction(), 0.0);
}

// Regression for the pBMW accounting drift: shallow moves overshoot a
// range job's docid boundary, and counting raw cursor deltas
// double-counted the skipped tail across jobs (postings_processed could
// exceed postings_total).
TEST(QueryStatsTest, PBmwPostingsStayWithinTotal) {
  const auto idx = MakeTinyIndex();
  topk::SearchParams params;
  params.k = 10;
  for (const std::uint64_t salt : {0u, 3u, 9u, 21u, 40u}) {
    const auto terms = PickQueryTerms(idx, 4, salt);
    for (const int workers : {2, 4, 8}) {
      const auto r = RunOnSim(idx, "pBMW", terms, params, workers);
      EXPECT_LE(r.stats.postings_processed, r.stats.postings_total)
          << "salt " << salt << " workers " << workers;
      EXPECT_TRUE(topk::ConsistentQueryStats(r.stats));
      EXPECT_TRUE(IsExactTopK(idx, terms, params.k, r));
    }
  }
}

// A deadline-stopped query must still report consistent accounting: the
// partial postings count stays within the total and PostingsFraction()
// lands in [0, 1].
TEST(QueryStatsTest, DeadlineStoppedQueryReportsConsistentFraction) {
  const auto idx = MakeTinyIndex();
  const auto terms = PickQueryTerms(idx, 4);
  topk::SearchParams params;
  params.k = 10;
  sim::SimConfig config;
  config.num_workers = 4;
  for (const char* algo : {"Sparta", "pNRA", "sNRA", "pRA", "pJASS"}) {
    // Reference run to pick a deadline that bites mid-query.
    const auto full = RunOnSim(idx, algo, terms, params, config);
    sim::SimExecutor executor(config);
    auto ctx = executor.CreateQuery();
    ctx->set_deadline(
        std::max<exec::VirtualTime>(1, full.stats.latency / 3));
    topk::SearchParams tight = params;
    tight.deadline = exec::kNever;  // deadline set on the context directly
    const auto algo_ptr = algos::MakeAlgorithm(algo);
    auto run = algo_ptr->Run(idx, terms, tight, *ctx);
    topk::ValidateQueryStats(run.stats, "test deadline");
    EXPECT_LE(run.stats.postings_processed, run.stats.postings_total)
        << algo;
    const double f = run.stats.PostingsFraction();
    EXPECT_GE(f, 0.0) << algo;
    EXPECT_LE(f, 1.0) << algo;
  }
}

// ---------------------------------------------------------------------
// Golden-trace determinism
// ---------------------------------------------------------------------

TEST(TraceDeterminismTest, SameSeedYieldsByteIdenticalExport) {
  const auto idx = MakeTinyIndex();
  const auto terms = PickQueryTerms(idx, 4);
  topk::SearchParams params;
  params.k = 10;
  const auto config = TraceSimConfig(4);
  for (const char* algo : {"Sparta", "pBMW", "pRA", "pJASS", "sNRA"}) {
    const auto a = RunTraced(idx, algo, terms, params, config);
    const auto b = RunTraced(idx, algo, terms, params, config);
    ASSERT_FALSE(a.json.empty()) << algo;
    EXPECT_EQ(a.json, b.json) << algo;  // byte-identical
    EXPECT_EQ(a.latency, b.latency) << algo;
  }
}

TEST(TraceDeterminismTest, TracingOnDoesNotChangeResultsOrClock) {
  const auto idx = MakeTinyIndex();
  const auto terms = PickQueryTerms(idx, 4);
  topk::SearchParams params;
  params.k = 10;
  for (const char* algo :
       {"Sparta", "pBMW", "pRA", "pNRA", "sNRA", "pJASS"}) {
    const auto off =
        RunTraced(idx, algo, terms, params, TraceSimConfig(4, false));
    const auto on =
        RunTraced(idx, algo, terms, params, TraceSimConfig(4, true));
    EXPECT_TRUE(off.json.empty()) << algo;
    ASSERT_EQ(off.result.entries.size(), on.result.entries.size()) << algo;
    for (std::size_t i = 0; i < off.result.entries.size(); ++i) {
      EXPECT_EQ(off.result.entries[i].doc, on.result.entries[i].doc);
      EXPECT_EQ(off.result.entries[i].score, on.result.entries[i].score);
    }
    // Trace hooks charge no virtual time: the final clock is unchanged.
    EXPECT_EQ(off.latency, on.latency) << algo;
    EXPECT_EQ(off.result.stats.postings_processed,
              on.result.stats.postings_processed)
        << algo;
  }
}

TEST(TraceDeterminismTest, TracingOffConstructsNoTracer) {
  sim::SimExecutor executor(TraceSimConfig(2, false));
  EXPECT_EQ(executor.tracer(), nullptr);
}

// ---------------------------------------------------------------------
// Span well-formedness
// ---------------------------------------------------------------------

/// Stack-checks one worker track: spans must strictly nest (a span
/// either contains or is disjoint from every other) and stay within
/// [lo, hi]. Instants only need to be in range.
void CheckWorkerTrack(const std::vector<TraceEvent>& events,
                      exec::VirtualTime lo, exec::VirtualTime hi) {
  std::vector<const TraceEvent*> spans;
  for (const TraceEvent& e : events) {
    EXPECT_GE(e.begin, lo);
    EXPECT_LE(e.end, hi);
    if (e.is_instant) {
      EXPECT_EQ(e.begin, e.end);
      continue;
    }
    EXPECT_GE(e.end, e.begin);
    spans.push_back(&e);
  }
  // Parents before children: begin ascending, end descending.
  std::sort(spans.begin(), spans.end(),
            [](const TraceEvent* a, const TraceEvent* b) {
              return a->begin != b->begin ? a->begin < b->begin
                                          : a->end > b->end;
            });
  std::vector<const TraceEvent*> stack;
  for (const TraceEvent* s : spans) {
    while (!stack.empty() && stack.back()->end <= s->begin) {
      stack.pop_back();
    }
    if (!stack.empty()) {
      // Open ancestor: the span must be fully contained (no partial
      // overlap on a single worker's monotone clock).
      EXPECT_GE(s->begin, stack.back()->begin);
      EXPECT_LE(s->end, stack.back()->end);
    }
    stack.push_back(s);
  }
}

TEST(TraceShapeTest, WorkerSpansNestAndStayInQueryBounds) {
  const auto idx = MakeTinyIndex();
  const auto terms = PickQueryTerms(idx, 4);
  topk::SearchParams params;
  params.k = 10;
  params.trace.enabled = true;
  const auto config = TraceSimConfig(4);
  for (const char* algo : {"Sparta", "pBMW", "pRA", "pJASS"}) {
    sim::SimExecutor executor(config);
    const auto algo_ptr = algos::MakeAlgorithm(algo);
    auto ctx = executor.CreateQuery();
    (void)algo_ptr->Run(idx, terms, params, *ctx);
    const Tracer* tracer = executor.tracer();
    ASSERT_NE(tracer, nullptr);
    EXPECT_GT(tracer->total_events(), 0u) << algo;
    for (int w = 0; w < tracer->num_workers(); ++w) {
      CheckWorkerTrack(tracer->track(w), ctx->start_time(),
                       ctx->end_time());
    }
    // Scheduler track: queue waits only; they may overlap but must be
    // well-formed and in range.
    for (const TraceEvent& e : tracer->track(tracer->scheduler_track())) {
      EXPECT_FALSE(e.is_instant);
      EXPECT_EQ(e.span_kind(), SpanKind::kQueueWait);
      EXPECT_GE(e.end, e.begin);
      EXPECT_GE(e.begin, ctx->start_time());
      EXPECT_LE(e.end, ctx->end_time());
    }
  }
}

TEST(TraceShapeTest, EveryExpectedKindAppearsForSparta) {
  const auto idx = MakeTinyIndex();
  const auto terms = PickQueryTerms(idx, 4);
  topk::SearchParams params;
  params.k = 10;
  const Tracer* tracer = nullptr;
  sim::SimExecutor executor(TraceSimConfig(4));
  RunTraced(idx, "Sparta", terms, params, TraceSimConfig(4), &tracer,
            &executor);
  ASSERT_NE(tracer, nullptr);
  EXPECT_GT(tracer->CountSpans(SpanKind::kJob), 0u);
  EXPECT_GT(tracer->CountSpans(SpanKind::kIoRead), 0u);
  EXPECT_GT(tracer->CountSpans(SpanKind::kDocMapAccess), 0u);
  EXPECT_GT(tracer->CountSpans(SpanKind::kPostingsScan), 0u);
  EXPECT_GT(tracer->CountSpans(SpanKind::kTermMapBuild), 0u);
}

// ---------------------------------------------------------------------
// Chrome trace-event export
// ---------------------------------------------------------------------

TEST(TraceExportTest, EmitsChromeTraceEventShape) {
  const auto idx = MakeTinyIndex();
  const auto terms = PickQueryTerms(idx, 4);
  topk::SearchParams params;
  params.k = 10;
  const auto run =
      RunTraced(idx, "Sparta", terms, params, TraceSimConfig(4));
  ASSERT_FALSE(run.json.empty());
  EXPECT_EQ(run.json.front(), '[');
  EXPECT_EQ(run.json.substr(run.json.size() - 2), "]\n");
  // Required trace-event fields.
  EXPECT_NE(run.json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(run.json.find("\"ts\":"), std::string::npos);
  EXPECT_NE(run.json.find("\"dur\":"), std::string::npos);
  EXPECT_NE(run.json.find("\"pid\":1"), std::string::npos);
  EXPECT_NE(run.json.find("\"tid\":0"), std::string::npos);
  // Track-naming metadata.
  EXPECT_NE(run.json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(run.json.find("thread_name"), std::string::npos);
  EXPECT_NE(run.json.find("worker 0"), std::string::npos);
  EXPECT_NE(run.json.find("scheduler"), std::string::npos);
  EXPECT_NE(run.json.find("serving"), std::string::npos);
  // Required span kinds.
  EXPECT_NE(run.json.find("\"name\":\"job\""), std::string::npos);
  EXPECT_NE(run.json.find("\"name\":\"io.read\""), std::string::npos);
  EXPECT_NE(run.json.find("\"name\":\"docmap.access\""),
            std::string::npos);
  // No floating-point formatting: every ts has fixed 3-digit micros.
  const auto ts = run.json.find("\"ts\":");
  ASSERT_NE(ts, std::string::npos);
  const auto dot = run.json.find('.', ts);
  ASSERT_NE(dot, std::string::npos);
  EXPECT_TRUE(std::isdigit(run.json[dot + 1]) &&
              std::isdigit(run.json[dot + 2]) &&
              std::isdigit(run.json[dot + 3]));
}

TEST(TraceExportTest, AttributionRowsAreSane) {
  const auto idx = MakeTinyIndex();
  const auto terms = PickQueryTerms(idx, 4);
  topk::SearchParams params;
  params.k = 10;
  const Tracer* tracer = nullptr;
  sim::SimExecutor executor(TraceSimConfig(4));
  RunTraced(idx, "Sparta", terms, params, TraceSimConfig(4), &tracer,
            &executor);
  ASSERT_NE(tracer, nullptr);
  const auto rows = obs::ComputeAttribution(*tracer);
  ASSERT_FALSE(rows.empty());
  exec::VirtualTime job_total = 0;
  exec::VirtualTime non_job_self = 0;
  for (const auto& row : rows) {
    EXPECT_GT(row.count, 0u);
    EXPECT_GE(row.total, 0);
    EXPECT_GE(row.self, 0);
    EXPECT_LE(row.self, row.total);
    if (row.kind == SpanKind::kJob) {
      job_total = row.total;
    } else {
      non_job_self += row.self;
    }
  }
  EXPECT_GT(job_total, 0);
  // Self time is exclusive: nested kinds can never exceed the enclosing
  // job time.
  EXPECT_LE(non_job_self, job_total);
  // Sorted by self descending.
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_GE(rows[i - 1].self, rows[i].self);
  }
}

// ---------------------------------------------------------------------
// Trace-vs-QueryStats reconciliation
// ---------------------------------------------------------------------

TEST(TraceReconcileTest, PostingsScanSpansSumToPostingsProcessed) {
  const auto idx = MakeTinyIndex();
  const auto terms = PickQueryTerms(idx, 4);
  topk::SearchParams params;
  params.k = 10;
  for (const char* algo : {"Sparta", "pRA", "pJASS"}) {
    const Tracer* tracer = nullptr;
    sim::SimExecutor executor(TraceSimConfig(4));
    const auto run = RunTraced(idx, algo, terms, params, TraceSimConfig(4),
                               &tracer, &executor);
    ASSERT_NE(tracer, nullptr) << algo;
    EXPECT_EQ(tracer->SumSpanArgB(SpanKind::kPostingsScan),
              run.result.stats.postings_processed)
        << algo;
  }
}

TEST(TraceReconcileTest, RandomIoSpansMatchRandomAccesses) {
  const auto idx = MakeTinyIndex();
  const auto terms = PickQueryTerms(idx, 3);
  topk::SearchParams params;
  params.k = 10;
  const Tracer* tracer = nullptr;
  sim::SimExecutor executor(TraceSimConfig(4));
  const auto run = RunTraced(idx, "pRA", terms, params, TraceSimConfig(4),
                             &tracer, &executor);
  ASSERT_NE(tracer, nullptr);
  ASSERT_GT(run.result.stats.random_accesses, 0u);
  // One io.read span per ReadPage; payload bit 0 marks random accesses.
  std::uint64_t random_spans = 0;
  for (int t = 0; t < tracer->num_workers(); ++t) {
    for (const TraceEvent& e : tracer->track(t)) {
      if (!e.is_instant && e.span_kind() == SpanKind::kIoRead &&
          (e.b & 1u) != 0) {
        ++random_spans;
      }
    }
  }
  EXPECT_EQ(random_spans, run.result.stats.random_accesses);
}

TEST(TraceReconcileTest, IoRetryInstantsSumToIoRetries) {
  const auto idx = MakeTinyIndex();
  const auto terms = PickQueryTerms(idx, 4);
  topk::SearchParams params;
  params.k = 10;
  auto config = TraceSimConfig(4);
  config.faults.seed = 23;
  config.faults.io_error_prob = 0.3;
  const Tracer* tracer = nullptr;
  sim::SimExecutor executor(config);
  const auto run =
      RunTraced(idx, "Sparta", terms, params, config, &tracer, &executor);
  ASSERT_NE(tracer, nullptr);
  ASSERT_GT(run.result.stats.io_retries, 0u);
  EXPECT_EQ(tracer->SumInstantArgA(InstantKind::kIoRetry),
            run.result.stats.io_retries);
  EXPECT_EQ(tracer->CountInstants(InstantKind::kIoRetry),
            run.result.stats.faults_injected);
}

TEST(TraceReconcileTest, AccumulateTraceMetricsMatchesTracerCounts) {
  const auto idx = MakeTinyIndex();
  const auto terms = PickQueryTerms(idx, 4);
  topk::SearchParams params;
  params.k = 10;
  const Tracer* tracer = nullptr;
  sim::SimExecutor executor(TraceSimConfig(4));
  RunTraced(idx, "Sparta", terms, params, TraceSimConfig(4), &tracer,
            &executor);
  ASSERT_NE(tracer, nullptr);
  obs::MetricsRegistry reg;
  obs::AccumulateTraceMetrics(*tracer, reg);
  const auto snap = reg.Snapshot();
  EXPECT_EQ(snap.counters.at("trace.spans.job"),
            tracer->CountSpans(SpanKind::kJob));
  EXPECT_EQ(snap.counters.at("trace.spans.io.read"),
            tracer->CountSpans(SpanKind::kIoRead));
  EXPECT_EQ(snap.histograms.at("trace.span_ns.job").count,
            tracer->CountSpans(SpanKind::kJob));
}

// ---------------------------------------------------------------------
// Serving-layer trace events
// ---------------------------------------------------------------------

TEST(TraceServeTest, AdmissionWaitsAndPolicyInstantsAppear) {
  const auto idx = MakeTinyIndex();
  const auto algo = algos::MakeAlgorithm("Sparta");
  std::vector<std::vector<TermId>> queries;
  for (const std::uint64_t salt : {0u, 3u, 11u}) {
    queries.push_back(PickQueryTerms(idx, 4, salt));
  }
  topk::SearchParams params;
  params.k = 10;

  // Reference latency to construct guaranteed overload.
  sim::SimConfig ref_config = TraceSimConfig(4, false);
  sim::SimExecutor ref(ref_config);
  auto ref_ctx = ref.CreateQuery();
  (void)algo->Run(idx, queries[0], params, *ref_ctx);
  const auto service = ref_ctx->end_time() - ref_ctx->start_time();
  ASSERT_GT(service, 0);

  serve::ServeConfig sc;
  sc.arrivals.seed = 5;
  sc.arrivals.rate_qps = 16.0 * 1e9 / static_cast<double>(service);
  sc.arrivals.count = 60;
  sc.slo = 50 * service;
  sc.admission.queue_capacity = 8;
  sc.deadline_from_slo = false;

  sim::SimExecutor executor(TraceSimConfig(4, true));
  serve::Server server(idx, *algo, sc);
  const auto r = server.ServeOnSim(executor, queries, params);
  const Tracer* tracer = executor.tracer();
  ASSERT_NE(tracer, nullptr);

  // One admission-wait span per dispatched query, on the serving track.
  EXPECT_EQ(tracer->CountSpans(SpanKind::kAdmissionWait),
            static_cast<std::uint64_t>(r.admitted));
  for (const TraceEvent& e : tracer->track(tracer->serving_track())) {
    if (!e.is_instant) {
      EXPECT_EQ(e.span_kind(), SpanKind::kAdmissionWait);
      EXPECT_GE(e.end, e.begin);
    }
  }
  // Turned-away arrivals appear as instants.
  EXPECT_EQ(tracer->CountInstants(InstantKind::kAdmissionReject),
            static_cast<std::uint64_t>(r.rejected_full));
  EXPECT_EQ(tracer->CountInstants(InstantKind::kAdmissionShed),
            static_cast<std::uint64_t>(r.shed));
  EXPECT_GT(r.rejected_full + r.shed, 0u);  // overload by construction

  const std::string json = obs::ExportChromeTrace(*tracer);
  EXPECT_NE(json.find("\"name\":\"admission.wait\""), std::string::npos);

  obs::MetricsRegistry reg;
  serve::AddServeMetrics(r, reg);
  const auto snap = reg.Snapshot();
  EXPECT_EQ(snap.counters.at("serve.offered"),
            static_cast<std::uint64_t>(r.offered));
  EXPECT_EQ(snap.counters.at("serve.admitted"),
            static_cast<std::uint64_t>(r.admitted));
  EXPECT_EQ(snap.histograms.at("serve.e2e_ns").count, r.e2e_ns.count());
}

TEST(TraceServeTest, ServeTraceIsByteIdenticalPerSeed) {
  const auto idx = MakeTinyIndex();
  const auto algo = algos::MakeAlgorithm("Sparta");
  std::vector<std::vector<TermId>> queries;
  queries.push_back(PickQueryTerms(idx, 4));
  topk::SearchParams params;
  params.k = 10;
  serve::ServeConfig sc;
  sc.arrivals.seed = 13;
  sc.arrivals.rate_qps = 3000.0;
  sc.arrivals.count = 20;
  std::string first;
  for (int rep = 0; rep < 2; ++rep) {
    sim::SimExecutor executor(TraceSimConfig(4, true));
    serve::Server server(idx, *algo, sc);
    (void)server.ServeOnSim(executor, queries, params);
    const std::string json = obs::ExportChromeTrace(*executor.tracer());
    if (rep == 0) {
      first = json;
    } else {
      EXPECT_EQ(first, json);
    }
  }
}

// ---------------------------------------------------------------------
// Threaded executor tracing
// ---------------------------------------------------------------------

TEST(TraceThreadedTest, JobSpansAppearAndAreWellFormed) {
  const auto idx = MakeTinyIndex();
  const auto terms = PickQueryTerms(idx, 4);
  topk::SearchParams params;
  params.k = 10;
  params.trace.enabled = true;
  exec::ThreadedExecutor::Options options;
  options.num_workers = 4;
  options.trace.enabled = true;
  exec::ThreadedExecutor executor(options);
  const auto algo = algos::MakeAlgorithm("Sparta");
  auto ctx = executor.CreateQuery();
  const auto result = algo->Run(idx, terms, params, *ctx);
  EXPECT_TRUE(result.ok());
  const Tracer* tracer = executor.tracer();
  ASSERT_NE(tracer, nullptr);
  EXPECT_GT(tracer->CountSpans(SpanKind::kJob), 0u);
  for (int t = 0; t < tracer->num_workers(); ++t) {
    for (const TraceEvent& e : tracer->track(t)) {
      EXPECT_GE(e.end, e.begin);
    }
  }
  // The export is structurally valid here too (timestamps are wall
  // clock, so no byte-determinism claim).
  const std::string json = obs::ExportChromeTrace(*tracer);
  EXPECT_NE(json.find("\"name\":\"job\""), std::string::npos);
}

// ---------------------------------------------------------------------
// p999 (satellite: tail quantile)
// ---------------------------------------------------------------------

TEST(MetricsTest, P999SeparatesFromMaxPastAThousandSamples) {
  obs::MetricsRegistry reg;
  auto& h = reg.GetHistogram("t");
  for (int i = 1; i <= 2000; ++i) h.Add(i);
  const obs::HistogramSummary s = reg.Snapshot().histograms.at("t");
  // Nearest-rank on 1..2000: the 1998th order statistic.
  EXPECT_EQ(s.p999, 1998);
  EXPECT_GT(s.p999, s.p99);
  EXPECT_LT(s.p999, s.max);
}

// ---------------------------------------------------------------------
// Time series
// ---------------------------------------------------------------------

TEST(TimeSeriesTest, BucketsCountersLevelsAndSamples) {
  obs::TimeSeries ts(obs::TimeSeriesConfig{exec::kMillisecond});
  ts.AddCount("offered", 100);          // bucket 0
  ts.AddCount("offered", 1'500'000, 2); // bucket 1
  ts.AddCount("offered", 3'200'000);    // bucket 3
  EXPECT_EQ(ts.num_buckets(), 4u);
  EXPECT_EQ(ts.Count("offered", 0), 1u);
  EXPECT_EQ(ts.Count("offered", 1), 2u);
  EXPECT_EQ(ts.Count("offered", 2), 0u);
  EXPECT_EQ(ts.TotalCount("offered"), 4u);
  EXPECT_EQ(ts.TotalCount("absent"), 0u);

  // Levels are last-write-wins per bucket and carry forward after.
  ts.SetLevel("burn_pm", 500, 100);
  ts.SetLevel("burn_pm", 900, 300);      // same bucket, wins
  ts.SetLevel("burn_pm", 2'100'000, 50); // bucket 2
  EXPECT_EQ(ts.Level("burn_pm", 0), 300);
  EXPECT_EQ(ts.Level("burn_pm", 1), 300);  // carried forward
  EXPECT_EQ(ts.Level("burn_pm", 2), 50);
  EXPECT_EQ(ts.Level("burn_pm", 3), 50);
  EXPECT_EQ(ts.MaxLevel("burn_pm"), 300);

  ts.AddSample("e2e", 100, 10);
  ts.AddSample("e2e", 200, 30);
  ASSERT_NE(ts.Samples("e2e", 0), nullptr);
  EXPECT_EQ(ts.Samples("e2e", 0)->count(), 2u);
  EXPECT_EQ(ts.Samples("e2e", 1), nullptr);
}

TEST(TimeSeriesTest, ToCsvIsDeterministicAndCoversEveryBucket) {
  obs::TimeSeries a(obs::TimeSeriesConfig{exec::kMillisecond});
  obs::TimeSeries b(obs::TimeSeriesConfig{exec::kMillisecond});
  for (obs::TimeSeries* ts : {&a, &b}) {
    ts->AddCount("completed", 100);
    ts->AddCount("completed", 2'500'000, 3);
    ts->SetLevel("breakers_open", 1'200'000, 1);
    ts->AddSample("e2e", 100, 5'000'000);
  }
  const std::string csv = a.ToCsv();
  EXPECT_EQ(csv, b.ToCsv());
  EXPECT_NE(csv.find("bucket"), std::string::npos);
  EXPECT_NE(csv.find("completed"), std::string::npos);
  EXPECT_NE(csv.find("breakers_open"), std::string::npos);
  // One data row per bucket (0..2) plus the header.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 4);
}

// ---------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------

TEST(FlightRecorderTest, RingEvictsOldestFifo) {
  obs::FlightRecorderConfig cfg;
  cfg.enabled = true;
  cfg.ring_capacity = 4;
  obs::FlightRecorder rec(2, cfg);
  EXPECT_EQ(rec.num_tracks(), 4);
  for (int i = 0; i < 10; ++i) {
    rec.AddSpan(0, SpanKind::kJob, i * 10, i * 10 + 5,
                static_cast<std::uint64_t>(i));
  }
  rec.AddInstant(1, InstantKind::kIoRetry, 7);
  EXPECT_EQ(rec.events_recorded(), 11u);
  EXPECT_EQ(rec.events_evicted(), 6u);

  const auto tail = rec.TrackSnapshot(0);
  ASSERT_EQ(tail.size(), 4u);  // capacity, oldest evicted
  for (std::size_t i = 0; i < tail.size(); ++i) {
    EXPECT_EQ(tail[i].a, 6u + i);  // oldest → newest: spans 6..9
  }
  EXPECT_EQ(rec.TrackSnapshot(1).size(), 1u);
  EXPECT_TRUE(rec.TrackSnapshot(2).empty());

  rec.Clear();
  EXPECT_TRUE(rec.TrackSnapshot(0).empty());
}

TEST(FlightRecorderTest, TriggerCapturesRingsAndCapsPostmortems) {
  obs::FlightRecorderConfig cfg;
  cfg.enabled = true;
  cfg.max_postmortems = 2;
  obs::FlightRecorder rec(1, cfg);
  rec.AddSpan(0, SpanKind::kShardRpc, 10, 20, 3, 7);
  rec.AddInstant(rec.serving_track(), InstantKind::kShardTimeout, 15, 3);

  obs::Postmortem* p1 =
      rec.Trigger(obs::AnomalyKind::kNodeCrash, 30, /*a=*/1);
  ASSERT_NE(p1, nullptr);
  EXPECT_EQ(p1->ordinal, 1u);
  EXPECT_EQ(p1->kind, obs::AnomalyKind::kNodeCrash);
  ASSERT_EQ(p1->tracks.size(), 3u);  // 1 worker + scheduler + serving
  ASSERT_EQ(p1->tracks[0].size(), 1u);
  EXPECT_EQ(p1->tracks[0][0].a, 3u);
  EXPECT_EQ(p1->tracks[0][0].b, 7u);

  // The capture froze the ring: later events do not leak in.
  rec.AddSpan(0, SpanKind::kShardRpc, 40, 50, 9, 9);
  EXPECT_EQ(p1->tracks[0].size(), 1u);

  obs::Postmortem* p2 =
      rec.Trigger(obs::AnomalyKind::kBreakerOpen, 60, 0, 1);
  ASSERT_NE(p2, nullptr);
  EXPECT_EQ(p2->ordinal, 2u);
  EXPECT_EQ(p1->ordinal, 1u);  // p1 stayed valid across vector growth

  // Past the cap: still counted, nothing captured.
  EXPECT_EQ(rec.Trigger(obs::AnomalyKind::kOom, 70), nullptr);
  EXPECT_EQ(rec.anomalies(), 3u);
  EXPECT_EQ(rec.postmortems().size(), 2u);
}

TEST(FlightRecorderTest, PostmortemExportIsByteDeterministic) {
  std::string first;
  for (int rep = 0; rep < 2; ++rep) {
    obs::FlightRecorderConfig cfg;
    cfg.enabled = true;
    obs::FlightRecorder rec(2, cfg);
    rec.AddSpan(0, SpanKind::kShardService, 100, 2500, 1,
                obs::PackShardAttempt(0, 1));
    rec.AddInstant(1, InstantKind::kNodeCrash, 1800, 1);
    obs::Postmortem* pm =
        rec.Trigger(obs::AnomalyKind::kNodeCrash, 1800, 1);
    ASSERT_NE(pm, nullptr);
    pm->state.push_back("node=1 reachable=0 served=0");
    obs::MetricsRegistry reg;
    reg.GetCounter("cluster.rpcs.sent").Add(4);
    reg.GetGauge("cluster.inflight").Set(2);
    pm->metrics = reg.Snapshot();

    const std::string json = obs::ExportPostmortem(*pm);
    EXPECT_NE(json.find("node.crash"), std::string::npos);
    EXPECT_NE(json.find("node=1 reachable=0"), std::string::npos);
    EXPECT_NE(json.find("cluster.rpcs.sent"), std::string::npos);
    if (rep == 0) {
      first = json;
    } else {
      EXPECT_EQ(first, json);  // byte-identical per identical inputs
    }
    // The operator rendering covers the same capture.
    const std::string text = driver::RenderPostmortem(*pm);
    EXPECT_NE(text.find("node.crash"), std::string::npos);
    EXPECT_NE(text.find("cluster.rpcs.sent"), std::string::npos);
  }
}

TEST(FlightRecorderTest, RecorderOffIsBitIdenticalOnChargesHonestly) {
  const auto idx = MakeTinyIndex();
  const auto terms = PickQueryTerms(idx, 4);
  topk::SearchParams params;
  params.k = 10;
  const auto algo = algos::MakeAlgorithm("Sparta");

  auto run_one = [&](sim::SimExecutor& executor) {
    auto ctx = executor.CreateQuery();
    auto result = algo->Run(idx, terms, params, *ctx);
    return std::make_pair(std::move(result),
                          ctx->end_time() - ctx->start_time());
  };
  auto config_with = [&](const obs::FlightRecorderConfig& flight) {
    sim::SimConfig config = TraceSimConfig(4, false);
    config.flight = flight;
    return config;
  };

  sim::SimExecutor off_exec(config_with({}));  // enabled = false
  const auto off = run_one(off_exec);
  EXPECT_EQ(off_exec.flight_recorder(), nullptr);

  // Zero-cost recording: same results AND the same virtual clock.
  obs::FlightRecorderConfig free;
  free.enabled = true;
  free.record_cost_ns = 0;
  sim::SimExecutor free_exec(config_with(free));
  const auto zero = run_one(free_exec);
  EXPECT_EQ(off.first.entries, zero.first.entries);
  EXPECT_EQ(off.second, zero.second);
  ASSERT_NE(free_exec.flight_recorder(), nullptr);
  EXPECT_GT(free_exec.flight_recorder()->events_recorded(), 0u);

  // Modeled-cost recording: identical answer, honestly larger clock.
  obs::FlightRecorderConfig priced;
  priced.enabled = true;
  sim::SimExecutor priced_exec(config_with(priced));
  const auto on = run_one(priced_exec);
  EXPECT_EQ(off.first.entries, on.first.entries);
  EXPECT_GT(on.second, off.second);
  // The overhead is proportional to events, not to work: on this
  // microsecond-scale query it is a few µs. The < 5% guarantee holds
  // at realistic scale and is gated by bench/bench_obs_overhead.cpp.
  EXPECT_LT(on.second - off.second, off.second);
}

// ---------------------------------------------------------------------
// SLO monitor
// ---------------------------------------------------------------------

TEST(SloMonitorTest, BurnRateFiresLatchesAndRecovers) {
  serve::SloMonitorConfig cfg;
  cfg.enabled = true;
  cfg.bucket_ns = exec::kMillisecond;  // 1 ms buckets for the test
  cfg.window_buckets = 3;
  cfg.target = 0.9;      // budget: 10% of completions over the SLO
  cfg.burn_alert = 2.0;  // alert at 20% violations
  cfg.min_samples = 5;
  const exec::VirtualTime slo = 100;
  serve::SloMonitor mon(cfg, slo);

  // Four good completions: under min_samples, nothing fires.
  for (int i = 0; i < 4; ++i) {
    const auto b = mon.OnCompletion(i * 10, 50, true);
    EXPECT_FALSE(b.fired);
  }
  EXPECT_EQ(mon.BurnPerMille(40), 0u);

  // The fifth violates: 1/5 = 20% of a 10% budget = burn 2.0 → fires.
  const auto breach = mon.OnCompletion(50, 200, false);
  EXPECT_TRUE(breach.fired);
  EXPECT_EQ(breach.burn_pm, 2000u);
  EXPECT_EQ(mon.breaches(), 1u);

  // Latched: a sustained burn does not re-fire per completion.
  const auto again = mon.OnCompletion(60, 300, false);
  EXPECT_FALSE(again.fired);
  EXPECT_GT(again.burn_pm, 2000u);
  EXPECT_EQ(mon.breaches(), 1u);

  // Far in the future the violating bucket leaves the window, burn
  // recovers, the latch clears...
  const exec::VirtualTime later = 10 * exec::kMillisecond;
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(mon.OnCompletion(later + i * 10, 50, true).fired);
  }
  EXPECT_EQ(mon.BurnPerMille(later + 100), 0u);

  // ... so a fresh burn episode reports as a second breach.
  std::uint64_t fired = 0;
  for (int i = 0; i < 3; ++i) {
    if (mon.OnCompletion(later + 200 + i * 10, 400, false).fired) {
      ++fired;
    }
  }
  EXPECT_EQ(fired, 1u);
  EXPECT_EQ(mon.breaches(), 2u);

  // The series recorded every completion and violation.
  EXPECT_EQ(mon.series().TotalCount("completed"), 14u);
  EXPECT_EQ(mon.series().TotalCount("slo_violation"), 5u);
  EXPECT_EQ(mon.series().TotalCount("goodput"), 9u);
}

TEST(SloMonitorTest, ServeOnSimFeedsSeriesAndTriggersRecorder) {
  const auto idx = MakeTinyIndex();
  const auto algo = algos::MakeAlgorithm("Sparta");
  std::vector<std::vector<TermId>> queries;
  for (const std::uint64_t salt : {0u, 3u, 11u}) {
    queries.push_back(PickQueryTerms(idx, 4, salt));
  }
  topk::SearchParams params;
  params.k = 10;

  // Reference service time to construct a guaranteed-violated SLO.
  sim::SimConfig ref_config = TraceSimConfig(4, false);
  sim::SimExecutor ref(ref_config);
  auto ref_ctx = ref.CreateQuery();
  (void)algo->Run(idx, queries[0], params, *ref_ctx);
  const auto service = ref_ctx->end_time() - ref_ctx->start_time();
  ASSERT_GT(service, 0);

  serve::ServeConfig sc;
  sc.arrivals.seed = 5;
  sc.arrivals.rate_qps = 8.0 * 1e9 / static_cast<double>(service);
  sc.arrivals.count = 40;
  sc.slo = service / 2;  // every completion violates
  // Shedding would honor the hopeless SLO by admitting nothing; turn
  // it off so completions actually happen and the burn rate can fire.
  sc.admission.shed_predicted_wait = false;
  sc.deadline_from_slo = false;
  sc.slo_monitor.enabled = true;
  sc.slo_monitor.min_samples = 5;

  std::string first_dump;
  for (int rep = 0; rep < 2; ++rep) {
    sim::SimConfig config = TraceSimConfig(4, false);
    config.flight.enabled = true;
    sim::SimExecutor executor(config);
    serve::Server server(idx, *algo, sc);
    const auto r = server.ServeOnSim(executor, queries, params);

    // The series carries the run: every outcome and completion bucketed.
    EXPECT_EQ(r.series.TotalCount("offered"),
              static_cast<std::uint64_t>(r.offered));
    EXPECT_EQ(r.series.TotalCount("admitted"),
              static_cast<std::uint64_t>(r.admitted));
    EXPECT_EQ(r.series.TotalCount("completed"),
              static_cast<std::uint64_t>(r.completed));
    EXPECT_EQ(r.series.TotalCount("goodput"),
              static_cast<std::uint64_t>(r.goodput));
    EXPECT_EQ(r.series.TotalCount("slo_violation"),
              static_cast<std::uint64_t>(r.completed));  // all violate
    ASSERT_GE(r.completed,
              static_cast<std::size_t>(sc.slo_monitor.min_samples));
    EXPECT_GE(r.slo_breaches, 1u);
    EXPECT_EQ(r.goodput, 0u);

    // The breach tripped the machine flight recorder.
    const obs::FlightRecorder* rec = executor.flight_recorder();
    ASSERT_NE(rec, nullptr);
    EXPECT_EQ(r.anomalies, rec->anomalies());
    EXPECT_GE(rec->anomalies(), r.slo_breaches);
    ASSERT_FALSE(rec->postmortems().empty());
    const std::string dump =
        obs::ExportPostmortem(*rec->postmortems().front());
    EXPECT_NE(dump.find("slo.breach"), std::string::npos);
    if (rep == 0) {
      first_dump = dump;
    } else {
      EXPECT_EQ(first_dump, dump);  // same seed, same bytes
    }
  }
}

// ---------------------------------------------------------------------
// Driver trace entry point
// ---------------------------------------------------------------------

TEST(TraceDriverTest, TraceSingleQueryProducesExportAndAttribution) {
  const auto idx = MakeTinyIndex();
  const auto terms = PickQueryTerms(idx, 4);
  const auto algo = algos::MakeAlgorithm("Sparta");
  topk::SearchParams params;
  params.k = 10;
  auto config = TraceSimConfig(4, false);  // TraceSingleQuery enables it
  const auto report =
      driver::TraceSingleQuery(idx, *algo, terms, params, config);
  EXPECT_TRUE(report.result.ok());
  EXPECT_GT(report.latency, 0);
  EXPECT_FALSE(report.json.empty());
  ASSERT_FALSE(report.attribution.empty());
  const auto table = driver::AttributionTable(report);
  EXPECT_EQ(table.title(), "where the time goes");
}

}  // namespace
}  // namespace sparta::test

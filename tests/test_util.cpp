// Unit tests: util — RNG, Zipf/alias sampling, histogram, fixed point,
// spinlock.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "util/fixed_point.h"
#include "util/histogram.h"
#include "util/mutex.h"
#include "util/racy.h"
#include "util/rng.h"
#include "util/serial_domain.h"
#include "util/spinlock.h"
#include "util/zipf.h"

namespace sparta::util {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 3);
}

TEST(RngTest, BelowIsInRangeAndRoughlyUniform) {
  Rng rng(7);
  std::vector<int> buckets(10, 0);
  constexpr int kDraws = 100'000;
  for (int i = 0; i < kDraws; ++i) {
    const auto v = rng.Below(10);
    ASSERT_LT(v, 10u);
    ++buckets[v];
  }
  for (const int count : buckets) {
    EXPECT_NEAR(count, kDraws / 10, kDraws / 100);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10'000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

class GeometricTest : public ::testing::TestWithParam<double> {};

TEST_P(GeometricTest, MeanMatchesTheory) {
  const double p = GetParam();
  Rng rng(11);
  double sum = 0;
  constexpr int kDraws = 200'000;
  for (int i = 0; i < kDraws; ++i) {
    sum += static_cast<double>(rng.Geometric(p));
  }
  const double expected = (1.0 - p) / p;  // failures before success
  EXPECT_NEAR(sum / kDraws, expected, 0.05 * (expected + 1.0));
}

INSTANTIATE_TEST_SUITE_P(Probabilities, GeometricTest,
                         ::testing::Values(0.1, 0.3, 0.5, 0.9, 1.0));

TEST(RngTest, GaussianMoments) {
  Rng rng(13);
  double sum = 0, sq = 0;
  constexpr int kDraws = 200'000;
  for (int i = 0; i < kDraws; ++i) {
    const double g = rng.Gaussian(5.0, 2.0);
    sum += g;
    sq += g * g;
  }
  const double mean = sum / kDraws;
  const double var = sq / kDraws - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(17);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  auto sorted = v;
  rng.Shuffle(v.begin(), v.end());
  EXPECT_NE(v, sorted);  // 1/10! chance of flake
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(ZipfTest, WeightsNormalizedAndDecreasing) {
  const auto w = ZipfMandelbrotWeights(1000, 1.07, 2.7);
  double sum = 0;
  for (std::size_t i = 0; i < w.size(); ++i) {
    sum += w[i];
    if (i > 0) {
      EXPECT_LE(w[i], w[i - 1]);
    }
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(AliasSamplerTest, MatchesTargetDistribution) {
  const std::vector<double> weights{1.0, 2.0, 3.0, 4.0};
  const AliasSampler sampler(weights);
  Rng rng(19);
  std::vector<int> counts(4, 0);
  constexpr int kDraws = 400'000;
  for (int i = 0; i < kDraws; ++i) ++counts[sampler.Sample(rng)];
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double expected = weights[i] / 10.0 * kDraws;
    EXPECT_NEAR(counts[i], expected, expected * 0.03) << "bucket " << i;
  }
}

TEST(AliasSamplerTest, ZeroWeightNeverSampled) {
  const std::vector<double> weights{0.0, 1.0, 0.0, 1.0};
  const AliasSampler sampler(weights);
  Rng rng(23);
  for (int i = 0; i < 10'000; ++i) {
    const auto s = sampler.Sample(rng);
    EXPECT_TRUE(s == 1 || s == 3);
  }
}

TEST(AliasSamplerTest, SingleBucket) {
  const AliasSampler sampler({5.0});
  Rng rng(29);
  EXPECT_EQ(sampler.Sample(rng), 0u);
}

TEST(HistogramTest, PercentilesExact) {
  Histogram h;
  for (int i = 100; i >= 1; --i) h.Add(i);  // 1..100
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.Min(), 1);
  EXPECT_EQ(h.Max(), 100);
  EXPECT_DOUBLE_EQ(h.Mean(), 50.5);
  EXPECT_EQ(h.Percentile(50), 50);
  EXPECT_EQ(h.Percentile(95), 95);
  EXPECT_EQ(h.Percentile(100), 100);
  EXPECT_EQ(h.Percentile(0), 1);
}

TEST(HistogramTest, MergeCombinesSamples) {
  Histogram a, b;
  a.Add(1);
  a.Add(2);
  b.Add(3);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.Max(), 3);
}

TEST(HistogramTest, TailPercentilesAndStreamingMerge) {
  // 1..2000: p999 must sit distinctly below max, and the streaming
  // min/max/sum aggregates must survive Merge without re-scanning.
  Histogram a, b;
  for (int i = 1; i <= 1000; ++i) a.Add(i);
  for (int i = 1001; i <= 2000; ++i) b.Add(i);
  EXPECT_EQ(a.P99(), 990);
  EXPECT_EQ(a.P999(), 999);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2000u);
  EXPECT_EQ(a.Min(), 1);
  EXPECT_EQ(a.Max(), 2000);
  EXPECT_EQ(a.P99(), 1980);
  EXPECT_EQ(a.P999(), 1998);
  EXPECT_DOUBLE_EQ(a.Mean(), 1000.5);
  // Merging an empty histogram is a no-op in both directions.
  Histogram empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 2000u);
  empty.Merge(a);
  EXPECT_EQ(empty.Min(), 1);
  EXPECT_EQ(empty.Max(), 2000);
}

TEST(FixedPointTest, RoundTripAndScale) {
  EXPECT_EQ(ToFixed(1.0), 1'000'000);
  EXPECT_EQ(ToFixed(0.5), 500'000);
  EXPECT_NEAR(FromFixed(ToFixed(3.14159)), 3.14159, 1e-6);
  EXPECT_EQ(ToFixed(0.0000004), 0);  // rounds below resolution
}

TEST(SpinlockTest, MutualExclusionUnderContention) {
  Spinlock lock;
  long counter = 0;
  constexpr int kThreads = 4;
  constexpr int kIncrements = 20'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        lock.lock();
        ++counter;
        lock.unlock();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, static_cast<long>(kThreads) * kIncrements);
}

TEST(SpinlockTest, ImmediateYieldThresholdStillExcludes) {
  // yield_threshold = 1: every failed inner test yields (the TSan
  // default); mutual exclusion must be unaffected.
  Spinlock lock(/*yield_threshold=*/1);
  long counter = 0;
  constexpr int kThreads = 4;
  constexpr int kIncrements = 5'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        lock.lock();
        ++counter;
        lock.unlock();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, static_cast<long>(kThreads) * kIncrements);
}

TEST(SpinlockTest, TryLock) {
  Spinlock lock;
  EXPECT_TRUE(lock.try_lock());
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(SpinlockTest, GuardReleasesOnScopeExit) {
  Spinlock lock;
  {
    const SpinlockGuard guard(lock);
    EXPECT_FALSE(lock.try_lock());
  }
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(SpinlockTest, GuardMutualExclusionUnderContention) {
  Spinlock lock;
  long counter = 0;
  constexpr int kThreads = 4;
  constexpr int kIncrements = 20'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        const SpinlockGuard guard(lock);
        ++counter;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, static_cast<long>(kThreads) * kIncrements);
}

TEST(MutexTest, MutexLockExcludesUnderContention) {
  Mutex mu;
  long counter = 0;
  constexpr int kThreads = 4;
  constexpr int kIncrements = 20'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        const MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, static_cast<long>(kThreads) * kIncrements);
}

TEST(MutexTest, CondVarWakesWaiter) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  int observed = 0;
  std::thread waiter([&] {
    const MutexLock lock(mu);
    while (!ready) cv.Wait(mu);
    observed = 42;
  });
  {
    const MutexLock lock(mu);
    ready = true;
  }
  cv.NotifyOne();
  waiter.join();
  EXPECT_EQ(observed, 42);
}

namespace {
/// Minimal stand-in for exec::QueryContext's allowlist hook.
struct RecordingContext {
  const void* ptr = nullptr;
  std::size_t size = 0;
  std::string label;
  void AnnotateBenignRace(const void* p, std::size_t s, const char* l) {
    ptr = p;
    size = s;
    label = l;
  }
};
}  // namespace

TEST(RacyTest, WrapsAtomicAndRegistersWholeObject) {
  Racy<std::atomic<int>> flag{0};
  flag.store(7, std::memory_order_relaxed);
  EXPECT_EQ(flag.load(std::memory_order_relaxed), 7);

  RecordingContext ctx;
  flag.RegisterBenign(ctx, "test.flag");
  EXPECT_EQ(ctx.ptr, static_cast<const void*>(&flag));
  EXPECT_EQ(ctx.size, sizeof(std::atomic<int>));
  EXPECT_EQ(ctx.label, "test.flag");
}

TEST(RacyTest, ContiguousContainerRegistersElementStorage) {
  Racy<std::vector<int>> values{1, 2, 3, 4};
  RecordingContext ctx;
  values.RegisterBenign(ctx, "test.vec");
  EXPECT_EQ(ctx.ptr, static_cast<const void*>(values.data()));
  EXPECT_EQ(ctx.size, 4 * sizeof(int));
  EXPECT_EQ(ctx.label, "test.vec");
}

TEST(SerialDomainTest, SequentialGuardsReenterAndCopyIsFresh) {
  SerialDomain domain;
  { const SerialGuard guard(domain); }
  { const SerialGuard guard(domain); }  // sequential re-entry is fine
  // Copying a domain owner must produce an un-entered domain (the
  // capability tracks an execution context, not data).
  const SerialGuard held(domain);
  SerialDomain copy(domain);
  { const SerialGuard guard(copy); }
  SUCCEED();
}

}  // namespace
}  // namespace sparta::util

// Serving-layer tests: seeded arrivals, admission control, the
// degradation ladder, the circuit breaker, and end-to-end open-loop
// serving on both executors.
#include <algorithm>
#include <vector>

#include "serve/policy.h"
#include "serve/server.h"
#include "test_helpers.h"

namespace sparta::test {
namespace {

using serve::AdmissionConfig;
using serve::AdmissionController;
using serve::ArrivalConfig;
using serve::ArrivalKind;
using serve::BreakerConfig;
using serve::CircuitBreaker;
using serve::DegradationLadder;
using serve::GenerateArrivals;
using serve::ServeConfig;
using serve::ServeResult;
using topk::AdmissionOutcome;

// ---------------------------------------------------------------------
// Arrival generation
// ---------------------------------------------------------------------

TEST(ArrivalsTest, PoissonSeededReplayIsBitIdentical) {
  ArrivalConfig config;
  config.kind = ArrivalKind::kPoisson;
  config.seed = 42;
  config.rate_qps = 5000.0;
  config.count = 2000;
  const auto a = GenerateArrivals(config);
  const auto b = GenerateArrivals(config);
  ASSERT_EQ(a.size(), config.count);
  EXPECT_EQ(a, b);  // bit-identical replay

  config.seed = 43;
  const auto c = GenerateArrivals(config);
  EXPECT_NE(a, c);
}

TEST(ArrivalsTest, BurstySeededReplayIsBitIdentical) {
  ArrivalConfig config;
  config.kind = ArrivalKind::kBursty;
  config.seed = 7;
  config.rate_qps = 2000.0;
  config.count = 1500;
  const auto a = GenerateArrivals(config);
  const auto b = GenerateArrivals(config);
  EXPECT_EQ(a, b);
}

TEST(ArrivalsTest, SchedulesAreStrictlyIncreasingAtMeanRate) {
  for (const auto kind : {ArrivalKind::kPoisson, ArrivalKind::kBursty}) {
    ArrivalConfig config;
    config.kind = kind;
    config.seed = 11;
    config.rate_qps = 10'000.0;
    config.count = 5000;
    const auto plan = GenerateArrivals(config);
    ASSERT_EQ(plan.size(), config.count);
    EXPECT_GT(plan.front(), 0);
    for (std::size_t i = 1; i < plan.size(); ++i) {
      EXPECT_LT(plan[i - 1], plan[i]);
    }
    // Long-run rate within 15% of nominal for both processes.
    const double seconds = static_cast<double>(plan.back()) / 1e9;
    const double rate = static_cast<double>(plan.size()) / seconds;
    EXPECT_NEAR(rate, config.rate_qps, 0.15 * config.rate_qps);
  }
}

TEST(ArrivalsTest, BurstyIsBurstierThanPoisson) {
  ArrivalConfig config;
  config.seed = 13;
  config.rate_qps = 5000.0;
  config.count = 4000;
  config.kind = ArrivalKind::kPoisson;
  const auto poisson = GenerateArrivals(config);
  config.kind = ArrivalKind::kBursty;
  config.burst_rate_factor = 10.0;
  const auto bursty = GenerateArrivals(config);

  // Squared-coefficient-of-variation of inter-arrival gaps: ~1 for
  // Poisson, substantially larger for the MMPP.
  const auto scv = [](const std::vector<exec::VirtualTime>& plan) {
    double mean = 0.0, m2 = 0.0;
    const double n = static_cast<double>(plan.size() - 1);
    for (std::size_t i = 1; i < plan.size(); ++i) {
      mean += static_cast<double>(plan[i] - plan[i - 1]);
    }
    mean /= n;
    for (std::size_t i = 1; i < plan.size(); ++i) {
      const double d = static_cast<double>(plan[i] - plan[i - 1]) - mean;
      m2 += d * d;
    }
    return m2 / n / (mean * mean);
  };
  EXPECT_NEAR(scv(poisson), 1.0, 0.3);
  EXPECT_GT(scv(bursty), 2.0);
}

// ---------------------------------------------------------------------
// Admission control
// ---------------------------------------------------------------------

TEST(AdmissionTest, RejectsWhenFullAndShedsOnPredictedWait) {
  AdmissionConfig config;
  config.queue_capacity = 2;
  config.shed_predicted_wait = true;
  config.initial_departure_gap_ns = 4 * exec::kMillisecond;
  config.initial_service_ns = exec::kMillisecond;
  const exec::VirtualTime slo = 10 * exec::kMillisecond;
  AdmissionController ctrl(config, slo);

  // Depth 0: predicted wait 0 + service 1ms <= 10ms -> admit.
  EXPECT_EQ(ctrl.Decide(0), AdmissionOutcome::kAdmitted);
  // Depth 1: predicted wait 4ms + 1ms <= 10ms -> admit.
  EXPECT_EQ(ctrl.Decide(0), AdmissionOutcome::kAdmitted);
  // Queue full at capacity 2 -> reject regardless of estimates.
  EXPECT_EQ(ctrl.Decide(0), AdmissionOutcome::kRejectedFull);

  // Drain one; depth 1 again, but now with a slower learned drain rate
  // the predicted wait forfeits the SLO -> shed.
  ctrl.OnDispatch(0);
  AdmissionConfig slow = config;
  slow.initial_departure_gap_ns = 12 * exec::kMillisecond;
  AdmissionController slow_ctrl(slow, slo);
  EXPECT_EQ(slow_ctrl.Decide(0), AdmissionOutcome::kAdmitted);
  EXPECT_EQ(slow_ctrl.Decide(0), AdmissionOutcome::kShedPredictedWait);
}

TEST(AdmissionTest, SheddingIsMonotoneInQueueDepth) {
  // With fixed drain estimates, if depth d sheds then every depth > d
  // sheds: predicted wait is linear in depth.
  AdmissionConfig config;
  config.queue_capacity = 100;
  config.initial_departure_gap_ns = exec::kMillisecond;
  config.initial_service_ns = exec::kMillisecond;
  AdmissionController ctrl(config, 6 * exec::kMillisecond);
  std::size_t admitted = 0;
  bool seen_shed = false;
  for (int i = 0; i < 20; ++i) {
    const auto outcome = ctrl.Decide(0);
    if (outcome == AdmissionOutcome::kAdmitted) {
      EXPECT_FALSE(seen_shed) << "admit after shed at depth " << i;
      ++admitted;
    } else {
      EXPECT_EQ(outcome, AdmissionOutcome::kShedPredictedWait);
      seen_shed = true;
    }
  }
  // Sheds once depth * 1ms + 1ms > 6ms, i.e. from depth 6 on.
  EXPECT_EQ(admitted, 6u);
  EXPECT_TRUE(seen_shed);
}

TEST(AdmissionTest, EwmaTracksObservedDepartures) {
  AdmissionConfig config;
  config.ewma_alpha = 0.5;
  config.initial_departure_gap_ns = exec::kMillisecond;
  AdmissionController ctrl(config, exec::kNever);
  // Departures 2ms apart pull the gap estimate from 1ms toward 2ms.
  ctrl.OnComplete(10 * exec::kMillisecond, exec::kMillisecond);
  ctrl.OnComplete(12 * exec::kMillisecond, exec::kMillisecond);
  ctrl.OnComplete(14 * exec::kMillisecond, exec::kMillisecond);
  (void)ctrl.Decide(0);  // depth 1
  const auto wait = ctrl.PredictedWait();
  EXPECT_GT(wait, exec::kMillisecond * 3 / 2);
  EXPECT_LT(wait, 2 * exec::kMillisecond);
}

// ---------------------------------------------------------------------
// Degradation ladder
// ---------------------------------------------------------------------

TEST(LadderTest, PicksRungByOccupancyAndTightensBudgets) {
  const auto ladder = DegradationLadder::Default();
  EXPECT_EQ(ladder.PickRung(0.0), 0u);
  EXPECT_EQ(ladder.PickRung(0.24), 0u);
  EXPECT_EQ(ladder.PickRung(0.30), 1u);
  EXPECT_EQ(ladder.PickRung(0.60), 2u);
  EXPECT_EQ(ladder.PickRung(1.00), 3u);

  topk::SearchParams base;
  base.k = 10;
  const exec::VirtualTime slo = 20 * exec::kMillisecond;
  exec::VirtualTime prev = exec::kNever;
  double prev_f = 0.0, prev_p = 2.0;
  for (std::size_t rung = 0; rung < ladder.num_rungs(); ++rung) {
    const auto params = ladder.Apply(rung, base, slo, slo);
    EXPECT_LT(params.deadline, prev) << "rung " << rung;
    EXPECT_GE(params.f, std::max(prev_f, 1.0));
    EXPECT_LE(params.p, prev_p);
    prev = params.deadline;
    prev_f = params.f;
    prev_p = params.p;
  }
}

TEST(LadderTest, SlackCapsDeadline) {
  const auto ladder = DegradationLadder::Default();
  topk::SearchParams base;
  const exec::VirtualTime slo = 20 * exec::kMillisecond;
  // A query that already burned most of its SLO in the queue gets only
  // the remaining slack.
  const auto params =
      ladder.Apply(0, base, slo, /*slack=*/2 * exec::kMillisecond);
  EXPECT_EQ(params.deadline, 2 * exec::kMillisecond);
  // Disabled ladder: deadline = min(slo, slack), params untouched.
  const DegradationLadder off;
  const auto p2 = off.Apply(0, base, slo, exec::kMillisecond);
  EXPECT_EQ(p2.deadline, exec::kMillisecond);
  EXPECT_EQ(p2.f, base.f);
  EXPECT_EQ(p2.p, base.p);
}

// ---------------------------------------------------------------------
// Circuit breaker
// ---------------------------------------------------------------------

TEST(BreakerTest, TripsHalfOpensProbesAndCloses) {
  BreakerConfig config;
  config.failure_threshold = 3;
  config.window_ns = 10 * exec::kMillisecond;
  config.open_ns = 5 * exec::kMillisecond;
  config.probe_successes_to_close = 2;
  CircuitBreaker breaker(config);
  const exec::VirtualTime ms = exec::kMillisecond;

  // Two failures inside the window: still closed.
  breaker.OnFailure(1 * ms);
  breaker.OnFailure(2 * ms);
  EXPECT_EQ(breaker.state(2 * ms), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.Admit(2 * ms));
  // Third failure trips it.
  breaker.OnFailure(3 * ms);
  EXPECT_EQ(breaker.state(3 * ms), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(breaker.Admit(4 * ms));
  EXPECT_EQ(breaker.trips(), 1u);

  // After the cooloff: half-open, exactly one probe at a time.
  EXPECT_EQ(breaker.state(9 * ms), CircuitBreaker::State::kHalfOpen);
  EXPECT_TRUE(breaker.WouldProbe(9 * ms));
  EXPECT_TRUE(breaker.Admit(9 * ms));
  EXPECT_FALSE(breaker.WouldProbe(9 * ms));
  EXPECT_FALSE(breaker.Admit(9 * ms));  // probe slot taken

  // Probe succeeds; still half-open (needs 2), second probe closes it.
  breaker.OnSuccess(10 * ms, /*probe=*/true);
  EXPECT_EQ(breaker.state(10 * ms), CircuitBreaker::State::kHalfOpen);
  EXPECT_TRUE(breaker.Admit(10 * ms));
  breaker.OnSuccess(11 * ms, /*probe=*/true);
  EXPECT_EQ(breaker.state(11 * ms), CircuitBreaker::State::kClosed);
  EXPECT_EQ(breaker.probes(), 2u);
}

TEST(BreakerTest, ProbeFailureReopensAndWindowExpires) {
  BreakerConfig config;
  config.failure_threshold = 2;
  config.window_ns = 10 * exec::kMillisecond;
  config.open_ns = 5 * exec::kMillisecond;
  CircuitBreaker breaker(config);
  const exec::VirtualTime ms = exec::kMillisecond;

  breaker.OnFailure(0);
  breaker.OnFailure(1 * ms);
  ASSERT_EQ(breaker.state(1 * ms), CircuitBreaker::State::kOpen);
  // Half-open probe fails: full cooloff again.
  ASSERT_TRUE(breaker.Admit(7 * ms));
  breaker.OnFailure(8 * ms, /*probe=*/true);
  EXPECT_EQ(breaker.state(8 * ms), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.trips(), 2u);

  // Old failures age out of the sliding window: two failures 20ms apart
  // do not trip a fresh breaker.
  CircuitBreaker fresh(config);
  fresh.OnFailure(0);
  fresh.OnFailure(20 * ms);
  EXPECT_EQ(fresh.state(20 * ms), CircuitBreaker::State::kClosed);

  // A pre-trip straggler completing during half-open (probe=false) must
  // not touch the probe slot.
  CircuitBreaker strag(config);
  strag.OnFailure(0);
  strag.OnFailure(1 * ms);
  ASSERT_EQ(strag.state(7 * ms), CircuitBreaker::State::kHalfOpen);
  strag.OnSuccess(7 * ms, /*probe=*/false);
  strag.OnFailure(7 * ms, /*probe=*/false);
  EXPECT_EQ(strag.state(7 * ms), CircuitBreaker::State::kHalfOpen);
  EXPECT_TRUE(strag.WouldProbe(7 * ms));
}

TEST(BreakerPolicyTest, IsMachineFailureClassification) {
  // Deadline degradation is a policy outcome; only fault escalation and
  // OOM are machine failures from the breaker's point of view.
  EXPECT_FALSE(serve::IsMachineFailure(topk::ResultStatus::kComplete));
  EXPECT_FALSE(
      serve::IsMachineFailure(topk::ResultStatus::kDeadlineDegraded));
  EXPECT_TRUE(
      serve::IsMachineFailure(topk::ResultStatus::kPartialAfterFault));
  EXPECT_TRUE(serve::IsMachineFailure(topk::ResultStatus::kOom));
}

// Probe-slot accounting through the shared policy layer: every probe
// completion — success, deadline-degraded, or faulted — must return the
// half-open probe slot, or the breaker wedges with the slot claimed and
// no probe in flight (dropping all traffic forever).
TEST(BreakerPolicyTest, DegradedProbeReleasesSlotAndCountsTowardClose) {
  const exec::VirtualTime ms = exec::kMillisecond;
  ServeConfig config;
  config.breaker_enabled = true;
  config.breaker.failure_threshold = 2;
  config.breaker.window_ns = 10 * ms;
  config.breaker.open_ns = 5 * ms;
  config.breaker.probe_successes_to_close = 2;
  serve::PolicyState policy(config);

  // Trip with two machine failures.
  for (int i = 0; i < 2; ++i) {
    const auto d = policy.Decide(i * ms);
    ASSERT_EQ(d.outcome, AdmissionOutcome::kAdmitted);
    ASSERT_FALSE(d.probe);
    policy.OnDispatch(i * ms);
    policy.OnComplete(i * ms + ms / 2, ms / 2,
                      topk::ResultStatus::kPartialAfterFault, d.probe);
  }
  const auto dropped = policy.Decide(2 * ms);
  EXPECT_EQ(dropped.outcome, AdmissionOutcome::kBreakerDropped);
  EXPECT_EQ(dropped.breaker_state, CircuitBreaker::State::kOpen);

  // Half-open: the first arrival claims the probe slot, the second is
  // dropped while the probe is in flight.
  const auto probe1 = policy.Decide(8 * ms);
  ASSERT_EQ(probe1.outcome, AdmissionOutcome::kAdmitted);
  ASSERT_TRUE(probe1.probe);
  EXPECT_EQ(probe1.breaker_state, CircuitBreaker::State::kHalfOpen);
  EXPECT_EQ(policy.Decide(8 * ms).outcome,
            AdmissionOutcome::kBreakerDropped);
  policy.OnDispatch(8 * ms);

  // The probe comes back deadline-degraded — NOT a machine failure: it
  // must release the slot and count toward closing.
  policy.OnComplete(9 * ms, ms, topk::ResultStatus::kDeadlineDegraded,
                    probe1.probe);
  const auto probe2 = policy.Decide(9 * ms);
  ASSERT_EQ(probe2.outcome, AdmissionOutcome::kAdmitted)
      << "degraded probe completion leaked the probe slot";
  ASSERT_TRUE(probe2.probe);
  policy.OnDispatch(9 * ms);
  policy.OnComplete(10 * ms, ms, topk::ResultStatus::kComplete,
                    probe2.probe);

  // Two probe successes: closed again, normal admission.
  const auto after = policy.Decide(10 * ms);
  EXPECT_EQ(after.outcome, AdmissionOutcome::kAdmitted);
  EXPECT_FALSE(after.probe);
  EXPECT_EQ(after.breaker_state, CircuitBreaker::State::kClosed);
  EXPECT_EQ(policy.breaker().probes(), 2u);
  EXPECT_EQ(policy.breaker().trips(), 1u);
}

TEST(BreakerPolicyTest, FaultedProbeReopensWithSlotFreeNextHalfOpen) {
  const exec::VirtualTime ms = exec::kMillisecond;
  ServeConfig config;
  config.breaker_enabled = true;
  config.breaker.failure_threshold = 2;
  config.breaker.window_ns = 10 * ms;
  config.breaker.open_ns = 5 * ms;
  config.breaker.probe_successes_to_close = 2;
  serve::PolicyState policy(config);

  for (int i = 0; i < 2; ++i) {
    const auto d = policy.Decide(i * ms);
    ASSERT_EQ(d.outcome, AdmissionOutcome::kAdmitted);
    policy.OnDispatch(i * ms);
    policy.OnComplete(i * ms + ms / 2, ms / 2,
                      topk::ResultStatus::kPartialAfterFault, d.probe);
  }

  // Probe comes back with a machine failure (kPartialAfterFault): the
  // breaker re-trips immediately.
  const auto probe = policy.Decide(8 * ms);
  ASSERT_TRUE(probe.probe);
  policy.OnDispatch(8 * ms);
  policy.OnComplete(9 * ms, ms, topk::ResultStatus::kPartialAfterFault,
                    probe.probe);
  EXPECT_EQ(policy.breaker().trips(), 2u);
  EXPECT_EQ(policy.Decide(9 * ms).outcome,
            AdmissionOutcome::kBreakerDropped);

  // Next half-open window: the slot is free again (re-trip cleared it),
  // so a fresh probe is admitted.
  const auto retry = policy.Decide(15 * ms);
  EXPECT_EQ(retry.outcome, AdmissionOutcome::kAdmitted);
  EXPECT_TRUE(retry.probe);
  EXPECT_EQ(retry.breaker_state, CircuitBreaker::State::kHalfOpen);
}

// ---------------------------------------------------------------------
// End-to-end serving
// ---------------------------------------------------------------------

struct ServeFixture {
  index::InvertedIndex idx = MakeTinyIndex();
  std::unique_ptr<topk::Algorithm> algo = algos::MakeAlgorithm("Sparta");
  std::vector<std::vector<TermId>> queries;
  topk::SearchParams params;
  exec::VirtualTime mean_service = 0;

  ServeFixture() {
    for (std::uint64_t salt : {0u, 3u, 11u, 17u}) {
      queries.push_back(PickQueryTerms(idx, 4, salt));
    }
    params.k = 10;
    // One reference execution to scale arrival rates off.
    sim::SimConfig config;
    config.num_workers = 4;
    sim::SimExecutor executor(config);
    auto ctx = executor.CreateQuery();
    (void)algo->Run(idx, queries[0], params, *ctx);
    mean_service = ctx->end_time() - ctx->start_time();
    SPARTA_CHECK(mean_service > 0);
  }

  /// Offered rate of `x` times the single-query-at-a-time service rate.
  /// With 4 workers, anything >= 8x is overload by construction (the
  /// machine cannot drain more than workers x the serial rate).
  double Rate(double x) const {
    return x * 1e9 / static_cast<double>(mean_service);
  }

  ServeResult RunSim(const ServeConfig& sc, int workers = 4) const {
    sim::SimConfig config;
    config.num_workers = workers;
    sim::SimExecutor executor(config);
    serve::Server server(idx, *algo, sc);
    return server.ServeOnSim(executor, queries, params);
  }
};

void CheckInvariants(const ServeResult& r, const ServeConfig& sc) {
  EXPECT_EQ(r.offered, r.queries.size());
  EXPECT_EQ(r.offered,
            r.admitted + r.shed + r.rejected_full + r.breaker_dropped);
  EXPECT_EQ(r.completed, r.admitted);  // sim drains everything admitted
  EXPECT_LE(r.max_queue_depth, sc.admission.queue_capacity);
  EXPECT_EQ(r.e2e_ns.count(), r.completed);
  std::size_t rung_total = 0;
  for (const auto n : r.rung_dispatches) rung_total += n;
  EXPECT_EQ(rung_total, r.admitted);
  for (const auto& q : r.queries) {
    if (q.outcome == AdmissionOutcome::kAdmitted) {
      EXPECT_GE(q.dispatch, q.arrival);
      EXPECT_GE(q.completion, q.dispatch);
      EXPECT_EQ(q.result.stats.queue_wait, q.dispatch - q.arrival);
      EXPECT_EQ(q.result.stats.admission_outcome,
                AdmissionOutcome::kAdmitted);
    } else {
      EXPECT_EQ(q.dispatch, -1);
      EXPECT_EQ(q.completion, -1);
    }
  }
}

TEST(ServeSimTest, QueueBoundHoldsUnderOverload) {
  const ServeFixture fx;
  ServeConfig sc;
  sc.arrivals.seed = 5;
  sc.arrivals.rate_qps = fx.Rate(16.0);  // >= 2x capacity by construction
  sc.arrivals.count = 120;
  sc.slo = 50 * fx.mean_service;
  sc.admission.queue_capacity = 8;
  sc.admission.shed_predicted_wait = false;  // stress reject-on-full
  sc.deadline_from_slo = false;
  const auto r = fx.RunSim(sc);
  CheckInvariants(r, sc);
  EXPECT_GT(r.rejected_full, 0u);
  EXPECT_GT(r.admitted, 0u);
  EXPECT_EQ(r.max_queue_depth, sc.admission.queue_capacity);
}

TEST(ServeSimTest, SheddingMonotoneInOfferedLoad) {
  const ServeFixture fx;
  std::size_t prev_turned_away = 0;
  double prev_wait = 0.0;
  for (const double x : {8.0, 16.0, 32.0}) {
    ServeConfig sc;
    sc.arrivals.seed = 9;
    sc.arrivals.rate_qps = fx.Rate(x);
    sc.arrivals.count = 100;
    sc.slo = 30 * fx.mean_service;
    sc.admission.queue_capacity = 32;
    sc.admission.initial_service_ns = fx.mean_service;
    sc.admission.initial_departure_gap_ns = fx.mean_service / 4;
    sc.ladder = DegradationLadder::Default();
    const auto r = fx.RunSim(sc);
    CheckInvariants(r, sc);
    const std::size_t turned_away =
        r.shed + r.rejected_full + r.breaker_dropped;
    EXPECT_GE(turned_away, prev_turned_away)
        << "turned-away count must grow with offered load (x=" << x << ")";
    prev_turned_away = turned_away;
    // Admitted queries keep their end-to-end latency bounded: mean wait
    // cannot exceed what the shed threshold allows.
    if (!r.queue_wait_ns.empty()) {
      prev_wait = std::max(prev_wait, r.queue_wait_ns.Mean());
      EXPECT_LE(r.queue_wait_ns.Max(), sc.slo);
    }
  }
  EXPECT_GT(prev_turned_away, 0u);
}

TEST(ServeSimTest, LadderEngagesUnderPressure) {
  const ServeFixture fx;
  ServeConfig sc;
  sc.arrivals.seed = 21;
  sc.arrivals.rate_qps = fx.Rate(24.0);
  sc.arrivals.count = 150;
  sc.slo = 40 * fx.mean_service;
  sc.admission.queue_capacity = 16;
  sc.admission.initial_service_ns = fx.mean_service;
  sc.ladder = DegradationLadder::Default();
  const auto r = fx.RunSim(sc);
  CheckInvariants(r, sc);
  ASSERT_EQ(r.rung_dispatches.size(), 4u);
  // Sustained overload must push dispatches past rung 0.
  EXPECT_GT(r.rung_dispatches[1] + r.rung_dispatches[2] +
                r.rung_dispatches[3],
            0u);
}

TEST(ServeSimTest, SeededServeReplaysDeterministically) {
  // The simulator's contract (sim_executor.h) is bit-reproducible
  // result sets with virtual latencies reproducible to ~0.1% (heap
  // layout shifts coherence-line addresses run to run). So the serve
  // trace is compared at that strength: identical admission outcomes
  // and result sets, timestamps within 1%. The policy is configured
  // away from decision thresholds (ample queue, generous SLO) so the
  // latency wobble cannot flip an admission decision; threshold
  // sensitivity under pressure is exercised by the other tests.
  const ServeFixture fx;
  ServeConfig sc;
  sc.arrivals.seed = 3;
  sc.arrivals.rate_qps = fx.Rate(6.0);
  sc.arrivals.count = 80;
  sc.slo = 1000 * fx.mean_service;
  sc.admission.queue_capacity = 80;  // never full
  sc.admission.initial_service_ns = fx.mean_service;
  sc.deadline_from_slo = false;
  const auto a = fx.RunSim(sc);
  const auto b = fx.RunSim(sc);
  ASSERT_EQ(a.queries.size(), b.queries.size());
  EXPECT_EQ(a.admitted, a.offered);  // nothing near a threshold
  for (std::size_t i = 0; i < a.queries.size(); ++i) {
    EXPECT_EQ(a.queries[i].outcome, b.queries[i].outcome) << i;
    EXPECT_EQ(a.queries[i].arrival, b.queries[i].arrival) << i;
    EXPECT_EQ(a.queries[i].result.entries, b.queries[i].result.entries)
        << i;
    EXPECT_NEAR(static_cast<double>(a.queries[i].dispatch),
                static_cast<double>(b.queries[i].dispatch),
                0.01 * static_cast<double>(std::max<exec::VirtualTime>(
                           a.queries[i].dispatch, 1)))
        << i;
    EXPECT_NEAR(static_cast<double>(a.queries[i].completion),
                static_cast<double>(b.queries[i].completion),
                0.01 * static_cast<double>(std::max<exec::VirtualTime>(
                           a.queries[i].completion, 1)))
        << i;
  }
  EXPECT_EQ(a.goodput, b.goodput);
  EXPECT_EQ(a.admitted, b.admitted);
}

TEST(ServeSimTest, BreakerTripsOnFaultStormAndRecovers) {
  const ServeFixture fx;
  ServeConfig sc;
  sc.arrivals.seed = 15;
  sc.arrivals.rate_qps = fx.Rate(2.0);
  sc.arrivals.count = 150;
  sc.slo = 100 * fx.mean_service;
  sc.admission.queue_capacity = 64;
  sc.admission.shed_predicted_wait = false;
  sc.deadline_from_slo = false;
  sc.breaker_enabled = true;
  sc.breaker.failure_threshold = 4;
  sc.breaker.window_ns = 50 * fx.mean_service;
  sc.breaker.open_ns = 20 * fx.mean_service;
  sc.breaker.probe_successes_to_close = 2;

  sim::SimConfig config;
  config.num_workers = 4;
  config.page_cache_bytes = 4096;  // keep SSD reads (and faults) coming
  config.faults.seed = 19;
  config.faults.io_error_prob = 0.5;
  config.faults.io_retry_limit = 1;
  sim::SimExecutor executor(config);
  serve::Server server(fx.idx, *fx.algo, sc);
  const auto r = server.ServeOnSim(executor, fx.queries, fx.params);
  CheckInvariants(r, sc);
  EXPECT_GT(r.faulted, 0u);
  EXPECT_GT(r.breaker_trips, 0u);
  EXPECT_GT(r.breaker_dropped, 0u);
  EXPECT_GT(r.breaker_probes, 0u);
}

TEST(ServeThreadedTest, SmokeServesWithSamePolicyPaths) {
  const ServeFixture fx;
  ServeConfig sc;
  sc.arrivals.seed = 27;
  sc.arrivals.rate_qps = 2000.0;  // wall-clock service decides pressure
  sc.arrivals.count = 24;
  sc.slo = 200 * exec::kMillisecond;
  sc.admission.queue_capacity = 16;
  sc.ladder = DegradationLadder::Default();

  exec::ThreadedExecutor::Options options;
  options.num_workers = 4;
  exec::ThreadedExecutor executor(options);
  serve::Server server(fx.idx, *fx.algo, sc);
  const auto r = server.ServeOnThreads(executor, fx.queries, fx.params);

  EXPECT_EQ(r.offered, 24u);
  EXPECT_EQ(r.offered,
            r.admitted + r.shed + r.rejected_full + r.breaker_dropped);
  EXPECT_EQ(r.completed, r.admitted);
  EXPECT_GT(r.admitted, 0u);
  EXPECT_LE(r.max_queue_depth, sc.admission.queue_capacity);
  for (const auto& q : r.queries) {
    if (q.outcome != AdmissionOutcome::kAdmitted) continue;
    EXPECT_GE(q.dispatch, q.arrival);
    EXPECT_GT(q.completion, q.dispatch);
    EXPECT_FALSE(q.result.entries.empty());
    EXPECT_EQ(q.EndToEnd(), q.QueueWait() + q.result.stats.latency);
  }
}

}  // namespace
}  // namespace sparta::test

// Sparta-specific tests: ablation configurations stay safe, the memory
// budget reproduces OOM, tracing, approximation behavior, statistics.
#include <gtest/gtest.h>

#include "core/sparta.h"
#include "driver/experiment.h"
#include "test_helpers.h"

namespace sparta::core {
namespace {

struct AblationCase {
  const char* name;
  SpartaOptions options;
};

std::vector<AblationCase> AblationCases() {
  std::vector<AblationCase> cases;
  SpartaOptions o;
  cases.push_back({"all_on", o});
  o = {};
  o.lazy_ub_updates = false;
  cases.push_back({"eager_ub", o});
  o = {};
  o.cleaner_prunes = false;
  cases.push_back({"no_cleaner_prune", o});
  o = {};
  o.term_maps = false;
  cases.push_back({"no_term_maps", o});
  o = {};
  o.lazy_ub_updates = false;
  o.cleaner_prunes = false;
  o.term_maps = false;
  o.insert_cutoff_at_ubstop = false;
  cases.push_back({"pnra_config", o});
  return cases;
}

class SpartaAblationTest
    : public ::testing::TestWithParam<AblationCase> {};

TEST_P(SpartaAblationTest, EveryConfigurationIsSafeInExactMode) {
  const auto idx = test::MakeTinyIndex(1500, 41);
  const auto terms = test::PickQueryTerms(idx, 6, 3);
  topk::SearchParams params;
  params.k = 20;
  params.seg_size = 64;

  const Sparta algo(GetParam().options);
  sim::SimConfig config;
  config.num_workers = 6;
  sim::SimExecutor executor(config);
  auto ctx = executor.CreateQuery();
  const auto result = algo.Run(idx, terms, params, *ctx);
  EXPECT_TRUE(test::IsExactTopK(idx, terms, params.k, result));
}

INSTANTIATE_TEST_SUITE_P(
    Configs, SpartaAblationTest, ::testing::ValuesIn(AblationCases()),
    [](const ::testing::TestParamInfo<AblationCase>& info) {
      return std::string(info.param.name);
    });

TEST(SpartaTest, InsertCutoffShrinksPeakMap) {
  const auto idx = test::MakeTinyIndex(4000, 43);
  const auto terms = test::PickQueryTerms(idx, 8, 5);
  topk::SearchParams params;
  params.k = 20;

  const auto with_cutoff = test::RunOnSim(idx, "Sparta", terms, params, 8);
  const auto naive = test::RunOnSim(idx, "pNRA", terms, params, 8);
  ASSERT_TRUE(with_cutoff.ok());
  ASSERT_TRUE(naive.ok());
  EXPECT_LE(with_cutoff.stats.docmap_peak_entries,
            naive.stats.docmap_peak_entries);
}

TEST(SpartaTest, MemoryBudgetReproducesOom) {
  const auto idx = test::MakeTinyIndex(3000, 47);
  const auto terms = test::PickQueryTerms(idx, 8, 1);
  topk::SearchParams params;
  params.k = 10;

  sim::SimConfig config;
  config.num_workers = 4;
  config.memory_budget_bytes = 10'000;  // absurdly small
  sim::SimExecutor executor(config);
  auto ctx = executor.CreateQuery();
  const Sparta algo;
  const auto result = algo.Run(idx, terms, params, *ctx);
  EXPECT_EQ(result.status, topk::ResultStatus::kOom);
  // Anytime semantics: even under OOM the query returns the best-so-far
  // top-k instead of an empty result.
  EXPECT_FALSE(result.entries.empty());
}

TEST(SpartaTest, TracerReconstructsFullRecall) {
  const auto idx = test::MakeTinyIndex(2500, 53);
  const auto terms = test::PickQueryTerms(idx, 6, 7);
  topk::SearchParams params;
  params.k = 25;
  driver::TraceRecorder trace;
  params.tracer = &trace;

  sim::SimConfig config;
  config.num_workers = 6;
  sim::SimExecutor executor(config);
  auto ctx = executor.CreateQuery();
  const Sparta algo;
  const auto result = algo.Run(idx, terms, params, *ctx);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(trace.events().empty());

  const auto exact = topk::ComputeExactTopK(idx, terms, params.k);
  const std::vector<exec::VirtualTime> at_end{ctx->end_time() -
                                              ctx->start_time()};
  const auto recalls =
      driver::RecallOverTime(trace, ctx->start_time(), exact, at_end);
  ASSERT_EQ(recalls.size(), 1u);
  EXPECT_DOUBLE_EQ(recalls[0], 1.0);
  // Events never precede the query start.
  for (const auto& e : trace.events()) {
    EXPECT_GE(e.time, ctx->start_time());
  }
}

TEST(SpartaTest, DeltaTradesWorkForRecall) {
  const auto idx = test::MakeTinyIndex(6000, 59);
  const auto terms = test::PickQueryTerms(idx, 8, 9);
  topk::SearchParams exact_params;
  exact_params.k = 50;
  auto eager = exact_params;
  eager.delta = 20'000;  // 20 us: very aggressive

  const auto full = test::RunOnSim(idx, "Sparta", terms, exact_params, 8);
  const auto fast = test::RunOnSim(idx, "Sparta", terms, eager, 8);
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(fast.ok());
  EXPECT_LE(fast.stats.postings_processed, full.stats.postings_processed);
  const auto oracle = topk::ComputeExactTopK(idx, terms, exact_params.k);
  EXPECT_DOUBLE_EQ(topk::Recall(oracle, full.entries), 1.0);
  EXPECT_GE(topk::Recall(oracle, fast.entries), 0.3);
}

TEST(SpartaTest, SegmentSizeDoesNotAffectSafety) {
  const auto idx = test::MakeTinyIndex(1200, 61);
  const auto terms = test::PickQueryTerms(idx, 5, 11);
  topk::SearchParams params;
  params.k = 15;
  for (const std::uint32_t seg : {1u, 7u, 64u, 4096u}) {
    params.seg_size = seg;
    const auto result = test::RunOnSim(idx, "Sparta", terms, params, 5);
    EXPECT_TRUE(test::IsExactTopK(idx, terms, params.k, result))
        << "seg_size " << seg;
  }
}

TEST(SpartaTest, PhiZeroDisablesTermMapsButStaysSafe) {
  const auto idx = test::MakeTinyIndex(1200, 67);
  const auto terms = test::PickQueryTerms(idx, 5, 13);
  topk::SearchParams params;
  params.k = 15;
  params.phi = 0;  // docMap is never "small enough"
  const auto result = test::RunOnSim(idx, "Sparta", terms, params, 5);
  EXPECT_TRUE(test::IsExactTopK(idx, terms, params.k, result));
}

TEST(SpartaTest, StatsPopulated) {
  const auto idx = test::MakeTinyIndex(1500, 71);
  const auto terms = test::PickQueryTerms(idx, 6, 15);
  topk::SearchParams params;
  params.k = 10;
  const auto result = test::RunOnSim(idx, "Sparta", terms, params, 6);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result.stats.postings_processed, 0u);
  EXPECT_GT(result.stats.heap_inserts, 0u);
  EXPECT_GT(result.stats.docmap_peak_entries, 0u);
}

TEST(SpartaTest, AccessCountWithinConstantOfSequentialNra) {
  // §4.4: Sparta is asymptotically instance-optimal like NRA — a worker
  // "running ahead" costs at most segSize extra accesses per list, plus
  // a constant factor from worker-rate skew. Operationalized: parallel
  // Sparta's posting accesses stay within a small constant of the
  // sequential TA-NRA's on the same query, plus the segment slack.
  const auto idx = test::MakeTinyIndex(4000, 103);
  topk::SearchParams params;
  params.k = 25;
  params.seg_size = 128;
  for (const std::uint64_t salt : {1ull, 5ull, 9ull}) {
    const auto terms = test::PickQueryTerms(idx, 8, salt);
    const auto sparta = test::RunOnSim(idx, "Sparta", terms, params, 8);
    const auto nra = test::RunOnSim(idx, "TA-NRA", terms, params, 1);
    ASSERT_TRUE(sparta.ok());
    ASSERT_TRUE(nra.ok());
    const auto slack =
        static_cast<std::uint64_t>(terms.size()) * params.seg_size;
    EXPECT_LE(sparta.stats.postings_processed,
              3 * nra.stats.postings_processed + slack)
        << "salt " << salt;
  }
}

TEST(SpartaTest, WorksWithMoreWorkersThanTerms) {
  const auto idx = test::MakeTinyIndex(1000, 73);
  const auto terms = test::PickQueryTerms(idx, 2, 17);
  topk::SearchParams params;
  params.k = 10;
  const auto result = test::RunOnSim(idx, "Sparta", terms, params, 12);
  EXPECT_TRUE(test::IsExactTopK(idx, terms, params.k, result));
}

}  // namespace
}  // namespace sparta::core

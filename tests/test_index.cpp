// Unit tests: index — scorer, builder, block-max, disk format, random
// access.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "corpus/synthetic.h"
#include "index/block_max.h"
#include "index/builder.h"
#include "index/disk_format.h"
#include "index/scorer.h"
#include "test_helpers.h"

namespace sparta::index {
namespace {

TEST(ScorerTest, MonotoneInTf) {
  const Scorer scorer(1000, 100.0);
  PackedScore prev = 0;
  for (std::uint32_t tf = 1; tf <= 20; ++tf) {
    const auto s = scorer.TermScore(tf, 50, 100);
    EXPECT_GT(s, prev);
    prev = s;
  }
}

TEST(ScorerTest, DecreasingInDf) {
  const Scorer scorer(1000, 100.0);
  PackedScore prev = std::numeric_limits<PackedScore>::max();
  for (const std::uint32_t df : {1u, 10u, 100u, 1000u}) {
    const auto s = scorer.TermScore(2, df, 100);
    EXPECT_LT(s, prev);
    prev = s;
  }
}

TEST(ScorerTest, DecreasingInDocLength) {
  const Scorer scorer(1000, 100.0);
  PackedScore prev = std::numeric_limits<PackedScore>::max();
  for (const std::uint32_t len : {10u, 100u, 1000u, 10000u}) {
    const auto s = scorer.TermScore(2, 50, len);
    EXPECT_LT(s, prev);
    prev = s;
  }
}

class ScorerBoundTest
    : public ::testing::TestWithParam<std::tuple<std::uint32_t,
                                                 std::uint32_t>> {};

TEST_P(ScorerBoundTest, MaxTermScoreIsUpperBound) {
  const auto [tf, len] = GetParam();
  const Scorer scorer(100'000, 250.0);
  for (const std::uint32_t df : {1u, 100u, 50'000u}) {
    EXPECT_LE(scorer.TermScore(tf, df, len), scorer.MaxTermScore(df));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ScorerBoundTest,
    ::testing::Combine(::testing::Values(1u, 3u, 100u, 100000u),
                       ::testing::Values(1u, 250u, 100000u)));

TEST(BuilderTest, TinyCorpusPostings) {
  IndexBuilder builder;
  builder.AddDocument("apple banana apple");
  builder.AddDocument("banana cherry");
  builder.AddDocument("apple");
  const auto& vocab = builder.vocabulary();
  const TermId apple = *vocab.Lookup("apple");
  const TermId banana = *vocab.Lookup("banana");
  const TermId cherry = *vocab.Lookup("cherry");
  const auto idx = builder.Build();

  EXPECT_EQ(idx.num_docs(), 3u);
  EXPECT_EQ(idx.Term(apple).df(), 2u);
  EXPECT_EQ(idx.Term(banana).df(), 2u);
  EXPECT_EQ(idx.Term(cherry).df(), 1u);
  // Doc 0 has tf=2 for apple, doc 2 tf=1 but is shorter; both present.
  EXPECT_GT(idx.RandomAccessScore(apple, 0), 0u);
  EXPECT_GT(idx.RandomAccessScore(apple, 2), 0u);
  EXPECT_EQ(idx.RandomAccessScore(apple, 1), 0u);
}

TEST(BuilderTest, DocOrderSortedImpactOrderSorted) {
  const auto idx = test::MakeTinyIndex(800, 3);
  for (TermId t = 0; t < idx.num_terms(); ++t) {
    const auto view = idx.Term(t);
    for (std::size_t i = 1; i < view.doc_order.size(); ++i) {
      EXPECT_LT(view.doc_order[i - 1].doc, view.doc_order[i].doc);
    }
    for (std::size_t i = 1; i < view.impact_order.size(); ++i) {
      EXPECT_GE(view.impact_order[i - 1].score, view.impact_order[i].score);
    }
    // Same multiset of postings in both orders (spot-check sums).
    std::uint64_t doc_sum = 0, impact_sum = 0;
    for (const auto& p : view.doc_order) doc_sum += p.score;
    for (const auto& p : view.impact_order) impact_sum += p.score;
    EXPECT_EQ(doc_sum, impact_sum);
  }
}

TEST(BuilderTest, MaxScoreStatisticIsTight) {
  const auto idx = test::MakeTinyIndex(500, 5);
  for (TermId t = 0; t < idx.num_terms(); ++t) {
    const auto view = idx.Term(t);
    if (view.df() == 0) continue;
    PackedScore max = 0;
    for (const auto& p : view.doc_order) max = std::max(max, p.score);
    EXPECT_EQ(view.max_score, max);
    EXPECT_EQ(view.impact_order[0].score, max);
  }
}

TEST(BlockMaxTest, InvariantsHold) {
  const auto idx = test::MakeTinyIndex(1200, 7);
  for (TermId t = 0; t < idx.num_terms(); ++t) {
    const auto view = idx.Term(t);
    ASSERT_EQ(view.blocks.size(),
              (view.df() + kBlockSize - 1) / kBlockSize);
    for (std::size_t b = 0; b < view.blocks.size(); ++b) {
      const std::size_t begin = b * kBlockSize;
      const std::size_t end =
          std::min<std::size_t>(begin + kBlockSize, view.doc_order.size());
      PackedScore max = 0;
      for (std::size_t i = begin; i < end; ++i) {
        max = std::max(max, view.doc_order[i].score);
        EXPECT_LE(view.doc_order[i].doc, view.blocks[b].last_doc);
      }
      EXPECT_EQ(view.blocks[b].max_score, max);
      EXPECT_EQ(view.blocks[b].last_doc, view.doc_order[end - 1].doc);
    }
  }
}

TEST(BlockMaxTest, FindBlock) {
  std::vector<BlockMeta> blocks{{10, 1}, {20, 2}, {30, 3}};
  EXPECT_EQ(FindBlock(blocks, 0), 0u);
  EXPECT_EQ(FindBlock(blocks, 10), 0u);
  EXPECT_EQ(FindBlock(blocks, 11), 1u);
  EXPECT_EQ(FindBlock(blocks, 30), 2u);
  EXPECT_EQ(FindBlock(blocks, 31), 3u);  // past the end
}

TEST(DiskFormatTest, SaveLoadRoundTrip) {
  const auto idx = test::MakeTinyIndex(600, 9);
  const std::string path = "/tmp/sparta_test_index.idx";
  ASSERT_TRUE(SaveIndex(idx, path));
  auto loaded = LoadIndex(path);
  ASSERT_TRUE(loaded.has_value());

  EXPECT_EQ(loaded->num_docs(), idx.num_docs());
  EXPECT_EQ(loaded->num_terms(), idx.num_terms());
  EXPECT_DOUBLE_EQ(loaded->avg_doc_len(), idx.avg_doc_len());
  EXPECT_EQ(loaded->total_postings(), idx.total_postings());
  for (TermId t = 0; t < idx.num_terms(); ++t) {
    const auto a = idx.Term(t);
    const auto b = loaded->Term(t);
    ASSERT_EQ(a.df(), b.df());
    EXPECT_EQ(a.max_score, b.max_score);
    for (std::size_t i = 0; i < a.doc_order.size(); ++i) {
      EXPECT_EQ(a.doc_order[i], b.doc_order[i]);
      EXPECT_EQ(a.impact_order[i], b.impact_order[i]);
    }
    for (std::size_t i = 0; i < a.blocks.size(); ++i) {
      EXPECT_EQ(a.blocks[i], b.blocks[i]);
    }
    // File offsets must agree so the I/O model is identical for both.
    EXPECT_EQ(a.doc_order_file_offset, b.doc_order_file_offset);
    EXPECT_EQ(a.impact_order_file_offset, b.impact_order_file_offset);
  }
  std::filesystem::remove(path);
}

TEST(DiskFormatTest, RejectsGarbage) {
  const std::string path = "/tmp/sparta_test_garbage.idx";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("this is not an index file at all, padding padding", f);
  std::fclose(f);
  EXPECT_FALSE(LoadIndex(path).has_value());
  EXPECT_FALSE(LoadIndex("/tmp/definitely_missing_file.idx").has_value());
  std::filesystem::remove(path);
}

TEST(DiskFormatTest, LayoutIsAligned) {
  const auto layout = ComputeSectionLayout(3, 17, 17, 5);
  EXPECT_EQ(layout.term_table_offset % 8, 0u);
  EXPECT_EQ(layout.doc_postings_offset % 8, 0u);
  EXPECT_EQ(layout.impact_postings_offset % 8, 0u);
  EXPECT_EQ(layout.blocks_offset % 8, 0u);
  EXPECT_EQ(layout.total_size,
            SerializedIndexSize(3, 17, 17, 5));
}

TEST(DiskFormatTest, TruncatedFileRejected) {
  const auto idx = test::MakeTinyIndex(300, 13);
  const std::string path = "/tmp/sparta_test_truncated.idx";
  ASSERT_TRUE(SaveIndex(idx, path));
  const auto full_size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full_size / 2);
  EXPECT_FALSE(LoadIndex(path).has_value());
  std::filesystem::remove(path);
}

// --- Payload checksums (SPARTA02 integrity footer) -------------------

namespace {

/// XORs one byte of `path` at `offset` (guaranteed to change it).
void FlipByteAt(const std::string& path, std::uint64_t offset) {
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, static_cast<long>(offset), SEEK_SET), 0);
  const int c = std::fgetc(f);
  ASSERT_NE(c, EOF);
  ASSERT_EQ(std::fseek(f, static_cast<long>(offset), SEEK_SET), 0);
  std::fputc(c ^ 0x5a, f);
  std::fclose(f);
}

SectionLayout LayoutOf(const InvertedIndex& idx) {
  std::uint64_t num_blocks = 0;
  for (TermId t = 0; t < idx.num_terms(); ++t) {
    num_blocks += idx.Entry(t).num_blocks;
  }
  return ComputeSectionLayout(idx.num_terms(), idx.total_postings(),
                              idx.total_postings(), num_blocks);
}

}  // namespace

TEST(DiskFormatTest, CorruptedSectionsAreNamedInTheError) {
  // One corrupted byte anywhere in a section payload must fail the load
  // with an error naming that section — this is what makes the live
  // index's torn-write rollback observable rather than silent.
  const auto idx = test::MakeTinyIndex(400, 17);
  const std::string path = "/tmp/sparta_test_corrupt_section.idx";
  const SectionLayout layout = LayoutOf(idx);

  const struct {
    const char* name;
    std::uint64_t offset;
  } sections[] = {
      {"term table", layout.term_table_offset},
      {"doc-ordered postings", layout.doc_postings_offset},
      {"impact-ordered postings", layout.impact_postings_offset},
      {"block metadata", layout.blocks_offset},
  };
  for (const auto& s : sections) {
    ASSERT_TRUE(SaveIndex(idx, path));
    FlipByteAt(path, s.offset + 16);  // inside the section payload
    std::string error;
    EXPECT_FALSE(LoadIndex(path, &error).has_value()) << s.name;
    EXPECT_EQ(error,
              std::string(s.name) + " checksum mismatch: corrupted index body")
        << s.name;
  }
  std::filesystem::remove(path);
}

TEST(DiskFormatTest, CorruptedHeaderAndFooterAreRejected) {
  const auto idx = test::MakeTinyIndex(400, 17);
  const std::string path = "/tmp/sparta_test_corrupt_meta.idx";
  const SectionLayout layout = LayoutOf(idx);
  std::string error;

  // Header byte past the magic: caught by the header checksum.
  ASSERT_TRUE(SaveIndex(idx, path));
  FlipByteAt(path, 40);
  EXPECT_FALSE(LoadIndex(path, &error).has_value());
  EXPECT_EQ(error, "header checksum mismatch: corrupted index header");

  // Footer corruption: caught by the footer's self-checksum.
  ASSERT_TRUE(SaveIndex(idx, path));
  FlipByteAt(path, layout.total_size + 8);
  EXPECT_FALSE(LoadIndex(path, &error).has_value());
  EXPECT_EQ(error, "integrity footer corrupted");

  // Wrong magic entirely.
  ASSERT_TRUE(SaveIndex(idx, path));
  FlipByteAt(path, 0);
  EXPECT_FALSE(LoadIndex(path, &error).has_value());
  EXPECT_EQ(error, "bad magic: not a SPARTA02 index file");
  std::filesystem::remove(path);
}

TEST(DiskFormatTest, PreChecksumFormatGetsClearRejection) {
  const auto idx = test::MakeTinyIndex(300, 17);
  const std::string path = "/tmp/sparta_test_v1_magic.idx";
  ASSERT_TRUE(SaveIndex(idx, path));
  // Rewrite the magic to the pre-checksum SPARTA01 value.
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  const std::uint64_t v1 = kIndexMagicV1;
  ASSERT_EQ(std::fwrite(&v1, sizeof(v1), 1, f), 1u);
  std::fclose(f);
  std::string error;
  EXPECT_FALSE(LoadIndex(path, &error).has_value());
  EXPECT_EQ(error,
            "pre-checksum SPARTA01 index; rebuild with the current format");
  std::filesystem::remove(path);
}

TEST(DiskFormatTest, AtomicSaveValidatesAndSwapsCleanly) {
  const auto old_idx = test::MakeTinyIndex(300, 13);
  const auto new_idx = test::MakeTinyIndex(500, 29);
  const std::string path = "/tmp/sparta_test_atomic_save.idx";

  ASSERT_TRUE(AtomicSaveIndex(old_idx, path));
  ASSERT_TRUE(LoadIndex(path).has_value());

  // Replacing an existing index leaves no temporary behind and the
  // final file is the complete new index.
  ASSERT_TRUE(AtomicSaveIndex(new_idx, path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  const auto loaded = LoadIndex(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->num_docs(), new_idx.num_docs());
  EXPECT_EQ(loaded->total_postings(), new_idx.total_postings());
  std::filesystem::remove(path);
}

TEST(RandomAccessTest, MatchesDocOrderList) {
  const auto idx = test::MakeTinyIndex(700, 11);
  for (TermId t = 0; t < std::min<TermId>(50, idx.num_terms()); ++t) {
    const auto view = idx.Term(t);
    for (const auto& p : view.doc_order) {
      EXPECT_EQ(idx.RandomAccessScore(t, p.doc), p.score);
    }
    EXPECT_EQ(idx.RandomAccessScore(t, idx.num_docs() + 5), 0u);
  }
}

}  // namespace
}  // namespace sparta::index

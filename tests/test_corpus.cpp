// Unit tests: corpus — synthetic generation, scale-up, query log.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "corpus/query_log.h"
#include "corpus/scale_up.h"
#include "corpus/synthetic.h"
#include "index/builder.h"

namespace sparta::corpus {
namespace {

SyntheticCorpusSpec SmallSpec() {
  SyntheticCorpusSpec spec;
  spec.num_docs = 5000;
  spec.vocab_size = 2000;
  spec.seed = 99;
  return spec;
}

TEST(SyntheticTest, RawCorpusWellFormed) {
  const auto spec = SmallSpec();
  const auto raw = GenerateRawCorpus(spec);
  EXPECT_EQ(raw.num_docs, spec.num_docs);
  EXPECT_EQ(raw.term_postings.size(), spec.vocab_size);
  EXPECT_EQ(raw.doc_lengths.size(), spec.num_docs);
  for (const auto len : raw.doc_lengths) EXPECT_GE(len, 1u);
  for (const auto& list : raw.term_postings) {
    for (std::size_t i = 0; i < list.size(); ++i) {
      EXPECT_GE(list[i].tf, 1u);
      EXPECT_LT(list[i].doc, spec.num_docs);
      if (i > 0) {
        EXPECT_LT(list[i - 1].doc, list[i].doc);  // sorted, unique
      }
    }
  }
}

TEST(SyntheticTest, Deterministic) {
  const auto a = GenerateRawCorpus(SmallSpec());
  const auto b = GenerateRawCorpus(SmallSpec());
  ASSERT_EQ(a.term_postings.size(), b.term_postings.size());
  for (std::size_t t = 0; t < a.term_postings.size(); ++t) {
    ASSERT_EQ(a.term_postings[t].size(), b.term_postings[t].size());
    for (std::size_t i = 0; i < a.term_postings[t].size(); ++i) {
      EXPECT_EQ(a.term_postings[t][i].doc, b.term_postings[t][i].doc);
      EXPECT_EQ(a.term_postings[t][i].tf, b.term_postings[t][i].tf);
    }
  }
}

TEST(SyntheticTest, DfFollowsTargetRates) {
  const auto spec = SmallSpec();
  const auto rates = TermDocRates(spec);
  const auto raw = GenerateRawCorpus(spec);
  // Head terms: realized df within a factor of the target (dedup of
  // size-biased draws loses some mass; tail terms are noisy).
  for (TermId t = 0; t < 20; ++t) {
    const double target = rates[t] * spec.num_docs;
    const auto realized = static_cast<double>(raw.term_postings[t].size());
    EXPECT_GT(realized, target * 0.4) << "term " << t;
    EXPECT_LE(realized, target * 1.05) << "term " << t;
  }
  // Zipf: df roughly decreasing in rank for the head.
  EXPECT_GT(raw.term_postings[0].size(), raw.term_postings[100].size());
  EXPECT_GT(raw.term_postings[100].size(),
            raw.term_postings[1900].size());
}

TEST(SyntheticTest, TopicsAreDeterministicAndCoherent) {
  const auto spec = SmallSpec();
  const auto rates = TermDocRates(spec);
  std::set<std::uint32_t> seen_topics;
  for (TermId t = 0; t < spec.vocab_size; ++t) {
    const auto topic = TermTopic(spec, t, rates[t]);
    EXPECT_EQ(topic, TermTopic(spec, t, rates[t]));
    if (topic != kGlobalTopic) {
      EXPECT_LT(topic, spec.num_topics);
      seen_topics.insert(topic);
    } else {
      EXPECT_GE(rates[t], spec.global_rate_threshold);
    }
  }
  EXPECT_EQ(seen_topics.size(), spec.num_topics);  // all topics populated
  for (DocId d = 0; d < 100; ++d) {
    EXPECT_EQ(DocTopic(spec, d), DocTopic(spec, d));
    EXPECT_LT(DocTopic(spec, d), spec.num_topics);
  }
}

TEST(SyntheticTest, TopicalConcentration) {
  // A topical term's postings should land in its topic's documents far
  // more often than the topic's share of the corpus.
  const auto spec = SmallSpec();
  const auto rates = TermDocRates(spec);
  const auto raw = GenerateRawCorpus(spec);
  std::vector<std::size_t> pool(spec.num_topics, 0);
  for (DocId d = 0; d < spec.num_docs; ++d) ++pool[DocTopic(spec, d)];
  int checked = 0;
  for (TermId t = 0; t < spec.vocab_size && checked < 10; ++t) {
    const auto topic = TermTopic(spec, t, rates[t]);
    if (topic == kGlobalTopic || raw.term_postings[t].size() < 50) continue;
    ++checked;
    std::size_t in_topic = 0;
    for (const auto& p : raw.term_postings[t]) {
      if (DocTopic(spec, p.doc) == topic) ++in_topic;
    }
    const double df = static_cast<double>(raw.term_postings[t].size());
    const double fraction = static_cast<double>(in_topic) / df;
    // Base rate would be 1/num_topics ~ 1.6%. The achievable
    // concentration is capped by the pool size for terms whose df
    // approaches it (they saturate their topic).
    const double achievable =
        std::min(0.30, 0.5 * static_cast<double>(pool[topic]) / df);
    EXPECT_GT(fraction, achievable) << "term " << t;
  }
  EXPECT_GE(checked, 5);
}

TEST(SizeFactorTest, MixtureHasUnitishMeanAndHeavyTail) {
  SyntheticCorpusSpec spec;
  const auto factors = MixtureSizeFactors(spec, 50'000, 5);
  double sum = 0;
  std::size_t heavy = 0;
  for (const double f : factors) {
    EXPECT_GT(f, 0.0);
    sum += f;
    if (f > 10.0) ++heavy;
  }
  const double expected_mean =
      1.0 + spec.long_doc_fraction * (spec.long_doc_factor - 1.0);
  EXPECT_NEAR(sum / 50'000, expected_mean, expected_mean * 0.25);
  EXPECT_GT(heavy, 1000u);  // aggregator pages exist in force
}

TEST(ScaleUpTest, PreservesTermFrequencyDistribution) {
  const auto spec = SmallSpec();
  const auto base = GenerateRawCorpus(spec);
  ScaleUpSpec up;
  up.factor = 4;
  const auto scaled = ScaleUpCorpus(base, spec, up);

  EXPECT_EQ(scaled.num_docs, base.num_docs * 4);
  const auto base_stats = MeasureTermStats(base);
  const auto scaled_stats = MeasureTermStats(scaled);
  // Head-term document rates preserved within tolerance (the paper's
  // stated property of the ClueWebX10 construction).
  for (TermId t = 0; t < 30; ++t) {
    if (base_stats[t].doc_rate < 0.01) continue;
    EXPECT_NEAR(scaled_stats[t].doc_rate, base_stats[t].doc_rate,
                base_stats[t].doc_rate * 0.25)
        << "term " << t;
    EXPECT_NEAR(scaled_stats[t].mean_tf, base_stats[t].mean_tf,
                base_stats[t].mean_tf * 0.3)
        << "term " << t;
  }
}

TEST(TextCorpusTest, PipelineRoundTrip) {
  SyntheticCorpusSpec spec;
  spec.num_docs = 300;
  spec.vocab_size = 400;
  spec.mean_unique_terms = 20.0;
  spec.seed = 5;
  const auto docs = GenerateTextCorpus(spec);
  ASSERT_EQ(docs.size(), 300u);

  index::IndexBuilder builder(
      text::TokenizerOptions{.remove_stopwords = false});
  for (const auto& doc : docs) builder.AddDocument(doc);
  const auto idx = builder.Build();
  EXPECT_EQ(idx.num_docs(), 300u);
  EXPECT_GT(idx.total_postings(), 300u * 5);
  // Every token is a synthetic word, so the vocabulary maps back.
  EXPECT_GT(builder.vocabulary().size(), 50u);
}

class QueryLogTest : public ::testing::Test {
 protected:
  QueryLogTest()
      : spec_(SmallSpec()),
        idx_(index::FinalizeIndex(GenerateRawCorpus(spec_))) {}

  SyntheticCorpusSpec spec_;
  index::InvertedIndex idx_;
};

TEST_F(QueryLogTest, LengthsAndDistinctness) {
  QueryLogSpec qs;
  qs.min_df = 2;
  qs.queries_per_length = 30;
  const QueryLog log(idx_, qs, &spec_);
  for (int len = 1; len <= 12; ++len) {
    const auto& bucket = log.OfLength(len);
    ASSERT_EQ(bucket.size(), 30u);
    for (const auto& q : bucket) {
      EXPECT_EQ(q.size(), static_cast<std::size_t>(len));
      std::set<TermId> unique(q.begin(), q.end());
      EXPECT_EQ(unique.size(), q.size());
      for (const TermId t : q) EXPECT_GE(idx_.Entry(t).df, qs.min_df);
    }
  }
  EXPECT_EQ(log.All().size(), 12u * 30u);
}

TEST_F(QueryLogTest, DeterministicForSeed) {
  QueryLogSpec qs;
  qs.min_df = 2;
  qs.queries_per_length = 5;
  const QueryLog a(idx_, qs, &spec_);
  const QueryLog b(idx_, qs, &spec_);
  for (int len = 1; len <= 12; ++len) {
    EXPECT_EQ(a.OfLength(len), b.OfLength(len));
  }
}

TEST_F(QueryLogTest, VoiceMixDistribution) {
  QueryLogSpec qs;
  qs.min_df = 2;
  const QueryLog log(idx_, qs, &spec_);
  const auto mix = log.VoiceMix(4000, 1234);
  ASSERT_EQ(mix.size(), 4000u);
  double mean = 0;
  std::size_t long_queries = 0;
  for (const auto& q : mix) {
    mean += static_cast<double>(q.size());
    if (q.size() >= 10) ++long_queries;
  }
  mean /= 4000.0;
  // Guy [SIGIR'16]: mean 4.2 (clamping shifts it slightly up), and more
  // than 5% of queries have 10+ terms.
  EXPECT_NEAR(mean, 4.4, 0.5);
  EXPECT_GT(long_queries, 4000u * 5 / 100);
}

TEST_F(QueryLogTest, QueriesAreTopical) {
  QueryLogSpec qs;
  qs.min_df = 2;
  qs.queries_per_length = 50;
  const QueryLog log(idx_, qs, &spec_);
  const auto rates = TermDocRates(spec_);
  // For most 8-term queries, several terms should share one topic.
  int topical_queries = 0;
  for (const auto& q : log.OfLength(8)) {
    std::map<std::uint32_t, int> counts;
    for (const TermId t : q) {
      const auto topic = TermTopic(spec_, t, rates[t]);
      if (topic != kGlobalTopic) ++counts[topic];
    }
    int max_shared = 0;
    for (const auto& [topic, count] : counts) {
      max_shared = std::max(max_shared, count);
    }
    if (max_shared >= 3) ++topical_queries;
  }
  EXPECT_GT(topical_queries, 25);
}

}  // namespace
}  // namespace sparta::corpus

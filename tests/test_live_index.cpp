// Live index updates (DESIGN.md §12): delta segments, epoch-based
// snapshot reclamation, crash-consistent merges, and the live serving
// loop. The PR's acceptance invariants are gated here:
//  1. Snapshot equivalence — merges preserve posting scores bit-for-bit,
//     so a query over a pinned {main, delta} snapshot returns exactly
//     the merged single-segment index's results.
//  2. Snapshot isolation — a query pinned before a merge publish keeps
//     seeing its snapshot unchanged until it drains; the epoch shadow
//     discipline is race-detector-checked in both directions.
//  3. Crash consistency — injected merge aborts and torn writes roll
//     back to the last published snapshot (and never promote a file to
//     the persist path); a same-seed replay is bit-identical.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/snapshot_search.h"
#include "index/delta_segment.h"
#include "index/disk_format.h"
#include "index/epoch.h"
#include "index/live_index.h"
#include "index/scorer.h"
#include "serve/live.h"
#include "sim/race_detector.h"
#include "test_helpers.h"

namespace sparta::test {
namespace {

using index::DeltaSegment;
using index::EpochManager;
using index::IndexSnapshot;
using index::InvertedIndex;
using index::LiveIndex;
using index::MergeOutcome;
using index::MergeSegments;
using index::TermCount;

std::shared_ptr<const InvertedIndex> Shared(InvertedIndex idx) {
  return std::make_shared<const InvertedIndex>(std::move(idx));
}

/// Inverts a term-major raw corpus into per-document ingest records
/// (term lists come out sorted because the outer loop is term-major).
std::vector<serve::IngestDoc> InvertToDocs(const index::RawIndexData& raw) {
  std::vector<serve::IngestDoc> docs(raw.num_docs);
  for (TermId t = 0; t < raw.term_postings.size(); ++t) {
    for (const index::RawPosting& p : raw.term_postings[t]) {
      docs[p.doc].terms.push_back({t, p.tf});
    }
  }
  for (std::uint32_t d = 0; d < raw.num_docs; ++d) {
    docs[d].doc_len = std::max<std::uint32_t>(1, raw.doc_lengths[d]);
  }
  return docs;
}

std::vector<serve::IngestDoc> MakeIngestDocs(std::uint32_t num_docs,
                                             std::uint64_t seed,
                                             std::uint32_t vocab = 400) {
  corpus::SyntheticCorpusSpec spec;
  spec.num_docs = num_docs;
  spec.vocab_size = vocab;
  spec.mean_unique_terms = 25.0;
  spec.seed = seed;
  return InvertToDocs(corpus::GenerateRawCorpus(spec));
}

/// Feeds `docs` into the live index's active delta (writer domain).
void AddAll(LiveIndex& live, std::span<const serve::IngestDoc> docs) {
  const util::SerialGuard guard(live.writer());
  for (const serve::IngestDoc& d : docs) live.Add(d.terms, d.doc_len);
}

// --- DeltaSegment ----------------------------------------------------

TEST(DeltaSegment, FreezeScoresAgainstAnchorStatistics) {
  const InvertedIndex anchor = MakeTinyIndex();
  const TermId t0 = PickQueryTerms(anchor, 1)[0];
  DeltaSegment delta(anchor);
  const std::vector<TermCount> doc = {{t0, 3}};
  EXPECT_EQ(delta.Add(doc, 50), 0u);
  EXPECT_EQ(delta.num_docs(), 1u);
  EXPECT_EQ(delta.num_postings(), 1u);

  const InvertedIndex frozen = delta.Freeze();
  EXPECT_TRUE(delta.empty());
  EXPECT_EQ(frozen.num_docs(), 1u);
  ASSERT_GE(frozen.num_terms(), anchor.num_terms());
  ASSERT_EQ(frozen.Entry(t0).df, 1u);

  // Delta postings score against anchor N/avgdl with df = anchor df +
  // local df, so they are comparable with main-segment scores.
  const index::Scorer scorer(anchor.num_docs(), anchor.avg_doc_len());
  const index::PackedScore expected =
      scorer.TermScore(3, anchor.Entry(t0).df + 1, 50);
  const index::TermView view = frozen.Term(t0);
  ASSERT_EQ(view.df(), 1u);
  EXPECT_EQ(view.doc_order[0].doc, 0u);
  EXPECT_EQ(view.doc_order[0].score, expected);
  EXPECT_EQ(view.max_score, expected);
}

TEST(DeltaSegment, FreezeHandlesTermsBeyondAnchorVocabulary) {
  const InvertedIndex anchor = MakeTinyIndex();
  const TermId fresh = anchor.num_terms() + 5;
  DeltaSegment delta(anchor);
  const std::vector<TermCount> doc = {{fresh, 2}};
  delta.Add(doc, 10);
  const InvertedIndex frozen = delta.Freeze();
  ASSERT_GT(frozen.num_terms(), fresh);
  EXPECT_EQ(frozen.Entry(fresh).df, 1u);
  // The anchor never saw the term, so df for idf is the local df alone.
  const index::Scorer scorer(anchor.num_docs(), anchor.avg_doc_len());
  EXPECT_EQ(frozen.Term(fresh).doc_order[0].score,
            scorer.TermScore(2, 1, 10));
}

// --- MergeSegments: snapshot equivalence -----------------------------

TEST(MergeSegments, MergedIndexEqualsPerSegmentResults) {
  InvertedIndex main_idx = MakeTinyIndex(1500, /*seed=*/7);
  const auto docs = MakeIngestDocs(200, /*seed=*/99);
  DeltaSegment delta(main_idx);
  for (const auto& d : docs) delta.Add(d.terms, d.doc_len);
  InvertedIndex frozen = delta.Freeze();

  const InvertedIndex merged = MergeSegments(main_idx, frozen);
  ASSERT_EQ(merged.num_docs(), main_idx.num_docs() + frozen.num_docs());
  ASSERT_EQ(merged.total_postings(),
            main_idx.total_postings() + frozen.total_postings());

  const std::uint32_t base = main_idx.num_docs();
  const IndexSnapshot snap{Shared(std::move(main_idx)),
                           Shared(std::move(frozen)), base, 1};
  const auto algo = algos::MakeAlgorithm("MaxScore");
  ASSERT_NE(algo, nullptr);
  topk::SearchParams params;
  params.k = 25;
  for (std::uint64_t salt = 0; salt < 4; ++salt) {
    const auto terms = PickQueryTerms(*snap.main, 3, salt);
    sim::SimConfig config;
    config.num_workers = 4;
    sim::SimExecutor executor(config);
    auto ctx = executor.CreateQuery();
    const auto via_snapshot =
        core::SearchSnapshot(*algo, snap, terms, params, *ctx);
    ASSERT_TRUE(via_snapshot.ok());
    // Exact on the merged id space: byte-for-byte score preservation
    // makes the composed per-segment run exact for the merged index.
    EXPECT_TRUE(IsExactTopK(merged, terms, params.k, via_snapshot));
    // And entry-identical to the same algorithm run on the merged
    // segment directly.
    auto direct = RunOnSim(merged, "MaxScore", terms, params);
    topk::CanonicalizeResult(direct.entries);
    EXPECT_EQ(via_snapshot.entries, direct.entries);
  }
}

// --- EpochManager ----------------------------------------------------

TEST(EpochManager, PinsBlockReclamationUntilReleased) {
  auto main_sp = Shared(MakeTinyIndex(200, 3));
  EpochManager mgr(IndexSnapshot{main_sp, nullptr, 0, 0});
  EXPECT_EQ(mgr.current_epoch(), 0u);

  EpochManager::Pin a = mgr.Acquire();
  EXPECT_TRUE(a.valid());
  EXPECT_EQ(a->epoch, 0u);
  EXPECT_EQ(mgr.pins(0), 1u);

  mgr.Publish(IndexSnapshot{main_sp, nullptr, 0, 1});
  EXPECT_EQ(mgr.current_epoch(), 1u);
  EXPECT_EQ(mgr.retired(), 1u);
  EXPECT_EQ(mgr.Collect(), 0u) << "pinned epoch must not be reclaimed";

  EpochManager::Pin b = mgr.Acquire();
  EXPECT_EQ(b->epoch, 1u);

  a.Release();
  a.Release();  // idempotent
  EXPECT_EQ(mgr.pins(0), 0u);
  EXPECT_EQ(mgr.Collect(), 1u);
  EXPECT_EQ(mgr.reclaimed(), 1u);
  EXPECT_EQ(mgr.retired(), 0u);

  // Move semantics transfer the pin without double-release.
  EpochManager::Pin c = std::move(b);
  EXPECT_TRUE(c.valid());
  EXPECT_FALSE(b.valid());  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(mgr.pins(1), 1u);
  c.Release();
  EXPECT_EQ(mgr.pins(1), 0u);
}

// --- Epoch shadow discipline under the deterministic race detector ---
//
// Both jobs are submitted from the host (no fork edge between them), so
// ordering can only come from the shared epoch lock: with it, the
// reclaim's shadow WRITE is ordered after the reader's shadow READ;
// without it, the pair is a protocol violation and must be reported.

TEST(EpochShadow, LockedReclaimHasNoRaceFindings) {
  auto main_sp = Shared(MakeTinyIndex(200, 3));
  EpochManager mgr(IndexSnapshot{main_sp, nullptr, 0, 0});
  sim::SimConfig config;
  config.num_workers = 2;
  config.race_check = true;
  sim::SimExecutor executor(config);
  auto ctx = executor.CreateQuery();
  auto lock = ctx->MakeLock();
  // Reader job: charge first so the reclaim job lands on the other
  // worker (least-loaded placement would otherwise serialize them).
  ctx->Submit([&](exec::WorkerContext& worker) {
    worker.Charge(100'000);
    const exec::CtxLockGuard guard(*lock, worker);
    mgr.ShadowPin(worker, 0);
  });
  mgr.Publish(IndexSnapshot{main_sp, nullptr, 0, 1});
  ctx->Submit([&](exec::WorkerContext& worker) {
    const exec::CtxLockGuard guard(*lock, worker);
    EXPECT_EQ(mgr.Collect(worker), 1u);
  });
  ctx->RunToCompletion();
  ASSERT_NE(executor.race_detector(), nullptr);
  EXPECT_TRUE(executor.race_detector()->reports().empty());
}

TEST(EpochShadow, UnlockedReclaimIsReported) {
  auto main_sp = Shared(MakeTinyIndex(200, 3));
  EpochManager mgr(IndexSnapshot{main_sp, nullptr, 0, 0});
  sim::SimConfig config;
  config.num_workers = 2;
  config.race_check = true;
  sim::SimExecutor executor(config);
  auto ctx = executor.CreateQuery();
  ctx->Submit([&](exec::WorkerContext& worker) {
    worker.Charge(100'000);
    mgr.ShadowPin(worker, 0);  // no epoch lock: protocol violation
  });
  mgr.Publish(IndexSnapshot{main_sp, nullptr, 0, 1});
  ctx->Submit([&](exec::WorkerContext& worker) {
    EXPECT_EQ(mgr.Collect(worker), 1u);
  });
  ctx->RunToCompletion();
  ASSERT_NE(executor.race_detector(), nullptr);
  const auto& reports = executor.race_detector()->reports();
  ASSERT_FALSE(reports.empty())
      << "an unlocked reclaim racing a pinned reader must be reported";
  EXPECT_EQ(reports[0].addr, mgr.shadow_slot(0));
}

// --- LiveIndex -------------------------------------------------------

TEST(LiveIndex, RefreshPublishesBufferedDocs) {
  LiveIndex live(MakeTinyIndex(1000, 7));
  const auto docs = MakeIngestDocs(100, 21);
  AddAll(live, std::span(docs).subspan(0, 40));
  {
    // Buffered docs are invisible until a refresh publishes them.
    auto pin = live.AcquireSnapshot();
    EXPECT_EQ(pin->num_docs(), 1000u);
    EXPECT_EQ(pin->epoch, 0u);
  }
  {
    const util::SerialGuard guard(live.writer());
    EXPECT_EQ(live.buffered_docs(), 40u);
    EXPECT_TRUE(live.Refresh());
    EXPECT_FALSE(live.Refresh()) << "empty active delta publishes nothing";
  }
  auto pin = live.AcquireSnapshot();
  EXPECT_EQ(pin->epoch, 1u);
  EXPECT_EQ(pin->num_docs(), 1040u);
  ASSERT_NE(pin->delta, nullptr);
  EXPECT_EQ(pin->delta_doc_base, 1000u);

  // A second refresh folds into one frozen delta (refreeze), so a
  // snapshot never carries more than two segments.
  AddAll(live, std::span(docs).subspan(40, 60));
  {
    const util::SerialGuard guard(live.writer());
    ASSERT_TRUE(live.Refresh());
    EXPECT_EQ(live.refreshes(), 2u);
  }
  auto pin2 = live.AcquireSnapshot();
  EXPECT_EQ(pin2->num_docs(), 1100u);
  ASSERT_NE(pin2->delta, nullptr);
  EXPECT_EQ(pin2->delta->num_docs(), 100u);
}

TEST(LiveIndex, SnapshotIsolationAcrossMergePublish) {
  LiveIndex live(MakeTinyIndex(1200, 7));
  const auto docs = MakeIngestDocs(150, 33);
  AddAll(live, docs);
  {
    const util::SerialGuard guard(live.writer());
    ASSERT_TRUE(live.Refresh());
  }
  // Reclaim the pre-refresh epoch so the only retirable snapshot below
  // is the one pin1 holds.
  live.epochs().Collect();

  const auto algo = algos::MakeAlgorithm("MaxScore");
  ASSERT_NE(algo, nullptr);
  topk::SearchParams params;
  params.k = 20;
  auto pin1 = live.AcquireSnapshot();
  const auto terms = PickQueryTerms(*pin1->main, 3, 1);

  const auto search = [&](const IndexSnapshot& snap) {
    sim::SimConfig config;
    config.num_workers = 4;
    sim::SimExecutor executor(config);
    auto ctx = executor.CreateQuery();
    return core::SearchSnapshot(*algo, snap, terms, params, *ctx);
  };

  const auto before = search(*pin1);

  // Merge + publish while pin1 stays pinned.
  {
    const util::SerialGuard guard(live.writer());
    ASSERT_TRUE(live.CanMerge());
    const IndexSnapshot snap = live.BeginMerge();
    InvertedIndex merged = MergeSegments(*snap.main, *snap.delta);
    ASSERT_EQ(live.CommitMerge(std::move(merged)),
              MergeOutcome::kCommitted);
    EXPECT_EQ(live.merges_committed(), 1u);
  }

  // The pinned query still sees the pre-merge view, bit-identically.
  const auto after = search(*pin1);
  EXPECT_EQ(after.entries, before.entries);
  EXPECT_EQ(after.status, before.status);

  // A fresh pin sees the merged single segment — same documents, same
  // scores, so the same results.
  auto pin2 = live.AcquireSnapshot();
  EXPECT_GT(pin2->epoch, pin1->epoch);
  EXPECT_EQ(pin2->delta, nullptr);
  EXPECT_EQ(pin2->num_docs(), pin1->num_docs());
  const auto merged_view = search(*pin2);
  EXPECT_EQ(merged_view.entries, before.entries);

  // Reclamation honors the pin.
  EXPECT_EQ(live.epochs().Collect(), 0u);
  pin1.Release();
  EXPECT_GE(live.epochs().Collect(), 1u);
}

TEST(LiveIndex, MergeAbortAndTornWriteRollBack) {
  const std::string path =
      ::testing::TempDir() + "/sparta_live_index_test.idx";
  std::remove(path.c_str());
  index::LiveIndexConfig config;
  config.persist_path = path;
  LiveIndex live(MakeTinyIndex(800, 7), config);
  const auto docs = MakeIngestDocs(120, 5);
  AddAll(live, docs);

  const util::SerialGuard guard(live.writer());
  ASSERT_TRUE(live.Refresh());
  const std::uint64_t epoch_before = live.published_epoch();

  // Injected abort: published snapshot and disk untouched, frozen delta
  // stays queued for the retry.
  {
    const IndexSnapshot snap = live.BeginMerge();
    InvertedIndex merged = MergeSegments(*snap.main, *snap.delta);
    EXPECT_EQ(live.CommitMerge(std::move(merged), /*abort_fault=*/true),
              MergeOutcome::kAborted);
  }
  EXPECT_EQ(live.published_epoch(), epoch_before);
  EXPECT_EQ(live.merges_aborted(), 1u);
  EXPECT_TRUE(live.CanMerge());

  // Injected torn write: the temporary fails checksum validation and is
  // discarded; nothing is promoted to the persist path.
  {
    const IndexSnapshot snap = live.BeginMerge();
    InvertedIndex merged = MergeSegments(*snap.main, *snap.delta);
    EXPECT_EQ(live.CommitMerge(std::move(merged), /*abort_fault=*/false,
                               /*torn_write_fault=*/true),
              MergeOutcome::kTornWrite);
  }
  EXPECT_EQ(live.published_epoch(), epoch_before);
  EXPECT_EQ(live.torn_writes(), 1u);
  std::string error;
  EXPECT_FALSE(index::LoadIndex(path, &error).has_value())
      << "torn write must not promote a file";

  // Clean retry: validated, renamed into place, published.
  {
    const IndexSnapshot snap = live.BeginMerge();
    InvertedIndex merged = MergeSegments(*snap.main, *snap.delta);
    EXPECT_EQ(live.CommitMerge(std::move(merged)),
              MergeOutcome::kCommitted);
  }
  EXPECT_GT(live.published_epoch(), epoch_before);
  const auto loaded = index::LoadIndex(path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->num_docs(), 920u);
  std::remove(path.c_str());
}

TEST(LiveIndex, CompactNowFoldsEverything) {
  LiveIndex live(MakeTinyIndex(600, 7));
  const auto docs = MakeIngestDocs(90, 11);
  AddAll(live, docs);
  {
    const util::SerialGuard guard(live.writer());
    live.CompactNow();
  }
  auto pin = live.AcquireSnapshot();
  EXPECT_EQ(pin->delta, nullptr);
  ASSERT_NE(pin->main, nullptr);
  EXPECT_EQ(pin->main->num_docs(), 690u);
}

// --- Live serving: ingest + query traffic on one machine -------------

struct LiveScenario {
  std::vector<serve::IngestDoc> docs;
  std::vector<std::vector<TermId>> queries;
  serve::LiveServeConfig config;
  topk::SearchParams params;
};

LiveScenario MakeScenario() {
  LiveScenario s;
  const InvertedIndex main_idx = MakeTinyIndex(1200, 7);
  s.docs = MakeIngestDocs(300, 99);
  for (std::uint64_t salt = 0; salt < 6; ++salt) {
    s.queries.push_back(PickQueryTerms(main_idx, 3, salt));
  }
  s.params.k = 20;
  s.config.serve.arrivals.count = 50;
  s.config.serve.arrivals.rate_qps = 3000.0;
  s.config.serve.arrivals.seed = 11;
  s.config.serve.slo = 30 * exec::kMillisecond;
  s.config.ingest.arrivals.count = 300;
  s.config.ingest.arrivals.rate_qps = 20'000.0;
  s.config.ingest.arrivals.seed = 12;
  s.config.ingest.refresh_every_docs = 32;
  s.config.ingest.merge_min_docs = 64;
  s.config.ingest.merge_chunk_postings = 4096;
  return s;
}

serve::LiveServeResult RunLive(const LiveScenario& s,
                               const sim::SimConfig& sim_config) {
  LiveIndex live(MakeTinyIndex(1200, 7));
  sim::SimExecutor executor(sim_config);
  const auto algo = algos::MakeAlgorithm("MaxScore");
  SPARTA_CHECK(algo != nullptr);
  serve::LiveServer server(live, *algo, s.config);
  return server.ServeOnSim(executor, s.queries, s.docs, s.params);
}

/// The clock-free projection of a live run: bit-stable per seed, never
/// compares virtual timestamps (heap-layout jitter makes latencies
/// reproducible only to ~0.1%).
struct LiveShape {
  std::vector<std::vector<topk::ResultEntry>> entries;
  std::vector<topk::AdmissionOutcome> outcomes;
  std::vector<index::MergeOutcome> merges;
  std::uint64_t refreshes = 0;
  std::uint64_t committed = 0;
  std::uint64_t aborted = 0;
  std::uint64_t torn = 0;
  std::size_t ingested = 0;

  friend bool operator==(const LiveShape&, const LiveShape&) = default;
};

LiveShape ShapeOf(const serve::LiveServeResult& r) {
  LiveShape shape;
  for (const auto& q : r.serve.queries) {
    shape.entries.push_back(q.result.entries);
    shape.outcomes.push_back(q.outcome);
  }
  for (const auto& m : r.merges) shape.merges.push_back(m.outcome);
  shape.refreshes = r.refreshes;
  shape.committed = r.merges_committed;
  shape.aborted = r.merges_aborted;
  shape.torn = r.torn_writes;
  shape.ingested = r.docs_ingested;
  return shape;
}

TEST(LiveServe, IngestAndMergeUnderTrafficIsDeterministic) {
  const LiveScenario s = MakeScenario();
  sim::SimConfig sim_config;
  sim_config.num_workers = 4;
  const auto r1 = RunLive(s, sim_config);
  EXPECT_EQ(r1.docs_offered, 300u);
  EXPECT_EQ(r1.docs_ingested, r1.docs_offered);
  EXPECT_GT(r1.refreshes, 0u);
  EXPECT_GT(r1.merges_committed, 0u);
  EXPECT_EQ(r1.merges_aborted, 0u);
  EXPECT_EQ(r1.merges.size(),
            r1.merges_committed + r1.merges_aborted + r1.torn_writes);
  EXPECT_GT(r1.epochs_published, 0u);
  EXPECT_GT(r1.epochs_reclaimed, 0u);
  EXPECT_EQ(r1.serve.completed, r1.serve.admitted);
  for (const auto& q : r1.serve.queries) {
    if (q.outcome != topk::AdmissionOutcome::kAdmitted) continue;
    EXPECT_TRUE(q.result.ok() || q.result.degraded());
    EXPECT_LE(q.result.entries.size(), 20u);
  }
  // Same seeds, fresh machine and index: bit-identical replay.
  const auto r2 = RunLive(s, sim_config);
  EXPECT_EQ(ShapeOf(r1), ShapeOf(r2));
}

TEST(LiveServe, ConcurrentMergeHasZeroRaceFindings) {
  const LiveScenario s = MakeScenario();
  sim::SimConfig sim_config;
  sim_config.num_workers = 4;
  sim_config.race_check = true;
  LiveIndex live(MakeTinyIndex(1200, 7));
  sim::SimExecutor executor(sim_config);
  const auto algo = algos::MakeAlgorithm("MaxScore");
  ASSERT_NE(algo, nullptr);
  serve::LiveServer server(live, *algo, s.config);
  const auto result =
      server.ServeOnSim(executor, s.queries, s.docs, s.params);
  EXPECT_GT(result.merges_committed, 0u)
      << "the scenario must actually merge under query traffic";
  ASSERT_NE(executor.race_detector(), nullptr);
  const auto& reports = executor.race_detector()->reports();
  EXPECT_TRUE(reports.empty())
      << "first finding: "
      << (reports.empty() ? std::string() : reports[0].Describe());
}

TEST(LiveServe, InjectedMergeFaultsRollBackAndReplayBitIdentically) {
  const LiveScenario s = MakeScenario();
  sim::SimConfig sim_config;
  sim_config.num_workers = 4;
  sim_config.faults.seed = 1;
  sim_config.faults.merge_abort_prob = 0.4;
  sim_config.faults.torn_write_prob = 0.4;
  const auto r1 = RunLive(s, sim_config);
  // This seed's plan fires both failure kinds (and most seeds fire at
  // least one; coverage was checked over seeds 1..40).
  EXPECT_GT(r1.merges_aborted, 0u)
      << "the seeded plan must inject at least one merge abort";
  EXPECT_GT(r1.torn_writes, 0u)
      << "the seeded plan must inject at least one torn write";
  EXPECT_GT(r1.merges_committed, 0u)
      << "the run must also recover with a committed merge";
  EXPECT_FALSE(r1.recovery_ns.empty());
  for (const exec::VirtualTime ns : r1.recovery_ns) EXPECT_GT(ns, 0);
  EXPECT_EQ(r1.docs_ingested, r1.docs_offered);
  // Merge faults only delay visibility; they never corrupt reads.
  for (const auto& q : r1.serve.queries) {
    if (q.outcome != topk::AdmissionOutcome::kAdmitted) continue;
    EXPECT_TRUE(q.result.ok() || q.result.degraded());
  }
  const auto r2 = RunLive(s, sim_config);
  EXPECT_EQ(ShapeOf(r1), ShapeOf(r2));
}

TEST(LiveServe, NoIngestReducesToPlainServing) {
  LiveScenario s = MakeScenario();
  s.docs.clear();
  s.config.ingest.arrivals.count = 0;
  sim::SimConfig sim_config;
  sim_config.num_workers = 4;
  const auto r = RunLive(s, sim_config);
  EXPECT_EQ(r.docs_offered, 0u);
  EXPECT_EQ(r.docs_ingested, 0u);
  EXPECT_EQ(r.refreshes, 0u);
  EXPECT_TRUE(r.merges.empty());
  EXPECT_EQ(r.epochs_published, 0u);
  EXPECT_EQ(r.serve.completed, r.serve.admitted);
  const auto r2 = RunLive(s, sim_config);
  EXPECT_EQ(ShapeOf(r), ShapeOf(r2));
}

}  // namespace
}  // namespace sparta::test

// Unit tests: topk — heap, document maps, oracle, recall.
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>

#include "exec/threaded_executor.h"
#include "test_helpers.h"
#include "topk/doc_heap.h"
#include "topk/doc_map.h"
#include "topk/local_accumulator.h"

namespace sparta::topk {
namespace {

TEST(TopKHeapTest, ThresholdIsKthScore) {
  TopKHeap heap(3);
  EXPECT_EQ(heap.threshold(), 0);
  heap.Insert({10, 1});
  heap.Insert({20, 2});
  EXPECT_EQ(heap.threshold(), 0);  // not yet full
  heap.Insert({30, 3});
  EXPECT_EQ(heap.threshold(), 10);
  heap.Insert({15, 4});  // evicts 10
  EXPECT_EQ(heap.threshold(), 15);
  EXPECT_FALSE(heap.Insert({5, 5}));  // below threshold
  EXPECT_TRUE(heap.Contains(4));
  EXPECT_FALSE(heap.Contains(1));
}

TEST(TopKHeapTest, TieBreaksByDocId) {
  TopKHeap heap(2);
  heap.Insert({10, 5});
  heap.Insert({10, 9});
  // Smaller doc id wins a tie: doc 3 displaces doc 9.
  EXPECT_TRUE(heap.Insert({10, 3}));
  EXPECT_TRUE(heap.Contains(3));
  EXPECT_TRUE(heap.Contains(5));
  EXPECT_FALSE(heap.Contains(9));
  // Larger doc id does not displace an equal score.
  EXPECT_FALSE(heap.Insert({10, 7}));
}

class HeapPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(HeapPropertyTest, MatchesSortedReference) {
  const int k = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(k) * 31 + 7);
  TopKHeap heap(k);
  std::vector<HeapEntry> all;
  for (int i = 0; i < 5000; ++i) {
    const HeapEntry e{static_cast<Score>(rng.Below(500)),
                      static_cast<DocId>(i)};
    all.push_back(e);
    heap.Insert(e);
  }
  std::sort(all.begin(), all.end(), [](const HeapEntry& a,
                                       const HeapEntry& b) {
    return WorseThan(b, a);  // best first
  });
  const auto extracted = heap.Extract();
  ASSERT_EQ(extracted.size(), std::min<std::size_t>(k, all.size()));
  for (std::size_t i = 0; i < extracted.size(); ++i) {
    EXPECT_EQ(extracted[i].doc, all[i].doc) << "rank " << i;
    EXPECT_EQ(extracted[i].score, all[i].score) << "rank " << i;
  }
  EXPECT_EQ(heap.threshold(), extracted.back().score);
}

INSTANTIATE_TEST_SUITE_P(Ks, HeapPropertyTest,
                         ::testing::Values(1, 2, 10, 100, 1000));

TEST(TopKHeapTest, MergeEqualsUnion) {
  util::Rng rng(77);
  TopKHeap a(20), b(20), expected(20);
  for (int i = 0; i < 500; ++i) {
    const HeapEntry e{static_cast<Score>(rng.Below(10000)),
                      static_cast<DocId>(i)};
    (i % 2 == 0 ? a : b).Insert(e);
    expected.Insert(e);
  }
  a.Merge(b);
  EXPECT_EQ(a.Extract(), expected.Extract());
}

class DocMapTest : public ::testing::Test {
 protected:
  DocMapTest()
      : executor_({.num_workers = 2}), ctx_(executor_.CreateQuery()) {}

  exec::ThreadedExecutor executor_;
  std::unique_ptr<exec::QueryContext> ctx_;
};

TEST_F(DocMapTest, GetOrCreateAndFind) {
  ConcurrentDocMap map(*ctx_, /*num_terms=*/3);
  ctx_->Submit([&](exec::WorkerContext& w) {
    auto r1 = map.GetOrCreate(42, w);
    EXPECT_TRUE(r1.inserted);
    EXPECT_EQ(r1.doc->id(), 42u);
    auto r2 = map.GetOrCreate(42, w);
    EXPECT_FALSE(r2.inserted);
    EXPECT_EQ(r1.doc, r2.doc);
    EXPECT_EQ(map.Find(42, w), r1.doc);
    EXPECT_EQ(map.Find(7, w), nullptr);
    EXPECT_EQ(map.Size(), 1u);
  });
  ctx_->RunToCompletion();
}

TEST_F(DocMapTest, ReadOnlyFreezeRefusesInserts) {
  ConcurrentDocMap map(*ctx_, 2);
  ctx_->Submit([&](exec::WorkerContext& w) {
    (void)map.GetOrCreate(1, w);
    map.SetReadOnly();
    auto r = map.GetOrCreate(2, w);
    EXPECT_EQ(r.doc, nullptr);
    EXPECT_FALSE(r.inserted);
    EXPECT_FALSE(r.oom);
    EXPECT_EQ(map.Size(), 1u);
    // Existing entries still found.
    auto r2 = map.GetOrCreate(1, w);
    EXPECT_NE(r2.doc, nullptr);
  });
  ctx_->RunToCompletion();
}

TEST_F(DocMapTest, ConcurrentInsertStress) {
  ConcurrentDocMap map(*ctx_, 1);
  std::atomic<int> created{0};
  for (int job = 0; job < 8; ++job) {
    ctx_->Submit([&](exec::WorkerContext& w) {
      for (DocId d = 0; d < 2000; ++d) {
        const auto r = map.GetOrCreate(d, w);
        ASSERT_NE(r.doc, nullptr);
        ASSERT_EQ(r.doc->id(), d);
        if (r.inserted) created.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  ctx_->RunToCompletion();
  EXPECT_EQ(created.load(), 2000);  // each doc created exactly once
  EXPECT_EQ(map.Size(), 2000u);
  EXPECT_EQ(map.PeakSize(), 2000u);
}

TEST_F(DocMapTest, AddScoreAccumulates) {
  ConcurrentDocMap map(*ctx_, 0);
  for (int job = 0; job < 4; ++job) {
    ctx_->Submit([&](exec::WorkerContext& w) {
      for (int i = 0; i < 1000; ++i) {
        const auto r = map.AddScore(5, 2, w);
        ASSERT_NE(r.doc, nullptr);
      }
    });
  }
  ctx_->RunToCompletion();
  ctx_->Submit([&](exec::WorkerContext& w) {
    EXPECT_EQ(map.Find(5, w)->lb.load(), 8000);
  });
  ctx_->RunToCompletion();
}

TEST(DocMapOomTest, BudgetExceededReportsOom) {
  exec::ThreadedExecutor::Options options;
  options.num_workers = 1;
  options.memory_budget_bytes = ModeledEntryBytes(4, true) * 10;
  exec::ThreadedExecutor executor(options);
  auto ctx = executor.CreateQuery();
  ConcurrentDocMap map(*ctx, 4);
  bool saw_oom = false;
  ctx->Submit([&](exec::WorkerContext& w) {
    for (DocId d = 0; d < 100 && !saw_oom; ++d) {
      saw_oom = map.GetOrCreate(d, w).oom;
    }
  });
  ctx->RunToCompletion();
  EXPECT_TRUE(saw_oom);
  EXPECT_LE(map.Size(), 11u);
}

TEST(LocalDocMapTest, AddFindAndMemoryRelease) {
  exec::ThreadedExecutor::Options options;
  options.num_workers = 1;
  options.memory_budget_bytes = ModeledEntryBytes(2, false) * 3 + 1;
  exec::ThreadedExecutor executor(options);
  auto ctx = executor.CreateQuery();
  ctx->Submit([&](exec::WorkerContext& w) {
    DocType a(1, 2), b(2, 2), c(3, 2), d(4, 2);
    LocalDocMap map(2);
    EXPECT_TRUE(map.Add(&a, w));
    EXPECT_TRUE(map.Add(&b, w));
    EXPECT_TRUE(map.Add(&c, w));
    EXPECT_FALSE(map.Add(&d, w));  // 4th entry exceeds the budget
    EXPECT_EQ(map.Find(2, w), &b);
    EXPECT_EQ(map.Find(99, w), nullptr);
    EXPECT_EQ(map.Size(), 3u);  // refused entries are not stored
    // Releasing frees the modeled bytes; a fresh map fits again.
    map.ReleaseModeledMemory(w);
    map.ReleaseModeledMemory(w);  // idempotent
    LocalDocMap fresh(2);
    EXPECT_TRUE(fresh.Add(&a, w));
  });
  ctx->RunToCompletion();
}

// --- batched merge protocol (DESIGN.md §14) -------------------------

// Builds a stripe-homogeneous batch: ApplyBatch's contract is one
// stripe per call, so pick docs that StripeOf maps to the same stripe.
std::vector<DocId> DocsOnOneStripe(std::size_t count) {
  std::vector<DocId> docs;
  const std::size_t stripe = ConcurrentDocMap::StripeOf(0);
  for (DocId d = 0; docs.size() < count && d < 100'000; ++d) {
    if (ConcurrentDocMap::StripeOf(d) == stripe) docs.push_back(d);
  }
  SPARTA_CHECK(docs.size() == count);
  return docs;
}

TEST_F(DocMapTest, ApplyBatchGroupsDocsAndReportsInserted) {
  ConcurrentDocMap map(*ctx_, /*num_terms=*/2);
  const auto docs = DocsOnOneStripe(3);
  ctx_->Submit([&](exec::WorkerContext& w) {
    (void)map.GetOrCreate(docs[1], w);  // pre-existing entry
    // Two contributions for docs[0] (contiguous group), one each for
    // the others.
    const std::vector<PendingScore> batch = {
        {docs[0], 0, 5}, {docs[0], 1, 7}, {docs[1], 0, 3}, {docs[2], 1, 9},
    };
    std::vector<std::pair<DocId, bool>> seen;
    std::vector<std::size_t> group_sizes;
    const auto result = map.ApplyBatch(
        batch, w,
        [&](std::span<const PendingScore> group, DocType* entry,
            bool inserted) {
          ASSERT_NE(entry, nullptr);
          seen.emplace_back(group.front().doc, inserted);
          group_sizes.push_back(group.size());
          for (const auto& p : group) {
            entry->score[p.term].store(p.score,
                                       std::memory_order_relaxed);
          }
        });
    EXPECT_EQ(result.applied, 3u);  // three doc groups
    EXPECT_EQ(result.refused, 0u);
    EXPECT_FALSE(result.oom);
    ASSERT_EQ(seen.size(), 3u);
    EXPECT_EQ(seen[0], (std::pair<DocId, bool>{docs[0], true}));
    EXPECT_EQ(seen[1], (std::pair<DocId, bool>{docs[1], false}));
    EXPECT_EQ(seen[2], (std::pair<DocId, bool>{docs[2], true}));
    EXPECT_EQ(group_sizes, (std::vector<std::size_t>{2, 1, 1}));
    // The sink's writes landed under the lock.
    EXPECT_EQ(map.Find(docs[0], w)->score[1].load(), 7);
    EXPECT_EQ(map.Find(docs[2], w)->score[1].load(), 9);
    EXPECT_EQ(map.Size(), 3u);
  });
  ctx_->RunToCompletion();
}

TEST_F(DocMapTest, ApplyBatchRefusesNewDocsAfterCutoff) {
  ConcurrentDocMap map(*ctx_, 1);
  const auto docs = DocsOnOneStripe(2);
  ctx_->Submit([&](exec::WorkerContext& w) {
    (void)map.GetOrCreate(docs[0], w);
    map.SetReadOnly();
    const std::vector<PendingScore> batch = {{docs[0], 0, 4},
                                             {docs[1], 0, 6}};
    const auto result = map.ApplyBatch(
        batch, w,
        [](std::span<const PendingScore> group, DocType* entry, bool) {
          entry->score[0].store(group.front().score,
                                std::memory_order_relaxed);
        });
    // Existing docs still take updates; new docs are refused — the
    // post-cutoff drop the caller proves safe via SumUB <= theta.
    EXPECT_EQ(result.applied, 1u);
    EXPECT_EQ(result.refused, 1u);
    EXPECT_FALSE(result.oom);
    EXPECT_EQ(map.Find(docs[0], w)->score[0].load(), 4);
    EXPECT_EQ(map.Find(docs[1], w), nullptr);
  });
  ctx_->RunToCompletion();
}

TEST(DocMapBatchOomTest, ApplyBatchStopsHonestlyMidBatch) {
  exec::ThreadedExecutor::Options options;
  options.num_workers = 1;
  options.memory_budget_bytes = ModeledEntryBytes(1, true) * 2 + 1;
  exec::ThreadedExecutor executor(options);
  auto ctx = executor.CreateQuery();
  ConcurrentDocMap map(*ctx, 1);
  ctx->Submit([&](exec::WorkerContext& w) {
    std::vector<PendingScore> batch;
    const std::size_t stripe = ConcurrentDocMap::StripeOf(0);
    for (DocId d = 0; batch.size() < 8 && d < 100'000; ++d) {
      if (ConcurrentDocMap::StripeOf(d) == stripe) batch.push_back({d, 0, 1});
    }
    std::size_t sink_calls = 0;
    const auto result = map.ApplyBatch(
        batch, w,
        [&](std::span<const PendingScore>, DocType*, bool) {
          ++sink_calls;
        });
    // The budget admits two entries; the third insert fails and the
    // batch stops there — applied groups stay applied (no rollback),
    // the rest is reported via oom, never silently dropped.
    EXPECT_TRUE(result.oom);
    EXPECT_EQ(result.applied, 2u);
    EXPECT_EQ(sink_calls, 2u);
    EXPECT_EQ(map.Size(), 2u);
  });
  ctx->RunToCompletion();
}

TEST(LocalAccumulatorTest, CoalescesPerModeAndMergesInArrivalOrder) {
  exec::ThreadedExecutor executor({.num_workers = 1});
  auto ctx = executor.CreateQuery();
  ConcurrentDocMap map(*ctx, 2);
  ctx->Submit([&](exec::WorkerContext& w) {
    LocalAccumulator store(AccumulatorMode::kStore, 2);
    ASSERT_TRUE(store.Add(10, 0, 5, w));
    ASSERT_TRUE(store.Add(10, 0, 8, w));  // same key: overwrite
    ASSERT_TRUE(store.Add(11, 1, 2, w));
    EXPECT_EQ(store.Size(), 2u);  // coalesced, not appended

    std::vector<DocId> merge_order;
    const auto stats = store.MergeInto(
        map, w,
        [&](std::span<const PendingScore> group, DocType* entry,
            bool inserted, Score folded) {
          merge_order.push_back(group.front().doc);
          EXPECT_TRUE(inserted);
          EXPECT_EQ(group.size(), 1u);
          entry->score[group.front().term].store(
              folded, std::memory_order_relaxed);
        });
    EXPECT_EQ(stats.applied, 2u);
    EXPECT_FALSE(stats.oom);
    EXPECT_GE(stats.batches, 1u);
    EXPECT_TRUE(store.Empty());  // merge always drains the buffer
    EXPECT_EQ(map.Find(10, w)->score[0].load(), 8);  // latest value won
    EXPECT_EQ(map.Find(11, w)->score[1].load(), 2);

    LocalAccumulator sum(AccumulatorMode::kAccumulate, 2);
    ASSERT_TRUE(sum.Add(20, 0, 5, w));
    ASSERT_TRUE(sum.Add(20, 0, 8, w));  // same key: add
    EXPECT_EQ(sum.Size(), 1u);
    Score folded_total = 0;
    (void)sum.MergeInto(map, w,
                        [&](std::span<const PendingScore>, DocType*, bool,
                            Score folded) { folded_total = folded; });
    EXPECT_EQ(folded_total, 13);
  });
  ctx->RunToCompletion();
}

TEST(LocalAccumulatorTest, ChargesAndReleasesModeledMemory) {
  exec::ThreadedExecutor::Options options;
  options.num_workers = 1;
  options.memory_budget_bytes = ModeledEntryBytes(1, false) * 2 + 1;
  exec::ThreadedExecutor executor(options);
  auto ctx = executor.CreateQuery();
  ctx->Submit([&](exec::WorkerContext& w) {
    LocalAccumulator acc(AccumulatorMode::kStore, 1);
    EXPECT_TRUE(acc.Add(1, 0, 1, w));
    EXPECT_TRUE(acc.Add(2, 0, 1, w));
    // Third distinct doc exceeds the budget: buffering cannot hide
    // footprint from the OOM accounting.
    EXPECT_FALSE(acc.Add(3, 0, 1, w));
    EXPECT_EQ(acc.Size(), 2u);  // refused entry not stored
    // Recurrence on a buffered key needs no new memory.
    EXPECT_TRUE(acc.Add(1, 0, 9, w));
    // Clear releases the modeled bytes; a fresh buffer fits again.
    acc.Clear(w);
    EXPECT_TRUE(acc.Empty());
    LocalAccumulator fresh(AccumulatorMode::kStore, 1);
    EXPECT_TRUE(fresh.Add(7, 0, 1, w));
  });
  ctx->RunToCompletion();
}

TEST(DocTypeTest, BoundsArithmetic) {
  DocType d(9, 3);
  UpperBounds ub(3);
  ub[0].store(10);
  ub[1].store(20);
  ub[2].store(30);
  EXPECT_EQ(d.SumScores(), 0);
  EXPECT_EQ(d.UpperBound(ub), 60);  // nothing known yet
  d.score[1].store(15);
  EXPECT_EQ(d.SumScores(), 15);
  EXPECT_EQ(d.UpperBound(ub), 10 + 15 + 30);
}

TEST(OracleTest, MatchesNaiveReference) {
  const auto idx = test::MakeTinyIndex(400, 21);
  const auto terms = test::PickQueryTerms(idx, 4, 2);
  const auto exact = ComputeExactTopK(idx, terms, 10);
  // Naive reference: random-access score every document.
  std::vector<ResultEntry> all;
  for (DocId d = 0; d < idx.num_docs(); ++d) {
    Score s = 0;
    for (const TermId t : terms) s += idx.RandomAccessScore(t, d);
    if (s > 0) all.push_back({d, s});
  }
  CanonicalizeResult(all);
  ASSERT_GE(all.size(), exact.topk.size());
  for (std::size_t i = 0; i < exact.topk.size(); ++i) {
    EXPECT_EQ(exact.topk[i], all[i]);
  }
  EXPECT_EQ(exact.kth_score, exact.topk.back().score);
}

TEST(OracleTest, FewerMatchesThanK) {
  const auto idx = test::MakeTinyIndex(200, 23);
  // Pick the rarest usable term.
  TermId rare = 0;
  std::uint32_t best_df = std::numeric_limits<std::uint32_t>::max();
  for (TermId t = 0; t < idx.num_terms(); ++t) {
    const auto df = idx.Entry(t).df;
    if (df > 0 && df < best_df) {
      best_df = df;
      rare = t;
    }
  }
  const std::vector<TermId> terms{rare};
  const auto exact = ComputeExactTopK(idx, terms, 1000);
  EXPECT_EQ(exact.topk.size(), best_df);
  EXPECT_EQ(exact.kth_score, 0);  // heap never filled
}

TEST(RecallTest, TieAwareness) {
  ExactTopK exact;
  exact.topk = {{1, 100}, {2, 50}, {3, 50}};
  exact.kth_score = 50;
  exact.boundary = {4};  // doc 4 also scores 50, outside the list

  const std::vector<ResultEntry> perfect{{1, 100}, {2, 50}, {3, 50}};
  EXPECT_DOUBLE_EQ(Recall(exact, perfect), 1.0);

  // Doc 4 substitutes for doc 3: still perfect recall (interchangeable).
  const std::vector<ResultEntry> tied{{1, 100}, {2, 50}, {4, 50}};
  EXPECT_DOUBLE_EQ(Recall(exact, tied), 1.0);

  const std::vector<ResultEntry> partial{{1, 100}, {9, 10}, {8, 5}};
  EXPECT_NEAR(Recall(exact, partial), 1.0 / 3.0, 1e-9);

  // Duplicates must not double count.
  const std::vector<ResultEntry> dupes{{1, 100}, {1, 100}, {1, 100}};
  EXPECT_NEAR(Recall(exact, dupes), 1.0 / 3.0, 1e-9);
}

TEST(RecallTest, EmptyExactIsPerfect) {
  ExactTopK exact;
  EXPECT_DOUBLE_EQ(Recall(exact, {}), 1.0);
}

using DocMapDeathTest = DocMapTest;

TEST_F(DocMapDeathTest, UnfrozenForEachAborts) {
  // The unlocked ForEach(fn) is sound only after the freeze protocol
  // ran (Freeze() drains every stripe lock before publishing frozen_);
  // calling it on a live map must trip the always-on check rather than
  // silently scan racing stripes.
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  ConcurrentDocMap map(*ctx_, /*num_terms=*/1);
  ctx_->Submit([&](exec::WorkerContext& w) { (void)map.GetOrCreate(1, w); });
  ctx_->RunToCompletion();
  EXPECT_DEATH(map.ForEach([](DocType*) {}), "read_only");
}

}  // namespace
}  // namespace sparta::topk

// Baseline-internals tests: document-order cursors, BMW scan mechanics,
// pBMW threshold sharing, JASS budgets, NRA shard scans.
#include <gtest/gtest.h>

#include "baselines/bmw.h"
#include "baselines/cursor.h"
#include "baselines/ta_nra.h"
#include "test_helpers.h"

namespace sparta::algos {
namespace {

class NullWorker final : public exec::WorkerContext {
 public:
  int worker_id() const override { return 0; }
  exec::VirtualTime Now() const override { return clock_; }
  void Charge(exec::VirtualTime ns) override { clock_ += ns; }
  void ChargePostings(std::uint64_t n) override {
    clock_ += static_cast<exec::VirtualTime>(n);
  }
  void SharedAccess(const void*, exec::AccessKind) override {}
  void StructureAccess(std::size_t, bool, bool) override {}
  void StructureAccessMany(std::size_t, bool, std::uint64_t) override {}
  void IoSequential(std::uint64_t, std::uint64_t) override {}
  void IoRandom(std::uint64_t) override {}
  bool ChargeMemory(std::int64_t) override { return true; }

 private:
  exec::VirtualTime clock_ = 0;
};

TEST(CursorTest, SequentialTraversalMatchesList) {
  const auto idx = test::MakeTinyIndex(600, 3);
  NullWorker w;
  for (TermId t = 0; t < 20; ++t) {
    const auto view = idx.Term(t);
    if (view.df() == 0) continue;
    DocOrderCursor cursor(idx, t);
    cursor.Prime(w);
    for (const auto& p : view.doc_order) {
      ASSERT_FALSE(cursor.exhausted());
      EXPECT_EQ(cursor.doc(), p.doc);
      EXPECT_EQ(cursor.score(), static_cast<Score>(p.score));
      cursor.Next(w);
    }
    EXPECT_TRUE(cursor.exhausted());
    EXPECT_EQ(cursor.doc(), kInvalidDoc);
  }
}

TEST(CursorTest, NextGeqMatchesLowerBound) {
  const auto idx = test::MakeTinyIndex(800, 5);
  NullWorker w;
  TermId big = 0;
  for (TermId t = 0; t < idx.num_terms(); ++t) {
    if (idx.Entry(t).df > idx.Entry(big).df) big = t;
  }
  const auto list = idx.Term(big).doc_order;
  util::Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    DocOrderCursor cursor(idx, big);
    const DocId target =
        static_cast<DocId>(rng.Below(idx.num_docs() + 10));
    cursor.NextGEQ(target, w);
    const auto it = std::lower_bound(
        list.begin(), list.end(), target,
        [](const index::Posting& p, DocId d) { return p.doc < d; });
    if (it == list.end()) {
      EXPECT_TRUE(cursor.exhausted());
    } else {
      EXPECT_EQ(cursor.doc(), it->doc);
    }
  }
}

TEST(CursorTest, NextGeqIsMonotoneAndIdempotent) {
  const auto idx = test::MakeTinyIndex(800, 5);
  NullWorker w;
  DocOrderCursor cursor(idx, 0);
  cursor.NextGEQ(100, w);
  const DocId at_100 = cursor.doc();
  cursor.NextGEQ(50, w);  // going backwards is a no-op
  EXPECT_EQ(cursor.doc(), at_100);
  cursor.NextGEQ(at_100, w);  // same target is a no-op
  EXPECT_EQ(cursor.doc(), at_100);
}

TEST(BmwScanTest, RangeRestrictionIsRespected) {
  const auto idx = test::MakeTinyIndex(1000, 9);
  const auto terms = test::PickQueryTerms(idx, 4, 1);
  NullWorker w;
  topk::TopKHeap heap(50);
  BmwScanParams params;
  params.range_begin = 200;
  params.range_end = 600;
  BmwScanStats stats;
  BmwScan(idx, terms, heap, params, w, stats);
  for (const auto& e : heap.Extract()) {
    EXPECT_GE(e.doc, 200u);
    EXPECT_LT(e.doc, 600u);
  }
}

TEST(BmwScanTest, DisjointRangesCoverFullScan) {
  const auto idx = test::MakeTinyIndex(1000, 11);
  const auto terms = test::PickQueryTerms(idx, 5, 2);
  NullWorker w;
  topk::TopKHeap full(25);
  BmwScanParams params;
  params.range_end = idx.num_docs();
  BmwScanStats stats;
  BmwScan(idx, terms, full, params, w, stats);

  topk::TopKHeap merged(25);
  for (DocId begin = 0; begin < idx.num_docs(); begin += 250) {
    topk::TopKHeap part(25);
    BmwScanParams range;
    range.range_begin = begin;
    range.range_end = begin + 250;
    BmwScanStats s;
    BmwScan(idx, terms, part, range, w, s);
    merged.Merge(part);
  }
  EXPECT_EQ(full.Extract(), merged.Extract());
}

TEST(BmwScanTest, SharedThetaPrunesSecondScan) {
  const auto idx = test::MakeTinyIndex(2000, 13);
  const auto terms = test::PickQueryTerms(idx, 5, 3);
  NullWorker w;

  // Without a shared threshold, each range starts pruning from zero.
  topk::TopKHeap cold(10);
  BmwScanParams params;
  params.range_end = idx.num_docs();
  BmwScanStats cold_stats;
  BmwScan(idx, terms, cold, params, w, cold_stats);

  // With a pre-promoted global Θ (as if another worker finished first),
  // the same scan does no more work, typically much less.
  std::atomic<Score> shared{cold.threshold()};
  topk::TopKHeap warm(10);
  params.shared_theta = &shared;
  BmwScanStats warm_stats;
  BmwScan(idx, terms, warm, params, w, warm_stats);
  EXPECT_LE(warm_stats.scored, cold_stats.scored);
}

TEST(NraShardTest, SingleShardIsExact) {
  const auto idx = test::MakeTinyIndex(900, 15);
  const auto terms = test::PickQueryTerms(idx, 5, 4);
  NraShardInput input;
  input.k = 15;
  input.seg_size = 32;
  input.lists.resize(terms.size());
  for (std::size_t i = 0; i < terms.size(); ++i) {
    const auto view = idx.Term(terms[i]);
    input.lists[i].postings.assign(view.impact_order.begin(),
                                   view.impact_order.end());
    input.lists[i].io_offset = view.impact_order_file_offset;
  }
  NullWorker w;
  const auto out = NraShardScan(input, w);
  ASSERT_FALSE(out.oom);
  const auto exact = topk::ComputeExactTopK(idx, terms, input.k);
  EXPECT_DOUBLE_EQ(topk::Recall(exact, out.topk), 1.0);
  EXPECT_GT(out.postings, 0u);
  EXPECT_GT(out.peak_candidates, 0u);
}

TEST(NraShardTest, EmptyListsProduceEmptyResult) {
  NraShardInput input;
  input.k = 5;
  input.lists.resize(3);  // all empty
  NullWorker w;
  const auto out = NraShardScan(input, w);
  EXPECT_FALSE(out.oom);
  EXPECT_TRUE(out.topk.empty());
}

TEST(RegistryTest, AllNamesResolveAndReportThemselves) {
  for (const auto name : AllAlgorithms()) {
    const auto algo = MakeAlgorithm(name);
    ASSERT_NE(algo, nullptr) << name;
    EXPECT_EQ(algo->name(), name);
  }
  EXPECT_EQ(MakeAlgorithm("NotAnAlgorithm"), nullptr);
  EXPECT_EQ(PaperAlgorithms().size(), 6u);
}

}  // namespace
}  // namespace sparta::algos

// Unit tests: sim — the discrete-event executor, coherence model, page
// cache, lock model, memory budget, FCFS admission.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <memory>

#include "obs/profiler.h"
#include "sim/coherence.h"
#include "sim/page_cache.h"
#include "sim/sim_executor.h"

namespace sparta::sim {
namespace {

using exec::VirtualTime;
using exec::WorkerContext;

SimConfig Config(int workers) {
  SimConfig config;
  config.num_workers = workers;
  return config;
}

TEST(SimExecutorTest, Deterministic) {
  auto run_once = [] {
    SimExecutor executor(Config(4));
    auto ctx = executor.CreateQuery();
    for (int i = 0; i < 40; ++i) {
      ctx->Submit([i](WorkerContext& w) { w.Charge(100 + i * 7); });
    }
    ctx->RunToCompletion();
    return ctx->end_time();
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a, b);
  EXPECT_GT(a, 0);
}

TEST(SimExecutorTest, IndependentWorkSpeedsUpWithWorkers) {
  auto latency = [](int workers) {
    SimExecutor executor(Config(workers));
    auto ctx = executor.CreateQuery();
    for (int i = 0; i < 120; ++i) {
      ctx->Submit([](WorkerContext& w) { w.Charge(10'000); });
    }
    ctx->RunToCompletion();
    return ctx->end_time() - ctx->start_time();
  };
  const auto t1 = latency(1);
  const auto t4 = latency(4);
  const auto t12 = latency(12);
  EXPECT_NEAR(static_cast<double>(t1) / static_cast<double>(t4), 4.0, 0.5);
  EXPECT_NEAR(static_cast<double>(t1) / static_cast<double>(t12), 12.0,
              1.5);
}

TEST(SimExecutorTest, ContendedLockSerializes) {
  // Jobs that spend all their time inside one lock cannot speed up.
  auto latency = [](int workers) {
    SimExecutor executor(Config(workers));
    auto ctx = executor.CreateQuery();
    auto lock = ctx->MakeLock();
    for (int i = 0; i < 60; ++i) {
      ctx->Submit([&lock](WorkerContext& w) {
        const exec::CtxLockGuard guard(*lock, w);
        w.Charge(10'000);
      });
    }
    ctx->RunToCompletion();
    return ctx->end_time() - ctx->start_time();
  };
  const auto t1 = latency(1);
  const auto t8 = latency(8);
  // Serialized: at most ~20% faster with 8 workers.
  EXPECT_GT(t8, t1 * 8 / 10);
}

TEST(SimExecutorTest, JobsSubmittedFromJobsRespectCausality) {
  SimExecutor executor(Config(2));
  auto ctx = executor.CreateQuery();
  VirtualTime parent_end = 0, child_start = 0;
  ctx->Submit([&](WorkerContext& w) {
    w.Charge(5'000);
    parent_end = w.Now();
    ctx->Submit([&](WorkerContext& w2) { child_start = w2.Now(); });
  });
  ctx->RunToCompletion();
  EXPECT_GE(child_start, parent_end);
}

TEST(SimExecutorTest, FcfsAdmissionSharesPool) {
  // Two "queries" of 4 jobs each on a 4-worker machine: admission lets
  // the second start only when the pool has spare capacity.
  SimExecutor executor(Config(4));
  std::vector<std::unique_ptr<exec::QueryContext>> queries;
  int admitted = 0;
  const auto admit = [&](VirtualTime now) -> bool {
    if (admitted >= 2) return false;
    auto ctx = executor.CreateQueryAt(now);
    for (int i = 0; i < 4; ++i) {
      ctx->Submit([](WorkerContext& w) { w.Charge(50'000); });
    }
    queries.push_back(std::move(ctx));
    ++admitted;
    return admitted < 2;
  };
  executor.Drain(admit);
  ASSERT_EQ(queries.size(), 2u);
  EXPECT_GT(queries[1]->end_time(), queries[0]->start_time());
  // Total makespan ~ 2 sequential queries' worth of work.
  const auto makespan =
      queries[1]->end_time() - queries[0]->start_time();
  EXPECT_NEAR(static_cast<double>(makespan), 2.0 * 50'000, 25'000);
}

TEST(SimExecutorTest, MemoryBudgetTriggersOom) {
  SimConfig config = Config(1);
  config.memory_budget_bytes = 500;
  SimExecutor executor(config);
  auto ctx = executor.CreateQuery();
  bool over = false;
  ctx->Submit([&](WorkerContext& w) {
    EXPECT_TRUE(w.ChargeMemory(400));
    over = !w.ChargeMemory(200);
  });
  ctx->RunToCompletion();
  EXPECT_TRUE(over);
}

TEST(SimExecutorTest, BarrierSynchronizesClocks) {
  SimExecutor executor(Config(3));
  auto ctx = executor.CreateQuery();
  ctx->Submit([](WorkerContext& w) { w.Charge(123'456); });
  ctx->RunToCompletion();
  const auto t = executor.SyncBarrier();
  EXPECT_EQ(t, executor.GlobalTime());
  EXPECT_EQ(executor.IdleTime(), t);
}

TEST(CoherenceTest, ReadAfterRemoteWriteMisses) {
  CoherenceModel model;
  int line = 0;
  EXPECT_TRUE(model.Read(0, &line).miss);    // cold
  EXPECT_FALSE(model.Read(0, &line).miss);   // cached
  EXPECT_TRUE(model.Read(1, &line).miss);    // other worker, cold
  model.Write(1, &line);                     // worker 1 takes ownership
  EXPECT_TRUE(model.Read(0, &line).miss);    // invalidated
  EXPECT_FALSE(model.Read(1, &line).miss);   // owner still hits
}

TEST(CoherenceTest, WriterOwnershipAndPingPong) {
  CoherenceModel model;
  int line = 0;
  model.Write(0, &line);
  EXPECT_FALSE(model.Write(0, &line).miss);  // repeated writes hit
  EXPECT_TRUE(model.Write(1, &line).miss);   // ownership transfer
  EXPECT_TRUE(model.Write(0, &line).miss);   // ping-pong
}

TEST(CoherenceTest, DistinctLinesIndependent) {
  CoherenceModel model;
  alignas(64) std::array<char, 128> buffer{};
  model.Write(0, buffer.data());
  EXPECT_TRUE(model.Read(1, buffer.data() + 64).miss);   // cold line
  EXPECT_FALSE(model.Read(1, buffer.data() + 64).miss);  // unaffected
  EXPECT_EQ(model.tracked_lines(), 2u);
}

TEST(CoherenceTest, WriteCountsRemoteCopiesInvalidated) {
  CoherenceModel model;
  int line = 0;
  model.Read(0, &line);
  model.Read(1, &line);
  model.Read(2, &line);
  // Worker 3 writes: workers 0-2 hold the current version and lose it.
  EXPECT_EQ(model.Write(3, &line).copies_invalidated, 3);
  // Immediately rewriting invalidates nobody — the others are gone.
  EXPECT_EQ(model.Write(3, &line).copies_invalidated, 0);
  // Reads never invalidate.
  EXPECT_EQ(model.Read(0, &line).copies_invalidated, 0);
}

TEST(CoherenceTest, ResetForgetsOwnershipAndTrackedLines) {
  CoherenceModel model;
  int line = 0;
  model.Write(0, &line);
  EXPECT_FALSE(model.Read(0, &line).miss);
  EXPECT_EQ(model.tracked_lines(), 1u);
  model.Reset();
  EXPECT_EQ(model.tracked_lines(), 0u);
  // Post-reset the line is cold again for everyone (recycled-address
  // hygiene between queries).
  EXPECT_TRUE(model.Read(0, &line).miss);
}

// With a profiler attached, registered ranges resolve to
// structure-relative keys: the same structure re-registered at a
// different address (the across-queries reallocation case) maps to the
// same line key, and accesses attribute to the structure by name.
TEST(CoherenceTest, ProfilerKeysAreAllocatorIndependent) {
  obs::ProfilerConfig pconfig;
  pconfig.contention = true;
  obs::Profiler profiler(4, pconfig);
  CoherenceModel model;
  model.set_profiler(&profiler);

  auto a = std::make_unique<std::array<char, 256>>();
  profiler.RegisterRange(a->data(), a->size(), "S");
  const auto key_a = profiler.Resolve(a->data() + 64).line_key;
  model.Read(0, a->data() + 64);
  model.Write(1, a->data() + 64);

  // New query: ranges reset, structure reallocated elsewhere.
  profiler.ResetRanges();
  model.Reset();
  auto b = std::make_unique<std::array<char, 256>>();
  profiler.RegisterRange(b->data(), b->size(), "S");
  const auto key_b = profiler.Resolve(b->data() + 64).line_key;
  EXPECT_EQ(key_a, key_b);  // same structure, same offset -> same line
  model.Read(2, b->data() + 64);

  const auto report = profiler.ContentionSnapshot();
  ASSERT_EQ(report.structures.size(), 1u);
  EXPECT_EQ(report.structures[0].name, "S");
  EXPECT_EQ(report.structures[0].reads, 2u);
  EXPECT_EQ(report.structures[0].writes, 1u);
  // Unregistered addresses stay in the address-keyed space (top bit
  // clear) and never collide with structure keys.
  int stray = 0;
  EXPECT_EQ(profiler.Resolve(&stray).structure, 0u);
  EXPECT_NE(profiler.Resolve(&stray).line_key & (1ULL << 63),
            key_a & (1ULL << 63));
}

// --- NUMA topology (DESIGN.md §14) ---------------------------------

TEST(CoherenceTest, TopologySplitsWorkersIntoContiguousBlocks) {
  CoherenceModel model;
  // Without a topology everything is domain 0.
  EXPECT_EQ(model.DomainOf(0), 0);
  EXPECT_EQ(model.DomainOf(7), 0);
  model.SetTopology(/*num_workers=*/8, /*numa_domains=*/2);
  for (int w = 0; w < 4; ++w) EXPECT_EQ(model.DomainOf(w), 0) << w;
  for (int w = 4; w < 8; ++w) EXPECT_EQ(model.DomainOf(w), 1) << w;
}

TEST(CoherenceTest, RemoteFlagRequiresCrossDomainWriter) {
  CoherenceModel model;
  model.SetTopology(8, 2);
  int line = 0;
  // Cold read with no prior writer: a miss, but nobody's cache to pull
  // from — never remote.
  const auto cold = model.Read(0, &line);
  EXPECT_TRUE(cold.miss);
  EXPECT_FALSE(cold.remote);
  model.Write(0, &line);  // last writer: worker 0, domain 0
  // Same-domain fill: worker 1 misses but fills from its own socket.
  const auto local = model.Read(1, &line);
  EXPECT_TRUE(local.miss);
  EXPECT_FALSE(local.remote);
  // Cross-domain fill: worker 4 (domain 1) pulls the line across the
  // interconnect.
  const auto remote = model.Read(4, &line);
  EXPECT_TRUE(remote.miss);
  EXPECT_TRUE(remote.remote);
  // Ownership transfer across domains is remote for the writer too.
  const auto rfo = model.Write(5, &line);
  EXPECT_TRUE(rfo.miss);
  EXPECT_TRUE(rfo.remote);
  // And back: domain 0 now fills from domain 1's writer.
  EXPECT_TRUE(model.Read(0, &line).remote);
}

TEST(CoherenceTest, SingleDomainNeverReportsRemote) {
  CoherenceModel model;
  model.SetTopology(8, 1);
  int line = 0;
  model.Write(0, &line);
  for (int w = 1; w < 8; ++w) {
    EXPECT_FALSE(model.Read(w, &line).remote) << w;
    EXPECT_FALSE(model.Write(w, &line).remote) << w;
  }
}

TEST(CoherenceTest, CrossDomainInvalidationCountsAllCopies) {
  CoherenceModel model;
  model.SetTopology(8, 2);
  int line = 0;
  model.Read(0, &line);  // domain 0 copy
  model.Read(4, &line);  // domain 1 copy
  model.Read(5, &line);  // domain 1 copy
  // A write from domain 0 invalidates every other valid copy regardless
  // of which socket holds it.
  EXPECT_EQ(model.Write(1, &line).copies_invalidated, 3);
}

// The profiler's remote split: with a two-domain topology, misses filled
// across sockets land in remote_misses; the local ones don't.
TEST(CoherenceTest, ProfilerAttributesRemoteMisses) {
  obs::ProfilerConfig pconfig;
  pconfig.contention = true;
  obs::Profiler profiler(8, pconfig);
  CoherenceModel model;
  model.set_profiler(&profiler);
  model.SetTopology(8, 2);

  alignas(64) std::array<char, 64> structure{};
  profiler.RegisterRange(structure.data(), structure.size(), "S");
  model.Write(0, structure.data());  // domain 0 owns
  model.Read(1, structure.data());   // local miss
  model.Read(4, structure.data());   // remote miss
  model.Read(4, structure.data());   // hit

  const auto report = profiler.ContentionSnapshot();
  ASSERT_EQ(report.structures.size(), 1u);
  EXPECT_EQ(report.structures[0].read_misses, 2u);
  EXPECT_EQ(report.structures[0].remote_misses, 1u);
}

TEST(CostModelTest, DomainKeysAreIdBasedAndDeterministic) {
  CostModel costs;
  costs.numa_domains = 2;
  // Contiguous worker blocks on an 8-core machine.
  EXPECT_EQ(costs.DomainOfWorker(0, 8), 0);
  EXPECT_EQ(costs.DomainOfWorker(3, 8), 0);
  EXPECT_EQ(costs.DomainOfWorker(4, 8), 1);
  EXPECT_EQ(costs.DomainOfWorker(7, 8), 1);
  // Fewer workers than domains still yields a valid domain.
  EXPECT_EQ(costs.DomainOfWorker(0, 1), 0);
  // Stripes interleave by index — a pure function of (index, domains),
  // never of addresses, so placement replays identically on any host
  // and allocator.
  for (std::size_t s = 0; s < 64; ++s) {
    EXPECT_EQ(costs.DomainOfStripe(s, 64), static_cast<int>(s % 2)) << s;
  }
  // Single-domain degenerates to 0 everywhere.
  costs.numa_domains = 1;
  EXPECT_EQ(costs.DomainOfWorker(7, 8), 0);
  EXPECT_EQ(costs.DomainOfStripe(63, 64), 0);
}

TEST(CostModelTest, RemotePremiumOnlyAtDramTier) {
  CostModel costs;
  costs.numa_domains = 2;
  const std::size_t dram_sized = costs.llc_bytes + 1;
  // Remote access to a DRAM-resident structure pays the interconnect.
  EXPECT_EQ(costs.StructureAccessCostHomed(dram_sized, false, true),
            costs.remote_dram_access);
  EXPECT_EQ(costs.StructureAccessCostHomed(dram_sized, false, false),
            costs.dram_access);
  // Cache-resident structures are served locally wherever their pages
  // are homed: no premium at L1/L2/LLC tiers.
  EXPECT_EQ(costs.StructureAccessCostHomed(64, false, true), costs.l1_hit);
  EXPECT_EQ(costs.StructureAccessCostHomed(64, true, true), costs.llc_hit);
  EXPECT_EQ(
      costs.StructureAccessCostHomed(costs.l2_bytes, false, true),
      costs.l2_hit);
}

TEST(PageCacheTest, HitsAndMisses) {
  PageCache cache(0);  // unbounded
  EXPECT_FALSE(cache.Touch(1));
  EXPECT_TRUE(cache.Touch(1));
  EXPECT_FALSE(cache.Touch(2));
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 2u);
  cache.Reset();
  EXPECT_FALSE(cache.Touch(1));  // flushed
}

TEST(PageCacheTest, LruEviction) {
  PageCache cache(2 * kPageBytes);  // two pages
  EXPECT_FALSE(cache.Touch(1));
  EXPECT_FALSE(cache.Touch(2));
  EXPECT_TRUE(cache.Touch(1));   // 1 is now most recent
  EXPECT_FALSE(cache.Touch(3));  // evicts 2
  EXPECT_TRUE(cache.Touch(1));
  EXPECT_FALSE(cache.Touch(2));  // was evicted
}

TEST(SimExecutorTest, IoCostsFlowThroughPageCache) {
  SimConfig config = Config(1);
  SimExecutor executor(config);
  auto ctx = executor.CreateQuery();
  VirtualTime cold = 0, warm = 0;
  ctx->Submit([&](WorkerContext& w) {
    const auto t0 = w.Now();
    w.IoSequential(0, 4 * kPageBytes);
    cold = w.Now() - t0;
    const auto t1 = w.Now();
    w.IoSequential(0, 4 * kPageBytes);
    warm = w.Now() - t1;
  });
  ctx->RunToCompletion();
  EXPECT_GT(cold, warm * 10);  // SSD reads dwarf page-cache hits
}

}  // namespace
}  // namespace sparta::sim

// Shared fixtures/utilities for the test suite.
#pragma once

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "baselines/registry.h"
#include "corpus/synthetic.h"
#include "exec/threaded_executor.h"
#include "index/builder.h"
#include "sim/sim_executor.h"
#include "topk/oracle.h"
#include "topk/recall.h"

namespace sparta::test {

/// Small deterministic index built from the synthetic model.
inline index::InvertedIndex MakeTinyIndex(std::uint32_t num_docs = 2000,
                                          std::uint64_t seed = 7,
                                          std::uint32_t vocab = 400) {
  corpus::SyntheticCorpusSpec spec;
  spec.num_docs = num_docs;
  spec.vocab_size = vocab;
  spec.mean_unique_terms = 25.0;
  spec.seed = seed;
  return index::FinalizeIndex(corpus::GenerateRawCorpus(spec));
}

/// Picks `m` distinct query terms with decent posting lists, spread over
/// the popularity spectrum, deterministically.
inline std::vector<TermId> PickQueryTerms(const index::InvertedIndex& idx,
                                          std::size_t m,
                                          std::uint64_t salt = 0) {
  std::vector<TermId> candidates;
  for (TermId t = 0; t < idx.num_terms(); ++t) {
    if (idx.Entry(t).df >= 4) candidates.push_back(t);
  }
  SPARTA_CHECK(candidates.size() >= m);
  std::vector<TermId> terms;
  const std::size_t stride =
      std::max<std::size_t>(1, candidates.size() / (m + 1));
  for (std::size_t i = 0; i < m; ++i) {
    terms.push_back(
        candidates[(salt + (i + 1) * stride) % candidates.size()]);
  }
  std::sort(terms.begin(), terms.end());
  terms.erase(std::unique(terms.begin(), terms.end()), terms.end());
  // Top up if dedup removed entries.
  for (std::size_t j = 0; terms.size() < m && j < candidates.size(); ++j) {
    const TermId t = candidates[(salt + j) % candidates.size()];
    if (std::find(terms.begin(), terms.end(), t) == terms.end()) {
      terms.push_back(t);
    }
  }
  return terms;
}

/// Runs `algo_name` on the simulated machine and returns the result.
inline topk::SearchResult RunOnSim(const index::InvertedIndex& idx,
                                   std::string_view algo_name,
                                   const std::vector<TermId>& terms,
                                   const topk::SearchParams& params,
                                   int workers = 4) {
  const auto algo = algos::MakeAlgorithm(algo_name);
  SPARTA_CHECK(algo != nullptr);
  sim::SimConfig config;
  config.num_workers = workers;
  sim::SimExecutor executor(config);
  auto ctx = executor.CreateQuery();
  return algo->Run(idx, terms, params, *ctx);
}

/// Runs `algo_name` on a simulated machine with an explicit config —
/// the entry point for fault-injection and deadline tests.
inline topk::SearchResult RunOnSim(const index::InvertedIndex& idx,
                                   std::string_view algo_name,
                                   const std::vector<TermId>& terms,
                                   const topk::SearchParams& params,
                                   const sim::SimConfig& config) {
  const auto algo = algos::MakeAlgorithm(algo_name);
  SPARTA_CHECK(algo != nullptr);
  sim::SimExecutor executor(config);
  auto ctx = executor.CreateQuery();
  return algo->Run(idx, terms, params, *ctx);
}

/// Runs `algo_name` on real threads.
inline topk::SearchResult RunOnThreads(const index::InvertedIndex& idx,
                                       std::string_view algo_name,
                                       const std::vector<TermId>& terms,
                                       const topk::SearchParams& params,
                                       int workers = 4) {
  const auto algo = algos::MakeAlgorithm(algo_name);
  SPARTA_CHECK(algo != nullptr);
  exec::ThreadedExecutor::Options options;
  options.num_workers = workers;
  exec::ThreadedExecutor executor(options);
  auto ctx = executor.CreateQuery();
  return algo->Run(idx, terms, params, *ctx);
}

/// Tie-aware exactness: the result must cover the full oracle top-k (its
/// recall is 1) and have the right size.
inline ::testing::AssertionResult IsExactTopK(
    const index::InvertedIndex& idx, const std::vector<TermId>& terms,
    int k, const topk::SearchResult& result) {
  if (!result.ok()) {
    return ::testing::AssertionFailure() << "query reported OOM";
  }
  const auto exact = topk::ComputeExactTopK(idx, terms, k);
  const double recall = topk::Recall(exact, result.entries);
  if (recall < 1.0) {
    return ::testing::AssertionFailure()
           << "recall " << recall << " < 1 (exact size "
           << exact.topk.size() << ", got " << result.entries.size()
           << ")";
  }
  if (result.entries.size() != exact.topk.size()) {
    return ::testing::AssertionFailure()
           << "size mismatch: got " << result.entries.size()
           << ", expected " << exact.topk.size();
  }
  return ::testing::AssertionSuccess();
}

}  // namespace sparta::test

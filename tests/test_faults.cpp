// Fault injection and anytime execution (DESIGN.md §7).
//
// Three invariants are gated here:
//  1. No-regression: the default (inert) fault config leaves the
//     simulator bit-identical to a config-free run — no injector is
//     constructed, results and latencies match exactly.
//  2. Determinism: a seeded fault plan replays bit-identically — same
//     fault log (kind/worker/cost sequence), same statuses, same result
//     sets; virtual latencies within the simulator's documented jitter.
//  3. Graceful degradation: deadlines and escalated faults yield
//     best-so-far top-k sets with honest statuses, recall monotone in
//     the deadline, and the loosest deadline matching the unconstrained
//     run.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "sim/fault_injector.h"
#include "test_helpers.h"

namespace sparta::test {
namespace {

using sim::FaultConfig;
using sim::FaultInjector;
using sim::SimConfig;

/// Runs one query on a fresh simulated machine and returns
/// (result, latency, fault event log).
struct FaultRun {
  topk::SearchResult result;
  exec::VirtualTime latency = 0;
  std::vector<FaultInjector::Event> events;
};

FaultRun RunWithFaults(const index::InvertedIndex& idx,
                       std::string_view algo_name,
                       const std::vector<TermId>& terms,
                       const topk::SearchParams& params,
                       const SimConfig& config) {
  const auto algo = algos::MakeAlgorithm(algo_name);
  SPARTA_CHECK(algo != nullptr);
  sim::SimExecutor executor(config);
  auto ctx = executor.CreateQuery();
  FaultRun run;
  run.result = algo->Run(idx, terms, params, *ctx);
  run.latency = ctx->end_time() - ctx->start_time();
  if (executor.fault_injector() != nullptr) {
    run.events = executor.fault_injector()->events();
  }
  return run;
}

/// The clock-free projection of a fault log: injection order, kind,
/// worker, and charged cost are bit-stable; `at` carries the simulator's
/// documented O(0.1%) virtual-time jitter and is compared separately.
std::vector<std::tuple<FaultInjector::Kind, int, exec::VirtualTime>>
EventShape(const std::vector<FaultInjector::Event>& events) {
  std::vector<std::tuple<FaultInjector::Kind, int, exec::VirtualTime>> out;
  out.reserve(events.size());
  for (const auto& e : events) out.emplace_back(e.kind, e.worker, e.cost);
  return out;
}

TEST(FaultInjectionTest, DefaultConfigIsInert) {
  // The no-regression guard: a default FaultConfig and an explicitly
  // zeroed one construct no injector and reproduce the exact same trace.
  const auto idx = MakeTinyIndex(2500, 301);
  const auto terms = PickQueryTerms(idx, 7, 2);
  topk::SearchParams params;
  params.k = 25;

  SimConfig plain;
  plain.num_workers = 6;
  EXPECT_FALSE(plain.faults.enabled());

  SimConfig zeroed = plain;
  zeroed.faults.seed = 999;  // seed alone must not matter
  zeroed.faults.stall_prob = 0.0;
  zeroed.faults.io_spike_prob = 0.0;
  zeroed.faults.io_error_prob = 0.0;
  zeroed.faults.lock_preempt_prob = 0.0;
  EXPECT_FALSE(zeroed.faults.enabled());

  for (const char* algo : {"Sparta", "pBMW", "pJASS", "pRA", "sNRA"}) {
    const auto a = RunWithFaults(idx, algo, terms, params, plain);
    const auto b = RunWithFaults(idx, algo, terms, params, zeroed);
    EXPECT_TRUE(a.events.empty()) << algo;
    EXPECT_TRUE(b.events.empty()) << algo;
    EXPECT_EQ(a.result.status, topk::ResultStatus::kComplete) << algo;
    EXPECT_EQ(a.result.entries, b.result.entries) << algo;
    EXPECT_EQ(a.result.stats.postings_processed,
              b.result.stats.postings_processed)
        << algo;
    EXPECT_EQ(a.result.stats.faults_injected, 0u) << algo;
    EXPECT_EQ(a.result.stats.io_retries, 0u) << algo;
    // Same process, same machine model: latency within the simulator's
    // heap-alignment jitter (see DeterminismTest).
    EXPECT_NEAR(static_cast<double>(a.latency),
                static_cast<double>(b.latency),
                0.005 * static_cast<double>(a.latency))
        << algo;
  }
}

class SeededReplayTest : public ::testing::TestWithParam<const char*> {};

TEST_P(SeededReplayTest, SameSeedReplaysBitIdentically) {
  const auto idx = MakeTinyIndex(2500, 307);
  const auto terms = PickQueryTerms(idx, 7, 5);
  topk::SearchParams params;
  params.k = 25;

  SimConfig config;
  config.num_workers = 6;
  config.faults.seed = 42;
  config.faults.stall_prob = 0.10;
  config.faults.stall_ns = 200'000;
  config.faults.io_spike_prob = 0.20;
  config.faults.io_error_prob = 0.05;
  config.faults.lock_preempt_prob = 0.25;

  const auto a = RunWithFaults(idx, GetParam(), terms, params, config);
  const auto b = RunWithFaults(idx, GetParam(), terms, params, config);
  EXPECT_FALSE(a.events.empty());
  EXPECT_EQ(EventShape(a.events), EventShape(b.events));
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_NEAR(static_cast<double>(a.events[i].at),
                static_cast<double>(b.events[i].at),
                0.005 * static_cast<double>(a.events[i].at) + 1.0)
        << "event " << i;
  }
  EXPECT_EQ(a.result.status, b.result.status);
  EXPECT_EQ(a.result.entries, b.result.entries);
  EXPECT_EQ(a.result.stats.postings_processed,
            b.result.stats.postings_processed);
  EXPECT_EQ(a.result.stats.faults_injected, b.result.stats.faults_injected);
  EXPECT_EQ(a.result.stats.io_retries, b.result.stats.io_retries);
  EXPECT_NEAR(static_cast<double>(a.latency), static_cast<double>(b.latency),
              0.005 * static_cast<double>(a.latency));

  // A different seed draws a different plan.
  SimConfig reseeded = config;
  reseeded.faults.seed = 43;
  const auto c = RunWithFaults(idx, GetParam(), terms, params, reseeded);
  EXPECT_NE(EventShape(a.events), EventShape(c.events));
}

INSTANTIATE_TEST_SUITE_P(Algorithms, SeededReplayTest,
                         ::testing::Values("Sparta", "pNRA", "sNRA", "pRA",
                                           "pBMW", "pJASS"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

class DeadlineTest : public ::testing::TestWithParam<const char*> {};

TEST_P(DeadlineTest, RecallMonotoneInDeadlineAndLoosestMatchesUnconstrained) {
  const auto idx = MakeTinyIndex(4000, 311);
  const auto terms = PickQueryTerms(idx, 8, 3);
  topk::SearchParams params;
  params.k = 30;
  params.seg_size = 128;  // small segments = dense anytime poll points
  const auto oracle = topk::ComputeExactTopK(idx, terms, params.k);

  SimConfig config;
  config.num_workers = 6;
  const auto free_run = RunWithFaults(idx, GetParam(), terms, params, config);
  ASSERT_EQ(free_run.result.status, topk::ResultStatus::kComplete);
  const double free_recall = topk::Recall(oracle, free_run.result.entries);
  const exec::VirtualTime full = free_run.latency;
  ASSERT_GT(full, 0);

  // The simulator is deterministic and a longer deadline strictly
  // extends the execution prefix of a shorter one, so both consumed
  // work and recall are monotone in the deadline.
  double prev_recall = -1.0;
  std::uint64_t prev_postings = 0;
  bool saw_degraded = false;
  for (const exec::VirtualTime deadline :
       {full / 16, full / 4, full / 2, 4 * full}) {
    topk::SearchParams p = params;
    p.deadline = deadline;
    const auto run = RunWithFaults(idx, GetParam(), terms, p, config);
    const double recall = topk::Recall(oracle, run.result.entries);
    EXPECT_GE(recall, prev_recall) << "deadline " << deadline;
    EXPECT_GE(run.result.stats.postings_processed, prev_postings)
        << "deadline " << deadline;
    prev_recall = recall;
    prev_postings = run.result.stats.postings_processed;
    if (run.result.status == topk::ResultStatus::kDeadlineDegraded) {
      saw_degraded = true;
      EXPECT_TRUE(run.result.degraded());
    } else {
      EXPECT_EQ(run.result.status, topk::ResultStatus::kComplete);
    }
  }
  // A deadline past the unconstrained latency never fires: same recall,
  // complete status.
  topk::SearchParams loose = params;
  loose.deadline = 4 * full;
  const auto loose_run = RunWithFaults(idx, GetParam(), terms, loose, config);
  EXPECT_EQ(loose_run.result.status, topk::ResultStatus::kComplete);
  EXPECT_EQ(loose_run.result.entries, free_run.result.entries);
  EXPECT_DOUBLE_EQ(topk::Recall(oracle, loose_run.result.entries),
                   free_recall);
  // And a tight one does fire for every algorithm under test.
  EXPECT_TRUE(saw_degraded);
}

INSTANTIATE_TEST_SUITE_P(Algorithms, DeadlineTest,
                         ::testing::Values("Sparta", "pNRA", "sNRA", "pRA",
                                           "pBMW", "pJASS"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

TEST(FaultInjectionTest, TransientIoErrorsRetryThenComplete) {
  // Low error rate, generous retry budget: the query pays for retries in
  // virtual time but still finishes exactly.
  const auto idx = MakeTinyIndex(2500, 313);
  const auto terms = PickQueryTerms(idx, 7, 6);
  topk::SearchParams params;
  params.k = 25;

  SimConfig config;
  config.num_workers = 6;
  config.faults.io_error_prob = 0.3;
  config.faults.io_retry_limit = 8;  // escalation needs 9 straight fails

  const auto faulty = RunWithFaults(idx, "Sparta", terms, params, config);
  EXPECT_EQ(faulty.result.status, topk::ResultStatus::kComplete);
  EXPECT_TRUE(IsExactTopK(idx, terms, params.k, faulty.result));
  EXPECT_GT(faulty.result.stats.io_retries, 0u);

  SimConfig clean;
  clean.num_workers = 6;
  const auto baseline = RunWithFaults(idx, "Sparta", terms, params, clean);
  EXPECT_GT(faulty.latency, baseline.latency)
      << "retry+backoff must be priced in virtual time";
}

TEST(FaultInjectionTest, ExhaustedRetryBudgetEscalatesToFaultStatus) {
  // Every read fails: the very first SSD read exhausts its retry budget
  // and the query degrades to kPartialAfterFault instead of spinning.
  const auto idx = MakeTinyIndex(2500, 313);
  const auto terms = PickQueryTerms(idx, 7, 6);
  topk::SearchParams params;
  params.k = 25;

  SimConfig config;
  config.num_workers = 6;
  config.faults.io_error_prob = 1.0;
  config.faults.io_retry_limit = 2;

  for (const char* algo : {"Sparta", "pJASS", "pRA", "sNRA"}) {
    const auto run = RunWithFaults(idx, algo, terms, params, config);
    EXPECT_EQ(run.result.status, topk::ResultStatus::kPartialAfterFault)
        << algo;
    EXPECT_TRUE(run.result.degraded()) << algo;
    EXPECT_GT(run.result.stats.io_retries, 0u) << algo;
    EXPECT_GT(run.result.stats.faults_injected, 0u) << algo;
  }
}

TEST(FaultInjectionTest, StragglerStallsStretchLatencyNotResults) {
  const auto idx = MakeTinyIndex(2500, 317);
  const auto terms = PickQueryTerms(idx, 7, 1);
  topk::SearchParams params;
  params.k = 25;

  SimConfig clean;
  clean.num_workers = 6;
  const auto baseline = RunWithFaults(idx, "Sparta", terms, params, clean);
  ASSERT_EQ(baseline.result.status, topk::ResultStatus::kComplete);

  SimConfig config = clean;
  config.faults.stall_prob = 0.5;
  config.faults.stall_ns = 2 * exec::kMillisecond;
  const auto straggled = RunWithFaults(idx, "Sparta", terms, params, config);
  EXPECT_EQ(straggled.result.status, topk::ResultStatus::kComplete);
  // No deadline: stalls stretch the critical path but change no work.
  EXPECT_EQ(straggled.result.entries, baseline.result.entries);
  EXPECT_GT(straggled.result.stats.faults_injected, 0u);
  EXPECT_GT(straggled.latency, baseline.latency);
}

TEST(FaultInjectionTest, LockHolderPreemptionKeepsResultsExact) {
  const auto idx = MakeTinyIndex(2500, 331);
  const auto terms = PickQueryTerms(idx, 7, 4);
  topk::SearchParams params;
  params.k = 25;

  SimConfig config;
  config.num_workers = 6;
  config.faults.lock_preempt_prob = 1.0;

  // pRA and pJASS lock on every heap insert / stripe access, so a 100%
  // preemption rate exercises the delayed-release path heavily.
  for (const char* algo : {"pRA", "pJASS"}) {
    const auto run = RunWithFaults(idx, algo, terms, params, config);
    EXPECT_EQ(run.result.status, topk::ResultStatus::kComplete) << algo;
    EXPECT_TRUE(IsExactTopK(idx, terms, params.k, run.result)) << algo;
    EXPECT_GT(run.result.stats.faults_injected, 0u) << algo;
  }
}

TEST(FaultInjectionTest, MidQueryMemorySqueezeReturnsPartialTopK) {
  const auto idx = MakeTinyIndex(4000, 337);
  const auto terms = PickQueryTerms(idx, 8, 2);
  topk::SearchParams params;
  params.k = 20;

  // Find the unconstrained latency, then squeeze the budget to zero
  // partway through: the map-heavy pJASS must OOM yet still return its
  // accumulated best-so-far top-k.
  SimConfig clean;
  clean.num_workers = 4;
  const auto free_run = RunWithFaults(idx, "pJASS", terms, params, clean);
  ASSERT_EQ(free_run.result.status, topk::ResultStatus::kComplete);

  SimConfig config = clean;
  config.faults.mem_squeeze_after = free_run.latency / 3;
  config.faults.mem_squeeze_factor = 0.0;
  const auto squeezed = RunWithFaults(idx, "pJASS", terms, params, config);
  EXPECT_EQ(squeezed.result.status, topk::ResultStatus::kOom);
  EXPECT_FALSE(squeezed.result.entries.empty());
  EXPECT_GT(squeezed.result.stats.faults_injected, 0u);
  EXPECT_LT(squeezed.result.stats.postings_processed,
            free_run.result.stats.postings_processed);
}

TEST(FaultInjectionTest, PostingsFractionReflectsDeadlineTightness) {
  const auto idx = MakeTinyIndex(4000, 347);
  const auto terms = PickQueryTerms(idx, 8, 7);
  topk::SearchParams params;
  params.k = 20;

  SimConfig config;
  config.num_workers = 6;
  const auto free_run = RunWithFaults(idx, "Sparta", terms, params, config);
  ASSERT_EQ(free_run.result.status, topk::ResultStatus::kComplete);
  ASSERT_GT(free_run.result.stats.postings_total, 0u);

  topk::SearchParams tight = params;
  tight.deadline = free_run.latency / 8;
  const auto run = RunWithFaults(idx, "Sparta", terms, tight, config);
  EXPECT_LE(run.result.stats.PostingsFraction(),
            free_run.result.stats.PostingsFraction());
  EXPECT_GE(run.result.stats.PostingsFraction(), 0.0);
  EXPECT_LE(run.result.stats.PostingsFraction(), 1.0);
}

// ---------------------------------------------------------------------
// Retry-backoff arithmetic (DESIGN.md §7): exact cost at the retry
// limit, and saturation instead of overflow for extreme backoffs.
// ---------------------------------------------------------------------

TEST(FaultInjectionTest, RetryBackoffChargesExactCostAtTheLimit) {
  // io_error_prob = 1.0: the first cache-missing random read fails
  // every attempt. With the default plan (limit 3, backoff 20us
  // doubling, random page 80us) the charged extra is
  //   3 * 80'000 (re-paid device) + 20'000 + 40'000 + 80'000 = 380'000.
  SimConfig config;
  config.num_workers = 2;
  config.faults.io_error_prob = 1.0;
  ASSERT_EQ(config.faults.io_retry_limit, 3);
  ASSERT_EQ(config.faults.io_retry_backoff_ns, 20'000);
  ASSERT_EQ(config.costs.ssd_random_page, 80'000);

  sim::SimExecutor executor(config);
  auto ctx = executor.CreateQuery();
  ctx->Submit([](exec::WorkerContext& worker) { worker.IoRandom(0); });
  ctx->RunToCompletion();

  const auto stats = ctx->fault_stats();
  EXPECT_EQ(stats.io_retries, 3u);
  EXPECT_EQ(stats.io_escalations, 1u)
      << "failures past the limit must escalate, not block";
  ASSERT_NE(executor.fault_injector(), nullptr);
  const auto& events = executor.fault_injector()->events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, FaultInjector::Kind::kIoError);
  EXPECT_EQ(events[0].cost, 380'000);
}

TEST(FaultInjectionTest, RetryBackoffSaturatesInsteadOfOverflowing) {
  // A pathological backoff near the representable ceiling: the doubling
  // and the accumulated charge must both clamp at kNever rather than
  // wrap (the guard in ReadPage's loop).
  SimConfig config;
  config.num_workers = 2;
  config.faults.io_error_prob = 1.0;
  config.faults.io_retry_backoff_ns = exec::kNever / 2;

  sim::SimExecutor executor(config);
  auto ctx = executor.CreateQuery();
  ctx->Submit([](exec::WorkerContext& worker) { worker.IoRandom(0); });
  ctx->RunToCompletion();

  ASSERT_NE(executor.fault_injector(), nullptr);
  const auto& events = executor.fault_injector()->events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, FaultInjector::Kind::kIoError);
  EXPECT_EQ(events[0].cost, exec::kNever);
  EXPECT_GT(events[0].cost, 0) << "saturation must never go negative";
}

// ---------------------------------------------------------------------
// Merge-fault hooks: part of the enabled() gate, inert at probability
// zero (so fault logs of merge-free configs stay bit-identical).
// ---------------------------------------------------------------------

TEST(FaultInjectionTest, MergeFaultProbabilitiesGateTheInjector) {
  EXPECT_FALSE(FaultConfig{}.enabled());
  FaultConfig abort_only;
  abort_only.merge_abort_prob = 0.5;
  EXPECT_TRUE(abort_only.enabled());
  FaultConfig torn_only;
  torn_only.torn_write_prob = 0.5;
  EXPECT_TRUE(torn_only.enabled());
}

TEST(FaultInjectionTest, ZeroProbabilityMergeDrawsConsumeNoRandomness) {
  // Interleaving merge probes at probability zero must not advance the
  // RNG: the I/O failure sequence stays bit-identical, so adding the
  // live-update path to a config without merge faults cannot perturb
  // any existing seeded fault plan.
  FaultConfig config;
  config.seed = 71;
  config.io_error_prob = 0.3;
  FaultInjector plain(config);
  FaultInjector interleaved(config);
  std::vector<int> a, b;
  for (int i = 0; i < 200; ++i) {
    a.push_back(plain.IoFailures());
    EXPECT_FALSE(interleaved.OnMergeAbort(0, i));
    EXPECT_FALSE(interleaved.OnMergeWrite(0, i));
    b.push_back(interleaved.IoFailures());
  }
  EXPECT_EQ(a, b);
  EXPECT_TRUE(interleaved.events().empty())
      << "zero-probability merge probes must log nothing";
}

}  // namespace
}  // namespace sparta::test

// Cross-cutting property tests on the simulator + algorithms:
// determinism, monotonicity in the approximation knobs, and work/recall
// trade-off directions. All run on the DES, where every property is
// exactly checkable (no timing noise).
#include <gtest/gtest.h>

#include <random>

#include "core/sparta.h"
#include "corpus/scale_up.h"
#include "driver/experiment.h"
#include "test_helpers.h"
#include "topk/query_metrics.h"

namespace sparta::test {
namespace {

struct AlgoParam {
  const char* name;
};

class DeterminismTest : public ::testing::TestWithParam<const char*> {};

TEST_P(DeterminismTest, IdenticalRunsProduceIdenticalResultsAndTimes) {
  const auto idx = MakeTinyIndex(2500, 201);
  const auto terms = PickQueryTerms(idx, 7, 4);
  topk::SearchParams params;
  params.k = 30;
  params.delta = 500'000;  // exercise the Δ path too

  auto run_once = [&](exec::VirtualTime* latency) {
    const auto algo = algos::MakeAlgorithm(GetParam());
    sim::SimConfig config;
    config.num_workers = 7;
    sim::SimExecutor executor(config);
    auto ctx = executor.CreateQuery();
    auto result = algo->Run(idx, terms, params, *ctx);
    *latency = ctx->end_time() - ctx->start_time();
    return result;
  };
  exec::VirtualTime t1 = 0, t2 = 0;
  const auto a = run_once(&t1);
  const auto b = run_once(&t2);
  // Results are bit-identical. Virtual time is reproducible to a hair:
  // heap-allocation alignment decides which 64-byte lines small shared
  // variables straddle, perturbing coherence-miss counts by O(0.1%).
  EXPECT_NEAR(static_cast<double>(t1), static_cast<double>(t2),
              0.005 * static_cast<double>(t1));
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.entries, b.entries);
  EXPECT_EQ(a.stats.postings_processed, b.stats.postings_processed);
}

INSTANTIATE_TEST_SUITE_P(Algorithms, DeterminismTest,
                         ::testing::Values("Sparta", "pNRA", "sNRA",
                                           "pRA", "pBMW", "pJASS"),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (auto& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

TEST(MonotonicityTest, LargerDeltaNeverReducesWorkOrRecall) {
  const auto idx = MakeTinyIndex(5000, 203);
  const auto terms = PickQueryTerms(idx, 8, 6);
  const auto oracle = topk::ComputeExactTopK(idx, terms, 40);

  std::uint64_t prev_postings = 0;
  double prev_recall = -1.0;
  for (const exec::VirtualTime delta :
       {20'000LL, 100'000LL, 500'000LL, 5'000'000LL}) {
    topk::SearchParams params;
    params.k = 40;
    params.delta = delta;
    const auto res = RunOnSim(idx, "Sparta", terms, params, 8);
    ASSERT_TRUE(res.ok());
    const double recall = topk::Recall(oracle, res.entries);
    // The simulator is deterministic and a larger Δ strictly extends the
    // run of a smaller one, so both work and recall are monotone.
    EXPECT_GE(res.stats.postings_processed, prev_postings)
        << "delta " << delta;
    EXPECT_GE(recall, prev_recall - 1e-12) << "delta " << delta;
    prev_postings = res.stats.postings_processed;
    prev_recall = recall;
  }
}

TEST(MonotonicityTest, LargerJassFractionNeverReducesRecall) {
  const auto idx = MakeTinyIndex(5000, 207);
  const auto terms = PickQueryTerms(idx, 8, 8);
  const auto oracle = topk::ComputeExactTopK(idx, terms, 40);
  double prev_recall = -1.0;
  for (const double p : {0.05, 0.2, 0.5, 1.0}) {
    topk::SearchParams params;
    params.k = 40;
    params.p = p;
    const auto res = RunOnSim(idx, "pJASS", terms, params, 8);
    ASSERT_TRUE(res.ok());
    const double recall = topk::Recall(oracle, res.entries);
    EXPECT_GE(recall, prev_recall - 1e-12) << "p " << p;
    prev_recall = recall;
  }
  EXPECT_DOUBLE_EQ(prev_recall, 1.0);  // p = 1 is exact
}

TEST(MonotonicityTest, LargerBmwRelaxationNeverIncreasesWork) {
  const auto idx = MakeTinyIndex(5000, 209);
  const auto terms = PickQueryTerms(idx, 8, 10);
  std::uint64_t prev_postings = std::numeric_limits<std::uint64_t>::max();
  for (const double f : {1.0, 2.0, 5.0, 10.0}) {
    topk::SearchParams params;
    params.k = 40;
    params.f = f;
    const auto res = RunOnSim(idx, "pBMW", terms, params, 8);
    ASSERT_TRUE(res.ok());
    EXPECT_LE(res.stats.postings_processed, prev_postings) << "f " << f;
    prev_postings = res.stats.postings_processed;
  }
}

TEST(MonotonicityTest, ProbFactorTradesWorkMonotonically) {
  const auto idx = MakeTinyIndex(5000, 211);
  const auto terms = PickQueryTerms(idx, 8, 12);
  std::uint64_t prev_postings = std::numeric_limits<std::uint64_t>::max();
  for (const double gamma : {1.0, 0.8, 0.6, 0.4}) {
    core::SpartaOptions options;
    options.prob_factor = gamma;
    const core::Sparta algo(options);
    topk::SearchParams params;
    params.k = 40;
    sim::SimConfig config;
    config.num_workers = 8;
    sim::SimExecutor executor(config);
    auto ctx = executor.CreateQuery();
    const auto res = algo.Run(idx, terms, params, *ctx);
    ASSERT_TRUE(res.ok());
    EXPECT_LE(res.stats.postings_processed, prev_postings)
        << "gamma " << gamma;
    prev_postings = res.stats.postings_processed;
  }
}

// Randomized differential suite: every exact configuration must match
// the brute-force oracle on random queries under random machine shapes
// (worker counts, cache sizes; fault-free). Seeded, so failures replay.
class RandomDifferentialTest
    : public ::testing::TestWithParam<const char*> {};

TEST_P(RandomDifferentialTest, MatchesOracleOnRandomQueriesAndConfigs) {
  const auto idx = MakeTinyIndex(2500, 701, 500);
  std::uint64_t seed = 0xC0FFEE;
  for (const char c : std::string_view(GetParam())) {
    seed = seed * 131 + static_cast<std::uint64_t>(c);
  }
  std::mt19937_64 rng(seed);
  constexpr int kQueries = 200;
  for (int q = 0; q < kQueries; ++q) {
    const std::size_t m = 2 + rng() % 5;  // 2..6 terms
    const auto terms = PickQueryTerms(idx, m, rng() % 997);
    topk::SearchParams params;
    params.k = static_cast<int>(5 + rng() % 40);
    sim::SimConfig config;
    config.num_workers = static_cast<int>(1 + rng() % 12);
    // Randomize the memory shape: page cache from "everything misses"
    // to unbounded, and an occasionally tiny LLC.
    config.page_cache_bytes =
        (rng() % 2) != 0 ? 0 : (64 + rng() % 192) * 1024;
    if ((rng() % 4) == 0) config.costs.llc_bytes = 256 * 1024;
    const auto res = RunOnSim(idx, GetParam(), terms, params, config);
    ASSERT_TRUE(res.ok()) << GetParam() << " query " << q;
    EXPECT_TRUE(IsExactTopK(idx, terms, params.k, res))
        << GetParam() << " query " << q << " workers "
        << config.num_workers << " k " << params.k;
    EXPECT_TRUE(topk::ConsistentQueryStats(res.stats))
        << GetParam() << " query " << q;
  }
}

// The five exact configurations: Sparta and pBMW are exact at their
// defaults (gamma = 1, f = 1); the TA family is exact with delta off.
INSTANTIATE_TEST_SUITE_P(ExactAlgorithms, RandomDifferentialTest,
                         ::testing::Values("Sparta", "pBMW", "pRA",
                                           "pNRA", "sNRA"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

TEST(ScaleTest, BiggerCorpusMeansMoreExactWork) {
  // Sanity direction on the scale-up itself: a 3x corpus costs the exact
  // algorithms more postings for the same query shape.
  corpus::SyntheticCorpusSpec small;
  small.num_docs = 4000;
  small.vocab_size = 1500;
  small.seed = 77;
  const auto base = corpus::GenerateRawCorpus(small);
  auto idx_small = index::FinalizeIndex(corpus::GenerateRawCorpus(small));
  corpus::ScaleUpSpec up;
  up.factor = 3;
  auto idx_big =
      index::FinalizeIndex(corpus::ScaleUpCorpus(base, small, up));

  const auto terms = PickQueryTerms(idx_small, 6, 3);
  topk::SearchParams params;
  params.k = 20;
  const auto small_run = RunOnSim(idx_small, "pJASS", terms, params, 6);
  const auto big_run = RunOnSim(idx_big, "pJASS", terms, params, 6);
  ASSERT_TRUE(small_run.ok());
  ASSERT_TRUE(big_run.ok());
  EXPECT_GT(big_run.stats.postings_processed,
            small_run.stats.postings_processed * 2);
}

}  // namespace
}  // namespace sparta::test

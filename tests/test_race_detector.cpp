// Deterministic race detector: unit tests against the hook API, plus
// end-to-end runs of every paper algorithm under SimConfig::race_check.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "sim/race_detector.h"
#include "test_helpers.h"
#include "topk/doc_map.h"

namespace sparta::test {
namespace {

using exec::AccessKind;
using sim::RaceDetector;
using sim::RaceReport;

int dummy_target = 0;
int dummy_lock_a = 0;
int dummy_lock_b = 0;

std::vector<std::string> Described(const std::vector<RaceReport>& reports) {
  std::vector<std::string> out;
  out.reserve(reports.size());
  for (const auto& r : reports) out.push_back(r.Describe());
  return out;
}

// --- unit tests: detector hook API -----------------------------------

TEST(RaceDetectorUnit, UnsynchronizedWriteWriteIsFlagged) {
  RaceDetector det(4);
  det.LabelRange(&dummy_target, sizeof(dummy_target), "target");
  det.OnAccess(0, &dummy_target, AccessKind::kWrite);
  det.OnAccess(1, &dummy_target, AccessKind::kWrite);
  ASSERT_EQ(det.reports().size(), 1u);
  const RaceReport& r = det.reports()[0];
  EXPECT_EQ(r.addr, &dummy_target);
  EXPECT_EQ(r.label, "target");
  EXPECT_EQ(r.prior_worker, 0);
  EXPECT_EQ(r.worker, 1);
  EXPECT_EQ(r.prior_kind, AccessKind::kWrite);
  EXPECT_EQ(r.kind, AccessKind::kWrite);
  EXPECT_TRUE(r.prior_locks.empty());
  EXPECT_TRUE(r.locks.empty());
}

TEST(RaceDetectorUnit, WriteThenRemoteReadIsFlagged) {
  RaceDetector det(4);
  det.OnAccess(2, &dummy_target, AccessKind::kWrite);
  det.OnAccess(3, &dummy_target, AccessKind::kRead);
  ASSERT_EQ(det.reports().size(), 1u);
  EXPECT_EQ(det.reports()[0].prior_worker, 2);
  EXPECT_EQ(det.reports()[0].worker, 3);
  EXPECT_EQ(det.reports()[0].kind, AccessKind::kRead);
}

TEST(RaceDetectorUnit, ReadThenRemoteWriteIsFlagged) {
  RaceDetector det(4);
  det.OnAccess(0, &dummy_target, AccessKind::kRead);
  det.OnAccess(1, &dummy_target, AccessKind::kWrite);
  ASSERT_EQ(det.reports().size(), 1u);
  EXPECT_EQ(det.reports()[0].prior_kind, AccessKind::kRead);
  EXPECT_EQ(det.reports()[0].kind, AccessKind::kWrite);
}

TEST(RaceDetectorUnit, ConcurrentReadsAreClean) {
  RaceDetector det(4);
  for (int w = 0; w < 4; ++w) {
    det.OnAccess(w, &dummy_target, AccessKind::kRead);
  }
  EXPECT_TRUE(det.reports().empty());
}

TEST(RaceDetectorUnit, CommonLockProtects) {
  RaceDetector det(4);
  det.OnLockAcquire(0, &dummy_lock_a);
  det.OnAccess(0, &dummy_target, AccessKind::kWrite);
  det.OnLockRelease(0, &dummy_lock_a);
  det.OnLockAcquire(1, &dummy_lock_a);
  det.OnAccess(1, &dummy_target, AccessKind::kWrite);
  det.OnLockRelease(1, &dummy_lock_a);
  EXPECT_TRUE(det.reports().empty());
}

TEST(RaceDetectorUnit, DisjointLocksDoNotProtect) {
  RaceDetector det(4);
  det.OnLockAcquire(0, &dummy_lock_a);
  det.OnAccess(0, &dummy_target, AccessKind::kWrite);
  det.OnLockRelease(0, &dummy_lock_a);
  det.OnLockAcquire(1, &dummy_lock_b);
  det.OnAccess(1, &dummy_target, AccessKind::kWrite);
  det.OnLockRelease(1, &dummy_lock_b);
  ASSERT_EQ(det.reports().size(), 1u);
  // Lock ids are assigned in first-acquire order: a=0, b=1.
  EXPECT_EQ(det.reports()[0].prior_locks, std::vector<int>{0});
  EXPECT_EQ(det.reports()[0].locks, std::vector<int>{1});
}

TEST(RaceDetectorUnit, LockReleaseAcquireCreatesOrder) {
  RaceDetector det(4);
  // Worker 0 publishes an unprotected write via a later release of L;
  // worker 1 acquires L first, so the read is ordered (no lockset
  // overlap needed — pure happens-before).
  det.OnAccess(0, &dummy_target, AccessKind::kWrite);
  det.OnLockAcquire(0, &dummy_lock_a);
  det.OnLockRelease(0, &dummy_lock_a);
  det.OnLockAcquire(1, &dummy_lock_a);
  det.OnLockRelease(1, &dummy_lock_a);
  det.OnAccess(1, &dummy_target, AccessKind::kRead);
  EXPECT_TRUE(det.reports().empty());
}

TEST(RaceDetectorUnit, ForkEdgeOrdersParentBeforeChild) {
  RaceDetector det(4);
  det.OnJobStart(0, 0);
  det.OnAccess(0, &dummy_target, AccessKind::kWrite);
  const std::uint64_t token = det.OnJobSubmit(0);
  det.OnJobStart(1, token);
  det.OnAccess(1, &dummy_target, AccessKind::kRead);
  EXPECT_TRUE(det.reports().empty());
}

TEST(RaceDetectorUnit, PostForkWriteRacesWithChild) {
  RaceDetector det(4);
  det.OnJobStart(0, 0);
  const std::uint64_t token = det.OnJobSubmit(0);
  // Written only *after* the fork snapshot: not ordered before the child.
  det.OnAccess(0, &dummy_target, AccessKind::kWrite);
  det.OnJobStart(1, token);
  det.OnAccess(1, &dummy_target, AccessKind::kRead);
  ASSERT_EQ(det.reports().size(), 1u);
  EXPECT_EQ(det.reports()[0].prior_worker, 0);
  EXPECT_EQ(det.reports()[0].worker, 1);
}

TEST(RaceDetectorUnit, SyncAcquireJoinsReleaseClock) {
  RaceDetector det(4);
  det.OnLockAcquire(0, &dummy_lock_a);
  det.OnAccess(0, &dummy_target, AccessKind::kWrite);
  det.OnLockRelease(0, &dummy_lock_a);
  // The quiescent-scan protocol: acquire the lock's clock without
  // locking, then read.
  det.OnSyncAcquire(1, &dummy_lock_a);
  det.OnAccess(1, &dummy_target, AccessKind::kRead);
  EXPECT_TRUE(det.reports().empty());
}

TEST(RaceDetectorUnit, AllowRangeSuppressesInsteadOfReporting) {
  RaceDetector det(4);
  det.AllowRange(&dummy_target, sizeof(dummy_target), "benign");
  det.OnAccess(0, &dummy_target, AccessKind::kWrite);
  det.OnAccess(1, &dummy_target, AccessKind::kWrite);
  det.OnAccess(2, &dummy_target, AccessKind::kRead);
  EXPECT_TRUE(det.reports().empty());
  EXPECT_GE(det.suppressed(), 2u);
}

TEST(RaceDetectorUnit, DuplicatePairsReportedOnce) {
  RaceDetector det(4);
  det.OnAccess(0, &dummy_target, AccessKind::kWrite);
  det.OnAccess(1, &dummy_target, AccessKind::kRead);
  det.OnAccess(1, &dummy_target, AccessKind::kRead);
  det.OnAccess(1, &dummy_target, AccessKind::kRead);
  EXPECT_EQ(det.reports().size(), 1u);
}

TEST(RaceDetectorUnit, DescribeUsesLabelAndOffsetNotAddresses) {
  static int array_target[8] = {};
  RaceDetector det(4);
  det.LabelRange(array_target, sizeof(array_target), "UB");
  det.OnAccess(0, &array_target[3], AccessKind::kWrite);
  det.OnAccess(1, &array_target[3], AccessKind::kRead);
  ASSERT_EQ(det.reports().size(), 1u);
  const std::string text = det.reports()[0].Describe();
  EXPECT_EQ(text, "UB+12: w0 write{} vs w1 read{}");
}

TEST(RaceDetectorUnit, ResetShadowDropsStateButKeepsReports) {
  RaceDetector det(4);
  det.OnAccess(0, &dummy_target, AccessKind::kWrite);
  det.OnAccess(1, &dummy_target, AccessKind::kWrite);
  ASSERT_EQ(det.reports().size(), 1u);
  det.ResetShadow();
  // Same address reused by a "new query": no stale writer epoch.
  det.OnAccess(2, &dummy_target, AccessKind::kRead);
  EXPECT_EQ(det.reports().size(), 1u);
}

// --- integration: seeded races through the simulator ------------------

/// Runs two externally submitted jobs (no fork edge between them) that
/// touch `target` via the zero-cost ShadowAccess hook.
std::vector<std::string> RunSeededConflict(bool lock_both) {
  sim::SimConfig config;
  config.num_workers = 2;
  config.race_check = true;
  sim::SimExecutor executor(config);
  auto ctx = executor.CreateQuery();
  static int target = 0;
  auto lock = ctx->MakeLock();
  for (int j = 0; j < 2; ++j) {
    ctx->Submit([&, j](exec::WorkerContext& w) {
      w.Charge(j * 10);  // keep the two jobs on distinct virtual workers
      if (lock_both) {
        const exec::CtxLockGuard guard(*lock, w);
        w.ShadowAccess(&target, AccessKind::kWrite);
      } else {
        w.ShadowAccess(&target, AccessKind::kWrite);
      }
    });
  }
  ctx->RunToCompletion();
  const RaceDetector* det = executor.race_detector();
  EXPECT_NE(det, nullptr);
  return Described(det->reports());
}

TEST(RaceDetectorSim, SeededRaceSurfacesThroughExecutor) {
  const auto reports = RunSeededConflict(/*lock_both=*/false);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0], "<unlabeled>: w0 write{} vs w1 write{}");
}

TEST(RaceDetectorSim, LockedConflictIsClean) {
  EXPECT_TRUE(RunSeededConflict(/*lock_both=*/true).empty());
}

TEST(RaceDetectorSim, SeededRaceIsDeterministicAcrossRuns) {
  const auto first = RunSeededConflict(false);
  const auto second = RunSeededConflict(false);
  EXPECT_EQ(first, second);
}

TEST(RaceDetectorSim, JobForkEdgeVisibleThroughExecutor) {
  sim::SimConfig config;
  config.num_workers = 2;
  config.race_check = true;
  sim::SimExecutor executor(config);
  auto ctx = executor.CreateQuery();
  static int target = 0;
  ctx->Submit([&](exec::WorkerContext& w) {
    w.ShadowAccess(&target, AccessKind::kWrite);
    // Child job inherits a fork edge from this point: ordered, clean.
    ctx->Submit([&](exec::WorkerContext& cw) {
      cw.ShadowAccess(&target, AccessKind::kRead);
    });
  });
  ctx->RunToCompletion();
  EXPECT_TRUE(executor.race_detector()->reports().empty());
}

// --- integration: ConcurrentDocMap invariants -------------------------

struct DocMapHarness {
  sim::SimConfig config;
  std::unique_ptr<sim::SimExecutor> executor;
  std::unique_ptr<exec::QueryContext> ctx;
  std::unique_ptr<topk::ConcurrentDocMap> map;

  explicit DocMapHarness(int workers = 4) {
    config.num_workers = workers;
    config.race_check = true;
    executor = std::make_unique<sim::SimExecutor>(config);
    ctx = executor->CreateQuery();
    map = std::make_unique<topk::ConcurrentDocMap>(*ctx, /*num_terms=*/2);
  }

  void SubmitInserts(DocId base, DocId count, exec::VirtualTime stagger) {
    ctx->Submit([this, base, count, stagger](exec::WorkerContext& w) {
      w.Charge(stagger);
      for (DocId d = base; d < base + count; ++d) {
        auto res = map->GetOrCreate(d, w);
        ASSERT_NE(res.doc, nullptr);
        map->AddScore(d, 3, w);
      }
    });
  }

  const RaceDetector& detector() const { return *executor->race_detector(); }
};

TEST(RaceDetectorDocMap, LockedOperationsAreClean) {
  DocMapHarness h;
  h.SubmitInserts(0, 64, 0);
  h.SubmitInserts(32, 64, 5);  // overlapping ids: find + insert mix
  h.ctx->Submit([&](exec::WorkerContext& w) {
    w.Charge(10);
    std::size_t n = 0;
    h.map->ForEachLocked([&](topk::DocType*) { ++n; }, w);
  });
  h.ctx->RunToCompletion();
  EXPECT_TRUE(h.detector().reports().empty());
}

TEST(RaceDetectorDocMap, UnlockedScanBeforeFreezeIsFlagged) {
  DocMapHarness h;
  h.SubmitInserts(0, 256, 0);
  h.ctx->Submit([&](exec::WorkerContext& w) {
    w.Charge(1);  // interleave with the insert job, on another worker
    std::size_t n = 0;
    h.map->ForEach([&](topk::DocType*) { ++n; }, w);  // no SetReadOnly()!
  });
  h.ctx->RunToCompletion();
  EXPECT_FALSE(h.detector().reports().empty());
}

TEST(RaceDetectorDocMap, FrozenScanIsClean) {
  DocMapHarness h;
  h.SubmitInserts(0, 256, 0);
  h.ctx->RunToCompletion();
  h.map->SetReadOnly();
  h.ctx->Submit([&](exec::WorkerContext& w) {
    std::size_t n = 0;
    h.map->ForEach([&](topk::DocType*) { ++n; }, w);
    EXPECT_EQ(n, 256u);
  });
  h.ctx->RunToCompletion();
  EXPECT_TRUE(h.detector().reports().empty());
}

// --- integration: the paper's algorithms run clean --------------------

struct AlgoRunOutcome {
  topk::SearchResult result;
  std::vector<std::string> reports;
  std::uint64_t suppressed = 0;
  exec::VirtualTime latency = 0;
};

AlgoRunOutcome RunWithRaceCheck(const index::InvertedIndex& idx,
                                std::string_view algo_name,
                                const std::vector<TermId>& terms,
                                const topk::SearchParams& params,
                                bool race_check, int workers = 4) {
  const auto algo = algos::MakeAlgorithm(algo_name);
  SPARTA_CHECK(algo != nullptr);
  sim::SimConfig config;
  config.num_workers = workers;
  config.race_check = race_check;
  sim::SimExecutor executor(config);
  auto ctx = executor.CreateQuery();
  AlgoRunOutcome out;
  out.result = algo->Run(idx, terms, params, *ctx);
  out.latency = ctx->end_time() - ctx->start_time();
  if (const RaceDetector* det = executor.race_detector()) {
    out.reports = Described(det->reports());
    out.suppressed = det->suppressed();
  }
  return out;
}

class RaceDetectorAlgorithms
    : public ::testing::TestWithParam<const char*> {};

TEST_P(RaceDetectorAlgorithms, RunsCleanUnderRaceCheck) {
  const auto idx = MakeTinyIndex();
  const auto terms = PickQueryTerms(idx, 3);
  topk::SearchParams params;
  params.k = 10;
  const auto out =
      RunWithRaceCheck(idx, GetParam(), terms, params, /*race_check=*/true);
  EXPECT_TRUE(out.result.ok());
  EXPECT_TRUE(out.reports.empty())
      << "first report: " << out.reports.front();
}

TEST_P(RaceDetectorAlgorithms, ReportSetIsDeterministic) {
  const auto idx = MakeTinyIndex();
  const auto terms = PickQueryTerms(idx, 3);
  topk::SearchParams params;
  params.k = 10;
  const auto a = RunWithRaceCheck(idx, GetParam(), terms, params, true);
  const auto b = RunWithRaceCheck(idx, GetParam(), terms, params, true);
  EXPECT_EQ(a.reports, b.reports);
  EXPECT_EQ(a.suppressed, b.suppressed);
}

TEST_P(RaceDetectorAlgorithms, DetectorDoesNotPerturbLatency) {
  const auto idx = MakeTinyIndex();
  const auto terms = PickQueryTerms(idx, 3);
  topk::SearchParams params;
  params.k = 10;
  const auto off = RunWithRaceCheck(idx, GetParam(), terms, params, false);
  const auto on = RunWithRaceCheck(idx, GetParam(), terms, params, true);
  // The hooks charge no virtual time; the only residual effect is the
  // heap-layout sensitivity of address-keyed coherence lines (the ~0.1%
  // jitter documented in sim_executor.h), since the detector's shadow
  // allocations interleave with the query's.
  EXPECT_NEAR(static_cast<double>(on.latency),
              static_cast<double>(off.latency),
              0.005 * static_cast<double>(off.latency));
  EXPECT_EQ(off.result.entries.size(), on.result.entries.size());
}

INSTANTIATE_TEST_SUITE_P(PaperAlgorithms, RaceDetectorAlgorithms,
                         ::testing::Values("Sparta", "pBMW", "pJASS", "pRA",
                                           "sNRA", "pNRA"),
                         [](const auto& info) {
                           std::string name = info.param;
                           std::replace(name.begin(), name.end(), '-', '_');
                           return name;
                         });

TEST(RaceDetectorAlgorithms, SpartaSuppressesLazyUbRaces) {
  // The lazy UB protocol is racy on purpose; the allowlist must be doing
  // real work (detections counted, not reported).
  const auto idx = MakeTinyIndex();
  const auto terms = PickQueryTerms(idx, 4);
  topk::SearchParams params;
  params.k = 10;
  const auto out = RunWithRaceCheck(idx, "Sparta", terms, params, true);
  EXPECT_TRUE(out.reports.empty());
  EXPECT_GT(out.suppressed, 0u);
}

}  // namespace
}  // namespace sparta::test

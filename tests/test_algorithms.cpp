// Integration tests: every retrieval algorithm against the brute-force
// oracle, across corpora, query lengths, k, and both executors.
#include <gtest/gtest.h>

#include "test_helpers.h"

namespace sparta::test {
namespace {

// Safe (exact-mode) algorithms: must return exactly the oracle's top-k.
// sNRA is excluded: its shard merge ranks by lower bounds, which is only
// guaranteed to be a high-recall approximation (see baselines/snra.h).
const char* kSafeAlgorithms[] = {"Sparta", "pNRA",  "pRA",  "TA-RA",
                                 "TA-NRA", "pBMW",  "pJASS", "JASS",
                                 "BMW",    "WAND",  "MaxScore"};

struct ExactCase {
  std::string algo;
  std::size_t terms;
  int k;
  int workers;
};

std::string CaseName(const ::testing::TestParamInfo<ExactCase>& info) {
  std::string name = info.param.algo + "_m" +
                     std::to_string(info.param.terms) + "_k" +
                     std::to_string(info.param.k) + "_w" +
                     std::to_string(info.param.workers);
  for (auto& c : name) {
    if (c == '-') c = '_';
  }
  return name;
}

class ExactAlgorithmTest : public ::testing::TestWithParam<ExactCase> {};

TEST_P(ExactAlgorithmTest, MatchesOracleOnSim) {
  const auto& p = GetParam();
  const auto idx = MakeTinyIndex(1500, /*seed=*/11);
  const auto terms = PickQueryTerms(idx, p.terms, /*salt=*/3);
  topk::SearchParams params;
  params.k = p.k;
  params.seg_size = 64;
  const auto result = RunOnSim(idx, p.algo, terms, params, p.workers);
  EXPECT_TRUE(IsExactTopK(idx, terms, p.k, result));
}

std::vector<ExactCase> MakeExactCases() {
  std::vector<ExactCase> cases;
  for (const char* algo : kSafeAlgorithms) {
    for (const std::size_t m : {1u, 2u, 4u, 8u}) {
      cases.push_back({algo, m, 10, 4});
    }
    cases.push_back({algo, 3, 1, 2});    // k = 1 edge
    cases.push_back({algo, 5, 500, 6});  // k larger than many lists
    cases.push_back({algo, 6, 25, 1});   // sequential execution
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, ExactAlgorithmTest,
                         ::testing::ValuesIn(MakeExactCases()), CaseName);

TEST(ExactAlgorithmThreadedTest, MatchesOracleOnRealThreads) {
  const auto idx = MakeTinyIndex(1200, /*seed=*/5);
  const auto terms = PickQueryTerms(idx, 5, /*salt=*/9);
  topk::SearchParams params;
  params.k = 20;
  params.seg_size = 32;
  for (const char* algo : kSafeAlgorithms) {
    SCOPED_TRACE(algo);
    const auto result = RunOnThreads(idx, algo, terms, params, 4);
    EXPECT_TRUE(IsExactTopK(idx, terms, params.k, result));
  }
}

TEST(SNraTest, HighRecallExactMode) {
  const auto idx = MakeTinyIndex(1500, /*seed=*/13);
  const auto terms = PickQueryTerms(idx, 6, /*salt=*/1);
  topk::SearchParams params;
  params.k = 20;
  params.seg_size = 64;
  const auto result = RunOnSim(idx, "sNRA", terms, params, 4);
  ASSERT_TRUE(result.ok());
  const auto exact = topk::ComputeExactTopK(idx, terms, params.k);
  EXPECT_GE(topk::Recall(exact, result.entries), 0.9);
}

TEST(ApproximateTest, DeltaStoppingKeepsHighRecall) {
  const auto idx = MakeTinyIndex(3000, /*seed=*/17);
  const auto terms = PickQueryTerms(idx, 6, /*salt=*/2);
  topk::SearchParams params;
  params.k = 50;
  params.seg_size = 64;
  params.delta = exec::kMillisecond;  // aggressive but nonzero
  for (const char* algo : {"Sparta", "pRA", "pNRA"}) {
    SCOPED_TRACE(algo);
    const auto result = RunOnSim(idx, algo, terms, params, 6);
    ASSERT_TRUE(result.ok());
    const auto exact = topk::ComputeExactTopK(idx, terms, params.k);
    EXPECT_GE(topk::Recall(exact, result.entries), 0.5);
  }
}

TEST(ApproximateTest, PBmwRelaxationTradesRecall) {
  const auto idx = MakeTinyIndex(3000, /*seed=*/19);
  const auto terms = PickQueryTerms(idx, 6, /*salt=*/4);
  topk::SearchParams exact_params;
  exact_params.k = 50;
  topk::SearchParams relaxed = exact_params;
  relaxed.f = 8.0;
  const auto oracle = topk::ComputeExactTopK(idx, terms, exact_params.k);

  const auto exact_run = RunOnSim(idx, "pBMW", terms, exact_params, 4);
  const auto relaxed_run = RunOnSim(idx, "pBMW", terms, relaxed, 4);
  ASSERT_TRUE(exact_run.ok());
  ASSERT_TRUE(relaxed_run.ok());
  EXPECT_DOUBLE_EQ(topk::Recall(oracle, exact_run.entries), 1.0);
  // Relaxation must do no more work than the exact run.
  EXPECT_LE(relaxed_run.stats.postings_processed,
            exact_run.stats.postings_processed);
}

TEST(ApproximateTest, PJassFractionBoundsWork) {
  const auto idx = MakeTinyIndex(3000, /*seed=*/23);
  const auto terms = PickQueryTerms(idx, 8, /*salt=*/5);
  std::uint64_t total = 0;
  for (const TermId t : terms) total += idx.Entry(t).df;

  topk::SearchParams params;
  params.k = 30;
  params.p = 0.1;
  params.seg_size = 32;
  const auto result = RunOnSim(idx, "pJASS", terms, params, 4);
  ASSERT_TRUE(result.ok());
  // p bounds the scanned postings up to in-flight segment slack.
  EXPECT_LE(result.stats.postings_processed,
            static_cast<std::uint64_t>(0.1 * static_cast<double>(total)) +
                4 * params.seg_size);
}

TEST(WorkerScalingTest, ResultsIndependentOfWorkerCount) {
  const auto idx = MakeTinyIndex(1500, /*seed=*/29);
  const auto terms = PickQueryTerms(idx, 6, /*salt=*/6);
  topk::SearchParams params;
  params.k = 15;
  params.seg_size = 64;
  for (const char* algo : {"Sparta", "pRA", "pBMW", "pJASS"}) {
    SCOPED_TRACE(algo);
    for (const int workers : {1, 2, 3, 6, 12}) {
      SCOPED_TRACE(workers);
      const auto result = RunOnSim(idx, algo, terms, params, workers);
      EXPECT_TRUE(IsExactTopK(idx, terms, params.k, result));
    }
  }
}

TEST(StatsTest, PostingCountsAreSane) {
  const auto idx = MakeTinyIndex(1500, /*seed=*/31);
  const auto terms = PickQueryTerms(idx, 4, /*salt=*/7);
  std::uint64_t total = 0;
  for (const TermId t : terms) total += idx.Entry(t).df;

  topk::SearchParams params;
  params.k = 10;
  for (const char* algo : {"Sparta", "pJASS", "pRA"}) {
    SCOPED_TRACE(algo);
    const auto result = RunOnSim(idx, algo, terms, params, 4);
    ASSERT_TRUE(result.ok());
    EXPECT_GT(result.stats.postings_processed, 0u);
    EXPECT_LE(result.stats.postings_processed, total);
  }
}

}  // namespace
}  // namespace sparta::test

// Sharded scatter-gather serving: shard-merge equivalence, honest
// partials under node crashes / partitions / stragglers, replica
// failover, hedging, per-replica breakers, and seeded replay.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "driver/bench_driver.h"
#include "index/sharding.h"
#include "obs/critical_path.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace_export.h"
#include "serve/coordinator.h"
#include "test_helpers.h"
#include "topk/oracle.h"
#include "topk/recall.h"

namespace sparta {
namespace {

using exec::VirtualTime;
using exec::kMillisecond;
using serve::Cluster;
using serve::ClusterConfig;
using serve::ClusterServeResult;
using serve::Coordinator;
using test::MakeTinyIndex;
using test::PickQueryTerms;

ClusterConfig BaseConfig(int shards, int nodes, int replication) {
  ClusterConfig cfg;
  cfg.num_shards = shards;
  cfg.num_nodes = nodes;
  cfg.replication = replication;
  cfg.node_sim.num_workers = 2;
  return cfg;
}

std::vector<std::vector<TermId>> MakeQueries(
    const index::InvertedIndex& idx, std::size_t n) {
  std::vector<std::vector<TermId>> queries;
  for (std::size_t i = 0; i < n; ++i) {
    queries.push_back(PickQueryTerms(idx, 3, /*salt=*/i * 17));
  }
  return queries;
}

/// Exact top-k of the corpus restricted to the shards in `alive`,
/// rebased to global ids — the honest answer a degraded cluster owes.
std::vector<topk::ResultEntry> ExactOverShards(
    const index::ShardedIndex& sharded, const std::vector<TermId>& terms,
    int k, const std::vector<bool>& alive) {
  std::vector<topk::ResultEntry> merged;
  for (int s = 0; s < sharded.num_shards(); ++s) {
    if (!alive[static_cast<std::size_t>(s)]) continue;
    const topk::ExactTopK exact = topk::ComputeExactTopK(
        *sharded.shards[static_cast<std::size_t>(s)], terms, k);
    for (const topk::ResultEntry& e : exact.topk) {
      merged.push_back({sharded.ToGlobal(s, e.doc), e.score});
    }
  }
  topk::CanonicalizeResult(merged);
  if (merged.size() > static_cast<std::size_t>(k)) {
    merged.resize(static_cast<std::size_t>(k));
  }
  return merged;
}

TEST(Sharding, ContiguousRangesAndRouting) {
  const index::InvertedIndex full = MakeTinyIndex(1000, 11, 300);
  const index::ShardedIndex sharded = index::ShardIndex(full, 3);
  ASSERT_EQ(sharded.num_shards(), 3);
  EXPECT_EQ(sharded.total_docs, full.num_docs());

  std::uint32_t docs = 0;
  double fraction = 0.0;
  for (const index::ShardInfo& info : sharded.infos) {
    EXPECT_EQ(info.doc_base, docs);  // contiguous, in order
    docs += info.num_docs;
    fraction += info.doc_fraction;
  }
  EXPECT_EQ(docs, full.num_docs());
  EXPECT_NEAR(fraction, 1.0, 1e-12);

  for (DocId d = 0; d < full.num_docs(); d += 97) {
    const int s = sharded.ShardOf(d);
    const index::ShardInfo& info = sharded.infos[static_cast<std::size_t>(s)];
    EXPECT_GE(d, info.doc_base);
    EXPECT_LT(d, info.doc_base + info.num_docs);
    EXPECT_EQ(sharded.ToGlobal(s, d - info.doc_base), d);
  }

  // Every shard posting carries the full-index score bit for bit.
  std::uint64_t postings = 0;
  for (TermId t = 0; t < full.num_terms(); ++t) {
    for (int s = 0; s < sharded.num_shards(); ++s) {
      const auto view =
          sharded.shards[static_cast<std::size_t>(s)]->Term(t);
      for (const index::Posting& p : view.doc_order) {
        ++postings;
        const DocId global = sharded.ToGlobal(s, p.doc);
        const auto full_view = full.Term(t);
        const auto it = std::lower_bound(
            full_view.doc_order.begin(), full_view.doc_order.end(), global,
            [](const index::Posting& fp, DocId doc) { return fp.doc < doc; });
        ASSERT_NE(it, full_view.doc_order.end());
        ASSERT_EQ(it->doc, global);
        EXPECT_EQ(it->score, p.score);
      }
    }
  }
  std::uint64_t full_postings = 0;
  for (TermId t = 0; t < full.num_terms(); ++t) {
    full_postings += full.Entry(t).df;
  }
  EXPECT_EQ(postings, full_postings);  // nothing lost, nothing invented
}

TEST(Cluster, HealthyScatterGatherMatchesFullIndex) {
  const index::InvertedIndex full = MakeTinyIndex();
  const index::ShardedIndex sharded = index::ShardIndex(full, 4);
  const ClusterConfig cfg = BaseConfig(4, 4, 1);
  Cluster cluster(sharded, cfg);
  const auto algo = algos::MakeAlgorithm("BMW");
  topk::SearchParams params;
  params.k = 20;

  const auto queries = MakeQueries(full, 5);
  const auto results =
      serve::SearchOnCluster(cluster, *algo, queries, params);
  ASSERT_EQ(results.size(), queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const topk::SearchResult& r = results[i];
    EXPECT_EQ(r.status, topk::ResultStatus::kComplete);
    EXPECT_EQ(r.stats.shards_answered, 4u);
    EXPECT_EQ(r.stats.shards_total, 4u);
    EXPECT_EQ(r.stats.shard_coverage, 1.0);
    // Scores survive sharding bit for bit, so the scatter-gather merge
    // must equal the unsharded machine's exact result entry-for-entry.
    const topk::SearchResult local =
        test::RunOnSim(full, "BMW", queries[i], params);
    EXPECT_EQ(r.entries, local.entries) << "query " << i;
  }
}

TEST(Cluster, KilledShardYieldsHonestPartialWithCoverage) {
  const index::InvertedIndex full = MakeTinyIndex();
  const index::ShardedIndex sharded = index::ShardIndex(full, 4);
  ClusterConfig cfg = BaseConfig(4, 4, 1);
  cfg.net_faults.crash_node = 1;  // hosts shard 1 (no replica)
  cfg.net_faults.crash_at = 1000;
  Cluster cluster(sharded, cfg);
  const auto algo = algos::MakeAlgorithm("BMW");
  Coordinator coord(cluster, *algo);
  topk::SearchParams params;
  params.k = 20;

  const auto queries = MakeQueries(full, 4);
  std::vector<VirtualTime> arrivals;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    arrivals.push_back(static_cast<VirtualTime>(i + 1) * 50 * kMillisecond);
  }
  const ClusterServeResult run = coord.Serve(queries, params, arrivals);

  // Zero failed queries: every offered query completed with an answer.
  EXPECT_EQ(run.offered, queries.size());
  EXPECT_EQ(run.admitted, queries.size());
  EXPECT_EQ(run.completed, queries.size());
  EXPECT_EQ(run.shards_degraded, queries.size());

  const double lost = sharded.infos[1].doc_fraction;
  std::vector<bool> alive = {true, false, true, true};
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const topk::SearchResult& r = run.queries[i].result;
    EXPECT_EQ(r.status, topk::ResultStatus::kShardsDegraded);
    EXPECT_EQ(r.stats.shards_answered, 3u);
    EXPECT_NEAR(r.stats.shard_coverage, 1.0 - lost, 1e-12);
    EXPECT_FALSE(r.entries.empty());
    // The partial is not merely nonempty — it is the exact top-k of the
    // surviving shards, so nothing reachable was left on the table.
    EXPECT_EQ(r.entries,
              ExactOverShards(sharded, queries[i], params.k, alive));
    for (const topk::ResultEntry& e : r.entries) {
      EXPECT_NE(cluster.sharded().ShardOf(e.doc), 1);
    }
  }
  EXPECT_NEAR(run.min_coverage, 1.0 - lost, 1e-12);
  EXPECT_GT(run.rpc_timeouts, 0u);
}

TEST(Cluster, ReplicaFailoverRestoresFullCoverage) {
  const index::InvertedIndex full = MakeTinyIndex();
  const index::ShardedIndex sharded = index::ShardIndex(full, 4);
  ClusterConfig cfg = BaseConfig(4, 4, 2);
  cfg.net_faults.crash_node = 0;  // shard 0 fails over to node 1
  cfg.net_faults.crash_at = 1000;
  cfg.breaker_enabled = false;  // isolate the retry path
  Cluster cluster(sharded, cfg);
  const auto algo = algos::MakeAlgorithm("BMW");
  Coordinator coord(cluster, *algo);
  topk::SearchParams params;
  params.k = 20;

  const auto queries = MakeQueries(full, 3);
  std::vector<VirtualTime> arrivals = {50 * kMillisecond,
                                       100 * kMillisecond,
                                       150 * kMillisecond};
  const ClusterServeResult run = coord.Serve(queries, params, arrivals);
  EXPECT_EQ(run.completed, queries.size());
  EXPECT_GT(run.retries, 0u);  // the dead primary cost one attempt
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const topk::SearchResult& r = run.queries[i].result;
    EXPECT_EQ(r.status, topk::ResultStatus::kComplete) << "query " << i;
    EXPECT_EQ(r.stats.shard_coverage, 1.0);
    const topk::SearchResult local =
        test::RunOnSim(full, "BMW", queries[i], params);
    EXPECT_EQ(r.entries, local.entries);
    // Failover happens within the retry budget: one shard deadline plus
    // the backoff plus the replica's service time.
    EXPECT_LT(run.queries[i].EndToEnd(),
              cfg.shard_deadline + cfg.retry_backoff + 10 * kMillisecond);
  }
}

TEST(Cluster, PartitionWindowDegradesThenHeals) {
  const index::InvertedIndex full = MakeTinyIndex();
  const index::ShardedIndex sharded = index::ShardIndex(full, 4);
  ClusterConfig cfg = BaseConfig(4, 4, 1);
  cfg.net_faults.partition_from = 40 * kMillisecond;
  cfg.net_faults.partition_until = 60 * kMillisecond;
  cfg.net_faults.partition_nodes = 1ull << 1;  // node 1 isolated
  Cluster cluster(sharded, cfg);
  const auto algo = algos::MakeAlgorithm("BMW");
  Coordinator coord(cluster, *algo);
  topk::SearchParams params;
  params.k = 20;

  const auto queries = MakeQueries(full, 2);
  // First query lands inside the window (both attempts dropped), the
  // second well after it heals.
  std::vector<VirtualTime> arrivals = {41 * kMillisecond,
                                       120 * kMillisecond};
  const ClusterServeResult run = coord.Serve(queries, params, arrivals);
  ASSERT_EQ(run.completed, 2u);

  const topk::SearchResult& during = run.queries[0].result;
  EXPECT_EQ(during.status, topk::ResultStatus::kShardsDegraded);
  EXPECT_EQ(during.stats.shards_answered, 3u);
  EXPECT_NEAR(during.stats.shard_coverage,
              1.0 - sharded.infos[1].doc_fraction, 1e-12);
  EXPECT_GT(run.net_drops, 0u);

  const topk::SearchResult& after = run.queries[1].result;
  EXPECT_EQ(after.status, topk::ResultStatus::kComplete);
  EXPECT_EQ(after.stats.shard_coverage, 1.0);
}

TEST(Cluster, HedgingCutsStragglerLatency) {
  const index::InvertedIndex full = MakeTinyIndex();
  const index::ShardedIndex sharded = index::ShardIndex(full, 4);
  ClusterConfig cfg = BaseConfig(4, 4, 2);
  // Node 0's inbound link is a straggler: 6 ms base latency, so shard
  // 0's primary replies land ~6 ms late while replicas are ~50 us away.
  cfg.fabric.overrides.push_back(
      {sim::kCoordinatorNode, 0, {6 * kMillisecond, 1.25}});
  Cluster slow(sharded, cfg);

  ClusterConfig hedged_cfg = cfg;
  hedged_cfg.hedge_delay = 2 * kMillisecond;
  Cluster hedged(sharded, hedged_cfg);

  const auto algo = algos::MakeAlgorithm("BMW");
  topk::SearchParams params;
  params.k = 20;
  const auto queries = MakeQueries(full, 3);
  std::vector<VirtualTime> arrivals = {50 * kMillisecond,
                                       100 * kMillisecond,
                                       150 * kMillisecond};

  Coordinator coord_slow(slow, *algo);
  const ClusterServeResult base = coord_slow.Serve(queries, params, arrivals);
  Coordinator coord_hedged(hedged, *algo);
  const ClusterServeResult fast =
      coord_hedged.Serve(queries, params, arrivals);

  ASSERT_EQ(base.completed, queries.size());
  ASSERT_EQ(fast.completed, queries.size());
  EXPECT_GT(fast.hedges_sent, 0u);
  EXPECT_GT(fast.hedges_won, 0u);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    // The hedge changes who answers, never what the answer is.
    EXPECT_EQ(base.queries[i].result.entries,
              fast.queries[i].result.entries);
    EXPECT_EQ(fast.queries[i].result.stats.shard_coverage, 1.0);
    EXPECT_LT(fast.queries[i].EndToEnd(), base.queries[i].EndToEnd());
  }
}

TEST(Cluster, BreakerFailsFastPastDeadReplica) {
  const index::InvertedIndex full = MakeTinyIndex();
  const index::ShardedIndex sharded = index::ShardIndex(full, 4);
  ClusterConfig cfg = BaseConfig(4, 4, 1);
  cfg.net_faults.crash_node = 2;
  cfg.net_faults.crash_at = 1000;
  cfg.breaker.failure_threshold = 3;
  cfg.breaker.window_ns = 500 * kMillisecond;
  cfg.breaker.open_ns = 10'000 * kMillisecond;  // stays open for the run
  Cluster cluster(sharded, cfg);
  const auto algo = algos::MakeAlgorithm("BMW");
  Coordinator coord(cluster, *algo);
  topk::SearchParams params;
  params.k = 10;

  const auto queries = MakeQueries(full, 6);
  std::vector<VirtualTime> arrivals;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    arrivals.push_back(static_cast<VirtualTime>(i + 1) * 50 * kMillisecond);
  }
  const ClusterServeResult run = coord.Serve(queries, params, arrivals);
  EXPECT_EQ(run.completed, queries.size());
  EXPECT_GE(run.breaker_trips, 1u);
  EXPECT_GT(run.breaker_skips, 0u);
  // Early queries pay timeouts learning node 2 is dead; once the
  // breaker opens, queries fail fast and only pay the retry backoff.
  EXPECT_GE(run.queries.front().EndToEnd(), 2 * cfg.shard_deadline);
  EXPECT_LT(run.queries.back().EndToEnd(), cfg.shard_deadline);
  EXPECT_EQ(run.queries.back().result.status,
            topk::ResultStatus::kShardsDegraded);
}

TEST(Cluster, HalfOpenProbesRaceFailoverWithoutLeakingSlots) {
  const index::InvertedIndex full = MakeTinyIndex();
  const index::ShardedIndex sharded = index::ShardIndex(full, 4);
  ClusterConfig cfg = BaseConfig(4, 4, 2);
  cfg.net_faults.crash_node = 0;
  cfg.net_faults.crash_at = 5 * kMillisecond;
  cfg.net_faults.restart_at = 200 * kMillisecond;
  cfg.breaker.failure_threshold = 2;
  cfg.breaker.window_ns = 200 * kMillisecond;
  cfg.breaker.open_ns = 30 * kMillisecond;
  cfg.breaker.probe_successes_to_close = 1;
  Cluster cluster(sharded, cfg);
  const auto algo = algos::MakeAlgorithm("BMW");
  Coordinator coord(cluster, *algo);
  topk::SearchParams params;
  params.k = 10;

  // Queries straddle the crash, the open window, several half-open
  // probes against the still-dead primary (each racing the failover
  // retry that answers the shard), the restart, and recovery.
  const auto queries = MakeQueries(full, 10);
  std::vector<VirtualTime> arrivals;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    arrivals.push_back(static_cast<VirtualTime>(i + 1) * 41 * kMillisecond);
  }
  const ClusterServeResult run = coord.Serve(queries, params, arrivals);

  // The probe slot never leaks (CircuitBreaker::Admit would have
  // crashed) and no query ever loses coverage: probes that time out
  // re-open the breaker while the replica still answers the shard.
  EXPECT_EQ(run.completed, queries.size());
  EXPECT_GE(run.breaker_trips, 2u);  // initial trip + failed probe
  EXPECT_GE(run.breaker_probes, 2u);
  for (const serve::ServedQuery& q : run.queries) {
    EXPECT_EQ(q.result.stats.shard_coverage, 1.0);
    EXPECT_NE(q.result.status, topk::ResultStatus::kShardsDegraded);
  }
  // After the restart the primary serves again (the closing probe).
  EXPECT_EQ(cluster.node(0).cold_restarts(), 1u);
  EXPECT_GT(cluster.node(0).served(), 0u);
}

TEST(Cluster, LateReplyAfterExhaustionStaysDropped) {
  // Regression: a shard resolved by retry exhaustion surrendered its
  // unresolved slot; a late reply for one of its timed-out attempts
  // must be dropped, not decrement the count a second time (which
  // finalized the query while another shard was still in flight and
  // silently dropped that shard's answer).
  const index::InvertedIndex full = MakeTinyIndex();
  const index::ShardedIndex sharded = index::ShardIndex(full, 2);
  ClusterConfig cfg = BaseConfig(2, 2, 1);
  // Shard 0 (node 0): the reply link is slower than the attempt
  // deadline, so every shard-0 reply arrives ~4 ms after its timeout.
  cfg.fabric.overrides.push_back(
      {0, sim::kCoordinatorNode, {14 * kMillisecond, 1.25}});
  // Shard 1 (node 1): replies land ~6 ms after dispatch — inside the
  // deadline, but after shard 0's late reply when sent from a retry.
  cfg.fabric.overrides.push_back(
      {1, sim::kCoordinatorNode, {6 * kMillisecond, 1.25}});
  // Query 0 trips shard 0's only breaker (two timed-out attempts);
  // query 1's half-open probe then re-trips it, so the retry is
  // refused and shard 0 exhausts while its probe reply is in flight.
  cfg.breaker.failure_threshold = 2;
  cfg.breaker.window_ns = 200 * kMillisecond;
  cfg.breaker.open_ns = 15 * kMillisecond;
  // Node 1 is down when query 1 scatters and back up for the retry,
  // so shard 1 is still unresolved when shard 0's late reply arrives.
  cfg.net_faults.crash_node = 1;
  cfg.net_faults.crash_at = 69 * kMillisecond;
  cfg.net_faults.restart_at = 78 * kMillisecond;
  Cluster cluster(sharded, cfg);
  const auto algo = algos::MakeAlgorithm("BMW");
  Coordinator coord(cluster, *algo);
  topk::SearchParams params;
  params.k = 10;

  const auto queries = MakeQueries(full, 2);
  std::vector<VirtualTime> arrivals = {30 * kMillisecond,
                                       70 * kMillisecond};
  const ClusterServeResult run = coord.Serve(queries, params, arrivals);
  ASSERT_EQ(run.completed, 2u);
  EXPECT_GE(run.breaker_trips, 2u);
  EXPECT_GT(run.breaker_skips, 0u);

  // Query 0: shard 0's first reply is late but lands while the shard
  // is still retrying — resurrection before exhaustion is legitimate.
  EXPECT_EQ(run.queries[0].result.status, topk::ResultStatus::kComplete);
  EXPECT_EQ(run.queries[0].result.stats.shard_coverage, 1.0);

  // Query 1: shard 0 exhausted (probe timed out, retry refused by the
  // re-opened breaker) before its late probe reply arrived. The honest
  // answer is shard 1 alone — the failover reply that lands *after*
  // the late shard-0 reply. Under the bug, the late reply finalized
  // the query early with only shard 0 and dropped shard 1's answer.
  const topk::SearchResult& r = run.queries[1].result;
  EXPECT_EQ(r.status, topk::ResultStatus::kShardsDegraded);
  EXPECT_EQ(r.stats.shards_answered, 1u);
  EXPECT_NEAR(r.stats.shard_coverage, sharded.infos[1].doc_fraction,
              1e-12);
  EXPECT_FALSE(r.entries.empty());
  for (const topk::ResultEntry& e : r.entries) {
    EXPECT_EQ(sharded.ShardOf(e.doc), 1) << "late shard-0 reply leaked";
  }
  EXPECT_EQ(r.entries, ExactOverShards(sharded, queries[1], params.k,
                                       {false, true}));
}

TEST(ClusterNode, CrashMidQueryReleasesPinsAndRestartsCold) {
  const index::InvertedIndex full = MakeTinyIndex();
  const index::ShardedIndex sharded = index::ShardIndex(full, 1);
  sim::NodeConfig nc;
  nc.id = 0;
  nc.sim.num_workers = 2;
  sim::Node node(nc);
  node.HostShard(0, sharded.shards[0]);
  node.ScheduleCrash(kMillisecond, 50 * kMillisecond);

  const auto algo = algos::MakeAlgorithm("BMW");
  topk::SearchParams params;
  params.k = 10;
  const auto terms = PickQueryTerms(full, 3);

  // Arrives 1 us before the crash; any real search runs past it.
  const sim::Node::ShardReply killed =
      node.Execute(0, *algo, terms, params, kMillisecond - 1000);
  EXPECT_FALSE(killed.responded);
  EXPECT_EQ(node.killed_in_flight(), 1u);
  // The dying process released its snapshot pin: epoch accounting is
  // balanced, so a publish over the crash window can reclaim.
  index::EpochManager& mgr = node.epoch_manager(0);
  EXPECT_EQ(mgr.pins(1), 0u);
  index::IndexSnapshot next;
  next.main = sharded.shards[0];
  next.delta_doc_base = next.main->num_docs();
  next.epoch = 2;
  mgr.Publish(next);
  EXPECT_EQ(mgr.retired(), 1u);
  EXPECT_EQ(mgr.Collect(), 1u);  // nothing leaked across the crash

  // Down window: no response at all.
  EXPECT_FALSE(node.Execute(0, *algo, terms, params, 10 * kMillisecond)
                   .responded);
  EXPECT_FALSE(node.up(10 * kMillisecond));

  // After restart: cold machine answers again, clocks past the restart.
  const sim::Node::ShardReply revived =
      node.Execute(0, *algo, terms, params, 60 * kMillisecond);
  EXPECT_TRUE(revived.responded);
  EXPECT_GE(revived.completed, 60 * kMillisecond);
  EXPECT_EQ(node.cold_restarts(), 1u);
  EXPECT_EQ(node.served(), 1u);
  EXPECT_EQ(mgr.pins(2), 0u);
}

/// Builds the seeded fault mix the CI fault matrix sweeps; the default
/// (no env) exercises the crash scenario so the test always bites.
ClusterConfig ScenarioConfig(const std::string& scenario) {
  ClusterConfig cfg = BaseConfig(4, 4, 2);
  cfg.net_faults.seed = 77;
  cfg.net_faults.net_delay_prob = 0.2;
  cfg.net_faults.net_delay_ns = 300'000;
  if (scenario == "partition") {
    cfg.net_faults.partition_from = 60 * kMillisecond;
    cfg.net_faults.partition_until = 140 * kMillisecond;
    cfg.net_faults.partition_nodes = 1ull << 2;
  } else if (scenario == "straggler") {
    ClusterConfig::NodeFaults straggler;
    straggler.node = 1;
    straggler.faults.seed = 31;
    straggler.faults.stall_prob = 0.5;
    straggler.faults.stall_ns = 4 * kMillisecond;
    cfg.node_faults.push_back(straggler);
    cfg.hedge_delay = 3 * kMillisecond;
  } else {  // "crash" (default)
    cfg.net_faults.crash_node = 0;
    cfg.net_faults.crash_at = 50 * kMillisecond;
    cfg.net_faults.restart_at = 250 * kMillisecond;
    cfg.net_faults.net_drop_prob = 0.05;
  }
  return cfg;
}

ClusterServeResult RunScenario(Cluster& cluster,
                               std::span<const std::vector<TermId>> queries) {
  const auto algo = algos::MakeAlgorithm("BMW");
  Coordinator coord(cluster, *algo);
  topk::SearchParams params;
  params.k = 10;
  std::vector<VirtualTime> arrivals;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    arrivals.push_back(static_cast<VirtualTime>(i + 1) * 30 * kMillisecond);
  }
  return coord.Serve(queries, params, arrivals);
}

TEST(Cluster, FaultMatrixScenarioIsSafeAndReplaysBitIdentically) {
  const char* env = std::getenv("SPARTA_FAULT_SCENARIO");
  const std::string scenario = env != nullptr ? env : "crash";
  const ClusterConfig cfg = ScenarioConfig(scenario);

  const index::InvertedIndex full = MakeTinyIndex();
  const index::ShardedIndex sharded = index::ShardIndex(full, 4);
  const auto queries = MakeQueries(full, 8);

  Cluster ca(sharded, cfg);
  const ClusterServeResult a = RunScenario(ca, queries);
  // Safety: whatever the scenario does, every query gets an answer with
  // honest labeling — no lost queries, coverage always reported.
  EXPECT_EQ(a.completed, a.admitted);
  EXPECT_EQ(a.admitted, queries.size());
  for (const serve::ServedQuery& q : a.queries) {
    EXPECT_GE(q.result.stats.shard_coverage, 0.0);
    EXPECT_LE(q.result.stats.shard_coverage, 1.0);
    if (q.result.status == topk::ResultStatus::kShardsDegraded) {
      EXPECT_LT(q.result.stats.shard_coverage, 1.0);
      EXPECT_LT(q.result.stats.shards_answered,
                q.result.stats.shards_total);
    }
  }

  // Replay: a fresh cluster under the same seeds reproduces the run bit
  // for bit — results, coverage, timings, and the injected fault log.
  Cluster cb(sharded, cfg);
  const ClusterServeResult b = RunScenario(cb, queries);
  ASSERT_EQ(a.queries.size(), b.queries.size());
  for (std::size_t i = 0; i < a.queries.size(); ++i) {
    EXPECT_EQ(a.queries[i].result.entries, b.queries[i].result.entries);
    EXPECT_EQ(a.queries[i].result.status, b.queries[i].result.status);
    EXPECT_EQ(a.queries[i].result.stats.shard_coverage,
              b.queries[i].result.stats.shard_coverage);
    EXPECT_EQ(a.queries[i].completion, b.queries[i].completion);
  }
  EXPECT_EQ(a.rpcs_sent, b.rpcs_sent);
  EXPECT_EQ(a.rpc_timeouts, b.rpc_timeouts);
  EXPECT_EQ(a.net_drops, b.net_drops);
  ASSERT_NE(ca.fault_injector(), nullptr);
  ASSERT_NE(cb.fault_injector(), nullptr);
  EXPECT_EQ(ca.fault_injector()->events(), cb.fault_injector()->events());
}

TEST(Cluster, MetricsAndTraceCarryClusterRun) {
  const index::InvertedIndex full = MakeTinyIndex();
  const index::ShardedIndex sharded = index::ShardIndex(full, 4);
  ClusterConfig cfg = BaseConfig(4, 4, 1);
  cfg.trace.enabled = true;
  cfg.net_faults.crash_node = 3;
  cfg.net_faults.crash_at = 1000;
  Cluster cluster(sharded, cfg);
  const auto algo = algos::MakeAlgorithm("BMW");
  Coordinator coord(cluster, *algo);
  topk::SearchParams params;
  params.k = 10;
  const auto queries = MakeQueries(full, 3);
  std::vector<VirtualTime> arrivals = {50 * kMillisecond,
                                       100 * kMillisecond,
                                       150 * kMillisecond};
  const ClusterServeResult run = coord.Serve(queries, params, arrivals);

  obs::MetricsRegistry reg;
  serve::AddClusterMetrics(run, reg);
  const obs::MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.counters.at("cluster.completed"),
            static_cast<std::uint64_t>(run.completed));
  EXPECT_EQ(snap.counters.at("cluster.rpcs.sent"), run.rpcs_sent);
  EXPECT_GT(snap.counters.at("cluster.shards_degraded"), 0u);

  obs::Tracer* tracer = cluster.tracer();
  ASSERT_NE(tracer, nullptr);
  // Node tracks carry one RPC span per answered request; the crash and
  // the per-attempt timeouts are visible as instants.
  EXPECT_EQ(tracer->CountSpans(obs::SpanKind::kShardRpc),
            run.rpcs_answered);
  EXPECT_EQ(tracer->CountInstants(obs::InstantKind::kNodeCrash), 1u);
  EXPECT_EQ(tracer->CountInstants(obs::InstantKind::kShardTimeout),
            run.rpc_timeouts);
  // The fault injector narrates the same crash.
  ASSERT_NE(cluster.fault_injector(), nullptr);
  bool logged_crash = false;
  for (const sim::FaultInjector::Event& e :
       cluster.fault_injector()->events()) {
    if (e.kind == sim::FaultInjector::Kind::kNodeCrash) logged_crash = true;
  }
  EXPECT_TRUE(logged_crash);
}

// ---------------------------------------------------------------------
// Observability plane: trace correlation, critical-path attribution,
// and the cluster flight recorder.
// ---------------------------------------------------------------------

/// Straggler + hedging cluster: node 0's inbound link is slow, hedges
/// race it — the richest span DAG (retries, hedges, multi-attempt
/// winners) for correlation and attribution tests.
ClusterConfig StragglerHedgedConfig() {
  ClusterConfig cfg = BaseConfig(4, 4, 2);
  cfg.fabric.overrides.push_back(
      {sim::kCoordinatorNode, 0, {6 * kMillisecond, 1.25}});
  cfg.hedge_delay = 2 * kMillisecond;
  cfg.trace.enabled = true;
  return cfg;
}

TEST(ClusterObs, ShardRpcParentsCorrelateWithServiceChildren) {
  const index::InvertedIndex full = MakeTinyIndex();
  const index::ShardedIndex sharded = index::ShardIndex(full, 4);
  Cluster cluster(sharded, StragglerHedgedConfig());
  const auto algo = algos::MakeAlgorithm("BMW");
  Coordinator coord(cluster, *algo);
  topk::SearchParams params;
  params.k = 20;
  const auto queries = MakeQueries(full, 3);
  std::vector<VirtualTime> arrivals = {50 * kMillisecond,
                                       100 * kMillisecond,
                                       150 * kMillisecond};
  const ClusterServeResult run = coord.Serve(queries, params, arrivals);
  ASSERT_EQ(run.completed, queries.size());
  EXPECT_GT(run.hedges_won, 0u);

  const obs::Tracer* tracer = cluster.tracer();
  ASSERT_NE(tracer, nullptr);
  // Every answered rpc span has exactly one service child on the same
  // track carrying the same (record, shard_attempt) payload, causally
  // nested inside its parent: dispatched after the send, replied
  // before the reply landed.
  std::uint64_t parents = 0;
  for (int t = 0; t < tracer->num_workers(); ++t) {
    std::vector<const obs::TraceEvent*> rpcs;
    std::vector<const obs::TraceEvent*> services;
    for (const obs::TraceEvent& e : tracer->track(t)) {
      if (e.is_instant) continue;
      if (e.span_kind() == obs::SpanKind::kShardRpc) rpcs.push_back(&e);
      if (e.span_kind() == obs::SpanKind::kShardService) {
        services.push_back(&e);
      }
    }
    ASSERT_EQ(rpcs.size(), services.size()) << "track " << t;
    for (const obs::TraceEvent* rpc : rpcs) {
      ++parents;
      std::size_t children = 0;
      for (const obs::TraceEvent* svc : services) {
        if (svc->a != rpc->a || svc->b != rpc->b) continue;
        ++children;
        EXPECT_GE(svc->begin, rpc->begin);  // sent before it arrived
        EXPECT_LE(svc->end, rpc->end);      // replied before it landed
        // The payload decodes to the shard this track's node hosts on
        // some replica, and the record names a real query.
        EXPECT_LT(rpc->a, run.queries.size());
        EXPECT_GE(obs::UnpackShard(svc->b), 0);
        EXPECT_LT(obs::UnpackShard(svc->b), 4);
      }
      EXPECT_EQ(children, 1u)
          << "rpc (a=" << rpc->a << " b=" << rpc->b << ") on track " << t;
    }
  }
  EXPECT_EQ(parents, run.rpcs_answered);

  // The correlation survives a Chrome-trace round trip: both span
  // names and the shared arg are in the export.
  const std::string json = obs::ExportChromeTrace(*tracer);
  EXPECT_NE(json.find("\"name\":\"shard.rpc\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"shard.service\""), std::string::npos);
  EXPECT_NE(json.find("\"shard_attempt\""), std::string::npos);
  EXPECT_NE(json.find("\"record\""), std::string::npos);
}

TEST(ClusterObs, CriticalPathReconcilesExactlyAgainstVirtualClock) {
  const index::InvertedIndex full = MakeTinyIndex();
  const index::ShardedIndex sharded = index::ShardIndex(full, 4);
  Cluster cluster(sharded, StragglerHedgedConfig());
  const auto algo = algos::MakeAlgorithm("BMW");
  Coordinator coord(cluster, *algo);
  topk::SearchParams params;
  params.k = 20;
  const auto queries = MakeQueries(full, 3);
  std::vector<VirtualTime> arrivals = {50 * kMillisecond,
                                       100 * kMillisecond,
                                       150 * kMillisecond};
  const ClusterServeResult run = coord.Serve(queries, params, arrivals);
  ASSERT_EQ(run.completed, queries.size());
  ASSERT_GT(run.hedges_won, 0u);

  ASSERT_NE(cluster.tracer(), nullptr);
  const auto paths =
      driver::ComputeClusterCriticalPaths(*cluster.tracer(), run);
  ASSERT_EQ(paths.size(), run.completed);
  bool hedge_won_path = false;
  for (const obs::CriticalPath& p : paths) {
    ASSERT_TRUE(p.found) << "record " << p.record;
    EXPECT_FALSE(p.timeout_bound);
    const serve::ServedQuery& q = run.queries[p.record];
    // The decomposition reconciles *exactly* against the measured
    // virtual latency — no slack, no double counting.
    EXPECT_EQ(p.Total(), q.completion - q.dispatch) << p.record;
    EXPECT_EQ(p.queue_wait, q.dispatch - q.arrival) << p.record;
    EXPECT_GE(p.retry_overhead, 0);
    EXPECT_GT(p.net_request, 0);  // the fabric is never free
    EXPECT_GT(p.service, 0);
    EXPECT_GT(p.net_response, 0);
    EXPECT_GE(p.merge, 0);
    EXPECT_GE(p.shard, 0);
    EXPECT_LT(p.shard, 4);
    EXPECT_GE(p.node, 0);
    EXPECT_LT(p.node, 4);
    if (p.attempt > 0) {
      hedge_won_path = true;
      // A hedge winner was sent hedge_delay after dispatch at the
      // earliest, and that wait is attributed as overhead.
      EXPECT_GE(p.retry_overhead, 2 * kMillisecond);
      EXPECT_EQ(p.shard, 0);  // the straggler shard
    }
  }
  // Hedges won, so some query's critical path ran through attempt 1.
  EXPECT_TRUE(hedge_won_path);

  // The driver rendering carries one row per attributed query.
  driver::Table table = driver::CriticalPathTable(paths, run);
  EXPECT_EQ(table.title(), "critical path");
  std::ostringstream os;
  table.Print(os);
  EXPECT_NE(os.str().find("service_ms"), std::string::npos);
}

TEST(ClusterObs, CriticalPathOfGivenUpShardIsTimeoutBound) {
  // Crash the only replica of shard 1: every query's last shard is
  // given up by retry exhaustion, so completion is set by a timeout,
  // not a reply — the decomposition must say so and still reconcile.
  const index::InvertedIndex full = MakeTinyIndex();
  const index::ShardedIndex sharded = index::ShardIndex(full, 4);
  ClusterConfig cfg = BaseConfig(4, 4, 1);
  cfg.trace.enabled = true;
  cfg.net_faults.crash_node = 1;
  cfg.net_faults.crash_at = 1000;
  Cluster cluster(sharded, cfg);
  const auto algo = algos::MakeAlgorithm("BMW");
  Coordinator coord(cluster, *algo);
  topk::SearchParams params;
  params.k = 20;
  const auto queries = MakeQueries(full, 3);
  std::vector<VirtualTime> arrivals = {50 * kMillisecond,
                                       100 * kMillisecond,
                                       150 * kMillisecond};
  const ClusterServeResult run = coord.Serve(queries, params, arrivals);
  ASSERT_EQ(run.completed, queries.size());
  EXPECT_EQ(run.shards_degraded, queries.size());

  const auto paths =
      driver::ComputeClusterCriticalPaths(*cluster.tracer(), run);
  ASSERT_EQ(paths.size(), run.completed);
  for (const obs::CriticalPath& p : paths) {
    ASSERT_TRUE(p.found);
    EXPECT_TRUE(p.timeout_bound) << "record " << p.record;
    const serve::ServedQuery& q = run.queries[p.record];
    // Exhaustion has no reply to decompose: the whole interval is
    // retry/timeout overhead, and it still reconciles exactly.
    EXPECT_EQ(p.Total(), q.completion - q.dispatch);
    EXPECT_EQ(p.retry_overhead, q.completion - q.dispatch);
    EXPECT_EQ(p.service, 0);
    EXPECT_EQ(p.shard, 1);  // the dead shard is named as the binder
  }
}

TEST(ClusterObs, FlightRecorderOffIsBitIdenticalAndOnIsDeterministic) {
  const index::InvertedIndex full = MakeTinyIndex();
  const index::ShardedIndex sharded = index::ShardIndex(full, 4);
  ClusterConfig cfg = BaseConfig(4, 4, 1);
  cfg.net_faults.crash_node = 3;
  cfg.net_faults.crash_at = 1000;
  const auto algo = algos::MakeAlgorithm("BMW");
  topk::SearchParams params;
  params.k = 10;
  const auto queries = MakeQueries(full, 3);
  std::vector<VirtualTime> arrivals = {50 * kMillisecond,
                                       100 * kMillisecond,
                                       150 * kMillisecond};

  const auto run_once = [&](Cluster& cluster) {
    Coordinator coord(cluster, *algo);
    return coord.Serve(queries, params, arrivals);
  };

  Cluster plain(sharded, cfg);
  const ClusterServeResult off = run_once(plain);
  EXPECT_EQ(off.anomalies, 0u);
  EXPECT_EQ(plain.flight_recorder(), nullptr);

  ClusterConfig on_cfg = cfg;
  on_cfg.flight.enabled = true;
  Cluster ca(sharded, on_cfg);
  const ClusterServeResult a = run_once(ca);
  Cluster cb(sharded, on_cfg);
  const ClusterServeResult b = run_once(cb);

  // Recorder-off bit-identity: coordinator-side recording charges no
  // virtual time, so the recorded run IS the unrecorded run.
  ASSERT_EQ(a.queries.size(), off.queries.size());
  for (std::size_t i = 0; i < off.queries.size(); ++i) {
    EXPECT_EQ(a.queries[i].result.entries, off.queries[i].result.entries);
    EXPECT_EQ(a.queries[i].completion, off.queries[i].completion);
    EXPECT_EQ(a.queries[i].dispatch, off.queries[i].dispatch);
  }

  // The crash and each degraded merge tripped the recorder.
  ASSERT_NE(ca.flight_recorder(), nullptr);
  EXPECT_EQ(a.anomalies, ca.flight_recorder()->anomalies());
  // One kNodeCrash + one kShardsDegraded per degraded query.
  EXPECT_EQ(a.anomalies,
            1u + static_cast<std::uint64_t>(a.shards_degraded));
  const auto& pms = ca.flight_recorder()->postmortems();
  ASSERT_FALSE(pms.empty());
  EXPECT_EQ(pms.front()->kind, obs::AnomalyKind::kNodeCrash);

  // Same seed, same bytes: every capture exports identically across
  // independent runs, and the operator rendering names the state.
  EXPECT_EQ(a.anomalies, b.anomalies);
  const auto& pms_b = cb.flight_recorder()->postmortems();
  ASSERT_EQ(pms.size(), pms_b.size());
  for (std::size_t i = 0; i < pms.size(); ++i) {
    EXPECT_EQ(obs::ExportPostmortem(*pms[i]),
              obs::ExportPostmortem(*pms_b[i]))
        << "postmortem " << i;
  }
  const std::string text = driver::RenderPostmortem(*pms.front());
  EXPECT_NE(text.find("node.crash"), std::string::npos);
  EXPECT_NE(text.find("node=3 reachable=0"), std::string::npos);
  EXPECT_NE(text.find("cluster.rpcs.sent"), std::string::npos);
}

}  // namespace
}  // namespace sparta

// Unit tests: text — tokenizer and vocabulary.
#include <cstdio>
#include <gtest/gtest.h>

#include "text/tokenizer.h"
#include "text/vocabulary.h"

namespace sparta::text {
namespace {

TEST(TokenizerTest, LowercasesAndSplits) {
  Tokenizer tok({.remove_stopwords = false});
  const auto tokens = tok.Tokenize("Hello, World!  FooBar42 baz");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0], "hello");
  EXPECT_EQ(tokens[1], "world");
  EXPECT_EQ(tokens[2], "foobar42");
  EXPECT_EQ(tokens[3], "baz");
}

TEST(TokenizerTest, RemovesStopwords) {
  Tokenizer tok;
  const auto tokens = tok.Tokenize("the quick brown fox and the lazy dog");
  for (const auto& t : tokens) {
    EXPECT_NE(t, "the");
    EXPECT_NE(t, "and");
  }
  EXPECT_EQ(tokens.size(), 5u);  // quick brown fox lazy dog
}

TEST(TokenizerTest, LengthFilters) {
  TokenizerOptions options;
  options.min_token_length = 3;
  options.max_token_length = 5;
  options.remove_stopwords = false;
  Tokenizer tok(options);
  const auto tokens = tok.Tokenize("a ab abc abcd abcde abcdef");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0], "abc");
  EXPECT_EQ(tokens[2], "abcde");
}

TEST(TokenizerTest, EmptyAndPunctuationOnly) {
  Tokenizer tok;
  EXPECT_TRUE(tok.Tokenize("").empty());
  EXPECT_TRUE(tok.Tokenize("!@# $%^ ...").empty());
}

TEST(TokenizerTest, QueryAndIndexTimeAgree) {
  Tokenizer tok;
  const auto a = tok.Tokenize("Scalable Top-K Retrieval");
  const auto b = tok.Tokenize("scalable top k retrieval");
  EXPECT_EQ(a, b);
}

TEST(VocabularyTest, InternAndLookup) {
  Vocabulary vocab;
  const TermId hello = vocab.GetOrAdd("hello");
  const TermId world = vocab.GetOrAdd("world");
  EXPECT_NE(hello, world);
  EXPECT_EQ(vocab.GetOrAdd("hello"), hello);
  EXPECT_EQ(vocab.size(), 2u);
  EXPECT_EQ(vocab.Lookup("world"), std::optional<TermId>(world));
  EXPECT_EQ(vocab.Lookup("missing"), std::nullopt);
  EXPECT_EQ(vocab.TermOf(hello), "hello");
}

TEST(VocabularyTest, DenseIds) {
  Vocabulary vocab;
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(vocab.GetOrAdd("term" + std::to_string(i)),
              static_cast<TermId>(i));
  }
}

TEST(VocabularyTest, FileRoundTrip) {
  Vocabulary vocab;
  vocab.GetOrAdd("alpha");
  vocab.GetOrAdd("beta");
  vocab.GetOrAdd("gamma");
  const std::string path = "/tmp/sparta_vocab_test.vocab";
  ASSERT_TRUE(vocab.SaveToFile(path));
  const auto loaded = Vocabulary::LoadFromFile(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->size(), 3u);
  // Ids are preserved by line order.
  EXPECT_EQ(loaded->Lookup("alpha"), std::optional<TermId>(0));
  EXPECT_EQ(loaded->Lookup("gamma"), std::optional<TermId>(2));
  std::remove(path.c_str());
}

TEST(VocabularyTest, LoadMissingFileFails) {
  EXPECT_FALSE(
      Vocabulary::LoadFromFile("/tmp/definitely_missing.vocab").has_value());
}

}  // namespace
}  // namespace sparta::text

// Differential equivalence suite (DESIGN.md §14): proves the
// contention-minimal features — private per-worker accumulators and
// NUMA-aware placement — changed nothing but speed.
//
//   * Feature-matrix sweep: {accumulators on/off} × {NUMA domains 1/2}
//     × {1,2,4,8 workers} × seeds × cost models, asserting the exact
//     top-k is bit-equal to the oracle and identical across every
//     combination.
//   * Repeat-run determinism: a feature-on run replays bit-identically
//     (entries, latency, exported trace).
//   * Metrics reconciliation: the profiler's lock-wait total matches
//     the tracer's lock.wait spans with features on, and accumulators
//     strictly reduce docMap stripe-lock traffic.
//   * Merge-under-pressure: deadline expiry, mid-query memory squeezes
//     and lock-holder preemption racing the phase-boundary merge yield
//     honestly-labeled partials, never crashes or silent score loss.
//   * FoldInWorkerOrder regression: floating-point merge folds are
//     bit-stable under arbitrary arrival order only because the fold
//     canonicalizes to (worker, term) order first.
#include <algorithm>
#include <random>
#include <string>
#include <vector>

#include "obs/profiler.h"
#include "obs/trace.h"
#include "obs/trace_export.h"
#include "test_helpers.h"
#include "topk/local_accumulator.h"

namespace sparta::test {
namespace {

/// One point of the feature matrix.
struct FeatureCombo {
  bool accumulators;
  int numa_domains;
  bool address_independent_costs;
};

sim::SimConfig ComboConfig(int workers, const FeatureCombo& combo) {
  sim::SimConfig config;
  config.num_workers = workers;
  config.costs.numa_domains = combo.numa_domains;
  if (combo.address_independent_costs) {
    // The second cost model of the sweep: coherence misses priced like
    // hits, which removes allocator-layout jitter and doubles as a
    // "different machine" point.
    config.costs.coherence_miss = config.costs.l1_hit;
    config.costs.remote_coherence_miss = config.costs.l1_hit;
  }
  return config;
}

std::string AlgoName(std::string_view base, bool accumulators) {
  return std::string(base) + (accumulators ? "+acc" : "");
}

std::string ComboLabel(std::string_view base, int workers,
                       const FeatureCombo& combo, std::uint64_t seed) {
  return AlgoName(base, combo.accumulators) + " w" +
         std::to_string(workers) + " numa" +
         std::to_string(combo.numa_domains) +
         (combo.address_independent_costs ? " flatcosts" : "") + " seed" +
         std::to_string(seed);
}

constexpr std::uint64_t kSeeds[] = {11, 22, 33, 44, 55};

const std::vector<FeatureCombo>& AllCombos() {
  static const std::vector<FeatureCombo> combos = [] {
    std::vector<FeatureCombo> v;
    for (const bool acc : {false, true}) {
      for (const int numa : {1, 2}) {
        for (const bool flat : {false, true}) {
          v.push_back({acc, numa, flat});
        }
      }
    }
    return v;
  }();
  return combos;
}

// ---------------------------------------------------------------------
// Feature-matrix sweep: bit-equal top-k everywhere
// ---------------------------------------------------------------------

/// Runs the full matrix for one algorithm family and asserts every
/// combination returns the exact oracle top-k, entry-for-entry equal to
/// every other combination.
void SweepFamily(std::string_view base) {
  for (const std::uint64_t seed : kSeeds) {
    const auto idx = MakeTinyIndex(/*num_docs=*/1500, seed);
    const auto terms = PickQueryTerms(idx, 4, seed);
    topk::SearchParams params;
    params.k = 50;
    params.delta = exec::kNever;  // exact mode: the oracle comparison
    std::vector<topk::ResultEntry> baseline;
    std::string baseline_label;
    for (const int workers : {1, 2, 4, 8}) {
      for (const FeatureCombo& combo : AllCombos()) {
        const std::string label = ComboLabel(base, workers, combo, seed);
        const auto result =
            RunOnSim(idx, AlgoName(base, combo.accumulators), terms,
                     params, ComboConfig(workers, combo));
        ASSERT_TRUE(IsExactTopK(idx, terms, params.k, result)) << label;
        if (baseline.empty()) {
          baseline = result.entries;
          baseline_label = label;
          ASSERT_FALSE(baseline.empty()) << label;
        } else {
          EXPECT_EQ(result.entries, baseline)
              << label << " diverged from " << baseline_label;
        }
      }
    }
  }
}

TEST(DifferentialEquivalenceTest, SpartaTopKBitEqualAcrossMatrix) {
  SweepFamily("Sparta");
}

TEST(DifferentialEquivalenceTest, RaTopKBitEqualAcrossMatrix) {
  SweepFamily("pRA");
}

// Work metrics the features must not change: both modes traverse
// posting lists in the same segments, and pRA's random-access count is
// one fan-out per first-encountered document either way.
TEST(DifferentialEquivalenceTest, RaRandomAccessCountUnchanged) {
  const auto idx = MakeTinyIndex(1500, 22);
  const auto terms = PickQueryTerms(idx, 4, 22);
  topk::SearchParams params;
  params.k = 50;
  for (const int workers : {1, 4}) {
    const auto plain = RunOnSim(idx, "pRA", terms, params,
                                ComboConfig(workers, {false, 1, false}));
    const auto acc = RunOnSim(idx, "pRA+acc", terms, params,
                              ComboConfig(workers, {true, 1, false}));
    // Identical stopping work at w1 (single worker: same schedule).
    if (workers == 1) {
      EXPECT_EQ(plain.stats.random_accesses, acc.stats.random_accesses);
      EXPECT_EQ(plain.stats.postings_processed,
                acc.stats.postings_processed);
    }
    EXPECT_GT(acc.stats.random_accesses, 0u);
  }
}

// ---------------------------------------------------------------------
// Repeat-run determinism with every feature on
// ---------------------------------------------------------------------

struct TracedRun {
  topk::SearchResult result;
  exec::VirtualTime latency = 0;
  std::string trace_json;
};

TracedRun RunFeaturesOnTraced(const index::InvertedIndex& idx,
                              std::string_view algo_name,
                              const std::vector<TermId>& terms) {
  topk::SearchParams params;
  params.k = 50;
  params.trace.enabled = true;
  sim::SimConfig config = ComboConfig(4, {true, 2, true});
  config.trace.enabled = true;
  const auto algo = algos::MakeAlgorithm(algo_name);
  SPARTA_CHECK(algo != nullptr);
  sim::SimExecutor executor(config);
  auto ctx = executor.CreateQuery();
  TracedRun run;
  run.result = algo->Run(idx, terms, params, *ctx);
  run.latency = ctx->end_time() - ctx->start_time();
  run.trace_json = obs::ExportChromeTrace(*executor.tracer());
  return run;
}

TEST(DifferentialEquivalenceTest, FeaturesOnRunsReplayBitIdentically) {
  const auto idx = MakeTinyIndex(1500, 33);
  const auto terms = PickQueryTerms(idx, 4, 33);
  for (const char* algo : {"Sparta+acc", "pRA+acc"}) {
    const TracedRun a = RunFeaturesOnTraced(idx, algo, terms);
    const TracedRun b = RunFeaturesOnTraced(idx, algo, terms);
    EXPECT_EQ(a.result.entries, b.result.entries) << algo;
    EXPECT_EQ(a.latency, b.latency) << algo;
    EXPECT_EQ(a.trace_json, b.trace_json) << algo;  // byte-identical
  }
}

// ---------------------------------------------------------------------
// Metrics reconciliation
// ---------------------------------------------------------------------

const obs::ContentionStructureRow* RowOf(const obs::ContentionReport& r,
                                         const std::string& name) {
  for (const auto& s : r.structures) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

struct ProfiledContention {
  topk::SearchResult result;
  obs::ContentionReport report;
  exec::VirtualTime total_lock_wait_ns = 0;
  exec::VirtualTime traced_lock_wait_ns = 0;
};

ProfiledContention RunContention(const index::InvertedIndex& idx,
                                 std::string_view algo_name,
                                 const std::vector<TermId>& terms,
                                 int workers, int numa_domains) {
  topk::SearchParams params;
  params.k = 50;
  params.trace.enabled = true;
  sim::SimConfig config;
  config.num_workers = workers;
  config.costs.numa_domains = numa_domains;
  config.profile.contention = true;
  config.trace.enabled = true;
  const auto algo = algos::MakeAlgorithm(algo_name);
  SPARTA_CHECK(algo != nullptr);
  sim::SimExecutor executor(config);
  auto ctx = executor.CreateQuery();
  ProfiledContention out;
  out.result = algo->Run(idx, terms, params, *ctx);
  out.report = executor.profiler()->ContentionSnapshot();
  out.total_lock_wait_ns = executor.profiler()->total_lock_wait_ns();
  for (int t = 0; t < executor.tracer()->num_tracks(); ++t) {
    for (const obs::TraceEvent& e : executor.tracer()->track(t)) {
      if (!e.is_instant && e.span_kind() == obs::SpanKind::kLockWait) {
        out.traced_lock_wait_ns += e.end - e.begin;
      }
    }
  }
  return out;
}

// The two instruments reconcile with the new features on, and the
// report's own totals are internally consistent.
TEST(DifferentialEquivalenceTest, FeatureOnMetricsReconcile) {
  const auto idx = MakeTinyIndex(1500, 44);
  const auto terms = PickQueryTerms(idx, 6, 44);
  const auto run = RunContention(idx, "Sparta+acc", terms, 8, 2);
  EXPECT_EQ(run.total_lock_wait_ns, run.traced_lock_wait_ns);
  exec::VirtualTime structure_wait = 0;
  std::uint64_t structure_misses = 0;
  for (const auto& row : run.report.structures) {
    structure_wait += row.lock_wait_ns;
    structure_misses += row.misses();
    // The local/remote split never exceeds the misses it splits.
    EXPECT_LE(row.remote_misses, row.misses()) << row.name;
  }
  EXPECT_EQ(structure_wait, run.report.total_lock_wait_ns);
  EXPECT_EQ(structure_misses, run.report.total_misses);
}

// The headline mechanism: batched phase-boundary merges take the docMap
// stripe locks orders of magnitude less often than per-posting access.
TEST(DifferentialEquivalenceTest, AccumulatorsReduceStripeLockTraffic) {
  const auto idx = MakeTinyIndex(2000, 55);
  const auto terms = PickQueryTerms(idx, 6, 55);
  const auto plain = RunContention(idx, "Sparta", terms, 8, 1);
  const auto acc = RunContention(idx, "Sparta+acc", terms, 8, 1);
  const auto* plain_row = RowOf(plain.report, "docMap.stripe");
  const auto* acc_row = RowOf(acc.report, "docMap.stripe");
  ASSERT_NE(plain_row, nullptr);
  ASSERT_NE(acc_row, nullptr);
  EXPECT_LT(acc_row->lock_acquires, plain_row->lock_acquires);
  EXPECT_LT(acc_row->lock_wait_ns, plain_row->lock_wait_ns);
  // Same answer, cheaper synchronization.
  EXPECT_EQ(plain.result.entries, acc.result.entries);
}

// On a two-domain machine, id-based stripe homes split misses into
// local and remote; the single-domain run must report zero remote.
TEST(DifferentialEquivalenceTest, RemoteMissSplitOnlyWithTopology) {
  const auto idx = MakeTinyIndex(1500, 11);
  const auto terms = PickQueryTerms(idx, 6, 11);
  const auto one = RunContention(idx, "Sparta", terms, 8, 1);
  const auto two = RunContention(idx, "Sparta", terms, 8, 2);
  std::uint64_t one_remote = 0, two_remote = 0;
  for (const auto& row : one.report.structures) {
    one_remote += row.remote_misses;
  }
  for (const auto& row : two.report.structures) {
    two_remote += row.remote_misses;
  }
  EXPECT_EQ(one_remote, 0u);
  EXPECT_GT(two_remote, 0u);
  EXPECT_EQ(one.result.entries, two.result.entries);
}

// ---------------------------------------------------------------------
// Merge under pressure: honest partials, no silent loss
// ---------------------------------------------------------------------

topk::SearchResult RunPressure(const index::InvertedIndex& idx,
                               std::string_view algo_name,
                               const std::vector<TermId>& terms,
                               const topk::SearchParams& params,
                               const sim::SimConfig& config) {
  const auto algo = algos::MakeAlgorithm(algo_name);
  SPARTA_CHECK(algo != nullptr);
  sim::SimExecutor executor(config);
  auto ctx = executor.CreateQuery();
  return algo->Run(idx, terms, params, *ctx);
}

// A deadline that expires mid-run: the buffered scores drain at the
// wind-down merge and the result is labeled kDeadlineDegraded with a
// usable best-so-far heap.
TEST(MergeUnderPressureTest, DeadlineExpiryYieldsHonestPartial) {
  const auto idx = MakeTinyIndex(2000, 11);
  const auto terms = PickQueryTerms(idx, 6, 11);
  topk::SearchParams params;
  params.k = 50;
  sim::SimConfig config = ComboConfig(4, {true, 2, false});
  const auto free_run = RunPressure(idx, "Sparta+acc", terms, params,
                                    config);
  ASSERT_TRUE(free_run.ok());
  ASSERT_GT(free_run.stats.latency, 0);

  topk::SearchParams tight = params;
  tight.deadline = free_run.stats.latency / 8;
  for (const char* algo : {"Sparta+acc", "pRA+acc"}) {
    const auto result = RunPressure(idx, algo, terms, tight, config);
    EXPECT_EQ(result.status, topk::ResultStatus::kDeadlineDegraded)
        << algo;
    EXPECT_FALSE(result.entries.empty()) << algo;
    EXPECT_LE(result.entries.size(), static_cast<std::size_t>(params.k))
        << algo;
  }
}

// A mid-query memory squeeze (co-tenant ballooning) racing the merge:
// accumulator charges and merge-time inserts both hit the shrunken
// budget; the result is a kOom partial, never a crash or empty lie.
TEST(MergeUnderPressureTest, MemorySqueezeYieldsHonestOomPartial) {
  const auto idx = MakeTinyIndex(4000, 22);
  const auto terms = PickQueryTerms(idx, 8, 22);
  topk::SearchParams params;
  params.k = 50;
  sim::SimConfig config = ComboConfig(4, {true, 2, false});
  for (const char* algo : {"Sparta+acc", "pRA+acc"}) {
    const auto free_run = RunPressure(idx, algo, terms, params, config);
    ASSERT_TRUE(free_run.ok()) << algo;

    sim::SimConfig squeezed = config;
    squeezed.faults.mem_squeeze_after = free_run.stats.latency / 3;
    squeezed.faults.mem_squeeze_factor = 0.0;
    const auto result = RunPressure(idx, algo, terms, params, squeezed);
    EXPECT_EQ(result.status, topk::ResultStatus::kOom) << algo;
    // Everything merged before the squeeze stays: the partial heap is
    // harvested, not discarded.
    EXPECT_FALSE(result.entries.empty()) << algo;
  }
}

// Lock-holder preemption stretching stripe-lock hold times while merges
// contend for them: slower, but bit-equal to the pressure-free answer
// (preemption delays releases; it never corrupts the protocol).
TEST(MergeUnderPressureTest, LockPreemptionChangesNothingButTime) {
  const auto idx = MakeTinyIndex(1500, 33);
  const auto terms = PickQueryTerms(idx, 4, 33);
  topk::SearchParams params;
  params.k = 50;
  sim::SimConfig config = ComboConfig(8, {true, 2, false});
  const auto calm = RunPressure(idx, "Sparta+acc", terms, params, config);
  ASSERT_TRUE(calm.ok());

  sim::SimConfig stormy = config;
  stormy.faults.lock_preempt_prob = 0.2;
  const auto result = RunPressure(idx, "Sparta+acc", terms, params,
                                  stormy);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(IsExactTopK(idx, terms, params.k, result));
  EXPECT_EQ(result.entries, calm.entries);
}

// ---------------------------------------------------------------------
// FoldInWorkerOrder: the fp-order regression (satellite of DESIGN.md §14)
// ---------------------------------------------------------------------

// Floating-point addition is not associative: summing the same
// contributions in arrival order produces bit-different totals under
// different schedules. The canonical (worker, term) fold is
// permutation-invariant — this is what makes phase-boundary merges
// bit-equal to the oracle for any value type, not just integers.
TEST(FoldInWorkerOrderTest, DoubleFoldIsArrivalOrderInvariant) {
  using topk::Contribution;
  std::mt19937_64 rng(4242);
  std::uniform_real_distribution<double> dist(1e-9, 1e9);
  std::vector<Contribution<double>> base;
  for (int worker = 0; worker < 8; ++worker) {
    for (int term = 0; term < 6; ++term) {
      base.push_back({worker, term, dist(rng)});
    }
  }

  auto canonical = base;
  const double want =
      topk::FoldInWorkerOrder<double>(std::span(canonical));

  bool naive_diverged = false;
  for (int shuffle = 0; shuffle < 32; ++shuffle) {
    auto arrival = base;
    std::shuffle(arrival.begin(), arrival.end(), rng);
    // The failure mode the fold exists to kill: arrival-order summation.
    double naive = 0.0;
    for (const auto& c : arrival) naive += c.value;
    if (naive != want) naive_diverged = true;
    // The canonical fold is bit-stable under the same permutations.
    EXPECT_EQ(topk::FoldInWorkerOrder<double>(std::span(arrival)), want)
        << "shuffle " << shuffle;
  }
  EXPECT_TRUE(naive_diverged)
      << "arrival-order sums never diverged; the regression is inert";
}

// Integer folds are order-insensitive either way, but must go through
// the same canonical path so the merge has one code shape.
TEST(FoldInWorkerOrderTest, IntegerFoldMatchesPlainSum) {
  using topk::Contribution;
  std::vector<Contribution<Score>> contributions;
  Score plain = 0;
  for (int i = 0; i < 100; ++i) {
    const Score v = (i * 7919) % 1000;
    contributions.push_back({i % 8, i % 5, v});
    plain += v;
  }
  std::mt19937_64 rng(7);
  std::shuffle(contributions.begin(), contributions.end(), rng);
  EXPECT_EQ(topk::FoldInWorkerOrder<Score>(std::span(contributions)),
            plain);
}

}  // namespace
}  // namespace sparta::test

// Stress tests on real threads: the production execution path of every
// parallel algorithm, run repeatedly with contention-friendly settings.
// (Timing-based assertions are avoided — only correctness is checked;
// the host may have any number of cores.)
#include <gtest/gtest.h>

#include "test_helpers.h"

namespace sparta::test {
namespace {

class ThreadedStressTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ThreadedStressTest, RepeatedExactRunsAreCorrect) {
  const auto idx = MakeTinyIndex(2000, 83);
  topk::SearchParams params;
  params.k = 25;
  params.seg_size = 16;  // tiny segments maximize interleaving
  for (int round = 0; round < 5; ++round) {
    const auto terms = PickQueryTerms(idx, 6, static_cast<std::uint64_t>(round));
    const auto result =
        RunOnThreads(idx, GetParam(), terms, params, 8);
    EXPECT_TRUE(IsExactTopK(idx, terms, params.k, result))
        << "round " << round;
  }
}

INSTANTIATE_TEST_SUITE_P(Algorithms, ThreadedStressTest,
                         ::testing::Values("Sparta", "pNRA", "pRA",
                                           "pJASS", "pBMW"),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (auto& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

TEST(ThreadedStressTest, SpartaApproximateUnderRealTime) {
  // Δ-based stopping with the real clock: just verify termination and a
  // sane result (recall depends on machine speed).
  const auto idx = MakeTinyIndex(3000, 89);
  const auto terms = PickQueryTerms(idx, 8, 3);
  topk::SearchParams params;
  params.k = 20;
  params.delta = 5 * exec::kMillisecond;  // generous for real time
  const auto result = RunOnThreads(idx, "Sparta", terms, params, 4);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.entries.size(), 20u);
  const auto exact = topk::ComputeExactTopK(idx, terms, params.k);
  EXPECT_GE(topk::Recall(exact, result.entries), 0.5);
}

TEST(ThreadedStressTest, ManyQueriesBackToBack) {
  const auto idx = MakeTinyIndex(1200, 97);
  exec::ThreadedExecutor executor({.num_workers = 6, .trace = {}});
  const auto algo = algos::MakeAlgorithm("Sparta");
  topk::SearchParams params;
  params.k = 10;
  for (int i = 0; i < 20; ++i) {
    const auto terms = PickQueryTerms(idx, 4, static_cast<std::uint64_t>(i));
    auto ctx = executor.CreateQuery();
    const auto result = algo->Run(idx, terms, params, *ctx);
    EXPECT_TRUE(IsExactTopK(idx, terms, params.k, result)) << i;
  }
}

class ThreadedDeadlineTest : public ::testing::TestWithParam<const char*> {
};

TEST_P(ThreadedDeadlineTest, ExpiredDeadlineCancelsWithHonestStatus) {
  // A deadline of 0 ns relative to query start is expired by the time
  // any job polls, so every algorithm must take the anytime path and
  // return kDeadlineDegraded — deterministically, even on real threads.
  const auto idx = MakeTinyIndex(2000, 103);
  const auto terms = PickQueryTerms(idx, 6, 2);
  topk::SearchParams params;
  params.k = 20;
  params.deadline = 0;
  for (int round = 0; round < 3; ++round) {
    const auto result = RunOnThreads(idx, GetParam(), terms, params, 8);
    EXPECT_EQ(result.status, topk::ResultStatus::kDeadlineDegraded)
        << "round " << round;
    EXPECT_TRUE(result.degraded()) << "round " << round;
  }
}

TEST_P(ThreadedDeadlineTest, GenerousDeadlineStaysCompleteAndExact) {
  const auto idx = MakeTinyIndex(2000, 103);
  const auto terms = PickQueryTerms(idx, 6, 2);
  topk::SearchParams params;
  params.k = 20;
  params.deadline = 60'000 * exec::kMillisecond;  // never fires here
  const auto result = RunOnThreads(idx, GetParam(), terms, params, 8);
  EXPECT_EQ(result.status, topk::ResultStatus::kComplete);
  if (std::string_view(GetParam()) != "sNRA") {
    EXPECT_TRUE(IsExactTopK(idx, terms, params.k, result));
  }
}

INSTANTIATE_TEST_SUITE_P(Algorithms, ThreadedDeadlineTest,
                         ::testing::Values("Sparta", "pNRA", "sNRA", "pRA",
                                           "pJASS", "pBMW"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

TEST(ThreadedStressTest, SNraShardsAreIndependent) {
  const auto idx = MakeTinyIndex(2400, 101);
  const auto terms = PickQueryTerms(idx, 6, 5);
  topk::SearchParams params;
  params.k = 30;
  const auto result = RunOnThreads(idx, "sNRA", terms, params, 8);
  ASSERT_TRUE(result.ok());
  const auto exact = topk::ComputeExactTopK(idx, terms, params.k);
  EXPECT_GE(topk::Recall(exact, result.entries), 0.9);
}

}  // namespace
}  // namespace sparta::test

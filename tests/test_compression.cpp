// Unit tests: posting-list compression codec.
#include <gtest/gtest.h>

#include "core/sparta.h"
#include "index/compression.h"
#include "test_helpers.h"

namespace sparta::index {
namespace {

TEST(VarintTest, RoundTrip) {
  std::vector<std::uint8_t> buf;
  const std::uint64_t values[] = {0,    1,    127,        128,
                                  300,  1u << 14,  1u << 21,
                                  0xFFFFFFFFull, 0xFFFFFFFFFFFFFFFFull};
  for (const auto v : values) PutVarint(buf, v);
  const std::uint8_t* p = buf.data();
  const std::uint8_t* end = p + buf.size();
  for (const auto expected : values) {
    std::uint64_t v = 0;
    p = GetVarint(p, end, v);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(v, expected);
  }
  EXPECT_EQ(p, end);
}

TEST(VarintTest, TruncatedInputFails) {
  std::vector<std::uint8_t> buf;
  PutVarint(buf, 1u << 21);
  std::uint64_t v = 0;
  EXPECT_EQ(GetVarint(buf.data(), buf.data() + 1, v), nullptr);
}

class CodecRoundTripTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CodecRoundTripTest, BothOrdersOnRealLists) {
  const auto idx = test::MakeTinyIndex(1000, GetParam());
  for (TermId t = 0; t < idx.num_terms(); t += 7) {
    const auto view = idx.Term(t);
    if (view.df() == 0) continue;

    const auto doc_blob = CompressDocOrder(view.doc_order);
    std::vector<Posting> doc_out;
    ASSERT_TRUE(DecompressDocOrder(doc_blob, doc_out));
    ASSERT_EQ(doc_out.size(), view.doc_order.size());
    for (std::size_t i = 0; i < doc_out.size(); ++i) {
      EXPECT_EQ(doc_out[i], view.doc_order[i]);
    }

    const auto impact_blob = CompressImpactOrder(view.impact_order);
    std::vector<Posting> impact_out;
    ASSERT_TRUE(DecompressImpactOrder(impact_blob, impact_out));
    ASSERT_EQ(impact_out.size(), view.impact_order.size());
    for (std::size_t i = 0; i < impact_out.size(); ++i) {
      EXPECT_EQ(impact_out[i], view.impact_order[i]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecRoundTripTest,
                         ::testing::Values(3u, 17u, 91u));

TEST(CodecTest, EmptyList) {
  std::vector<Posting> out;
  EXPECT_TRUE(DecompressDocOrder(CompressDocOrder({}), out));
  EXPECT_TRUE(out.empty());
}

TEST(CodecTest, GarbageRejected) {
  const std::vector<std::uint8_t> garbage{0xFF, 0xFF, 0xFF};
  std::vector<Posting> out;
  EXPECT_FALSE(DecompressDocOrder(garbage, out));
}

TEST(CodecTest, CompressesRealIndexes) {
  const auto idx = test::MakeTinyIndex(2000, 29);
  const auto report = MeasureIndexCompression(idx);
  EXPECT_GT(report.raw_bytes, 0u);
  // Delta+varint must beat the 8-byte raw postings comfortably on the
  // doc-ordered side (small gaps) and at least modestly on impacts.
  EXPECT_LT(report.DocOrderRatio(), 0.75);
  EXPECT_LT(report.ImpactOrderRatio(), 1.0);
}

TEST(ProbabilisticSpartaTest, GammaTradesWorkForRecall) {
  const auto idx = test::MakeTinyIndex(4000, 31);
  const auto terms = test::PickQueryTerms(idx, 8, 3);
  topk::SearchParams params;
  params.k = 50;

  ::sparta::core::SpartaOptions safe;
  ::sparta::core::SpartaOptions aggressive;
  aggressive.prob_factor = 0.5;

  sim::SimConfig config;
  config.num_workers = 8;
  const auto run = [&](const ::sparta::core::SpartaOptions& options) {
    const ::sparta::core::Sparta algo(options);
    sim::SimExecutor executor(config);
    auto ctx = executor.CreateQuery();
    return algo.Run(idx, terms, params, *ctx);
  };
  const auto exact = run(safe);
  const auto pruned = run(aggressive);
  ASSERT_TRUE(exact.ok());
  ASSERT_TRUE(pruned.ok());
  const auto oracle = topk::ComputeExactTopK(idx, terms, params.k);
  EXPECT_DOUBLE_EQ(topk::Recall(oracle, exact.entries), 1.0);
  EXPECT_LE(pruned.stats.postings_processed,
            exact.stats.postings_processed);
  EXPECT_GE(topk::Recall(oracle, pruned.entries), 0.5);
}

}  // namespace
}  // namespace sparta::index

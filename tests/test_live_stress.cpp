// Real-thread ingest stress: one writer thread mutating a LiveIndex
// (adds, refreshes, merges, reclamation) while reader threads
// continuously pin snapshots and walk posting lists. The epoch pin
// table is the only shared mutable state readers touch; everything they
// read through a pin is immutable. This is the suite's
// ThreadSanitizer target for the live-update path (CI's sanitize-tsan
// job) — the deterministic race detector checks the same protocol on
// the simulator in test_live_index.cpp.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "index/delta_segment.h"
#include "index/live_index.h"
#include "test_helpers.h"

namespace sparta::test {
namespace {

using index::IndexSnapshot;
using index::InvertedIndex;
using index::LiveIndex;
using index::MergeOutcome;
using index::MergeSegments;
using index::TermCount;

TEST(LiveStress, ConcurrentReadersDuringIngestAndMerges) {
  constexpr std::uint32_t kMainDocs = 1500;
  constexpr int kWriterIters = 50;
  constexpr std::uint32_t kDocsPerIter = 20;
  constexpr int kReaders = 4;

  LiveIndex live(MakeTinyIndex(kMainDocs, 7));
  std::atomic<bool> done{false};

  // Synthetic ingest stream, generated up front so the writer loop does
  // no RNG work while racing the readers.
  corpus::SyntheticCorpusSpec spec;
  spec.num_docs = kWriterIters * kDocsPerIter;
  spec.vocab_size = 400;
  spec.mean_unique_terms = 25.0;
  spec.seed = 41;
  const auto raw = corpus::GenerateRawCorpus(spec);
  std::vector<std::vector<TermCount>> doc_terms(raw.num_docs);
  for (TermId t = 0; t < raw.term_postings.size(); ++t) {
    for (const index::RawPosting& p : raw.term_postings[t]) {
      doc_terms[p.doc].push_back({t, p.tf});
    }
  }

  std::thread writer([&] {
    const util::SerialGuard guard(live.writer());
    std::uint32_t next = 0;
    for (int iter = 0; iter < kWriterIters; ++iter) {
      for (std::uint32_t j = 0; j < kDocsPerIter; ++j, ++next) {
        live.Add(doc_terms[next],
                 std::max<std::uint32_t>(1, raw.doc_lengths[next]));
      }
      live.Refresh();
      if (iter % 4 == 3 && live.CanMerge()) {
        const IndexSnapshot snap = live.BeginMerge();
        InvertedIndex merged = MergeSegments(*snap.main, *snap.delta);
        ASSERT_EQ(live.CommitMerge(std::move(merged)),
                  MergeOutcome::kCommitted);
      }
      if (iter % 8 == 5) live.epochs().Collect();
    }
    live.CompactNow();
    done.store(true, std::memory_order_release);
  });

  std::atomic<std::uint64_t> reads{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      std::uint64_t last_epoch = 0;
      while (!done.load(std::memory_order_acquire)) {
        auto pin = live.AcquireSnapshot();
        ASSERT_TRUE(pin.valid());
        // Epochs are published monotonically; a reader can never see
        // them go backwards.
        ASSERT_GE(pin->epoch, last_epoch);
        last_epoch = pin->epoch;
        ASSERT_NE(pin->main, nullptr);
        ASSERT_GE(pin->main->num_docs(), kMainDocs);
        if (pin->delta != nullptr) {
          ASSERT_EQ(pin->delta_doc_base, pin->main->num_docs());
        }
        // Walk a few posting lists of whichever segments are pinned —
        // all immutable, so any torn read here is a reclamation bug.
        std::uint64_t sum = 0;
        const TermId step = static_cast<TermId>(7 + r);
        for (TermId t = 0; t < pin->main->num_terms(); t += step) {
          for (const index::Posting& p : pin->main->Term(t).doc_order) {
            sum += p.score;
          }
        }
        if (pin->delta != nullptr) {
          for (TermId t = 0; t < pin->delta->num_terms(); t += step) {
            for (const index::Posting& p : pin->delta->Term(t).doc_order) {
              sum += p.score;
            }
          }
        }
        ASSERT_GT(sum, 0u);
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  writer.join();
  for (auto& t : readers) t.join();
  EXPECT_GT(reads.load(), 0u);

  // Everything folded: one main segment holding every ingested doc.
  auto pin = live.AcquireSnapshot();
  EXPECT_EQ(pin->delta, nullptr);
  ASSERT_NE(pin->main, nullptr);
  EXPECT_EQ(pin->main->num_docs(),
            kMainDocs + kWriterIters * kDocsPerIter);
  // And the folded index answers queries exactly.
  const auto terms = PickQueryTerms(*pin->main, 3, 2);
  topk::SearchParams params;
  params.k = 15;
  const auto result = RunOnThreads(*pin->main, "MaxScore", terms, params);
  EXPECT_TRUE(IsExactTopK(*pin->main, terms, params.k, result));
}

TEST(LiveStress, PinsFromManyThreadsBlockReclamation) {
  constexpr int kThreads = 8;
  LiveIndex live(MakeTinyIndex(400, 9));
  std::vector<std::thread> threads;
  std::atomic<int> pinned{0};
  std::atomic<bool> release{false};
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      auto pin = live.AcquireSnapshot();
      ASSERT_EQ(pin->epoch, 0u);
      pinned.fetch_add(1, std::memory_order_acq_rel);
      while (!release.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
    });
  }
  while (pinned.load(std::memory_order_acquire) < kThreads) {
    std::this_thread::yield();
  }
  {
    const util::SerialGuard guard(live.writer());
    const std::vector<TermCount> doc = {{0, 1}};
    live.Add(doc, 5);
    ASSERT_TRUE(live.Refresh());
  }
  EXPECT_EQ(live.epochs().Collect(), 0u)
      << "epoch 0 is pinned by every thread";
  release.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
  EXPECT_EQ(live.epochs().Collect(), 1u);
}

}  // namespace
}  // namespace sparta::test

// Unit tests: exec — job queue and the threaded executor.
#include "test_helpers.h"
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "exec/job_queue.h"
#include "exec/thread_pool.h"
#include "exec/threaded_executor.h"

namespace sparta::exec {
namespace {

TEST(JobQueueTest, FifoOrderSingleThread) {
  JobQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    queue.Push([&order, i](WorkerContext&) { order.push_back(i); });
  }
  ThreadedExecutor executor({.num_workers = 1, .trace = {}});
  auto ctx = executor.CreateQuery();
  while (auto job = queue.Pop()) {
    // Run through a real worker context for interface coverage.
    (void)job;
    queue.JobDone();
    order.push_back(-1);
  }
  EXPECT_EQ(order.size(), 5u);  // five pops, all marked done
}

TEST(JobQueueTest, DrainsWhenAllDone) {
  JobQueue queue;
  queue.Push([](WorkerContext&) {});
  EXPECT_EQ(queue.outstanding(), 1u);
  auto job = queue.Pop();
  ASSERT_TRUE(job.has_value());
  queue.JobDone();
  EXPECT_EQ(queue.outstanding(), 0u);
  EXPECT_EQ(queue.Pop(), std::nullopt);  // drained, no blocking
}

TEST(JobQueueTest, BlockedPopperWakesOnDrain) {
  JobQueue queue;
  queue.Push([](WorkerContext&) {});
  std::atomic<bool> popper_done{false};
  std::thread popper([&] {
    // First pop gets the job; second pop must block until drain.
    auto job = queue.Pop();
    EXPECT_TRUE(job.has_value());
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    queue.JobDone();
    EXPECT_EQ(queue.Pop(), std::nullopt);
    popper_done = true;
  });
  popper.join();
  EXPECT_TRUE(popper_done);
}

TEST(ThreadedExecutorTest, RunsAllJobs) {
  ThreadedExecutor executor({.num_workers = 4, .trace = {}});
  auto ctx = executor.CreateQuery();
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    ctx->Submit([&count](WorkerContext&) {
      count.fetch_add(1, std::memory_order_relaxed);
    });
  }
  ctx->RunToCompletion();
  EXPECT_EQ(count.load(), 100);
  EXPECT_GT(ctx->end_time(), 0);
}

TEST(ThreadedExecutorTest, SelfReplenishingJobsComplete) {
  ThreadedExecutor executor({.num_workers = 3, .trace = {}});
  auto ctx = executor.CreateQuery();
  std::atomic<int> hops{0};
  std::function<void(WorkerContext&)> hop = [&](WorkerContext& w) {
    (void)w;
    if (hops.fetch_add(1, std::memory_order_relaxed) < 50) {
      ctx->Submit(hop);
    }
  };
  ctx->Submit(hop);
  ctx->RunToCompletion();
  EXPECT_GE(hops.load(), 51);
}

TEST(ThreadedExecutorTest, WorkerIdsAreDistinct) {
  constexpr int kWorkers = 4;
  ThreadedExecutor executor({.num_workers = kWorkers, .trace = {}});
  auto ctx = executor.CreateQuery();
  std::mutex mu;
  std::set<int> ids;
  for (int i = 0; i < 64; ++i) {
    ctx->Submit([&](WorkerContext& w) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      const std::lock_guard guard(mu);
      ids.insert(w.worker_id());
    });
  }
  ctx->RunToCompletion();
  for (const int id : ids) {
    EXPECT_GE(id, 0);
    EXPECT_LT(id, kWorkers);
  }
}

TEST(ThreadedExecutorTest, MemoryBudgetEnforced) {
  ThreadedExecutor::Options options;
  options.num_workers = 1;
  options.memory_budget_bytes = 1000;
  ThreadedExecutor executor(options);
  auto ctx = executor.CreateQuery();
  bool hit_limit = false;
  ctx->Submit([&](WorkerContext& w) {
    EXPECT_TRUE(w.ChargeMemory(900));
    hit_limit = !w.ChargeMemory(200);
    (void)w.ChargeMemory(-1100);
  });
  ctx->RunToCompletion();
  EXPECT_TRUE(hit_limit);
}

TEST(ThreadedExecutorTest, LocksAreMutuallyExclusive) {
  ThreadedExecutor executor({.num_workers = 4, .trace = {}});
  auto ctx = executor.CreateQuery();
  auto lock = ctx->MakeLock();
  long counter = 0;
  for (int i = 0; i < 200; ++i) {
    ctx->Submit([&](WorkerContext& w) {
      const CtxLockGuard guard(*lock, w);
      for (int j = 0; j < 100; ++j) ++counter;
    });
  }
  ctx->RunToCompletion();
  EXPECT_EQ(counter, 200L * 100);
}

TEST(ThreadedExecutorTest, ClockAdvances) {
  ThreadedExecutor executor({.num_workers = 1, .trace = {}});
  auto ctx = executor.CreateQuery();
  VirtualTime first = 0, second = 0;
  ctx->Submit([&](WorkerContext& w) {
    first = w.Now();
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    second = w.Now();
  });
  ctx->RunToCompletion();
  EXPECT_GT(second, first);
  EXPECT_GE(ctx->end_time(), second);
}

TEST(ThreadPoolTest, ConcurrentQueriesShareThePool) {
  ThreadPool pool({.num_workers = 4});
  auto q1 = pool.CreateQuery();
  auto q2 = pool.CreateQuery();
  std::atomic<int> count1{0}, count2{0};
  for (int i = 0; i < 50; ++i) {
    q1->Submit([&](WorkerContext&) {
      count1.fetch_add(1, std::memory_order_relaxed);
    });
    q2->Submit([&](WorkerContext&) {
      count2.fetch_add(1, std::memory_order_relaxed);
    });
  }
  q1->RunToCompletion();
  q2->RunToCompletion();
  EXPECT_EQ(count1.load(), 50);
  EXPECT_EQ(count2.load(), 50);
  EXPECT_GE(q1->end_time(), q1->start_time());
  EXPECT_GE(q2->end_time(), q2->start_time());
}

TEST(ThreadPoolTest, SelfReplenishingJobsAndPerQueryWait) {
  ThreadPool pool({.num_workers = 3});
  auto ctx = pool.CreateQuery();
  std::atomic<int> hops{0};
  std::function<void(WorkerContext&)> hop = [&](WorkerContext&) {
    if (hops.fetch_add(1, std::memory_order_relaxed) < 40) {
      ctx->Submit(hop);
    }
  };
  ctx->Submit(hop);
  ctx->RunToCompletion();
  EXPECT_GE(hops.load(), 41);
  EXPECT_EQ(pool.QueuedJobs(), 0u);
}

TEST(ThreadPoolTest, PerQueryMemoryBudget) {
  ThreadPool pool({.num_workers = 2, .memory_budget_bytes = 100});
  auto starving = pool.CreateQuery();
  auto healthy = pool.CreateQuery();
  std::atomic<bool> starved{false};
  starving->Submit([&](WorkerContext& w) {
    (void)w.ChargeMemory(90);
    starved = !w.ChargeMemory(50);
  });
  std::atomic<bool> fine{true};
  healthy->Submit([&](WorkerContext& w) { fine = w.ChargeMemory(90); });
  starving->RunToCompletion();
  healthy->RunToCompletion();
  EXPECT_TRUE(starved.load());   // budgets are per query...
  EXPECT_TRUE(fine.load());      // ...not shared across queries
}

TEST(ThreadPoolTest, AlgorithmRunsOnSharedPool) {
  const auto idx = sparta::test::MakeTinyIndex(800, 7);
  const auto terms = sparta::test::PickQueryTerms(idx, 4, 2);
  const auto algo = algos::MakeAlgorithm("Sparta");
  topk::SearchParams params;
  params.k = 10;
  ThreadPool pool({.num_workers = 4});
  auto ctx = pool.CreateQuery();
  const auto result = algo->Run(idx, terms, params, *ctx);
  EXPECT_TRUE(sparta::test::IsExactTopK(idx, terms, params.k, result));
}

}  // namespace
}  // namespace sparta::exec

// Profiler tests: the gating/determinism contract of obs/profiler.h
// (off = no profiler and bit-identical clocks; on = byte-identical
// contention reports and folded stacks per seed), contention
// attribution of Sparta's registered structures, lock-wait
// reconciliation against the tracer, and folded-stack shape.
#include <cctype>
#include <numeric>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "driver/bench_driver.h"
#include "obs/flame_export.h"
#include "obs/profiler.h"
#include "test_helpers.h"

namespace sparta::test {
namespace {

using obs::SpanKind;

/// Profiled simulator config. The default (address-keyed) cost model is
/// fine for byte-determinism *with the profiler on* — registered ranges
/// are keyed structure-relative — but off-vs-on clock comparisons need
/// the address-independent model (see obs/profiler.h).
sim::SimConfig ProfiledConfig(int workers, bool address_independent,
                              exec::VirtualTime sample_period = 5'000) {
  sim::SimConfig config;
  config.num_workers = workers;
  if (address_independent) {
    config.costs.coherence_miss = config.costs.l1_hit;
  }
  config.profile.contention = true;
  config.profile.sample_period = sample_period;
  return config;
}

struct ProfiledRun {
  topk::SearchResult result;
  exec::VirtualTime latency = 0;
  std::string report;
  std::string folded;
  exec::VirtualTime lock_wait_ns = 0;
  std::uint64_t total_samples = 0;
};

/// Runs `queries` back to back on one profiled executor (covering the
/// per-query range-reset path) and snapshots the profiler.
ProfiledRun RunProfiled(const index::InvertedIndex& idx,
                        std::string_view algo_name,
                        const std::vector<std::vector<TermId>>& queries,
                        topk::SearchParams params,
                        const sim::SimConfig& config) {
  const auto algo = algos::MakeAlgorithm(algo_name);
  SPARTA_CHECK(algo != nullptr);
  params.trace.enabled = true;  // algorithm spans are the profiler frames
  sim::SimExecutor executor(config);
  ProfiledRun run;
  for (const auto& terms : queries) {
    auto ctx = executor.CreateQuery();
    run.result = algo->Run(idx, terms, params, *ctx);
    run.latency += ctx->end_time() - ctx->start_time();
  }
  const obs::Profiler* profiler = executor.profiler();
  if (profiler != nullptr) {
    run.report = obs::RenderContentionReport(
        profiler->ContentionSnapshot(), "test");
    run.folded = obs::ExportFolded(*profiler);
    run.lock_wait_ns = profiler->total_lock_wait_ns();
    run.total_samples = profiler->total_samples();
  }
  return run;
}

TEST(ProfilerGateTest, OffByDefaultConstructsNoProfiler) {
  sim::SimConfig config;
  config.num_workers = 2;
  ASSERT_FALSE(config.profile.enabled());
  sim::SimExecutor off(config);
  EXPECT_EQ(off.profiler(), nullptr);

  config.profile.contention = true;
  sim::SimExecutor on(config);
  EXPECT_NE(on.profiler(), nullptr);
}

// The golden-clock guarantee: under the address-independent cost model,
// turning the profiler on changes neither the results nor a single
// virtual timestamp.
TEST(ProfilerGateTest, ProfilingOnDoesNotChangeResultsOrClock) {
  const auto idx = MakeTinyIndex();
  const auto terms = PickQueryTerms(idx, 6);
  topk::SearchParams params;
  params.k = 20;

  sim::SimConfig off = ProfiledConfig(4, /*address_independent=*/true);
  off.profile = obs::ProfilerConfig{};
  ASSERT_FALSE(off.profile.enabled());
  const auto base = RunProfiled(idx, "Sparta", {terms}, params, off);
  const auto profiled = RunProfiled(
      idx, "Sparta", {terms}, params,
      ProfiledConfig(4, /*address_independent=*/true));

  EXPECT_EQ(base.latency, profiled.latency);
  ASSERT_EQ(base.result.entries.size(), profiled.result.entries.size());
  for (std::size_t i = 0; i < base.result.entries.size(); ++i) {
    EXPECT_EQ(base.result.entries[i].doc, profiled.result.entries[i].doc);
    EXPECT_EQ(base.result.entries[i].score,
              profiled.result.entries[i].score);
  }
  EXPECT_TRUE(base.report.empty());
  EXPECT_FALSE(profiled.report.empty());
}

// With the profiler on, registered-range line keys are
// allocator-independent, so two executor instances (different heap
// layouts) must agree byte for byte — report, folded stacks, and clock —
// even under the default address-sensitive cost model.
TEST(ProfilerDeterminismTest, SameSeedYieldsByteIdenticalReports) {
  const auto idx = MakeTinyIndex();
  const auto q1 = PickQueryTerms(idx, 6);
  const auto q2 = PickQueryTerms(idx, 5, /*salt=*/3);
  topk::SearchParams params;
  params.k = 20;

  const auto a = RunProfiled(idx, "Sparta", {q1, q2}, params,
                             ProfiledConfig(4, false));
  const auto b = RunProfiled(idx, "Sparta", {q1, q2}, params,
                             ProfiledConfig(4, false));
  EXPECT_EQ(a.latency, b.latency);
  EXPECT_EQ(a.report, b.report);
  EXPECT_EQ(a.folded, b.folded);
  EXPECT_EQ(a.total_samples, b.total_samples);
  EXPECT_GT(a.total_samples, 0u);
}

// The two instruments price the same stalls: the profiler's total lock
// wait must equal the sum of the tracer's lock.wait span durations.
TEST(ProfilerReconcileTest, LockWaitMatchesTracerSpans) {
  const auto idx = MakeTinyIndex();
  const auto terms = PickQueryTerms(idx, 8);
  topk::SearchParams params;
  params.k = 50;
  params.trace.enabled = true;

  sim::SimConfig config = ProfiledConfig(8, false);
  config.trace.enabled = true;
  const auto algo = algos::MakeAlgorithm("pRA");
  sim::SimExecutor executor(config);
  auto ctx = executor.CreateQuery();
  (void)algo->Run(idx, terms, params, *ctx);

  ASSERT_NE(executor.tracer(), nullptr);
  ASSERT_NE(executor.profiler(), nullptr);
  exec::VirtualTime traced_wait = 0;
  std::uint64_t traced_spans = 0;
  for (int t = 0; t < executor.tracer()->num_tracks(); ++t) {
    for (const obs::TraceEvent& e : executor.tracer()->track(t)) {
      if (!e.is_instant && e.span_kind() == SpanKind::kLockWait) {
        traced_wait += e.end - e.begin;
        ++traced_spans;
      }
    }
  }
  EXPECT_EQ(executor.profiler()->total_lock_wait_ns(), traced_wait);
  // The run must actually have contended, or this test checks nothing.
  EXPECT_GT(traced_spans, 0u);
  EXPECT_GT(traced_wait, 0);
}

// Sparta's registered structures show up by name, with the docMap
// stripes carrying lock traffic and the UB array carrying misses.
TEST(ProfilerContentionTest, SpartaStructuresAppear) {
  const auto idx = MakeTinyIndex();
  const auto terms = PickQueryTerms(idx, 8);
  topk::SearchParams params;
  params.k = 50;
  params.trace.enabled = true;

  const auto algo = algos::MakeAlgorithm("Sparta");
  sim::SimExecutor executor(ProfiledConfig(8, false));
  auto ctx = executor.CreateQuery();
  (void)algo->Run(idx, terms, params, *ctx);

  const auto report = executor.profiler()->ContentionSnapshot();
  const auto ContentionRowOf = [](const obs::ContentionReport& r,
                                  const std::string& name)
      -> const obs::ContentionStructureRow* {
    for (const auto& s : r.structures) {
      if (s.name == name) return &s;
    }
    return nullptr;
  };
  const auto* stripes = ContentionRowOf(report, "docMap.stripe");
  const auto* ub = ContentionRowOf(report, "UB");
  ASSERT_NE(stripes, nullptr);
  ASSERT_NE(ub, nullptr);
  EXPECT_GT(stripes->lock_acquires, 0u);
  EXPECT_GT(ub->reads + ub->writes, 0u);
  EXPECT_GT(report.total_misses, 0u);

  // Nothing the paper algorithms touch through SharedAccess is
  // unregistered — the "(unregistered)" bucket must stay silent, which
  // is what makes the report allocator-independent.
  EXPECT_EQ(ContentionRowOf(report, "(unregistered)"), nullptr);

  const std::string text =
      obs::RenderContentionReport(report, "Sparta w8");
  EXPECT_NE(text.find("docMap.stripe"), std::string::npos);
  EXPECT_NE(text.find("UB"), std::string::npos);
  EXPECT_NE(text.find("hottest lines:"), std::string::npos);
}

// Folded export: "frame;frame;... count" lines, every stack rooted at
// the job frame, counts summing to total_samples, and the self-time
// table consistent with the samples.
TEST(ProfilerSamplingTest, FoldedStacksAreWellFormed) {
  const auto idx = MakeTinyIndex();
  const auto terms = PickQueryTerms(idx, 6);
  topk::SearchParams params;
  params.k = 20;

  const auto run = RunProfiled(idx, "Sparta", {terms}, params,
                               ProfiledConfig(4, false));
  ASSERT_GT(run.total_samples, 0u);
  ASSERT_FALSE(run.folded.empty());

  std::uint64_t sum = 0;
  std::istringstream lines(run.folded);
  std::string line;
  while (std::getline(lines, line)) {
    const auto space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string stack = line.substr(0, space);
    const std::string count = line.substr(space + 1);
    ASSERT_FALSE(stack.empty()) << line;
    ASSERT_FALSE(count.empty()) << line;
    for (const char ch : count) ASSERT_TRUE(std::isdigit(ch)) << line;
    sum += std::stoull(count);
    // Work only happens inside jobs, so every sampled stack is rooted
    // at the job frame.
    EXPECT_EQ(stack.substr(0, 3), "job") << line;
  }
  EXPECT_EQ(sum, run.total_samples);
}

// The per-phase self-time table is the folded data re-aggregated by
// innermost frame: samples must agree and self time is samples x period.
TEST(ProfilerSamplingTest, SelfTimeTableMatchesSamples) {
  const auto idx = MakeTinyIndex();
  const auto terms = PickQueryTerms(idx, 6);
  topk::SearchParams params;
  params.k = 20;
  params.trace.enabled = true;

  const auto algo = algos::MakeAlgorithm("Sparta");
  sim::SimExecutor executor(ProfiledConfig(4, false));
  auto ctx = executor.CreateQuery();
  (void)algo->Run(idx, terms, params, *ctx);

  const obs::Profiler& profiler = *executor.profiler();
  const auto rows = obs::SelfTimeTable(profiler);
  ASSERT_FALSE(rows.empty());
  std::uint64_t samples = 0;
  double share = 0.0;
  for (const auto& row : rows) {
    EXPECT_EQ(row.self_ns,
              static_cast<exec::VirtualTime>(row.samples) *
                  profiler.sample_period());
    samples += row.samples;
    share += row.share;
  }
  EXPECT_EQ(samples, profiler.total_samples());
  EXPECT_NEAR(share, 1.0, 1e-9);
  const std::string table = obs::RenderSelfTimeTable(rows);
  EXPECT_NE(table.find("self_ms"), std::string::npos);
}

// Driver integration: ProfileLatency runs the latency loop on a
// profiled simulator and returns latency aggregates, a renderable
// contention report, folded stacks and the self-time table together.
TEST(ProfilerDriverTest, ProfileLatencyProducesReport) {
  const auto& ds = corpus::GetDataset(corpus::TinySpec(2500, 31),
                                      "/tmp/sparta_test_data");
  driver::BenchDriver bench(ds);
  const auto algo = algos::MakeAlgorithm("Sparta");
  topk::SearchParams params;
  params.k = 20;
  const auto& bucket = ds.queries().OfLength(4);
  ASSERT_GE(bucket.size(), 3u);
  const std::span<const corpus::Query> queries{bucket.data(), 3};

  sim::SimConfig config = bench.MakeSimConfig(4);
  config.profile.contention = true;
  config.profile.sample_period = 5'000;
  const auto res = bench.ProfileLatency(*algo, queries, params, config);

  EXPECT_EQ(res.latency.queries, 3u);
  EXPECT_GT(res.latency.MeanMs(), 0.0);
  EXPECT_FALSE(res.contention.structures.empty());
  EXPECT_FALSE(res.folded.empty());
  EXPECT_FALSE(res.self_times.empty());
  const std::string text = driver::RenderProfileReport(res, "tiny");
  EXPECT_NE(text.find("total misses"), std::string::npos);
  EXPECT_NE(text.find("self_ms"), std::string::npos);
}

}  // namespace
}  // namespace sparta::test

// Unit tests: driver — tables, experiment configs, latency/throughput
// measurement, recall-over-time reconstruction.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "corpus/datasets.h"
#include "driver/bench_driver.h"
#include "driver/experiment.h"
#include "driver/table.h"
#include "test_helpers.h"

namespace sparta::driver {
namespace {

TEST(TableTest, PrintAndCsv) {
  Table table("Test Table 1", {"name", "value"});
  table.AddRow({"alpha", "1"});
  table.AddRow({"beta", "22"});
  std::ostringstream oss;
  table.Print(oss);
  const auto text = oss.str();
  EXPECT_NE(text.find("Test Table 1"), std::string::npos);
  EXPECT_NE(text.find("alpha"), std::string::npos);

  const std::string dir = "/tmp/sparta_table_test";
  ASSERT_TRUE(table.WriteCsv(dir));
  std::ifstream csv(dir + "/test_table_1.csv");
  ASSERT_TRUE(csv.good());
  std::string line;
  std::getline(csv, line);
  EXPECT_EQ(line, "name,value");
  std::getline(csv, line);
  EXPECT_EQ(line, "alpha,1");
  std::filesystem::remove_all(dir);
}

TEST(FormatTest, Helpers) {
  EXPECT_EQ(FormatMs(1'500'000), "1.5");
  EXPECT_EQ(FormatPct(0.975), "97.5%");
  EXPECT_EQ(FormatF(3.14159, 2), "3.14");
}

TEST(ExperimentTest, VariantCatalogs) {
  const auto exact = ExactVariants();
  EXPECT_EQ(exact.size(), 6u);
  for (const auto& v : exact) {
    EXPECT_EQ(v.params.delta, exec::kNever);
    EXPECT_EQ(v.params.f, 1.0);
    EXPECT_EQ(v.params.p, 1.0);
    EXPECT_NE(algos::MakeAlgorithm(v.algorithm), nullptr) << v.label;
  }
  const auto high = HighRecallVariants();
  EXPECT_EQ(high.size(), 6u);
  const auto low = LowRecallVariants();
  EXPECT_EQ(low.size(), 2u);
  EXPECT_EQ(WorkersFor(3), 3);
  EXPECT_EQ(WorkersFor(40), kMachineWorkers);
}

class DriverTest : public ::testing::Test {
 protected:
  DriverTest()
      : dataset_(corpus::GetDataset(corpus::TinySpec(2500, 31),
                                    "/tmp/sparta_test_data")) {}

  const corpus::Dataset& dataset_;
};

TEST_F(DriverTest, MeasureLatencyBasics) {
  BenchDriver bench(dataset_);
  const auto algo = algos::MakeAlgorithm("Sparta");
  topk::SearchParams params;
  params.k = 10;
  const auto& queries = dataset_.queries().OfLength(4);
  const auto res = bench.MeasureLatency(
      *algo, {queries.data(), 5}, params, 4);
  EXPECT_EQ(res.queries, 5u);
  EXPECT_EQ(res.oom, 0u);
  EXPECT_EQ(res.latency_ns.count(), 5u);
  EXPECT_GT(res.MeanMs(), 0.0);
  EXPECT_GE(res.P95Ms(), res.MeanMs() * 0.5);
  EXPECT_DOUBLE_EQ(res.mean_recall, 1.0);  // exact mode
}

TEST_F(DriverTest, OracleIsCached) {
  BenchDriver bench(dataset_);
  const auto& q = dataset_.queries().OfLength(3)[0];
  const auto& a = bench.Oracle(q, 10);
  const auto& b = bench.Oracle(q, 10);
  EXPECT_EQ(&a, &b);  // same object
  const auto& c = bench.Oracle(q, 5);
  EXPECT_NE(&a, &c);  // different k
}

TEST_F(DriverTest, ThroughputProcessesAllQueries) {
  BenchDriver bench(dataset_);
  const auto algo = algos::MakeAlgorithm("Sparta");
  topk::SearchParams params;
  params.k = 10;
  const auto& queries = dataset_.queries().OfLength(3);
  const auto res = bench.MeasureThroughput(
      *algo, {queries.data(), 10}, params, 4);
  EXPECT_EQ(res.queries, 10u);
  EXPECT_EQ(res.oom, 0u);
  EXPECT_GT(res.qps, 0.0);
  EXPECT_DOUBLE_EQ(res.mean_recall, 1.0);
}

TEST_F(DriverTest, ThroughputBeatsOneByOneLatency) {
  // A shared pool processing short queries FCFS must finish faster than
  // running them strictly one after another at full width.
  BenchDriver bench(dataset_);
  const auto algo = algos::MakeAlgorithm("Sparta");
  topk::SearchParams params;
  params.k = 10;
  const auto& queries = dataset_.queries().OfLength(2);
  const std::span<const corpus::Query> span{queries.data(), 12};

  const auto latency = bench.MeasureLatency(*algo, span, params, 12,
                                            /*measure_recall=*/false);
  const auto throughput = bench.MeasureThroughput(*algo, span, params, 12);
  double serial_ns = 0;
  for (const auto s : latency.latency_ns.samples()) {
    serial_ns += static_cast<double>(s);
  }
  const double fcfs_ns = 12.0 / throughput.qps * 1e9;
  EXPECT_LT(fcfs_ns, serial_ns * 1.05);
}

TEST(RecallOverTimeTest, ReconstructsKnownTrace) {
  TraceRecorder trace;
  // Events: doc 1 enters at t=10 with 100; doc 2 at t=20 with 90;
  // doc 3 at t=30 with 80 displacing nothing (k=2 keeps top 2).
  trace.OnHeapUpdate(10, 1, 100);
  trace.OnHeapUpdate(20, 2, 90);
  trace.OnHeapUpdate(30, 3, 80);

  topk::ExactTopK exact;
  exact.topk = {{1, 100}, {2, 90}};
  exact.kth_score = 90;

  const std::vector<exec::VirtualTime> offsets{5, 15, 25, 35};
  const auto recalls = RecallOverTime(trace, 0, exact, offsets);
  ASSERT_EQ(recalls.size(), 4u);
  EXPECT_DOUBLE_EQ(recalls[0], 0.0);
  EXPECT_DOUBLE_EQ(recalls[1], 0.5);
  EXPECT_DOUBLE_EQ(recalls[2], 1.0);
  EXPECT_DOUBLE_EQ(recalls[3], 1.0);  // doc 3 cannot displace the top 2
}

TEST(RecallOverTimeTest, LaterValueOverridesEarlier) {
  TraceRecorder trace;
  trace.OnHeapUpdate(10, 7, 10);   // enters low
  trace.OnHeapUpdate(20, 8, 50);
  trace.OnHeapUpdate(30, 7, 100);  // doc 7's bound grows

  topk::ExactTopK exact;
  exact.topk = {{7, 100}};
  exact.kth_score = 100;
  const std::vector<exec::VirtualTime> offsets{25, 35};
  const auto recalls = RecallOverTime(trace, 0, exact, offsets);
  // At t=25 doc 8 (50) outranks doc 7 (10): recall 0. At t=35, doc 7
  // leads again.
  EXPECT_DOUBLE_EQ(recalls[0], 0.0);
  EXPECT_DOUBLE_EQ(recalls[1], 1.0);
}

TEST(DatasetTest, TinyDatasetWellFormedAndCached) {
  const auto spec = corpus::TinySpec(1800, 37);
  const auto& ds = corpus::GetDataset(spec, "/tmp/sparta_test_data");
  EXPECT_EQ(ds.index().num_docs(), 1800u);
  EXPECT_GT(ds.PageCacheBytes(), 0u);
  EXPECT_EQ(&corpus::GetDataset(spec, "/tmp/sparta_test_data"), &ds);
  // The cache file exists on disk for the next process.
  bool found = false;
  for (const auto& entry :
       std::filesystem::directory_iterator("/tmp/sparta_test_data")) {
    if (entry.path().string().find(spec.name) != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(RecallOverTimeTest, EventOrderInvariantWithTiedScores) {
  // Golden-stability regression: the reconstruction used to rebuild the
  // sample heap from an unordered_map, so reported curves could depend
  // on hash iteration order when tied scores straddle the k boundary.
  // The same event set delivered in any order must now yield the same
  // curve (the best-score map iterates in doc-id order).
  topk::ExactTopK exact;
  exact.topk = {{0, 90}, {1, 90}};
  exact.kth_score = 90;
  const std::vector<exec::VirtualTime> offsets{50, 200};

  auto reconstruct = [&](const std::vector<DocId>& order) {
    TraceRecorder trace;
    for (const DocId doc : order) trace.OnHeapUpdate(10, doc, 90);
    return RecallOverTime(trace, 0, exact, offsets);
  };

  std::vector<DocId> forward, reversed, shuffled;
  for (DocId d = 0; d < 32; ++d) forward.push_back(d);
  reversed.assign(forward.rbegin(), forward.rend());
  for (DocId d = 0; d < 32; ++d) shuffled.push_back((d * 13) % 32);

  const auto base = reconstruct(forward);
  EXPECT_EQ(base, reconstruct(reversed));
  EXPECT_EQ(base, reconstruct(shuffled));
}

}  // namespace
}  // namespace sparta::driver

#!/bin/bash
# Runs every benchmark binary, teeing output to bench_output.txt.
#
# Fails fast when the build tree is missing or stale, runs every bench
# even if one fails, and exits non-zero if any did (per-bench exit codes
# are recorded in the output).
#
# --json-only: fast perf-gate mode. Runs only the benches whose
# machine-readable output is gated by tools/bench_compare.py
# (bench_contention, bench_live_update, bench_shard_faults and
# bench_obs_overhead, plus bench_micro for the uploaded wall-clock
# artifact), writes into
# results/_fresh/ instead of results/ so the committed baseline is
# never clobbered, then compares. This is what CI's perf-smoke job
# runs.
set -euo pipefail
cd "$(dirname "$0")"

json_only=0
if [[ "${1:-}" == "--json-only" ]]; then
  json_only=1
  shift
fi

if [[ ! -d build ]]; then
  echo "error: no build/ directory — run: cmake -B build -S . && cmake --build build -j" >&2
  exit 2
fi

BENCHES=(
  bench_table2_exact
  bench_table3_recall
  bench_table4_throughput
  bench_fig3_latency
  bench_fig3_lowrecall
  bench_fig3_dynamics
  bench_fig3_parallelism
  bench_fig4_throughput
  bench_ablation_sparta
  bench_extensions
  bench_adaptive
  bench_contention
  bench_degradation
  bench_overload
  bench_live_update
  bench_shard_faults
  bench_obs_overhead
)
if [[ $json_only -eq 1 ]]; then
  BENCHES=(bench_contention bench_live_update bench_shard_faults
           bench_obs_overhead)
fi

# Fail fast on missing or stale binaries: every bench must exist and be
# no older than the newest source file.
newest_src=$(find src bench -name '*.cpp' -o -name '*.h' | xargs ls -t 2>/dev/null | head -1)
for b in "${BENCHES[@]}" bench_micro; do
  bin="build/bench/$b"
  if [[ ! -x "$bin" ]]; then
    echo "error: missing benchmark binary $bin — rebuild first" >&2
    exit 2
  fi
  if [[ -n "$newest_src" && "$bin" -ot "$newest_src" ]]; then
    echo "error: $bin is older than $newest_src — rebuild first" >&2
    exit 2
  fi
done

# Tier-1 gate: no benchmark numbers without a passing fast-correctness
# suite (see README "Test tiers"). Skipped in --json-only mode, which
# only builds the gated benches (CI runs tier 1 as its own job).
if [[ $json_only -eq 0 ]]; then
  ctest --test-dir build -L tier1 --output-on-failure -j"$(nproc)"
else
  export SPARTA_RESULTS_DIR=results/_fresh
  rm -rf results/_fresh
  mkdir -p results/_fresh
fi

failed=0
{
  for b in "${BENCHES[@]}"; do
    bin="build/bench/$b"
    echo "===== $bin ====="
    rc=0
    "$bin" || rc=$?
    if [[ $rc -ne 0 ]]; then
      echo "BENCH FAILED: $bin (exit $rc)"
      failed=1
    fi
  done
  echo "===== build/bench/bench_micro ====="
  rc=0
  micro_out="${SPARTA_RESULTS_DIR:-results}/BENCH_micro_wallclock.json"
  build/bench/bench_micro --benchmark_min_time=0.2 \
    --benchmark_out="$micro_out" --benchmark_out_format=json || rc=$?
  if [[ $rc -ne 0 ]]; then
    echo "BENCH FAILED: bench_micro (exit $rc)"
    failed=1
  fi
  if [[ $failed -eq 0 ]]; then
    echo DONE_ALL
  else
    echo "DONE_WITH_FAILURES"
  fi
} 2>bench_stderr.log | tee bench_output.txt

grep -q '^DONE_ALL$' bench_output.txt

if [[ $json_only -eq 1 ]]; then
  python3 tools/bench_compare.py --baseline results --fresh results/_fresh \
    --require contention,live_update,shard_faults,obs_overhead
fi

#!/bin/bash
# Runs every benchmark binary, teeing output to bench_output.txt.
cd "$(dirname "$0")"
set -o pipefail
{
  for b in build/bench/bench_table2_exact build/bench/bench_table3_recall \
           build/bench/bench_table4_throughput build/bench/bench_fig3_latency \
           build/bench/bench_fig3_lowrecall build/bench/bench_fig3_dynamics \
           build/bench/bench_fig3_parallelism build/bench/bench_fig4_throughput \
           build/bench/bench_ablation_sparta build/bench/bench_extensions build/bench/bench_adaptive; do
    echo "===== $b ====="
    $b || echo "BENCH FAILED: $b"
  done
  echo "===== build/bench/bench_micro ====="
  build/bench/bench_micro --benchmark_min_time=0.2 || echo "BENCH FAILED: micro"
} 2>bench_stderr.log | tee bench_output.txt
echo DONE_ALL >> bench_output.txt

#!/bin/bash
# Runs every benchmark binary, teeing output to bench_output.txt.
#
# Fails fast when the build tree is missing or stale, runs every bench
# even if one fails, and exits non-zero if any did (per-bench exit codes
# are recorded in the output).
set -euo pipefail
cd "$(dirname "$0")"

if [[ ! -d build ]]; then
  echo "error: no build/ directory — run: cmake -B build -S . && cmake --build build -j" >&2
  exit 2
fi

BENCHES=(
  bench_table2_exact
  bench_table3_recall
  bench_table4_throughput
  bench_fig3_latency
  bench_fig3_lowrecall
  bench_fig3_dynamics
  bench_fig3_parallelism
  bench_fig4_throughput
  bench_ablation_sparta
  bench_extensions
  bench_adaptive
  bench_degradation
  bench_overload
)

# Fail fast on missing or stale binaries: every bench must exist and be
# no older than the newest source file.
newest_src=$(find src bench -name '*.cpp' -o -name '*.h' | xargs ls -t 2>/dev/null | head -1)
for b in "${BENCHES[@]}" bench_micro; do
  bin="build/bench/$b"
  if [[ ! -x "$bin" ]]; then
    echo "error: missing benchmark binary $bin — rebuild first" >&2
    exit 2
  fi
  if [[ -n "$newest_src" && "$bin" -ot "$newest_src" ]]; then
    echo "error: $bin is older than $newest_src — rebuild first" >&2
    exit 2
  fi
done

# Tier-1 gate: no benchmark numbers without a passing fast-correctness
# suite (see README "Test tiers").
ctest --test-dir build -L tier1 --output-on-failure -j"$(nproc)"

failed=0
{
  for b in "${BENCHES[@]}"; do
    bin="build/bench/$b"
    echo "===== $bin ====="
    rc=0
    "$bin" || rc=$?
    if [[ $rc -ne 0 ]]; then
      echo "BENCH FAILED: $bin (exit $rc)"
      failed=1
    fi
  done
  echo "===== build/bench/bench_micro ====="
  rc=0
  build/bench/bench_micro --benchmark_min_time=0.2 || rc=$?
  if [[ $rc -ne 0 ]]; then
    echo "BENCH FAILED: bench_micro (exit $rc)"
    failed=1
  fi
  if [[ $failed -eq 0 ]]; then
    echo DONE_ALL
  else
    echo "DONE_WITH_FAILURES"
  fi
} 2>bench_stderr.log | tee bench_output.txt

grep -q '^DONE_ALL$' bench_output.txt

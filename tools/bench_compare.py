#!/usr/bin/env python3
"""Perf-regression gate over results/BENCH_*.json files.

Compares a freshly generated set of machine-readable bench outputs
against the committed baseline and exits non-zero when any metric
drifts past its noise threshold -- in either direction, so unexplained
speedups (usually a sign the bench stopped measuring what it used to)
fail the gate just like slowdowns. Thresholds are per metric family:

  *_virtual_ms   5% relative   (virtual-time latencies; deterministic,
                                the margin absorbs intentional-change
                                review rather than run noise)
  postings       2% relative   (work counters are exactly reproducible)
  recall         0.02 absolute
  overhead_pct   0.5 absolute  (observability overhead sits near zero,
                                so relative drift on a ~0.001-point
                                baseline would flag nothing real; the
                                absolute band catches the recorder
                                getting materially more expensive)
  anything else  10% relative

Usage:
  tools/bench_compare.py --baseline results --fresh results/_fresh \
      [--require contention,live_update] [--verbose]
  tools/bench_compare.py --self-test

Benches present in the fresh directory but missing from the baseline
are reported and skipped (a new bench has no baseline yet); benches
named in --require must exist in both. A config or metric that exists
on one side only is a failure: silently dropped coverage is how perf
gates rot.
"""

import argparse
import glob
import json
import os
import sys


def threshold_for(metric):
    """Returns (kind, limit): kind is 'rel' or 'abs'."""
    if metric == "recall" or metric.startswith("recall."):
        return ("abs", 0.02)
    if metric == "overhead_pct" or metric.startswith("overhead_pct."):
        return ("abs", 0.5)
    if metric.endswith("_virtual_ms") or "_virtual_ms." in metric:
        return ("rel", 0.05)
    if metric == "postings" or metric.startswith("postings."):
        return ("rel", 0.02)
    return ("rel", 0.10)


def drift(base, fresh, kind, limit):
    """Returns (exceeded, description)."""
    if kind == "abs":
        delta = abs(fresh - base)
        return (delta > limit, "|delta|=%.4f (abs limit %.4f)" % (delta, limit))
    if base == 0.0:
        # No relative scale; any nonzero fresh value on a zero baseline
        # is judged against the absolute value itself being tiny.
        delta = abs(fresh)
        return (delta > 1e-9, "baseline 0, fresh %.6g" % fresh)
    rel = abs(fresh - base) / abs(base)
    return (rel > limit, "rel=%.2f%% (limit %.0f%%)" % (rel * 100.0, limit * 100.0))


def load(path):
    with open(path) as fh:
        doc = json.load(fh)
    if doc.get("schema") != 1:
        raise ValueError("%s: unsupported schema %r" % (path, doc.get("schema")))
    return doc


def compare_bench(name, base_doc, fresh_doc, verbose):
    """Returns a list of failure strings."""
    failures = []
    base_cfgs = base_doc.get("configs", {})
    fresh_cfgs = fresh_doc.get("configs", {})
    for cfg in sorted(set(base_cfgs) | set(fresh_cfgs)):
        if cfg not in fresh_cfgs:
            failures.append("%s: config %r missing from fresh run" % (name, cfg))
            continue
        if cfg not in base_cfgs:
            failures.append("%s: config %r missing from baseline" % (name, cfg))
            continue
        base_m, fresh_m = base_cfgs[cfg], fresh_cfgs[cfg]
        for metric in sorted(set(base_m) | set(fresh_m)):
            if metric not in fresh_m:
                failures.append("%s: %s.%s missing from fresh run" % (name, cfg, metric))
                continue
            if metric not in base_m:
                failures.append("%s: %s.%s missing from baseline" % (name, cfg, metric))
                continue
            kind, limit = threshold_for(metric)
            exceeded, desc = drift(float(base_m[metric]), float(fresh_m[metric]), kind, limit)
            line = "%s: %s.%s %.6g -> %.6g %s" % (
                name, cfg, metric, base_m[metric], fresh_m[metric], desc)
            if exceeded:
                failures.append(line)
            elif verbose:
                print("  ok  " + line)
    return failures


def run_compare(baseline_dir, fresh_dir, require, verbose):
    fresh_paths = sorted(glob.glob(os.path.join(fresh_dir, "BENCH_*.json")))
    if not fresh_paths:
        print("bench_compare: no BENCH_*.json under %s" % fresh_dir, file=sys.stderr)
        return 2

    failures = []
    compared = set()
    for fresh_path in fresh_paths:
        fname = os.path.basename(fresh_path)
        name = fname[len("BENCH_"):-len(".json")]
        base_path = os.path.join(baseline_dir, fname)
        if not os.path.exists(base_path):
            print("bench_compare: %s has no committed baseline; skipping" % fname)
            continue
        failures += compare_bench(name, load(base_path), load(fresh_path), verbose)
        compared.add(name)

    for name in require:
        if name not in compared:
            failures.append("required bench %r was not compared "
                            "(missing fresh output or baseline)" % name)

    if failures:
        print("bench_compare: FAIL (%d)" % len(failures), file=sys.stderr)
        for f in failures:
            print("  " + f, file=sys.stderr)
        return 1
    print("bench_compare: OK (%s)" % (", ".join(sorted(compared)) or "nothing compared"))
    return 0


def self_test():
    """Exercises the gate on synthetic documents; exits non-zero on any
    unexpected verdict."""
    base = {
        "bench": "t", "schema": 1,
        "configs": {"A/w8": {"mean_virtual_ms": 10.0, "postings": 1000.0,
                             "recall": 0.97, "coherence_misses": 50.0,
                             "overhead_pct": 0.001}},
    }

    def fresh_with(**overrides):
        cfg = dict(base["configs"]["A/w8"])
        cfg.update(overrides)
        return {"bench": "t", "schema": 1, "configs": {"A/w8": cfg}}

    cases = [
        ("identical", fresh_with(), 0),
        ("latency +20%", fresh_with(mean_virtual_ms=12.0), 1),
        ("latency -20% (speedup also fails)", fresh_with(mean_virtual_ms=8.0), 1),
        ("latency +4% (within noise)", fresh_with(mean_virtual_ms=10.4), 0),
        ("postings +5%", fresh_with(postings=1050.0), 1),
        ("recall -0.05", fresh_with(recall=0.92), 1),
        ("recall -0.01 (within noise)", fresh_with(recall=0.96), 0),
        ("misses +8% (default 10%)", fresh_with(coherence_misses=54.0), 0),
        ("misses +15%", fresh_with(coherence_misses=57.5), 1),
        ("overhead +0.3pt (abs limit 0.5)", fresh_with(overhead_pct=0.301), 0),
        ("overhead +0.8pt", fresh_with(overhead_pct=0.801), 1),
        ("dropped metric", {"bench": "t", "schema": 1, "configs": {
            "A/w8": {"mean_virtual_ms": 10.0}}}, 1),
        ("dropped config", {"bench": "t", "schema": 1, "configs": {}}, 1),
    ]
    bad = 0
    for label, fresh, want_fail in cases:
        failures = compare_bench("t", base, fresh, verbose=False)
        got_fail = 1 if failures else 0
        verdict = "ok" if got_fail == want_fail else "WRONG"
        if got_fail != want_fail:
            bad += 1
        print("self-test [%s] %-35s expect %s got %s" % (
            verdict, label, "fail" if want_fail else "pass",
            "fail" if got_fail else "pass"))
    if bad:
        print("bench_compare self-test: %d case(s) misjudged" % bad, file=sys.stderr)
        return 1
    print("bench_compare self-test: OK")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline", default="results")
    ap.add_argument("--fresh", default="results/_fresh")
    ap.add_argument("--require", action="append", default=[],
                    help="bench name(s) that must be compared "
                         "(repeatable; each flag accepts a "
                         "comma-separated list)")
    ap.add_argument("--verbose", action="store_true")
    ap.add_argument("--self-test", action="store_true",
                    help="run the built-in threshold/verdict checks and exit")
    args = ap.parse_args()
    if args.self_test:
        sys.exit(self_test())
    # Each --require may carry a comma-separated list; flatten so every
    # missing bench is reported (not just the first flag's).
    require = [name
               for flag in args.require
               for name in (part.strip() for part in flag.split(","))
               if name]
    sys.exit(run_compare(args.baseline, args.fresh, require, args.verbose))


if __name__ == "__main__":
    main()

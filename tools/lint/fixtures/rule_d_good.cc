// Fixture: padded-shared clean — the padding idiom on the element type,
// and a waived deliberately-compact layout.
#include <atomic>
#include <cstdint>
#include <vector>

namespace fixture {

constexpr std::size_t kCacheLine = 64;

struct alignas(kCacheLine) Padded {
  std::atomic<std::uint64_t> value{0};
};

struct ShardCounters {
  std::vector<Padded> per_worker_hits;
  // sparta-lint: allow(padded-shared) deliberately compact: the false
  // sharing on this array is part of the modeled behavior under test.
  std::vector<std::atomic<std::uint64_t>> contended_by_design;
};

}  // namespace fixture

// Fixture: unordered-iter clean — membership tests stay on unordered
// containers; anything iterated is an ordered map, a sorted copy, or
// carries a justified waiver.
#include <algorithm>
#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

namespace fixture {

struct Report {
  std::unordered_map<std::uint64_t, double> scores_;
  std::map<std::uint64_t, double> ordered_;

  bool Has(std::uint64_t doc) const {
    return scores_.find(doc) != scores_.end();
  }

  std::vector<std::uint64_t> SortedDocs() const {
    std::vector<std::uint64_t> docs;
    docs.reserve(scores_.size());
    // sparta-lint: allow(unordered-iter) order-insensitive: collects
    // keys that are immediately sorted below.
    for (const auto& [doc, score] : scores_) docs.push_back(doc);
    std::sort(docs.begin(), docs.end());
    return docs;
  }

  double OrderedSum() const {
    double total = 0.0;
    for (const auto& [doc, score] : ordered_) total += score;
    return total;
  }
};

}  // namespace fixture

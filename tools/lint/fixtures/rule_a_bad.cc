// Fixture: sim-clock violations. Sim-path code reading the host clock
// or an unseeded RNG breaks run-to-run determinism.
#include <chrono>
#include <cstdlib>
#include <random>

namespace fixture {

long WallClockLatency() {
  const auto begin = std::chrono::steady_clock::now();
  const auto end = std::chrono::steady_clock::now();
  return (end - begin).count();
}

int EntropySeed() {
  std::random_device rd;
  return static_cast<int>(rd()) + rand();
}

}  // namespace fixture

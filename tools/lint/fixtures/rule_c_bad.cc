// Fixture: lock-pairing violation — a mutex member that no annotation
// in the file pairs with. The sharing contract it protects is
// invisible to the thread-safety analysis.
#include <cstdint>
#include <mutex>

#define SPARTA_GUARDED_BY(x)

namespace fixture {

class Counterbank {
 public:
  void Bump();

 private:
  std::mutex mutex_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace fixture

// Fixture: trace-guard clean — every pointer emission sits under a
// null check of its own receiver, reference emission is exempt by
// construction, and the one invariantly-non-null pointer carries a
// reasoned waiver.
#include <memory>

namespace fixture {

struct Tracer {
  void AddSpan(int track, int kind, long begin, long end);
  void AddInstant(int track, int kind, long ts);
};

struct FlightRecorder {
  void AddInstant(int track, int kind, long ts);
  void* Trigger(int kind, long at);
};

struct Executor {
  Tracer* tracer();
  FlightRecorder* recorder();
};

// Classic guard: explicit nullptr comparison.
void EmitJobSpan(Executor& exec, long begin, long end) {
  Tracer* tracer = exec.tracer();
  if (tracer != nullptr) {
    tracer->AddSpan(0, 1, begin, end);
  }
}

// If-with-initializer tests the pointer itself.
void EmitRetry(Executor& exec, long ts) {
  if (auto* tracer = exec.tracer()) {
    tracer->AddInstant(0, 2, ts);
  }
}

// Compound condition: the null check shares the if with a capability
// test, and the trigger follows inside the same guard.
void EmitAnomaly(Executor& exec, long at, bool armed) {
  FlightRecorder* recorder = exec.recorder();
  if (recorder != nullptr && armed) {
    recorder->AddInstant(0, 3, at);
    recorder->Trigger(3, at);
  }
}

// Reference receivers cannot be null; dot calls are exempt.
void EmitThroughReference(Tracer& tracer, long begin, long end) {
  tracer.AddSpan(1, 1, begin, end);
}

// Invariantly non-null, and says why.
void EmitOwned(long ts) {
  const auto owned = std::make_unique<Tracer>();
  // sparta-lint: allow(trace-guard) just constructed on the line above;
  // make_unique either returns non-null or throws.
  owned->AddInstant(0, 4, ts);
}

}  // namespace fixture

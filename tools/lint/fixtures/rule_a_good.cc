// Fixture: sim-clock clean. Virtual time flows from the executor and
// randomness is a seeded SplitMix-style generator; mentions of
// steady_clock inside comments or strings must not trip the rule.
#include <cstdint>

namespace fixture {

// The threaded executor maps steady_clock onto VirtualTime; here we
// only consume the already-virtualized stamps.
std::uint64_t Advance(std::uint64_t virtual_now, std::uint64_t charge) {
  return virtual_now + charge;
}

std::uint64_t SeededNext(std::uint64_t state) {
  const char* note = "no system_clock here, honest";
  (void)note;
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  return z ^ (z >> 31);
}

}  // namespace fixture

// Fixture: result-status violation — a SearchResult's entries are
// consumed with no look at its status or coverage anywhere in the
// file, so a deadline partial or shards-degraded merge would silently
// pass for a complete answer.
#include <cstddef>
#include <vector>

namespace fixture {

enum class ResultStatus { kComplete, kPartialDeadline, kShardsDegraded };

struct QueryStats {
  double shard_coverage = 1.0;
};

struct SearchResult {
  std::vector<int> entries;
  ResultStatus status = ResultStatus::kComplete;
  QueryStats stats;
};

SearchResult Search();

// Blind consumer: sums the hits without ever asking whether the result
// covered the whole corpus.
int SumTopDocs() {
  const SearchResult result = Search();
  int sum = 0;
  for (const int doc : result.entries) sum += doc;
  return sum;
}

}  // namespace fixture

// Fixture: unordered-iter violations — range-for and explicit .begin()
// iteration over unordered containers, including a multi-line guarded
// member declaration.
#include <cstdint>
#include <unordered_map>
#include <unordered_set>

namespace fixture {

struct Report {
  std::unordered_map<std::uint64_t, double> scores_;
  std::unordered_set<std::uint64_t>
      flagged_docs_;

  double Sum() const {
    double total = 0.0;
    for (const auto& [doc, score] : scores_) total += score;
    return total;
  }

  std::uint64_t First() const { return *flagged_docs_.begin(); }
};

struct Striped {
  struct Stripe {
    std::unordered_map<std::uint64_t, double> map;
  };
  Stripe stripe;

  double Total() const {
    double total = 0.0;
    for (const auto& [doc, score] : stripe.map) total += score;
    return total;
  }
};

}  // namespace fixture

// Fixture: padded-shared violation — a vector of bare atomics that
// workers hammer concurrently; adjacent elements share cache lines.
#include <atomic>
#include <cstdint>
#include <vector>

namespace fixture {

struct ShardCounters {
  std::vector<std::atomic<std::uint64_t>> per_worker_hits;
};

}  // namespace fixture

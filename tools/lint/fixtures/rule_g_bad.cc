// Fixture: trace-guard violations. Observability handles (tracer,
// flight recorder) are nullptr whenever their layer is off — the
// default — so emitting through an unchecked pointer crashes the
// plain configuration.
#include <cstdint>

namespace fixture {

struct Tracer {
  void AddSpan(int track, int kind, long begin, long end);
  void AddInstant(int track, int kind, long ts);
};

struct FlightRecorder {
  void AddInstant(int track, int kind, long ts);
  void* Trigger(int kind, long at);
};

struct Executor {
  Tracer* tracer();
  FlightRecorder* recorder();
};

// Unguarded emission: tracer() is nullptr when tracing is off.
void EmitJobSpan(Executor& exec, long begin, long end) {
  exec.tracer()->AddSpan(0, 1, begin, end);
}

// The null check is there — but on the wrong pointer.
void EmitAnomaly(Executor& exec, long at) {
  Tracer* tracer = exec.tracer();
  FlightRecorder* recorder = exec.recorder();
  if (tracer != nullptr) {
    recorder->AddInstant(0, 2, at);
    recorder->Trigger(2, at);
  }
}

}  // namespace fixture

// Fixture: private-accumulator violation — a per-worker accumulator
// container indexed by something other than the accessing worker's own
// id (a loop variable and a neighboring worker), sharing "private"
// unsynchronized buffers across workers.
#include <vector>

namespace fixture {

struct LocalAccumulator {
  bool Add(int doc, int term, long score);
};

struct Run {
  std::vector<LocalAccumulator> accumulators_;

  void Process(int num_workers) {
    for (int w = 0; w < num_workers; ++w) {
      accumulators_[w].Add(1, 0, 10);  // not this worker's buffer
    }
  }

  void Steal(int worker_id_of_victim) {
    accumulators_[worker_id_of_victim + 1].Add(2, 0, 20);
  }
};

}  // namespace fixture

// Fixture: private-accumulator clean — every subscript is the accessing
// worker's own id, plus a waived structurally single-threaded drain.
#include <vector>

namespace fixture {

struct LocalAccumulator {
  bool Add(int doc, int term, long score);
  void Clear();
};

struct Worker {
  int worker_id() const { return 0; }
};

struct Run {
  std::vector<LocalAccumulator> accumulators_;

  void Process(Worker& worker) {
    accumulators_[worker.worker_id()].Add(1, 0, 10);
    const int self_id = worker.worker_id();
    accumulators_[self_id].Add(2, 0, 20);
  }

  void DrainAfterJoin(int num_workers) {
    for (int i = 0; i < num_workers; ++i) {
      // sparta-lint: allow(private-accumulator) post-join drain: all
      // workers have exited, this loop is single-threaded by structure.
      accumulators_[i].Clear();
    }
  }
};

}  // namespace fixture

// Fixture: lock-pairing clean — the mutex names the fields it guards,
// and a capability-implementing mutex carries a justified waiver.
#include <cstdint>
#include <mutex>

#define SPARTA_GUARDED_BY(x)

namespace fixture {

class Counterbank {
 public:
  void Bump();

 private:
  std::mutex mutex_;
  std::uint64_t hits_ SPARTA_GUARDED_BY(mutex_) = 0;
  std::uint64_t misses_ SPARTA_GUARDED_BY(mutex_) = 0;
};

class LockShim {
 public:
  void Lock();
  void Unlock();

 private:
  // sparta-lint: allow(lock-pairing) the inner mutex implements the
  // shim's capability itself; there is no separate guarded field.
  std::mutex mutex_;
};

}  // namespace fixture

// Fixture: result-status clean — every entries consumer either checks
// the result's status/coverage first or carries a reasoned waiver for
// a deliberately status-blind access.
#include <cstddef>
#include <vector>

namespace fixture {

enum class ResultStatus { kComplete, kPartialDeadline, kShardsDegraded };

struct QueryStats {
  double shard_coverage = 1.0;
};

struct SearchResult {
  std::vector<int> entries;
  ResultStatus status = ResultStatus::kComplete;
  QueryStats stats;

  bool degraded() const { return status != ResultStatus::kComplete; }
};

SearchResult Search();

// Honest consumer: reports coverage alongside the hits.
int SumTopDocs(double* coverage_out) {
  const SearchResult result = Search();
  if (result.degraded()) {
    *coverage_out = result.stats.shard_coverage;
  }
  int sum = 0;
  for (const int doc : result.entries) sum += doc;
  return sum;
}

// Status-blind by design, and says so.
std::size_t WireBytes() {
  const SearchResult reply = Search();
  // sparta-lint: allow(result-status) size-only read to price the
  // response on the wire; the receiving coordinator judges the status.
  return reply.entries.size() * sizeof(int);
}

}  // namespace fixture

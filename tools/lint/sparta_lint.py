#!/usr/bin/env python3
"""sparta_lint: repo-invariant lint suite for the Sparta codebase.

Seven rules, each guarding an invariant the simulator's determinism,
the lock discipline or the serving tier's honesty depends on
(DESIGN.md §11):

  sim-clock      No wall clocks or nondeterministic randomness in
                 sim-path code. Virtual time comes from the executor;
                 anything reading a real clock (or an unseeded RNG)
                 silently breaks replayability. Only src/exec/ — the
                 real-machine executor — may touch the host clock.

  unordered-iter No iteration over std::unordered_{map,set}. Unordered
                 iteration order is libstdc++-version- and seed-
                 dependent, so any loop feeding traces, reports or
                 goldens from one is a latent golden-file break. Waive
                 only when the loop's consumer is provably
                 order-insensitive (a reduction, nth_element, a heap
                 with a strict total order).

  lock-pairing   Every mutex-like member (Spinlock, util::Mutex,
                 util::SerialDomain, raw std::mutex) must guard
                 something: its name must appear in a SPARTA_GUARDED_BY
                 / PT_GUARDED_BY / REQUIRES / ACQUIRE / RELEASE
                 annotation in the same file. A lock nothing is
                 annotated against is either dead or hiding an
                 unannotated sharing contract. Waive when the mutex
                 implements a capability itself (a CtxLock body) or
                 exists only to pair with a condition variable.

  padded-shared  Containers of atomics (vector/array<std::atomic<..>>)
                 are contended-by-construction and must either use the
                 cache-line padding idiom (alignas(kCacheLine) /
                 a Padded<> element) or carry a waiver explaining why
                 the unpadded layout is intentional (e.g. the paper's
                 deliberately compact UB array, whose false sharing is
                 part of the modeled behavior).

  result-status  A SearchResult's entries must not be consumed blind to
                 the result's honesty fields. Any file that touches
                 X.entries must somewhere consult X.status, X.ok(),
                 X.degraded() or X.stats.shard_* — a deadline partial,
                 fault partial or shards-degraded cluster merge would
                 otherwise pass for a complete answer (the serving
                 contract is "always answer, say how much of the corpus
                 the answer saw"; consuming the answer while dropping
                 the 'how much' breaks it). Waive when the access is
                 status-blind by design (e.g. sizing the response for
                 the wire) or the producer provably never degrades.

  trace-guard    Observability emission through a pointer receiver
                 (X->AddSpan / X->AddInstant / X->Trigger) must sit
                 under a null check of X within the preceding ~30
                 lines. Tracer, flight-recorder and profiler handles
                 are nullptr whenever their layer is off — that IS the
                 off-path contract (obs/trace.h: "off is a null-pointer
                 check") — so an unguarded arrow call is a crash on
                 the default configuration. Calls through references
                 are exempt (a reference was null-checked to exist).
                 Waive where the pointer is invariantly non-null (e.g.
                 just constructed, or checked by the enclosing layer).

  private-accumulator
                 Containers of topk::LocalAccumulator hold one PRIVATE
                 buffer per worker (DESIGN.md §14): the whole point is
                 unsynchronized access, so the only sound subscript is
                 the accessing worker's own id. An index that is not
                 <worker>.worker_id() hands one worker's buffer to
                 another — a data race the clang thread-safety analysis
                 cannot see (the buffers carry no capability). Waive
                 only where single-threaded access is structurally
                 guaranteed (constructor fill, post-join drain).

Waiver syntax, on the offending line or the line above:

    // sparta-lint: allow(<rule>) <reason — mandatory>

Usage:
    sparta_lint.py [paths...]     lint files/dirs (default: <repo>/src)
    sparta_lint.py --self-test    run the fixture suite in tools/lint/fixtures
    sparta_lint.py --list-rules   print rule ids and exit

Exit codes: 0 clean, 1 findings, 2 usage/internal error.

The engine is pure stdlib regex over comment/string-scrubbed source, so
it runs anywhere. When python bindings for libclang are importable AND
--clang-verify is passed, unordered-container declarations are cross-
checked against the AST (belt and braces; regex remains the verdict).
"""

import argparse
import os
import re
import sys

REPO_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", ".."))

RULES = ("sim-clock", "unordered-iter", "lock-pairing", "padded-shared",
         "result-status", "private-accumulator", "trace-guard")

CXX_EXTENSIONS = (".h", ".hpp", ".cc", ".cpp", ".cxx")

# Paths (relative, '/'-normalized) exempt from sim-clock: the threaded
# executor layer is the one place allowed to read the machine clock.
SIM_CLOCK_EXEMPT_DIRS = ("src/exec",)

WAIVER_RE = re.compile(
    r"//\s*sparta-lint:\s*allow\(\s*([a-z0-9-]+(?:\s*,\s*[a-z0-9-]+)*)\s*\)"
    r"\s*(\S.*)?$")

SIM_CLOCK_PATTERNS = (
    (re.compile(r"\bstd::random_device\b"), "std::random_device"),
    (re.compile(r"\bstd::mt19937(_64)?\b"), "std::mt19937"),
    (re.compile(r"\bdefault_random_engine\b"), "default_random_engine"),
    (re.compile(r"(?<![\w:.])s?rand\s*\("), "rand()/srand()"),
    (re.compile(r"\bsystem_clock\b"), "system_clock"),
    (re.compile(r"\bhigh_resolution_clock\b"), "high_resolution_clock"),
    (re.compile(r"\bsteady_clock\b"), "steady_clock"),
    (re.compile(r"\bgettimeofday\s*\("), "gettimeofday"),
    (re.compile(r"\bclock_gettime\s*\("), "clock_gettime"),
    (re.compile(r"(?<![\w:.])time\s*\(\s*(?:NULL|nullptr|0)\s*\)"),
     "time(NULL)"),
)

LOCK_MEMBER_RE = re.compile(
    r"^\s*(?:mutable\s+)?(?:sparta::)?(?:util::|std::)?"
    r"(Spinlock|Mutex|SerialDomain|mutex)\b"
    r"\s+(\w+)\s*(?:SPARTA_GUARDED_BY\s*\([^)]*\)\s*)?[;={]")

ANNOTATION_ARG_RE = re.compile(
    r"SPARTA_(?:GUARDED_BY|PT_GUARDED_BY|REQUIRES|REQUIRES_SHARED|"
    r"ACQUIRE|ACQUIRE_SHARED|RELEASE|TRY_ACQUIRE)\s*\(([^)]*)\)")

ATOMIC_CONTAINER_RE = re.compile(
    r"\b(?:std::)?(?:vector|array)\s*<[^;{}]*\batomic\s*<")

PADDING_IDIOM_RE = re.compile(r"\balignas\s*\(|\bPadded\b|\bkCacheLine\b")

# Declaration of a per-worker accumulator container: the element type
# names LocalAccumulator and the declared identifier follows the
# closing angle bracket.
ACCUMULATOR_CONTAINER_RE = re.compile(
    r"\b(?:std::)?(?:vector|array|deque)\s*<[^;{}]*\bLocalAccumulator\b"
    r"[^;{}]*>\s*(\w+)\s*[;={]")

# A subscript index that resolves to "the accessing worker's own id":
# any receiver chain ending in worker_id(), or a local already named
# worker_id / self_id (the common hoisted form).
OWN_WORKER_INDEX_RE = re.compile(
    r"worker_id\s*\(\s*\)|\b(?:worker_id|self_id|self)\b")

# Member access on a result's entry list, capturing the full dotted
# receiver chain ("sp.result.entries" -> "sp.result").
RESULT_ENTRIES_RE = re.compile(r"\b((?:\w+(?:\.|->))*\w+)(?:\.|->)entries\b")

# Observability emission through a pointer: receiver chain + arrow +
# one of the sink entry points. Dot calls (references) are exempt by
# construction — only `->` can dereference a nullptr handle.
TRACE_EMIT_RE = re.compile(
    r"\b((?:\w+(?:\.|->))*\w+)\s*->\s*(AddSpan|AddInstant|Trigger)\s*\(")

# How many preceding lines may hold the null check. Emission sites sit
# directly inside their guard in this codebase; 30 lines spans the
# largest guarded block without letting a function-entry check excuse
# an emission pages later.
TRACE_GUARD_WINDOW = 30


def trace_guard_patterns(receiver):
    """Regexes that count as null-checking `receiver`."""
    r = re.escape(receiver)
    return (
        re.compile(r + r"\s*(?:!=|==)\s*nullptr"),
        re.compile(r"nullptr\s*(?:!=|==)\s*" + r),
        # if (tracer) / while (tracer) / && tracer) / ternary tracer ?
        re.compile(r"(?:if|while)\s*\(\s*" + r + r"\s*\)"),
        re.compile(r"&&\s*" + r + r"\s*\)"),
        re.compile(r + r"\s*\?"),
        # if-with-initializer: `if (auto* t = ...)` tests the pointer.
        re.compile(r"if\s*\(\s*(?:auto|[\w:]+)\s*\*\s*" + r + r"\s*="),
        re.compile(r"SPARTA_CHECK\s*\(\s*" + r + r"\b"),
    )

# What counts as consulting the result's honesty fields. Bare `.stats`
# access is NOT enough — producers fill counters without ever looking
# at completeness; only the status itself or the shard-coverage fields
# qualify.
STATUS_CONSULT_SUFFIX = (
    r"(?:\.|->)(?:status\b|ok\s*\(|degraded\s*\(|stats(?:\.|->)shard)")


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        rel = os.path.relpath(self.path, REPO_ROOT)
        return "%s:%d: [%s] %s" % (rel, self.line, self.rule, self.message)


def scrub_line(line, in_block_comment):
    """Blank out string/char literals and comments, preserving length is
    not required — only that scanning patterns cannot match inside them.
    Returns (scrubbed, in_block_comment_after)."""
    out = []
    i = 0
    n = len(line)
    while i < n:
        if in_block_comment:
            end = line.find("*/", i)
            if end < 0:
                return "".join(out), True
            i = end + 2
            in_block_comment = False
            continue
        ch = line[i]
        if ch == "/" and i + 1 < n and line[i + 1] == "/":
            break  # line comment: drop the rest
        if ch == "/" and i + 1 < n and line[i + 1] == "*":
            in_block_comment = True
            i += 2
            continue
        if ch == '"' or ch == "'":
            quote = ch
            i += 1
            while i < n:
                if line[i] == "\\":
                    i += 2
                    continue
                if line[i] == quote:
                    i += 1
                    break
                i += 1
            out.append(quote + quote)  # keep an empty literal marker
            continue
        out.append(ch)
        i += 1
    return "".join(out), in_block_comment


def scrub_file(lines):
    """Comment/string-scrubbed copy of every line."""
    scrubbed = []
    in_block = False
    for line in lines:
        clean, in_block = scrub_line(line, in_block)
        scrubbed.append(clean)
    return scrubbed


def collect_waivers(lines):
    """Map line number (1-based) -> set of waived rule ids. A waiver on
    line N covers N itself and the first non-comment line after it, so
    the reason may wrap across several `//` continuation lines."""
    waivers = {}
    for idx, line in enumerate(lines, start=1):
        m = WAIVER_RE.search(line)
        if not m:
            continue
        if not m.group(2):
            # A waiver without a reason is itself a finding; surfaced by
            # the caller via the special rule id below.
            waivers.setdefault(idx, set()).add("__missing_reason__")
            continue
        rules = {r.strip() for r in m.group(1).split(",")}
        covered = [idx]
        nxt = idx  # 0-based index of the line after idx
        while nxt < len(lines) and lines[nxt].lstrip().startswith("//"):
            nxt += 1
        covered.append(nxt + 1)
        for lineno in covered:
            waivers.setdefault(lineno, set()).update(rules)
    return waivers


def waived(waivers, lineno, rule):
    return rule in waivers.get(lineno, ())


def find_unordered_decls(scrubbed):
    """Names of unordered_{map,set} variables declared in the file.
    Bracket-matches the template argument list (handles multi-line
    declarations) and captures the identifier that follows."""
    text = "\n".join(scrubbed)
    names = []
    for m in re.finditer(r"\bunordered_(?:map|set)\s*<", text):
        depth = 1
        i = m.end()
        while i < len(text) and depth > 0:
            if text[i] == "<":
                depth += 1
            elif text[i] == ">":
                depth -= 1
            i += 1
        if depth != 0:
            continue
        tail = text[i:i + 200]
        dm = re.match(r"\s*&?\s*(\w+)", tail)
        if not dm:
            continue
        name = dm.group(1)
        if name in ("const", "SPARTA_GUARDED_BY", "using", "typename"):
            continue
        names.append(name)
    return names


def rule_sim_clock(path, scrubbed, waivers, findings):
    rel = os.path.relpath(path, REPO_ROOT).replace(os.sep, "/")
    for exempt in SIM_CLOCK_EXEMPT_DIRS:
        if rel.startswith(exempt + "/"):
            return
    for lineno, line in enumerate(scrubbed, start=1):
        for pat, label in SIM_CLOCK_PATTERNS:
            if pat.search(line) and not waived(waivers, lineno, "sim-clock"):
                findings.append(Finding(
                    path, lineno, "sim-clock",
                    "%s in sim-path code; virtual time and seeded "
                    "randomness only (real clocks live in src/exec)"
                    % label))


def rule_unordered_iter(path, scrubbed, waivers, findings):
    names = find_unordered_decls(scrubbed)
    if not names:
        return
    alts = "|".join(re.escape(n) for n in sorted(set(names)))
    iter_res = (
        re.compile(r"for\s*\([^;{}()]*:\s*(?:this->|\w+\.)?(%s)\s*\)"
                   % alts),
        re.compile(r"\b(%s)\s*\.\s*c?begin\s*\(" % alts),
    )
    for lineno, line in enumerate(scrubbed, start=1):
        for pat in iter_res:
            m = pat.search(line)
            if m and not waived(waivers, lineno, "unordered-iter"):
                findings.append(Finding(
                    path, lineno, "unordered-iter",
                    "iteration over unordered container '%s': order is "
                    "implementation-defined and breaks golden stability; "
                    "sort first or waive with an order-insensitivity "
                    "argument" % m.group(1)))


def rule_lock_pairing(path, scrubbed, waivers, findings):
    guarded = set()
    text = "\n".join(scrubbed)
    for m in ANNOTATION_ARG_RE.finditer(text):
        for tok in re.findall(r"\w+", m.group(1)):
            guarded.add(tok)
    for lineno, line in enumerate(scrubbed, start=1):
        m = LOCK_MEMBER_RE.match(line)
        if not m:
            continue
        name = m.group(2)
        if name in guarded:
            continue
        if waived(waivers, lineno, "lock-pairing"):
            continue
        findings.append(Finding(
            path, lineno, "lock-pairing",
            "lock member '%s' (%s) has no SPARTA_GUARDED_BY/REQUIRES/"
            "ACQUIRE user in this file: annotate what it guards or "
            "waive with the capability it implements"
            % (name, m.group(1))))


def rule_padded_shared(path, scrubbed, waivers, findings):
    for lineno, line in enumerate(scrubbed, start=1):
        if not ATOMIC_CONTAINER_RE.search(line):
            continue
        if PADDING_IDIOM_RE.search(line):
            continue
        if waived(waivers, lineno, "padded-shared"):
            continue
        findings.append(Finding(
            path, lineno, "padded-shared",
            "container of atomics without the cache-line padding idiom "
            "(alignas(kCacheLine)/Padded<>): contended elements will "
            "false-share; pad or waive citing the intended layout"))


def rule_result_status(path, scrubbed, waivers, findings):
    text = "\n".join(scrubbed)
    checked = {}  # receiver -> consulted?
    for lineno, line in enumerate(scrubbed, start=1):
        for m in RESULT_ENTRIES_RE.finditer(line):
            receiver = m.group(1)
            if receiver not in checked:
                checked[receiver] = re.search(
                    re.escape(receiver) + STATUS_CONSULT_SUFFIX,
                    text) is not None
            if checked[receiver]:
                continue
            if waived(waivers, lineno, "result-status"):
                continue
            findings.append(Finding(
                path, lineno, "result-status",
                "'%s.entries' is consumed but '%s.status' (or ok()/"
                "degraded()/stats.shard_*) is never consulted in this "
                "file: a degraded or shards-degraded partial would pass "
                "for complete; check the status/coverage or waive with "
                "why this access may be status-blind" % (receiver,
                                                         receiver)))


def rule_private_accumulator(path, scrubbed, waivers, findings):
    names = set()
    for line in scrubbed:
        for m in ACCUMULATOR_CONTAINER_RE.finditer(line):
            names.add(m.group(1))
    if not names:
        return
    subscript_re = re.compile(
        r"\b(%s)\s*\[([^\]]*)\]" % "|".join(re.escape(n)
                                            for n in sorted(names)))
    for lineno, line in enumerate(scrubbed, start=1):
        for m in subscript_re.finditer(line):
            if OWN_WORKER_INDEX_RE.search(m.group(2)):
                continue
            if waived(waivers, lineno, "private-accumulator"):
                continue
            findings.append(Finding(
                path, lineno, "private-accumulator",
                "'%s[%s]': a LocalAccumulator container is per-worker "
                "private state; index it with the accessing worker's "
                "own worker_id() or waive with why this access is "
                "single-threaded" % (m.group(1), m.group(2).strip())))


def rule_trace_guard(path, scrubbed, waivers, findings):
    for lineno, line in enumerate(scrubbed, start=1):
        for m in TRACE_EMIT_RE.finditer(line):
            receiver = m.group(1)
            # `this->AddSpan(...)` inside the sink classes themselves.
            if receiver == "this":
                continue
            window = scrubbed[max(0, lineno - 1 - TRACE_GUARD_WINDOW):
                              lineno]
            text = "\n".join(window)
            if any(p.search(text) for p in trace_guard_patterns(receiver)):
                continue
            if waived(waivers, lineno, "trace-guard"):
                continue
            findings.append(Finding(
                path, lineno, "trace-guard",
                "'%s->%s(...)' without a null check of '%s' in the "
                "preceding %d lines: observability handles are nullptr "
                "whenever their layer is off (the default); guard the "
                "emission or waive with why the pointer is invariantly "
                "non-null" % (receiver, m.group(2), receiver,
                              TRACE_GUARD_WINDOW)))


RULE_FUNCS = {
    "sim-clock": rule_sim_clock,
    "unordered-iter": rule_unordered_iter,
    "lock-pairing": rule_lock_pairing,
    "padded-shared": rule_padded_shared,
    "result-status": rule_result_status,
    "private-accumulator": rule_private_accumulator,
    "trace-guard": rule_trace_guard,
}


def lint_file(path, rules=RULES):
    try:
        with open(path, "r", encoding="utf-8", errors="replace") as f:
            lines = f.read().splitlines()
    except OSError as err:
        return [Finding(path, 0, "io", str(err))]
    waivers = collect_waivers(lines)
    scrubbed = scrub_file(lines)
    findings = []
    for lineno, rule_set in waivers.items():
        if "__missing_reason__" in rule_set:
            findings.append(Finding(
                path, lineno, "waiver",
                "sparta-lint waiver without a reason: every allow() must "
                "say why the invariant holds anyway"))
    for rule in rules:
        RULE_FUNCS[rule](path, scrubbed, waivers, findings)
    return findings


def collect_paths(args_paths):
    paths = []
    for p in args_paths:
        if os.path.isdir(p):
            for dirpath, _, filenames in os.walk(p):
                for fn in sorted(filenames):
                    if fn.endswith(CXX_EXTENSIONS):
                        paths.append(os.path.join(dirpath, fn))
        elif os.path.isfile(p):
            paths.append(p)
        else:
            print("sparta_lint: no such path: %s" % p, file=sys.stderr)
            sys.exit(2)
    return sorted(paths)


def clang_verify(paths, verbose):
    """Optional AST cross-check of unordered-container declarations.
    Advisory only: prints discrepancies, never changes the verdict."""
    try:
        from clang import cindex  # type: ignore
    except ImportError:
        if verbose:
            print("sparta_lint: libclang not importable; skipping "
                  "--clang-verify")
        return
    index = cindex.Index.create()
    for path in paths:
        try:
            tu = index.parse(path, args=["-std=c++20",
                                         "-I", os.path.join(REPO_ROOT, "src")])
        except cindex.TranslationUnitLoadError:
            continue
        ast_names = set()
        for cur in tu.cursor.walk_preorder():
            if cur.kind in (cindex.CursorKind.FIELD_DECL,
                            cindex.CursorKind.VAR_DECL):
                if "unordered_" in cur.type.spelling:
                    ast_names.add(cur.spelling)
        with open(path, "r", encoding="utf-8", errors="replace") as f:
            regex_names = set(find_unordered_decls(
                scrub_file(f.read().splitlines())))
        missed = ast_names - regex_names
        if missed and verbose:
            print("sparta_lint: clang-verify: %s: regex missed %s"
                  % (path, sorted(missed)))


# ---------------------------------------------------------------------------
# Self-test over the fixture suite.

FIXTURES = {
    "rule_a_bad.cc": {"sim-clock"},
    "rule_a_good.cc": set(),
    "rule_b_bad.cc": {"unordered-iter"},
    "rule_b_good.cc": set(),
    "rule_c_bad.cc": {"lock-pairing"},
    "rule_c_good.cc": set(),
    "rule_d_bad.cc": {"padded-shared"},
    "rule_d_good.cc": set(),
    "rule_e_bad.cc": {"result-status"},
    "rule_e_good.cc": set(),
    "rule_f_bad.cc": {"private-accumulator"},
    "rule_f_good.cc": set(),
    "rule_g_bad.cc": {"trace-guard"},
    "rule_g_good.cc": set(),
}


def self_test():
    fixture_dir = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                               "fixtures")
    failures = 0
    for name, expected in sorted(FIXTURES.items()):
        path = os.path.join(fixture_dir, name)
        if not os.path.isfile(path):
            print("FAIL %s: fixture missing" % name)
            failures += 1
            continue
        found = lint_file(path)
        got = {f.rule for f in found}
        if got == expected:
            print("PASS %s (%s)" % (name, ", ".join(sorted(got)) or "clean"))
        else:
            print("FAIL %s: expected rules %s, got %s"
                  % (name, sorted(expected), sorted(got)))
            for f in found:
                print("      " + str(f))
            failures += 1
    # The waiver-needs-a-reason invariant is engine-level, not a fixture:
    # exercise it inline.
    waivers = collect_waivers(["// sparta-lint: allow(sim-clock)"])
    if "__missing_reason__" in waivers.get(1, ()):
        print("PASS waiver-reason (reasonless allow() rejected)")
    else:
        print("FAIL waiver-reason: reasonless allow() was accepted")
        failures += 1
    print("%d/%d checks passed"
          % (len(FIXTURES) + 1 - failures, len(FIXTURES) + 1))
    return 1 if failures else 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*",
                        help="files or directories (default: <repo>/src)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the fixture suite and exit")
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("--clang-verify", action="store_true",
                        help="cross-check decls against libclang if present")
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args()

    if args.list_rules:
        for rule in RULES:
            print(rule)
        return 0
    if args.self_test:
        return self_test()

    targets = args.paths or [os.path.join(REPO_ROOT, "src")]
    paths = collect_paths(targets)
    findings = []
    for path in paths:
        findings.extend(lint_file(path))
    if args.clang_verify:
        clang_verify(paths, args.verbose)
    for f in findings:
        print(f)
    if args.verbose and not findings:
        print("sparta_lint: %d files clean" % len(paths))
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())

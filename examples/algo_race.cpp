// Algorithm race: one query, every algorithm, side by side — on both the
// simulated 12-core machine (deterministic virtual time) and real
// threads (wall-clock). Useful for getting a feel for how the two
// execution backends relate.
//
//   $ ./algo_race [terms] [k]
#include <cstdio>
#include <cstdlib>

#include "baselines/registry.h"
#include "corpus/query_log.h"
#include "corpus/synthetic.h"
#include "exec/threaded_executor.h"
#include "index/builder.h"
#include "sim/sim_executor.h"
#include "topk/oracle.h"
#include "topk/recall.h"

int main(int argc, char** argv) {
  using namespace sparta;

  const std::size_t terms = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 8;
  const int k = argc > 2 ? std::atoi(argv[2]) : 100;

  corpus::SyntheticCorpusSpec spec;
  spec.num_docs = 50'000;
  spec.vocab_size = 20'000;
  spec.seed = 0xACE;
  std::printf("building a %u-document corpus...\n", spec.num_docs);
  const auto idx = index::FinalizeIndex(corpus::GenerateRawCorpus(spec));

  corpus::QueryLogSpec qs;
  qs.alpha = 1.0;
  qs.min_df = 32;
  qs.queries_per_length = 1;
  const corpus::QueryLog log(idx, qs, &spec);
  const auto& query = log.OfLength(static_cast<int>(terms))[0];
  const auto oracle = topk::ComputeExactTopK(idx, query, k);

  const int workers = static_cast<int>(terms);
  std::printf("\n%zu-term query, k=%d, %d workers\n", terms, k, workers);
  std::printf("%-10s | %12s %9s | %12s %9s | %10s\n", "algorithm",
              "sim_ms", "recall", "real_ms", "recall", "postings");

  for (const auto name : algos::AllAlgorithms()) {
    const auto algo = algos::MakeAlgorithm(name);
    topk::SearchParams params;
    params.k = k;

    sim::SimConfig config;
    config.num_workers = workers;
    sim::SimExecutor sim_exec(config);
    auto sim_ctx = sim_exec.CreateQuery();
    const auto sim_res = algo->Run(idx, query, params, *sim_ctx);
    const double sim_ms =
        static_cast<double>(sim_ctx->end_time() - sim_ctx->start_time()) /
        1e6;

    exec::ThreadedExecutor thr_exec({.num_workers = workers, .trace = {}});
    auto thr_ctx = thr_exec.CreateQuery();
    const auto thr_res = algo->Run(idx, query, params, *thr_ctx);
    const double thr_ms =
        static_cast<double>(thr_ctx->end_time() - thr_ctx->start_time()) /
        1e6;

    std::printf("%-10s | %12.3f %8.1f%% | %12.3f %8.1f%% | %10llu\n",
                std::string(name).c_str(), sim_ms,
                topk::Recall(oracle, sim_res.entries) * 100.0, thr_ms,
                topk::Recall(oracle, thr_res.entries) * 100.0,
                static_cast<unsigned long long>(
                    sim_res.stats.postings_processed));
  }
  return 0;
}

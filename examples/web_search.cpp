// Web search at benchmark scale: loads (or builds) the ClueWeb-sim
// corpus, runs a mixed set of queries through Sparta and the strongest
// baselines on the simulated 12-core machine, and prints a side-by-side
// comparison — a miniature of the paper's case study (§5).
//
//   $ ./web_search [num_queries]
#include <cstdio>
#include <cstdlib>

#include "baselines/registry.h"
#include "corpus/datasets.h"
#include "driver/bench_driver.h"
#include "driver/experiment.h"

int main(int argc, char** argv) {
  using namespace sparta;

  const std::size_t num_queries =
      argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 30;

  const auto& ds = corpus::GetDataset(corpus::ClueWebSimSpec());
  driver::BenchDriver bench(ds);
  std::printf("corpus: %u documents, %u terms, %llu postings\n\n",
              ds.index().num_docs(), ds.index().num_terms(),
              static_cast<unsigned long long>(
                  ds.index().total_postings()));

  // A verbose-query workload: 10-term queries, one worker per term.
  const auto& queries = ds.queries().OfLength(10);
  const std::span<const corpus::Query> span{
      queries.data(), std::min(num_queries, queries.size())};

  std::printf("%-14s %10s %10s %10s %8s\n", "variant", "mean_ms",
              "p95_ms", "recall", "oom");
  auto variants = driver::HighRecallVariants();
  for (const auto& v : driver::LowRecallVariants()) variants.push_back(v);
  for (const auto& variant : variants) {
    const auto algo = algos::MakeAlgorithm(variant.algorithm);
    const auto res = bench.MeasureLatency(*algo, span, variant.params,
                                          driver::WorkersFor(10));
    std::printf("%-14s %10.2f %10.2f %9.1f%% %8zu\n",
                variant.label.c_str(), res.MeanMs(), res.P95Ms(),
                res.mean_recall * 100.0, res.oom);
  }

  // Show one concrete result list.
  const auto sparta_algo = algos::MakeAlgorithm("Sparta");
  sim::SimExecutor executor(bench.MakeSimConfig(10));
  auto ctx = executor.CreateQuery();
  topk::SearchParams params;
  params.k = 10;
  const auto result =
      sparta_algo->Run(ds.index(), span[0], params, *ctx);
  std::printf("\nSparta-exact top-10 for query [");
  for (const TermId t : span[0]) std::printf(" %u", t);
  std::printf(" ]:\n");
  for (const auto& e : result.entries) {
    std::printf("  doc %-8u score %.4f\n", e.doc,
                static_cast<double>(e.score) / 1e6);
  }
  return 0;
}

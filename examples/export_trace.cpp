// Exports a Chrome/Perfetto trace of one Sparta query on the simulated
// 4-worker machine and prints the where-the-time-goes attribution
// table.
//
//   ./export_trace [out.json]
//
// Open the JSON in ui.perfetto.dev or chrome://tracing: tids 0..3 are
// the worker tracks (spans nest: job > postings.scan / docmap.access /
// heap.update > io.read / lock.wait), tid 4 is the scheduler track
// (queue waits), tid 5 the serving track (idle here — no admission
// queue in single-query mode).
#include <fstream>
#include <iostream>
#include <vector>

#include "baselines/registry.h"
#include "corpus/synthetic.h"
#include "driver/bench_driver.h"
#include "index/builder.h"

int main(int argc, char** argv) {
  using namespace sparta;
  const std::string out_path =
      argc > 1 ? argv[1] : "trace_sparta_w4.json";

  // A mid-size deterministic synthetic corpus: big enough that the
  // attribution table has non-trivial milliseconds, small enough that
  // the exported JSON stays a few hundred KB.
  corpus::SyntheticCorpusSpec spec;
  spec.num_docs = 20000;
  spec.vocab_size = 2000;
  spec.mean_unique_terms = 25.0;
  spec.seed = 7;
  const auto idx = index::FinalizeIndex(corpus::GenerateRawCorpus(spec));

  // Three reasonably popular query terms spread over the vocabulary,
  // so each worker shard sees real postings work.
  std::vector<TermId> candidates;
  for (TermId t = 0; t < idx.num_terms(); ++t) {
    if (idx.Entry(t).df >= 256) candidates.push_back(t);
  }
  const std::size_t stride = candidates.size() / 4;
  const std::vector<TermId> terms = {candidates[stride],
                                     candidates[2 * stride],
                                     candidates[3 * stride]};

  topk::SearchParams params;
  params.k = 10;

  sim::SimConfig config;
  config.num_workers = 4;
  // Address-independent cost model so regenerating this trace is
  // byte-stable across runs and machines (see obs/trace.h).
  config.costs.coherence_miss = config.costs.l1_hit;

  const auto algo = algos::MakeAlgorithm("Sparta");
  const driver::TraceReport report =
      driver::TraceSingleQuery(idx, *algo, terms, params, config);

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  out << report.json;
  out.close();

  std::cout << "query: " << terms.size() << " terms, k=" << params.k
            << ", 4 workers, latency "
            << static_cast<double>(report.latency) / 1e6 << " ms, "
            << report.result.entries.size() << " results ("
            << report.result.stats.postings_processed << "/"
            << report.result.stats.postings_total << " postings)\n";
  driver::AttributionTable(report).Print(std::cout);
  std::cout << "trace written to " << out_path
            << " — open in ui.perfetto.dev\n";
  return 0;
}

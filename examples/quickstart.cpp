// Quickstart: build an index from documents, run a Sparta top-k query.
//
//   $ ./quickstart
//
// Demonstrates the minimal end-to-end path of the library: text ->
// IndexBuilder -> InvertedIndex -> Sparta on real threads.
#include <cstdio>
#include <string>
#include <vector>

#include "core/sparta.h"
#include "exec/threaded_executor.h"
#include "index/builder.h"

int main() {
  using namespace sparta;

  // 1. Index a few documents (the builder tokenizes, lowercases, and
  //    removes stop words, like the paper's Lucene preprocessing).
  index::IndexBuilder builder;
  const std::vector<std::string> docs = {
      "Sparta is a scalable parallel threshold algorithm for top-k "
      "retrieval on multi-core hardware",
      "The threshold algorithm retrieves the top k objects from a "
      "database by aggregating per-feature scores",
      "Web search engines evaluate long verbose queries against "
      "inverted indexes of billions of documents",
      "Posting lists can be traversed in document order or in impact "
      "order sorted by decreasing term score",
      "Approximate query evaluation trades a little recall for much "
      "lower latency in interactive search",
      "Multi-core parallel query evaluation needs careful synchronization "
      "to avoid contention on shared state",
  };
  for (const auto& doc : docs) builder.AddDocument(doc);
  const auto& vocab = builder.vocabulary();
  const auto idx = builder.Build();
  std::printf("indexed %u documents, %u terms, %llu postings\n",
              idx.num_docs(), idx.num_terms(),
              static_cast<unsigned long long>(idx.total_postings()));

  // 2. Formulate a query by term ids.
  std::vector<TermId> query;
  for (const char* word : {"parallel", "top", "algorithm", "search"}) {
    if (const auto t = vocab.Lookup(word)) query.push_back(*t);
  }

  // 3. Run Sparta on a real thread pool (one worker per query term).
  exec::ThreadedExecutor executor(
      {.num_workers = static_cast<int>(query.size()), .trace = {}});
  auto ctx = executor.CreateQuery();
  topk::SearchParams params;
  params.k = 3;
  const core::Sparta sparta;
  const auto result = sparta.Run(idx, query, params, *ctx);

  // 4. Print the top-k.
  std::printf("top-%d results (%zu found):\n", params.k,
              result.entries.size());
  for (const auto& entry : result.entries) {
    std::printf("  doc %u  score %.4f  \"%.60s...\"\n", entry.doc,
                static_cast<double>(entry.score) / 1e6,
                docs[entry.doc].c_str());
  }
  std::printf("postings processed: %llu, heap inserts: %llu\n",
              static_cast<unsigned long long>(
                  result.stats.postings_processed),
              static_cast<unsigned long long>(result.stats.heap_inserts));
  return 0;
}

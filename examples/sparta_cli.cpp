// sparta_cli — build indexes from text and serve top-k queries from the
// command line.
//
//   sparta_cli build <docs.txt> <index-prefix>
//       One document per line; writes <prefix>.idx and <prefix>.vocab.
//   sparta_cli gen <num_docs> <docs.txt>
//       Generates a synthetic web-like text corpus.
//   sparta_cli stats <index-prefix>
//   sparta_cli query <index-prefix> "<terms ...>" [k] [algo] [threads]
//       algo in {Sparta, pBMW, pJASS, pRA, sNRA, pNRA, BMW, WAND,
//       MaxScore, JASS, TA-RA, TA-NRA}; default Sparta.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "baselines/registry.h"
#include "corpus/synthetic.h"
#include "exec/threaded_executor.h"
#include "index/builder.h"
#include "index/compression.h"
#include "index/disk_format.h"

namespace {

using namespace sparta;

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  sparta_cli gen <num_docs> <docs.txt>\n"
               "  sparta_cli build <docs.txt> <index-prefix>\n"
               "  sparta_cli stats <index-prefix>\n"
               "  sparta_cli query <index-prefix> \"<terms>\" "
               "[k] [algo] [threads]\n");
  return 2;
}

int Gen(int argc, char** argv) {
  if (argc < 4) return Usage();
  corpus::SyntheticCorpusSpec spec;
  spec.num_docs = static_cast<std::uint32_t>(std::atoi(argv[2]));
  spec.vocab_size = std::max(500u, spec.num_docs / 3);
  const auto docs = corpus::GenerateTextCorpus(spec);
  std::ofstream out(argv[3]);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", argv[3]);
    return 1;
  }
  for (const auto& doc : docs) out << doc << '\n';
  std::printf("wrote %zu documents to %s\n", docs.size(), argv[3]);
  return 0;
}

int Build(int argc, char** argv) {
  if (argc < 4) return Usage();
  std::ifstream in(argv[2]);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", argv[2]);
    return 1;
  }
  index::IndexBuilder builder;
  std::string line;
  while (std::getline(in, line)) builder.AddDocument(line);
  const std::string prefix = argv[3];
  if (!builder.vocabulary().SaveToFile(prefix + ".vocab")) {
    std::fprintf(stderr, "cannot write %s.vocab\n", prefix.c_str());
    return 1;
  }
  const auto idx = builder.Build();
  if (!index::SaveIndex(idx, prefix + ".idx")) {
    std::fprintf(stderr, "cannot write %s.idx\n", prefix.c_str());
    return 1;
  }
  std::printf("indexed %u docs, %u terms, %llu postings -> %s.idx\n",
              idx.num_docs(), idx.num_terms(),
              static_cast<unsigned long long>(idx.total_postings()),
              prefix.c_str());
  return 0;
}

int Stats(int argc, char** argv) {
  if (argc < 3) return Usage();
  const std::string prefix = argv[2];
  const auto idx = index::LoadIndex(prefix + ".idx");
  if (!idx) {
    std::fprintf(stderr, "cannot load %s.idx\n", prefix.c_str());
    return 1;
  }
  std::printf("documents: %u\nterms: %u\npostings: %llu\n"
              "avg doc length: %.1f\nindex bytes: %llu\n",
              idx->num_docs(), idx->num_terms(),
              static_cast<unsigned long long>(idx->total_postings()),
              idx->avg_doc_len(),
              static_cast<unsigned long long>(idx->SizeBytes()));
  const auto report = index::MeasureIndexCompression(*idx);
  std::printf("varint-compressible to: doc-order %.0f%%, impact %.0f%%\n",
              report.DocOrderRatio() * 100.0,
              report.ImpactOrderRatio() * 100.0);
  return 0;
}

int Query(int argc, char** argv) {
  if (argc < 4) return Usage();
  const std::string prefix = argv[2];
  auto idx = index::LoadIndex(prefix + ".idx");
  auto vocab = text::Vocabulary::LoadFromFile(prefix + ".vocab");
  if (!idx || !vocab) {
    std::fprintf(stderr, "cannot load %s.{idx,vocab}\n", prefix.c_str());
    return 1;
  }
  const int k = argc > 4 ? std::atoi(argv[4]) : 10;
  const std::string algo_name = argc > 5 ? argv[5] : "Sparta";
  const auto algo = algos::MakeAlgorithm(algo_name);
  if (algo == nullptr) {
    std::fprintf(stderr, "unknown algorithm '%s'\n", algo_name.c_str());
    return 1;
  }

  const text::Tokenizer tokenizer;
  std::vector<TermId> terms;
  for (const auto& token : tokenizer.Tokenize(argv[3])) {
    if (const auto t = vocab->Lookup(token)) {
      terms.push_back(*t);
    } else {
      std::fprintf(stderr, "(term '%s' not in index, skipped)\n",
                   token.c_str());
    }
  }
  if (terms.empty()) {
    std::fprintf(stderr, "no query terms matched the index\n");
    return 1;
  }
  const int threads = argc > 6 ? std::atoi(argv[6])
                               : static_cast<int>(terms.size());

  exec::ThreadedExecutor executor({.num_workers = std::max(1, threads), .trace = {}});
  auto ctx = executor.CreateQuery();
  topk::SearchParams params;
  params.k = std::max(1, k);
  const auto result = algo->Run(*idx, terms, params, *ctx);
  if (!result.ok()) {
    std::fprintf(stderr, "query aborted (out of memory budget)\n");
    return 1;
  }
  std::printf("%s: %zu results in %.2f ms (%llu postings)\n",
              algo_name.c_str(), result.entries.size(),
              static_cast<double>(ctx->end_time() - ctx->start_time()) /
                  1e6,
              static_cast<unsigned long long>(
                  result.stats.postings_processed));
  for (std::size_t i = 0; i < result.entries.size(); ++i) {
    std::printf("%3zu. doc %-10u score %.4f\n", i + 1,
                result.entries[i].doc,
                static_cast<double>(result.entries[i].score) / 1e6);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string cmd = argv[1];
  if (cmd == "gen") return Gen(argc, argv);
  if (cmd == "build") return Build(argc, argv);
  if (cmd == "stats") return Stats(argc, argv);
  if (cmd == "query") return Query(argc, argv);
  return Usage();
}

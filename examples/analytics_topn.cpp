// Real-time analytics TopN — the paper's motivating non-search scenario
// (§1): "a real-time analytics engine might keep daily lists of
// application access statistics – the number of users accessing every
// application on a given day. A query may then retrieve the popular
// applications over a ten-day period by aggregating over ten lists."
//
// Here the "documents" are applications, the "terms" are days, and the
// per-day term score is the (scaled) access count. Sparta's top-k over
// the ten impact-ordered daily lists is exactly the analytics TopN
// primitive (Druid's, for instance).
//
//   $ ./analytics_topn
#include <cstdio>
#include <vector>

#include "core/sparta.h"
#include "exec/threaded_executor.h"
#include "index/builder.h"
#include "topk/oracle.h"
#include "topk/recall.h"
#include "util/rng.h"
#include "util/zipf.h"

int main() {
  using namespace sparta;

  constexpr std::uint32_t kApps = 50'000;
  constexpr std::uint32_t kDays = 10;
  constexpr int kTopN = 20;

  // Synthesize daily access counts: app popularity is Zipfian and drifts
  // day over day (apps trend up and down).
  util::Rng rng(2026'07'05);
  const auto base_popularity =
      util::ZipfMandelbrotWeights(kApps, 1.05, 10.0);
  std::vector<double> drift(kApps, 1.0);

  index::RawIndexData raw;
  raw.num_docs = kApps;
  raw.doc_lengths.assign(kApps, 1);  // no length normalization for counts
  raw.term_postings.resize(kDays);
  for (std::uint32_t day = 0; day < kDays; ++day) {
    auto& list = raw.term_postings[day];
    for (std::uint32_t app = 0; app < kApps; ++app) {
      drift[app] *= 0.9 + 0.2 * rng.NextDouble();  // random walk
      const double users =
          base_popularity[app] * drift[app] * 5e7;
      const auto count = static_cast<std::uint32_t>(users);
      if (count > 0) {
        list.push_back(index::RawPosting{app, count});
      }
    }
  }
  // Count-proportional scoring: with b = 0 and a saturation constant far
  // above any count, tf/(tf + k) ~ tf/k — i.e. the score is proportional
  // to the access count and the TopN ranking is the count ranking.
  index::ScorerParams scorer;
  scorer.k = 1e6;
  scorer.b = 0.0;
  auto idx = index::FinalizeIndex(std::move(raw), scorer);
  std::printf("indexed %u apps x %u days, %llu postings\n", kApps, kDays,
              static_cast<unsigned long long>(idx.total_postings()));

  // TopN over the ten-day window = top-k query whose terms are the days.
  std::vector<TermId> window(kDays);
  for (std::uint32_t d = 0; d < kDays; ++d) window[d] = d;

  exec::ThreadedExecutor executor({.num_workers = kDays, .trace = {}});
  auto ctx = executor.CreateQuery();
  topk::SearchParams params;
  params.k = kTopN;
  const core::Sparta sparta;
  const auto result = sparta.Run(idx, window, params, *ctx);

  const auto exact = topk::ComputeExactTopK(idx, window, kTopN);
  std::printf("top-%d apps over the %u-day window "
              "(recall vs oracle: %.0f%%):\n",
              kTopN, kDays,
              topk::Recall(exact, result.entries) * 100.0);
  for (std::size_t i = 0; i < result.entries.size(); ++i) {
    std::printf("  #%2zu app %-7u aggregate score %lld\n", i + 1,
                result.entries[i].doc,
                static_cast<long long>(result.entries[i].score));
  }
  std::printf("postings touched: %llu of %llu\n",
              static_cast<unsigned long long>(
                  result.stats.postings_processed),
              static_cast<unsigned long long>(idx.total_postings()));
  return 0;
}

// Observability overhead: what always-on recording costs (DESIGN.md
// §15, EXPERIMENTS.md "obs overhead").
//
// The flight recorder's contract is "cheap enough to leave on": every
// machine-context emission charges a modeled record_cost_ns to the
// emitting worker's virtual clock, so its overhead is not an article of
// faith but a measurable part of latency. This bench runs the same
// w8 latency workload three ways —
//   baseline       — recorder off, tracer off (the production default
//                    before this layer existed; off-path emission is a
//                    null-pointer check);
//   flight         — recorder on at the default 25 ns/event;
//   flight+trace   — recorder on AND the unbounded lab tracer on (the
//                    tracer charges nothing, so this row demonstrates
//                    that tracing stays free while recording is priced);
// and gates the recorder's mean-latency overhead under 5%. The
// workload is fixed-size (SPARTA_QUICK is ignored), so the committed
// results/BENCH_obs_overhead.json is byte-identical across runs and
// sits under the tools/bench_compare.py perf gate.
#include <string>

#include "bench_common.h"

namespace sparta::bench {
namespace {

constexpr int kWorkers = 8;
constexpr std::size_t kQueries = 20;

void Run() {
  const corpus::Dataset& ds = Cw();
  driver::BenchDriver bench(ds);
  const auto& bucket = ds.queries().OfLength(12);
  const std::span<const corpus::Query> queries{
      bucket.data(), std::min<std::size_t>(kQueries, bucket.size())};
  const auto algo = algos::MakeAlgorithm("Sparta");
  SPARTA_CHECK(algo != nullptr);
  topk::SearchParams params;
  params.k = driver::DefaultK();

  struct Mode {
    std::string name;
    bool flight = false;
    bool trace = false;
  };
  const Mode modes[] = {
      {"baseline", false, false},
      {"flight", true, false},
      {"flight+trace", true, true},
  };

  driver::Table table("obs overhead: always-on flight recorder at w8",
                      {"mode", "mean_ms", "p95_ms", "p99_ms",
                       "overhead_pct"});
  driver::BenchJson json("obs_overhead");

  double baseline_mean = 0.0;
  double flight_mean = 0.0;
  for (const Mode& mode : modes) {
    auto config = bench.MakeSimConfig(kWorkers);
    // Address-independent cost model (see sim/sim_executor.h): the
    // coherence model keys cache lines by real heap addresses, and the
    // tracer/recorder rings shift the allocator layout by enough to
    // move latency ~0.1% run-shape-to-run-shape — the same order as
    // the recording cost itself. Pricing coherence misses like L1 hits
    // removes that jitter so the three modes differ by exactly the
    // recorder's modeled charges, the quantity this bench gates.
    config.costs.coherence_miss = config.costs.l1_hit;
    config.costs.remote_coherence_miss = config.costs.l1_hit;
    config.flight.enabled = mode.flight;
    config.trace.enabled = mode.trace;
    const auto res =
        bench.MeasureLatency(*algo, queries, params, config, false);
    SPARTA_CHECK(res.oom == 0);
    const double mean = res.MeanMs();
    if (mode.name == "baseline") baseline_mean = mean;
    if (mode.name == "flight") flight_mean = mean;
    // Tracing charges nothing, so the flight+trace run must land on
    // the flight run's clock exactly (the obs/trace.h contract).
    if (mode.trace) SPARTA_CHECK(mean == flight_mean);
    const double overhead_pct =
        baseline_mean > 0.0 ? (mean / baseline_mean - 1.0) * 100.0 : 0.0;

    const std::string cfg = "Sparta/w" + std::to_string(kWorkers) + "/" +
                            mode.name;
    json.Set(cfg, "mean_virtual_ms", mean);
    json.Set(cfg, "p99_virtual_ms", res.P99Ms());
    json.Set(cfg, "overhead_pct", overhead_pct);

    table.AddRow({mode.name, driver::FormatF(mean, 3),
                  driver::FormatF(res.P95Ms(), 3),
                  driver::FormatF(res.P99Ms(), 3),
                  driver::FormatF(overhead_pct, 3)});
    std::cerr << "  [obs_overhead] " << mode.name << " mean "
              << driver::FormatF(mean, 3) << " ms (+"
              << driver::FormatF(overhead_pct, 3) << "%)\n";

    // The always-on guarantee, enforced: recording at the modeled
    // per-event cost moves mean virtual latency by less than 5% (and
    // never speeds a run up — charges only add).
    if (mode.flight) {
      SPARTA_CHECK(overhead_pct >= 0.0);
      SPARTA_CHECK(overhead_pct < 5.0);
    }
  }

  Emit(table);
  EmitJson(json);
}

}  // namespace
}  // namespace sparta::bench

int main() { sparta::bench::Run(); }

// Contention profile: Sparta vs pRA as workers scale, with and without
// private accumulators.
//
// The paper's §4.2 argument for the striped document map is that pRA's
// shared map serializes workers on hot stripes while Sparta's UB-pruned
// traversal touches it far less. This bench makes that visible: the
// high-recall variants and their contention-minimal "+acc" twins
// (DESIGN.md §14: per-worker private accumulators merged at segment
// boundaries) run the same 12-term queries at 1/2/4/8/16 workers on a
// profiled simulator, and the per-structure contention report
// (coherence misses, invalidations, lock waits attributed to named
// structures) plus the virtual-time flamegraph are written next to the
// latency numbers. A two-domain NUMA pass at w8 adds the local/remote
// miss split (rm.miss) for the stripe-placement experiments.
//
// Everything here is virtual-time and — because the profiler keys cache
// lines by registered structure, not by heap address — byte-identical
// across runs. results/BENCH_contention.json is therefore the perf
// baseline that tools/bench_compare.py gates CI against; the query
// count is fixed (SPARTA_QUICK is ignored) so a smoke run produces the
// exact committed numbers.
#include <filesystem>
#include <fstream>

#include "bench_common.h"

namespace sparta::bench {
namespace {

constexpr std::size_t kQueries = 10;
constexpr int kQueryLen = 12;
constexpr exec::VirtualTime kSamplePeriod = 10'000;  // 10 us

std::span<const corpus::Query> FixedQueries(const corpus::Dataset& ds) {
  const auto& bucket = ds.queries().OfLength(kQueryLen);
  return {bucket.data(), std::min(kQueries, bucket.size())};
}

/// The two variants whose docMap behaviour the paper contrasts, plus
/// their private-accumulator twins (identical parameters; only the
/// synchronization pattern differs, and the differential suite proves
/// the results bit-equal).
std::vector<driver::AlgoVariant> Variants() {
  std::vector<driver::AlgoVariant> out;
  for (const auto& v : driver::HighRecallVariants()) {
    if (v.algorithm == "Sparta" || v.algorithm == "pRA") {
      out.push_back(v);
      driver::AlgoVariant acc = v;
      acc.algorithm += "+acc";
      acc.label += "+acc";
      out.push_back(acc);
    }
  }
  return out;
}

std::uint64_t TotalSamples(const driver::ProfileResult& res) {
  std::uint64_t n = 0;
  for (const auto& row : res.self_times) n += row.samples;
  return n;
}

void WriteText(const std::string& path, const std::string& text) {
  std::error_code ec;
  std::filesystem::create_directories(
      std::filesystem::path(path).parent_path(), ec);
  std::ofstream out(path);
  if (!out || !(out << text)) {
    std::cerr << "warning: could not write " << path << "\n";
  }
}

void Run() {
  const auto& ds = Cw();
  driver::BenchDriver bench(ds);
  const auto queries = FixedQueries(ds);
  const auto variants = Variants();

  driver::Table table(
      "contention: Sparta vs pRA, 12-term queries, " + ds.spec().name,
      {"config", "mean_ms", "misses", "lock_wait_ms", "samples"});
  driver::BenchJson json("contention");
  std::string w8_reports;

  for (const int workers : {1, 2, 4, 8, 16}) {
    // numa_domains = 1 everywhere, plus a two-socket pass at w8 that
    // exposes the local/remote miss split.
    for (const int numa_domains : {1, 2}) {
      if (numa_domains == 2 && workers != 8) continue;
      for (const auto& variant : variants) {
        const auto algo = algos::MakeAlgorithm(variant.algorithm);
        sim::SimConfig config = bench.MakeSimConfig(workers);
        config.costs.numa_domains = numa_domains;
        config.profile.contention = true;
        config.profile.sample_period = kSamplePeriod;
        const auto res = bench.ProfileLatency(*algo, queries,
                                              variant.params, config);

        std::string name =
            variant.algorithm + "/w" + std::to_string(workers);
        if (numa_domains > 1) {
          name += "/numa" + std::to_string(numa_domains);
        }
        const double lock_wait_ms =
            static_cast<double>(res.contention.total_lock_wait_ns) / 1e6;
        json.SetLatency(name, res.latency);
        json.Set(name, "coherence_misses",
                 static_cast<double>(res.contention.total_misses));
        json.Set(name, "lock_wait_virtual_ms", lock_wait_ms);
        for (const auto& s : res.contention.structures) {
          // Per-structure breakdown for the stacked-bar plot.
          json.Set(name, "misses." + s.name,
                   static_cast<double>(s.misses()));
          json.Set(name, "lock_wait_virtual_ms." + s.name,
                   static_cast<double>(s.lock_wait_ns) / 1e6);
          if (numa_domains > 1) {
            json.Set(name, "remote_misses." + s.name,
                     static_cast<double>(s.remote_misses));
          }
        }
        table.AddRow({name, driver::FormatF(res.latency.MeanMs(), 2),
                      std::to_string(res.contention.total_misses),
                      driver::FormatF(lock_wait_ms, 3),
                      std::to_string(TotalSamples(res))});
        std::cerr << "  [contention] " << name << " done\n";

        // Committed goldens: the side-by-side w8 report (single-domain
        // pass) and the w4 Sparta folded stacks (FlameGraph /
        // speedscope input).
        if (workers == 8 && numa_domains == 1) {
          if (!w8_reports.empty()) w8_reports += "\n";
          w8_reports += driver::RenderProfileReport(
              res, variant.algorithm + ", 12-term queries, w8");
        }
        if (workers == 4 && variant.algorithm == "Sparta") {
          WriteText(ResultsDir() + "/flame_sparta_w4.folded", res.folded);
        }
      }
    }
  }

  WriteText(ResultsDir() + "/contention_sparta_vs_pra_w8.txt",
            w8_reports);
  Emit(table);
  EmitJson(json);
}

}  // namespace
}  // namespace sparta::bench

int main() { sparta::bench::Run(); }

// Figures 3f-3g: recall dynamics — how the top-k result set accrues over
// the running time of 12-term queries (12 workers), reconstructed from
// heap-update traces of the *exact* runs (identical to the approximate
// runs until they stop, §5.3.2). Expected shapes: Sparta's recall grows
// fastest with diminishing returns; pRA converges later but finishes
// sharply; pBMW accrues near-linearly; pJASS tracks Sparta but slower.
// pBMW is additionally plotted with f=5 and f=10, which alter results
// from the outset.
#include "bench_common.h"

namespace sparta::bench {
namespace {

struct Curve {
  std::string label;
  std::string algorithm;
  topk::SearchParams params;
};

void RunDataset(const corpus::Dataset& ds, std::string_view fig) {
  driver::BenchDriver bench(ds);
  const auto queries =
      Take(ds.queries().OfLength(12), driver::QuickMode() ? 20 : 20);

  std::vector<Curve> curves;
  topk::SearchParams base;
  base.k = driver::DefaultK();
  for (const char* name : {"Sparta", "pRA", "pJASS"}) {
    curves.push_back({std::string(name) + "-exact", name, base});
  }
  {
    auto f = base;
    curves.push_back({"pBMW-exact", "pBMW", f});
    f.f = 5.0;
    curves.push_back({"pBMW-high", "pBMW", f});
    f.f = 10.0;
    curves.push_back({"pBMW-low", "pBMW", f});
  }

  // Sample grid in virtual milliseconds (log-ish spacing).
  std::vector<exec::VirtualTime> offsets;
  for (const double ms : {0.02, 0.05, 0.1, 0.2, 0.4, 0.7, 1.0, 1.5, 2.0,
                          3.0, 5.0, 8.0, 12.0, 20.0, 35.0, 60.0, 100.0}) {
    offsets.push_back(static_cast<exec::VirtualTime>(ms * 1e6));
  }

  std::vector<std::string> columns = {"time_ms"};
  for (const auto& c : curves) columns.push_back(c.label);
  driver::Table table(std::string(fig) + ": recall over time, 12-term, " +
                          ds.spec().name,
                      columns);

  // recall_sums[curve][sample]
  std::vector<std::vector<double>> sums(
      curves.size(), std::vector<double>(offsets.size(), 0.0));
  std::vector<std::size_t> counted(curves.size(), 0);

  for (std::size_t ci = 0; ci < curves.size(); ++ci) {
    const auto& curve = curves[ci];
    const auto algo = algos::MakeAlgorithm(curve.algorithm);
    sim::SimExecutor executor(bench.MakeSimConfig(driver::kMachineWorkers));
    executor.page_cache().Reset();
    for (const auto& query : queries) {
      driver::TraceRecorder trace;
      auto params = curve.params;
      params.tracer = &trace;
      auto ctx = executor.CreateQuery();
      const auto result = algo->Run(ds.index(), query, params, *ctx);
      if (!result.ok()) continue;
      const auto& exact = bench.Oracle(query, params.k);
      const auto recalls =
          driver::RecallOverTime(trace, ctx->start_time(), exact, offsets);
      for (std::size_t s = 0; s < offsets.size(); ++s) {
        sums[ci][s] += recalls[s];
      }
      ++counted[ci];
    }
    std::cerr << "  [" << fig << "] " << ds.spec().name << " "
              << curve.label << " done\n";
  }

  for (std::size_t s = 0; s < offsets.size(); ++s) {
    std::vector<std::string> row = {
        driver::FormatF(static_cast<double>(offsets[s]) / 1e6, 2)};
    for (std::size_t ci = 0; ci < curves.size(); ++ci) {
      row.push_back(counted[ci] == 0
                        ? "N/A"
                        : driver::FormatPct(
                              sums[ci][s] /
                              static_cast<double>(counted[ci])));
    }
    table.AddRow(std::move(row));
  }
  Emit(table);
}

}  // namespace
}  // namespace sparta::bench

int main() {
  sparta::bench::RunDataset(sparta::bench::Cw(), "Fig 3f");
  sparta::bench::RunDataset(sparta::bench::Cwx10(), "Fig 3g");
}

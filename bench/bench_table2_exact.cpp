// Table 2: average query latency (ms) of 12-term queries with the exact
// algorithms, 12 worker threads, on both corpora. In the paper, pNRA and
// pJASS crash with OOM on ClueWebX10 (reported N/A); here the memory
// model reports those cells as OOM.
#include "bench_common.h"

namespace sparta::bench {
namespace {

void Run() {
  const auto variants = driver::ExactVariants();
  driver::Table table("Table 2: exact algorithms, 12-term queries",
                      {"dataset", "algorithm", "mean_ms", "p95_ms",
                       "oom", "queries"});

  for (const corpus::Dataset* ds : {&Cw(), &Cwx10()}) {
    driver::BenchDriver bench(*ds);
    const auto queries = Take(ds->queries().OfLength(12), 100);
    for (const auto& variant : variants) {
      const auto algo = algos::MakeAlgorithm(variant.algorithm);
      const auto res =
          bench.MeasureLatency(*algo, queries, variant.params,
                               driver::kMachineWorkers,
                               /*measure_recall=*/false);
      table.AddRow({ds->spec().name, variant.label,
                    res.AllOom() ? "N/A" : driver::FormatF(res.MeanMs(), 1),
                    res.AllOom() ? "N/A" : driver::FormatF(res.P95Ms(), 1),
                    std::to_string(res.oom), std::to_string(res.queries)});
      std::cerr << "  [table2] " << ds->spec().name << " " << variant.label
                << " done\n";
    }
  }
  Emit(table);
}

}  // namespace
}  // namespace sparta::bench

int main() { sparta::bench::Run(); }

// Extension experiments reproducing the paper's side claims and its
// future-work direction:
//
//   1. k-sensitivity — "Experiments with k = 100 produced qualitatively
//      similar results" (§5.1): the algorithm ordering must be stable
//      across k.
//   2. RAM-resident index — "all algorithms except pRA got similar
//      results [with RAM-resident indexes]" (§5): with a pre-warmed,
//      unbounded page cache, only pRA moves materially.
//   3. Compression — "the impact of decompression on end-to-end
//      performance is marginal (e.g., up to 6% ...)" (§5, citing Lin &
//      Trotman): our varint codec's measured decode cost is folded into
//      the per-posting CPU cost.
//   4. Probabilistic pruning (§6 future work, after Theobald et al.):
//      sweep Sparta's probabilistic bound factor γ.
#include <chrono>

#include "bench_common.h"
#include "core/sparta.h"
#include "index/compression.h"

namespace sparta::bench {
namespace {

void KSensitivity(const corpus::Dataset& ds) {
  driver::BenchDriver bench(ds);
  const auto queries = Take(ds.queries().OfLength(12), 50);
  driver::Table table("Extension: k sensitivity, 12-term, " +
                          ds.spec().name,
                      {"k", "variant", "mean_ms", "recall"});
  for (const int k : {10, 100, 1000}) {
    for (const auto& variant : driver::HighRecallVariants()) {
      auto params = variant.params;
      params.k = k;
      const auto algo = algos::MakeAlgorithm(variant.algorithm);
      const auto res = bench.MeasureLatency(*algo, queries, params,
                                            driver::kMachineWorkers);
      table.AddRow({std::to_string(k), variant.label,
                    res.AllOom() ? "N/A" : driver::FormatF(res.MeanMs(), 2),
                    res.AllOom() ? "N/A"
                                 : driver::FormatPct(res.mean_recall)});
    }
    std::cerr << "  [ext-k] k=" << k << " done\n";
  }
  Emit(table);
}

void RamResident(const corpus::Dataset& ds) {
  driver::BenchDriver bench(ds);
  const auto queries = Take(ds.queries().OfLength(12), 50);
  driver::Table table("Extension: disk vs RAM-resident index, 12-term, " +
                          ds.spec().name,
                      {"variant", "disk_ms", "ram_ms", "ratio"});
  for (const auto& variant : driver::HighRecallVariants()) {
    const auto algo = algos::MakeAlgorithm(variant.algorithm);
    const auto disk = bench.MeasureLatency(*algo, queries, variant.params,
                                           driver::kMachineWorkers,
                                           /*measure_recall=*/false);
    // RAM-resident: unbounded page cache, pre-warmed by a full touch of
    // the index (the paper's mmap over a RAM-resident file).
    auto config = bench.MakeSimConfig(driver::kMachineWorkers);
    config.page_cache_bytes = 0;  // unbounded
    sim::SimExecutor executor(config);
    for (std::uint64_t page = 0;
         page <= ds.index().SizeBytes() / sim::kPageBytes; ++page) {
      executor.page_cache().Touch(page);
    }
    util::Histogram ram_hist;
    for (const auto& query : queries) {
      auto ctx = executor.CreateQuery();
      const auto res =
          algo->Run(ds.index(), query, variant.params, *ctx);
      if (res.ok()) ram_hist.Add(ctx->end_time() - ctx->start_time());
    }
    const double ram_ms =
        ram_hist.empty() ? 0.0 : ram_hist.Mean() / 1e6;
    table.AddRow({variant.label, driver::FormatF(disk.MeanMs(), 2),
                  driver::FormatF(ram_ms, 2),
                  driver::FormatF(ram_ms > 0 ? disk.MeanMs() / ram_ms : 0,
                                  2)});
    std::cerr << "  [ext-ram] " << variant.label << " done\n";
  }
  Emit(table);
}

void Compression(const corpus::Dataset& ds) {
  // Measure the codec: ratio on the real index, decode speed on the
  // host, and the modeled end-to-end effect of paying that decode cost
  // per posting.
  const auto report = index::MeasureIndexCompression(ds.index());

  // Host-measured decode throughput over a large term.
  TermId big = 0;
  for (TermId t = 0; t < ds.index().num_terms(); ++t) {
    if (ds.index().Entry(t).df > ds.index().Entry(big).df) big = t;
  }
  const auto view = ds.index().Term(big);
  const auto blob = index::CompressImpactOrder(view.impact_order);
  std::vector<index::Posting> scratch;
  const auto t0 = std::chrono::steady_clock::now();
  constexpr int kReps = 200;
  for (int i = 0; i < kReps; ++i) {
    scratch.clear();
    SPARTA_CHECK(index::DecompressImpactOrder(blob, scratch));
  }
  const auto t1 = std::chrono::steady_clock::now();
  const double ns_per_posting =
      static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
              .count()) /
      (static_cast<double>(kReps) * static_cast<double>(view.df()));

  driver::BenchDriver bench(ds);
  const auto queries = Take(ds.queries().OfLength(12), 50);
  driver::Table table("Extension: compression impact, 12-term, " +
                          ds.spec().name,
                      {"variant", "uncompressed_ms", "compressed_ms",
                       "overhead"});
  for (const auto& variant : driver::HighRecallVariants()) {
    const auto algo = algos::MakeAlgorithm(variant.algorithm);
    const auto base = bench.MeasureLatency(*algo, queries, variant.params,
                                           driver::kMachineWorkers,
                                           /*measure_recall=*/false);
    // Compressed run: pay the measured decode cost per posting, and
    // read proportionally fewer pages from disk.
    auto config = bench.MakeSimConfig(driver::kMachineWorkers);
    config.costs.cpu_per_posting += static_cast<exec::VirtualTime>(
        ns_per_posting + 0.5);
    config.costs.ssd_seq_page = static_cast<exec::VirtualTime>(
        static_cast<double>(config.costs.ssd_seq_page) *
        report.ImpactOrderRatio());
    sim::SimExecutor executor(config);
    executor.page_cache().Reset();
    util::Histogram hist;
    for (const auto& query : queries) {
      auto ctx = executor.CreateQuery();
      const auto res =
          algo->Run(ds.index(), query, variant.params, *ctx);
      if (res.ok()) hist.Add(ctx->end_time() - ctx->start_time());
    }
    const double comp_ms = hist.empty() ? 0.0 : hist.Mean() / 1e6;
    table.AddRow(
        {variant.label, driver::FormatF(base.MeanMs(), 2),
         driver::FormatF(comp_ms, 2),
         driver::FormatPct(base.MeanMs() > 0
                               ? comp_ms / base.MeanMs() - 1.0
                               : 0.0)});
    std::cerr << "  [ext-compress] " << variant.label << " done\n";
  }
  std::cout << "codec: doc-order ratio "
            << driver::FormatPct(report.DocOrderRatio())
            << ", impact-order ratio "
            << driver::FormatPct(report.ImpactOrderRatio()) << ", decode "
            << driver::FormatF(ns_per_posting, 1) << " ns/posting\n";
  Emit(table);
}

void ProbabilisticPruning(const corpus::Dataset& ds) {
  driver::BenchDriver bench(ds);
  const auto queries = Take(ds.queries().OfLength(12), 50);
  driver::Table table(
      "Extension: Sparta probabilistic pruning, 12-term, " +
          ds.spec().name,
      {"gamma", "mode", "mean_ms", "recall", "postings_M"});
  for (const double gamma : {1.0, 0.8, 0.6, 0.4}) {
    core::SpartaOptions options;
    options.prob_factor = gamma;
    const core::Sparta algo(options);
    for (const bool exact : {true, false}) {
      // Exact mode with probabilistic bounds is only meaningful as the
      // gamma = 1 baseline: with gamma < 1 the run is no longer safe, so
      // the practical configuration is Δ-stopped (and the exact-mode
      // resolution of a non-safe bound can stall on borderline
      // candidates).
      if (exact && gamma < 1.0) continue;
      topk::SearchParams params;
      params.k = driver::DefaultK();
      if (!exact) params.delta = driver::DefaultDelta();
      const auto res = bench.MeasureLatency(algo, queries, params,
                                            driver::kMachineWorkers);
      table.AddRow({driver::FormatF(gamma, 1), exact ? "exact" : "delta",
                    driver::FormatF(res.MeanMs(), 2),
                    driver::FormatPct(res.mean_recall),
                    driver::FormatF(static_cast<double>(res.postings) /
                                        1e6,
                                    2)});
    }
    std::cerr << "  [ext-prob] gamma=" << gamma << " done\n";
  }
  Emit(table);
}

}  // namespace
}  // namespace sparta::bench

int main() {
  const auto& cw = sparta::bench::Cw();
  sparta::bench::KSensitivity(cw);
  sparta::bench::RamResident(cw);
  sparta::bench::Compression(cw);
  sparta::bench::ProbabilisticPruning(cw);
}

// Figure 4: throughput (qps) vs query length on ClueWeb-sim. All queries
// in a run have the same length; intra-query parallelism equals the
// length; the pool of 12 workers is shared FCFS.
#include "bench_common.h"

namespace sparta::bench {
namespace {

void Run() {
  const auto& ds = Cw();
  driver::BenchDriver bench(ds);
  const auto variants = driver::HighRecallVariants();

  std::vector<std::string> columns = {"terms"};
  for (const auto& v : variants) columns.push_back(v.label);
  driver::Table table("Fig 4: throughput (qps) vs query length, cw",
                      columns);

  for (int terms = 1; terms <= 12; ++terms) {
    const auto queries = Take(ds.queries().OfLength(terms), 100);
    std::vector<std::string> row = {std::to_string(terms)};
    for (const auto& variant : variants) {
      const auto algo = algos::MakeAlgorithm(variant.algorithm);
      const auto res = bench.MeasureThroughput(
          *algo, queries, variant.params, driver::kMachineWorkers);
      const bool all_oom = res.oom == res.queries && res.queries > 0;
      row.push_back(all_oom ? "N/A" : driver::FormatF(res.qps, 1));
    }
    table.AddRow(std::move(row));
    std::cerr << "  [fig4] len " << terms << " done\n";
  }
  Emit(table);
}

}  // namespace
}  // namespace sparta::bench

int main() { sparta::bench::Run(); }

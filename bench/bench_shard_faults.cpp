// Shard-fault serving scenarios: scatter-gather under injected failure.
//
// The cluster tier's contract (DESIGN.md §13) is "always answer, say
// how much of the corpus the answer saw". This bench prices that
// contract across the fault matrix the tests assert on, one seeded
// scenario per row:
//
//   healthy           — 4 shards / 4 nodes / R=1, no faults (the merge
//                       must be bit-equal to the unsharded machine);
//   crash_no_replica  — a node dies and its shard has no replica: every
//                       query still answers, degraded with honest
//                       coverage, and recall against the full-index
//                       oracle drops by at most the lost doc fraction;
//   crash_failover    — same crash with R=2: retries reach the replica
//                       and coverage returns to 1.0 at the cost of one
//                       shard deadline + backoff on affected queries;
//   partition         — a node is unreachable for a window, then heals;
//   straggler         — one node's inbound link is slow; without
//                       hedging every query eats the slow path;
//   straggler_hedged  — the same cluster with hedged requests: the
//                       replica's fast reply wins and the tail falls.
//
// Everything runs on the virtual clock from seeded plans, so
// results/BENCH_shard_faults.json is byte-identical across runs and
// sits under the tools/bench_compare.py perf gate. The workload is
// fixed-size (SPARTA_QUICK is ignored) so a smoke run produces the
// committed numbers.
#include <algorithm>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "index/builder.h"
#include "index/sharding.h"
#include "obs/trace_export.h"
#include "serve/coordinator.h"
#include "topk/oracle.h"
#include "topk/recall.h"

namespace sparta::bench {
namespace {

constexpr std::uint32_t kDocs = 6000;
constexpr std::uint32_t kVocab = 1200;
constexpr int kShards = 4;
constexpr int kNodes = 4;
constexpr int kTopK = 20;
constexpr std::size_t kDistinctQueries = 16;
constexpr std::size_t kArrivals = 48;
constexpr exec::VirtualTime kSpacing = 12 * exec::kMillisecond;

index::InvertedIndex MakeIndex() {
  corpus::SyntheticCorpusSpec spec;
  spec.num_docs = kDocs;
  spec.vocab_size = kVocab;
  spec.mean_unique_terms = 25.0;
  spec.seed = 7;
  return index::FinalizeIndex(corpus::GenerateRawCorpus(spec));
}

/// Deterministic 3-term query mix over the popularity spectrum (same
/// recipe as bench_live_update; the bench has no dataset query log).
std::vector<std::vector<TermId>> MakeQueries(
    const index::InvertedIndex& idx) {
  std::vector<TermId> candidates;
  for (TermId t = 0; t < idx.num_terms(); ++t) {
    if (idx.Entry(t).df >= 8) candidates.push_back(t);
  }
  std::vector<std::vector<TermId>> queries;
  const std::size_t stride =
      std::max<std::size_t>(1, candidates.size() / 4);
  for (std::size_t q = 0; q < kDistinctQueries; ++q) {
    std::vector<TermId> terms;
    for (std::size_t i = 0; terms.size() < 3; ++i) {
      const TermId t =
          candidates[(q * 131 + (i + 1) * stride) % candidates.size()];
      if (std::find(terms.begin(), terms.end(), t) == terms.end()) {
        terms.push_back(t);
      }
    }
    std::sort(terms.begin(), terms.end());
    queries.push_back(std::move(terms));
  }
  return queries;
}

serve::ClusterConfig BaseConfig(int replication) {
  serve::ClusterConfig cfg;
  cfg.num_shards = kShards;
  cfg.num_nodes = kNodes;
  cfg.replication = replication;
  cfg.node_sim.num_workers = 2;
  // The observability plane rides along on every scenario: the cluster
  // tracer feeds critical-path attribution and the flight recorder
  // freezes postmortems at each anomaly. Both are coordinator-side —
  // they charge no virtual time, so every committed number in
  // BENCH_shard_faults.json is unchanged by having them on.
  cfg.trace.enabled = true;
  cfg.flight.enabled = true;
  return cfg;
}

struct Scenario {
  std::string name;
  serve::ClusterConfig cfg;
};

std::vector<Scenario> Scenarios() {
  std::vector<Scenario> out;
  out.push_back({"healthy", BaseConfig(1)});

  {
    serve::ClusterConfig cfg = BaseConfig(1);
    cfg.net_faults.crash_node = 1;
    cfg.net_faults.crash_at = 20 * exec::kMillisecond;
    out.push_back({"crash_no_replica", cfg});
  }
  {
    serve::ClusterConfig cfg = BaseConfig(2);
    cfg.net_faults.crash_node = 0;
    cfg.net_faults.crash_at = 20 * exec::kMillisecond;
    out.push_back({"crash_failover", cfg});
  }
  {
    serve::ClusterConfig cfg = BaseConfig(1);
    cfg.net_faults.partition_from = 100 * exec::kMillisecond;
    cfg.net_faults.partition_until = 300 * exec::kMillisecond;
    cfg.net_faults.partition_nodes = 1ull << 2;
    out.push_back({"partition", cfg});
  }
  // Straggler pair: node 0's inbound link is 4 ms while its replica
  // sits 50 us away; the only difference between the two rows is the
  // hedge, so their delta prices the straggler defense alone.
  {
    serve::ClusterConfig cfg = BaseConfig(2);
    cfg.fabric.overrides.push_back(
        {sim::kCoordinatorNode, 0, {4 * exec::kMillisecond, 1.25}});
    out.push_back({"straggler", cfg});
    cfg.hedge_delay = 2 * exec::kMillisecond;
    out.push_back({"straggler_hedged", cfg});
  }
  return out;
}

double Ms(double ns) { return ns / 1e6; }

void Run() {
  const index::InvertedIndex full = MakeIndex();
  const index::ShardedIndex sharded = index::ShardIndex(full, kShards);
  const auto queries = MakeQueries(full);
  const auto algo = algos::MakeAlgorithm("BMW");
  SPARTA_CHECK(algo != nullptr);
  topk::SearchParams params;
  params.k = kTopK;

  // The full-index oracle: recall against it prices exactly what a
  // lost shard costs (and nothing else — BMW is exact).
  std::vector<topk::ExactTopK> oracle;
  oracle.reserve(queries.size());
  for (const auto& q : queries) {
    oracle.push_back(topk::ComputeExactTopK(full, q, kTopK));
  }

  std::vector<exec::VirtualTime> arrivals;
  for (std::size_t i = 0; i < kArrivals; ++i) {
    arrivals.push_back(static_cast<exec::VirtualTime>(i + 1) * kSpacing);
  }

  driver::Table table(
      "shard faults: scatter-gather under crash / partition / straggler",
      {"scenario", "completed", "degraded", "min_cov", "recall",
       "mean_ms", "p99_ms", "timeouts", "retries", "hedges_won"});
  driver::BenchJson json("shard_faults");

  for (const Scenario& s : Scenarios()) {
    serve::Cluster cluster(sharded, s.cfg);
    serve::Coordinator coord(cluster, *algo);
    const serve::ClusterServeResult run =
        coord.Serve(queries, params, arrivals);

    // The serving contract, enforced on every scenario: no query is
    // ever lost to a backend fault.
    SPARTA_CHECK(run.completed == run.offered);

    double recall_sum = 0.0;
    for (const serve::ServedQuery& q : run.queries) {
      recall_sum += topk::Recall(oracle[q.query_index % queries.size()],
                                 q.result.entries);
    }
    const double recall =
        recall_sum / static_cast<double>(run.queries.size());

    json.Set(s.name, "completed", static_cast<double>(run.completed));
    json.Set(s.name, "shards_degraded",
             static_cast<double>(run.shards_degraded));
    json.Set(s.name, "min_coverage", run.min_coverage);
    json.Set(s.name, "recall.vs_full", recall);
    json.Set(s.name, "mean_virtual_ms", Ms(run.e2e_ns.Mean()));
    json.Set(s.name, "p99_virtual_ms",
             Ms(static_cast<double>(run.e2e_ns.P99())));
    json.Set(s.name, "goodput_qps", run.GoodputQps());
    json.Set(s.name, "rpc_timeouts",
             static_cast<double>(run.rpc_timeouts));
    json.Set(s.name, "retries", static_cast<double>(run.retries));
    json.Set(s.name, "hedges_won", static_cast<double>(run.hedges_won));
    json.Set(s.name, "breaker_skips",
             static_cast<double>(run.breaker_skips));
    json.Set(s.name, "net_drops", static_cast<double>(run.net_drops));
    json.Set(s.name, "anomalies", static_cast<double>(run.anomalies));

    // Example artifacts for EXPERIMENTS.md: the first frozen postmortem
    // of the unreplicated crash, and the critical-path decomposition of
    // the hedged-straggler scenario (where the attribution shows the
    // hedge overhead buying back the slow link).
    if (s.name == "crash_no_replica") {
      obs::FlightRecorder* rec = cluster.flight_recorder();
      SPARTA_CHECK(rec != nullptr && !rec->postmortems().empty());
      const obs::Postmortem& pm = *rec->postmortems().front();
      std::ofstream j(ResultsDir() + "/postmortem_crash_no_replica.json");
      j << obs::ExportPostmortem(pm);
      std::ofstream t(ResultsDir() + "/postmortem_crash_no_replica.txt");
      t << driver::RenderPostmortem(pm);
    }
    if (s.name == "straggler_hedged") {
      const auto paths =
          driver::ComputeClusterCriticalPaths(*cluster.tracer(), run);
      Emit(driver::CriticalPathTable(paths, run));
    }

    table.AddRow({s.name, std::to_string(run.completed),
                  std::to_string(run.shards_degraded),
                  driver::FormatF(run.min_coverage, 3),
                  driver::FormatF(recall, 3),
                  driver::FormatF(Ms(run.e2e_ns.Mean()), 2),
                  driver::FormatF(Ms(static_cast<double>(run.e2e_ns.P99())), 2),
                  std::to_string(run.rpc_timeouts),
                  std::to_string(run.retries),
                  std::to_string(run.hedges_won)});
    std::cerr << "  [shard_faults] " << s.name << " done\n";
  }

  Emit(table);
  EmitJson(json);
}

}  // namespace
}  // namespace sparta::bench

int main() { sparta::bench::Run(); }

// Table 4: throughput (queries/second) of the high-recall variants on
// the production voice-query mix (lengths ~ Gaussian(4.2, 2.96) per Guy
// [SIGIR'16]), FCFS on a shared pool of 12 workers.
#include "bench_common.h"

namespace sparta::bench {
namespace {

void Run() {
  driver::Table table(
      "Table 4: throughput (qps) on the voice query mix",
      {"dataset", "variant", "qps", "recall", "oom"});

  for (const corpus::Dataset* ds : {&Cw(), &Cwx10()}) {
    driver::BenchDriver bench(*ds);
    const auto mix = ds->queries().VoiceMix(
        static_cast<int>(driver::QueryBudget(600)), /*seed=*/0x714);
    for (const auto& variant : driver::HighRecallVariants()) {
      // The paper's Table 4 compares Sparta, pRA, pBMW, pJASS.
      if (variant.algorithm == "pNRA" || variant.algorithm == "sNRA") {
        continue;
      }
      const auto algo = algos::MakeAlgorithm(variant.algorithm);
      const auto res = bench.MeasureThroughput(*algo, mix, variant.params,
                                               driver::kMachineWorkers);
      const bool all_oom = res.oom == res.queries && res.queries > 0;
      table.AddRow({ds->spec().name, variant.label,
                    all_oom ? "N/A" : driver::FormatF(res.qps, 2),
                    all_oom ? "N/A" : driver::FormatPct(res.mean_recall),
                    std::to_string(res.oom)});
      std::cerr << "  [table4] " << ds->spec().name << " " << variant.label
                << " done\n";
    }
  }
  Emit(table);
}

}  // namespace
}  // namespace sparta::bench

int main() { sparta::bench::Run(); }

// Live-update serving scenarios: query traffic while documents arrive.
//
// Three questions the frozen-index benches cannot answer:
//   * staleness — how far does result quality (recall against the
//     crash-free converged index, LiveIndex::CompactNow's oracle) fall
//     as the ingest rate rises and queries race refresh visibility?
//   * interference — what does background merge work do to query tail
//     latency? Queries overlapping a merge window are split out from
//     queries that don't (LiveServeResult::OverlapsMerge).
//   * recovery — with injected merge aborts and torn writes, how long
//     until the next committed publish (virtual ns from failure to
//     recovery)?
//
// Everything runs on the simulator's virtual clock from seeded arrival
// and fault plans, so results/BENCH_live_update.json is reproducible and
// sits under the tools/bench_compare.py perf gate. The workload is
// fixed-size (SPARTA_QUICK is ignored) so a smoke run produces the
// committed numbers.
#include <algorithm>
#include <vector>

#include "bench_common.h"
#include "index/builder.h"
#include "index/live_index.h"
#include "serve/live.h"
#include "topk/oracle.h"
#include "topk/recall.h"

namespace sparta::bench {
namespace {

constexpr std::uint32_t kMainDocs = 6000;
constexpr std::uint32_t kIngestDocs = 1500;
constexpr std::uint32_t kVocab = 1200;
constexpr std::size_t kQueryArrivals = 120;
constexpr int kWorkers = 4;
constexpr int kTopK = 20;

index::InvertedIndex MakeMainIndex() {
  corpus::SyntheticCorpusSpec spec;
  spec.num_docs = kMainDocs;
  spec.vocab_size = kVocab;
  spec.mean_unique_terms = 25.0;
  spec.seed = 7;
  return index::FinalizeIndex(corpus::GenerateRawCorpus(spec));
}

std::vector<serve::IngestDoc> MakeIngestStream() {
  corpus::SyntheticCorpusSpec spec;
  spec.num_docs = kIngestDocs;
  spec.vocab_size = kVocab;
  spec.mean_unique_terms = 25.0;
  spec.seed = 99;
  const auto raw = corpus::GenerateRawCorpus(spec);
  std::vector<serve::IngestDoc> docs(raw.num_docs);
  for (TermId t = 0; t < raw.term_postings.size(); ++t) {
    for (const index::RawPosting& p : raw.term_postings[t]) {
      docs[p.doc].terms.push_back({t, p.tf});
    }
  }
  for (std::uint32_t d = 0; d < raw.num_docs; ++d) {
    docs[d].doc_len = std::max<std::uint32_t>(1, raw.doc_lengths[d]);
  }
  return docs;
}

/// Deterministic query mix over the popularity spectrum (the bench has
/// no dataset query log; terms are picked like the test suite does).
std::vector<std::vector<TermId>> MakeQueries(
    const index::InvertedIndex& idx, std::size_t count,
    std::size_t terms_per_query) {
  std::vector<TermId> candidates;
  for (TermId t = 0; t < idx.num_terms(); ++t) {
    if (idx.Entry(t).df >= 8) candidates.push_back(t);
  }
  std::vector<std::vector<TermId>> queries;
  const std::size_t stride =
      std::max<std::size_t>(1, candidates.size() / (terms_per_query + 1));
  for (std::size_t q = 0; q < count; ++q) {
    std::vector<TermId> terms;
    for (std::size_t i = 0; terms.size() < terms_per_query; ++i) {
      const TermId t =
          candidates[(q * 131 + (i + 1) * stride) % candidates.size()];
      if (std::find(terms.begin(), terms.end(), t) == terms.end()) {
        terms.push_back(t);
      }
    }
    std::sort(terms.begin(), terms.end());
    queries.push_back(std::move(terms));
  }
  return queries;
}

/// The crash-free converged index every configuration would settle to:
/// main + every ingest doc, folded synchronously (exactly what
/// LiveIndex::CompactNow publishes, built standalone).
index::InvertedIndex MakeOracleIndex(
    const std::vector<serve::IngestDoc>& docs) {
  index::InvertedIndex main_idx = MakeMainIndex();
  index::DeltaSegment delta(main_idx);
  for (const auto& d : docs) delta.Add(d.terms, d.doc_len);
  const index::InvertedIndex frozen = delta.Freeze();
  return index::MergeSegments(main_idx, frozen);
}

serve::LiveServeConfig MakeConfig(double ingest_rate_dps,
                                  std::size_t ingest_count) {
  serve::LiveServeConfig config;
  config.serve.arrivals.count = kQueryArrivals;
  config.serve.arrivals.rate_qps = 2000.0;
  config.serve.arrivals.seed = 11;
  config.serve.slo = 50 * exec::kMillisecond;
  config.ingest.arrivals.count = ingest_count;
  config.ingest.arrivals.rate_qps =
      ingest_rate_dps > 0.0 ? ingest_rate_dps : 1.0;
  config.ingest.arrivals.seed = 12;
  config.ingest.refresh_every_docs = 64;
  config.ingest.merge_min_docs = 192;
  config.ingest.merge_chunk_postings = 4096;
  return config;
}

struct RunOutput {
  serve::LiveServeResult result;
  /// Mean recall of admitted queries against the converged oracle —
  /// the staleness metric (unseen docs cap attainable recall).
  double recall_vs_oracle = 0.0;
  util::Histogram e2e_all;
  util::Histogram e2e_in_merge;
  util::Histogram e2e_outside;
};

RunOutput RunScenario(const serve::LiveServeConfig& config,
                      const std::vector<std::vector<TermId>>& queries,
                      const std::vector<serve::IngestDoc>& docs,
                      const index::InvertedIndex& oracle,
                      const sim::SimConfig& sim_config) {
  index::LiveIndex live(MakeMainIndex());
  sim::SimExecutor executor(sim_config);
  const auto algo = algos::MakeAlgorithm("MaxScore");
  SPARTA_CHECK(algo != nullptr);
  topk::SearchParams params;
  params.k = kTopK;
  serve::LiveServer server(live, *algo, config);
  RunOutput out;
  out.result = server.ServeOnSim(executor, queries, docs, params);

  double recall_sum = 0.0;
  std::size_t recall_n = 0;
  for (const auto& q : out.result.serve.queries) {
    if (q.outcome != topk::AdmissionOutcome::kAdmitted) continue;
    const auto exact = topk::ComputeExactTopK(
        oracle, queries[q.query_index % queries.size()], kTopK);
    recall_sum += topk::Recall(exact, q.result.entries);
    ++recall_n;
    const exec::VirtualTime e2e = q.EndToEnd();
    out.e2e_all.Add(e2e);
    if (out.result.OverlapsMerge(q.dispatch, q.completion)) {
      out.e2e_in_merge.Add(e2e);
    } else {
      out.e2e_outside.Add(e2e);
    }
  }
  out.recall_vs_oracle = recall_n > 0 ? recall_sum / recall_n : 0.0;
  return out;
}

double Ms(std::int64_t ns) { return static_cast<double>(ns) / 1e6; }
double HistP99Ms(const util::Histogram& h) {
  return h.empty() ? 0.0 : Ms(h.P99());
}
double HistMeanMs(const util::Histogram& h) {
  return h.empty() ? 0.0 : h.Mean() / 1e6;
}

void Run() {
  const auto docs = MakeIngestStream();
  const auto main_idx = MakeMainIndex();
  const auto queries = MakeQueries(main_idx, 24, 3);
  const auto oracle = MakeOracleIndex(docs);

  driver::Table table(
      "live update: recall vs ingest rate, merge interference, recovery",
      {"config", "recall_vs_oracle", "mean_ms", "p99_ms", "merge_p99_ms",
       "merges", "recovery_ms"});
  driver::BenchJson json("live_update");

  struct Scenario {
    const char* name;
    double ingest_rate_dps;  // 0 = no ingest
    double merge_abort_prob;
    double torn_write_prob;
  };
  const Scenario scenarios[] = {
      {"no_ingest", 0.0, 0.0, 0.0},
      {"ingest_r10k", 10'000.0, 0.0, 0.0},
      {"ingest_r40k", 40'000.0, 0.0, 0.0},
      {"ingest_r40k_faults", 40'000.0, 0.4, 0.4},
  };

  for (const Scenario& s : scenarios) {
    const bool ingest = s.ingest_rate_dps > 0.0;
    const auto config =
        MakeConfig(s.ingest_rate_dps, ingest ? docs.size() : 0);
    sim::SimConfig sim_config;
    sim_config.num_workers = kWorkers;
    sim_config.faults.seed = 1;
    sim_config.faults.merge_abort_prob = s.merge_abort_prob;
    sim_config.faults.torn_write_prob = s.torn_write_prob;

    const auto out = RunScenario(
        config, queries, ingest ? docs : std::vector<serve::IngestDoc>{},
        oracle, sim_config);
    const auto& r = out.result;

    const std::string name =
        std::string(s.name) + "/w" + std::to_string(kWorkers);
    json.Set(name, "recall_vs_oracle", out.recall_vs_oracle);
    json.Set(name, "mean_virtual_ms", HistMeanMs(out.e2e_all));
    json.Set(name, "p99_virtual_ms", HistP99Ms(out.e2e_all));
    json.Set(name, "merge_overlap_p99_virtual_ms",
             HistP99Ms(out.e2e_in_merge));
    json.Set(name, "no_merge_p99_virtual_ms", HistP99Ms(out.e2e_outside));
    json.Set(name, "docs_ingested", static_cast<double>(r.docs_ingested));
    json.Set(name, "refreshes", static_cast<double>(r.refreshes));
    json.Set(name, "merges_committed",
             static_cast<double>(r.merges_committed));
    json.Set(name, "merges_aborted",
             static_cast<double>(r.merges_aborted));
    json.Set(name, "torn_writes", static_cast<double>(r.torn_writes));
    json.Set(name, "epochs_reclaimed",
             static_cast<double>(r.epochs_reclaimed));

    double recovery_mean_ms = 0.0;
    double recovery_max_ms = 0.0;
    if (!r.recovery_ns.empty()) {
      util::Histogram rec;
      for (const exec::VirtualTime ns : r.recovery_ns) rec.Add(ns);
      recovery_mean_ms = rec.Mean() / 1e6;
      recovery_max_ms = Ms(rec.Max());
    }
    json.Set(name, "recovery_mean_virtual_ms", recovery_mean_ms);
    json.Set(name, "recovery_max_virtual_ms", recovery_max_ms);

    table.AddRow({name, driver::FormatF(out.recall_vs_oracle, 4),
                  driver::FormatF(HistMeanMs(out.e2e_all), 3),
                  driver::FormatF(HistP99Ms(out.e2e_all), 3),
                  driver::FormatF(HistP99Ms(out.e2e_in_merge), 3),
                  std::to_string(r.merges.size()),
                  driver::FormatF(recovery_mean_ms, 3)});
    std::cerr << "  [live_update] " << name << " done\n";
  }

  Emit(table);
  EmitJson(json);
}

}  // namespace
}  // namespace sparta::bench

int main() { sparta::bench::Run(); }

// Figures 3h-3i: mean latency of 12-term high-recall queries as
// intra-query parallelism grows from 1 to 12 workers. Expected shapes:
// Sparta gains most of its speedup by 2 workers; pJASS barely improves
// (unequal per-term workloads); pBMW's latency is inversely proportional
// to the worker count (doc-range partitioning).
#include "bench_common.h"

namespace sparta::bench {
namespace {

void RunDataset(const corpus::Dataset& ds, std::string_view fig) {
  driver::BenchDriver bench(ds);
  const auto queries = Take(ds.queries().OfLength(12), 100);
  const auto variants = driver::HighRecallVariants();

  std::vector<std::string> columns = {"workers"};
  for (const auto& v : variants) columns.push_back(v.label);
  driver::Table table(std::string(fig) +
                          ": mean latency (ms) vs workers, 12-term, " +
                          ds.spec().name,
                      columns);

  for (const int workers : {1, 2, 3, 4, 6, 8, 10, 12}) {
    std::vector<std::string> row = {std::to_string(workers)};
    for (const auto& variant : variants) {
      const auto algo = algos::MakeAlgorithm(variant.algorithm);
      const auto res = bench.MeasureLatency(*algo, queries, variant.params,
                                            workers,
                                            /*measure_recall=*/false);
      row.push_back(res.AllOom() ? "N/A"
                                 : driver::FormatF(res.MeanMs(), 1));
    }
    table.AddRow(std::move(row));
    std::cerr << "  [" << fig << "] " << ds.spec().name << " w=" << workers
              << " done\n";
  }
  Emit(table);
}

}  // namespace
}  // namespace sparta::bench

int main() {
  sparta::bench::RunDataset(sparta::bench::Cw(), "Fig 3h");
  sparta::bench::RunDataset(sparta::bench::Cwx10(), "Fig 3i");
}

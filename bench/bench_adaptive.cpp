// Extension: predictive intra-query parallelism (Jeon et al., SIGIR'14
// — discussed as orthogonal related work in the paper's §6).
//
// On a mixed (voice-distribution) workload, compare three worker
// allocation policies for Sparta-high:
//   fixed-1      — no intra-query parallelism,
//   fixed-12     — every query gets the whole machine,
//   adaptive     — predict expensive queries by their total posting
//                  volume (Σ df, available from index statistics before
//                  execution) and give them the machine; cheap queries
//                  run with few workers.
// The paper's own Fig. 3h shows Sparta needs only ~2 workers for most of
// its speedup, so adaptive allocation should match fixed-12's tail
// latency while using far fewer worker-milliseconds (a throughput
// proxy).
#include "bench_common.h"

namespace sparta::bench {
namespace {

struct PolicyResult {
  util::Histogram latency;
  double worker_ms = 0.0;  // Σ latency x workers: resource footprint
};

PolicyResult RunPolicy(const corpus::Dataset& ds,
                       std::span<const corpus::Query> queries,
                       const topk::SearchParams& params,
                       const std::function<int(const corpus::Query&)>&
                           workers_for) {
  driver::BenchDriver bench(ds);
  const auto algo = algos::MakeAlgorithm("Sparta");
  PolicyResult result;
  for (const auto& query : queries) {
    const int workers = workers_for(query);
    sim::SimExecutor executor(bench.MakeSimConfig(workers));
    auto ctx = executor.CreateQuery();
    const auto res = algo->Run(ds.index(), query, params, *ctx);
    if (!res.ok()) continue;
    const auto ns = ctx->end_time() - ctx->start_time();
    result.latency.Add(ns);
    result.worker_ms +=
        static_cast<double>(ns) / 1e6 * static_cast<double>(workers);
  }
  return result;
}

void Run() {
  const auto& ds = Cw();
  const auto mix = ds.queries().VoiceMix(
      static_cast<int>(driver::QueryBudget(300)), /*seed=*/0xADA);
  topk::SearchParams params;
  params.k = driver::DefaultK();
  params.delta = driver::DefaultDelta();

  // Predictor threshold: the median query volume of the mix.
  std::vector<std::uint64_t> volumes;
  for (const auto& q : mix) {
    std::uint64_t v = 0;
    for (const TermId t : q) v += ds.index().Entry(t).df;
    volumes.push_back(v);
  }
  auto sorted = volumes;
  std::sort(sorted.begin(), sorted.end());
  const std::uint64_t median = sorted[sorted.size() / 2];

  driver::Table table("Extension: adaptive intra-query parallelism, cw",
                      {"policy", "mean_ms", "p95_ms", "p99_ms",
                       "worker_ms_total"});
  const auto emit = [&](const char* name, const PolicyResult& r) {
    table.AddRow({name, driver::FormatF(r.latency.Mean() / 1e6, 2),
                  driver::FormatF(
                      static_cast<double>(r.latency.Percentile(95)) / 1e6,
                      2),
                  driver::FormatF(
                      static_cast<double>(r.latency.Percentile(99)) / 1e6,
                      2),
                  driver::FormatF(r.worker_ms, 1)});
  };

  emit("fixed-1", RunPolicy(ds, mix, params,
                            [](const corpus::Query&) { return 1; }));
  emit("fixed-12", RunPolicy(ds, mix, params, [](const corpus::Query&) {
         return driver::kMachineWorkers;
       }));
  emit("adaptive",
       RunPolicy(ds, mix, params, [&](const corpus::Query& q) {
         std::uint64_t v = 0;
         for (const TermId t : q) v += ds.index().Entry(t).df;
         // Expensive queries get the machine; cheap ones two workers
         // (Fig. 3h: Sparta's speedup saturates early).
         return v > median ? driver::kMachineWorkers : 2;
       }));
  Emit(table);
}

}  // namespace
}  // namespace sparta::bench

int main() { sparta::bench::Run(); }

// Microbenchmarks (google-benchmark) of the substrate components: heap,
// striped doc map, posting traversal, sampling, simulator dispatch.
#include <benchmark/benchmark.h>

#include "corpus/synthetic.h"
#include "index/builder.h"
#include "sim/sim_executor.h"
#include "topk/doc_heap.h"
#include "topk/doc_map.h"
#include "topk/oracle.h"
#include "util/rng.h"
#include "util/zipf.h"

namespace sparta {
namespace {

void BM_TopKHeapInsert(benchmark::State& state) {
  util::Rng rng(1);
  const int k = static_cast<int>(state.range(0));
  for (auto _ : state) {
    topk::TopKHeap heap(k);
    for (int i = 0; i < 10'000; ++i) {
      heap.Insert({static_cast<Score>(rng.Below(1'000'000)),
                   static_cast<DocId>(i)});
    }
    benchmark::DoNotOptimize(heap.threshold());
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_TopKHeapInsert)->Arg(100)->Arg(1000);

void BM_AliasSampler(benchmark::State& state) {
  const auto weights = util::ZipfMandelbrotWeights(
      static_cast<std::size_t>(state.range(0)), 1.07, 2.7);
  const util::AliasSampler sampler(weights);
  util::Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.Sample(rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AliasSampler)->Arg(1'000)->Arg(100'000);

void BM_ImpactTraversal(benchmark::State& state) {
  corpus::SyntheticCorpusSpec spec;
  spec.num_docs = 20'000;
  spec.vocab_size = 5'000;
  static const auto idx =
      index::FinalizeIndex(corpus::GenerateRawCorpus(spec));
  TermId best = 0;
  for (TermId t = 0; t < idx.num_terms(); ++t) {
    if (idx.Entry(t).df > idx.Entry(best).df) best = t;
  }
  for (auto _ : state) {
    Score sum = 0;
    for (const auto& p : idx.Term(best).impact_order) sum += p.score;
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(idx.Entry(best).df));
}
BENCHMARK(BM_ImpactTraversal);

void BM_ExactOracle(benchmark::State& state) {
  corpus::SyntheticCorpusSpec spec;
  spec.num_docs = 20'000;
  spec.vocab_size = 5'000;
  static const auto idx =
      index::FinalizeIndex(corpus::GenerateRawCorpus(spec));
  std::vector<TermId> terms;
  for (TermId t = 0; terms.size() < 8 && t < idx.num_terms(); ++t) {
    if (idx.Entry(t).df > 100) terms.push_back(t);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(topk::ComputeExactTopK(idx, terms, 100));
  }
}
BENCHMARK(BM_ExactOracle);

void BM_SimDispatch(benchmark::State& state) {
  for (auto _ : state) {
    sim::SimConfig config;
    config.num_workers = 8;
    sim::SimExecutor executor(config);
    auto ctx = executor.CreateQuery();
    std::atomic<int> count{0};
    for (int i = 0; i < 1'000; ++i) {
      ctx->Submit([&count](exec::WorkerContext& w) {
        w.Charge(100);
        count.fetch_add(1, std::memory_order_relaxed);
      });
    }
    ctx->RunToCompletion();
    benchmark::DoNotOptimize(count.load());
  }
  state.SetItemsProcessed(state.iterations() * 1'000);
}
BENCHMARK(BM_SimDispatch);

void BM_RandomAccessScore(benchmark::State& state) {
  corpus::SyntheticCorpusSpec spec;
  spec.num_docs = 20'000;
  spec.vocab_size = 5'000;
  static const auto idx =
      index::FinalizeIndex(corpus::GenerateRawCorpus(spec));
  util::Rng rng(3);
  for (auto _ : state) {
    const auto t = static_cast<TermId>(rng.Below(idx.num_terms()));
    const auto d = static_cast<DocId>(rng.Below(idx.num_docs()));
    benchmark::DoNotOptimize(idx.RandomAccessScore(t, d));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RandomAccessScore);

}  // namespace
}  // namespace sparta

BENCHMARK_MAIN();

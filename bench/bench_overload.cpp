// Overload experiment: open-loop serving past the saturation knee
// (DESIGN.md §8, EXPERIMENTS.md "overload").
//
// Closed-loop throughput mode cannot ask the question that decides
// whether a serving tier survives Monday morning: what happens when
// queries arrive *faster* than the machine drains them. Here arrivals
// come from a seeded open-loop schedule at multiples of each
// algorithm's measured closed-loop capacity, and two policies face the
// same schedules:
//   * protected   — bounded admission queue, estimated-wait shedding,
//     and the adaptive degradation ladder (deadlines and approximation
//     knobs tighten with queue occupancy);
//   * unprotected — unbounded queue, no shedding, no deadlines: every
//     query is answered exactly, eventually, which past the knee means
//     queue waits that grow without bound.
//
// Tables:
//  1. Goodput vs offered load — the headline curve: past the knee the
//     protected policy holds goodput near its peak while the
//     unprotected p99 end-to-end latency explodes.
//  2. Bursty arrivals — the same offered load delivered in MMPP squalls
//     instead of a smooth Poisson stream.
//  3. Circuit breaker under a fault storm — an I/O error storm trips
//     the breaker, which sheds arrivals for the cooloff instead of
//     serving broken answers, then closes again via half-open probes.
//  4. SLO burn-rate timeline — the protected stack at 1.5x capacity
//     with the windowed SLO monitor on: the per-bucket series
//     (offered/admitted/shed/goodput/burn rate) lands in
//     results/overload_slo_burn_series.csv for plot_results.py.
#include <algorithm>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.h"

namespace sparta::bench {
namespace {

topk::SearchParams ExactParams() {
  topk::SearchParams params;
  params.k = driver::DefaultK();
  return params;
}

std::size_t ArrivalCount() { return driver::QuickMode() ? 60 : 1800; }

/// Serving configuration for one run. `protect` selects the full
/// defense stack; the unprotected variant answers everything exactly
/// (effectively unbounded queue, no shedding, no deadlines).
serve::ServeConfig MakeServeConfig(bool protect, double rate_qps,
                                   std::uint64_t seed,
                                   exec::VirtualTime slo,
                                   double capacity_qps,
                                   exec::VirtualTime service_ns,
                                   serve::ArrivalKind kind) {
  serve::ServeConfig sc;
  sc.arrivals.kind = kind;
  sc.arrivals.seed = seed;
  sc.arrivals.rate_qps = rate_qps;
  sc.arrivals.count = ArrivalCount();
  sc.slo = slo;
  if (protect) {
    sc.admission.queue_capacity = 64;
    sc.admission.shed_predicted_wait = true;
    // Seed the drain-rate and service estimates from the measured
    // capacity and the lightly-loaded calibration run, so early
    // arrivals are judged against reality; the EWMAs take over as
    // completions come in.
    sc.admission.initial_departure_gap_ns = static_cast<exec::VirtualTime>(
        1e9 / std::max(capacity_qps, 1.0));
    sc.admission.initial_service_ns =
        std::max<exec::VirtualTime>(service_ns, 1);
    // Aim admissions at 75% of the SLO: the queue then settles where
    // completions land comfortably inside the SLO instead of straddling
    // the boundary (straddlers are served work that misses goodput).
    sc.admission.slo_headroom = 0.75;
    sc.ladder = serve::DegradationLadder::Default();
    sc.deadline_from_slo = true;
  } else {
    sc.admission.queue_capacity = 1u << 20;
    sc.admission.shed_predicted_wait = false;
    sc.deadline_from_slo = false;
  }
  return sc;
}

double PctMs(const util::Histogram& h, double pct) {
  return h.empty() ? 0.0 : static_cast<double>(h.Percentile(pct)) / 1e6;
}

/// Per-algorithm load calibration shared by the tables.
struct Calibration {
  double capacity_qps = 0.0;         ///< warm steady-state drain rate
  exec::VirtualTime slo = 0;         ///< self-calibrated end-to-end SLO
  exec::VirtualTime service_ns = 0;  ///< lightly-loaded mean service
};

/// Measures warm steady-state capacity and picks the SLO. The open-loop
/// runs cycle through `queries` repeatedly with a warm page cache, so
/// capacity is measured the same way: a closed loop over the cycled
/// sequence with the first full cycle as warmup.
Calibration Calibrate(driver::BenchDriver& bench,
                      const topk::Algorithm& algo,
                      std::span<const corpus::Query> queries,
                      const topk::SearchParams& params) {
  Calibration cal;
  std::vector<corpus::Query> cycle;
  const std::size_t total =
      std::max<std::size_t>(3 * queries.size(), 30);
  cycle.reserve(total);
  for (std::size_t i = 0; i < total; ++i) {
    cycle.push_back(queries[i % queries.size()]);
  }
  cal.capacity_qps = bench
                         .MeasureThroughput(algo, cycle, params,
                                            driver::kMachineWorkers,
                                            queries.size())
                         .qps;

  // Lightly-loaded open-loop pass (half capacity, no protection): its
  // p95 end-to-end latency defines the SLO (x3 headroom) and its mean
  // seeds the admission controller's service estimate.
  auto sc = MakeServeConfig(false, 0.5 * cal.capacity_qps, 17,
                            exec::kNever, cal.capacity_qps, 0,
                            serve::ArrivalKind::kPoisson);
  sc.arrivals.count = std::min<std::size_t>(sc.arrivals.count, 150);
  const auto calib = bench.MeasureOpenLoop(algo, queries, params, sc,
                                           driver::kMachineWorkers, false);
  cal.slo = std::max<exec::VirtualTime>(
      3 * calib.serve.e2e_ns.Percentile(95), exec::kMillisecond);
  cal.service_ns = calib.serve.e2e_ns.empty()
                       ? exec::kMillisecond
                       : static_cast<exec::VirtualTime>(
                             calib.serve.e2e_ns.Mean());
  return cal;
}

void GoodputVsLoad(driver::BenchDriver& bench,
                   std::span<const corpus::Query> queries) {
  driver::Table table(
      "Overload: goodput vs offered load",
      {"variant", "policy", "load_x", "offered_qps", "capacity_qps",
       "admitted", "shed", "rejected", "completed", "degraded",
       "goodput_qps", "p50_ms", "p99_ms", "max_queue", "recall"});

  const double loads[] = {0.5, 1.0, 1.2, 1.5, 2.0};
  for (const char* name : {"Sparta", "pBMW", "pJASS"}) {
    const auto algo = algos::MakeAlgorithm(name);
    const auto params = ExactParams();
    const Calibration cal = Calibrate(bench, *algo, queries, params);

    for (const double load : loads) {
      for (const bool protect : {true, false}) {
        const auto res = bench.MeasureOpenLoop(
            *algo, queries, params,
            MakeServeConfig(protect, load * cal.capacity_qps, 17, cal.slo,
                            cal.capacity_qps, cal.service_ns,
                            serve::ArrivalKind::kPoisson),
            driver::kMachineWorkers);
        const auto& s = res.serve;
        table.AddRow({name, protect ? "protected" : "unprotected",
                      driver::FormatF(load, 1),
                      driver::FormatF(load * cal.capacity_qps, 0),
                      driver::FormatF(cal.capacity_qps, 0),
                      std::to_string(s.admitted), std::to_string(s.shed),
                      std::to_string(s.rejected_full),
                      std::to_string(s.completed),
                      std::to_string(s.degraded),
                      driver::FormatF(s.GoodputQps(), 0),
                      driver::FormatF(PctMs(s.e2e_ns, 50), 2),
                      driver::FormatF(PctMs(s.e2e_ns, 99), 2),
                      std::to_string(s.max_queue_depth),
                      driver::FormatPct(res.mean_recall)});
      }
      std::cerr << "  [overload] " << name << " load " << load << "x done\n";
    }
  }
  Emit(table);
}

void BurstyArrivals(driver::BenchDriver& bench,
                    std::span<const corpus::Query> queries) {
  driver::Table table(
      "Overload: bursty arrivals",
      {"variant", "arrivals", "offered_qps", "admitted", "shed",
       "goodput_qps", "p99_ms", "max_queue", "recall"});

  for (const char* name : {"Sparta", "pBMW"}) {
    const auto algo = algos::MakeAlgorithm(name);
    const auto params = ExactParams();
    const Calibration cal = Calibrate(bench, *algo, queries, params);

    // Same long-run offered load (1.2x capacity), smooth vs in squalls:
    // the MMPP bursts push the queue much deeper, so the ladder and
    // shedding work harder for the same mean load.
    for (const auto kind :
         {serve::ArrivalKind::kPoisson, serve::ArrivalKind::kBursty}) {
      const auto res = bench.MeasureOpenLoop(
          *algo, queries, params,
          MakeServeConfig(true, 1.2 * cal.capacity_qps, 23, cal.slo,
                          cal.capacity_qps, cal.service_ns, kind),
          driver::kMachineWorkers);
      const auto& s = res.serve;
      table.AddRow(
          {name, kind == serve::ArrivalKind::kPoisson ? "poisson" : "bursty",
           driver::FormatF(1.2 * cal.capacity_qps, 0),
           std::to_string(s.admitted),
           std::to_string(s.shed), driver::FormatF(s.GoodputQps(), 0),
           driver::FormatF(PctMs(s.e2e_ns, 99), 2),
           std::to_string(s.max_queue_depth),
           driver::FormatPct(res.mean_recall)});
    }
    std::cerr << "  [overload] bursty " << name << " done\n";
  }
  Emit(table);
}

void BreakerUnderFaultStorm(driver::BenchDriver& bench,
                            std::span<const corpus::Query> queries) {
  driver::Table table(
      "Overload: circuit breaker under fault storm",
      {"variant", "breaker", "faulted", "dropped", "trips", "probes",
       "goodput_qps", "recall"});

  const auto algo = algos::MakeAlgorithm("Sparta");
  const auto params = ExactParams();
  const Calibration cal = Calibrate(bench, *algo, queries, params);

  // A persistent I/O error storm: retries saturate and queries come
  // back kPartialAfterFault. Without the breaker every arrival is
  // served into the storm; with it, failure bursts open the circuit and
  // arrivals are dropped at the door until half-open probes succeed.
  // I/O faults fire on SSD reads only, so the page cache is pinned tiny
  // to keep the storm active in steady state (a warm cache would
  // otherwise absorb all reads after the first pass).
  for (const bool breaker : {false, true}) {
    auto sc = MakeServeConfig(true, 0.8 * cal.capacity_qps, 29, cal.slo,
                              cal.capacity_qps, cal.service_ns,
                              serve::ArrivalKind::kPoisson);
    sc.breaker_enabled = breaker;
    sc.breaker.failure_threshold = 6;
    sc.breaker.window_ns = 20 * exec::kMillisecond;
    sc.breaker.open_ns = 10 * exec::kMillisecond;
    auto config = bench.MakeSimConfig(driver::kMachineWorkers);
    config.page_cache_bytes = 64 * 1024;
    config.faults.seed = 31;
    config.faults.io_error_prob = 0.6;
    config.faults.io_retry_limit = 1;
    const auto res =
        bench.MeasureOpenLoop(*algo, queries, params, sc, config);
    const auto& s = res.serve;
    table.AddRow({"Sparta", breaker ? "on" : "off",
                  std::to_string(s.faulted),
                  std::to_string(s.breaker_dropped),
                  std::to_string(s.breaker_trips),
                  std::to_string(s.breaker_probes),
                  driver::FormatF(s.GoodputQps(), 0),
                  driver::FormatPct(res.mean_recall)});
  }
  std::cerr << "  [overload] breaker done\n";
  Emit(table);
}

void SloBurnSeries(driver::BenchDriver& bench,
                   std::span<const corpus::Query> queries) {
  driver::Table table(
      "Overload: SLO burn-rate timeline (protected, 1.5x capacity)",
      {"variant", "buckets", "breaches", "max_burn_pm", "goodput_qps",
       "recall"});

  const auto algo = algos::MakeAlgorithm("Sparta");
  const auto params = ExactParams();
  const Calibration cal = Calibrate(bench, *algo, queries, params);

  // Past-the-knee protected run with the windowed monitor on. Buckets
  // are 50 ms of virtual time so the short serving horizon still yields
  // a readable timeline; the alert window spans 5 buckets.
  auto sc = MakeServeConfig(true, 1.5 * cal.capacity_qps, 17, cal.slo,
                            cal.capacity_qps, cal.service_ns,
                            serve::ArrivalKind::kPoisson);
  sc.slo_monitor.enabled = true;
  sc.slo_monitor.bucket_ns = 50 * exec::kMillisecond;
  sc.slo_monitor.window_buckets = 5;
  sc.slo_monitor.min_samples = 10;
  const auto res = bench.MeasureOpenLoop(*algo, queries, params, sc,
                                         driver::kMachineWorkers);
  const auto& s = res.serve;

  const std::string path = ResultsDir() + "/overload_slo_burn_series.csv";
  std::ofstream out(path);
  if (out) {
    out << s.series.ToCsv();
  } else {
    std::cerr << "warning: could not write " << path << "\n";
  }

  table.AddRow({"Sparta", std::to_string(s.series.num_buckets()),
                std::to_string(s.slo_breaches),
                std::to_string(s.series.MaxLevel("burn_pm")),
                driver::FormatF(s.GoodputQps(), 0),
                driver::FormatPct(res.mean_recall)});
  std::cerr << "  [overload] slo burn series done\n";
  Emit(table);
}

void Run() {
  const corpus::Dataset& ds = Cw();
  driver::BenchDriver bench(ds);
  const auto queries = Take(ds.queries().OfLength(12), 50);
  GoodputVsLoad(bench, queries);
  BurstyArrivals(bench, queries);
  BreakerUnderFaultStorm(bench, queries);
  SloBurnSeries(bench, queries);
}

}  // namespace
}  // namespace sparta::bench

int main() { sparta::bench::Run(); }

// Figures 3d-3e: Sparta-high against the *low-recall* variants of the
// state-of-the-art web algorithms (pBMW f=10, pJASS p=0.005) — even with
// recall sacrificed, neither matches Sparta's latency on long queries,
// and neither fares well on the large corpus.
#include "bench_common.h"

namespace sparta::bench {
namespace {

void RunDataset(const corpus::Dataset& ds, std::string_view fig) {
  driver::BenchDriver bench(ds);

  std::vector<driver::AlgoVariant> variants;
  for (const auto& v : driver::HighRecallVariants()) {
    if (v.algorithm == "Sparta") variants.push_back(v);
  }
  for (const auto& v : driver::LowRecallVariants()) variants.push_back(v);

  std::vector<std::string> columns = {"terms"};
  for (const auto& v : variants) {
    columns.push_back(v.label + "_mean");
    columns.push_back(v.label + "_p95");
  }
  driver::Table table(std::string(fig) +
                          ": Sparta-high vs low-recall variants, " +
                          ds.spec().name,
                      columns);

  for (int terms = 1; terms <= 12; ++terms) {
    const auto queries = Take(ds.queries().OfLength(terms), 100);
    std::vector<std::string> row = {std::to_string(terms)};
    for (const auto& variant : variants) {
      const auto algo = algos::MakeAlgorithm(variant.algorithm);
      const auto res =
          bench.MeasureLatency(*algo, queries, variant.params,
                               driver::WorkersFor(terms),
                               /*measure_recall=*/false);
      row.push_back(res.AllOom() ? "N/A"
                                 : driver::FormatF(res.MeanMs(), 1));
      row.push_back(res.AllOom() ? "N/A"
                                 : driver::FormatF(res.P95Ms(), 1));
    }
    table.AddRow(std::move(row));
    std::cerr << "  [" << fig << "] " << ds.spec().name << " len " << terms
              << " done\n";
  }
  Emit(table);
}

}  // namespace
}  // namespace sparta::bench

int main() {
  sparta::bench::RunDataset(sparta::bench::Cw(), "Fig 3d");
  sparta::bench::RunDataset(sparta::bench::Cwx10(), "Fig 3e");
}

// Shared scaffolding for the per-table/per-figure benchmark binaries.
//
// Datasets are built once and cached under data/ (see corpus/datasets.h);
// tables are printed to stdout and exported as CSV under results/.
// Set SPARTA_QUICK=1 for a fast smoke run with reduced query counts.
#pragma once

#include <cstdlib>
#include <iostream>
#include <span>
#include <string>

#include "baselines/registry.h"
#include "corpus/datasets.h"
#include "driver/bench_driver.h"
#include "driver/bench_json.h"
#include "driver/experiment.h"
#include "driver/table.h"

namespace sparta::bench {

inline const corpus::Dataset& Cw() {
  return corpus::GetDataset(corpus::ClueWebSimSpec());
}

inline const corpus::Dataset& Cwx10() {
  return corpus::GetDataset(corpus::ClueWebX10SimSpec());
}

/// Output directory for CSV/JSON/report artifacts. Defaults to the
/// committed results/ tree; run_benches.sh --json-only points it at a
/// scratch directory so fresh numbers never clobber the baseline.
inline std::string ResultsDir() {
  const char* dir = std::getenv("SPARTA_RESULTS_DIR");
  return (dir != nullptr && dir[0] != '\0') ? dir : "results";
}

inline void Emit(const driver::Table& table) {
  table.Print(std::cout);
  if (!table.WriteCsv(ResultsDir())) {
    std::cerr << "warning: could not write CSV for '" << table.title()
              << "'\n";
  }
}

inline void EmitJson(const driver::BenchJson& json) {
  if (!json.Write(ResultsDir())) {
    std::cerr << "warning: could not write BENCH_" << json.name()
              << ".json\n";
  }
}

/// Takes the first `n` (quick-mode-adjusted) queries of a bucket.
inline std::span<const corpus::Query> Take(
    const std::vector<corpus::Query>& bucket, std::size_t n) {
  return {bucket.data(), std::min(driver::QueryBudget(n), bucket.size())};
}

}  // namespace sparta::bench

// Shared scaffolding for the per-table/per-figure benchmark binaries.
//
// Datasets are built once and cached under data/ (see corpus/datasets.h);
// tables are printed to stdout and exported as CSV under results/.
// Set SPARTA_QUICK=1 for a fast smoke run with reduced query counts.
#pragma once

#include <iostream>
#include <span>

#include "baselines/registry.h"
#include "corpus/datasets.h"
#include "driver/bench_driver.h"
#include "driver/experiment.h"
#include "driver/table.h"

namespace sparta::bench {

inline const corpus::Dataset& Cw() {
  return corpus::GetDataset(corpus::ClueWebSimSpec());
}

inline const corpus::Dataset& Cwx10() {
  return corpus::GetDataset(corpus::ClueWebX10SimSpec());
}

inline const char* kResultsDir = "results";

inline void Emit(const driver::Table& table) {
  table.Print(std::cout);
  if (!table.WriteCsv(kResultsDir)) {
    std::cerr << "warning: could not write CSV for '" << table.title()
              << "'\n";
  }
}

/// Takes the first `n` (quick-mode-adjusted) queries of a bucket.
inline std::span<const corpus::Query> Take(
    const std::vector<corpus::Query>& bucket, std::size_t n) {
  return {bucket.data(), std::min(driver::QueryBudget(n), bucket.size())};
}

}  // namespace sparta::bench

// Table 3: recall of the approximate variants on 12-term queries, both
// corpora. High-recall variants should land at ~96%+ (that is how the
// paper selected their parameters); pBMW-low trades ~20% of recall away.
#include "bench_common.h"

namespace sparta::bench {
namespace {

void Run() {
  driver::Table table("Table 3: recall of approximate variants, 12-term",
                      {"dataset", "variant", "recall", "mean_ms", "oom"});

  for (const corpus::Dataset* ds : {&Cw(), &Cwx10()}) {
    driver::BenchDriver bench(*ds);
    const auto queries = Take(ds->queries().OfLength(12), 100);
    auto variants = driver::HighRecallVariants();
    for (const auto& v : driver::LowRecallVariants()) variants.push_back(v);
    for (const auto& variant : variants) {
      const auto algo = algos::MakeAlgorithm(variant.algorithm);
      const auto res = bench.MeasureLatency(*algo, queries, variant.params,
                                            driver::kMachineWorkers);
      table.AddRow({ds->spec().name, variant.label,
                    res.AllOom() ? "N/A"
                                 : driver::FormatPct(res.mean_recall),
                    res.AllOom() ? "N/A" : driver::FormatF(res.MeanMs(), 1),
                    std::to_string(res.oom)});
      std::cerr << "  [table3] " << ds->spec().name << " " << variant.label
                << " done\n";
    }
  }
  Emit(table);
}

}  // namespace
}  // namespace sparta::bench

int main() { sparta::bench::Run(); }

// Ablation study of Sparta's §4.3 design choices (beyond the paper's
// tables): each optimization is switched off in isolation, and segment
// size / Φ are swept. The "all off" row is exactly pNRA.
#include "core/sparta.h"

#include "bench_common.h"

namespace sparta::bench {
namespace {

void RunAblation(const corpus::Dataset& ds) {
  driver::BenchDriver bench(ds);
  const auto queries = Take(ds.queries().OfLength(12), 50);

  topk::SearchParams params;
  params.k = driver::DefaultK();
  params.delta = driver::DefaultDelta();

  struct Config {
    std::string label;
    core::SpartaOptions options;
  };
  std::vector<Config> configs;
  {
    core::SpartaOptions o;
    configs.push_back({"Sparta (all opts)", o});
    o = {};
    o.lazy_ub_updates = false;
    configs.push_back({"- lazy UB (eager)", o});
    o = {};
    o.cleaner_prunes = false;
    configs.push_back({"- cleaner pruning", o});
    o = {};
    o.term_maps = false;
    configs.push_back({"- termMap replicas", o});
    o = {};
    o.insert_cutoff_at_ubstop = false;
    o.cleaner_prunes = false;  // cutoff is a precondition of pruning
    o.term_maps = false;
    configs.push_back({"- insert cutoff (&dependents)", o});
    o = {};
    o.lazy_ub_updates = false;
    o.cleaner_prunes = false;
    o.term_maps = false;
    o.insert_cutoff_at_ubstop = false;
    configs.push_back({"all off (= pNRA)", o});
  }

  driver::Table table("Ablation: Sparta optimizations, 12-term, " +
                          ds.spec().name,
                      {"configuration", "mean_ms", "p95_ms", "recall"});
  for (const auto& config : configs) {
    const core::Sparta algo(config.options);
    const auto res = bench.MeasureLatency(algo, queries, params,
                                          driver::kMachineWorkers);
    table.AddRow({config.label, driver::FormatF(res.MeanMs(), 2),
                  driver::FormatF(res.P95Ms(), 2),
                  driver::FormatPct(res.mean_recall)});
    std::cerr << "  [ablation] " << config.label << " done\n";
  }
  Emit(table);

  // Parameter sweeps: segment size and the termMap threshold Φ.
  driver::Table seg("Ablation: segment size sweep, 12-term, " +
                        ds.spec().name,
                    {"seg_size", "mean_ms", "recall"});
  for (const std::uint32_t s : {64u, 256u, 1024u, 4096u, 16384u}) {
    auto p = params;
    p.seg_size = s;
    const core::Sparta algo;
    const auto res =
        bench.MeasureLatency(algo, queries, p, driver::kMachineWorkers);
    seg.AddRow({std::to_string(s), driver::FormatF(res.MeanMs(), 2),
                driver::FormatPct(res.mean_recall)});
  }
  Emit(seg);

  driver::Table phi("Ablation: termMap threshold Phi sweep, 12-term, " +
                        ds.spec().name,
                    {"phi", "mean_ms", "recall"});
  for (const std::size_t f : {0ul, 1000ul, 10000ul, 100000ul}) {
    auto p = params;
    p.phi = f;
    const core::Sparta algo;
    const auto res =
        bench.MeasureLatency(algo, queries, p, driver::kMachineWorkers);
    phi.AddRow({std::to_string(f), driver::FormatF(res.MeanMs(), 2),
                driver::FormatPct(res.mean_recall)});
  }
  Emit(phi);
}

}  // namespace
}  // namespace sparta::bench

int main() { sparta::bench::RunAblation(sparta::bench::Cw()); }

// Figures 3a-3c: latency scaling with query length for the high-recall
// variants.
//   3a: mean latency vs #terms, ClueWeb-sim
//   3b: 95th-percentile latency vs #terms, ClueWeb-sim
//   3c: mean latency vs #terms, ClueWebX10-sim
// Workers per query = number of terms (max parallelism for the TA
// family), as in the paper.
#include "bench_common.h"

namespace sparta::bench {
namespace {

void RunDataset(const corpus::Dataset& ds, bool include_p95,
                driver::BenchJson& json) {
  driver::BenchDriver bench(ds);
  const auto variants = driver::HighRecallVariants();

  std::vector<std::string> columns = {"terms"};
  for (const auto& v : variants) columns.push_back(v.label + "_mean");
  if (include_p95) {
    for (const auto& v : variants) columns.push_back(v.label + "_p95");
  }
  driver::Table table(
      include_p95 ? "Fig 3a-3b: latency (ms) vs query length, " +
                        ds.spec().name
                  : "Fig 3c: mean latency (ms) vs query length, " +
                        ds.spec().name,
      columns);

  for (int terms = 1; terms <= 12; ++terms) {
    const auto queries = Take(ds.queries().OfLength(terms), 100);
    std::vector<std::string> row = {std::to_string(terms)};
    std::vector<std::string> p95;
    for (const auto& variant : variants) {
      const auto algo = algos::MakeAlgorithm(variant.algorithm);
      const auto res =
          bench.MeasureLatency(*algo, queries, variant.params,
                               driver::WorkersFor(terms),
                               /*measure_recall=*/false);
      row.push_back(res.AllOom() ? "N/A"
                                 : driver::FormatF(res.MeanMs(), 1));
      if (include_p95) {
        p95.push_back(res.AllOom() ? "N/A"
                                   : driver::FormatF(res.P95Ms(), 1));
      }
      if (!res.AllOom()) {
        json.SetLatency(ds.spec().name + "/" + variant.label + "/t" +
                            std::to_string(terms),
                        res);
      }
    }
    row.insert(row.end(), p95.begin(), p95.end());
    table.AddRow(std::move(row));
    std::cerr << "  [fig3] " << ds.spec().name << " len " << terms
              << " done\n";
  }
  Emit(table);
}

}  // namespace
}  // namespace sparta::bench

int main() {
  sparta::driver::BenchJson json("fig3_latency");
  sparta::bench::RunDataset(sparta::bench::Cw(), /*include_p95=*/true,
                            json);
  sparta::bench::RunDataset(sparta::bench::Cwx10(),
                            /*include_p95=*/false, json);
  sparta::bench::EmitJson(json);
}

// Degradation experiment: anytime behavior under deadlines and injected
// faults (DESIGN.md §7, EXPERIMENTS.md "degradation").
//
// Three tables:
//  1. Recall vs deadline — queries cut off at fractions of their
//     unconstrained mean latency return best-so-far top-k sets whose
//     recall climbs back to the unconstrained value as the deadline
//     loosens.
//  2. Tail latency under stragglers — seeded worker stalls stretch the
//     tail (p95/p99) while leaving result sets exact.
//  3. Transient I/O errors — retry-with-backoff absorbs low error rates
//     at a latency premium; saturated rates escalate to degraded
//     statuses instead of hanging.
#include "bench_common.h"

namespace sparta::bench {
namespace {

topk::SearchParams ExactParams() {
  topk::SearchParams params;
  params.k = driver::DefaultK();
  return params;
}

void RecallVsDeadline(driver::BenchDriver& bench,
                      std::span<const corpus::Query> queries) {
  driver::Table table(
      "Degradation: recall vs deadline",
      {"variant", "deadline_ms", "recall", "degraded", "mean_ms",
       "postings_frac"});

  for (const char* name : {"Sparta", "pBMW", "pJASS"}) {
    const auto algo = algos::MakeAlgorithm(name);
    const auto params = ExactParams();
    const auto free_run = bench.MeasureLatency(*algo, queries, params,
                                               driver::kMachineWorkers);
    const auto mean_ns =
        static_cast<exec::VirtualTime>(free_run.latency_ns.Mean());

    // Deadlines as fractions of the unconstrained mean; the last row is
    // loose enough that no query degrades and recall must match the
    // unconstrained run.
    const double fractions[] = {0.125, 0.25, 0.5, 1.0, 8.0};
    for (const double frac : fractions) {
      auto p = params;
      p.deadline = static_cast<exec::VirtualTime>(
          frac * static_cast<double>(mean_ns));
      p.deadline = std::max<exec::VirtualTime>(p.deadline, 1);
      const auto res = bench.MeasureLatency(*algo, queries, p,
                                            driver::kMachineWorkers);
      table.AddRow({name, driver::FormatMs(p.deadline),
                    driver::FormatPct(res.mean_recall),
                    std::to_string(res.degraded),
                    driver::FormatF(res.MeanMs(), 2),
                    driver::FormatPct(res.mean_postings_fraction)});
    }
    table.AddRow({name, "none", driver::FormatPct(free_run.mean_recall),
                  std::to_string(free_run.degraded),
                  driver::FormatF(free_run.MeanMs(), 2),
                  driver::FormatPct(free_run.mean_postings_fraction)});
    std::cerr << "  [degradation] recall-vs-deadline " << name << " done\n";
  }
  Emit(table);
}

void TailLatencyUnderStragglers(driver::BenchDriver& bench,
                                std::span<const corpus::Query> queries) {
  driver::Table table(
      "Degradation: tail latency under stragglers",
      {"variant", "stall_prob", "mean_ms", "p95_ms", "p99_ms", "faults",
       "recall"});

  struct Plan {
    const char* label;
    double stall_prob;
  };
  const Plan plans[] = {{"clean", 0.0}, {"mild", 0.02}, {"harsh", 0.10}};

  for (const char* name : {"Sparta", "pBMW"}) {
    const auto algo = algos::MakeAlgorithm(name);
    const auto params = ExactParams();
    for (const Plan& plan : plans) {
      auto config = bench.MakeSimConfig(driver::kMachineWorkers);
      config.faults.seed = 7;
      config.faults.stall_prob = plan.stall_prob;
      config.faults.stall_ns = 2 * exec::kMillisecond;
      const auto res = bench.MeasureLatency(*algo, queries, params, config);
      table.AddRow({name, plan.label, driver::FormatF(res.MeanMs(), 2),
                    driver::FormatF(res.P95Ms(), 2),
                    driver::FormatF(res.P99Ms(), 2),
                    std::to_string(res.faults_injected),
                    driver::FormatPct(res.mean_recall)});
    }
    std::cerr << "  [degradation] stragglers " << name << " done\n";
  }
  Emit(table);
}

void TransientIoErrors(driver::BenchDriver& bench,
                       std::span<const corpus::Query> queries) {
  driver::Table table(
      "Degradation: transient I/O errors",
      {"error_prob", "io_retries", "degraded", "mean_ms", "recall"});

  const auto algo = algos::MakeAlgorithm("Sparta");
  const auto params = ExactParams();
  for (const double prob : {0.0, 0.001, 0.01}) {
    auto config = bench.MakeSimConfig(driver::kMachineWorkers);
    config.faults.seed = 11;
    config.faults.io_error_prob = prob;
    config.faults.io_retry_limit = 3;
    const auto res = bench.MeasureLatency(*algo, queries, params, config);
    table.AddRow({driver::FormatF(prob, 3),
                  std::to_string(res.io_retries),
                  std::to_string(res.degraded),
                  driver::FormatF(res.MeanMs(), 2),
                  driver::FormatPct(res.mean_recall)});
  }
  std::cerr << "  [degradation] io-errors done\n";
  Emit(table);
}

void Run() {
  const corpus::Dataset& ds = Cw();
  driver::BenchDriver bench(ds);
  const auto queries = Take(ds.queries().OfLength(12), 50);
  RecallVsDeadline(bench, queries);
  TailLatencyUnderStragglers(bench, queries);
  TransientIoErrors(bench, queries);
}

}  // namespace
}  // namespace sparta::bench

int main() { sparta::bench::Run(); }

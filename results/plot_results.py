#!/usr/bin/env python3
"""Plot the benchmark CSVs produced by run_benches.sh.

Usage:  python3 results/plot_results.py [results_dir] [out_dir]

Requires matplotlib (not needed to *run* the benchmarks, only to plot).
Produces one PNG per figure-style CSV, mirroring the paper's plots:
latency-vs-terms (Figs 3a-3e), recall-over-time (3f-3g),
latency-vs-workers (3h-3i), throughput-vs-terms (Fig 4) — plus a
contention-breakdown stacked bar (per-structure lock wait, Sparta vs
pRA across worker counts) fed from BENCH_contention.json, and a
two-panel SLO timeline (goodput/offered/shed per bucket over the
burn-rate trace with its alert line) fed from the windowed
SloMonitor's overload_slo_burn_series.csv.
"""
import csv
import json
import pathlib
import sys


def load(path):
    with open(path) as f:
        rows = list(csv.reader(f))
    return rows[0], rows[1:]


def numeric(cell):
    try:
        return float(cell.rstrip("%"))
    except ValueError:
        return None


def plot_series(path, out_dir, logy):
    import matplotlib.pyplot as plt

    header, rows = load(path)
    x = [numeric(r[0]) for r in rows]
    fig, ax = plt.subplots(figsize=(7, 4.5))
    for col in range(1, len(header)):
        y = [numeric(r[col]) for r in rows]
        pts = [(a, b) for a, b in zip(x, y) if a is not None and b is not None]
        if not pts:
            continue
        ax.plot(*zip(*pts), marker="o", markersize=3, label=header[col])
    if logy:
        ax.set_yscale("log")
    ax.set_xlabel(header[0])
    ax.set_title(path.stem.replace("_", " "))
    ax.legend(fontsize=7)
    ax.grid(alpha=0.3)
    out = out_dir / (path.stem + ".png")
    fig.tight_layout()
    fig.savefig(out, dpi=140)
    plt.close(fig)
    print(f"wrote {out}")


def plot_contention(path, out_dir):
    """Stacked bars of per-structure lock-wait ms per config, one bar
    per (algorithm, workers) column of BENCH_contention.json."""
    import matplotlib.pyplot as plt

    with open(path) as f:
        doc = json.load(f)
    configs = sorted(doc.get("configs", {}).items())
    if not configs:
        return False
    prefix = "lock_wait_virtual_ms."
    structures = sorted(
        {m[len(prefix):] for _, metrics in configs for m in metrics
         if m.startswith(prefix)})
    if not structures:
        return False
    fig, ax = plt.subplots(figsize=(8, 4.5))
    xs = range(len(configs))
    bottoms = [0.0] * len(configs)
    for s in structures:
        heights = [metrics.get(prefix + s, 0.0) for _, metrics in configs]
        if not any(heights):
            continue
        ax.bar(xs, heights, bottom=bottoms, label=s)
        bottoms = [b + h for b, h in zip(bottoms, heights)]
    ax.set_xticks(list(xs))
    ax.set_xticklabels([name for name, _ in configs], rotation=30,
                       ha="right", fontsize=7)
    ax.set_ylabel("lock wait (virtual ms, all workers)")
    ax.set_title("contention breakdown by structure")
    ax.legend(fontsize=7)
    ax.grid(alpha=0.3, axis="y")
    out = out_dir / "contention_breakdown.png"
    fig.tight_layout()
    fig.savefig(out, dpi=140)
    plt.close(fig)
    print(f"wrote {out}")
    return True


def plot_slo_burn(path, out_dir):
    """Two stacked panels over the SloMonitor's bucket timeline: rates
    (offered / admitted / goodput / shed per bucket) on top, the SLO
    burn rate with its budget and alert lines below. Column-name
    driven, so variants that never shed (or never breach) still plot."""
    import matplotlib.pyplot as plt

    header, rows = load(path)
    col = {name: i for i, name in enumerate(header)}
    if "start_ms" not in col or "burn_pm" not in col:
        return False
    t = [numeric(r[col["start_ms"]]) for r in rows]
    fig, (ax_rate, ax_burn) = plt.subplots(
        2, 1, figsize=(8, 5.5), sharex=True,
        gridspec_kw={"height_ratios": [2, 1]})
    for name in ("offered", "admitted", "goodput", "shed"):
        if name not in col:
            continue
        y = [numeric(r[col[name]]) for r in rows]
        ax_rate.plot(t, y, marker="o", markersize=2.5, label=name)
    ax_rate.set_ylabel("queries / bucket")
    ax_rate.set_title("overload SLO timeline: rates and burn")
    ax_rate.legend(fontsize=7)
    ax_rate.grid(alpha=0.3)
    # burn_pm is per-mille: 1000 = spending the error budget exactly.
    burn = [numeric(r[col["burn_pm"]]) for r in rows]
    ax_burn.plot(t, [b / 1000.0 if b is not None else None for b in burn],
                 color="tab:red", marker="o", markersize=2.5,
                 label="burn rate")
    ax_burn.axhline(1.0, color="gray", linestyle=":", linewidth=1,
                    label="budget (1x)")
    ax_burn.axhline(2.0, color="tab:red", linestyle="--", linewidth=1,
                    label="alert (2x)")
    ax_burn.set_xlabel("virtual time (ms)")
    ax_burn.set_ylabel("burn rate")
    ax_burn.legend(fontsize=7)
    ax_burn.grid(alpha=0.3)
    out = out_dir / "overload_slo_burn.png"
    fig.tight_layout()
    fig.savefig(out, dpi=140)
    plt.close(fig)
    print(f"wrote {out}")
    return True


def main():
    results = pathlib.Path(sys.argv[1] if len(sys.argv) > 1 else "results")
    out_dir = pathlib.Path(sys.argv[2] if len(sys.argv) > 2 else results)
    out_dir.mkdir(parents=True, exist_ok=True)
    plotted = 0
    contention = results / "BENCH_contention.json"
    if contention.exists() and plot_contention(contention, out_dir):
        plotted += 1
    slo_series = results / "overload_slo_burn_series.csv"
    if slo_series.exists() and plot_slo_burn(slo_series, out_dir):
        plotted += 1
    for path in sorted(results.glob("*.csv")):
        name = path.stem
        if name.startswith("fig_3f") or name.startswith("fig_3g"):
            plot_series(path, out_dir, logy=False)
        elif name.startswith(("fig_3", "fig_4", "extension")):
            plot_series(path, out_dir, logy=True)
        else:
            continue  # tables stay tabular
        plotted += 1
    if plotted == 0:
        print("no figure CSVs found; run ./run_benches.sh first",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Splices the verbatim bench_output.txt into EXPERIMENTS.md's
"Measured output" code block. Run after ./run_benches.sh."""
import pathlib
import re
import sys

root = pathlib.Path(__file__).resolve().parent.parent
experiments = root / "EXPERIMENTS.md"
bench = root / "bench_output.txt"

text = experiments.read_text()
output = bench.read_text().rstrip()

pattern = re.compile(
    r"(## Measured output\n.*?```\n).*?(\n```)", re.DOTALL)
replaced, n = pattern.subn(
    lambda m: m.group(1) + output + m.group(2), text)
if n != 1:
    print("could not locate the Measured output block", file=sys.stderr)
    sys.exit(1)
experiments.write_text(replaced)
print(f"spliced {len(output.splitlines())} lines into EXPERIMENTS.md")

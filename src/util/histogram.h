// Latency sample accumulator with exact percentiles.
//
// Experiments collect at most a few thousand samples per cell, so we keep
// raw samples and sort on demand instead of approximating.
#pragma once

#include <cstdint>
#include <vector>

namespace sparta::util {

class Histogram {
 public:
  void Add(std::int64_t sample);
  void Merge(const Histogram& other);

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double Mean() const;
  std::int64_t Min() const;
  std::int64_t Max() const;
  /// Exact percentile by nearest-rank; q in [0, 100].
  std::int64_t Percentile(double q) const;

  const std::vector<std::int64_t>& samples() const { return samples_; }

 private:
  void EnsureSorted() const;

  std::vector<std::int64_t> samples_;
  mutable bool sorted_ = true;
};

}  // namespace sparta::util

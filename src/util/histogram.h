// Latency sample accumulator with exact percentiles.
//
// Experiments collect at most a few thousand samples per cell, so we keep
// raw samples and sort on demand instead of approximating. Min/max/sum
// are additionally tracked streaming (O(1) per Add) so tail extrema and
// means survive Merge() without touching the sample vector — overload
// curves combine per-worker histograms this way.
#pragma once

#include <cstdint>
#include <vector>

namespace sparta::util {

class Histogram {
 public:
  void Add(std::int64_t sample);
  /// Combines another histogram into this one (per-worker histograms are
  /// merged into the experiment-level one). Streaming min/max/sum merge
  /// in O(1); samples are concatenated for percentile queries.
  void Merge(const Histogram& other);

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double Mean() const;
  std::int64_t Min() const;
  std::int64_t Max() const;
  /// Exact percentile by nearest-rank; q in [0, 100].
  std::int64_t Percentile(double q) const;
  /// Tail shorthands. p999 needs >= 1000 samples to be distinct from
  /// Max(); with fewer it degrades to the nearest-rank neighbor.
  std::int64_t P99() const { return Percentile(99.0); }
  std::int64_t P999() const { return Percentile(99.9); }

  const std::vector<std::int64_t>& samples() const { return samples_; }

 private:
  void EnsureSorted() const;

  std::vector<std::int64_t> samples_;
  mutable bool sorted_ = true;
  // Streaming aggregates, valid whenever !empty().
  std::int64_t min_ = 0;
  std::int64_t max_ = 0;
  double sum_ = 0.0;
};

}  // namespace sparta::util

// Deterministic, fast pseudo-random number generation.
//
// All randomness in the library flows through these generators so that
// corpus generation, query sampling, and simulations are reproducible
// from a single seed.
#pragma once

#include <cstdint>
#include <cmath>

#include "util/common.h"

namespace sparta::util {

/// SplitMix64 — used for seeding and for cheap stateless hashing.
constexpr std::uint64_t SplitMix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Stateless 64-bit mix; good avalanche, used for hash tables.
constexpr std::uint64_t Mix64(std::uint64_t x) {
  std::uint64_t s = x;
  return SplitMix64(s);
}

/// xoshiro256** 1.0 by Blackman & Vigna. Fast, high-quality, 2^256 period.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eedULL) { Seed(seed); }

  void Seed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = SplitMix64(sm);
  }

  std::uint64_t Next() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t Below(std::uint64_t bound) {
    SPARTA_CHECK(bound > 0);
    // Lemire's multiply-shift rejection-free-ish reduction (bias < 2^-64
    // for the bounds used here, which is irrelevant for benchmarking).
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(Next()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in (0, 1] — safe as a log() argument.
  double NextDoublePositive() {
    return (static_cast<double>(Next() >> 11) + 1.0) * 0x1.0p-53;
  }

  /// Geometric number of failures before the first success;
  /// success probability p in (0, 1]. Returns values in {0, 1, 2, ...}.
  std::uint64_t Geometric(double p) {
    SPARTA_CHECK(p > 0.0 && p <= 1.0);
    if (p >= 1.0) return 0;
    const double u = NextDoublePositive();
    return static_cast<std::uint64_t>(std::floor(std::log(u) /
                                                 std::log1p(-p)));
  }

  /// Gaussian via Marsaglia polar method.
  double Gaussian(double mean, double stddev);

  /// Fisher-Yates shuffle of [first, last).
  template <typename It>
  void Shuffle(It first, It last) {
    const auto n = static_cast<std::uint64_t>(last - first);
    for (std::uint64_t i = n; i > 1; --i) {
      const auto j = Below(i);
      using std::swap;
      swap(first[i - 1], first[j]);
    }
  }

 private:
  static constexpr std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace sparta::util

// Racy<T>: the explicit marker for *intentionally* lock-free shared
// state (DESIGN.md §11).
//
// Sparta's algorithm relies on a handful of deliberate benign races —
// the lazy UB reads of §4.3, done flags, heap update-time words, pBMW's
// shared Θ. Those fields must be exempt from both checkers at once:
//   * statically, the lint suite (tools/lint/sparta_lint.py) accepts a
//     Racy<> declaration where it would otherwise demand a
//     SPARTA_GUARDED_BY pairing;
//   * dynamically, RegisterBenign() feeds the same storage range into
//     QueryContext::AnnotateBenignRace, so the simulator's race detector
//     counts detections there as suppressed instead of reporting them.
// One declaration drives both — a field can no longer be allowlisted at
// runtime while looking like an ordinary guarded field to the compiler,
// or vice versa.
//
// Racy<T> derives from T so call sites are untouched: Racy<atomic<bool>>
// still load()s and store()s, Racy<vector<atomic<Score>>> still
// indexes. It adds no state; sizeof(Racy<T>) == sizeof(T).
#pragma once

#include <cstddef>
#include <type_traits>

namespace sparta::util {

template <typename T>
class Racy : public T {
  static_assert(std::is_class_v<T>,
                "Racy<T> wraps class types (std::atomic<U>, containers)");

 public:
  using T::T;
  Racy() = default;

  /// Registers the wrapped storage with the runtime race detector's
  /// allowlist. `Context` is any type with
  /// AnnotateBenignRace(const void*, size_t, const char*) —
  /// exec::QueryContext in practice (templated to keep this header
  /// dependency-free). Contiguous containers register their element
  /// storage; everything else registers the object itself.
  template <typename Context>
  void RegisterBenign(Context& ctx, const char* label) const {
    if constexpr (requires(const T& t) {
                    t.data();
                    t.size();
                  }) {
      ctx.AnnotateBenignRace(
          this->data(), this->size() * sizeof(*this->data()), label);
    } else {
      ctx.AnnotateBenignRace(static_cast<const T*>(this), sizeof(T), label);
    }
  }
};

}  // namespace sparta::util

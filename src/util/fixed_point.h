// Fixed-point score representation.
//
// Term scores (tf-idf) are stored in posting lists as integers scaled by
// 10^6 and rounded, following the paper (§5.2): "Using integer arithmetic
// instead of floating-point significantly speeds up document evaluation."
#pragma once

#include <cmath>

#include "util/common.h"

namespace sparta::util {

inline constexpr Score kScoreScale = 1'000'000;

/// Converts a floating-point tf-idf weight to the integer wire format.
inline Score ToFixed(double score) {
  return static_cast<Score>(std::llround(score * kScoreScale));
}

/// Converts an integer score back to its floating-point value (for
/// display only; all algorithm comparisons use the integer form).
inline double FromFixed(Score score) {
  return static_cast<double>(score) / static_cast<double>(kScoreScale);
}

}  // namespace sparta::util

// Annotated mutex + condition variable: std::mutex with clang
// thread-safety capability attributes, so GUARDED_BY fields can be
// checked at compile time (DESIGN.md §11).
//
// std::mutex itself carries no annotations under libstdc++, which makes
// it invisible to -Wthread-safety; every long-lived mutex member in the
// library uses this wrapper instead. The condition variable is a
// std::condition_variable_any so it can wait on the annotated Mutex
// directly; there is deliberately no predicate overload — callers write
// the classic `while (!pred) cv.Wait(mu);` loop, which keeps the
// predicate's guarded-field reads inside the caller where the analysis
// can see the held capability.
#pragma once

#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace sparta::util {

class SPARTA_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() SPARTA_ACQUIRE() { m_.lock(); }
  void unlock() SPARTA_RELEASE() { m_.unlock(); }
  bool try_lock() SPARTA_TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  // sparta-lint: allow(lock-pairing) the inner mutex implements the
  // Mutex capability itself; guarded fields live at the use sites.
  std::mutex m_;
};

/// RAII guard for Mutex (the std::lock_guard equivalent the analysis
/// understands).
class SPARTA_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) SPARTA_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() SPARTA_RELEASE() { mu_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable over Mutex. Wait() atomically releases the mutex,
/// blocks, and reacquires before returning; spurious wakeups are
/// possible, so callers must loop on their predicate.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) SPARTA_REQUIRES(mu) { cv_.wait(mu); }
  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace sparta::util

// Core type aliases and invariant-checking macros shared across the library.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace sparta {

/// Document identifier. Dense, 0-based within a corpus.
using DocId = std::uint32_t;
/// Term identifier. Dense, 0-based within a vocabulary.
using TermId = std::uint32_t;
/// Integer term/document score. Term scores are tf-idf values scaled by
/// 10^6 and rounded (paper §5.2); document scores are sums of term scores.
using Score = std::int64_t;

inline constexpr DocId kInvalidDoc = std::numeric_limits<DocId>::max();
inline constexpr TermId kInvalidTerm = std::numeric_limits<TermId>::max();

/// Hardware cache-line size used for padding shared state.
inline constexpr std::size_t kCacheLine = 64;

}  // namespace sparta

/// Always-on invariant check (benchmarks rely on correctness, so these are
/// not compiled out in release builds; they are cheap compared to the work
/// they guard).
#define SPARTA_CHECK(cond)                                                  \
  do {                                                                      \
    if (!(cond)) [[unlikely]] {                                             \
      std::fprintf(stderr, "SPARTA_CHECK failed at %s:%d: %s\n", __FILE__,  \
                   __LINE__, #cond);                                        \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#define SPARTA_CHECK_MSG(cond, msg)                                         \
  do {                                                                      \
    if (!(cond)) [[unlikely]] {                                             \
      std::fprintf(stderr, "SPARTA_CHECK failed at %s:%d: %s (%s)\n",       \
                   __FILE__, __LINE__, #cond, msg);                         \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

// SerialDomain: a zero-cost capability for externally-serialized state
// (DESIGN.md §11).
//
// Several mutable structures in the tree are thread-safe only by
// *construction*, not by locking: the page cache and race detector run
// on the simulator's single host thread, the serving controllers
// (admission queue, breaker state) run inside one SimExecutor::Drain
// pass, and the vocabulary is mutated during single-threaded index
// builds. Their sharing contract used to live in comments; SerialDomain
// makes it a capability the compiler checks. Fields are declared
// SPARTA_GUARDED_BY(domain_) and every entry point takes a SerialGuard,
// so any new code path that touches the state without flowing through a
// declared entry point fails the -Wthread-safety build.
//
// Entering the domain costs nothing in release builds; debug builds keep
// a reentrancy flag so two overlapping entries (i.e. a second thread, or
// recursion that would invalidate iterators) abort loudly.
#pragma once

#include "util/common.h"
#include "util/thread_annotations.h"

namespace sparta::util {

class SPARTA_CAPABILITY("serial domain") SerialDomain {
 public:
  SerialDomain() = default;
  // Copy/move produce a *fresh* (un-entered) domain: the capability
  // tracks an execution context, not data, so containing classes stay
  // copyable (e.g. Vocabulary returned through std::optional).
  SerialDomain(const SerialDomain&) {}
  SerialDomain& operator=(const SerialDomain&) { return *this; }

  void Enter() SPARTA_ACQUIRE() {
#ifndef NDEBUG
    SPARTA_CHECK_MSG(!entered_, "SerialDomain entered twice");
    entered_ = true;
#endif
  }
  void Exit() SPARTA_RELEASE() {
#ifndef NDEBUG
    entered_ = false;
#endif
  }

 private:
#ifndef NDEBUG
  bool entered_ = false;
#endif
};

class SPARTA_SCOPED_CAPABILITY SerialGuard {
 public:
  explicit SerialGuard(SerialDomain& domain) SPARTA_ACQUIRE(domain)
      : domain_(domain) {
    domain_.Enter();
  }
  ~SerialGuard() SPARTA_RELEASE() { domain_.Exit(); }
  SerialGuard(const SerialGuard&) = delete;
  SerialGuard& operator=(const SerialGuard&) = delete;

 private:
  SerialDomain& domain_;
};

}  // namespace sparta::util

#include "util/zipf.h"

#include <cmath>

#include "util/common.h"

namespace sparta::util {

std::vector<double> ZipfMandelbrotWeights(std::size_t n, double s, double q) {
  SPARTA_CHECK(n > 0);
  std::vector<double> w(n);
  double sum = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    w[r] = 1.0 / std::pow(static_cast<double>(r) + 1.0 + q, s);
    sum += w[r];
  }
  for (auto& x : w) x /= sum;
  return w;
}

AliasSampler::AliasSampler(const std::vector<double>& weights) {
  const std::size_t n = weights.size();
  SPARTA_CHECK(n > 0);
  double sum = 0.0;
  for (double w : weights) {
    SPARTA_CHECK(w >= 0.0);
    sum += w;
  }
  SPARTA_CHECK(sum > 0.0);

  prob_.assign(n, 0.0);
  alias_.assign(n, 0);

  // Scaled weights; buckets with scaled weight < 1 are "small".
  std::vector<double> scaled(n);
  for (std::size_t i = 0; i < n; ++i) {
    scaled[i] = weights[i] * static_cast<double>(n) / sum;
  }
  std::vector<std::uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(
        static_cast<std::uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  // Numerical leftovers: both queues drain to probability 1.
  for (const auto q : large) prob_[q] = 1.0;
  for (const auto q : small) prob_[q] = 1.0;
}

std::size_t AliasSampler::Sample(Rng& rng) const {
  const std::size_t bucket = rng.Below(prob_.size());
  return rng.NextDouble() < prob_[bucket] ? bucket : alias_[bucket];
}

}  // namespace sparta::util

#include "util/histogram.h"

#include <algorithm>
#include <cmath>

#include "util/common.h"

namespace sparta::util {

void Histogram::Add(std::int64_t sample) {
  if (samples_.empty()) {
    min_ = max_ = sample;
    sum_ = static_cast<double>(sample);
  } else {
    min_ = std::min(min_, sample);
    max_ = std::max(max_, sample);
    sum_ += static_cast<double>(sample);
  }
  samples_.push_back(sample);
  sorted_ = false;
}

void Histogram::Merge(const Histogram& other) {
  if (other.empty()) return;
  if (samples_.empty()) {
    min_ = other.min_;
    max_ = other.max_;
    sum_ = other.sum_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    sum_ += other.sum_;
  }
  samples_.insert(samples_.end(), other.samples_.begin(),
                  other.samples_.end());
  sorted_ = false;
}

double Histogram::Mean() const {
  SPARTA_CHECK(!samples_.empty());
  return sum_ / static_cast<double>(samples_.size());
}

std::int64_t Histogram::Min() const {
  SPARTA_CHECK(!samples_.empty());
  return min_;
}

std::int64_t Histogram::Max() const {
  SPARTA_CHECK(!samples_.empty());
  return max_;
}

void Histogram::EnsureSorted() const {
  if (!sorted_) {
    auto& mut = const_cast<std::vector<std::int64_t>&>(samples_);
    std::sort(mut.begin(), mut.end());
    sorted_ = true;
  }
}

std::int64_t Histogram::Percentile(double q) const {
  SPARTA_CHECK(!samples_.empty());
  SPARTA_CHECK(q >= 0.0 && q <= 100.0);
  EnsureSorted();
  const auto n = samples_.size();
  // Nearest-rank: smallest index i with (i+1)/n >= q/100. The epsilon
  // absorbs fp wobble when q/100*n is an exact integer (99.9% of 1000
  // computes as 999.0000000000001 and must not ceil to 1000).
  const auto rank = static_cast<std::size_t>(
      std::ceil(q / 100.0 * static_cast<double>(n) - 1e-9));
  return samples_[rank == 0 ? 0 : rank - 1];
}

}  // namespace sparta::util

#include "util/histogram.h"

#include <algorithm>
#include <cmath>

#include "util/common.h"

namespace sparta::util {

void Histogram::Add(std::int64_t sample) {
  samples_.push_back(sample);
  sorted_ = false;
}

void Histogram::Merge(const Histogram& other) {
  samples_.insert(samples_.end(), other.samples_.begin(),
                  other.samples_.end());
  sorted_ = false;
}

double Histogram::Mean() const {
  SPARTA_CHECK(!samples_.empty());
  double sum = 0.0;
  for (const auto s : samples_) sum += static_cast<double>(s);
  return sum / static_cast<double>(samples_.size());
}

std::int64_t Histogram::Min() const {
  SPARTA_CHECK(!samples_.empty());
  return *std::min_element(samples_.begin(), samples_.end());
}

std::int64_t Histogram::Max() const {
  SPARTA_CHECK(!samples_.empty());
  return *std::max_element(samples_.begin(), samples_.end());
}

void Histogram::EnsureSorted() const {
  if (!sorted_) {
    auto& mut = const_cast<std::vector<std::int64_t>&>(samples_);
    std::sort(mut.begin(), mut.end());
    sorted_ = true;
  }
}

std::int64_t Histogram::Percentile(double q) const {
  SPARTA_CHECK(!samples_.empty());
  SPARTA_CHECK(q >= 0.0 && q <= 100.0);
  EnsureSorted();
  const auto n = samples_.size();
  // Nearest-rank: smallest index i with (i+1)/n >= q/100.
  const auto rank = static_cast<std::size_t>(
      std::ceil(q / 100.0 * static_cast<double>(n)));
  return samples_[rank == 0 ? 0 : rank - 1];
}

}  // namespace sparta::util

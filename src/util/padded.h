// Padded<T>: one cache line per element (DESIGN.md §14).
//
// The companion of util::Racy<T> in the sharing contract: Racy<> marks
// storage that is *deliberately* accessed lock-free, Padded<> guarantees
// that such storage does not false-share a line with its neighbors. The
// sparta_lint `padded-shared` rule accepts either this wrapper or a raw
// alignas(kCacheLine) where a container of atomics would otherwise be
// contended-by-construction (per-domain heap update words, per-worker
// counters).
//
// The element is embedded, not derived: atomics and other final-ish
// types must be wrappable too. Access goes through get()/operator* so
// call sites make the indirection visible.
#pragma once

#include "util/common.h"

namespace sparta::util {

template <typename T>
struct alignas(kCacheLine) Padded {
  T value;

  Padded() = default;
  template <typename... Args>
  explicit Padded(Args&&... args) : value(static_cast<Args&&>(args)...) {}

  T& get() { return value; }
  const T& get() const { return value; }
  T& operator*() { return value; }
  const T& operator*() const { return value; }
  T* operator->() { return &value; }
  const T* operator->() const { return &value; }
};

static_assert(sizeof(Padded<int>) == kCacheLine);
static_assert(alignof(Padded<int>) == kCacheLine);

}  // namespace sparta::util

// Minimal test-and-test-and-set spinlock with exponential backoff.
//
// Used for very short critical sections (per-bucket map locks, per-doc
// accumulator locks) where a std::mutex's syscall path would dominate.
#pragma once

#include <atomic>
#include <thread>

#include "util/common.h"
#include "util/thread_annotations.h"

// ThreadSanitizer detection (gcc defines __SANITIZE_THREAD__; clang
// exposes it through __has_feature).
#if defined(__SANITIZE_THREAD__)
#define SPARTA_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SPARTA_TSAN 1
#endif
#endif
#ifndef SPARTA_TSAN
#define SPARTA_TSAN 0
#endif

namespace sparta::util {

class SPARTA_CAPABILITY("mutex") alignas(kCacheLine) Spinlock {
 public:
  /// Under TSan, instrumented spinning is ~10x slower and long spins
  /// starve the scheduler that would let the holder run — yield on the
  /// first failed test instead of burning an instrumented busy loop.
  static constexpr int kDefaultYieldThreshold = SPARTA_TSAN ? 1 : 256;

  /// `yield_threshold` = failed inner tests tolerated before yielding
  /// the timeslice (tunable for tests and oversubscribed hosts).
  explicit Spinlock(int yield_threshold = kDefaultYieldThreshold)
      : yield_threshold_(yield_threshold) {}
  Spinlock(const Spinlock&) = delete;
  Spinlock& operator=(const Spinlock&) = delete;

  void lock() SPARTA_ACQUIRE() {
    int spins = 0;
    for (;;) {
      if (!flag_.exchange(true, std::memory_order_acquire)) return;
      // Test-and-test-and-set: spin on a plain load to avoid bouncing the
      // cache line in exclusive state. The relaxed order is intentional
      // and TSan-clean — the load only gates the retry; the acquire
      // exchange above is the synchronizing access.
      while (flag_.load(std::memory_order_relaxed)) {
        if (++spins >= yield_threshold_) {
          std::this_thread::yield();
          spins = 0;
        }
      }
    }
  }

  bool try_lock() SPARTA_TRY_ACQUIRE(true) {
    return !flag_.load(std::memory_order_relaxed) &&
           !flag_.exchange(true, std::memory_order_acquire);
  }

  void unlock() SPARTA_RELEASE() {
    flag_.store(false, std::memory_order_release);
  }

 private:
  int yield_threshold_;
  std::atomic<bool> flag_{false};
};

/// RAII guard for Spinlock.
class SPARTA_SCOPED_CAPABILITY SpinlockGuard {
 public:
  explicit SpinlockGuard(Spinlock& lock) SPARTA_ACQUIRE(lock) : lock_(lock) {
    lock_.lock();
  }
  ~SpinlockGuard() SPARTA_RELEASE() { lock_.unlock(); }
  SpinlockGuard(const SpinlockGuard&) = delete;
  SpinlockGuard& operator=(const SpinlockGuard&) = delete;

 private:
  Spinlock& lock_;
};

}  // namespace sparta::util

// Minimal test-and-test-and-set spinlock with exponential backoff.
//
// Used for very short critical sections (per-bucket map locks, per-doc
// accumulator locks) where a std::mutex's syscall path would dominate.
#pragma once

#include <atomic>
#include <thread>

#include "util/common.h"

namespace sparta::util {

class alignas(kCacheLine) Spinlock {
 public:
  Spinlock() = default;
  Spinlock(const Spinlock&) = delete;
  Spinlock& operator=(const Spinlock&) = delete;

  void lock() {
    int spins = 0;
    for (;;) {
      if (!flag_.exchange(true, std::memory_order_acquire)) return;
      // Test-and-test-and-set: spin on a plain load to avoid bouncing the
      // cache line in exclusive state.
      while (flag_.load(std::memory_order_relaxed)) {
        if (++spins >= kYieldThreshold) {
          std::this_thread::yield();
          spins = 0;
        }
      }
    }
  }

  bool try_lock() {
    return !flag_.load(std::memory_order_relaxed) &&
           !flag_.exchange(true, std::memory_order_acquire);
  }

  void unlock() { flag_.store(false, std::memory_order_release); }

 private:
  static constexpr int kYieldThreshold = 256;
  std::atomic<bool> flag_{false};
};

}  // namespace sparta::util

#include "util/rng.h"

namespace sparta::util {

double Rng::Gaussian(double mean, double stddev) {
  // Marsaglia polar method; one deviate per call (the spare is discarded
  // to keep the generator state a pure function of the call count).
  double u, v, s;
  do {
    u = 2.0 * NextDouble() - 1.0;
    v = 2.0 * NextDouble() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  return mean + stddev * u * std::sqrt(-2.0 * std::log(s) / s);
}

}  // namespace sparta::util

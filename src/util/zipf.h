// Zipf-Mandelbrot frequency models and O(1) discrete sampling.
//
// Web-corpus term frequencies are famously Zipfian; both the synthetic
// corpus generator and the query-log generator build on this module.
#pragma once

#include <cstddef>
#include <vector>

#include "util/rng.h"

namespace sparta::util {

/// Normalized Zipf-Mandelbrot probabilities over ranks 0..n-1:
///   p(r) ∝ 1 / (r + 1 + q)^s
std::vector<double> ZipfMandelbrotWeights(std::size_t n, double s, double q);

/// Walker's alias method: O(n) build, O(1) sampling from an arbitrary
/// discrete distribution.
class AliasSampler {
 public:
  /// Weights need not be normalized; they must be non-negative with a
  /// positive sum.
  explicit AliasSampler(const std::vector<double>& weights);

  /// Draws an index in [0, size()) with probability proportional to its
  /// weight.
  std::size_t Sample(Rng& rng) const;

  std::size_t size() const { return prob_.size(); }

 private:
  std::vector<double> prob_;        // acceptance probability per bucket
  std::vector<std::uint32_t> alias_;  // fallback index per bucket
};

}  // namespace sparta::util

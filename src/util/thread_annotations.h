// Clang thread-safety-analysis annotation macros (the static half of the
// sharing contract; DESIGN.md §11).
//
// The macros expand to clang's capability attributes when the compiler
// supports them and to nothing elsewhere (gcc builds are unaffected).
// Build with -DSPARTA_THREAD_SAFETY=ON (clang only) to turn the analysis
// on as -Werror; the CI `lint-static` job does this on every push.
//
// Conventions (enforced by tools/lint/sparta_lint.py, rule lock-pairing):
//   * every lock member (util::Spinlock, util::Mutex, std::mutex,
//     unique_ptr<exec::CtxLock>) must have at least one
//     SPARTA_GUARDED_BY / SPARTA_PT_GUARDED_BY / SPARTA_REQUIRES user in
//     its file, or an explicit `// sparta-lint: allow(lock-pairing)`
//     waiver saying why the capability cannot be expressed;
//   * intentionally lock-free shared fields are declared through
//     sparta::util::Racy<T> (util/racy.h), never left bare;
//   * code that reads guarded state outside its lock on purpose (freeze
//     protocols, post-drain harvesting) is marked
//     SPARTA_NO_THREAD_SAFETY_ANALYSIS with a justification comment.
#pragma once

// clang has shipped the capability attribute set since 3.6; gcc ignores
// the analysis entirely, so expand to nothing there instead of spraying
// -Wattributes warnings.
#if defined(__clang__) && !defined(SPARTA_NO_THREAD_ANNOTATIONS)
#define SPARTA_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define SPARTA_THREAD_ANNOTATION(x)  // not clang: annotations vanish
#endif

/// Marks a class as a capability (a lock). The string names the
/// capability kind in diagnostics ("mutex", "serial domain").
#define SPARTA_CAPABILITY(x) SPARTA_THREAD_ANNOTATION(capability(x))

/// Marks an RAII class whose constructor acquires and destructor
/// releases a capability.
#define SPARTA_SCOPED_CAPABILITY SPARTA_THREAD_ANNOTATION(scoped_lockable)

/// Field may only be accessed while holding the given capability.
#define SPARTA_GUARDED_BY(x) SPARTA_THREAD_ANNOTATION(guarded_by(x))

/// Pointer field whose *pointee* may only be accessed under the
/// capability (the pointer itself is unguarded).
#define SPARTA_PT_GUARDED_BY(x) SPARTA_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function requires the capability (exclusive / shared) to be held on
/// entry and does not release it.
#define SPARTA_REQUIRES(...) \
  SPARTA_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define SPARTA_REQUIRES_SHARED(...) \
  SPARTA_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function acquires / releases the capability (itself when no argument
/// is given, e.g. on a lock type's own lock()/unlock()).
#define SPARTA_ACQUIRE(...) \
  SPARTA_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define SPARTA_ACQUIRE_SHARED(...) \
  SPARTA_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define SPARTA_RELEASE(...) \
  SPARTA_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function attempts the acquisition; first argument is the return value
/// meaning success.
#define SPARTA_TRY_ACQUIRE(...) \
  SPARTA_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Function must NOT be called while holding the capability.
#define SPARTA_EXCLUDES(...) SPARTA_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Asserts (without acquiring) that the capability is held — for code
/// that knows it runs inside a critical section the analysis cannot see.
#define SPARTA_ASSERT_CAPABILITY(x) \
  SPARTA_THREAD_ANNOTATION(assert_capability(x))

/// Function returns a reference to the given capability.
#define SPARTA_RETURN_CAPABILITY(x) SPARTA_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: the function deliberately breaks the discipline (freeze
/// protocols, post-drain reads). Every use must carry a justification
/// comment — the lint suite's conventions, see file header.
#define SPARTA_NO_THREAD_SAFETY_ANALYSIS \
  SPARTA_THREAD_ANNOTATION(no_thread_safety_analysis)

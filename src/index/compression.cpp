#include "index/compression.h"

namespace sparta::index {

void PutVarint(std::vector<std::uint8_t>& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(value));
}

const std::uint8_t* GetVarint(const std::uint8_t* p,
                              const std::uint8_t* end,
                              std::uint64_t& value) {
  value = 0;
  int shift = 0;
  while (p < end && shift <= 63) {
    const std::uint8_t byte = *p++;
    value |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return p;
    shift += 7;
  }
  return nullptr;
}

std::vector<std::uint8_t> CompressDocOrder(std::span<const Posting> list) {
  std::vector<std::uint8_t> out;
  out.reserve(list.size() * 3);
  PutVarint(out, list.size());
  DocId prev = 0;
  for (const Posting& p : list) {
    PutVarint(out, p.doc - prev);  // strictly increasing => gap >= 1
    PutVarint(out, p.score);
    prev = p.doc;
  }
  return out;
}

std::vector<std::uint8_t> CompressImpactOrder(
    std::span<const Posting> list) {
  std::vector<std::uint8_t> out;
  out.reserve(list.size() * 4);
  PutVarint(out, list.size());
  PackedScore prev = 0;
  bool first = true;
  for (const Posting& p : list) {
    PutVarint(out, p.doc);
    // Scores decrease monotonically: store the non-negative drop.
    PutVarint(out, first ? p.score : prev - p.score);
    prev = p.score;
    first = false;
  }
  return out;
}

bool DecompressDocOrder(std::span<const std::uint8_t> bytes,
                        std::vector<Posting>& out) {
  const std::uint8_t* p = bytes.data();
  const std::uint8_t* end = p + bytes.size();
  std::uint64_t count = 0;
  if ((p = GetVarint(p, end, count)) == nullptr) return false;
  out.reserve(out.size() + count);
  DocId doc = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t gap = 0, score = 0;
    if ((p = GetVarint(p, end, gap)) == nullptr) return false;
    if ((p = GetVarint(p, end, score)) == nullptr) return false;
    doc += static_cast<DocId>(gap);
    out.push_back(Posting{doc, static_cast<PackedScore>(score)});
  }
  return true;
}

bool DecompressImpactOrder(std::span<const std::uint8_t> bytes,
                           std::vector<Posting>& out) {
  const std::uint8_t* p = bytes.data();
  const std::uint8_t* end = p + bytes.size();
  std::uint64_t count = 0;
  if ((p = GetVarint(p, end, count)) == nullptr) return false;
  out.reserve(out.size() + count);
  PackedScore score = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t doc = 0, drop = 0;
    if ((p = GetVarint(p, end, doc)) == nullptr) return false;
    if ((p = GetVarint(p, end, drop)) == nullptr) return false;
    score = i == 0 ? static_cast<PackedScore>(drop)
                   : score - static_cast<PackedScore>(drop);
    out.push_back(Posting{static_cast<DocId>(doc), score});
  }
  return true;
}

CompressionReport MeasureIndexCompression(const InvertedIndex& idx) {
  CompressionReport report;
  for (TermId t = 0; t < idx.num_terms(); ++t) {
    const auto view = idx.Term(t);
    report.raw_bytes += view.doc_order.size_bytes();
    report.doc_order_bytes += CompressDocOrder(view.doc_order).size();
    report.impact_order_bytes +=
        CompressImpactOrder(view.impact_order).size();
  }
  return report;
}

}  // namespace sparta::index

#include "index/inverted_index.h"

#include <algorithm>

#include "index/disk_format.h"
#include "index/mmap_file.h"

namespace sparta::index {

InvertedIndex::InvertedIndex(InvertedIndex&&) noexcept = default;
InvertedIndex& InvertedIndex::operator=(InvertedIndex&&) noexcept = default;
InvertedIndex::~InvertedIndex() = default;

TermView InvertedIndex::Term(TermId t) const {
  SPARTA_CHECK(t < terms_.size());
  const TermEntry& e = terms_[t];
  TermView view;
  view.doc_order = doc_postings_.subspan(e.doc_off, e.df);
  view.impact_order = impact_postings_.subspan(e.impact_off, e.df);
  view.blocks = blocks_.subspan(e.block_off, e.num_blocks);
  view.max_score = e.max_score;
  view.doc_order_file_offset =
      doc_section_offset_ + e.doc_off * sizeof(Posting);
  view.impact_order_file_offset =
      impact_section_offset_ + e.impact_off * sizeof(Posting);
  return view;
}

PackedScore InvertedIndex::RandomAccessScore(TermId t, DocId doc) const {
  const auto list = Term(t).doc_order;
  const auto it = std::lower_bound(
      list.begin(), list.end(), doc,
      [](const Posting& p, DocId d) { return p.doc < d; });
  if (it != list.end() && it->doc == doc) return it->score;
  return 0;
}

std::uint64_t InvertedIndex::SizeBytes() const {
  return SerializedIndexSize(num_terms(), doc_postings_.size(),
                             impact_postings_.size(), blocks_.size());
}

InvertedIndex InvertedIndex::FromParts(std::uint32_t num_docs,
                                       double avg_doc_len,
                                       std::vector<TermEntry> terms,
                                       std::vector<Posting> doc_postings,
                                       std::vector<Posting> impact_postings,
                                       std::vector<BlockMeta> blocks) {
  InvertedIndex idx;
  idx.num_docs_ = num_docs;
  idx.avg_doc_len_ = avg_doc_len;
  idx.terms_ = std::move(terms);
  idx.owned_doc_ = std::move(doc_postings);
  idx.owned_impact_ = std::move(impact_postings);
  idx.owned_blocks_ = std::move(blocks);
  idx.doc_postings_ = idx.owned_doc_;
  idx.impact_postings_ = idx.owned_impact_;
  idx.blocks_ = idx.owned_blocks_;
  // Synthesize the byte layout the on-disk format would use, so the I/O
  // cost model behaves identically for in-memory and mmap-backed indexes.
  const SectionLayout layout = ComputeSectionLayout(
      idx.terms_.size(), idx.doc_postings_.size(),
      idx.impact_postings_.size(), idx.blocks_.size());
  idx.doc_section_offset_ = layout.doc_postings_offset;
  idx.impact_section_offset_ = layout.impact_postings_offset;
  return idx;
}

InvertedIndex InvertedIndex::FromMmap(
    std::uint32_t num_docs, double avg_doc_len, std::vector<TermEntry> terms,
    std::span<const Posting> doc_postings,
    std::span<const Posting> impact_postings,
    std::span<const BlockMeta> blocks, std::uint64_t doc_section_offset,
    std::uint64_t impact_section_offset, std::unique_ptr<MmapFile> backing) {
  InvertedIndex idx;
  idx.num_docs_ = num_docs;
  idx.avg_doc_len_ = avg_doc_len;
  idx.terms_ = std::move(terms);
  idx.doc_postings_ = doc_postings;
  idx.impact_postings_ = impact_postings;
  idx.blocks_ = blocks;
  idx.doc_section_offset_ = doc_section_offset;
  idx.impact_section_offset_ = impact_section_offset;
  idx.mmap_ = std::move(backing);
  return idx;
}

}  // namespace sparta::index

// Posting-list compression codec.
//
// The paper stores indexes uncompressed "in order to crystallize the
// comparison among the core algorithms", citing Lin & Trotman's finding
// that with state-of-the-art codecs "the impact of decompression on
// end-to-end performance is marginal (e.g., up to 6% ...)" (§5). This
// module makes that claim checkable in this reproduction: a
// delta+varint codec for both list orders, its measured ratio on the
// benchmark corpora, and a measured decode cost per posting that
// bench_extra_compression folds into the simulator's per-posting CPU
// cost to quantify the end-to-end effect.
//
// Encodings (group-less LEB128 varints):
//   * doc-ordered lists:    delta-encoded docids + raw scores;
//   * impact-ordered lists: raw docids + delta-encoded scores (they
//     decrease monotonically, so deltas are non-negative).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "index/inverted_index.h"
#include "index/types.h"

namespace sparta::index {

/// Appends `value` as a LEB128 varint.
void PutVarint(std::vector<std::uint8_t>& out, std::uint64_t value);

/// Reads one varint; returns the advanced pointer (nullptr on overrun).
const std::uint8_t* GetVarint(const std::uint8_t* p,
                              const std::uint8_t* end,
                              std::uint64_t& value);

/// Compresses a doc-ordered posting list.
std::vector<std::uint8_t> CompressDocOrder(std::span<const Posting> list);

/// Compresses an impact-ordered posting list.
std::vector<std::uint8_t> CompressImpactOrder(
    std::span<const Posting> list);

/// Decompressors append to `out` and return false on malformed input.
[[nodiscard]] bool DecompressDocOrder(std::span<const std::uint8_t> bytes,
                                      std::vector<Posting>& out);
[[nodiscard]] bool DecompressImpactOrder(
    std::span<const std::uint8_t> bytes, std::vector<Posting>& out);

struct CompressionReport {
  std::uint64_t raw_bytes = 0;
  std::uint64_t doc_order_bytes = 0;
  std::uint64_t impact_order_bytes = 0;

  double DocOrderRatio() const {
    return raw_bytes == 0 ? 1.0
                          : static_cast<double>(doc_order_bytes) /
                                static_cast<double>(raw_bytes);
  }
  double ImpactOrderRatio() const {
    return raw_bytes == 0 ? 1.0
                          : static_cast<double>(impact_order_bytes) /
                                static_cast<double>(raw_bytes);
  }
};

/// Compresses every list of `idx` (both orders) and reports sizes.
CompressionReport MeasureIndexCompression(const InvertedIndex& idx);

}  // namespace sparta::index

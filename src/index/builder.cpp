#include "index/builder.h"

#include <algorithm>
#include <map>

#include "index/block_max.h"

namespace sparta::index {

InvertedIndex FinalizeIndex(RawIndexData raw, ScorerParams scorer_params) {
  SPARTA_CHECK(raw.num_docs > 0);
  SPARTA_CHECK(raw.doc_lengths.size() == raw.num_docs);

  std::uint64_t total_len = 0;
  for (const auto len : raw.doc_lengths) total_len += len;
  const double avg_doc_len =
      std::max(1.0, static_cast<double>(total_len) /
                        static_cast<double>(raw.num_docs));
  const Scorer scorer(raw.num_docs, avg_doc_len, scorer_params);

  const std::size_t num_terms = raw.term_postings.size();
  std::uint64_t total_postings = 0;
  for (const auto& list : raw.term_postings) total_postings += list.size();

  std::vector<TermEntry> terms(num_terms);
  std::vector<Posting> doc_postings;
  std::vector<Posting> impact_postings;
  std::vector<BlockMeta> blocks;
  doc_postings.reserve(total_postings);
  impact_postings.reserve(total_postings);

  std::vector<Posting> scratch;
  for (std::size_t t = 0; t < num_terms; ++t) {
    auto& rawlist = raw.term_postings[t];
    const auto df = static_cast<std::uint32_t>(rawlist.size());
    TermEntry& entry = terms[t];
    entry.doc_off = doc_postings.size();
    entry.impact_off = impact_postings.size();
    entry.block_off = blocks.size();
    entry.df = df;
    if (df == 0) continue;

    SPARTA_CHECK_MSG(
        std::is_sorted(rawlist.begin(), rawlist.end(),
                       [](const RawPosting& a, const RawPosting& b) {
                         return a.doc < b.doc;
                       }),
        "raw posting lists must be doc-sorted and duplicate-free");

    scratch.clear();
    scratch.reserve(df);
    for (const RawPosting& rp : rawlist) {
      SPARTA_CHECK(rp.doc < raw.num_docs);
      const PackedScore s =
          scorer.TermScore(rp.tf, df, raw.doc_lengths[rp.doc]);
      scratch.push_back(Posting{rp.doc, s});
      entry.max_score = std::max(entry.max_score, s);
    }
    // Doc-ordered list (input order) + its block-max metadata.
    doc_postings.insert(doc_postings.end(), scratch.begin(), scratch.end());
    const auto term_blocks = BuildBlockMeta(
        std::span<const Posting>(scratch.data(), scratch.size()));
    entry.num_blocks = static_cast<std::uint32_t>(term_blocks.size());
    blocks.insert(blocks.end(), term_blocks.begin(), term_blocks.end());
    // Impact-ordered list: decreasing score, ties by increasing docid so
    // traversal order is deterministic.
    std::sort(scratch.begin(), scratch.end(),
              [](const Posting& a, const Posting& b) {
                if (a.score != b.score) return a.score > b.score;
                return a.doc < b.doc;
              });
    impact_postings.insert(impact_postings.end(), scratch.begin(),
                           scratch.end());
    rawlist.clear();
    rawlist.shrink_to_fit();  // bound peak memory on large corpora
  }

  return InvertedIndex::FromParts(raw.num_docs, avg_doc_len,
                                  std::move(terms), std::move(doc_postings),
                                  std::move(impact_postings),
                                  std::move(blocks));
}

IndexBuilder::IndexBuilder(text::TokenizerOptions options)
    : tokenizer_(options) {}

DocId IndexBuilder::AddDocument(std::string_view content) {
  const auto tokens = tokenizer_.Tokenize(content);
  return AddTokens(tokens);
}

DocId IndexBuilder::AddTokens(std::span<const std::string> tokens) {
  const DocId doc = raw_.num_docs++;
  // Aggregate term frequencies for this document. std::map keeps terms
  // of a document sorted which is irrelevant here; an unordered_map with
  // per-doc clear would also do — documents are small, either is fine.
  std::map<TermId, std::uint32_t> tfs;
  for (const auto& token : tokens) {
    ++tfs[vocab_.GetOrAdd(token)];
  }
  if (raw_.term_postings.size() < vocab_.size()) {
    raw_.term_postings.resize(vocab_.size());
  }
  for (const auto& [term, tf] : tfs) {
    raw_.term_postings[term].push_back(RawPosting{doc, tf});
  }
  raw_.doc_lengths.push_back(static_cast<std::uint32_t>(tokens.size()));
  return doc;
}

InvertedIndex IndexBuilder::Build(ScorerParams scorer_params) {
  RawIndexData raw = std::move(raw_);
  raw_ = RawIndexData{};
  raw.term_postings.resize(vocab_.size());
  return FinalizeIndex(std::move(raw), scorer_params);
}

}  // namespace sparta::index

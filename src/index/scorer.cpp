#include "index/scorer.h"

#include <cmath>

#include "util/fixed_point.h"

namespace sparta::index {

Scorer::Scorer(std::uint32_t num_docs, double avg_doc_len, ScorerParams params)
    : num_docs_(num_docs), avg_doc_len_(avg_doc_len), params_(params) {
  SPARTA_CHECK(num_docs > 0);
  SPARTA_CHECK(avg_doc_len > 0.0);
}

double Scorer::Idf(std::uint32_t df) const {
  SPARTA_CHECK(df > 0);
  return std::log(1.0 + static_cast<double>(num_docs_) /
                            static_cast<double>(df));
}

PackedScore Scorer::TermScore(std::uint32_t tf, std::uint32_t df,
                              std::uint32_t doc_len) const {
  SPARTA_CHECK(tf > 0);
  const double norm = params_.k * ((1.0 - params_.b) +
                                   params_.b * static_cast<double>(doc_len) /
                                       avg_doc_len_);
  const double tf_factor =
      static_cast<double>(tf) / (static_cast<double>(tf) + norm);
  return static_cast<PackedScore>(util::ToFixed(Idf(df) * tf_factor));
}

PackedScore Scorer::MaxTermScore(std::uint32_t df) const {
  // tf_factor < 1 always, and norm >= k*(1-b) > 0; the supremum of the tf
  // factor over all tf and doc_len is tf/(tf + k(1-b)) -> 1.
  return static_cast<PackedScore>(util::ToFixed(Idf(df)));
}

}  // namespace sparta::index

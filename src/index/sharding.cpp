#include "index/sharding.h"

#include <algorithm>

#include "index/block_max.h"

namespace sparta::index {

int ShardedIndex::ShardOf(DocId global) const {
  SPARTA_CHECK(global < total_docs);
  // Shards are contiguous and sorted by doc_base; upper_bound finds the
  // first shard starting past `global`, whose predecessor owns it.
  auto it = std::upper_bound(
      infos.begin(), infos.end(), global,
      [](DocId doc, const ShardInfo& info) { return doc < info.doc_base; });
  SPARTA_CHECK(it != infos.begin());
  return static_cast<int>(std::distance(infos.begin(), it)) - 1;
}

ShardedIndex ShardIndex(const InvertedIndex& full, int num_shards) {
  SPARTA_CHECK(num_shards >= 1);
  SPARTA_CHECK(full.num_docs() >= static_cast<std::uint32_t>(num_shards));
  ShardedIndex sharded;
  sharded.total_docs = full.num_docs();
  sharded.infos.resize(static_cast<std::size_t>(num_shards));
  sharded.shards.reserve(static_cast<std::size_t>(num_shards));

  const std::uint32_t total = full.num_docs();
  for (int s = 0; s < num_shards; ++s) {
    ShardInfo& info = sharded.infos[static_cast<std::size_t>(s)];
    // Contiguous near-equal ranges: shard s owns [s*T/S, (s+1)*T/S).
    info.doc_base = static_cast<std::uint32_t>(
        (static_cast<std::uint64_t>(total) * static_cast<std::uint32_t>(s)) /
        static_cast<std::uint32_t>(num_shards));
    const std::uint32_t end = static_cast<std::uint32_t>(
        (static_cast<std::uint64_t>(total) *
         (static_cast<std::uint32_t>(s) + 1)) /
        static_cast<std::uint32_t>(num_shards));
    info.num_docs = end - info.doc_base;
    info.doc_fraction =
        static_cast<double>(info.num_docs) / static_cast<double>(total);

    std::vector<TermEntry> terms(full.num_terms());
    std::vector<Posting> doc_postings;
    std::vector<Posting> impact_postings;
    std::vector<BlockMeta> blocks;
    std::vector<Posting> scratch;
    for (TermId t = 0; t < full.num_terms(); ++t) {
      const TermView view = full.Term(t);
      // The shard's slice of the doc-ordered list: doc ids are sorted,
      // so the range is a contiguous run found by binary search.
      const auto lo = std::lower_bound(
          view.doc_order.begin(), view.doc_order.end(), info.doc_base,
          [](const Posting& p, DocId doc) { return p.doc < doc; });
      const auto hi = std::lower_bound(
          lo, view.doc_order.end(), end,
          [](const Posting& p, DocId doc) { return p.doc < doc; });
      TermEntry& entry = terms[t];
      entry.doc_off = doc_postings.size();
      entry.impact_off = impact_postings.size();
      entry.block_off = blocks.size();
      entry.df = static_cast<std::uint32_t>(std::distance(lo, hi));
      if (entry.df == 0) continue;

      scratch.clear();
      scratch.reserve(entry.df);
      for (auto it = lo; it != hi; ++it) {
        // Rebase to shard-local ids; the score — computed against the
        // full corpus statistics — is preserved bit for bit.
        scratch.push_back(Posting{it->doc - info.doc_base, it->score});
        entry.max_score = std::max(entry.max_score, it->score);
      }
      doc_postings.insert(doc_postings.end(), scratch.begin(),
                          scratch.end());
      const auto term_blocks = BuildBlockMeta(
          std::span<const Posting>(scratch.data(), scratch.size()));
      entry.num_blocks = static_cast<std::uint32_t>(term_blocks.size());
      blocks.insert(blocks.end(), term_blocks.begin(), term_blocks.end());
      // Impact order exactly as FinalizeIndex builds it: decreasing
      // score, ties by increasing (local) doc id.
      std::sort(scratch.begin(), scratch.end(),
                [](const Posting& a, const Posting& b) {
                  if (a.score != b.score) return a.score > b.score;
                  return a.doc < b.doc;
                });
      impact_postings.insert(impact_postings.end(), scratch.begin(),
                             scratch.end());
    }
    sharded.shards.push_back(std::make_shared<InvertedIndex>(
        InvertedIndex::FromParts(info.num_docs, full.avg_doc_len(),
                                 std::move(terms), std::move(doc_postings),
                                 std::move(impact_postings),
                                 std::move(blocks))));
  }
  return sharded;
}

}  // namespace sparta::index

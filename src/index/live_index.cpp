#include "index/live_index.h"

#include <cstdio>
#include <utility>

#include "index/disk_format.h"

namespace sparta::index {
namespace {

/// Flips one byte in the middle of `path`'s body — the torn-write model:
/// the write syscall "succeeded" but the bytes on disk are not the bytes
/// handed to it. Validation (checksums) must catch this.
bool CorruptFileBody(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  if (f == nullptr) return false;
  bool ok = std::fseek(f, 0, SEEK_END) == 0;
  const long size = ok ? std::ftell(f) : -1;
  ok = ok && size > 0;
  if (ok) {
    const long at = size / 2;
    ok = std::fseek(f, at, SEEK_SET) == 0;
    int byte = ok ? std::fgetc(f) : EOF;
    ok = ok && byte != EOF;
    if (ok) {
      ok = std::fseek(f, at, SEEK_SET) == 0;
      const int flipped = (byte ^ 0x5a) & 0xff;
      ok = ok && std::fputc(flipped, f) == flipped;
    }
  }
  std::fclose(f);
  return ok;
}

}  // namespace

LiveIndex::LiveIndex(InvertedIndex main, LiveIndexConfig config)
    : config_(std::move(config)),
      main_(std::make_shared<const InvertedIndex>(std::move(main))),
      // epochs_ is declared after the segment mirrors on purpose: the
      // initial snapshot (epoch 0, main only) is built from main_ here.
      epochs_(IndexSnapshot{main_, nullptr, main_->num_docs(), 0}) {
  // Construction is single-threaded by definition; entering the writer
  // domain here keeps the capability analysis satisfied and asserts the
  // no-reentrancy contract from the first touch.
  const util::SerialGuard guard(writer_);
  active_anchor_ = main_;
  active_ = std::make_unique<DeltaSegment>(*active_anchor_, config_.scorer);
}

DocId LiveIndex::Add(std::span<const TermCount> terms,
                     std::uint32_t doc_len) {
  const std::uint32_t base =
      main_->num_docs() + (frozen_ != nullptr ? frozen_->num_docs() : 0);
  return base + active_->Add(terms, doc_len);
}

std::uint32_t LiveIndex::buffered_docs() const { return active_->num_docs(); }

bool LiveIndex::Refresh() {
  if (active_->empty()) return false;
  if (merge_in_flight_) return false;
  InvertedIndex fresh = active_->Freeze();
  if (frozen_ != nullptr) {
    // Fold into the existing frozen delta so a snapshot never carries
    // more than two segments. Fresh local ids land after the old frozen
    // ones — exactly the global ids Add() already promised.
    fresh = MergeSegments(*frozen_, std::move(fresh));
  }
  frozen_ = std::make_shared<const InvertedIndex>(std::move(fresh));
  // Re-anchor the (now empty) active delta to the current main segment.
  active_anchor_ = main_;
  active_ = std::make_unique<DeltaSegment>(*active_anchor_, config_.scorer);
  ++refreshes_;
  epochs_.Publish(
      IndexSnapshot{main_, frozen_, main_->num_docs(), next_epoch_++});
  return true;
}

bool LiveIndex::CanMerge() const {
  return frozen_ != nullptr && !merge_in_flight_;
}

IndexSnapshot LiveIndex::BeginMerge() {
  SPARTA_CHECK_MSG(CanMerge(), "BeginMerge requires a frozen delta and no "
                               "merge in flight");
  merge_in_flight_ = true;
  return IndexSnapshot{main_, frozen_, main_->num_docs(),
                       epochs_.current_epoch()};
}

MergeOutcome LiveIndex::CommitMerge(InvertedIndex merged, bool abort_fault,
                                    bool torn_write_fault) {
  SPARTA_CHECK_MSG(merge_in_flight_, "CommitMerge without BeginMerge");
  merge_in_flight_ = false;
  if (abort_fault) {
    // Crash before the segment write: nothing was published, nothing
    // was persisted — the rollback is simply not touching anything.
    ++merges_aborted_;
    return MergeOutcome::kAborted;
  }
  return PublishMerged(std::move(merged), torn_write_fault);
}

MergeOutcome LiveIndex::PublishMerged(InvertedIndex merged,
                                      bool torn_write_fault) {
  SPARTA_CHECK_MSG(merged.num_docs() ==
                       main_->num_docs() + frozen_->num_docs(),
                   "merged segment does not cover main + frozen delta");
  std::shared_ptr<const InvertedIndex> next_main;
  if (!config_.persist_path.empty()) {
    // Build-then-swap through the disk format: write the temporary,
    // (maybe) tear it, checksum-validate, and only rename over the old
    // index if validation passed. The published main becomes the
    // validated mmap-backed load, like a real engine reopening the
    // segment it just wrote.
    const std::string tmp = config_.persist_path + ".tmp";
    if (!SaveIndex(merged, tmp)) {
      std::remove(tmp.c_str());
      ++torn_writes_;
      return MergeOutcome::kTornWrite;
    }
    if (torn_write_fault && !CorruptFileBody(tmp)) {
      std::remove(tmp.c_str());
      ++torn_writes_;
      return MergeOutcome::kTornWrite;
    }
    auto loaded = LoadIndex(tmp);
    if (!loaded.has_value()) {
      std::remove(tmp.c_str());
      ++torn_writes_;
      return MergeOutcome::kTornWrite;
    }
    if (std::rename(tmp.c_str(), config_.persist_path.c_str()) != 0) {
      std::remove(tmp.c_str());
      ++torn_writes_;
      return MergeOutcome::kTornWrite;
    }
    next_main = std::make_shared<const InvertedIndex>(*std::move(loaded));
  } else {
    if (torn_write_fault) {
      // No disk configured: model the torn write as a failed publish of
      // the in-memory segment — same rollback, no filesystem.
      ++torn_writes_;
      return MergeOutcome::kTornWrite;
    }
    next_main = std::make_shared<const InvertedIndex>(std::move(merged));
  }
  main_ = std::move(next_main);
  frozen_.reset();
  ++merges_committed_;
  epochs_.Publish(
      IndexSnapshot{main_, nullptr, main_->num_docs(), next_epoch_++});
  return MergeOutcome::kCommitted;
}

bool LiveIndex::merge_in_flight() const { return merge_in_flight_; }

void LiveIndex::CompactNow() {
  SPARTA_CHECK_MSG(!merge_in_flight_, "CompactNow during a merge");
  Refresh();
  while (CanMerge()) {
    const IndexSnapshot snap = BeginMerge();
    InvertedIndex merged = MergeSegments(*snap.main, *snap.delta);
    const MergeOutcome outcome = CommitMerge(std::move(merged));
    SPARTA_CHECK_MSG(outcome == MergeOutcome::kCommitted,
                     "fault-free compaction must commit");
    Refresh();  // anything added meanwhile (none in synchronous use)
  }
}

}  // namespace sparta::index

// Index construction.
//
// Two front ends feed one finalization path:
//   * IndexBuilder — document-major; consumes tokenized documents (the
//     role Lucene plays in the paper's pipeline).
//   * corpus::... — term-major; the synthetic corpus generators fill a
//     RawIndexData directly.
// FinalizeIndex() then scores postings (tf-idf), emits doc-ordered and
// impact-ordered lists plus block-max metadata, and assembles the
// immutable InvertedIndex.
#pragma once

#include <span>
#include <string_view>

#include "index/inverted_index.h"
#include "index/scorer.h"
#include "index/types.h"
#include "text/tokenizer.h"
#include "text/vocabulary.h"

namespace sparta::index {

/// Turns raw (doc, tf) postings into a scored, immutable InvertedIndex.
/// `scorer_params` configures tf-idf; statistics (N, avgdl, df) are taken
/// from the data itself.
InvertedIndex FinalizeIndex(RawIndexData raw,
                            ScorerParams scorer_params = {});

/// Document-major builder with integrated text analysis.
class IndexBuilder {
 public:
  explicit IndexBuilder(text::TokenizerOptions options = {});

  /// Tokenizes `content` and adds it as the next document. Returns the
  /// assigned docid (dense, in insertion order).
  DocId AddDocument(std::string_view content);

  /// Adds a pre-tokenized document.
  DocId AddTokens(std::span<const std::string> tokens);

  /// Finalizes into an index. The builder is left empty.
  InvertedIndex Build(ScorerParams scorer_params = {});

  const text::Vocabulary& vocabulary() const { return vocab_; }
  const text::Tokenizer& tokenizer() const { return tokenizer_; }
  std::uint32_t num_docs() const { return raw_.num_docs; }

 private:
  text::Tokenizer tokenizer_;
  text::Vocabulary vocab_;
  RawIndexData raw_;
};

}  // namespace sparta::index

// The inverted index: read-side API shared by all retrieval algorithms.
//
// For every term the index holds
//   * a document-ordered posting list  (used by WAND / BMW / MaxScore and
//     as the secondary "random access" index needed by TA-RA — one index,
//     two roles, which is why RA "doubles the footprint", §3.2),
//   * an impact-ordered posting list   (sorted by decreasing term score;
//     used by all score-order algorithms: JASS, TA variants, Sparta),
//   * block-max metadata               (per 64-posting block, for BMW).
//
// The postings of all terms live in three global arrays so that the whole
// index is one contiguous mmap-able blob; a per-term table stores offsets.
// Byte offsets within the (real or virtual) index file are exposed so the
// simulator's page-cache model can charge disk I/O for every access.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "index/types.h"
#include "util/common.h"

namespace sparta::index {

class MmapFile;

/// Per-term directory entry. Offsets are in elements within the global
/// arrays.
struct TermEntry {
  std::uint64_t doc_off = 0;     ///< into doc-ordered posting array
  std::uint64_t impact_off = 0;  ///< into impact-ordered posting array
  std::uint64_t block_off = 0;   ///< into block-meta array
  std::uint32_t df = 0;          ///< document frequency == list length
  std::uint32_t num_blocks = 0;
  PackedScore max_score = 0;     ///< max term score in the list
};

/// Read-only view of one term's data.
struct TermView {
  std::span<const Posting> doc_order;
  std::span<const Posting> impact_order;
  std::span<const BlockMeta> blocks;
  PackedScore max_score = 0;
  /// Byte offset of the first doc-ordered / impact-ordered posting within
  /// the index file (for the I/O cost model).
  std::uint64_t doc_order_file_offset = 0;
  std::uint64_t impact_order_file_offset = 0;

  std::uint32_t df() const {
    return static_cast<std::uint32_t>(doc_order.size());
  }
};

class InvertedIndex {
 public:
  InvertedIndex() = default;
  InvertedIndex(InvertedIndex&&) noexcept;
  InvertedIndex& operator=(InvertedIndex&&) noexcept;
  ~InvertedIndex();

  InvertedIndex(const InvertedIndex&) = delete;
  InvertedIndex& operator=(const InvertedIndex&) = delete;

  std::uint32_t num_docs() const { return num_docs_; }
  std::uint32_t num_terms() const {
    return static_cast<std::uint32_t>(terms_.size());
  }
  double avg_doc_len() const { return avg_doc_len_; }
  std::uint64_t total_postings() const { return doc_postings_.size(); }

  /// View of one term's posting lists and statistics.
  TermView Term(TermId t) const;

  const TermEntry& Entry(TermId t) const {
    SPARTA_CHECK(t < terms_.size());
    return terms_[t];
  }

  /// Random access (TA-RA): the term score of `doc` for term `t`, or 0 if
  /// the document does not contain the term. Binary search over the
  /// doc-ordered list — the caller is responsible for charging the random
  /// I/O this implies on a disk-resident index.
  PackedScore RandomAccessScore(TermId t, DocId doc) const;

  /// Total size in bytes of the serialized index (what the file format
  /// occupies; also what the page-cache model uses as the footprint).
  std::uint64_t SizeBytes() const;

  // --- construction (used by the builder and the disk loader) ---

  /// Assembles an owning, in-memory index. Consumes the arguments.
  static InvertedIndex FromParts(std::uint32_t num_docs, double avg_doc_len,
                                 std::vector<TermEntry> terms,
                                 std::vector<Posting> doc_postings,
                                 std::vector<Posting> impact_postings,
                                 std::vector<BlockMeta> blocks);

  /// Assembles an index whose arrays live in `backing` (an mmap-ed file);
  /// the index takes ownership of the mapping.
  static InvertedIndex FromMmap(std::uint32_t num_docs, double avg_doc_len,
                                std::vector<TermEntry> terms,
                                std::span<const Posting> doc_postings,
                                std::span<const Posting> impact_postings,
                                std::span<const BlockMeta> blocks,
                                std::uint64_t doc_section_offset,
                                std::uint64_t impact_section_offset,
                                std::unique_ptr<MmapFile> backing);

  std::span<const Posting> doc_postings() const { return doc_postings_; }
  std::span<const Posting> impact_postings() const {
    return impact_postings_;
  }
  std::span<const BlockMeta> blocks() const { return blocks_; }
  std::uint64_t doc_section_offset() const { return doc_section_offset_; }
  std::uint64_t impact_section_offset() const {
    return impact_section_offset_;
  }

 private:
  std::uint32_t num_docs_ = 0;
  double avg_doc_len_ = 0.0;
  std::vector<TermEntry> terms_;

  std::span<const Posting> doc_postings_;
  std::span<const Posting> impact_postings_;
  std::span<const BlockMeta> blocks_;

  /// Byte offsets of the posting sections within the (real or virtual)
  /// index file; used to map element offsets to file pages.
  std::uint64_t doc_section_offset_ = 0;
  std::uint64_t impact_section_offset_ = 0;

  // Exactly one backing is active: owned vectors or an mmap.
  std::vector<Posting> owned_doc_;
  std::vector<Posting> owned_impact_;
  std::vector<BlockMeta> owned_blocks_;
  std::unique_ptr<MmapFile> mmap_;
};

}  // namespace sparta::index

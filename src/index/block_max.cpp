#include "index/block_max.h"

#include <algorithm>

namespace sparta::index {

std::vector<BlockMeta> BuildBlockMeta(std::span<const Posting> doc_order) {
  std::vector<BlockMeta> blocks;
  blocks.reserve((doc_order.size() + kBlockSize - 1) / kBlockSize);
  for (std::size_t begin = 0; begin < doc_order.size();
       begin += kBlockSize) {
    const std::size_t end = std::min(begin + kBlockSize, doc_order.size());
    BlockMeta meta;
    meta.last_doc = doc_order[end - 1].doc;
    meta.max_score = 0;
    for (std::size_t i = begin; i < end; ++i) {
      meta.max_score = std::max(meta.max_score, doc_order[i].score);
    }
    blocks.push_back(meta);
  }
  return blocks;
}

std::size_t FindBlock(std::span<const BlockMeta> blocks, DocId target) {
  const auto it = std::lower_bound(
      blocks.begin(), blocks.end(), target,
      [](const BlockMeta& b, DocId d) { return b.last_doc < d; });
  return static_cast<std::size_t>(it - blocks.begin());
}

}  // namespace sparta::index

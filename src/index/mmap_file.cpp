#include "index/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <utility>

namespace sparta::index {

MmapFile::~MmapFile() { Close(); }

MmapFile::MmapFile(MmapFile&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)) {}

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    Close();
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

bool MmapFile::Open(const std::string& path) {
  Close();
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return false;
  struct stat st{};
  if (::fstat(fd, &st) != 0 || st.st_size <= 0) {
    ::close(fd);
    return false;
  }
  void* mapping = ::mmap(nullptr, static_cast<std::size_t>(st.st_size),
                         PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps its own reference
  if (mapping == MAP_FAILED) return false;
  data_ = mapping;
  size_ = static_cast<std::size_t>(st.st_size);
  return true;
}

void MmapFile::Close() {
  if (data_ != nullptr) {
    ::munmap(data_, size_);
    data_ = nullptr;
    size_ = 0;
  }
}

}  // namespace sparta::index

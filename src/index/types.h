// Fundamental index data types.
#pragma once

#include <cstdint>
#include <vector>

#include "util/common.h"

namespace sparta::index {

/// Integer term score as stored in posting lists (tf-idf scaled by 10^6;
/// always fits 32 bits because idf <= ln(1+N) and tf-saturation <= 1).
using PackedScore = std::uint32_t;

/// One posting: a document and its (integer) term score. 8 bytes, the
/// unit of both the doc-ordered and the impact-ordered lists.
struct Posting {
  DocId doc = kInvalidDoc;
  PackedScore score = 0;

  friend bool operator==(const Posting&, const Posting&) = default;
};
static_assert(sizeof(Posting) == 8, "postings must stay 8 bytes");

/// Per-block metadata for Block-Max WAND: the last docid in the block and
/// the maximum term score within it.
struct BlockMeta {
  DocId last_doc = kInvalidDoc;
  PackedScore max_score = 0;

  friend bool operator==(const BlockMeta&, const BlockMeta&) = default;
};
static_assert(sizeof(BlockMeta) == 8);

/// Number of postings covered by one BlockMeta. The paper selected 64
/// after a block-size sweep (§5.2.1).
inline constexpr std::uint32_t kBlockSize = 64;

/// Pre-scoring posting: raw term frequency. Builders accumulate these;
/// finalization turns tf into scores.
struct RawPosting {
  DocId doc = kInvalidDoc;
  std::uint32_t tf = 0;
};

/// Raw index data prior to scoring: what both the document-major builder
/// (text pipeline) and the term-major builder (synthetic corpus
/// generator) produce.
struct RawIndexData {
  std::uint32_t num_docs = 0;
  /// term_postings[t] is sorted by doc id, one entry per (doc, term) pair.
  std::vector<std::vector<RawPosting>> term_postings;
  /// doc_lengths[d] = total token count of document d.
  std::vector<std::uint32_t> doc_lengths;
};

}  // namespace sparta::index

#include "index/delta_segment.h"

#include <algorithm>
#include <utility>

#include "index/block_max.h"

namespace sparta::index {

DeltaSegment::DeltaSegment(const InvertedIndex& anchor, ScorerParams params)
    : anchor_(&anchor),
      scorer_(anchor.num_docs(), anchor.avg_doc_len(), params) {
  SPARTA_CHECK_MSG(anchor.num_docs() > 0,
                   "delta segment needs a non-empty anchor for scoring");
  term_postings_.resize(anchor.num_terms());
}

DocId DeltaSegment::Add(std::span<const TermCount> terms,
                        std::uint32_t doc_len) {
  SPARTA_CHECK_MSG(doc_len > 0, "delta doc must have positive length");
  const DocId local = static_cast<DocId>(doc_lengths_.size());
  TermId prev = kInvalidTerm;
  for (const TermCount& tc : terms) {
    SPARTA_CHECK_MSG(tc.tf > 0, "delta posting must have positive tf");
    SPARTA_CHECK_MSG(prev == kInvalidTerm || tc.term > prev,
                     "delta doc terms must be sorted and unique");
    SPARTA_CHECK(tc.term != kInvalidTerm);
    prev = tc.term;
    if (tc.term >= term_postings_.size()) {
      term_postings_.resize(tc.term + 1);
    }
    term_postings_[tc.term].push_back(RawPosting{local, tc.tf});
    ++num_postings_;
  }
  doc_lengths_.push_back(doc_len);
  return local;
}

InvertedIndex DeltaSegment::Freeze() {
  const auto num_docs = static_cast<std::uint32_t>(doc_lengths_.size());
  SPARTA_CHECK_MSG(num_docs > 0, "cannot freeze an empty delta segment");
  const std::size_t num_terms = term_postings_.size();

  std::vector<TermEntry> entries(num_terms);
  std::vector<Posting> doc_postings;
  std::vector<Posting> impact_postings;
  std::vector<BlockMeta> blocks;
  doc_postings.reserve(num_postings_);
  impact_postings.reserve(num_postings_);

  std::vector<Posting> scratch;
  for (TermId t = 0; t < num_terms; ++t) {
    const std::vector<RawPosting>& raw = term_postings_[t];
    const auto df = static_cast<std::uint32_t>(raw.size());
    TermEntry& entry = entries[t];
    entry.doc_off = doc_postings.size();
    entry.impact_off = impact_postings.size();
    entry.block_off = blocks.size();
    entry.df = df;
    if (df == 0) continue;

    // Anchor-statistics scoring: N and avgdl come from the main segment,
    // df is the anchor df plus the df observed here, so delta scores are
    // comparable with main scores inside one snapshot.
    const std::uint32_t anchor_df =
        t < anchor_->num_terms() ? anchor_->Entry(t).df : 0;
    const std::uint32_t df_for_idf = anchor_df + df;

    scratch.clear();
    scratch.reserve(df);
    for (const RawPosting& rp : raw) {
      const PackedScore s =
          scorer_.TermScore(rp.tf, df_for_idf, doc_lengths_[rp.doc]);
      scratch.push_back(Posting{rp.doc, s});
      entry.max_score = std::max(entry.max_score, s);
    }
    doc_postings.insert(doc_postings.end(), scratch.begin(), scratch.end());
    const auto term_blocks = BuildBlockMeta(
        std::span<const Posting>(scratch.data(), scratch.size()));
    entry.num_blocks = static_cast<std::uint32_t>(term_blocks.size());
    blocks.insert(blocks.end(), term_blocks.begin(), term_blocks.end());
    std::sort(scratch.begin(), scratch.end(),
              [](const Posting& a, const Posting& b) {
                if (a.score != b.score) return a.score > b.score;
                return a.doc < b.doc;
              });
    impact_postings.insert(impact_postings.end(), scratch.begin(),
                           scratch.end());
  }

  std::uint64_t total_len = 0;
  for (const auto len : doc_lengths_) total_len += len;
  const double avg_doc_len =
      std::max(1.0, static_cast<double>(total_len) /
                        static_cast<double>(num_docs));

  term_postings_.clear();
  term_postings_.resize(anchor_->num_terms());
  doc_lengths_.clear();
  num_postings_ = 0;

  return InvertedIndex::FromParts(num_docs, avg_doc_len, std::move(entries),
                                  std::move(doc_postings),
                                  std::move(impact_postings),
                                  std::move(blocks));
}

InvertedIndex MergeSegments(const InvertedIndex& older,
                            const InvertedIndex& newer) {
  const std::uint32_t base = older.num_docs();
  const std::uint32_t num_docs = base + newer.num_docs();
  SPARTA_CHECK_MSG(num_docs > 0, "cannot merge two empty segments");
  const std::size_t num_terms =
      std::max(older.num_terms(), newer.num_terms());

  std::vector<TermEntry> entries(num_terms);
  std::vector<Posting> doc_postings;
  std::vector<Posting> impact_postings;
  std::vector<BlockMeta> blocks;
  doc_postings.reserve(older.total_postings() + newer.total_postings());
  impact_postings.reserve(older.total_postings() + newer.total_postings());

  std::vector<Posting> scratch;
  for (TermId t = 0; t < num_terms; ++t) {
    const bool in_older = t < older.num_terms();
    const bool in_newer = t < newer.num_terms();
    const TermView old_view = in_older ? older.Term(t) : TermView{};
    const TermView new_view = in_newer ? newer.Term(t) : TermView{};

    TermEntry& entry = entries[t];
    entry.doc_off = doc_postings.size();
    entry.impact_off = impact_postings.size();
    entry.block_off = blocks.size();
    entry.df = static_cast<std::uint32_t>(old_view.doc_order.size() +
                                          new_view.doc_order.size());
    if (entry.df == 0) continue;
    entry.max_score = std::max(old_view.max_score, new_view.max_score);

    // Doc-ordered: older ids are unchanged, newer ids are rebased past
    // them, so plain concatenation stays doc-sorted.
    scratch.clear();
    scratch.reserve(entry.df);
    scratch.insert(scratch.end(), old_view.doc_order.begin(),
                   old_view.doc_order.end());
    for (const Posting& p : new_view.doc_order) {
      scratch.push_back(Posting{p.doc + base, p.score});
    }
    doc_postings.insert(doc_postings.end(), scratch.begin(), scratch.end());
    const auto term_blocks = BuildBlockMeta(
        std::span<const Posting>(scratch.data(), scratch.size()));
    entry.num_blocks = static_cast<std::uint32_t>(term_blocks.size());
    blocks.insert(blocks.end(), term_blocks.begin(), term_blocks.end());

    // Impact-ordered: both inputs already follow (score desc, doc asc);
    // a two-way merge preserves that order over the rebased global ids
    // without rescoring anything. Equal scores take the older posting
    // first — its global ids are always below the rebased newer ones.
    const std::span<const Posting> a = old_view.impact_order;
    const std::span<const Posting> b = new_view.impact_order;
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < a.size() || j < b.size()) {
      const bool take_old =
          j == b.size() ||
          (i < a.size() && a[i].score >= b[j].score);
      if (take_old) {
        impact_postings.push_back(a[i++]);
      } else {
        impact_postings.push_back(Posting{b[j].doc + base, b[j].score});
        ++j;
      }
    }
  }

  const double total_len =
      older.avg_doc_len() * older.num_docs() +
      newer.avg_doc_len() * newer.num_docs();
  const double avg_doc_len =
      std::max(1.0, total_len / static_cast<double>(num_docs));

  return InvertedIndex::FromParts(num_docs, avg_doc_len, std::move(entries),
                                  std::move(doc_postings),
                                  std::move(impact_postings),
                                  std::move(blocks));
}

}  // namespace sparta::index

// RAII wrapper over a read-only memory-mapped file.
//
// Plays the role of Java's MappedByteBuffer in the paper's benchmark
// environment (§5.1): the on-disk index is mapped once and posting lists
// are read directly from the mapping.
#pragma once

#include <cstddef>
#include <span>
#include <string>

namespace sparta::index {

class MmapFile {
 public:
  MmapFile() = default;
  ~MmapFile();

  MmapFile(MmapFile&& other) noexcept;
  MmapFile& operator=(MmapFile&& other) noexcept;
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  /// Maps `path` read-only. Returns false (and stays unmapped) on error.
  bool Open(const std::string& path);

  void Close();

  bool is_open() const { return data_ != nullptr; }
  std::span<const std::byte> bytes() const {
    return {static_cast<const std::byte*>(data_), size_};
  }
  std::size_t size() const { return size_; }

 private:
  void* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace sparta::index

// LiveIndex: the mutable top of the live-update path (DESIGN.md §12).
//
// Composition of the pieces below it: document adds land in an active
// DeltaSegment; Refresh() freezes the active delta and publishes a new
// {main, frozen delta} IndexSnapshot through the EpochManager; a merge
// (driven externally, typically as background jobs on the serving
// executor) folds the frozen delta into a new immutable main segment and
// publishes {merged, no delta}. Readers never see any of this happen:
// they pin a snapshot, search it, and unpin — epochs make reclamation
// safe, immutability makes the reads safe.
//
// Single-writer discipline: all mutating entry points run under one
// util::SerialDomain — in the sim that is the host thread between Drain
// steps or a single merge job; the real-thread ingest stress test uses
// one writer thread. Readers only touch the EpochManager (internally
// locked), so AcquireSnapshot() is safe from any thread.
//
// Crash consistency: CommitMerge publishes build-then-swap, never in
// place. With a persist path the merged segment goes through
// AtomicSaveIndex (write temporary, fsync, checksum-validate, rename);
// an injected torn write corrupts the temporary before validation, which
// must then fail, roll back to the published snapshot and leave the old
// on-disk index intact. Without a persist path the same outcomes are
// modeled in memory. Either way an abort leaves every published epoch
// exactly as it was — the rollback test replays the same seed and gets
// bit-identical results.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "index/delta_segment.h"
#include "index/epoch.h"
#include "index/inverted_index.h"
#include "util/serial_domain.h"
#include "util/thread_annotations.h"

namespace sparta::index {

struct LiveIndexConfig {
  ScorerParams scorer;
  /// When non-empty, committed merges persist the new main segment here
  /// via AtomicSaveIndex and the published main is the validated,
  /// mmap-backed load of that file. Empty = in-memory only.
  std::string persist_path;
};

/// How one CommitMerge ended.
enum class MergeOutcome : std::uint8_t {
  /// New main segment published (and persisted when configured).
  kCommitted,
  /// Injected merge abort before the write: published snapshot untouched.
  kAborted,
  /// The written segment failed checksum validation (torn write):
  /// temporary discarded, published snapshot untouched.
  kTornWrite,
};

constexpr const char* MergeOutcomeName(MergeOutcome outcome) {
  switch (outcome) {
    case MergeOutcome::kCommitted:
      return "committed";
    case MergeOutcome::kAborted:
      return "aborted";
    case MergeOutcome::kTornWrite:
      return "torn-write";
  }
  return "unknown";
}

class LiveIndex {
 public:
  explicit LiveIndex(InvertedIndex main, LiveIndexConfig config = {});

  // --- reader side (any thread) ---

  /// Pins the currently published snapshot; the query searches exactly
  /// this view until the pin is released, across any number of
  /// refreshes and merges.
  EpochManager::Pin AcquireSnapshot() { return epochs_.Acquire(); }

  std::uint64_t published_epoch() const { return epochs_.current_epoch(); }

  EpochManager& epochs() { return epochs_; }

  // --- writer side (single mutator, SerialDomain-checked) ---

  /// Adds one document to the active delta. Returns its global doc id,
  /// valid in every snapshot published once the doc becomes visible
  /// (after the next Refresh).
  DocId Add(std::span<const TermCount> terms, std::uint32_t doc_len)
      SPARTA_REQUIRES(writer_);

  /// Docs buffered in the active delta (not yet visible to queries).
  std::uint32_t buffered_docs() const SPARTA_REQUIRES(writer_);

  /// Postings buffered in the active delta (the freeze-cost driver the
  /// serving loop charges when a Refresh runs inside an ingest job).
  std::uint64_t buffered_postings() const SPARTA_REQUIRES(writer_) {
    return active_->num_postings();
  }

  /// Docs in the frozen delta (0 when none) — the merge-trigger signal.
  std::uint32_t frozen_docs() const SPARTA_REQUIRES(writer_) {
    return frozen_ != nullptr ? frozen_->num_docs() : 0;
  }

  /// Freezes the active delta and publishes a new snapshot containing
  /// it. With an existing frozen delta the two are folded into one
  /// (MergeSegments) so a snapshot never carries more than two segments.
  /// Returns false — publishing nothing — when the active delta is
  /// empty, or while a merge is in flight (the merge would lose the
  /// refreeze; adds keep accumulating and the refresh happens after
  /// CommitMerge).
  bool Refresh() SPARTA_REQUIRES(writer_);

  /// True when a frozen delta exists and no merge is running.
  bool CanMerge() const SPARTA_REQUIRES(writer_);

  /// Marks a merge in flight and returns the snapshot to fold (callers
  /// run MergeSegments(*main, *delta) on it, typically in background
  /// jobs). Requires CanMerge().
  IndexSnapshot BeginMerge() SPARTA_REQUIRES(writer_);

  /// Completes the merge started by BeginMerge. `merged` must be the
  /// fold of that snapshot. `abort_fault` models a merge crash before
  /// the segment write; `torn_write_fault` corrupts the written
  /// temporary so checksum validation must catch it (modeled in memory
  /// when no persist path is configured). On anything but kCommitted the
  /// published snapshot and the on-disk index are untouched and the
  /// frozen delta stays queued for the next merge.
  MergeOutcome CommitMerge(InvertedIndex merged, bool abort_fault = false,
                           bool torn_write_fault = false)
      SPARTA_REQUIRES(writer_);

  bool merge_in_flight() const SPARTA_REQUIRES(writer_);

  /// Synchronous, fault-free fold of everything buffered into one main
  /// segment (refresh + merge + commit, repeated until no delta
  /// remains). The benchmark oracle: the index a crash-free system would
  /// converge to. Requires no merge in flight.
  void CompactNow() SPARTA_REQUIRES(writer_);

  // --- counters (writer domain) ---
  std::uint64_t merges_committed() const SPARTA_REQUIRES(writer_) {
    return merges_committed_;
  }
  std::uint64_t merges_aborted() const SPARTA_REQUIRES(writer_) {
    return merges_aborted_;
  }
  std::uint64_t torn_writes() const SPARTA_REQUIRES(writer_) {
    return torn_writes_;
  }
  std::uint64_t refreshes() const SPARTA_REQUIRES(writer_) {
    return refreshes_;
  }

  /// The single-writer capability; entry points take a SerialGuard on it.
  util::SerialDomain& writer() SPARTA_RETURN_CAPABILITY(writer_) {
    return writer_;
  }

 private:
  MergeOutcome PublishMerged(InvertedIndex merged, bool torn_write_fault)
      SPARTA_REQUIRES(writer_);

  util::SerialDomain writer_;
  LiveIndexConfig config_;

  /// Mirrors of the published snapshot's segments (the EpochManager owns
  /// publication; these keep the writer's view without re-locking).
  std::shared_ptr<const InvertedIndex> main_ SPARTA_GUARDED_BY(writer_);
  std::shared_ptr<const InvertedIndex> frozen_ SPARTA_GUARDED_BY(writer_);

  /// Active delta plus the anchor its scorer is bound to. The anchor may
  /// lag the published main by one merge (scores freeze against the
  /// stats current when the delta was created — real engines do the
  /// same between rebuilds); the shared_ptr keeps it alive regardless.
  std::shared_ptr<const InvertedIndex> active_anchor_
      SPARTA_GUARDED_BY(writer_);
  std::unique_ptr<DeltaSegment> active_ SPARTA_GUARDED_BY(writer_);

  bool merge_in_flight_ SPARTA_GUARDED_BY(writer_) = false;
  std::uint64_t next_epoch_ SPARTA_GUARDED_BY(writer_) = 1;
  std::uint64_t merges_committed_ SPARTA_GUARDED_BY(writer_) = 0;
  std::uint64_t merges_aborted_ SPARTA_GUARDED_BY(writer_) = 0;
  std::uint64_t torn_writes_ SPARTA_GUARDED_BY(writer_) = 0;
  std::uint64_t refreshes_ SPARTA_GUARDED_BY(writer_) = 0;

  EpochManager epochs_;
};

}  // namespace sparta::index

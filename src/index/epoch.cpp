#include "index/epoch.h"

#include <algorithm>

namespace sparta::index {

void EpochManager::Pin::Release() {
  if (mgr_ != nullptr && snap_ != nullptr) {
    mgr_->ReleasePin(snap_->epoch);
  }
  mgr_ = nullptr;
  snap_.reset();
}

EpochManager::EpochManager(IndexSnapshot initial)
    : current_(std::make_shared<IndexSnapshot>(std::move(initial))) {}

EpochManager::Pin EpochManager::Acquire() {
  const util::MutexLock guard(mutex_);
  ++pins_[current_->epoch];
  return Pin(this, current_);
}

void EpochManager::Publish(IndexSnapshot next) {
  const util::MutexLock guard(mutex_);
  SPARTA_CHECK_MSG(next.epoch > current_->epoch,
                   "snapshot epochs must be monotone");
  retired_.push_back({current_->epoch, std::move(current_)});
  current_ = std::make_shared<IndexSnapshot>(std::move(next));
}

std::size_t EpochManager::Collect() {
  const util::MutexLock guard(mutex_);
  std::size_t freed = 0;
  for (std::size_t i = 0; i < retired_.size();) {
    const auto it = pins_.find(retired_[i].epoch);
    if (it == pins_.end() || it->second == 0) {
      retired_.erase(retired_.begin() + static_cast<std::ptrdiff_t>(i));
      ++freed;
    } else {
      ++i;
    }
  }
  reclaimed_ += freed;
  return freed;
}

std::size_t EpochManager::Collect(exec::WorkerContext& worker) {
  const util::MutexLock guard(mutex_);
  std::size_t freed = 0;
  for (std::size_t i = 0; i < retired_.size();) {
    const std::uint64_t epoch = retired_[i].epoch;
    const auto it = pins_.find(epoch);
    if (it == pins_.end() || it->second == 0) {
      // The write side of the epoch-table shadow: reclaiming an epoch
      // conflicts with any reader still shadow-reading its slot unless
      // both hold the epoch CtxLock.
      worker.ShadowAccess(shadow_slot(epoch), exec::AccessKind::kWrite);
      retired_.erase(retired_.begin() + static_cast<std::ptrdiff_t>(i));
      ++freed;
    } else {
      ++i;
    }
  }
  reclaimed_ += freed;
  return freed;
}

std::uint64_t EpochManager::current_epoch() const {
  const util::MutexLock guard(mutex_);
  return current_->epoch;
}

std::uint64_t EpochManager::pins(std::uint64_t epoch) const {
  const util::MutexLock guard(mutex_);
  const auto it = pins_.find(epoch);
  return it != pins_.end() ? it->second : 0;
}

std::size_t EpochManager::retired() const {
  const util::MutexLock guard(mutex_);
  return retired_.size();
}

std::uint64_t EpochManager::reclaimed() const {
  const util::MutexLock guard(mutex_);
  return reclaimed_;
}

void EpochManager::ReleasePin(std::uint64_t epoch) {
  const util::MutexLock guard(mutex_);
  const auto it = pins_.find(epoch);
  SPARTA_CHECK_MSG(it != pins_.end() && it->second > 0,
                   "unbalanced epoch pin release");
  if (--it->second == 0) pins_.erase(it);
}

}  // namespace sparta::index

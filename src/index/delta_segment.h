// In-memory delta segment: where live document adds land (DESIGN.md §12).
//
// The main segment is immutable (that immutability is what every
// retrieval algorithm and the mmap disk format are built on), so
// incremental indexing follows the classic Lucene/LSM shape: adds
// accumulate raw (term, tf) postings in a small mutable buffer, Freeze()
// turns the buffer into a mini immutable InvertedIndex (doc-ordered +
// impact-ordered lists + block-max metadata, exactly the main segment's
// shape), and a background merge later folds frozen deltas into a new
// main segment.
//
// Scoring: delta postings are scored against the *anchor* (main)
// segment's collection statistics — N and avgdl from the anchor, df as
// anchor df + local df — so delta scores are comparable with main
// scores inside one snapshot. Scores are assigned once, at freeze time,
// and never recomputed afterwards (like real engines between full
// rebuilds); MergeSegments() below preserves them bit-for-bit, which is
// what makes snapshot-equivalence testable: querying {main, delta}
// returns exactly the merged index's results.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "index/inverted_index.h"
#include "index/scorer.h"
#include "index/types.h"

namespace sparta::index {

/// One (term, frequency) pair of an incoming document.
struct TermCount {
  TermId term = kInvalidTerm;
  std::uint32_t tf = 0;
};

class DeltaSegment {
 public:
  /// `anchor` supplies the scoring statistics (N, avgdl, per-term df);
  /// it must outlive the segment.
  explicit DeltaSegment(const InvertedIndex& anchor,
                        ScorerParams params = {});

  /// Adds one document. `terms` must be sorted by term id, duplicate
  /// free, with positive frequencies. Returns the segment-local doc id
  /// (dense, insertion order).
  DocId Add(std::span<const TermCount> terms, std::uint32_t doc_len);

  std::uint32_t num_docs() const {
    return static_cast<std::uint32_t>(doc_lengths_.size());
  }
  std::uint64_t num_postings() const { return num_postings_; }
  bool empty() const { return doc_lengths_.empty(); }

  /// Freezes the buffered documents into an immutable mini-index scored
  /// against the anchor statistics, leaving the segment empty. The
  /// frozen index has max(anchor terms, terms seen) term entries so the
  /// anchor's term-id space stays valid against it.
  InvertedIndex Freeze();

 private:
  const InvertedIndex* anchor_;
  Scorer scorer_;
  /// term -> raw postings, doc-sorted by construction (local ids are
  /// assigned in insertion order).
  std::vector<std::vector<RawPosting>> term_postings_;
  std::vector<std::uint32_t> doc_lengths_;
  std::uint64_t num_postings_ = 0;
};

/// Merges two immutable segments into one, renumbering `newer`'s docs to
/// follow `older`'s (global id = older.num_docs() + local id). Posting
/// scores are copied verbatim — never rescored — so top-k results over
/// the merged segment equal the merged per-segment results. Works for
/// main+delta merges and for delta+delta refreezes alike.
InvertedIndex MergeSegments(const InvertedIndex& older,
                            const InvertedIndex& newer);

}  // namespace sparta::index

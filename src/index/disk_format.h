// Binary on-disk index format (single file, mmap-friendly).
//
// Layout (all sections 8-byte aligned, little-endian, fixed-width):
//
//   [Header]            magic, counts, avg doc len
//   [TermEntry array]   num_terms entries
//   [doc-ordered postings]
//   [impact-ordered postings]
//   [block-max metadata]
//   [IntegrityFooter]   FNV-1a 64 checksums: header + one per section
//
// The paper stores each index "on disk uncompressed as a collection of
// binary files" (§5.1); we use one file with the same uncompressed fixed
// layout, which keeps the page-offset arithmetic of the I/O model simple.
//
// Integrity: a footer after the last section carries an FNV-1a 64
// checksum of the header and of each payload section, all verified at
// load. A torn or bit-flipped body is rejected with a section-naming
// error instead of loading silently — which is also what makes the
// live-update merge publish crash-safe: the new segment is written to a
// temporary file, re-validated through this path, and only then renamed
// over the old one (AtomicSaveIndex). The footer lives *after* the
// sections (not in the header) so section offsets — and therefore the
// simulator's page-charging arithmetic, which models these offsets even
// for in-memory indexes — are byte-identical to the pre-checksum format;
// it is metadata read once at load time on the host, never on the query
// path, so it is also excluded from the modeled index size.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "index/inverted_index.h"

namespace sparta::index {

/// Current format: "SPARTA02" (checksummed, with integrity footer).
inline constexpr std::uint64_t kIndexMagic = 0x5350415254413032ULL;
/// The pre-checksum "SPARTA01" format; recognized only to produce a
/// clearer rejection message.
inline constexpr std::uint64_t kIndexMagicV1 = 0x5350415254413031ULL;

struct SectionLayout {
  std::uint64_t term_table_offset = 0;
  std::uint64_t doc_postings_offset = 0;
  std::uint64_t impact_postings_offset = 0;
  std::uint64_t blocks_offset = 0;
  std::uint64_t total_size = 0;
};

/// Byte layout of an index with the given element counts. `total_size`
/// covers header + sections only — the on-disk file additionally carries
/// the integrity footer, which the I/O model deliberately ignores.
SectionLayout ComputeSectionLayout(std::uint64_t num_terms,
                                   std::uint64_t num_doc_postings,
                                   std::uint64_t num_impact_postings,
                                   std::uint64_t num_blocks);

/// Serialized size in bytes of the query-readable payload (header +
/// sections, excluding the integrity footer) — the footprint the
/// simulator's page-cache model uses.
std::uint64_t SerializedIndexSize(std::uint64_t num_terms,
                                  std::uint64_t num_doc_postings,
                                  std::uint64_t num_impact_postings,
                                  std::uint64_t num_blocks);

/// Writes `idx` to `path`. Returns false on I/O error.
bool SaveIndex(const InvertedIndex& idx, const std::string& path);

/// Writes `idx` to `path` crash-consistently: the bytes go to
/// `path + ".tmp"`, are flushed to stable storage, re-validated through
/// LoadIndex (checksums and all), and only then renamed into place — so
/// `path` atomically holds either the complete old index or the complete
/// new one, never a torn mix. Returns false (leaving `path` untouched and
/// the temporary removed) on any write, validation or rename failure.
bool AtomicSaveIndex(const InvertedIndex& idx, const std::string& path);

/// Memory-maps `path` and returns an index backed by the mapping.
/// Returns an empty optional on error or format mismatch.
std::optional<InvertedIndex> LoadIndex(const std::string& path);

/// As above; on failure additionally reports why in `*error` (which
/// section failed its checksum, truncation, magic mismatch, ...).
std::optional<InvertedIndex> LoadIndex(const std::string& path,
                                       std::string* error);

}  // namespace sparta::index

// Binary on-disk index format (single file, mmap-friendly).
//
// Layout (all sections 8-byte aligned, little-endian, fixed-width):
//
//   [Header]            magic, version, counts, avg doc len
//   [TermEntry array]   num_terms entries
//   [doc-ordered postings]
//   [impact-ordered postings]
//   [block-max metadata]
//
// The paper stores each index "on disk uncompressed as a collection of
// binary files" (§5.1); we use one file with the same uncompressed fixed
// layout, which keeps the page-offset arithmetic of the I/O model simple.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "index/inverted_index.h"

namespace sparta::index {

inline constexpr std::uint64_t kIndexMagic = 0x5350415254413031ULL;  // "SPARTA01"

struct SectionLayout {
  std::uint64_t term_table_offset = 0;
  std::uint64_t doc_postings_offset = 0;
  std::uint64_t impact_postings_offset = 0;
  std::uint64_t blocks_offset = 0;
  std::uint64_t total_size = 0;
};

/// Byte layout of an index with the given element counts.
SectionLayout ComputeSectionLayout(std::uint64_t num_terms,
                                   std::uint64_t num_doc_postings,
                                   std::uint64_t num_impact_postings,
                                   std::uint64_t num_blocks);

/// Total serialized size in bytes.
std::uint64_t SerializedIndexSize(std::uint64_t num_terms,
                                  std::uint64_t num_doc_postings,
                                  std::uint64_t num_impact_postings,
                                  std::uint64_t num_blocks);

/// Writes `idx` to `path`. Returns false on I/O error.
bool SaveIndex(const InvertedIndex& idx, const std::string& path);

/// Memory-maps `path` and returns an index backed by the mapping.
/// Returns an empty optional on error or format mismatch.
std::optional<InvertedIndex> LoadIndex(const std::string& path);

}  // namespace sparta::index

// Document scoring: tf-idf with document-length normalization (§5.1).
#pragma once

#include <cstdint>

#include "index/types.h"
#include "util/common.h"

namespace sparta::index {

/// tf-idf scorer with pivoted document-length normalization:
///
///   ts(D, t) = idf(t) * tf / (tf + k * ((1-b) + b * |D| / avgdl))
///   idf(t)   = ln(1 + N / df(t))
///
/// The tf factor saturates at 1, so idf(t) is a tight per-term score
/// upper bound — which is exactly the `max_score` statistic MaxScore,
/// WAND and BMW prune with. Output is integer fixed-point (x 10^6),
/// following the paper (§5.2).
struct ScorerParams {
  double k = 1.2;  ///< tf saturation steepness
  double b = 0.75;  ///< degree of length normalization
};

class Scorer {
 public:
  Scorer(std::uint32_t num_docs, double avg_doc_len, ScorerParams params = {});

  /// Integer term score for a posting.
  PackedScore TermScore(std::uint32_t tf, std::uint32_t df,
                        std::uint32_t doc_len) const;

  /// Tight upper bound on TermScore over all documents, for a given df.
  PackedScore MaxTermScore(std::uint32_t df) const;

  std::uint32_t num_docs() const { return num_docs_; }
  double avg_doc_len() const { return avg_doc_len_; }

 private:
  double Idf(std::uint32_t df) const;

  std::uint32_t num_docs_;
  double avg_doc_len_;
  ScorerParams params_;
};

}  // namespace sparta::index

// Epoch-based snapshot reclamation for the live index (DESIGN.md §12).
//
// Every in-flight query pins one immutable IndexSnapshot — the pair
// {main segment, frozen delta} published at some epoch — and keeps
// reading it until it drains, no matter how many refreshes or merges
// publish newer epochs meanwhile. The manager keeps a per-epoch pin
// table; Publish() retires the previous snapshot and Collect() reclaims
// retired snapshots only once their pin count has dropped to zero, so a
// reader can never observe a snapshot being torn down under it.
//
// Two independent enforcement layers check that discipline:
//   * SPARTA_* annotations — the pin table and retired list are
//     SPARTA_GUARDED_BY an annotated util::Mutex, so every access path
//     is checked by clang -Wthread-safety (CI's lint-static job) and is
//     genuinely thread-safe for the real-thread ingest stress test.
//   * a race-detector shadow — each epoch owns a shadow slot
//     (shadow_slot()). Query jobs shadow-READ their pinned epoch's slot
//     and reclamation shadow-WRITEs it (Collect(worker)), both under the
//     serving layer's epoch CtxLock; a reclaim that races a pinned
//     reader (no common lock, no fork edge) is reported by the
//     deterministic race detector exactly like any data race
//     (tests/test_live_index.cpp proves both directions).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "exec/context.h"
#include "index/inverted_index.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace sparta::index {

/// A consistent, immutable two-segment view of the live index. Queries
/// search `main` and (when present) `delta`, rebasing delta doc ids by
/// `delta_doc_base`; posting scores are preserved bit-for-bit across
/// merges, so the merged index returns exactly the merged per-segment
/// results (snapshot equivalence, tested in test_live_index.cpp).
struct IndexSnapshot {
  std::shared_ptr<const InvertedIndex> main;
  /// Frozen delta segment, or null right after a merge publish.
  std::shared_ptr<const InvertedIndex> delta;
  /// Global doc id of the delta's local doc 0 (== main->num_docs()).
  std::uint32_t delta_doc_base = 0;
  /// Publication epoch (monotone; bumped by Refresh and merge publish).
  std::uint64_t epoch = 0;

  std::uint32_t num_docs() const {
    return (main != nullptr ? main->num_docs() : 0) +
           (delta != nullptr ? delta->num_docs() : 0);
  }
};

class EpochManager {
 public:
  /// RAII pin: while alive, the pinned snapshot's epoch cannot be
  /// reclaimed (and the shared_ptr keeps the segments alive regardless —
  /// the pin table is what makes the reclamation *protocol* checkable).
  class Pin {
   public:
    Pin() = default;
    Pin(Pin&& other) noexcept
        : mgr_(other.mgr_), snap_(std::move(other.snap_)) {
      other.mgr_ = nullptr;
    }
    Pin& operator=(Pin&& other) noexcept {
      if (this != &other) {
        Release();
        mgr_ = other.mgr_;
        snap_ = std::move(other.snap_);
        other.mgr_ = nullptr;
      }
      return *this;
    }
    Pin(const Pin&) = delete;
    Pin& operator=(const Pin&) = delete;
    ~Pin() { Release(); }

    bool valid() const { return snap_ != nullptr; }
    const IndexSnapshot& operator*() const { return *snap_; }
    const IndexSnapshot* operator->() const { return snap_.get(); }
    std::shared_ptr<const IndexSnapshot> snapshot() const { return snap_; }

    /// Unpins early (idempotent; the destructor calls it).
    void Release();

   private:
    friend class EpochManager;
    Pin(EpochManager* mgr, std::shared_ptr<const IndexSnapshot> snap)
        : mgr_(mgr), snap_(std::move(snap)) {}

    EpochManager* mgr_ = nullptr;
    std::shared_ptr<const IndexSnapshot> snap_;
  };

  explicit EpochManager(IndexSnapshot initial);

  /// Pins the currently published snapshot.
  Pin Acquire();

  /// Publishes `next` (its epoch must exceed the current one) and
  /// retires the previously published snapshot.
  void Publish(IndexSnapshot next);

  /// Reclaims retired snapshots with zero pins. Returns how many were
  /// reclaimed in this call.
  std::size_t Collect();

  /// Collect() variant for race-checked runs: emits a shadow WRITE on
  /// each reclaimed epoch's slot through `worker`. The caller must hold
  /// the serving layer's epoch CtxLock (the same one readers hold for
  /// ShadowPin), or the detector will report the reclaim as racing any
  /// concurrent pinned reader — which is the point.
  std::size_t Collect(exec::WorkerContext& worker);

  /// Emits the reader-side shadow READ on `epoch`'s slot. Query jobs
  /// call this once after pinning, under the epoch CtxLock.
  void ShadowPin(exec::WorkerContext& worker, std::uint64_t epoch) {
    worker.ShadowAccess(shadow_slot(epoch), exec::AccessKind::kRead);
  }

  std::uint64_t current_epoch() const;
  /// Live pins on `epoch`.
  std::uint64_t pins(std::uint64_t epoch) const;
  /// Retired snapshots not yet reclaimed.
  std::size_t retired() const;
  /// Total snapshots reclaimed so far.
  std::uint64_t reclaimed() const;

  /// Address identifying `epoch` for the race-detector shadow (stable
  /// for the manager's lifetime; epochs alias mod the table size, far
  /// beyond any plausible pin overlap).
  const void* shadow_slot(std::uint64_t epoch) const {
    return &shadow_slots_[epoch % kShadowSlots];
  }

 private:
  static constexpr std::size_t kShadowSlots = 64;

  struct Retired {
    std::uint64_t epoch = 0;
    std::shared_ptr<const IndexSnapshot> snap;
  };

  void ReleasePin(std::uint64_t epoch);

  mutable util::Mutex mutex_;
  std::shared_ptr<const IndexSnapshot> current_ SPARTA_GUARDED_BY(mutex_);
  /// epoch -> live pin count; erased at zero so the map stays small.
  std::map<std::uint64_t, std::uint64_t> pins_ SPARTA_GUARDED_BY(mutex_);
  std::vector<Retired> retired_ SPARTA_GUARDED_BY(mutex_);
  std::uint64_t reclaimed_ SPARTA_GUARDED_BY(mutex_) = 0;
  /// Shadow table: never dereferenced, only its element addresses feed
  /// the race detector.
  std::uint64_t shadow_slots_[kShadowSlots] = {};
};

}  // namespace sparta::index

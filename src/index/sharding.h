// Doc-partitioned index sharding for the simulated cluster.
//
// A ShardedIndex splits one finalized InvertedIndex into `num_shards`
// contiguous document ranges. Each shard is itself a complete
// InvertedIndex over its local (0-based) doc ids, with posting scores
// preserved *bit for bit* from the full index — scores were computed
// against global corpus statistics (idf over all N docs, global avgdl),
// so per-shard top-k scores stay comparable across shards and the
// scatter-gather merge of all shards' results is exactly the full
// index's result (ShardMergeEquivalence in tests/test_cluster.cpp).
// This mirrors how production tiers shard: documents are routed to
// shards at ingest, but collection statistics are computed (or
// broadcast) globally so scores merge.
//
// The route table is trivial by construction — shard s owns the global
// doc range [infos[s].doc_base, doc_base + num_docs) — which keeps the
// coordinator's local→global rebase a single addition, the same trick
// the live index uses for delta doc ids (DESIGN.md §12).
#pragma once

#include <memory>
#include <vector>

#include "index/inverted_index.h"

namespace sparta::index {

/// One shard's slice of the document space.
struct ShardInfo {
  /// Global doc id of the shard's local doc 0.
  std::uint32_t doc_base = 0;
  std::uint32_t num_docs = 0;
  /// num_docs / total docs: the recall this shard's loss can cost.
  double doc_fraction = 0.0;
};

struct ShardedIndex {
  /// shards[s] indexes local doc ids [0, infos[s].num_docs).
  std::vector<std::shared_ptr<const InvertedIndex>> shards;
  std::vector<ShardInfo> infos;
  std::uint32_t total_docs = 0;

  int num_shards() const { return static_cast<int>(shards.size()); }

  /// Rebase a shard-local doc id to the global document space.
  DocId ToGlobal(int shard, DocId local) const {
    return infos[static_cast<std::size_t>(shard)].doc_base + local;
  }

  /// Route a global doc id to its owning shard (contiguous ranges).
  int ShardOf(DocId global) const;
};

/// Splits `full` into `num_shards` contiguous doc ranges (sizes differ
/// by at most one document). Scores, per-term ordering conventions and
/// block-max metadata are rebuilt per shard from the full index's
/// postings without rescoring, so a merge over all shards reproduces
/// the unsharded result exactly.
ShardedIndex ShardIndex(const InvertedIndex& full, int num_shards);

}  // namespace sparta::index

// Block-max metadata construction and lookup (Ding & Suel, SIGIR'11).
#pragma once

#include <span>
#include <vector>

#include "index/types.h"

namespace sparta::index {

/// Builds per-block metadata for a doc-ordered posting list: every
/// kBlockSize postings form a block carrying its last docid and max score.
std::vector<BlockMeta> BuildBlockMeta(std::span<const Posting> doc_order);

/// Index of the block containing the first posting with doc >= target,
/// or blocks.size() if no such block exists.
std::size_t FindBlock(std::span<const BlockMeta> blocks, DocId target);

}  // namespace sparta::index

#include "index/disk_format.h"

#include <cstdio>
#include <cstring>
#include <memory>
#include <optional>

#include "index/mmap_file.h"

namespace sparta::index {
namespace {

struct Header {
  std::uint64_t magic = kIndexMagic;
  std::uint32_t num_docs = 0;
  std::uint32_t num_terms = 0;
  std::uint64_t num_doc_postings = 0;
  std::uint64_t num_impact_postings = 0;
  std::uint64_t num_blocks = 0;
  double avg_doc_len = 0.0;
};
static_assert(sizeof(Header) % 8 == 0);

constexpr std::uint64_t Align8(std::uint64_t x) { return (x + 7) & ~7ULL; }

/// RAII stdio file handle.
struct FileCloser {
  void operator()(std::FILE* f) const { std::fclose(f); }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

bool WriteAll(std::FILE* f, const void* data, std::size_t size) {
  return size == 0 || std::fwrite(data, 1, size, f) == size;
}

}  // namespace

SectionLayout ComputeSectionLayout(std::uint64_t num_terms,
                                   std::uint64_t num_doc_postings,
                                   std::uint64_t num_impact_postings,
                                   std::uint64_t num_blocks) {
  SectionLayout layout;
  layout.term_table_offset = Align8(sizeof(Header));
  layout.doc_postings_offset =
      Align8(layout.term_table_offset + num_terms * sizeof(TermEntry));
  layout.impact_postings_offset = Align8(
      layout.doc_postings_offset + num_doc_postings * sizeof(Posting));
  layout.blocks_offset = Align8(layout.impact_postings_offset +
                                num_impact_postings * sizeof(Posting));
  layout.total_size = layout.blocks_offset + num_blocks * sizeof(BlockMeta);
  return layout;
}

std::uint64_t SerializedIndexSize(std::uint64_t num_terms,
                                  std::uint64_t num_doc_postings,
                                  std::uint64_t num_impact_postings,
                                  std::uint64_t num_blocks) {
  return ComputeSectionLayout(num_terms, num_doc_postings,
                              num_impact_postings, num_blocks)
      .total_size;
}

bool SaveIndex(const InvertedIndex& idx, const std::string& path) {
  FilePtr file(std::fopen(path.c_str(), "wb"));
  if (!file) return false;

  Header header;
  header.num_docs = idx.num_docs();
  header.num_terms = idx.num_terms();
  header.num_doc_postings = idx.doc_postings().size();
  header.num_impact_postings = idx.impact_postings().size();
  header.num_blocks = idx.blocks().size();
  header.avg_doc_len = idx.avg_doc_len();

  const SectionLayout layout = ComputeSectionLayout(
      header.num_terms, header.num_doc_postings, header.num_impact_postings,
      header.num_blocks);

  // Collect the term table (it is stored internally; re-derive it).
  std::vector<TermEntry> terms(header.num_terms);
  for (TermId t = 0; t < header.num_terms; ++t) terms[t] = idx.Entry(t);

  auto pad_to = [&](std::uint64_t offset) {
    const long pos = std::ftell(file.get());
    SPARTA_CHECK(pos >= 0 &&
                 static_cast<std::uint64_t>(pos) <= offset);
    static constexpr char kZeros[8] = {};
    return WriteAll(file.get(), kZeros,
                    offset - static_cast<std::uint64_t>(pos));
  };

  if (!WriteAll(file.get(), &header, sizeof(header))) return false;
  if (!pad_to(layout.term_table_offset)) return false;
  if (!WriteAll(file.get(), terms.data(),
                terms.size() * sizeof(TermEntry))) {
    return false;
  }
  if (!pad_to(layout.doc_postings_offset)) return false;
  if (!WriteAll(file.get(), idx.doc_postings().data(),
                idx.doc_postings().size_bytes())) {
    return false;
  }
  if (!pad_to(layout.impact_postings_offset)) return false;
  if (!WriteAll(file.get(), idx.impact_postings().data(),
                idx.impact_postings().size_bytes())) {
    return false;
  }
  if (!pad_to(layout.blocks_offset)) return false;
  return WriteAll(file.get(), idx.blocks().data(),
                  idx.blocks().size_bytes());
}

std::optional<InvertedIndex> LoadIndex(const std::string& path) {
  auto mapping = std::make_unique<MmapFile>();
  if (!mapping->Open(path)) return std::nullopt;
  const auto bytes = mapping->bytes();
  if (bytes.size() < sizeof(Header)) return std::nullopt;

  Header header;
  std::memcpy(&header, bytes.data(), sizeof(header));
  if (header.magic != kIndexMagic) return std::nullopt;

  const SectionLayout layout = ComputeSectionLayout(
      header.num_terms, header.num_doc_postings, header.num_impact_postings,
      header.num_blocks);
  if (bytes.size() < layout.total_size) return std::nullopt;

  std::vector<TermEntry> terms(header.num_terms);
  std::memcpy(terms.data(), bytes.data() + layout.term_table_offset,
              terms.size() * sizeof(TermEntry));

  // The sections are 8-byte aligned within the file and mmap returns
  // page-aligned memory, so reinterpreting is safe for these trivially
  // copyable, alignment-8 types.
  const auto* doc_ptr = reinterpret_cast<const Posting*>(
      bytes.data() + layout.doc_postings_offset);
  const auto* impact_ptr = reinterpret_cast<const Posting*>(
      bytes.data() + layout.impact_postings_offset);
  const auto* block_ptr = reinterpret_cast<const BlockMeta*>(
      bytes.data() + layout.blocks_offset);

  return InvertedIndex::FromMmap(
      header.num_docs, header.avg_doc_len, std::move(terms),
      {doc_ptr, header.num_doc_postings},
      {impact_ptr, header.num_impact_postings},
      {block_ptr, header.num_blocks}, layout.doc_postings_offset,
      layout.impact_postings_offset, std::move(mapping));
}

}  // namespace sparta::index

#include "index/disk_format.h"

#include <cstdio>
#include <cstring>
#include <memory>
#include <optional>

#include <unistd.h>

#include "index/mmap_file.h"

namespace sparta::index {
namespace {

// Byte-identical to the SPARTA01 header (only the magic value changed):
// section offsets derive from sizeof(Header), and the simulator charges
// page I/O against those offsets even for in-memory indexes, so growing
// the header would silently shift every modeled page boundary. Integrity
// data therefore lives in the footer below, after the sections.
struct Header {
  std::uint64_t magic = kIndexMagic;
  std::uint32_t num_docs = 0;
  std::uint32_t num_terms = 0;
  std::uint64_t num_doc_postings = 0;
  std::uint64_t num_impact_postings = 0;
  std::uint64_t num_blocks = 0;
  double avg_doc_len = 0.0;
};
static_assert(sizeof(Header) % 8 == 0);

/// Trails the last section. Checked once at load time on the host; never
/// read on the query path, so it is invisible to the I/O cost model.
struct IntegrityFooter {
  /// FNV-1a 64 of the header bytes.
  std::uint64_t header_checksum = 0;
  /// FNV-1a 64 over the payload of each section, in file order: term
  /// table, doc-ordered postings, impact-ordered postings, block meta.
  std::uint64_t section_checksums[4] = {};
  /// FNV-1a 64 of this footer with this field zeroed — distinguishes
  /// "footer corrupted" from "body corrupted" in error reports.
  std::uint64_t footer_checksum = 0;
};
static_assert(sizeof(IntegrityFooter) % 8 == 0);

constexpr std::uint64_t Align8(std::uint64_t x) { return (x + 7) & ~7ULL; }

/// FNV-1a 64-bit: tiny, dependency-free, and plenty to catch torn writes
/// and bit flips (this is an integrity check, not an adversarial MAC).
std::uint64_t Fnv1a64(const void* data, std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::uint64_t FooterSelfChecksum(IntegrityFooter footer) {
  footer.footer_checksum = 0;
  return Fnv1a64(&footer, sizeof(footer));
}

/// RAII stdio file handle.
struct FileCloser {
  void operator()(std::FILE* f) const { std::fclose(f); }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

bool WriteAll(std::FILE* f, const void* data, std::size_t size) {
  return size == 0 || std::fwrite(data, 1, size, f) == size;
}

void SetError(std::string* error, const char* message) {
  if (error != nullptr) *error = message;
}

}  // namespace

SectionLayout ComputeSectionLayout(std::uint64_t num_terms,
                                   std::uint64_t num_doc_postings,
                                   std::uint64_t num_impact_postings,
                                   std::uint64_t num_blocks) {
  SectionLayout layout;
  layout.term_table_offset = Align8(sizeof(Header));
  layout.doc_postings_offset =
      Align8(layout.term_table_offset + num_terms * sizeof(TermEntry));
  layout.impact_postings_offset = Align8(
      layout.doc_postings_offset + num_doc_postings * sizeof(Posting));
  layout.blocks_offset = Align8(layout.impact_postings_offset +
                                num_impact_postings * sizeof(Posting));
  layout.total_size = layout.blocks_offset + num_blocks * sizeof(BlockMeta);
  return layout;
}

std::uint64_t SerializedIndexSize(std::uint64_t num_terms,
                                  std::uint64_t num_doc_postings,
                                  std::uint64_t num_impact_postings,
                                  std::uint64_t num_blocks) {
  return ComputeSectionLayout(num_terms, num_doc_postings,
                              num_impact_postings, num_blocks)
      .total_size;
}

bool SaveIndex(const InvertedIndex& idx, const std::string& path) {
  FilePtr file(std::fopen(path.c_str(), "wb"));
  if (!file) return false;

  Header header;
  header.num_docs = idx.num_docs();
  header.num_terms = idx.num_terms();
  header.num_doc_postings = idx.doc_postings().size();
  header.num_impact_postings = idx.impact_postings().size();
  header.num_blocks = idx.blocks().size();
  header.avg_doc_len = idx.avg_doc_len();

  const SectionLayout layout = ComputeSectionLayout(
      header.num_terms, header.num_doc_postings, header.num_impact_postings,
      header.num_blocks);

  // Collect the term table (it is stored internally; re-derive it).
  std::vector<TermEntry> terms(header.num_terms);
  for (TermId t = 0; t < header.num_terms; ++t) terms[t] = idx.Entry(t);

  IntegrityFooter footer;
  footer.header_checksum = Fnv1a64(&header, sizeof(header));
  footer.section_checksums[0] =
      Fnv1a64(terms.data(), terms.size() * sizeof(TermEntry));
  footer.section_checksums[1] =
      Fnv1a64(idx.doc_postings().data(), idx.doc_postings().size_bytes());
  footer.section_checksums[2] = Fnv1a64(idx.impact_postings().data(),
                                        idx.impact_postings().size_bytes());
  footer.section_checksums[3] =
      Fnv1a64(idx.blocks().data(), idx.blocks().size_bytes());
  footer.footer_checksum = FooterSelfChecksum(footer);

  auto pad_to = [&](std::uint64_t offset) {
    const long pos = std::ftell(file.get());
    SPARTA_CHECK(pos >= 0 &&
                 static_cast<std::uint64_t>(pos) <= offset);
    static constexpr char kZeros[8] = {};
    return WriteAll(file.get(), kZeros,
                    offset - static_cast<std::uint64_t>(pos));
  };

  if (!WriteAll(file.get(), &header, sizeof(header))) return false;
  if (!pad_to(layout.term_table_offset)) return false;
  if (!WriteAll(file.get(), terms.data(),
                terms.size() * sizeof(TermEntry))) {
    return false;
  }
  if (!pad_to(layout.doc_postings_offset)) return false;
  if (!WriteAll(file.get(), idx.doc_postings().data(),
                idx.doc_postings().size_bytes())) {
    return false;
  }
  if (!pad_to(layout.impact_postings_offset)) return false;
  if (!WriteAll(file.get(), idx.impact_postings().data(),
                idx.impact_postings().size_bytes())) {
    return false;
  }
  if (!pad_to(layout.blocks_offset)) return false;
  if (!WriteAll(file.get(), idx.blocks().data(), idx.blocks().size_bytes())) {
    return false;
  }
  return WriteAll(file.get(), &footer, sizeof(footer));
}

bool AtomicSaveIndex(const InvertedIndex& idx, const std::string& path) {
  const std::string tmp = path + ".tmp";
  if (!SaveIndex(idx, tmp)) {
    std::remove(tmp.c_str());
    return false;
  }
  // Flush the temporary to stable storage before the rename so a crash
  // between the two cannot leave `path` pointing at unwritten pages.
  {
    FilePtr file(std::fopen(tmp.c_str(), "rb+"));
    if (!file || ::fsync(::fileno(file.get())) != 0) {
      std::remove(tmp.c_str());
      return false;
    }
  }
  // Re-validate the bytes we just wrote: a torn or short write must
  // never be promoted over a good index.
  if (!LoadIndex(tmp).has_value()) {
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

std::optional<InvertedIndex> LoadIndex(const std::string& path) {
  return LoadIndex(path, nullptr);
}

std::optional<InvertedIndex> LoadIndex(const std::string& path,
                                       std::string* error) {
  auto mapping = std::make_unique<MmapFile>();
  if (!mapping->Open(path)) {
    SetError(error, "cannot open or map index file");
    return std::nullopt;
  }
  const auto bytes = mapping->bytes();
  if (bytes.size() < sizeof(Header)) {
    SetError(error, "file truncated: smaller than the index header");
    return std::nullopt;
  }

  Header header;
  std::memcpy(&header, bytes.data(), sizeof(header));
  if (header.magic == kIndexMagicV1) {
    SetError(error,
             "pre-checksum SPARTA01 index; rebuild with the current format");
    return std::nullopt;
  }
  if (header.magic != kIndexMagic) {
    SetError(error, "bad magic: not a SPARTA02 index file");
    return std::nullopt;
  }

  const SectionLayout layout = ComputeSectionLayout(
      header.num_terms, header.num_doc_postings, header.num_impact_postings,
      header.num_blocks);
  if (bytes.size() < layout.total_size + sizeof(IntegrityFooter)) {
    SetError(error, "file truncated: sections extend past end of file");
    return std::nullopt;
  }

  IntegrityFooter footer;
  std::memcpy(&footer, bytes.data() + layout.total_size, sizeof(footer));
  if (footer.footer_checksum != FooterSelfChecksum(footer)) {
    SetError(error, "integrity footer corrupted");
    return std::nullopt;
  }
  if (footer.header_checksum != Fnv1a64(&header, sizeof(header))) {
    SetError(error, "header checksum mismatch: corrupted index header");
    return std::nullopt;
  }

  struct SectionCheck {
    const char* name;
    std::uint64_t offset;
    std::uint64_t size;
  };
  const SectionCheck sections[4] = {
      {"term table", layout.term_table_offset,
       header.num_terms * sizeof(TermEntry)},
      {"doc-ordered postings", layout.doc_postings_offset,
       header.num_doc_postings * sizeof(Posting)},
      {"impact-ordered postings", layout.impact_postings_offset,
       header.num_impact_postings * sizeof(Posting)},
      {"block metadata", layout.blocks_offset,
       header.num_blocks * sizeof(BlockMeta)},
  };
  for (int s = 0; s < 4; ++s) {
    const std::uint64_t actual =
        Fnv1a64(bytes.data() + sections[s].offset, sections[s].size);
    if (actual != footer.section_checksums[s]) {
      if (error != nullptr) {
        *error = std::string(sections[s].name) +
                 " checksum mismatch: corrupted index body";
      }
      return std::nullopt;
    }
  }

  std::vector<TermEntry> terms(header.num_terms);
  std::memcpy(terms.data(), bytes.data() + layout.term_table_offset,
              terms.size() * sizeof(TermEntry));

  // The sections are 8-byte aligned within the file and mmap returns
  // page-aligned memory, so reinterpreting is safe for these trivially
  // copyable, alignment-8 types.
  const auto* doc_ptr = reinterpret_cast<const Posting*>(
      bytes.data() + layout.doc_postings_offset);
  const auto* impact_ptr = reinterpret_cast<const Posting*>(
      bytes.data() + layout.impact_postings_offset);
  const auto* block_ptr = reinterpret_cast<const BlockMeta*>(
      bytes.data() + layout.blocks_offset);

  return InvertedIndex::FromMmap(
      header.num_docs, header.avg_doc_len, std::move(terms),
      {doc_ptr, header.num_doc_postings},
      {impact_ptr, header.num_impact_postings},
      {block_ptr, header.num_blocks}, layout.doc_postings_offset,
      layout.impact_postings_offset, std::move(mapping));
}

}  // namespace sparta::index

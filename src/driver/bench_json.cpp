#include "driver/bench_json.h"

#include <cstdio>
#include <filesystem>
#include <fstream>

namespace sparta::driver {
namespace {

std::string FormatNumber(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

/// Metric/config names are controlled identifiers; escape the JSON
/// specials anyway so a stray quote cannot corrupt the document.
std::string Quote(const std::string& s) {
  std::string out = "\"";
  for (const char ch : s) {
    if (ch == '"' || ch == '\\') out.push_back('\\');
    out.push_back(ch);
  }
  out += '"';
  return out;
}

}  // namespace

void BenchJson::Set(const std::string& config, const std::string& metric,
                    double value) {
  configs_[config][metric] = value;
}

void BenchJson::SetLatency(const std::string& config,
                           const LatencyResult& result) {
  Set(config, "mean_virtual_ms", result.MeanMs());
  Set(config, "p50_virtual_ms",
      result.latency_ns.empty()
          ? 0.0
          : static_cast<double>(result.latency_ns.Percentile(50)) / 1e6);
  Set(config, "p99_virtual_ms", result.P99Ms());
  Set(config, "postings", static_cast<double>(result.postings));
  Set(config, "recall", result.mean_recall);
}

std::string BenchJson::ToJson() const {
  std::string out = "{\n";
  out += "  \"bench\": " + Quote(name_) + ",\n";
  out += "  \"schema\": 1,\n";
  out += "  \"configs\": {";
  bool first_config = true;
  for (const auto& [config, metrics] : configs_) {
    out += first_config ? "\n" : ",\n";
    first_config = false;
    out += "    " + Quote(config) + ": {";
    bool first_metric = true;
    for (const auto& [metric, value] : metrics) {
      out += first_metric ? "\n" : ",\n";
      first_metric = false;
      out += "      " + Quote(metric) + ": " + FormatNumber(value);
    }
    out += "\n    }";
  }
  out += "\n  }\n}\n";
  return out;
}

bool BenchJson::Write(const std::string& dir) const {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  std::ofstream out(dir + "/BENCH_" + name_ + ".json");
  if (!out) return false;
  out << ToJson();
  return static_cast<bool>(out);
}

}  // namespace sparta::driver

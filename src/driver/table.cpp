#include "driver/table.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "util/common.h"

namespace sparta::driver {

Table::Table(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {}

void Table::AddRow(std::vector<std::string> cells) {
  SPARTA_CHECK(cells.size() == columns_.size());
  rows_.push_back(std::move(cells));
}

void Table::Print(std::ostream& os) const {
  std::vector<std::size_t> width(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    width[c] = columns_[c].size();
    for (const auto& row : rows_) width[c] = std::max(width[c], row[c].size());
  }
  os << "\n== " << title_ << " ==\n";
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      os.width(static_cast<std::streamsize>(width[c]));
      os << (c == 0 ? std::left : std::right);
      os << cells[c];
    }
    os << "\n";
  };
  print_row(columns_);
  std::string rule;
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    rule.append(width[c] + (c == 0 ? 0 : 2), '-');
  }
  os << rule << "\n";
  for (const auto& row : rows_) print_row(row);
  os.flush();
}

bool Table::WriteCsv(const std::string& dir) const {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  std::string slug;
  for (const char ch : title_) {
    slug.push_back(std::isalnum(static_cast<unsigned char>(ch))
                       ? static_cast<char>(
                             std::tolower(static_cast<unsigned char>(ch)))
                       : '_');
  }
  std::ofstream out(dir + "/" + slug + ".csv");
  if (!out) return false;
  auto write_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c != 0) out << ',';
      out << cells[c];
    }
    out << '\n';
  };
  write_row(columns_);
  for (const auto& row : rows_) write_row(row);
  return static_cast<bool>(out);
}

std::string FormatMs(exec::VirtualTime ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f",
                static_cast<double>(ns) / 1e6);
  return buf;
}

std::string FormatPct(double fraction) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f%%", fraction * 100.0);
  return buf;
}

std::string FormatF(double v, int precision) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

}  // namespace sparta::driver

#include "driver/bench_driver.h"

#include <algorithm>
#include <string>
#include <vector>

#include "topk/query_metrics.h"

namespace sparta::driver {

BenchDriver::BenchDriver(const corpus::Dataset& dataset)
    : dataset_(dataset) {}

sim::SimConfig BenchDriver::MakeSimConfig(int workers) const {
  sim::SimConfig config;
  config.num_workers = workers;
  config.page_cache_bytes = dataset_.PageCacheBytes();
  config.memory_budget_bytes = dataset_.spec().memory_budget_bytes;
  // Random-access work (pRA's secondary-index lookups) is k-bound, not
  // corpus-bound: the paper scores ~O(k) documents before UBStop no
  // matter the corpus size. Our corpora are 1:500 scale but k is 1:10
  // (100 vs 1000), so relative to traversal work pRA would be 50x
  // over-penalized at the physical 80us/read. The per-read cost is
  // scaled by that distortion factor to preserve the paper's balance
  // (see EXPERIMENTS.md, "calibration").
  // Random-access (per-event, k-bound) device costs are scaled by the
  // corpus ratio so the random-vs-sequential balance of a query matches
  // the paper's; per-posting (corpus-bound) costs are left physical.
  constexpr double kCorpusScale = 1.0 / 500.0;  // docs_sim / docs_paper
  config.costs.ssd_random_page =
      static_cast<exec::VirtualTime>(80'000.0 * kCorpusScale);  // 160 ns
  config.costs.page_cache_hit = 80;

  // The cache hierarchy is scaled as well: per-entry structure sizes do
  // not shrink with the corpus, so at physical cache sizes every
  // algorithm's working set would fit in L2 and the memory-boundness the
  // paper measures (shared maps in DRAM vs termMap replicas in private
  // caches) would vanish. The scaled sizes keep the which-fits-where
  // relationships of the paper's machine: pruned/local maps fit private
  // caches, shared document maps do not.
  config.costs.l1_bytes = 4 * 1024;
  config.costs.l2_bytes = 32 * 1024;
  config.costs.llc_bytes = 1536 * 1024;
  return config;
}

const topk::ExactTopK& BenchDriver::Oracle(const corpus::Query& query,
                                           int k) {
  std::string key = std::to_string(k);
  for (const TermId t : query) {
    key.push_back(':');
    key += std::to_string(t);
  }
  const auto it = oracle_cache_.find(key);
  if (it != oracle_cache_.end()) return it->second;
  auto exact = topk::ComputeExactTopK(dataset_.index(), query, k);
  return oracle_cache_.emplace(key, std::move(exact)).first->second;
}

LatencyResult BenchDriver::MeasureLatency(
    const topk::Algorithm& algo, std::span<const corpus::Query> queries,
    const topk::SearchParams& params, int workers, bool measure_recall) {
  return MeasureLatency(algo, queries, params, MakeSimConfig(workers),
                        measure_recall);
}

LatencyResult BenchDriver::MeasureLatency(
    const topk::Algorithm& algo, std::span<const corpus::Query> queries,
    const topk::SearchParams& params, const sim::SimConfig& config,
    bool measure_recall) {
  sim::SimExecutor executor(config);
  // "Prior to each experiment, we flush the file system's page cache."
  executor.page_cache().Reset();
  return RunLatencyLoop(executor, algo, queries, params, measure_recall);
}

LatencyResult BenchDriver::RunLatencyLoop(
    sim::SimExecutor& executor, const topk::Algorithm& algo,
    std::span<const corpus::Query> queries,
    const topk::SearchParams& params, bool measure_recall) {
  LatencyResult result;
  double recall_sum = 0.0;
  std::size_t recall_n = 0;
  double oom_recall_sum = 0.0;
  double fraction_sum = 0.0;
  for (const auto& query : queries) {
    auto ctx = executor.CreateQuery();
    const auto search =
        algo.Run(dataset_.index(), query, params, *ctx);
    topk::ValidateQueryStats(search.stats, "MeasureLatency");
    ++result.queries;
    result.postings += search.stats.postings_processed;
    result.io_retries += search.stats.io_retries;
    result.faults_injected += search.stats.faults_injected;
    if (search.status == topk::ResultStatus::kOom) {
      // OOM queries are excluded from the latency/recall aggregates (the
      // paper reports them as N/A), but their achieved recall is kept as
      // a separate anytime-quality signal.
      ++result.oom;
      if (measure_recall) {
        oom_recall_sum +=
            topk::Recall(Oracle(query, params.k), search.entries);
      }
      continue;
    }
    if (search.degraded()) ++result.degraded;
    result.latency_ns.Add(ctx->end_time() - ctx->start_time());
    fraction_sum += search.stats.PostingsFraction();
    if (measure_recall) {
      const auto& exact = Oracle(query, params.k);
      recall_sum += topk::Recall(exact, search.entries);
      ++recall_n;
    }
  }
  result.mean_recall =
      recall_n > 0 ? recall_sum / static_cast<double>(recall_n) : 0.0;
  result.mean_oom_recall =
      result.oom > 0 ? oom_recall_sum / static_cast<double>(result.oom)
                     : 0.0;
  const std::size_t non_oom = result.queries - result.oom;
  result.mean_postings_fraction =
      non_oom > 0 ? fraction_sum / static_cast<double>(non_oom) : 0.0;
  return result;
}

ThroughputResult BenchDriver::MeasureThroughput(
    const topk::Algorithm& algo, std::span<const corpus::Query> queries,
    const topk::SearchParams& params, int workers, std::size_t warmup) {
  // A zero-query call has no makespan to divide by (and silently
  // reporting 0 qps has hidden miswired benches before); at least one
  // query must remain after the warmup prefix.
  SPARTA_CHECK_MSG(!queries.empty(),
                   "MeasureThroughput needs a non-empty query span");
  warmup = std::min(warmup, queries.size() - 1);
  sim::SimExecutor executor(MakeSimConfig(workers));
  executor.page_cache().Reset();

  struct InFlight {
    std::unique_ptr<exec::QueryContext> ctx;
    std::unique_ptr<topk::QueryRun> run;
    const corpus::Query* query = nullptr;
  };

  // Warmup drain: the first `warmup` queries run to completion and warm
  // the page cache, but their drain is excluded from the measured
  // makespan (the post-drain barrier restarts the clock baseline).
  if (warmup > 0) {
    std::vector<InFlight> discard;
    discard.reserve(warmup);
    std::size_t next_warm = 0;
    executor.Drain([&](exec::VirtualTime now) -> bool {
      if (next_warm >= warmup) return false;
      InFlight flight;
      flight.query = &queries[next_warm];
      flight.ctx = executor.CreateQueryAt(now);
      if (params.deadline != exec::kNever) {
        flight.ctx->set_deadline(now + params.deadline);
      }
      flight.run = algo.Prepare(dataset_.index(), *flight.query, params,
                                *flight.ctx);
      flight.run->Start();
      discard.push_back(std::move(flight));
      ++next_warm;
      return next_warm < warmup;
    });
    for (auto& flight : discard) (void)flight.run->TakeResult();
    executor.SyncBarrier();
  }
  const std::span<const corpus::Query> measured = queries.subspan(warmup);

  std::vector<InFlight> flights;
  flights.reserve(measured.size());

  std::size_t next = 0;
  exec::VirtualTime first_admit = 0;
  const auto admit = [&](exec::VirtualTime now) -> bool {
    if (next >= measured.size()) return false;
    if (next == 0) first_admit = now;
    InFlight flight;
    flight.query = &measured[next];
    flight.ctx = executor.CreateQueryAt(now);
    if (params.deadline != exec::kNever) {
      flight.ctx->set_deadline(now + params.deadline);
    }
    flight.run = algo.Prepare(dataset_.index(), *flight.query, params,
                              *flight.ctx);
    flight.run->Start();
    flights.push_back(std::move(flight));
    ++next;
    return next < measured.size();
  };
  executor.Drain(admit);
  SPARTA_CHECK_MSG(!flights.empty(),
                   "MeasureThroughput admitted zero queries");

  ThroughputResult result;
  result.queries = flights.size();
  exec::VirtualTime makespan_end = first_admit;
  double recall_sum = 0.0;
  std::size_t recall_n = 0;
  for (auto& flight : flights) {
    const auto search = flight.run->TakeResult();
    topk::ValidateQueryStats(search.stats, "MeasureThroughput");
    if (search.status == topk::ResultStatus::kOom) {
      ++result.oom;
      continue;
    }
    if (search.degraded()) ++result.degraded;
    makespan_end = std::max(makespan_end, flight.ctx->end_time());
    const auto& exact = Oracle(*flight.query, params.k);
    recall_sum += topk::Recall(exact, search.entries);
    ++recall_n;
  }
  const double seconds =
      static_cast<double>(makespan_end - first_admit) / 1e9;
  result.qps = seconds > 0.0
                   ? static_cast<double>(result.queries - result.oom) /
                         seconds
                   : 0.0;
  result.mean_recall =
      recall_n > 0 ? recall_sum / static_cast<double>(recall_n) : 0.0;
  return result;
}

OpenLoopResult BenchDriver::MeasureOpenLoop(
    const topk::Algorithm& algo, std::span<const corpus::Query> queries,
    const topk::SearchParams& params,
    const serve::ServeConfig& serve_config, int workers,
    bool measure_recall) {
  return MeasureOpenLoop(algo, queries, params, serve_config,
                         MakeSimConfig(workers), measure_recall);
}

OpenLoopResult BenchDriver::MeasureOpenLoop(
    const topk::Algorithm& algo, std::span<const corpus::Query> queries,
    const topk::SearchParams& params,
    const serve::ServeConfig& serve_config, const sim::SimConfig& config,
    bool measure_recall) {
  SPARTA_CHECK_MSG(!queries.empty(),
                   "MeasureOpenLoop needs a non-empty query span");
  sim::SimExecutor executor(config);
  executor.page_cache().Reset();

  serve::Server server(dataset_.index(), algo, serve_config);
  OpenLoopResult result;
  result.serve = server.ServeOnSim(executor, queries, params);

  for (const serve::ServedQuery& q : result.serve.queries) {
    if (q.outcome == topk::AdmissionOutcome::kAdmitted &&
        q.completion >= 0) {
      topk::ValidateQueryStats(q.result.stats, "MeasureOpenLoop");
    }
  }

  if (measure_recall) {
    double recall_sum = 0.0;
    std::size_t recall_n = 0;
    for (const serve::ServedQuery& q : result.serve.queries) {
      if (q.outcome != topk::AdmissionOutcome::kAdmitted ||
          q.completion < 0 ||
          q.result.status == topk::ResultStatus::kOom) {
        continue;
      }
      recall_sum += topk::Recall(Oracle(queries[q.query_index], params.k),
                                 q.result.entries);
      ++recall_n;
    }
    result.mean_recall =
        recall_n > 0 ? recall_sum / static_cast<double>(recall_n) : 0.0;
  }
  return result;
}

TraceReport TraceSingleQuery(const index::InvertedIndex& index,
                             const topk::Algorithm& algo,
                             const corpus::Query& query,
                             const topk::SearchParams& params,
                             sim::SimConfig config) {
  config.trace.enabled = true;
  sim::SimExecutor executor(config);
  executor.page_cache().Reset();

  topk::SearchParams traced_params = params;
  traced_params.trace.enabled = true;

  auto ctx = executor.CreateQuery();
  TraceReport report;
  report.result = algo.Run(index, query, traced_params, *ctx);
  topk::ValidateQueryStats(report.result.stats, "TraceSingleQuery");
  report.latency = ctx->end_time() - ctx->start_time();

  const obs::Tracer* tracer = executor.tracer();
  SPARTA_CHECK(tracer != nullptr);
  report.json = obs::ExportChromeTrace(*tracer);
  report.attribution = obs::ComputeAttribution(*tracer);
  return report;
}

Table AttributionTable(const TraceReport& report) {
  Table table("where the time goes",
              {"span", "count", "total_ms", "self_ms", "self_share"});
  for (const obs::AttributionRow& row : report.attribution) {
    const double share =
        report.latency > 0
            ? static_cast<double>(row.self) /
                  static_cast<double>(report.latency)
            : 0.0;
    table.AddRow({obs::SpanKindName(row.kind),
                  std::to_string(row.count), FormatMs(row.total),
                  FormatMs(row.self), FormatPct(share)});
  }
  return table;
}

TraceReport BenchDriver::TraceQuery(const topk::Algorithm& algo,
                                    const corpus::Query& query,
                                    const topk::SearchParams& params,
                                    int workers) {
  return TraceSingleQuery(dataset_.index(), algo, query, params,
                          MakeSimConfig(workers));
}

ProfileResult BenchDriver::ProfileLatency(
    const topk::Algorithm& algo, std::span<const corpus::Query> queries,
    const topk::SearchParams& params, sim::SimConfig config,
    bool measure_recall) {
  SPARTA_CHECK_MSG(config.profile.enabled(),
                   "ProfileLatency needs config.profile enabled");
  sim::SimExecutor executor(config);
  executor.page_cache().Reset();

  topk::SearchParams profiled_params = params;
  profiled_params.trace.enabled = true;

  ProfileResult result;
  result.latency = RunLatencyLoop(executor, algo, queries,
                                  profiled_params, measure_recall);

  const obs::Profiler* profiler = executor.profiler();
  SPARTA_CHECK(profiler != nullptr);
  result.contention = profiler->ContentionSnapshot();
  result.folded = obs::ExportFolded(*profiler);
  result.self_times = obs::SelfTimeTable(*profiler);
  return result;
}

std::string RenderProfileReport(const ProfileResult& result,
                                const std::string& title) {
  std::string out = obs::RenderContentionReport(result.contention, title);
  if (!result.self_times.empty()) {
    out += "\n";
    out += obs::RenderSelfTimeTable(result.self_times);
  }
  return out;
}

std::string RenderPostmortem(const obs::Postmortem& pm) {
  std::string out = "postmortem #" + std::to_string(pm.ordinal) + ": ";
  out += obs::AnomalyKindName(pm.kind);
  out += " at " + FormatMs(pm.at) + " ms (a=" + std::to_string(pm.a) +
         " b=" + std::to_string(pm.b) + ")\n";
  if (!pm.state.empty()) {
    out += "state:\n";
    for (const std::string& line : pm.state) {
      out += "  " + line + "\n";
    }
  }
  if (!pm.metrics.counters.empty() || !pm.metrics.gauges.empty()) {
    out += "metrics:\n";
    for (const auto& [name, v] : pm.metrics.counters) {
      out += "  " + name + " = " + std::to_string(v) + "\n";
    }
    for (const auto& [name, v] : pm.metrics.gauges) {
      out += "  " + name + " = " + std::to_string(v) + "\n";
    }
  }
  for (std::size_t t = 0; t < pm.tracks.size(); ++t) {
    const std::vector<obs::TraceEvent>& events = pm.tracks[t];
    if (events.empty()) continue;
    out += "track " + std::to_string(t) + " ring tail (" +
           std::to_string(events.size()) + " events):\n";
    for (const obs::TraceEvent& e : events) {
      if (e.is_instant) {
        out += "  [" + FormatMs(e.begin) + " ms] ";
        out += obs::InstantKindName(e.instant_kind());
      } else {
        out += "  [" + FormatMs(e.begin) + " +" +
               FormatMs(e.end - e.begin) + " ms] ";
        out += obs::SpanKindName(e.span_kind());
      }
      out += " a=" + std::to_string(e.a) + " b=" + std::to_string(e.b) +
             "\n";
    }
  }
  return out;
}

std::vector<obs::CriticalPath> ComputeClusterCriticalPaths(
    const obs::Tracer& tracer, const serve::ClusterServeResult& run) {
  std::vector<obs::CriticalPath> paths;
  for (std::size_t record = 0; record < run.queries.size(); ++record) {
    const serve::ServedQuery& q = run.queries[record];
    if (q.dispatch < 0 || q.completion < 0) continue;
    paths.push_back(obs::AttributeQuery(tracer, record, q.arrival,
                                        q.dispatch, q.completion));
  }
  return paths;
}

Table CriticalPathTable(const std::vector<obs::CriticalPath>& paths,
                        const serve::ClusterServeResult& run) {
  Table table("critical path",
              {"query", "shard", "node", "attempt", "queue_ms",
               "retry_ms", "net_req_ms", "service_ms", "net_resp_ms",
               "merge_ms", "e2e_ms"});
  for (const obs::CriticalPath& p : paths) {
    if (!p.found) continue;
    const serve::ServedQuery& q = run.queries[p.record];
    table.AddRow({std::to_string(p.record),
                  p.shard >= 0 ? std::to_string(p.shard) : "?",
                  p.node >= 0 ? std::to_string(p.node) : "?",
                  p.timeout_bound ? "timeout"
                                  : std::to_string(p.attempt),
                  FormatMs(p.queue_wait), FormatMs(p.retry_overhead),
                  FormatMs(p.net_request), FormatMs(p.service),
                  FormatMs(p.net_response), FormatMs(p.merge),
                  FormatMs(q.EndToEnd())});
  }
  return table;
}

}  // namespace sparta::driver

// Machine-readable benchmark output: results/BENCH_<name>.json.
//
// Each bench collects per-config metric scalars (mean/p50/p99 virtual
// milliseconds, postings scanned, recall, contention aggregates) and
// writes one JSON document alongside its CSVs. The committed files are
// the perf baseline that tools/bench_compare.py gates CI against, so the
// serialization is deterministic: configs and metrics sorted by name,
// fixed "%.9g" number formatting.
#pragma once

#include <map>
#include <string>

#include "driver/bench_driver.h"

namespace sparta::driver {

class BenchJson {
 public:
  explicit BenchJson(std::string name) : name_(std::move(name)) {}

  /// Records one metric scalar under a config (e.g. "Sparta/w8").
  void Set(const std::string& config, const std::string& metric,
           double value);

  /// Records the standard latency metrics of one measured config:
  /// mean/p50/p99 virtual ms, postings scanned, recall.
  void SetLatency(const std::string& config, const LatencyResult& result);

  std::string ToJson() const;

  /// Writes <dir>/BENCH_<name>.json (creating dir). Returns false on
  /// I/O failure.
  bool Write(const std::string& dir) const;

  const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::map<std::string, std::map<std::string, double>> configs_;
};

}  // namespace sparta::driver

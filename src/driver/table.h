// Fixed-width table printing and CSV export for the benchmark binaries.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "exec/context.h"

namespace sparta::driver {

class Table {
 public:
  Table(std::string title, std::vector<std::string> columns);

  void AddRow(std::vector<std::string> cells);

  /// Aligned human-readable rendering.
  void Print(std::ostream& os) const;

  /// Writes "<dir>/<slug(title)>.csv". Returns false on I/O error.
  bool WriteCsv(const std::string& dir) const;

  const std::string& title() const { return title_; }

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// "123.4" from virtual nanoseconds, in milliseconds.
std::string FormatMs(exec::VirtualTime ns);
/// "97.5%" from a [0,1] fraction.
std::string FormatPct(double fraction);
/// Fixed-precision double.
std::string FormatF(double v, int precision = 2);

}  // namespace sparta::driver

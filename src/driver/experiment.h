// Shared experiment configuration: the paper's approximate variants and
// the recall-dynamics instrumentation (§5.3).
#pragma once

#include <string>
#include <vector>

#include "driver/bench_driver.h"
#include "topk/params.h"

namespace sparta::driver {

/// A named (algorithm, parameter) instance, e.g. "pBMW-high".
struct AlgoVariant {
  std::string algorithm;  ///< registry name
  std::string label;      ///< display label ("Sparta-high")
  topk::SearchParams params;
};

/// Result-set size used throughout the scaled experiments (the paper
/// uses k = 1000 on the 500x larger corpora and reports k = 100 as
/// qualitatively similar; see EXPERIMENTS.md).
int DefaultK();

/// Number of workers used for a query of `terms` terms (the paper gives
/// each query as many workers as terms, capped at the machine size).
int WorkersFor(int terms);

/// The paper's fixed machine size.
inline constexpr int kMachineWorkers = 12;

/// Δ for the TA-family approximate variants (10 ms, §5.3.2).
exec::VirtualTime DefaultDelta();

/// The exact variants of the §5 comparison set (Table 2).
std::vector<AlgoVariant> ExactVariants();

/// High-recall approximate variants (Figs. 3a-3c, Tables 3-4):
/// Δ = 10 ms for Sparta/pRA/pNRA/sNRA, f = 5 for pBMW, p = 0.02 for
/// pJASS.
std::vector<AlgoVariant> HighRecallVariants();

/// Low-recall variants (Figs. 3d-3e): pBMW f = 10, pJASS p = 0.005.
std::vector<AlgoVariant> LowRecallVariants();

/// True when SPARTA_QUICK is set: benches shrink query counts for smoke
/// runs.
bool QuickMode();

/// Applies quick-mode reduction to a query count.
std::size_t QueryBudget(std::size_t full);

// --- recall dynamics (Figs. 3f-3g) -------------------------------------

/// Records every heap update with its virtual timestamp.
class TraceRecorder final : public topk::HeapTracer {
 public:
  struct Event {
    exec::VirtualTime time;
    DocId doc;
    Score score;
  };

  void OnHeapUpdate(exec::VirtualTime time, DocId doc,
                    Score score) override {
    events_.push_back({time, doc, score});
  }

  const std::vector<Event>& events() const { return events_; }
  void Clear() { events_.clear(); }

 private:
  std::vector<Event> events_;
};

/// Replays a trace: recall of the (reconstructed) heap contents at each
/// sample time, relative to the query's start time.
std::vector<double> RecallOverTime(const TraceRecorder& trace,
                                   exec::VirtualTime query_start,
                                   const topk::ExactTopK& exact,
                                   std::span<const exec::VirtualTime>
                                       sample_offsets);

}  // namespace sparta::driver

#include "driver/experiment.h"

#include <algorithm>
#include <cstdlib>
#include <map>

#include "topk/doc_heap.h"

namespace sparta::driver {

int DefaultK() { return 100; }

int WorkersFor(int terms) { return std::min(terms, kMachineWorkers); }

exec::VirtualTime DefaultDelta() {
  // The paper's Δ = 10 ms guards the completeness of a k = 1000 result.
  // We apply the paper's own calibration procedure — the approximate
  // "high" variants must empirically reach ~96%+ recall (§5.3) — which
  // on the scaled corpora lands at Δ = 2 ms; see bench_table3 and
  // EXPERIMENTS.md ("calibration").
  return 2 * exec::kMillisecond;
}

namespace {

topk::SearchParams BaseParams() {
  topk::SearchParams params;
  params.k = DefaultK();
  // The paper's Φ = 10K entries is "small enough to fit in local
  // caches" on its machine. Scaled like the cache hierarchy (DESIGN.md
  // §3a): with ~1.5 MB of simulated LLC, m termMap replicas of Φ
  // entries fit caches — and stay well under the scaled memory budget —
  // at Φ = 1000. (The ablation bench sweeps Φ and shows latency is flat
  // in it at this scale.)
  params.phi = 1000;
  return params;
}

AlgoVariant Variant(std::string algorithm, std::string suffix,
                    topk::SearchParams params) {
  AlgoVariant v;
  v.label = algorithm + std::move(suffix);
  v.algorithm = std::move(algorithm);
  v.params = params;
  return v;
}

}  // namespace

std::vector<AlgoVariant> ExactVariants() {
  const auto base = BaseParams();
  std::vector<AlgoVariant> out;
  for (const char* name :
       {"Sparta", "pNRA", "sNRA", "pRA", "pBMW", "pJASS"}) {
    out.push_back(Variant(name, "-exact", base));
  }
  return out;
}

std::vector<AlgoVariant> HighRecallVariants() {
  std::vector<AlgoVariant> out;
  auto delta = BaseParams();
  delta.delta = DefaultDelta();
  for (const char* name : {"Sparta", "pNRA", "sNRA", "pRA"}) {
    out.push_back(Variant(name, "-high", delta));
  }
  // pBMW's f = 5 was the paper's empirical high-recall point; the same
  // >= 96% calibration procedure lands at f = 2 on our corpora.
  auto bmw = BaseParams();
  bmw.f = 2.0;
  out.push_back(Variant("pBMW", "-high", bmw));
  // The paper instantiates pJASS with p = 0.02 for high recall on
  // ClueWeb; p does not control recall directly ("our high recall
  // instances are ones that empirically achieve a recall of 96% or
  // higher", §5.3) and our synthetic impact lists are flatter than
  // ClueWeb's, so the same calibration procedure lands at a larger p.
  auto jass = BaseParams();
  jass.p = 0.75;
  out.push_back(Variant("pJASS", "-high", jass));
  return out;
}

std::vector<AlgoVariant> LowRecallVariants() {
  std::vector<AlgoVariant> out;
  auto bmw = BaseParams();
  bmw.f = 10.0;
  out.push_back(Variant("pBMW", "-low", bmw));
  // Low-recall pJASS: same calibration note as the high variant (the
  // paper's p = 0.005 maps to a larger fraction on our flatter lists).
  auto jass = BaseParams();
  jass.p = 0.4;
  out.push_back(Variant("pJASS", "-low", jass));
  return out;
}

bool QuickMode() { return std::getenv("SPARTA_QUICK") != nullptr; }

std::size_t QueryBudget(std::size_t full) {
  if (!QuickMode()) return full;
  return std::max<std::size_t>(2, full / 10);
}

std::vector<double> RecallOverTime(
    const TraceRecorder& trace, exec::VirtualTime query_start,
    const topk::ExactTopK& exact,
    std::span<const exec::VirtualTime> sample_offsets) {
  // Events are appended in real execution order, whose virtual
  // timestamps are only approximately monotone; sort by time.
  auto events = trace.events();
  std::sort(events.begin(), events.end(),
            [](const TraceRecorder::Event& a, const TraceRecorder::Event& b) {
              return a.time < b.time;
            });

  std::vector<double> recalls;
  recalls.reserve(sample_offsets.size());
  const int k = static_cast<int>(exact.topk.size());
  if (k == 0) {
    recalls.assign(sample_offsets.size(), 1.0);
    return recalls;
  }

  // Reconstruct the heap at each sample: best-score-so-far per doc,
  // top-k by score. Ordered map so the rebuild below inserts in doc-id
  // order — the reported curves must not depend on hash iteration
  // order (sparta_lint's unordered-iter invariant).
  std::map<DocId, Score> best;
  topk::TopKHeap heap(k);
  std::size_t next_event = 0;
  for (const auto offset : sample_offsets) {
    const exec::VirtualTime cutoff = query_start + offset;
    for (; next_event < events.size() && events[next_event].time <= cutoff;
         ++next_event) {
      const auto& e = events[next_event];
      auto& slot = best[e.doc];
      if (e.score > slot) slot = e.score;
    }
    // Rebuild the heap from scratch only if something changed; the map
    // is small (bounded by distinct traced docs).
    heap = topk::TopKHeap(k);
    for (const auto& [doc, score] : best) heap.Insert({score, doc});
    recalls.push_back(topk::Recall(exact, heap.Extract()));
  }
  return recalls;
}

}  // namespace sparta::driver

// Benchmark driver: the measurement harness of §5.1.
//
// "A benchmark driver draws queries from an input queue and submits them
//  to the algorithm being tested, which uses a thread pool for
//  intra-query parallelism. ... When testing latency, the entire thread
//  pool is used by a single query. In the throughput evaluation mode,
//  queries are scheduled first-come-first-served, and a new query is
//  scheduled for execution once there are idle threads."
//
// All measurements run on the simulated machine (sim::SimExecutor) so
// that 12-core results are reproducible on any host; the page cache is
// flushed at the start of every experiment, as in the paper.
#pragma once

#include <map>
#include <memory>
#include <span>

#include "corpus/datasets.h"
#include "driver/table.h"
#include "obs/critical_path.h"
#include "obs/flame_export.h"
#include "obs/flight_recorder.h"
#include "obs/profiler.h"
#include "obs/trace_export.h"
#include "serve/coordinator.h"
#include "serve/server.h"
#include "sim/sim_executor.h"
#include "topk/algorithm.h"
#include "topk/oracle.h"
#include "topk/recall.h"
#include "util/histogram.h"

namespace sparta::driver {

struct LatencyResult {
  util::Histogram latency_ns;
  std::size_t queries = 0;
  std::size_t oom = 0;       ///< ResultStatus::kOom
  std::size_t degraded = 0;  ///< deadline- or fault-degraded (anytime)
  double mean_recall = 0.0;  ///< over non-OOM queries, degraded included
  double mean_oom_recall = 0.0;  ///< achieved recall of the kOom queries
  std::uint64_t postings = 0;
  std::uint64_t io_retries = 0;
  std::uint64_t faults_injected = 0;
  double mean_postings_fraction = 0.0;  ///< over non-OOM queries

  double MeanMs() const {
    return latency_ns.empty() ? 0.0 : latency_ns.Mean() / 1e6;
  }
  double P95Ms() const {
    return latency_ns.empty()
               ? 0.0
               : static_cast<double>(latency_ns.Percentile(95)) / 1e6;
  }
  double P99Ms() const {
    return latency_ns.empty()
               ? 0.0
               : static_cast<double>(latency_ns.Percentile(99)) / 1e6;
  }
  bool AllOom() const { return queries > 0 && oom == queries; }
};

struct ThroughputResult {
  double qps = 0.0;
  std::size_t queries = 0;
  std::size_t oom = 0;
  std::size_t degraded = 0;
  double mean_recall = 0.0;
};

/// One traced query run: the search result plus the exported Chrome
/// trace-event JSON and the per-kind latency-attribution rows.
struct TraceReport {
  topk::SearchResult result;
  exec::VirtualTime latency = 0;  ///< end-to-end virtual time
  std::string json;               ///< Chrome trace-event export
  std::vector<obs::AttributionRow> attribution;
};

/// Runs one query alone on a traced simulator (machine- and
/// algorithm-level spans both enabled) and exports the trace. The cost
/// model in `config` is used as given — pass coherence_miss == l1_hit
/// when byte-identical reruns matter (see obs/trace.h).
TraceReport TraceSingleQuery(const index::InvertedIndex& index,
                             const topk::Algorithm& algo,
                             const corpus::Query& query,
                             const topk::SearchParams& params,
                             sim::SimConfig config);

/// Renders a TraceReport's attribution rows as a "where the time goes"
/// table: per span kind, count, inclusive and exclusive (self) time, and
/// self time as a share of query latency.
Table AttributionTable(const TraceReport& report);

/// One profiled latency run (see obs/profiler.h): the usual latency
/// aggregates plus the contention report (accumulated over all queries),
/// the folded sample stacks, and the per-phase self-time table.
struct ProfileResult {
  LatencyResult latency;
  obs::ContentionReport contention;
  std::string folded;
  std::vector<obs::SelfTimeRow> self_times;
};

/// Renders a ProfileResult's per-structure contention rows plus the
/// per-phase self-time table as one plain-text report (the committed
/// results/contention_*.txt golden format).
std::string RenderProfileReport(const ProfileResult& result,
                                const std::string& title);

/// Renders one flight-recorder capture as a human-readable postmortem:
/// the trigger line, the attached component state, the metrics
/// snapshot, and the frozen ring tail per track. The operator-facing
/// companion to the machine-facing ExportPostmortem JSON.
std::string RenderPostmortem(const obs::Postmortem& pm);

/// Computes the critical-path decomposition of every traced, completed
/// query of a cluster run (obs/critical_path.h), in record order. The
/// cluster must have been built with config.trace.enabled.
std::vector<obs::CriticalPath> ComputeClusterCriticalPaths(
    const obs::Tracer& tracer, const serve::ClusterServeResult& run);

/// Renders critical paths as a where-the-latency-went table: one row
/// per query with queue wait, retry/hedge overhead, request/response
/// network time, shard service time and merge — columns that sum
/// exactly to the measured end-to-end latency.
Table CriticalPathTable(const std::vector<obs::CriticalPath>& paths,
                        const serve::ClusterServeResult& run);

struct OpenLoopResult {
  /// Full per-query and aggregate serving record (see serve/server.h).
  serve::ServeResult serve;
  /// Mean recall over completed non-OOM queries (degraded included) —
  /// the quality the ladder actually delivered under load.
  double mean_recall = 0.0;
};

class BenchDriver {
 public:
  explicit BenchDriver(const corpus::Dataset& dataset);

  const corpus::Dataset& dataset() const { return dataset_; }

  /// Simulated-machine configuration for this dataset with `workers`
  /// worker threads.
  sim::SimConfig MakeSimConfig(int workers) const;

  /// Latency mode: each query runs alone on a fresh page cache per
  /// *experiment* (not per query). `measure_recall` compares against the
  /// (cached) exact oracle.
  LatencyResult MeasureLatency(const topk::Algorithm& algo,
                               std::span<const corpus::Query> queries,
                               const topk::SearchParams& params, int workers,
                               bool measure_recall = true);

  /// Latency mode on an explicit simulator configuration — the entry
  /// point for fault-injection experiments: build a config with
  /// MakeSimConfig() and fill in `config.faults` before calling.
  LatencyResult MeasureLatency(const topk::Algorithm& algo,
                               std::span<const corpus::Query> queries,
                               const topk::SearchParams& params,
                               const sim::SimConfig& config,
                               bool measure_recall = true);

  /// Throughput mode: FCFS admission onto a shared pool of `workers`.
  /// `queries` must be non-empty. The first `warmup` queries (capped at
  /// queries.size() - 1) are run and drained before measurement starts —
  /// they warm the page cache but are excluded from the makespan and
  /// from every reported aggregate.
  ThroughputResult MeasureThroughput(const topk::Algorithm& algo,
                                     std::span<const corpus::Query> queries,
                                     const topk::SearchParams& params,
                                     int workers, std::size_t warmup = 0);

  /// Open-loop serving mode: arrivals come on `serve_config.arrivals`'s
  /// own schedule regardless of machine state, pass through admission
  /// control / the degradation ladder / the circuit breaker, and queue
  /// wait counts toward every query's end-to-end latency. This is the
  /// only mode that can push the machine past saturation.
  OpenLoopResult MeasureOpenLoop(const topk::Algorithm& algo,
                                 std::span<const corpus::Query> queries,
                                 const topk::SearchParams& params,
                                 const serve::ServeConfig& serve_config,
                                 int workers, bool measure_recall = true);

  /// Open-loop mode on an explicit simulator configuration — fill in
  /// `config.faults` to serve through a fault storm (the circuit-breaker
  /// experiments).
  OpenLoopResult MeasureOpenLoop(const topk::Algorithm& algo,
                                 std::span<const corpus::Query> queries,
                                 const topk::SearchParams& params,
                                 const serve::ServeConfig& serve_config,
                                 const sim::SimConfig& config,
                                 bool measure_recall = true);

  /// Traces one query on this dataset's simulated machine (see
  /// TraceSingleQuery).
  TraceReport TraceQuery(const topk::Algorithm& algo,
                         const corpus::Query& query,
                         const topk::SearchParams& params, int workers);

  /// Latency mode on a profiled simulator: `config.profile` must be
  /// enabled. Algorithm-level spans are force-enabled (they are the
  /// profiler's frames; without a tracer they cost a null check each) so
  /// samples and contention events attribute to phases. The cost model
  /// in `config` is used as given — registered-range coherence keys make
  /// the report byte-identical per seed under any cost model; pass
  /// coherence_miss == l1_hit when the latencies must also match
  /// unprofiled runs.
  ProfileResult ProfileLatency(const topk::Algorithm& algo,
                               std::span<const corpus::Query> queries,
                               const topk::SearchParams& params,
                               sim::SimConfig config,
                               bool measure_recall = true);

  /// Ground truth for (query, k), cached across calls.
  const topk::ExactTopK& Oracle(const corpus::Query& query, int k);

 private:
  /// Shared latency-mode measurement loop: runs every query alone on
  /// `executor` and aggregates. The caller owns the executor so it can
  /// inspect observers (tracer, profiler) after the loop.
  LatencyResult RunLatencyLoop(sim::SimExecutor& executor,
                               const topk::Algorithm& algo,
                               std::span<const corpus::Query> queries,
                               const topk::SearchParams& params,
                               bool measure_recall);

  const corpus::Dataset& dataset_;
  std::map<std::string, topk::ExactTopK> oracle_cache_;
};

}  // namespace sparta::driver

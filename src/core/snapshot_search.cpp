#include "core/snapshot_search.h"

#include <algorithm>
#include <utility>

namespace sparta::core {
namespace {

/// Drops terms a segment has never heard of (ids past its term table —
/// possible when queries are drawn against a newer vocabulary than the
/// segment was frozen with). In-vocabulary terms with df == 0 stay: the
/// algorithms handle empty lists.
std::vector<TermId> ClampTerms(const std::vector<TermId>& terms,
                               const index::InvertedIndex& idx) {
  std::vector<TermId> kept;
  kept.reserve(terms.size());
  for (const TermId t : terms) {
    if (t < idx.num_terms()) kept.push_back(t);
  }
  return kept;
}

class SnapshotRun final : public topk::QueryRun {
 public:
  SnapshotRun(std::unique_ptr<topk::QueryRun> main_run,
              std::unique_ptr<topk::QueryRun> delta_run,
              std::uint32_t delta_doc_base, int k)
      : main_(std::move(main_run)),
        delta_(std::move(delta_run)),
        delta_doc_base_(delta_doc_base),
        k_(k) {}

  void Start() override {
    main_->Start();
    if (delta_ != nullptr) delta_->Start();
  }

  topk::SearchResult TakeResult() override {
    topk::SearchResult result = main_->TakeResult();
    if (delta_ == nullptr) return result;
    topk::SearchResult delta_result = delta_->TakeResult();

    // Rebase delta docs into the global id space and merge the top-k
    // candidates; scores are directly comparable (same scorer anchor,
    // preserved bit-for-bit by segment merges).
    for (topk::ResultEntry& entry : delta_result.entries) {
      entry.doc += delta_doc_base_;
      result.entries.push_back(entry);
    }
    topk::CanonicalizeResult(result.entries);
    if (result.entries.size() > static_cast<std::size_t>(k_)) {
      result.entries.resize(static_cast<std::size_t>(k_));
    }

    // Statuses are ordered by severity (kComplete < kDeadlineDegraded <
    // kPartialAfterFault < kOom): the composed query is only as healthy
    // as its sickest segment.
    result.status = std::max(result.status, delta_result.status);

    result.stats.postings_processed += delta_result.stats.postings_processed;
    result.stats.postings_total += delta_result.stats.postings_total;
    result.stats.heap_inserts += delta_result.stats.heap_inserts;
    result.stats.docmap_peak_entries += delta_result.stats.docmap_peak_entries;
    result.stats.random_accesses += delta_result.stats.random_accesses;
    return result;
  }

 private:
  std::unique_ptr<topk::QueryRun> main_;
  std::unique_ptr<topk::QueryRun> delta_;  // null when no delta segment
  std::uint32_t delta_doc_base_;
  int k_;
};

}  // namespace

std::unique_ptr<topk::QueryRun> PrepareSnapshotRun(
    const topk::Algorithm& algo, const index::IndexSnapshot& snap,
    const std::vector<TermId>& terms, const topk::SearchParams& params,
    exec::QueryContext& ctx) {
  SPARTA_CHECK(snap.main != nullptr);
  auto main_run =
      algo.Prepare(*snap.main, ClampTerms(terms, *snap.main), params, ctx);
  std::unique_ptr<topk::QueryRun> delta_run;
  if (snap.delta != nullptr && snap.delta->num_docs() > 0) {
    std::vector<TermId> delta_terms = ClampTerms(terms, *snap.delta);
    if (!delta_terms.empty()) {
      delta_run =
          algo.Prepare(*snap.delta, std::move(delta_terms), params, ctx);
    }
  }
  return std::make_unique<SnapshotRun>(std::move(main_run),
                                       std::move(delta_run),
                                       snap.delta_doc_base, params.k);
}

topk::SearchResult SearchSnapshot(const topk::Algorithm& algo,
                                  const index::IndexSnapshot& snap,
                                  const std::vector<TermId>& terms,
                                  const topk::SearchParams& params,
                                  exec::QueryContext& ctx) {
  auto run = PrepareSnapshotRun(algo, snap, terms, params, ctx);
  if (params.deadline != exec::kNever) {
    ctx.set_deadline(ctx.start_time() + params.deadline);
  }
  run->Start();
  ctx.RunToCompletion();
  topk::SearchResult result = run->TakeResult();
  result.stats.latency = ctx.end_time() - ctx.start_time();
  const exec::FaultStats faults = ctx.fault_stats();
  result.stats.io_retries = faults.io_retries;
  result.stats.faults_injected = faults.injected;
  return result;
}

}  // namespace sparta::core

#include "core/sparta.h"

#include <algorithm>
#include <atomic>
#include <memory>

#include "obs/trace.h"
#include "topk/doc_map.h"
#include "topk/local_accumulator.h"
#include "util/padded.h"
#include "util/racy.h"
#include "util/thread_annotations.h"

namespace sparta::core {
namespace {

using exec::AccessKind;
using exec::VirtualTime;
using exec::WorkerContext;
using index::Posting;
using topk::DocType;
using topk::LocalDocMap;
using topk::SearchParams;
using topk::SearchResult;

/// Virtual CPU cost of refreshing one heap member's lower bound (m adds
/// plus the heap bookkeeping, amortized).
constexpr VirtualTime kHeapRefreshPerDocNs = 3;

/// The docHeap of Algorithm 1: top-k DocTypes ordered by score *lower
/// bound*, with lazy LB refresh — "every thread that adds a document to
/// the heap updates the lower bounds of all heap documents" (§4.3).
/// All methods except theta() must be called under the owner's heap lock.
class LbHeap {
 public:
  explicit LbHeap(int k) : k_(static_cast<std::size_t>(k)) {
    docs_.reserve(k_);
  }

  Score theta() const { return theta_.load(std::memory_order_relaxed); }

  /// Lock-free peek (the cleaner's stopping check); mirrors docs_.size()
  /// which itself only changes under the heap lock.
  std::size_t size() const { return size_.load(std::memory_order_relaxed); }

  /// UPDATE_HEAP lines 28-37. Returns true if membership changed.
  bool Insert(DocType* d, WorkerContext& w) {
    if (d->in_heap.load(std::memory_order_relaxed)) return false;
    // Lazy LB refresh of every member (lines 30-32).
    w.Charge(static_cast<VirtualTime>(docs_.size() + 1) *
             kHeapRefreshPerDocNs);
    for (DocType* member : docs_) {
      member->lb.store(member->SumScores(), std::memory_order_relaxed);
    }
    d->lb.store(d->SumScores(), std::memory_order_relaxed);

    // Insert, then evict the lowest if above capacity (lines 29, 33-34).
    d->in_heap.store(true, std::memory_order_relaxed);
    docs_.push_back(d);
    bool changed = true;
    if (docs_.size() > k_) {
      const auto lowest = LowestMember();
      DocType* evicted = docs_[lowest];
      evicted->in_heap.store(false, std::memory_order_relaxed);
      docs_[lowest] = docs_.back();
      docs_.pop_back();
      changed = (evicted != d);
    }
    if (docs_.size() == k_) {
      theta_.store(docs_[LowestMember()]->lb.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
    }
    size_.store(docs_.size(), std::memory_order_relaxed);
    return changed;
  }

  const std::vector<DocType*>& docs() const { return docs_; }

 private:
  std::size_t LowestMember() const {
    SPARTA_CHECK(!docs_.empty());
    std::size_t lowest = 0;
    for (std::size_t i = 1; i < docs_.size(); ++i) {
      const Score li = docs_[i]->lb.load(std::memory_order_relaxed);
      const Score ll = docs_[lowest]->lb.load(std::memory_order_relaxed);
      // Deterministic tie-breaking: larger doc id is "worse".
      if (li < ll || (li == ll && docs_[i]->id() > docs_[lowest]->id())) {
        lowest = i;
      }
    }
    return lowest;
  }

  std::size_t k_;
  std::vector<DocType*> docs_;  // unordered; Θ recomputed on demand
  std::atomic<std::size_t> size_{0};
  std::atomic<Score> theta_{0};
};

class SpartaRun final : public topk::QueryRun {
 public:
  SpartaRun(const index::InvertedIndex& idx, std::vector<TermId> terms,
            const SearchParams& params, exec::QueryContext& ctx,
            const SpartaOptions& options)
      : idx_(idx),
        terms_(std::move(terms)),
        params_(params),
        ctx_(ctx),
        options_(options),
        m_(terms_.size()),
        ub_(m_),
        heap_(params.k),
        heap_lock_(ctx.MakeLock()),
        doc_map_(ctx, static_cast<int>(m_)),
        positions_(m_, 0),
        term_maps_(m_),
        heap_upd_time_(static_cast<std::size_t>(ctx.numa_domains())) {
    SPARTA_CHECK(m_ >= 1);
    for (std::size_t i = 0; i < m_; ++i) {
      const auto view = idx_.Term(terms_[i]);
      // UB starts at the term's max score — the tightest bound available
      // before any traversal (the paper's "init ∞" weakened by index
      // statistics, which only speeds up UBStop without affecting
      // safety).
      ub_[i].store(static_cast<Score>(view.max_score),
                   std::memory_order_relaxed);
    }
    // Deliberate lock-free synchronization — lazy UB reads (§4.3), the
    // done flag, the Δ-stopping timestamp. The Racy<> declarations above
    // exempt these fields from the static lock discipline; registering
    // them here makes the runtime detector count, not report, races on
    // the same storage (DESIGN.md §6/§11 — one declaration drives both).
    ub_.RegisterBenign(ctx, "sparta.UB");
    done_.RegisterBenign(ctx, "sparta.done");
    // The Δ-stopping timestamp is sharded per NUMA domain (one padded
    // word each, DESIGN.md §14): writers touch their own domain's word,
    // the Δ check folds the max. One domain = one word = the original
    // layout bit-for-bit.
    for (auto& shard : heap_upd_time_) {
      shard->store(ctx.start_time(), std::memory_order_relaxed);
      shard.get().RegisterBenign(ctx, "sparta.updTime");
      ctx.RegisterContentionRange(&shard, sizeof(shard), "heap.updTime");
    }
    // Contention-profiler registry: the shared hot state whose coherence
    // misses and lock waits the paper's optimizations target (the docMap
    // stripes register themselves). Structure names are shared with the
    // TA/RA baselines so reports compare side by side.
    ctx.RegisterContentionRange(ub_.data(), m_ * sizeof(ub_[0]), "UB");
    ctx.RegisterContentionRange(&done_, sizeof(done_), "done.flag");
    ctx.RegisterContentionRange(heap_lock_.get(), 1, "heap.lock");
    if (options_.private_accumulators) {
      accumulators_.reserve(static_cast<std::size_t>(ctx.num_workers()));
      for (int w = 0; w < ctx.num_workers(); ++w) {
        accumulators_.emplace_back(topk::AccumulatorMode::kStore,
                                   static_cast<int>(m_));
      }
    }
  }

  void Start() override {
    // Lines 1-3: one PROCESSTERM job per query term.
    for (std::size_t i = 0; i < m_; ++i) {
      ctx_.Submit([this, i](WorkerContext& w) { ProcessTerm(i, w); });
    }
  }

  // TSA-exempt: harvests heap_ without heap_lock_ — valid only after the
  // executor drained every job, when no worker can still be inserting.
  SearchResult TakeResult() override SPARTA_NO_THREAD_SAFETY_ANALYSIS {
    SearchResult result;
    // Anytime semantics: the heap is harvested on every path — a query
    // that ran out of time, hit an escalated fault, or OOMed returns its
    // best-so-far top-k instead of discarding the work.
    if (oom_.load()) {
      result.status = topk::ResultStatus::kOom;
    } else {
      result.status = topk::StatusFromStopCause(
          stop_cause_.load(std::memory_order_acquire));
    }
    const auto& docs = heap_.docs();
    result.entries.reserve(docs.size());
    for (DocType* d : docs) {
      result.entries.push_back({d->id(), d->SumScores()});
    }
    topk::CanonicalizeResult(result.entries);
    result.stats.postings_processed = postings_.load();
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < m_; ++i) {
      total += idx_.Term(terms_[i]).impact_order.size();
    }
    result.stats.postings_total = total;
    result.stats.heap_inserts = heap_inserts_.load();
    result.stats.docmap_peak_entries = doc_map_.PeakSize();
    return result;
  }

 private:
  // --- shared-state helpers -------------------------------------------

  bool Done(WorkerContext& w) const {
    w.SharedAccess(&done_, AccessKind::kRead);
    return done_.load(std::memory_order_acquire);
  }

  void SetDone() { done_.store(true, std::memory_order_release); }

  /// Lock-free Θ / heap-size peeks (UBStop, line 23's pre-check, the
  /// cleaner's stopping scans). TSA-exempt: heap_ is guarded by
  /// heap_lock_, but these reads deliberately skip it — LbHeap publishes
  /// both values through atomics, and stale reads are safe (a stale Θ
  /// only admits extra candidates; a stale size only delays a stop by
  /// one cleaner pass).
  Score Theta() const SPARTA_NO_THREAD_SAFETY_ANALYSIS {
    return heap_.theta();
  }
  std::size_t HeapSize() const SPARTA_NO_THREAD_SAFETY_ANALYSIS {
    return heap_.size();
  }

  /// Σ UB[i] ≤ Θ (Eq. 1), latched monotone: UB entries only decrease and
  /// Θ only increases. The latch freezes the shared map first, so any
  /// worker that observes ubstop_ (acquire) also observes the freeze.
  bool UbStop(WorkerContext& w) {
    if (ubstop_.load(std::memory_order_acquire)) return true;
    Score sum = 0;
    for (std::size_t i = 0; i < m_; ++i) {
      w.SharedAccess(&ub_[i], AccessKind::kRead);
      sum += ub_[i].load(std::memory_order_relaxed);
    }
    // Probabilistic variant (§6 future work): untraversed documents
    // rarely realize the worst-case bound on every term at once.
    sum = static_cast<Score>(static_cast<double>(sum) *
                             options_.prob_factor);
    if (sum <= Theta()) {
      if (options_.insert_cutoff_at_ubstop) doc_map_.Freeze(w);
      ubstop_.store(true, std::memory_order_release);
      return true;
    }
    return false;
  }

  /// Entries of the current docMap view (cleaner snapshot if installed).
  std::size_t DocMapSize() const {
    const LocalDocMap* snap = snapshot_.load(std::memory_order_acquire);
    return snap != nullptr ? snap->Size() : doc_map_.Size();
  }

  DocType* LookupShared(DocId doc, WorkerContext& w) {
    const LocalDocMap* snap = snapshot_.load(std::memory_order_acquire);
    return snap != nullptr ? snap->Find(doc, w) : doc_map_.Find(doc, w);
  }

  void AbortOom() {
    oom_.store(true, std::memory_order_release);
    SetDone();
  }

  /// Anytime poll point, checked at job boundaries. When the deadline
  /// has passed or a fault escalated, records the cause and latches the
  /// done flag so every in-flight job winds down; the current-best heap
  /// becomes the result.
  bool PollStop(WorkerContext& w) {
    if (!w.ShouldStop()) return false;
    exec::StopCause prev = stop_cause_.load(std::memory_order_relaxed);
    const exec::StopCause cause = w.stop_cause();
    while (exec::MergeStopCause(prev, cause) != prev &&
           !stop_cause_.compare_exchange_weak(
               prev, exec::MergeStopCause(prev, cause),
               std::memory_order_acq_rel)) {
    }
    SetDone();
    return true;
  }

  /// Records a heap change for Δ-stopping: each writer touches its own
  /// NUMA domain's padded timestamp word.
  void TouchHeapUpdTime(WorkerContext& w) {
    auto& shard = heap_upd_time_[static_cast<std::size_t>(w.numa_domain())];
    shard->store(w.Now(), std::memory_order_relaxed);
    w.SharedAccess(&shard, AccessKind::kWrite);
  }

  /// Most recent heap change across all domains (the Δ-stopping read).
  VirtualTime LastHeapUpdTime() const {
    VirtualTime latest = 0;
    for (const auto& shard : heap_upd_time_) {
      latest = std::max(latest, shard->load(std::memory_order_relaxed));
    }
    return latest;
  }

  /// UB(D) with unknown-term contributions scaled by the probabilistic
  /// factor (= the paper's safe bound when prob_factor == 1).
  Score ProbUpperBound(const DocType* d) const {
    Score known = 0, unknown = 0;
    for (std::size_t i = 0; i < m_; ++i) {
      const Score s = d->score[i].load(std::memory_order_relaxed);
      if (s > 0) {
        known += s;
      } else {
        unknown += ub_[i].load(std::memory_order_relaxed);
      }
    }
    return known + static_cast<Score>(static_cast<double>(unknown) *
                                      options_.prob_factor);
  }

  // --- PROCESSTERM (lines 8-25) ---------------------------------------

  void ProcessTerm(std::size_t i, WorkerContext& w) {
    if (Done(w) || PollStop(w)) return;
    const auto view = idx_.Term(terms_[i]);
    const auto list = view.impact_order;

    // Lines 9-12: adopt a thread-local termMap once the shared map is
    // frozen, shrinking, and small enough to fit a private cache.
    if (options_.term_maps && term_maps_[i] == nullptr &&
        ubstop_.load(std::memory_order_acquire) &&
        DocMapSize() < params_.phi) {
      BuildTermMap(i, w);
    }

    const std::size_t begin = positions_[i];
    const std::size_t end =
        std::min<std::size_t>(begin + params_.seg_size, list.size());
    if (begin >= end) return;  // list exhausted
    // Segment scan span: covers the I/O, the posting loop and the
    // per-posting CPU charge; payload b carries `processed` so traces
    // reconcile exactly with QueryStats::postings_processed.
    obs::SpanScope scan_span(w, obs::SpanKind::kPostingsScan,
                             params_.trace.enabled);
    w.IoSequential(view.impact_order_file_offset + begin * sizeof(Posting),
                   (end - begin) * sizeof(Posting));

    Score last_score = ub_[i].load(std::memory_order_relaxed);
    std::size_t processed = 0;
    for (std::size_t j = begin; j < end; ++j) {
      if (done_.load(std::memory_order_acquire)) break;  // line 14
      const Posting posting = list[j];
      last_score = static_cast<Score>(posting.score);
      ++processed;

      DocType* d = nullptr;
      if (term_maps_[i] != nullptr) {
        d = term_maps_[i]->Find(posting.doc, w);
      } else if (!options_.insert_cutoff_at_ubstop ||
                 !ubstop_.load(std::memory_order_acquire)) {
        if (options_.private_accumulators) {
          // Controlled sharing (DESIGN.md §14): buffer the write
          // privately; the shared map is touched once per stripe at the
          // segment-end merge instead of once per posting.
          if (!accumulators_[static_cast<std::size_t>(w.worker_id())].Add(
                  posting.doc, static_cast<std::int32_t>(i),
                  static_cast<Score>(posting.score), w)) {
            // Keep what fits — honest kOom partial.
            (void)MergeAccumulator(w);
            return AbortOom();
          }
          continue;  // score store + heap check happen at the merge
        }
        // Lines 17-20 (and the pNRA configuration, which keeps inserting
        // for the whole run). GetOrCreate refuses inserts if the freeze
        // raced ahead of us, which is exactly line 21's "continue".
        auto res = doc_map_.GetOrCreate(posting.doc, w);
        if (res.oom) return AbortOom();
        d = res.doc;
      } else {
        d = LookupShared(posting.doc, w);  // hash complete (line 18)
      }
      if (d == nullptr) continue;  // line 21: cannot be a top-k candidate

      d->score[i].store(static_cast<Score>(posting.score),
                        std::memory_order_relaxed);  // line 22
      if (d->SumScores() > Theta()) UpdateHeap(d, w);  // line 23

      if (!options_.lazy_ub_updates) {
        // pNRA configuration: publish UB on every evaluation.
        ub_[i].store(last_score, std::memory_order_relaxed);
        w.SharedAccess(&ub_[i], AccessKind::kWrite);
      }
    }
    positions_[i] = begin + processed;
    postings_.fetch_add(processed, std::memory_order_relaxed);
    w.ChargePostings(processed);
    scan_span.set_args(terms_[i], processed);

    // Phase boundary: drain the private buffer into the shared map
    // *before* publishing this segment's UB. During the segment UB[i]
    // still holds the previous segment's (larger) bound, so every
    // buffered score is ≤ its term's published UB — which keeps the
    // insert-cutoff drop-safety argument intact for docs whose merge
    // races the freeze (DESIGN.md §14).
    if (options_.private_accumulators && !MergeAccumulator(w)) {
      return AbortOom();
    }

    if (options_.lazy_ub_updates) {
      // Line 24: one UB publication per segment.
      ub_[i].store(last_score, std::memory_order_relaxed);
      w.SharedAccess(&ub_[i], AccessKind::kWrite);
    }
    if (positions_[i] >= list.size()) {
      // List exhausted: nothing untraversed remains for this term.
      ub_[i].store(0, std::memory_order_relaxed);
      w.SharedAccess(&ub_[i], AccessKind::kWrite);
      exhausted_terms_.fetch_add(1, std::memory_order_acq_rel);
    }

    // Lines 4-5 folded into the workers: the first one to observe UBStop
    // launches the cleaner (UbStop itself freezes the map).
    if (UbStop(w) && !cleaner_started_.exchange(true)) {
      ctx_.Submit([this](WorkerContext& cw) { Cleaner(cw); });
    }

    if (!done_.load(std::memory_order_acquire) && !PollStop(w) &&
        positions_[i] < list.size()) {
      ctx_.Submit([this, i](WorkerContext& cw) { ProcessTerm(i, cw); });
    }
  }

  /// Merges this worker's private accumulator into the shared docMap in
  /// stripe-homogeneous batches, then runs the deferred heap checks.
  /// Returns false when the merge ran out of memory budget (everything
  /// applied so far stays — the caller aborts with an honest kOom).
  [[nodiscard]] bool MergeAccumulator(WorkerContext& w) {
    auto& acc = accumulators_[static_cast<std::size_t>(w.worker_id())];
    if (acc.Empty()) return true;
    // Heap candidates are collected under the stripe lock but inserted
    // after the merge: UpdateHeap takes the heap lock, and holding
    // stripe→heap would couple the two hot locks' wait times.
    std::vector<DocType*> candidates;
    const auto stats = acc.MergeInto(
        doc_map_, w,
        [&](std::span<const topk::PendingScore> group, DocType* d,
            bool /*inserted*/, Score /*folded*/) {
          for (const topk::PendingScore& p : group) {
            // Line 22, deferred: the slot store is idempotent and the
            // accumulator kept the latest value per (doc, term).
            d->score[static_cast<std::size_t>(p.term)].store(
                p.score, std::memory_order_relaxed);
          }
          if (d->SumScores() > Theta()) candidates.push_back(d);
        });
    for (DocType* d : candidates) {
      // Line 23, deferred; Θ may have grown since collection.
      if (d->SumScores() > Theta()) UpdateHeap(d, w);
    }
    return !stats.oom;
  }

  void BuildTermMap(std::size_t i, WorkerContext& w) {
    obs::SpanScope span(w, obs::SpanKind::kTermMapBuild,
                        params_.trace.enabled);
    auto map = std::make_unique<LocalDocMap>(static_cast<int>(m_));
    bool ok = true;
    auto copy_missing = [&](DocType* d) {
      if (!ok) return;
      // Only documents still missing term i's score can appear in the
      // untraversed part of list i (lines 11-12).
      if (d->score[i].load(std::memory_order_relaxed) == 0) {
        ok = map->Add(d, w);
      }
    };
    const LocalDocMap* snap = snapshot_.load(std::memory_order_acquire);
    if (snap != nullptr) {
      snap->ForEach(copy_missing);
    } else {
      doc_map_.ForEach(copy_missing, w);
    }
    if (!ok) return AbortOom();
    span.set_args(terms_[i], map->Size());
    term_maps_[i] = std::move(map);
  }

  // --- UPDATE_HEAP (lines 26-38) ---------------------------------------

  void UpdateHeap(DocType* d, WorkerContext& w) {
    // Begins before the lock guard so any lock.wait span nests inside.
    obs::SpanScope span(w, obs::SpanKind::kHeapUpdate,
                        params_.trace.enabled);
    span.set_args(d->id());
    const exec::CtxLockGuard guard(*heap_lock_, w);
    if (d->in_heap.load(std::memory_order_relaxed)) return;  // line 28
    const bool changed = heap_.Insert(d, w);
    heap_inserts_.fetch_add(1, std::memory_order_relaxed);
    // Line 37: the update timestamp drives Δ-stopping.
    TouchHeapUpdTime(w);
    if (changed && params_.tracer != nullptr) {
      // Re-emit every member with its lazily refreshed lower bound, so
      // recall-over-time reconstruction sees score growth, not just the
      // value a document happened to have when it first entered.
      for (DocType* member : heap_.docs()) {
        params_.tracer->OnHeapUpdate(
            w.Now(), member->id(),
            member->lb.load(std::memory_order_relaxed));
      }
    }
  }

  // --- CLEANER (lines 39-48) -------------------------------------------

  void Cleaner(WorkerContext& w) {
    if (Done(w) || PollStop(w)) return;
    obs::SpanScope pass_span(w, obs::SpanKind::kCleanerPass,
                             params_.trace.enabled);

    if (options_.cleaner_prunes) {
      // Build tmpDocMap: retain heap members and documents whose upper
      // bound still exceeds Θ (lines 40-45). We prune on every pass (the
      // paper gates pruning on |docMap| > Φ; pruning small maps too is
      // what guarantees the exact mode's size-based stop fires — the
      // extra work is O(Φ) per pass).
      const Score theta = Theta();
      auto tmp = std::make_unique<LocalDocMap>(static_cast<int>(m_));
      bool ok = true;
      std::size_t scanned = 0;
      auto retain = [&](DocType* d) {
        if (!ok) return;
        ++scanned;
        if (d->in_heap.load(std::memory_order_relaxed) ||
            ProbUpperBound(d) > theta) {
          ok = tmp->Add(d, w);
        }
      };
      const LocalDocMap* old_snap =
          snapshot_.load(std::memory_order_acquire);
      if (old_snap != nullptr) {
        old_snap->ForEach(retain);
      } else {
        doc_map_.ForEach(retain, w);
      }
      if (!ok) return AbortOom();
      pass_span.set_args(scanned, tmp->Size());
      // Each scanned entry costs a map access plus the m-term UB sum.
      w.Charge(static_cast<VirtualTime>(scanned) *
               (static_cast<VirtualTime>(m_) + 8));
      w.StructureAccess(old_snap != nullptr ? old_snap->ApproxBytes()
                                            : doc_map_.ApproxBytes(),
                        /*write_shared=*/false);

      if (old_snap != nullptr && tmp->Size() == old_snap->Size()) {
        // Nothing shrank: installing an identical copy would only churn
        // caches and retire yet another map. Keep the current snapshot.
        // (Retired snapshots stay alive until the query ends because
        // in-flight jobs may still read them; without this check a long
        // no-progress phase retains one copy per cleaner pass.)
        tmp->ReleaseModeledMemory(w);
      } else {
        // Pointer swing (§4.3): publish the pruned copy; retire the old
        // snapshot but keep it alive — workers may still hold it.
        LocalDocMap* fresh = tmp.get();
        retired_.push_back(std::move(tmp));
        snapshot_.store(fresh, std::memory_order_release);
        if (old_snap != nullptr) {
          const_cast<LocalDocMap*>(old_snap)->ReleaseModeledMemory(w);
        }
      }
    }

    // Line 46: stop when Eq. 2 is satisfied or the heap has been stable
    // for Δ. With pruning on, Eq. 2 reduces to |docMap| == |docHeap|;
    // without it (the pNRA configuration / the no-cleaner ablation) the
    // whole map must be scanned for unresolved candidates.
    const VirtualTime upd = LastHeapUpdTime();
    const bool delta_stop =
        params_.delta != exec::kNever && upd + params_.delta < w.Now();
    bool stop = delta_stop;
    if (!stop) {
      if (options_.cleaner_prunes) {
        stop = DocMapSize() == HeapSize();
      } else {
        stop = AllCandidatesResolved(w);
      }
    }
    // Safety net for non-safe bounds (prob_factor < 1): once every list
    // is exhausted, scores and Θ are final; if a prune pass then removes
    // nothing, the residual map/heap mismatch consists of bound
    // artifacts that no future pass can resolve — the heap is already
    // the final answer.
    if (!stop &&
        exhausted_terms_.load(std::memory_order_acquire) ==
            static_cast<int>(m_)) {
      const std::size_t size = DocMapSize();
      if (size == last_cleaner_size_) stop = true;
      last_cleaner_size_ = size;
    }
    if (stop) {
      SetDone();
      w.SharedAccess(&done_, AccessKind::kWrite);
    } else {
      ctx_.Submit([this](WorkerContext& cw) { Cleaner(cw); });
    }
  }

  /// NRA's second stopping condition (Eq. 2) checked by exhaustive scan:
  /// every visited document outside the heap must have UB(D) <= Θ.
  bool AllCandidatesResolved(WorkerContext& w) {
    const Score theta = Theta();
    bool resolved = true;
    std::size_t scanned = 0;
    auto check = [&](DocType* d) {
      ++scanned;
      if (resolved && !d->in_heap.load(std::memory_order_relaxed) &&
          ProbUpperBound(d) > theta) {
        resolved = false;
      }
    };
    if (doc_map_.read_only()) {
      doc_map_.ForEach(check, w);
    } else {
      doc_map_.ForEachLocked(check, w);
    }
    w.Charge(static_cast<VirtualTime>(scanned) *
             (static_cast<VirtualTime>(m_) + 8));
    w.StructureAccess(doc_map_.ApproxBytes(), !doc_map_.read_only());
    return resolved;
  }

  // --- state ------------------------------------------------------------

  const index::InvertedIndex& idx_;
  std::vector<TermId> terms_;
  SearchParams params_;
  exec::QueryContext& ctx_;
  SpartaOptions options_;
  std::size_t m_;

  /// Racy<> by design: the lazy UB array of §4.3 — each entry is written
  /// only by the worker owning term i, read by everyone without locks.
  util::Racy<topk::UpperBounds> ub_;
  LbHeap heap_ SPARTA_GUARDED_BY(*heap_lock_);
  std::unique_ptr<exec::CtxLock> heap_lock_;

  topk::ConcurrentDocMap doc_map_;
  std::atomic<const LocalDocMap*> snapshot_{nullptr};
  std::vector<std::unique_ptr<LocalDocMap>> retired_;  // cleaner-only

  std::vector<std::size_t> positions_;  // per-term traversal position
  std::vector<std::unique_ptr<LocalDocMap>> term_maps_;

  /// Racy<> by design: written under heap_lock_, but Δ-stopping reads it
  /// lock-free in the cleaner (staleness only delays the stop). One
  /// padded word per NUMA domain — writers update their own domain's
  /// word, so the Δ timestamp never ping-pongs across the interconnect;
  /// the Δ check takes the max (one domain degenerates to the original
  /// single-word layout).
  std::vector<util::Padded<util::Racy<std::atomic<VirtualTime>>>>
      heap_upd_time_;

  /// Per-worker private accumulators (empty unless
  /// options_.private_accumulators); each worker touches only its own
  /// entry, indexed by worker_id (sparta_lint rule f).
  std::vector<topk::LocalAccumulator> accumulators_;

  std::atomic<int> exhausted_terms_{0};
  std::size_t last_cleaner_size_ = std::numeric_limits<std::size_t>::max();
  std::atomic<bool> ubstop_{false};
  std::atomic<bool> cleaner_started_{false};
  /// Racy<> by design: Algorithm 1's done flag, polled lock-free at
  /// every loop head (line 14).
  util::Racy<std::atomic<bool>> done_{false};
  std::atomic<bool> oom_{false};
  std::atomic<exec::StopCause> stop_cause_{exec::StopCause::kNone};

  std::atomic<std::uint64_t> postings_{0};
  std::atomic<std::uint64_t> heap_inserts_{0};
};

}  // namespace

Sparta::Sparta(SpartaOptions options) : options_(std::move(options)) {
  // Pruned snapshots and termMap replicas are only meaningful (and only
  // safe to build) once the shared map stops growing at UBStop.
  SPARTA_CHECK(!options_.cleaner_prunes ||
               options_.insert_cutoff_at_ubstop);
  SPARTA_CHECK(!options_.term_maps || options_.insert_cutoff_at_ubstop);
  // The accumulator merge lands before each segment's UB publication;
  // per-posting UB publication (the pNRA configuration) would break the
  // buffered-score ≤ published-UB invariant the cutoff relies on.
  SPARTA_CHECK(!options_.private_accumulators || options_.lazy_ub_updates);
  SPARTA_CHECK(options_.prob_factor > 0.0 && options_.prob_factor <= 1.0);
}

std::unique_ptr<topk::QueryRun> Sparta::Prepare(
    const index::InvertedIndex& idx, std::vector<TermId> terms,
    const topk::SearchParams& params, exec::QueryContext& ctx) const {
  return std::make_unique<SpartaRun>(idx, std::move(terms), params, ctx,
                                     options_);
}

}  // namespace sparta::core

// Sparta — Scalable PARallel Threshold Algorithm (the paper's §4).
//
// A parallel NRA: worker jobs traverse the query terms' impact-ordered
// posting lists in segments, maintaining per-document partial scores in
// a shared docMap and the current top-k (by score lower bound) in a
// shared heap with threshold Θ. The design points that make it scale
// (§4.3) are all here and individually switchable for ablation studies:
//
//   * lazy UB updates      — term upper bounds are published once per
//                            segment, not per posting, avoiding
//                            cache-line ping-pong on the UB array;
//   * the CLEANER task     — once UBStop (Eq. 1) holds, a background job
//                            repeatedly rebuilds a pruned copy of docMap
//                            (tmpDocMap) and installs it with a pointer
//                            swing, keeping the hot working set small;
//   * termMap replicas     — when the (cleaned) docMap drops below Φ
//                            entries, each posting-list owner copies the
//                            entries still missing its term into a
//                            thread-local map that fits its private
//                            cache, eliminating shared reads entirely;
//   * insert cutoff        — after UBStop no new document can enter the
//                            top-k (Mamoulis et al.), so docMap stops
//                            growing.
//
// Setting all four off (and keeping the stopping-condition task) yields
// exactly the paper's pNRA baseline — "a naïve shared-state parallel
// implementation of NRA that does not employ Sparta's optimizations"
// (§5.2.2) — which is how baselines/pnra.cpp is implemented.
//
// Stopping: exact mode (delta = kNever) stops when docMap has shrunk to
// the heap itself — NRA's safe condition (Eq. 2) — and is proven safe by
// the same argument as NRA (§4.4). Approximate mode additionally stops
// once the heap has not changed for Δ.
#pragma once

#include <string>

#include "topk/algorithm.h"

namespace sparta::core {

struct SpartaOptions {
  bool lazy_ub_updates = true;
  bool cleaner_prunes = true;
  bool term_maps = true;
  bool insert_cutoff_at_ubstop = true;
  /// Corey-style private accumulators (DESIGN.md §14): workers buffer
  /// term-score writes in a per-worker map during each posting segment
  /// and merge into the shared docMap at the segment boundary — one
  /// stripe-lock acquisition per touched stripe instead of one per
  /// posting. Requires lazy_ub_updates: the merge must land before the
  /// segment's UB publication so every buffered score stays bounded by
  /// its term's published UB (the insert-cutoff drop-safety argument).
  /// Results are bit-equal to the unbuffered path
  /// (tests/test_equivalence.cpp).
  bool private_accumulators = false;
  /// Probabilistic pruning (the paper's §6 future work, after Theobald
  /// et al. [VLDB'04]): scale the *unknown*-term contributions of upper
  /// bounds by this factor in the stopping/pruning rules. A document
  /// missing most query terms rarely scores anywhere near the worst-case
  /// bound, so γ < 1 prunes candidates (and halts) earlier at a small,
  /// controlled recall risk. 1.0 = the paper's safe bounds.
  double prob_factor = 1.0;
  /// Display name (the pNRA configuration overrides it).
  std::string name = "Sparta";
};

class Sparta final : public topk::Algorithm {
 public:
  explicit Sparta(SpartaOptions options = {});

  std::string_view name() const override { return options_.name; }

  std::unique_ptr<topk::QueryRun> Prepare(const index::InvertedIndex& idx,
                                          std::vector<TermId> terms,
                                          const topk::SearchParams& params,
                                          exec::QueryContext& ctx)
      const override;

  const SpartaOptions& options() const { return options_; }

 private:
  SpartaOptions options_;
};

}  // namespace sparta::core

// Searching a live-index snapshot: one query over {main, delta}.
//
// A pinned IndexSnapshot is at most two immutable segments. Rather than
// teach every algorithm about segmentation, a SnapshotRun composes two
// ordinary QueryRuns — one per segment, prepared by the same algorithm
// on the same execution context, so their jobs interleave on the same
// simulated machine — and merges at harvest: delta doc ids are rebased
// by delta_doc_base, the union is canonicalized and truncated to k, the
// statuses combine at max severity, and the work counters sum.
//
// Because segment merges preserve posting scores bit-for-bit
// (MergeSegments), an exact algorithm run this way returns exactly what
// it would return on the merged single-segment index — the snapshot
// equivalence the live-update tests pin.
#pragma once

#include <memory>
#include <vector>

#include "exec/context.h"
#include "index/epoch.h"
#include "topk/algorithm.h"
#include "topk/params.h"
#include "topk/result.h"

namespace sparta::core {

/// Prepares a composed run over `snap` (which the caller keeps pinned
/// for the run's lifetime). Terms outside a segment's vocabulary are
/// skipped for that segment; a delta-less snapshot degenerates to a
/// plain single-segment run.
std::unique_ptr<topk::QueryRun> PrepareSnapshotRun(
    const topk::Algorithm& algo, const index::IndexSnapshot& snap,
    const std::vector<TermId>& terms, const topk::SearchParams& params,
    exec::QueryContext& ctx);

/// Blocking convenience mirroring Algorithm::Run: prepare, start, drain
/// the context, harvest, and fill latency/fault stats from the context.
topk::SearchResult SearchSnapshot(const topk::Algorithm& algo,
                                  const index::IndexSnapshot& snap,
                                  const std::vector<TermId>& terms,
                                  const topk::SearchParams& params,
                                  exec::QueryContext& ctx);

}  // namespace sparta::core

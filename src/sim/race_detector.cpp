#include "sim/race_detector.h"

#include <algorithm>

#include "util/common.h"

namespace sparta::sim {

namespace {

const char* KindName(exec::AccessKind kind) {
  return kind == exec::AccessKind::kRead ? "read" : "write";
}

void AppendLocks(std::string& out, const std::vector<int>& locks) {
  out += '{';
  for (std::size_t i = 0; i < locks.size(); ++i) {
    if (i > 0) out += ',';
    out += 'L';
    out += std::to_string(locks[i]);
  }
  out += '}';
}

void Join(std::array<std::uint64_t, kMaxSimWorkers>& into,
          const std::array<std::uint64_t, kMaxSimWorkers>& from) {
  for (std::size_t i = 0; i < into.size(); ++i) {
    into[i] = std::max(into[i], from[i]);
  }
}

}  // namespace

std::string RaceReport::Describe() const {
  std::string out = label.empty() ? std::string("<unlabeled>") : label;
  if (!label.empty() && offset != 0) {
    out += '+';
    out += std::to_string(offset);
  }
  out += ": w";
  out += std::to_string(prior_worker);
  out += ' ';
  out += KindName(prior_kind);
  AppendLocks(out, prior_locks);
  out += " vs w";
  out += std::to_string(worker);
  out += ' ';
  out += KindName(kind);
  AppendLocks(out, locks);
  return out;
}

RaceDetector::RaceDetector(int num_workers) : num_workers_(num_workers) {
  SPARTA_CHECK(num_workers_ >= 1 && num_workers_ <= kMaxSimWorkers);
  // Each worker starts in its own epoch 1: a fresh access must compare
  // unordered against workers that never synchronized (whose clock entry
  // for it is still 0).
  for (std::size_t w = 0; w < vc_.size(); ++w) vc_[w][w] = 1;
}

const RaceDetector::Range* RaceDetector::FindRange(const void* addr) const {
  const auto p = reinterpret_cast<std::uintptr_t>(addr);
  for (const Range& r : ranges_) {
    if (p >= r.lo && p < r.hi) return &r;
  }
  return nullptr;
}

int RaceDetector::LockId(const void* lock) {
  const auto [it, inserted] =
      lock_ids_.emplace(lock, static_cast<int>(lock_ids_.size()));
  (void)inserted;
  return it->second;
}

bool RaceDetector::OrderedBefore(const AccessRecord& prior,
                                 int prior_worker, int worker) const {
  return prior.clock <=
         vc_[static_cast<std::size_t>(worker)]
            [static_cast<std::size_t>(prior_worker)];
}

bool RaceDetector::Disjoint(const LockSet& a, const LockSet& b) {
  for (const void* lock : a) {
    if (std::find(b.begin(), b.end(), lock) != b.end()) return false;
  }
  return true;
}

std::vector<int> RaceDetector::LockIds(const LockSet& locks) {
  std::vector<int> ids;
  ids.reserve(locks.size());
  for (const void* lock : locks) ids.push_back(LockId(lock));
  return ids;
}

void RaceDetector::Report(const void* addr, int prior_worker,
                          exec::AccessKind prior_kind,
                          const AccessRecord& prior, int worker,
                          exec::AccessKind kind) {
  const Range* range = FindRange(addr);
  if (range != nullptr && range->allow) {
    ++suppressed_;
    return;
  }
  if (!seen_
           .emplace(addr, prior_worker, worker, static_cast<int>(prior_kind),
                    static_cast<int>(kind))
           .second) {
    return;  // already reported this pair for this address
  }
  RaceReport report;
  report.addr = addr;
  if (range != nullptr) {
    report.label = range->label;
    report.offset = static_cast<std::ptrdiff_t>(
        reinterpret_cast<std::uintptr_t>(addr) - range->lo);
  }
  report.prior_worker = prior_worker;
  report.worker = worker;
  report.prior_kind = prior_kind;
  report.kind = kind;
  report.prior_locks = LockIds(prior.locks);
  report.locks = LockIds(held_[static_cast<std::size_t>(worker)]);
  reports_.push_back(std::move(report));
}

void RaceDetector::OnAccess(int worker, const void* addr,
                            exec::AccessKind kind) {
  const util::SerialGuard guard(domain_);
  SPARTA_CHECK(worker >= 0 && worker < num_workers_);
  const auto w = static_cast<std::size_t>(worker);
  Shadow& s = shadow_[addr];
  const LockSet& held = held_[w];

  // Any access races with an unordered, lockset-disjoint prior write.
  if (s.writer >= 0 && s.writer != worker &&
      !OrderedBefore(s.write, s.writer, worker) &&
      Disjoint(s.write.locks, held)) {
    Report(addr, s.writer, exec::AccessKind::kWrite, s.write, worker, kind);
  }

  if (kind == exec::AccessKind::kWrite) {
    // A write additionally races with every unordered read-share member.
    for (const auto& [reader, record] : s.reads) {
      if (reader == worker) continue;
      if (!OrderedBefore(record, reader, worker) &&
          Disjoint(record.locks, held)) {
        Report(addr, reader, exec::AccessKind::kRead, record, worker, kind);
      }
    }
    s.writer = worker;
    s.write = {vc_[w][w], held};
    s.reads.clear();
  } else {
    for (auto& [reader, record] : s.reads) {
      if (reader == worker) {
        record = {vc_[w][w], held};
        return;
      }
    }
    s.reads.emplace_back(worker, AccessRecord{vc_[w][w], held});
  }
}

void RaceDetector::OnLockAcquire(int worker, const void* lock) {
  const util::SerialGuard guard(domain_);
  SPARTA_CHECK(worker >= 0 && worker < num_workers_);
  const auto w = static_cast<std::size_t>(worker);
  LockId(lock);  // assign ids in deterministic first-acquire order
  const auto it = sync_vc_.find(lock);
  if (it != sync_vc_.end()) Join(vc_[w], it->second);
  held_[w].push_back(lock);
}

void RaceDetector::OnLockRelease(int worker, const void* lock) {
  const util::SerialGuard guard(domain_);
  SPARTA_CHECK(worker >= 0 && worker < num_workers_);
  const auto w = static_cast<std::size_t>(worker);
  Join(sync_vc_[lock], vc_[w]);
  ++vc_[w][w];
  auto& held = held_[w];
  const auto it = std::find(held.rbegin(), held.rend(), lock);
  if (it != held.rend()) held.erase(std::next(it).base());
}

std::uint64_t RaceDetector::OnJobSubmit(int worker) {
  const util::SerialGuard guard(domain_);
  SPARTA_CHECK(worker >= 0 && worker < num_workers_);
  const auto w = static_cast<std::size_t>(worker);
  const std::uint64_t token = ++next_fork_;
  fork_vc_.emplace(token, vc_[w]);
  // Post-fork accesses of the submitter must not appear ordered before
  // the child: bump the submitter past the snapshot.
  ++vc_[w][w];
  return token;
}

void RaceDetector::OnJobStart(int worker, std::uint64_t fork_token) {
  const util::SerialGuard guard(domain_);
  SPARTA_CHECK(worker >= 0 && worker < num_workers_);
  const auto w = static_cast<std::size_t>(worker);
  if (fork_token != 0) {
    const auto it = fork_vc_.find(fork_token);
    if (it != fork_vc_.end()) {
      Join(vc_[w], it->second);
      fork_vc_.erase(it);
    }
  }
  ++vc_[w][w];  // every job is a fresh epoch on its worker
}

void RaceDetector::OnSyncAcquire(int worker, const void* token) {
  const util::SerialGuard guard(domain_);
  SPARTA_CHECK(worker >= 0 && worker < num_workers_);
  const auto it = sync_vc_.find(token);
  if (it != sync_vc_.end()) {
    Join(vc_[static_cast<std::size_t>(worker)], it->second);
  }
}

void RaceDetector::AllowRange(const void* addr, std::size_t bytes,
                              std::string label) {
  const util::SerialGuard guard(domain_);
  const auto lo = reinterpret_cast<std::uintptr_t>(addr);
  ranges_.push_back({lo, lo + bytes, std::move(label), /*allow=*/true});
}

void RaceDetector::LabelRange(const void* addr, std::size_t bytes,
                              std::string label) {
  const util::SerialGuard guard(domain_);
  const auto lo = reinterpret_cast<std::uintptr_t>(addr);
  ranges_.push_back({lo, lo + bytes, std::move(label), /*allow=*/false});
}

void RaceDetector::ResetShadow() {
  const util::SerialGuard guard(domain_);
  for (std::size_t w = 0; w < vc_.size(); ++w) {
    vc_[w].fill(0);
    vc_[w][w] = 1;
  }
  for (auto& held : held_) held.clear();
  sync_vc_.clear();
  fork_vc_.clear();
  next_fork_ = 0;
  shadow_.clear();
  ranges_.clear();
  lock_ids_.clear();
  seen_.clear();
}

}  // namespace sparta::sim

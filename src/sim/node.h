// One simulated serving node: a whole SimExecutor machine behind a
// network endpoint.
//
// The single-machine layers (sim_executor, page_cache, fault_injector)
// already model one box faithfully; a Node lifts that box into a
// cluster member. Each node owns its own discrete-event machine —
// workers, clocks, page cache, SSD, node-local fault plan — plus the
// index shards assigned to it, each published through an EpochManager
// exactly like the live index's snapshots. Shard requests execute on
// the node's machine at their (virtual) arrival time; queueing behind
// earlier requests emerges from the per-worker clocks, so a hot or
// stall-prone node becomes a straggler the coordinator can observe and
// hedge around.
//
// Failure semantics (fail-stop, the model in the scatter-gather
// literature): a node scheduled to crash at T answers nothing in
// [T, restart). A request in flight at T is killed — its snapshot pin
// is released, its result is discarded, and no response is ever sent;
// the coordinator only learns through its per-shard deadline. On
// restart the machine comes back *cold*: a fresh executor (empty page
// cache, clocks advanced to the restart instant) re-publishes the
// on-disk shards, and the epoch managers verify no snapshot leaked
// across the crash (tests/test_cluster.cpp).
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "core/snapshot_search.h"
#include "index/epoch.h"
#include "index/inverted_index.h"
#include "sim/sim_executor.h"
#include "topk/algorithm.h"
#include "topk/params.h"
#include "topk/result.h"

namespace sparta::sim {

struct NodeConfig {
  /// Cluster-unique id in [0, 64) (the partition mask is 64-bit).
  int id = 0;
  /// The node's machine. Node-local faults (worker stalls, IO spikes)
  /// go in sim.faults with a node-local seed; *network* faults live in
  /// the cluster-level injector (serve/coordinator.h).
  SimConfig sim;
};

class Node {
 public:
  explicit Node(NodeConfig config);

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  /// Assigns a shard replica to this node, publishing it at epoch 1
  /// through a fresh EpochManager.
  void HostShard(int shard_id, std::shared_ptr<const index::InvertedIndex> index);

  bool Hosts(int shard_id) const { return shards_.count(shard_id) > 0; }

  /// Schedules a fail-stop at `crash_at`; `restart_at` == kNever means
  /// the node never rejoins.
  void ScheduleCrash(exec::VirtualTime crash_at, exec::VirtualTime restart_at);

  /// True when the node can accept a request arriving at `now`.
  bool up(exec::VirtualTime now) const;

  /// Outcome of one shard request. `responded == false` means the node
  /// was down at arrival or died mid-request — the caller hears nothing
  /// and must rely on its own deadline.
  struct ShardReply {
    bool responded = false;
    /// Top-k over the shard, *shard-local* doc ids.
    topk::SearchResult result;
    /// Virtual time the response leaves the node.
    exec::VirtualTime completed = exec::kNever;
  };

  /// Executes one shard request arriving at `arrival`. Pins the shard's
  /// published snapshot for the duration, runs the algorithm on this
  /// node's machine (honoring params.deadline as the node-side budget),
  /// and releases the pin before replying — or, when the machine dies
  /// mid-request, without replying.
  ///
  /// `query_record` / `shard_attempt` are the coordinator's correlation
  /// payload (query record index and PackShardAttempt(shard, attempt)):
  /// when this node's machine has a tracer or flight recorder, the
  /// request is bracketed by a shard.service span on the machine's
  /// serving track carrying those ids, so a node-local trace joins the
  /// cluster trace on (record, shard_attempt). Emission charges no
  /// virtual time (the serving track has no clock).
  ShardReply Execute(int shard_id, const topk::Algorithm& algo,
                     const std::vector<TermId>& terms,
                     const topk::SearchParams& params,
                     exec::VirtualTime arrival,
                     std::uint64_t query_record = 0,
                     std::uint64_t shard_attempt = 0);

  int id() const { return config_.id; }
  SimExecutor& executor() { return *executor_; }
  index::EpochManager& epoch_manager(int shard_id);

  /// Requests whose machine died before their response left the node.
  std::uint64_t killed_in_flight() const { return killed_in_flight_; }
  /// Requests answered (excludes killed and down-at-arrival).
  std::uint64_t served() const { return served_; }
  /// 1 after the node has rejoined from a crash (cold machine).
  std::uint64_t cold_restarts() const { return cold_restarts_; }

 private:
  struct ShardState {
    std::shared_ptr<const index::InvertedIndex> index;
    std::unique_ptr<index::EpochManager> epochs;
  };

  /// Rebuilds the machine cold the first time a request arrives at or
  /// after restart_at_.
  void MaybeRestart(exec::VirtualTime now);

  NodeConfig config_;
  std::unique_ptr<SimExecutor> executor_;
  std::map<int, ShardState> shards_;

  exec::VirtualTime crash_at_ = exec::kNever;
  exec::VirtualTime restart_at_ = exec::kNever;
  bool restarted_ = false;

  std::uint64_t killed_in_flight_ = 0;
  std::uint64_t served_ = 0;
  std::uint64_t cold_restarts_ = 0;
};

}  // namespace sparta::sim

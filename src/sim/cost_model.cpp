#include "sim/cost_model.h"

// The cost model is header-only today; this translation unit anchors the
// library and leaves room for calibration tables later.

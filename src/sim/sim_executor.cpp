#include "sim/sim_executor.h"

#include <algorithm>

#include "sim/race_detector.h"

namespace sparta::sim {

using exec::VirtualTime;

/// Shared mutable state of one simulated query.
struct SimExecutor::SimQueryState {
  /// Deterministic query id (admission order); stamped into trace events.
  std::uint64_t qid = 0;
  VirtualTime start = 0;
  VirtualTime end = 0;
  std::int64_t mem_used = 0;
  std::int64_t mem_budget = 0;
  VirtualTime deadline = exec::kNever;
  /// Jobs queued or running (SubmitJob increments, Drain decrements
  /// after the body returns): zero on a started query means complete.
  std::size_t outstanding = 0;
  /// Escalated-fault latch (set when a read exhausts its retry budget).
  exec::StopCause stop = exec::StopCause::kNone;
  /// One-shot: the mid-query memory-budget squeeze already applied.
  bool squeezed = false;
  exec::FaultStats faults;
};

/// WorkerContext bound to one virtual worker for the duration of a job.
class SimWorkerContext final : public exec::WorkerContext {
 public:
  SimWorkerContext(SimExecutor& exec, int worker,
                   SimExecutor::SimQueryState& query)
      : exec_(exec), worker_(worker), query_(query) {}

  int worker_id() const override { return worker_; }

  VirtualTime Now() const override {
    return exec_.clocks_[static_cast<std::size_t>(worker_)];
  }

  void Charge(VirtualTime ns) override {
    SPARTA_CHECK(ns >= 0);
    auto& clock = exec_.clocks_[static_cast<std::size_t>(worker_)];
    const VirtualTime before = clock;
    clock += ns;
    // Sampling hook: charges nothing, only observes the advance.
    if (exec_.profiler_ != nullptr) {
      exec_.profiler_->OnAdvance(worker_, before, clock);
    }
  }

  void ChargePostings(std::uint64_t n) override {
    Charge(static_cast<VirtualTime>(n) *
           exec_.config_.costs.cpu_per_posting);
  }

  void SharedAccess(const void* line, exec::AccessKind kind) override {
    const auto access = kind == exec::AccessKind::kRead
                            ? exec_.coherence_.Read(worker_, line)
                            : exec_.coherence_.Write(worker_, line);
    const auto& costs = exec_.config_.costs;
    Charge(access.miss ? (access.remote ? costs.remote_coherence_miss
                                        : costs.coherence_miss)
                       : costs.l1_hit);
  }

  void StructureAccess(std::size_t structure_bytes, bool write_shared,
                       bool insert) override {
    auto cost = exec_.config_.costs.StructureAccessCost(structure_bytes,
                                                        write_shared);
    if (insert) cost += exec_.config_.costs.map_insert_extra;
    Charge(cost);
  }

  void StructureAccessHomed(std::size_t structure_bytes, bool write_shared,
                            int home_domain, bool insert) override {
    const auto& costs = exec_.config_.costs;
    auto cost = costs.StructureAccessCostHomed(
        structure_bytes, write_shared,
        /*remote=*/home_domain != numa_domain());
    if (insert) cost += costs.map_insert_extra;
    Charge(cost);
  }

  int numa_domain() const override {
    return exec_.coherence_.DomainOf(worker_);
  }

  void StructureAccessMany(std::size_t structure_bytes, bool write_shared,
                           std::uint64_t count) override {
    Charge(static_cast<VirtualTime>(count) *
           exec_.config_.costs.StructureAccessCost(structure_bytes,
                                                   write_shared));
  }

  void IoSequential(std::uint64_t offset, std::uint64_t length) override {
    if (length == 0) return;
    const std::uint64_t first = offset / kPageBytes;
    const std::uint64_t last = (offset + length - 1) / kPageBytes;
    for (std::uint64_t page = first; page <= last; ++page) {
      ReadPage(page, /*random=*/false);
    }
  }

  void IoRandom(std::uint64_t offset) override {
    ReadPage(offset / kPageBytes, /*random=*/true);
  }

  bool ChargeMemory(std::int64_t delta_bytes) override {
    auto* injector = exec_.fault_injector_.get();
    if (injector != nullptr && !query_.squeezed &&
        injector->config().mem_squeeze_after != exec::kNever &&
        Now() >= query_.start + injector->config().mem_squeeze_after) {
      query_.squeezed = true;
      query_.mem_budget = static_cast<std::int64_t>(
          static_cast<double>(query_.mem_budget) *
          injector->config().mem_squeeze_factor);
      injector->LogMemSqueeze(worker_, Now());
      ++query_.faults.injected;
    }
    query_.mem_used += delta_bytes;
    return query_.mem_used <= query_.mem_budget;
  }

  void ShadowAccess(const void* addr, exec::AccessKind kind) override {
    // Detector-only: charges no virtual time.
    if (exec_.race_detector_ != nullptr) {
      exec_.race_detector_->OnAccess(worker_, addr, kind);
    }
  }

  void AnnotateAcquire(const void* token) override {
    if (exec_.race_detector_ != nullptr) {
      exec_.race_detector_->OnSyncAcquire(worker_, token);
    }
  }

  VirtualTime deadline() const override { return query_.deadline; }

  bool ShouldStop() const override {
    return query_.stop != exec::StopCause::kNone ||
           Now() >= query_.deadline;
  }

  exec::StopCause stop_cause() const override {
    if (query_.stop != exec::StopCause::kNone) return query_.stop;
    return Now() >= query_.deadline ? exec::StopCause::kDeadline
                                    : exec::StopCause::kNone;
  }

  double QueuePressure() const override {
    return static_cast<double>(exec_.jobs_.size()) /
           static_cast<double>(exec_.config_.num_workers);
  }

  obs::Tracer* tracer() const override { return exec_.tracer_.get(); }

  obs::Profiler* profiler() const override {
    return exec_.profiler_.get();
  }

  obs::FlightRecorder* recorder() const override {
    return exec_.flight_recorder_.get();
  }

  /// Counts one injected fault against this worker's query (used by the
  /// lock model, which only sees the WorkerContext).
  void CountInjectedFault() { ++query_.faults.injected; }

 private:
  /// One page read through the cache/SSD/fault model. Cache hits are
  /// never perturbed (the fault plan models the device, not DRAM);
  /// misses may take a latency spike and/or transient errors. Each
  /// failed attempt re-pays the device cost plus exponential backoff;
  /// exhausting the retry budget latches StopCause::kFault on the query
  /// so algorithms wind down at their next poll point.
  void ReadPage(std::uint64_t page, bool random) {
    // One io.read span per page; payload b is a flag word (bit 0 =
    // random access, bit 1 = page-cache hit) so tests can reconcile
    // span counts against QueryStats::random_accesses.
    obs::SpanScope span(*this, obs::SpanKind::kIoRead);
    const std::uint64_t random_flag = random ? 1u : 0u;
    const auto& costs = exec_.config_.costs;
    if (exec_.page_cache_.Touch(page)) {
      span.set_args(page, random_flag | 2u);
      Charge(costs.page_cache_hit);
      return;
    }
    span.set_args(page, random_flag);
    const VirtualTime device =
        random ? costs.ssd_random_page : costs.ssd_seq_page;
    Charge(device);
    auto* injector = exec_.fault_injector_.get();
    if (injector == nullptr) return;
    const VirtualTime spike = injector->OnSsdRead(worker_, Now());
    if (spike > 0) {
      Charge(spike);
      ++query_.faults.injected;
    }
    const int failures = injector->IoFailures();
    if (failures == 0) return;
    const auto& fc = injector->config();
    VirtualTime extra = 0;
    const int retries = failures > fc.io_retry_limit ? fc.io_retry_limit
                                                     : failures;
    // Saturating doubling: a shift could run into the sign bit for a
    // large configured backoff, and a charge is capped at kNever anyway
    // (tests pin both the exact cost at the limit and the saturation).
    VirtualTime backoff = fc.io_retry_backoff_ns;
    for (int attempt = 0; attempt < retries; ++attempt) {
      extra += device + backoff;
      if (extra > exec::kNever || extra < 0) extra = exec::kNever;
      backoff = backoff > exec::kNever - backoff ? exec::kNever
                                                 : backoff * 2;
    }
    Charge(extra);
    query_.faults.io_retries += static_cast<std::uint64_t>(retries);
    ++query_.faults.injected;
    if (auto* tracer = exec_.tracer_.get()) {
      tracer->AddInstant(worker_, obs::InstantKind::kIoRetry, Now(),
                         static_cast<std::uint64_t>(retries), page);
    }
    if (auto* recorder = exec_.flight_recorder_.get()) {
      recorder->AddInstant(worker_, obs::InstantKind::kIoRetry, Now(),
                           static_cast<std::uint64_t>(retries), page);
      Charge(recorder->record_cost());
    }
    injector->LogIoError(worker_, Now(), extra);
    if (failures > fc.io_retry_limit) {
      // Retry budget exhausted: escalate instead of blocking forever.
      ++query_.faults.io_escalations;
      query_.stop = exec::MergeStopCause(query_.stop,
                                         exec::StopCause::kFault);
    }
  }

  SimExecutor& exec_;
  int worker_;
  SimExecutor::SimQueryState& query_;
};

namespace {

/// Lock model: the lock is "free at" some virtual time; an acquirer whose
/// clock is behind that time stalls until the holder's release, then pays
/// a handoff penalty (line transfer). Uncontended acquisition costs a
/// CAS. Under fault injection the holder may be preempted just before
/// release, extending the hold.
class SimLock final : public exec::CtxLock {
 public:
  SimLock(const CostModel& costs, RaceDetector* detector,
          FaultInjector* injector, obs::Profiler* profiler,
          std::uint64_t id)
      : costs_(costs),
        detector_(detector),
        injector_(injector),
        profiler_(profiler),
        id_(id) {}

  // TSA-exempt: SimLock prices the acquisition in virtual time on the
  // single host thread — there is no underlying mutex for the analysis
  // to see; the capability contract lives on the CtxLock interface.
  void Lock(exec::WorkerContext& worker) override
      SPARTA_NO_THREAD_SAFETY_ANALYSIS {
    const VirtualTime now = worker.Now();
    if (now < free_at_) {
      // The stall is charged under a lock.wait frame so profiler samples
      // falling into it attribute to the wait, exactly like the span.
      if (profiler_ != nullptr) {
        profiler_->PushFrame(worker.worker_id(),
                             obs::SpanKind::kLockWait);
      }
      worker.Charge((free_at_ - now) + costs_.lock_handoff);
      if (profiler_ != nullptr) {
        profiler_->PopFrame(worker.worker_id());
        // Recorded wait == span duration (stall + handoff), so the
        // contention report reconciles with the tracer's lock.wait
        // totals. Attribution uses the *enclosing* phase (frame popped
        // first).
        profiler_->OnLockAcquire(worker.worker_id(), this,
                                 /*contended=*/true, worker.Now() - now);
      }
      // Contended acquisitions only: the span covers stall + handoff.
      // `id_` is a MakeLock counter, never an address, so traces stay
      // byte-stable across runs.
      if (auto* tracer = worker.tracer()) {
        tracer->AddSpan(worker.worker_id(), obs::SpanKind::kLockWait, now,
                        worker.Now(), id_);
      }
      if (auto* recorder = worker.recorder();
          recorder != nullptr &&
          recorder->RecordsSpan(obs::SpanKind::kLockWait)) {
        recorder->AddSpan(worker.worker_id(), obs::SpanKind::kLockWait,
                          now, worker.Now(), id_);
        worker.Charge(recorder->record_cost());
      }
    } else {
      worker.Charge(costs_.lock_uncontended);
      if (profiler_ != nullptr) {
        profiler_->OnLockAcquire(worker.worker_id(), this,
                                 /*contended=*/false, 0);
      }
    }
    if (detector_ != nullptr) {
      detector_->OnLockAcquire(worker.worker_id(), this);
    }
  }

  void Unlock(exec::WorkerContext& worker) override
      SPARTA_NO_THREAD_SAFETY_ANALYSIS {
    if (injector_ != nullptr) {
      const VirtualTime preempt =
          injector_->OnLockRelease(worker.worker_id(), worker.Now());
      if (preempt > 0) {
        // Locks created by SimQuery::MakeLock only ever see sim workers.
        worker.Charge(preempt);
        static_cast<SimWorkerContext&>(worker).CountInjectedFault();
      }
    }
    free_at_ = worker.Now();
    if (detector_ != nullptr) {
      detector_->OnLockRelease(worker.worker_id(), this);
    }
  }

 private:
  const CostModel& costs_;
  RaceDetector* detector_;
  FaultInjector* injector_;
  obs::Profiler* profiler_;
  std::uint64_t id_;
  VirtualTime free_at_ = 0;
};

}  // namespace

/// QueryContext facade handed to algorithms.
class SimQuery final : public exec::QueryContext {
 public:
  SimQuery(SimExecutor& exec,
           std::shared_ptr<SimExecutor::SimQueryState> state)
      : exec_(exec), state_(std::move(state)) {}

  void Submit(exec::JobFn job) override {
    exec_.SubmitJob(state_, std::move(job));
  }

  int num_workers() const override { return exec_.config().num_workers; }

  int numa_domains() const override {
    return exec_.coherence_.numa_domains();
  }

  std::unique_ptr<exec::CtxLock> MakeLock() override {
    return std::make_unique<SimLock>(exec_.config().costs,
                                     exec_.race_detector_.get(),
                                     exec_.fault_injector_.get(),
                                     exec_.profiler_.get(),
                                     exec_.next_lock_id_++);
  }

  void RunToCompletion() override { exec_.Drain(); }

  VirtualTime start_time() const override { return state_->start; }
  VirtualTime end_time() const override { return state_->end; }

  void set_deadline(VirtualTime absolute) override {
    state_->deadline = absolute;
  }
  VirtualTime deadline() const override { return state_->deadline; }
  exec::FaultStats fault_stats() const override { return state_->faults; }
  std::size_t outstanding_jobs() const override {
    return state_->outstanding;
  }

  void AnnotateBenignRace(const void* addr, std::size_t bytes,
                          const char* label) override {
    if (exec_.race_detector_ != nullptr) {
      exec_.race_detector_->AllowRange(addr, bytes, label);
    }
  }

  void RegisterContentionRange(const void* addr, std::size_t bytes,
                               const char* structure) override {
    if (exec_.profiler_ != nullptr) {
      exec_.profiler_->RegisterRange(addr, bytes, structure);
    }
  }

 private:
  SimExecutor& exec_;
  std::shared_ptr<SimExecutor::SimQueryState> state_;
};

SimExecutor::SimExecutor(SimConfig config)
    : config_(config),
      clocks_(static_cast<std::size_t>(config.num_workers), 0),
      page_cache_(config.page_cache_bytes) {
  SPARTA_CHECK(config.num_workers >= 1 &&
               config.num_workers <= kMaxSimWorkers);
  coherence_.SetTopology(config_.num_workers, config_.costs.numa_domains);
  if (config_.race_check) {
    race_detector_ = std::make_unique<RaceDetector>(config_.num_workers);
    coherence_.set_race_detector(race_detector_.get());
  }
  if (config_.faults.enabled()) {
    fault_injector_ = std::make_unique<FaultInjector>(config_.faults);
  }
  if (config_.trace.enabled) {
    tracer_ = std::make_unique<obs::Tracer>(config_.num_workers);
  }
  if (config_.profile.enabled()) {
    profiler_ = std::make_unique<obs::Profiler>(config_.num_workers,
                                                config_.profile);
    coherence_.set_profiler(profiler_.get());
  }
  if (config_.flight.enabled) {
    flight_recorder_ = std::make_unique<obs::FlightRecorder>(
        config_.num_workers, config_.flight);
  }
}

SimExecutor::~SimExecutor() = default;

std::unique_ptr<exec::QueryContext> SimExecutor::CreateQuery() {
  coherence_.Reset();
  // Heap addresses recycle across queries: stale shadow epochs must not
  // alias a new query's allocations (reports accumulated so far persist).
  if (race_detector_ != nullptr) race_detector_->ResetShadow();
  // Same recycling hazard for the profiler's range registry; its
  // accumulated statistics persist across queries like the detector's.
  if (profiler_ != nullptr) profiler_->ResetRanges();
  return CreateQueryAt(SyncBarrier());
}

std::unique_ptr<exec::QueryContext> SimExecutor::CreateQueryAt(
    VirtualTime start) {
  auto state = std::make_shared<SimQueryState>();
  state->qid = next_query_id_++;
  state->start = start;
  state->end = start;
  state->mem_budget = config_.memory_budget_bytes;
  return std::make_unique<SimQuery>(*this, std::move(state));
}

void SimExecutor::SubmitJob(std::shared_ptr<SimQueryState> query,
                            exec::JobFn fn) {
  Job job;
  job.fn = std::move(fn);
  // Jobs submitted from within a job become ready at the submitter's
  // current virtual time; external submissions at the query's admission.
  job.ready = current_worker_ >= 0
                  ? clocks_[static_cast<std::size_t>(current_worker_)]
                  : query->start;
  job.seq = next_seq_++;
  if (race_detector_ != nullptr && current_worker_ >= 0) {
    job.fork = race_detector_->OnJobSubmit(current_worker_);
  }
  ++query->outstanding;
  job.query = std::move(query);
  jobs_.push(std::move(job));
}

int SimExecutor::PickWorker() const {
  int best = 0;
  for (int w = 1; w < config_.num_workers; ++w) {
    if (clocks_[static_cast<std::size_t>(w)] <
        clocks_[static_cast<std::size_t>(best)]) {
      best = w;
    }
  }
  return best;
}

void SimExecutor::Drain(
    const std::function<bool(VirtualTime)>& admit) {
  bool more_to_admit = static_cast<bool>(admit);
  for (;;) {
    // FCFS admission: top up whenever some workers would sit idle.
    while (more_to_admit &&
           jobs_.size() <
               static_cast<std::size_t>(config_.num_workers)) {
      more_to_admit = admit(IdleTime());
    }
    if (jobs_.empty()) break;

    Job job = jobs_.top();
    jobs_.pop();
    const int w = PickWorker();
    auto& clock = clocks_[static_cast<std::size_t>(w)];
    // Pickup: the moment the worker turns to this job. The job span
    // starts here (dispatch overhead and injected stalls are part of the
    // job); the time since readiness is queue wait, on the scheduler
    // track (waits of different jobs legitimately overlap there).
    const VirtualTime pickup = std::max(clock, job.ready);
    if (tracer_ != nullptr && pickup > job.ready) {
      tracer_->AddSpan(tracer_->scheduler_track(),
                       obs::SpanKind::kQueueWait, job.ready, pickup,
                       job.query->qid, job.seq);
    }
    // The scheduler has no clock of its own to charge, so queue-wait
    // recording is free; every worker-track event below pays
    // record_cost.
    if (flight_recorder_ != nullptr && pickup > job.ready) {
      flight_recorder_->AddSpan(flight_recorder_->scheduler_track(),
                                obs::SpanKind::kQueueWait, job.ready,
                                pickup, job.query->qid, job.seq);
    }
    clock = pickup + config_.costs.job_dispatch;
    if (fault_injector_ != nullptr) {
      // Straggler injection: the worker freezes (in virtual time) before
      // picking up the job, exactly like an OS preemption would stall it.
      const exec::VirtualTime stall = fault_injector_->OnJobDispatch(w, clock);
      if (stall > 0) {
        clock += stall;
        ++job.query->faults.injected;
        if (tracer_ != nullptr) {
          tracer_->AddInstant(w, obs::InstantKind::kFaultStall, clock,
                              static_cast<std::uint64_t>(stall),
                              job.query->qid);
        }
        if (flight_recorder_ != nullptr) {
          flight_recorder_->AddInstant(w, obs::InstantKind::kFaultStall,
                                       clock,
                                       static_cast<std::uint64_t>(stall),
                                       job.query->qid);
          clock += flight_recorder_->record_cost();
        }
      }
    }

    current_worker_ = w;
    if (race_detector_ != nullptr) race_detector_->OnJobStart(w, job.fork);
    // The job frame roots every worker stack the sampler snapshots
    // (SpanScope frames nest inside it), mirroring the kJob span below.
    if (profiler_ != nullptr) {
      profiler_->PushFrame(w, obs::SpanKind::kJob);
    }
    SimWorkerContext ctx(*this, w, *job.query);
    job.fn(ctx);
    if (profiler_ != nullptr) profiler_->PopFrame(w);
    current_worker_ = -1;

    --job.query->outstanding;
    if (tracer_ != nullptr) {
      tracer_->AddSpan(w, obs::SpanKind::kJob, pickup, clock,
                       job.query->qid, job.seq);
    }
    // The recorder's kJob span matches the tracer's; the modeled
    // recording charge lands after the span closes, so the worker's
    // clock (and the query end below) carry the overhead.
    if (flight_recorder_ != nullptr &&
        flight_recorder_->RecordsSpan(obs::SpanKind::kJob)) {
      flight_recorder_->AddSpan(w, obs::SpanKind::kJob, pickup, clock,
                                job.query->qid, job.seq);
      clock += flight_recorder_->record_cost();
    }
    job.query->end = std::max(job.query->end, clock);
  }
}

VirtualTime SimExecutor::GlobalTime() const {
  return *std::max_element(clocks_.begin(), clocks_.end());
}

VirtualTime SimExecutor::IdleTime() const {
  return *std::min_element(clocks_.begin(), clocks_.end());
}

VirtualTime SimExecutor::SyncBarrier() {
  const VirtualTime t = GlobalTime();
  std::fill(clocks_.begin(), clocks_.end(), t);
  return t;
}

void SimExecutor::AdvanceTo(VirtualTime t) {
  for (VirtualTime& clock : clocks_) clock = std::max(clock, t);
}

}  // namespace sparta::sim

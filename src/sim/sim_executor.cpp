#include "sim/sim_executor.h"

#include <algorithm>

#include "sim/race_detector.h"

namespace sparta::sim {

using exec::VirtualTime;

/// Shared mutable state of one simulated query.
struct SimExecutor::SimQueryState {
  VirtualTime start = 0;
  VirtualTime end = 0;
  std::int64_t mem_used = 0;
  std::int64_t mem_budget = 0;
};

namespace {

/// Lock model: the lock is "free at" some virtual time; an acquirer whose
/// clock is behind that time stalls until the holder's release, then pays
/// a handoff penalty (line transfer). Uncontended acquisition costs a
/// CAS.
class SimLock final : public exec::CtxLock {
 public:
  SimLock(const CostModel& costs, RaceDetector* detector)
      : costs_(costs), detector_(detector) {}

  void Lock(exec::WorkerContext& worker) override {
    const VirtualTime now = worker.Now();
    if (now < free_at_) {
      worker.Charge((free_at_ - now) + costs_.lock_handoff);
    } else {
      worker.Charge(costs_.lock_uncontended);
    }
    if (detector_ != nullptr) {
      detector_->OnLockAcquire(worker.worker_id(), this);
    }
  }

  void Unlock(exec::WorkerContext& worker) override {
    free_at_ = worker.Now();
    if (detector_ != nullptr) {
      detector_->OnLockRelease(worker.worker_id(), this);
    }
  }

 private:
  const CostModel& costs_;
  RaceDetector* detector_;
  VirtualTime free_at_ = 0;
};

}  // namespace

/// WorkerContext bound to one virtual worker for the duration of a job.
class SimWorkerContext final : public exec::WorkerContext {
 public:
  SimWorkerContext(SimExecutor& exec, int worker,
                   SimExecutor::SimQueryState& query)
      : exec_(exec), worker_(worker), query_(query) {}

  int worker_id() const override { return worker_; }

  VirtualTime Now() const override {
    return exec_.clocks_[static_cast<std::size_t>(worker_)];
  }

  void Charge(VirtualTime ns) override {
    SPARTA_CHECK(ns >= 0);
    exec_.clocks_[static_cast<std::size_t>(worker_)] += ns;
  }

  void ChargePostings(std::uint64_t n) override {
    Charge(static_cast<VirtualTime>(n) *
           exec_.config_.costs.cpu_per_posting);
  }

  void SharedAccess(const void* line, exec::AccessKind kind) override {
    const auto access = kind == exec::AccessKind::kRead
                            ? exec_.coherence_.Read(worker_, line)
                            : exec_.coherence_.Write(worker_, line);
    Charge(access.miss ? exec_.config_.costs.coherence_miss
                       : exec_.config_.costs.l1_hit);
  }

  void StructureAccess(std::size_t structure_bytes, bool write_shared,
                       bool insert) override {
    auto cost = exec_.config_.costs.StructureAccessCost(structure_bytes,
                                                        write_shared);
    if (insert) cost += exec_.config_.costs.map_insert_extra;
    Charge(cost);
  }

  void StructureAccessMany(std::size_t structure_bytes, bool write_shared,
                           std::uint64_t count) override {
    Charge(static_cast<VirtualTime>(count) *
           exec_.config_.costs.StructureAccessCost(structure_bytes,
                                                   write_shared));
  }

  void IoSequential(std::uint64_t offset, std::uint64_t length) override {
    if (length == 0) return;
    const auto& costs = exec_.config_.costs;
    const std::uint64_t first = offset / kPageBytes;
    const std::uint64_t last = (offset + length - 1) / kPageBytes;
    for (std::uint64_t page = first; page <= last; ++page) {
      Charge(exec_.page_cache_.Touch(page) ? costs.page_cache_hit
                                           : costs.ssd_seq_page);
    }
  }

  void IoRandom(std::uint64_t offset) override {
    const auto& costs = exec_.config_.costs;
    Charge(exec_.page_cache_.Touch(offset / kPageBytes)
               ? costs.page_cache_hit
               : costs.ssd_random_page);
  }

  bool ChargeMemory(std::int64_t delta_bytes) override {
    query_.mem_used += delta_bytes;
    return query_.mem_used <= query_.mem_budget;
  }

  void ShadowAccess(const void* addr, exec::AccessKind kind) override {
    // Detector-only: charges no virtual time.
    if (exec_.race_detector_ != nullptr) {
      exec_.race_detector_->OnAccess(worker_, addr, kind);
    }
  }

  void AnnotateAcquire(const void* token) override {
    if (exec_.race_detector_ != nullptr) {
      exec_.race_detector_->OnSyncAcquire(worker_, token);
    }
  }

 private:
  SimExecutor& exec_;
  int worker_;
  SimExecutor::SimQueryState& query_;
};

/// QueryContext facade handed to algorithms.
class SimQuery final : public exec::QueryContext {
 public:
  SimQuery(SimExecutor& exec,
           std::shared_ptr<SimExecutor::SimQueryState> state)
      : exec_(exec), state_(std::move(state)) {}

  void Submit(exec::JobFn job) override {
    exec_.SubmitJob(state_, std::move(job));
  }

  int num_workers() const override { return exec_.config().num_workers; }

  std::unique_ptr<exec::CtxLock> MakeLock() override {
    return std::make_unique<SimLock>(exec_.config().costs,
                                     exec_.race_detector_.get());
  }

  void RunToCompletion() override { exec_.Drain(); }

  VirtualTime start_time() const override { return state_->start; }
  VirtualTime end_time() const override { return state_->end; }

  void AnnotateBenignRace(const void* addr, std::size_t bytes,
                          const char* label) override {
    if (exec_.race_detector_ != nullptr) {
      exec_.race_detector_->AllowRange(addr, bytes, label);
    }
  }

 private:
  SimExecutor& exec_;
  std::shared_ptr<SimExecutor::SimQueryState> state_;
};

SimExecutor::SimExecutor(SimConfig config)
    : config_(config),
      clocks_(static_cast<std::size_t>(config.num_workers), 0),
      page_cache_(config.page_cache_bytes) {
  SPARTA_CHECK(config.num_workers >= 1 &&
               config.num_workers <= kMaxSimWorkers);
  if (config_.race_check) {
    race_detector_ = std::make_unique<RaceDetector>(config_.num_workers);
    coherence_.set_race_detector(race_detector_.get());
  }
}

SimExecutor::~SimExecutor() = default;

std::unique_ptr<exec::QueryContext> SimExecutor::CreateQuery() {
  coherence_.Reset();
  // Heap addresses recycle across queries: stale shadow epochs must not
  // alias a new query's allocations (reports accumulated so far persist).
  if (race_detector_ != nullptr) race_detector_->ResetShadow();
  return CreateQueryAt(SyncBarrier());
}

std::unique_ptr<exec::QueryContext> SimExecutor::CreateQueryAt(
    VirtualTime start) {
  auto state = std::make_shared<SimQueryState>();
  state->start = start;
  state->end = start;
  state->mem_budget = config_.memory_budget_bytes;
  return std::make_unique<SimQuery>(*this, std::move(state));
}

void SimExecutor::SubmitJob(std::shared_ptr<SimQueryState> query,
                            exec::JobFn fn) {
  Job job;
  job.fn = std::move(fn);
  // Jobs submitted from within a job become ready at the submitter's
  // current virtual time; external submissions at the query's admission.
  job.ready = current_worker_ >= 0
                  ? clocks_[static_cast<std::size_t>(current_worker_)]
                  : query->start;
  job.seq = next_seq_++;
  if (race_detector_ != nullptr && current_worker_ >= 0) {
    job.fork = race_detector_->OnJobSubmit(current_worker_);
  }
  job.query = std::move(query);
  jobs_.push(std::move(job));
}

int SimExecutor::PickWorker() const {
  int best = 0;
  for (int w = 1; w < config_.num_workers; ++w) {
    if (clocks_[static_cast<std::size_t>(w)] <
        clocks_[static_cast<std::size_t>(best)]) {
      best = w;
    }
  }
  return best;
}

void SimExecutor::Drain(
    const std::function<bool(VirtualTime)>& admit) {
  bool more_to_admit = static_cast<bool>(admit);
  for (;;) {
    // FCFS admission: top up whenever some workers would sit idle.
    while (more_to_admit &&
           jobs_.size() <
               static_cast<std::size_t>(config_.num_workers)) {
      more_to_admit = admit(IdleTime());
    }
    if (jobs_.empty()) break;

    Job job = jobs_.top();
    jobs_.pop();
    const int w = PickWorker();
    auto& clock = clocks_[static_cast<std::size_t>(w)];
    clock = std::max(clock, job.ready) + config_.costs.job_dispatch;

    current_worker_ = w;
    if (race_detector_ != nullptr) race_detector_->OnJobStart(w, job.fork);
    SimWorkerContext ctx(*this, w, *job.query);
    job.fn(ctx);
    current_worker_ = -1;

    job.query->end = std::max(job.query->end, clock);
  }
}

VirtualTime SimExecutor::GlobalTime() const {
  return *std::max_element(clocks_.begin(), clocks_.end());
}

VirtualTime SimExecutor::IdleTime() const {
  return *std::min_element(clocks_.begin(), clocks_.end());
}

VirtualTime SimExecutor::SyncBarrier() {
  const VirtualTime t = GlobalTime();
  std::fill(clocks_.begin(), clocks_.end(), t);
  return t;
}

}  // namespace sparta::sim

// Cache-line coherence model for small hot shared variables.
//
// Tracks, per 64-byte line, a version counter bumped on every write and
// the last version each virtual worker observed. A worker reading a line
// whose version moved since its last access pays a coherence miss —
// which is precisely the cache-line ping-pong the paper's lazy UB
// updates (§4.3) are designed to avoid, and what makes pNRA slow.
//
// Only registered "small hot" lines go through this model (UB entries,
// flags, thresholds); large structures use the size-based cost in
// CostModel::StructureAccessCost.
#pragma once

#include <array>
#include <cstdint>
#include <unordered_map>

#include "exec/context.h"

namespace sparta::sim {

inline constexpr int kMaxSimWorkers = 32;

class RaceDetector;

class CoherenceModel {
 public:
  /// Outcome of one access: whether this worker pays a miss.
  struct Access {
    bool miss = false;
  };

  Access Read(int worker, const void* addr);
  Access Write(int worker, const void* addr);

  /// Attaches a race detector: every Read/Write event is forwarded to it
  /// as an access at byte granularity (the hinted address, not the
  /// line — distinct variables on one line must not alias in the
  /// checker). Pass nullptr to detach.
  void set_race_detector(RaceDetector* detector) {
    race_detector_ = detector;
  }

  /// Drops all tracked lines (called between queries; heap addresses are
  /// recycled across queries, so stale versions must not leak).
  void Reset() { lines_.clear(); }

  std::size_t tracked_lines() const { return lines_.size(); }

 private:
  struct LineState {
    std::uint64_t version = 0;
    /// Last version observed per worker; 0 = never seen (versions start
    /// at 1).
    std::array<std::uint64_t, kMaxSimWorkers> seen{};
  };

  static std::uintptr_t LineOf(const void* addr) {
    return reinterpret_cast<std::uintptr_t>(addr) >> 6;
  }

  std::unordered_map<std::uintptr_t, LineState> lines_;
  RaceDetector* race_detector_ = nullptr;
};

}  // namespace sparta::sim

// Cache-line coherence model for small hot shared variables.
//
// Tracks, per 64-byte line, a version counter bumped on every write and
// the last version each virtual worker observed. A worker reading a line
// whose version moved since its last access pays a coherence miss —
// which is precisely the cache-line ping-pong the paper's lazy UB
// updates (§4.3) are designed to avoid, and what makes pNRA slow.
//
// Only registered "small hot" lines go through this model (UB entries,
// flags, thresholds); large structures use the size-based cost in
// CostModel::StructureAccessCost.
//
// With a profiler attached (SimConfig::profile), lines are keyed through
// its address-range registry: registered ranges get structure-relative
// keys (so miss counts are independent of allocator layout and per-seed
// reports are byte-identical), and every miss/invalidation is forwarded
// for (structure, phase, worker) attribution.
#pragma once

#include <array>
#include <cstdint>
#include <unordered_map>

#include "exec/context.h"

namespace sparta::obs {
class Profiler;
}  // namespace sparta::obs

namespace sparta::sim {

inline constexpr int kMaxSimWorkers = 32;

class RaceDetector;

class CoherenceModel {
 public:
  /// Outcome of one access: whether this worker pays a miss, and (for
  /// writes) how many remote valid copies the write invalidated.
  struct Access {
    bool miss = false;
    /// A miss whose line was last written on another NUMA domain: the
    /// fill crosses the socket interconnect (always false without a
    /// topology or when the line has no prior writer).
    bool remote = false;
    int copies_invalidated = 0;
  };

  Access Read(int worker, const void* addr);
  Access Write(int worker, const void* addr);

  /// Declares the socket topology: `num_workers` cores split into
  /// `numa_domains` contiguous blocks (CostModel::DomainOfWorker). With
  /// the default 1 domain every access resolves local and the model is
  /// bit-identical to its pre-NUMA behavior.
  void SetTopology(int num_workers, int numa_domains);

  /// Domain of a worker under the declared topology (0 without one).
  int DomainOf(int worker) const {
    if (numa_domains_ <= 1) return 0;
    const int domain = worker * numa_domains_ / num_workers_;
    return domain < numa_domains_ ? domain : numa_domains_ - 1;
  }

  int numa_domains() const { return numa_domains_; }

  /// Attaches a race detector: every Read/Write event is forwarded to it
  /// as an access at byte granularity (the hinted address, not the
  /// line — distinct variables on one line must not alias in the
  /// checker). Pass nullptr to detach.
  void set_race_detector(RaceDetector* detector) {
    race_detector_ = detector;
  }

  /// Attaches a profiler: lines resolve through its range registry and
  /// every access outcome is forwarded for contention attribution. Pass
  /// nullptr to detach.
  void set_profiler(obs::Profiler* profiler) { profiler_ = profiler; }

  /// Drops all tracked lines (called between queries; heap addresses are
  /// recycled across queries, so stale versions must not leak).
  void Reset() { lines_.clear(); }

  std::size_t tracked_lines() const { return lines_.size(); }

 private:
  struct LineState {
    std::uint64_t version = 0;
    /// Worker that produced the current version (-1 = no writer yet);
    /// its domain decides whether a miss fill crosses sockets.
    int last_writer = -1;
    /// Last version observed per worker; 0 = never seen (versions start
    /// at 1).
    std::array<std::uint64_t, kMaxSimWorkers> seen{};
  };

  static std::uint64_t LineOf(const void* addr) {
    return static_cast<std::uint64_t>(
        reinterpret_cast<std::uintptr_t>(addr) >> 6);
  }

  std::unordered_map<std::uint64_t, LineState> lines_;
  RaceDetector* race_detector_ = nullptr;
  obs::Profiler* profiler_ = nullptr;
  int num_workers_ = kMaxSimWorkers;
  int numa_domains_ = 1;
};

}  // namespace sparta::sim

#include "sim/fault_injector.h"

namespace sparta::sim {

using exec::VirtualTime;

VirtualTime FaultInjector::OnJobDispatch(int worker, VirtualTime now) {
  if (!Draw(config_.stall_prob)) return 0;
  // Uniform in [stall/2, 3*stall/2): stragglers vary, but stay the same
  // order of magnitude so tail-latency curves are interpretable.
  const auto base = static_cast<std::uint64_t>(config_.stall_ns);
  const VirtualTime stall = static_cast<VirtualTime>(
      base / 2 + rng_.Below(base > 1 ? base : 1));
  events_.push_back({Kind::kStall, worker, now, stall});
  return stall;
}

VirtualTime FaultInjector::OnSsdRead(int worker, VirtualTime now) {
  if (!Draw(config_.io_spike_prob)) return 0;
  events_.push_back({Kind::kIoSpike, worker, now, config_.io_spike_ns});
  return config_.io_spike_ns;
}

int FaultInjector::IoFailures() {
  int failures = 0;
  while (failures <= config_.io_retry_limit && Draw(config_.io_error_prob)) {
    ++failures;
  }
  return failures;
}

void FaultInjector::LogIoError(int worker, VirtualTime now,
                               VirtualTime extra_cost) {
  events_.push_back({Kind::kIoError, worker, now, extra_cost});
}

VirtualTime FaultInjector::OnLockRelease(int worker, VirtualTime now) {
  if (!Draw(config_.lock_preempt_prob)) return 0;
  events_.push_back(
      {Kind::kLockPreempt, worker, now, config_.lock_preempt_ns});
  return config_.lock_preempt_ns;
}

bool FaultInjector::OnMergeAbort(int worker, VirtualTime now) {
  if (!Draw(config_.merge_abort_prob)) return false;
  events_.push_back({Kind::kMergeAbort, worker, now, 0});
  return true;
}

bool FaultInjector::OnMergeWrite(int worker, VirtualTime now) {
  if (!Draw(config_.torn_write_prob)) return false;
  events_.push_back({Kind::kTornWrite, worker, now, 0});
  return true;
}

void FaultInjector::LogMemSqueeze(int worker, VirtualTime now) {
  events_.push_back({Kind::kMemSqueeze, worker, now, 0});
}

FaultInjector::NetFault FaultInjector::OnNetMessage(int src_node,
                                                    int dst_node,
                                                    VirtualTime now) {
  NetFault fault;
  // Partition is a deterministic config window: no RNG is consumed, so
  // adding a partition to a config cannot shift the delay/drop stream.
  if (config_.Partitioned(src_node, now) !=
      config_.Partitioned(dst_node, now)) {
    events_.push_back({Kind::kPartitionDrop, dst_node, now, 0});
    fault.dropped = true;
    return fault;
  }
  if (Draw(config_.net_drop_prob)) {
    events_.push_back({Kind::kNetDrop, dst_node, now, 0});
    fault.dropped = true;
    return fault;
  }
  if (Draw(config_.net_delay_prob)) {
    const auto base = static_cast<std::uint64_t>(config_.net_delay_ns);
    fault.delay = static_cast<VirtualTime>(base / 2 +
                                           rng_.Below(base > 1 ? base : 1));
    events_.push_back({Kind::kNetDelay, dst_node, now, fault.delay});
  }
  return fault;
}

void FaultInjector::LogNodeCrash(int node, VirtualTime at) {
  events_.push_back({Kind::kNodeCrash, node, at, 0});
}

void FaultInjector::LogNodeRestart(int node, VirtualTime at) {
  events_.push_back({Kind::kNodeRestart, node, at, 0});
}

}  // namespace sparta::sim

#include "sim/coherence.h"

#include "obs/profiler.h"
#include "sim/race_detector.h"
#include "util/common.h"

namespace sparta::sim {

void CoherenceModel::SetTopology(int num_workers, int numa_domains) {
  // More domains than workers is legal (a small query on a big box):
  // DomainOf simply never produces the unpopulated domains.
  SPARTA_CHECK(num_workers >= 1 && num_workers <= kMaxSimWorkers);
  SPARTA_CHECK(numa_domains >= 1 && numa_domains <= kMaxSimWorkers);
  num_workers_ = num_workers;
  numa_domains_ = numa_domains;
}

CoherenceModel::Access CoherenceModel::Read(int worker, const void* addr) {
  SPARTA_CHECK(worker >= 0 && worker < kMaxSimWorkers);
  if (race_detector_ != nullptr) {
    race_detector_->OnAccess(worker, addr, exec::AccessKind::kRead);
  }
  obs::Profiler::Resolution where;
  if (profiler_ != nullptr) where = profiler_->Resolve(addr);
  const std::uint64_t key =
      profiler_ != nullptr ? where.line_key : LineOf(addr);
  LineState& line = lines_[key];
  if (line.version == 0) line.version = 1;  // first sighting of this line
  Access access;
  access.miss = line.seen[static_cast<std::size_t>(worker)] != line.version;
  // The fill is sourced from the last writer's cache; a writer on the
  // other socket means the line crosses the interconnect.
  access.remote = access.miss && line.last_writer >= 0 &&
                  DomainOf(line.last_writer) != DomainOf(worker);
  line.seen[static_cast<std::size_t>(worker)] = line.version;
  if (profiler_ != nullptr) {
    profiler_->OnSharedAccess(worker, where, exec::AccessKind::kRead,
                              access.miss, 0, access.remote);
  }
  return access;
}

CoherenceModel::Access CoherenceModel::Write(int worker, const void* addr) {
  SPARTA_CHECK(worker >= 0 && worker < kMaxSimWorkers);
  if (race_detector_ != nullptr) {
    race_detector_->OnAccess(worker, addr, exec::AccessKind::kWrite);
  }
  obs::Profiler::Resolution where;
  if (profiler_ != nullptr) where = profiler_->Resolve(addr);
  const std::uint64_t key =
      profiler_ != nullptr ? where.line_key : LineOf(addr);
  LineState& line = lines_[key];
  Access access;
  // Writing a line someone else touched since our last write/read is a
  // request-for-ownership (invalidate) round trip.
  access.miss = line.version != 0 &&
                line.seen[static_cast<std::size_t>(worker)] != line.version;
  access.remote = access.miss && line.last_writer >= 0 &&
                  DomainOf(line.last_writer) != DomainOf(worker);
  // Remote workers holding the current version lose their copy.
  for (int w = 0; w < kMaxSimWorkers; ++w) {
    if (w != worker &&
        line.seen[static_cast<std::size_t>(w)] == line.version &&
        line.version != 0) {
      ++access.copies_invalidated;
    }
  }
  ++line.version;
  line.last_writer = worker;
  line.seen.fill(0);  // everyone else is invalidated
  line.seen[static_cast<std::size_t>(worker)] = line.version;
  if (profiler_ != nullptr) {
    profiler_->OnSharedAccess(worker, where, exec::AccessKind::kWrite,
                              access.miss, access.copies_invalidated,
                              access.remote);
  }
  return access;
}

}  // namespace sparta::sim

#include "sim/coherence.h"

#include "sim/race_detector.h"
#include "util/common.h"

namespace sparta::sim {

CoherenceModel::Access CoherenceModel::Read(int worker, const void* addr) {
  SPARTA_CHECK(worker >= 0 && worker < kMaxSimWorkers);
  if (race_detector_ != nullptr) {
    race_detector_->OnAccess(worker, addr, exec::AccessKind::kRead);
  }
  LineState& line = lines_[LineOf(addr)];
  if (line.version == 0) line.version = 1;  // first sighting of this line
  Access access;
  access.miss = line.seen[static_cast<std::size_t>(worker)] != line.version;
  line.seen[static_cast<std::size_t>(worker)] = line.version;
  return access;
}

CoherenceModel::Access CoherenceModel::Write(int worker, const void* addr) {
  SPARTA_CHECK(worker >= 0 && worker < kMaxSimWorkers);
  if (race_detector_ != nullptr) {
    race_detector_->OnAccess(worker, addr, exec::AccessKind::kWrite);
  }
  LineState& line = lines_[LineOf(addr)];
  Access access;
  // Writing a line someone else touched since our last write/read is a
  // request-for-ownership (invalidate) round trip.
  access.miss = line.version != 0 &&
                line.seen[static_cast<std::size_t>(worker)] != line.version;
  ++line.version;
  line.seen.fill(0);  // everyone else is invalidated
  line.seen[static_cast<std::size_t>(worker)] = line.version;
  return access;
}

}  // namespace sparta::sim

#include "sim/coherence.h"

#include "obs/profiler.h"
#include "sim/race_detector.h"
#include "util/common.h"

namespace sparta::sim {

CoherenceModel::Access CoherenceModel::Read(int worker, const void* addr) {
  SPARTA_CHECK(worker >= 0 && worker < kMaxSimWorkers);
  if (race_detector_ != nullptr) {
    race_detector_->OnAccess(worker, addr, exec::AccessKind::kRead);
  }
  obs::Profiler::Resolution where;
  if (profiler_ != nullptr) where = profiler_->Resolve(addr);
  const std::uint64_t key =
      profiler_ != nullptr ? where.line_key : LineOf(addr);
  LineState& line = lines_[key];
  if (line.version == 0) line.version = 1;  // first sighting of this line
  Access access;
  access.miss = line.seen[static_cast<std::size_t>(worker)] != line.version;
  line.seen[static_cast<std::size_t>(worker)] = line.version;
  if (profiler_ != nullptr) {
    profiler_->OnSharedAccess(worker, where, exec::AccessKind::kRead,
                              access.miss, 0);
  }
  return access;
}

CoherenceModel::Access CoherenceModel::Write(int worker, const void* addr) {
  SPARTA_CHECK(worker >= 0 && worker < kMaxSimWorkers);
  if (race_detector_ != nullptr) {
    race_detector_->OnAccess(worker, addr, exec::AccessKind::kWrite);
  }
  obs::Profiler::Resolution where;
  if (profiler_ != nullptr) where = profiler_->Resolve(addr);
  const std::uint64_t key =
      profiler_ != nullptr ? where.line_key : LineOf(addr);
  LineState& line = lines_[key];
  Access access;
  // Writing a line someone else touched since our last write/read is a
  // request-for-ownership (invalidate) round trip.
  access.miss = line.version != 0 &&
                line.seen[static_cast<std::size_t>(worker)] != line.version;
  // Remote workers holding the current version lose their copy.
  for (int w = 0; w < kMaxSimWorkers; ++w) {
    if (w != worker &&
        line.seen[static_cast<std::size_t>(w)] == line.version &&
        line.version != 0) {
      ++access.copies_invalidated;
    }
  }
  ++line.version;
  line.seen.fill(0);  // everyone else is invalidated
  line.seen[static_cast<std::size_t>(worker)] = line.version;
  if (profiler_ != nullptr) {
    profiler_->OnSharedAccess(worker, where, exec::AccessKind::kWrite,
                              access.miss, access.copies_invalidated);
  }
  return access;
}

}  // namespace sparta::sim

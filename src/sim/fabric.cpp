#include "sim/fabric.h"

#include "util/common.h"

namespace sparta::sim {

const LinkModel& Fabric::Link(int src, int dst) const {
  for (const LinkOverride& o : config_.overrides) {
    if (o.src == src && o.dst == dst) return o.link;
  }
  return config_.default_link;
}

exec::VirtualTime Fabric::TransferTime(int src, int dst,
                                       std::uint64_t bytes) const {
  const LinkModel& link = Link(src, dst);
  SPARTA_CHECK(link.bytes_per_ns > 0.0);
  const auto stream = static_cast<exec::VirtualTime>(
      static_cast<double>(bytes) / link.bytes_per_ns);
  return link.latency_ns + stream;
}

}  // namespace sparta::sim

// OS page-cache model over the (virtual) on-disk index file.
//
// The paper flushes the page cache before each experiment so that every
// run pays real SSD reads (§5.1). Here the flush is a deterministic
// Reset(): the first touch of every 4 KB page costs an SSD read, later
// touches cost a page-cache hit, and an LRU bound models a RAM-limited
// cache (relevant when the index exceeds memory, as ClueWebX10's does).
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

#include "exec/context.h"
#include "util/serial_domain.h"
#include "util/thread_annotations.h"

namespace sparta::sim {

inline constexpr std::uint64_t kPageBytes = 4096;

/// Single-threaded by construction: only the simulator's host thread
/// touches the cache (from IoSequential/IoRandom charging), which the
/// SerialDomain capability makes checkable.
class PageCache {
 public:
  /// capacity_bytes == 0 means unbounded (everything stays cached).
  explicit PageCache(std::uint64_t capacity_bytes = 0)
      : capacity_pages_(capacity_bytes / kPageBytes) {}

  /// Touches one page; returns true if it was a cache hit.
  bool Touch(std::uint64_t page_id);

  /// Flushes the cache (paper: "prior to each experiment, we flush the
  /// file system's page cache").
  void Reset();

  std::uint64_t pages_cached() const {
    const util::SerialGuard guard(domain_);
    return map_.size();
  }
  std::uint64_t hits() const {
    const util::SerialGuard guard(domain_);
    return hits_;
  }
  std::uint64_t misses() const {
    const util::SerialGuard guard(domain_);
    return misses_;
  }

 private:
  mutable util::SerialDomain domain_;
  std::uint64_t capacity_pages_;  // 0 = unbounded
  // LRU: most-recent at front.
  std::list<std::uint64_t> lru_ SPARTA_GUARDED_BY(domain_);
  std::unordered_map<std::uint64_t, std::list<std::uint64_t>::iterator>
      map_ SPARTA_GUARDED_BY(domain_);
  std::uint64_t hits_ SPARTA_GUARDED_BY(domain_) = 0;
  std::uint64_t misses_ SPARTA_GUARDED_BY(domain_) = 0;
};

}  // namespace sparta::sim

#include "sim/page_cache.h"

namespace sparta::sim {

bool PageCache::Touch(std::uint64_t page_id) {
  const util::SerialGuard guard(domain_);
  const auto it = map_.find(page_id);
  if (it != map_.end()) {
    ++hits_;
    // Move-to-front only when bounded; unbounded caches never evict, so
    // recency order is irrelevant and the splice would be pure overhead.
    if (capacity_pages_ != 0) {
      lru_.splice(lru_.begin(), lru_, it->second);
    }
    return true;
  }
  ++misses_;
  lru_.push_front(page_id);
  map_.emplace(page_id, lru_.begin());
  if (capacity_pages_ != 0 && map_.size() > capacity_pages_) {
    map_.erase(lru_.back());
    lru_.pop_back();
  }
  return false;
}

void PageCache::Reset() {
  const util::SerialGuard guard(domain_);
  lru_.clear();
  map_.clear();
  hits_ = 0;
  misses_ = 0;
}

}  // namespace sparta::sim

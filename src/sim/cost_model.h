// Cost model of the simulated machine.
//
// Models a mid-tier multi-core server of the paper's era (12-core Xeon
// E5620, 24 GB RAM, SATA SSD, §5.1). Constants are in nanoseconds of
// virtual time. The *shape* of every experiment comes from the
// algorithms' real access patterns; these constants only set the scale.
// Calibration notes live in EXPERIMENTS.md.
#pragma once

#include <cstddef>
#include <cstdint>

#include "exec/context.h"

namespace sparta::sim {

struct CostModel {
  // --- CPU ---
  /// Decode + arithmetic per posting evaluated (integer scoring, §5.2).
  exec::VirtualTime cpu_per_posting = 4;
  /// Fixed overhead of picking up a job from the queue.
  exec::VirtualTime job_dispatch = 400;

  // --- memory hierarchy ---
  exec::VirtualTime l1_hit = 1;
  exec::VirtualTime l2_hit = 5;
  exec::VirtualTime llc_hit = 18;
  exec::VirtualTime dram_access = 65;
  /// Reading a line invalidated by a remote writer (coherence miss).
  exec::VirtualTime coherence_miss = 80;
  /// Hash-map entry allocation (node + rehash amortization).
  exec::VirtualTime map_insert_extra = 35;

  /// Capacities deciding which level a structure of a given size
  /// effectively lives in. Write-shared structures are priced at least
  /// at LLC (lines bounce between cores and are never L1/L2-stable).
  std::size_t l1_bytes = 32 * 1024;
  std::size_t l2_bytes = 256 * 1024;
  std::size_t llc_bytes = 12 * 1024 * 1024;

  // --- synchronization ---
  exec::VirtualTime lock_uncontended = 25;
  /// Extra cost paid by a worker that finds the lock held (on top of
  /// waiting for the holder's release in virtual time).
  exec::VirtualTime lock_handoff = 60;

  // --- storage (SATA-era SSD) ---
  /// 4 KB page, sequential streaming (~500 MB/s).
  exec::VirtualTime ssd_seq_page = 8'000;
  /// 4 KB page, random read (~80 us: queueless SATA-SSD latency).
  exec::VirtualTime ssd_random_page = 80'000;
  /// Page-cache hit (kernel copy / TLB).
  exec::VirtualTime page_cache_hit = 250;

  /// Cost of one access to a structure of `bytes` total size.
  exec::VirtualTime StructureAccessCost(std::size_t bytes,
                                        bool write_shared) const {
    exec::VirtualTime cost;
    if (bytes <= l1_bytes) {
      cost = l1_hit;
    } else if (bytes <= l2_bytes) {
      cost = l2_hit;
    } else if (bytes <= llc_bytes) {
      cost = llc_hit;
    } else {
      cost = dram_access;
    }
    if (write_shared && cost < llc_hit) cost = llc_hit;
    return cost;
  }
};

}  // namespace sparta::sim

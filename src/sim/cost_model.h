// Cost model of the simulated machine.
//
// Models a mid-tier multi-core server of the paper's era (12-core Xeon
// E5620, 24 GB RAM, SATA SSD, §5.1). Constants are in nanoseconds of
// virtual time. The *shape* of every experiment comes from the
// algorithms' real access patterns; these constants only set the scale.
// Calibration notes live in EXPERIMENTS.md.
#pragma once

#include <cstddef>
#include <cstdint>

#include "exec/context.h"

namespace sparta::sim {

struct CostModel {
  // --- CPU ---
  /// Decode + arithmetic per posting evaluated (integer scoring, §5.2).
  exec::VirtualTime cpu_per_posting = 4;
  /// Fixed overhead of picking up a job from the queue.
  exec::VirtualTime job_dispatch = 400;

  // --- memory hierarchy ---
  exec::VirtualTime l1_hit = 1;
  exec::VirtualTime l2_hit = 5;
  exec::VirtualTime llc_hit = 18;
  exec::VirtualTime dram_access = 65;
  /// Reading a line invalidated by a remote writer (coherence miss).
  exec::VirtualTime coherence_miss = 80;
  /// Hash-map entry allocation (node + rehash amortization).
  exec::VirtualTime map_insert_extra = 35;

  // --- NUMA (socket topology) ---
  /// Sockets of the simulated machine. 1 (the default) models the
  /// paper's single-socket view: every NUMA hook degenerates to the
  /// pre-NUMA cost and runs stay bit-identical. With >1 domains,
  /// workers are split into contiguous blocks (DomainOfWorker) and the
  /// two remote premiums below start to apply.
  int numa_domains = 1;
  /// Coherence miss served from another socket's cache (the line's last
  /// writer sits across the interconnect): snoop + QPI/UPI hop.
  exec::VirtualTime remote_coherence_miss = 140;
  /// DRAM access to a page homed on another socket's memory controller.
  exec::VirtualTime remote_dram_access = 105;

  /// Home domain of worker `w` on a machine with `num_workers` cores in
  /// play: contiguous blocks (cores 0..n/2-1 = socket 0), mirroring how
  /// cores enumerate on real multi-socket parts. Pure arithmetic on ids,
  /// never addresses, so domain keys are allocator-independent.
  int DomainOfWorker(int w, int num_workers) const {
    if (numa_domains <= 1 || num_workers <= 0) return 0;
    const int domain =
        w * numa_domains / (num_workers < numa_domains ? numa_domains
                                                       : num_workers);
    return domain < numa_domains ? domain : numa_domains - 1;
  }

  /// Home domain of stripe `index` out of `count` round-striped
  /// structures (docMap stripes): stripes interleave across domains the
  /// way first-touch interleaved allocation places them. Id-based, so
  /// the placement is identical on every run and host.
  int DomainOfStripe(std::size_t index, std::size_t count) const {
    if (numa_domains <= 1 || count == 0) return 0;
    return static_cast<int>(index % static_cast<std::size_t>(numa_domains));
  }

  /// Capacities deciding which level a structure of a given size
  /// effectively lives in. Write-shared structures are priced at least
  /// at LLC (lines bounce between cores and are never L1/L2-stable).
  std::size_t l1_bytes = 32 * 1024;
  std::size_t l2_bytes = 256 * 1024;
  std::size_t llc_bytes = 12 * 1024 * 1024;

  // --- synchronization ---
  exec::VirtualTime lock_uncontended = 25;
  /// Extra cost paid by a worker that finds the lock held (on top of
  /// waiting for the holder's release in virtual time).
  exec::VirtualTime lock_handoff = 60;

  // --- storage (SATA-era SSD) ---
  /// 4 KB page, sequential streaming (~500 MB/s).
  exec::VirtualTime ssd_seq_page = 8'000;
  /// 4 KB page, random read (~80 us: queueless SATA-SSD latency).
  exec::VirtualTime ssd_random_page = 80'000;
  /// Page-cache hit (kernel copy / TLB).
  exec::VirtualTime page_cache_hit = 250;

  /// Cost of one access to a structure of `bytes` total size.
  exec::VirtualTime StructureAccessCost(std::size_t bytes,
                                        bool write_shared) const {
    exec::VirtualTime cost;
    if (bytes <= l1_bytes) {
      cost = l1_hit;
    } else if (bytes <= l2_bytes) {
      cost = l2_hit;
    } else if (bytes <= llc_bytes) {
      cost = llc_hit;
    } else {
      cost = dram_access;
    }
    if (write_shared && cost < llc_hit) cost = llc_hit;
    return cost;
  }

  /// NUMA-placed variant: only accesses that would go to DRAM pay the
  /// remote premium — cache-resident structures are served by the local
  /// hierarchy wherever their backing pages live, which is exactly why
  /// stripe *placement* matters most for DRAM-sized maps.
  exec::VirtualTime StructureAccessCostHomed(std::size_t bytes,
                                             bool write_shared,
                                             bool remote) const {
    const exec::VirtualTime cost = StructureAccessCost(bytes, write_shared);
    if (remote && cost == dram_access) return remote_dram_access;
    return cost;
  }
};

}  // namespace sparta::sim

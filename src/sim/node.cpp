#include "sim/node.h"

#include <algorithm>
#include <utility>

#include "util/common.h"

namespace sparta::sim {

using exec::VirtualTime;

Node::Node(NodeConfig config) : config_(std::move(config)) {
  SPARTA_CHECK(config_.id >= 0 && config_.id < 64);
  executor_ = std::make_unique<SimExecutor>(config_.sim);
}

void Node::HostShard(int shard_id,
                     std::shared_ptr<const index::InvertedIndex> index) {
  SPARTA_CHECK(index != nullptr);
  SPARTA_CHECK(shards_.count(shard_id) == 0);
  ShardState state;
  state.index = index;
  index::IndexSnapshot snap;
  snap.main = std::move(index);
  snap.delta_doc_base = snap.main->num_docs();
  snap.epoch = 1;
  state.epochs = std::make_unique<index::EpochManager>(std::move(snap));
  shards_.emplace(shard_id, std::move(state));
}

void Node::ScheduleCrash(VirtualTime crash_at, VirtualTime restart_at) {
  SPARTA_CHECK(restart_at == exec::kNever || restart_at > crash_at);
  crash_at_ = crash_at;
  restart_at_ = restart_at;
}

bool Node::up(VirtualTime now) const {
  if (crash_at_ == exec::kNever || now < crash_at_) return true;
  return restart_at_ != exec::kNever && now >= restart_at_;
}

void Node::MaybeRestart(VirtualTime now) {
  if (restarted_ || restart_at_ == exec::kNever || now < restart_at_) return;
  // The machine comes back cold: fresh executor (empty page cache,
  // zeroed clocks) advanced to the restart instant. The shards survive
  // on disk, so their epoch managers — and the proof that every pin
  // from before the crash was released — carry over.
  executor_ = std::make_unique<SimExecutor>(config_.sim);
  executor_->AdvanceTo(restart_at_);
  for (auto& [shard_id, state] : shards_) state.epochs->Collect();
  restarted_ = true;
  ++cold_restarts_;
}

index::EpochManager& Node::epoch_manager(int shard_id) {
  auto it = shards_.find(shard_id);
  SPARTA_CHECK(it != shards_.end());
  return *it->second.epochs;
}

Node::ShardReply Node::Execute(int shard_id, const topk::Algorithm& algo,
                               const std::vector<TermId>& terms,
                               const topk::SearchParams& params,
                               VirtualTime arrival,
                               std::uint64_t query_record,
                               std::uint64_t shard_attempt) {
  ShardReply reply;
  if (!up(arrival)) return reply;
  MaybeRestart(arrival);

  auto it = shards_.find(shard_id);
  SPARTA_CHECK(it != shards_.end());
  ShardState& state = it->second;

  auto ctx = executor_->CreateQueryAt(arrival);
  index::EpochManager::Pin pin = state.epochs->Acquire();
  topk::SearchResult result =
      core::SearchSnapshot(algo, *pin, terms, params, *ctx);
  const VirtualTime done = ctx->end_time();

  // The machine-local view of the request, correlated with the cluster
  // trace through the coordinator's payload. Serving track: the span
  // brackets worker activity rather than being charged to one worker.
  if (auto* tracer = executor_->tracer()) {
    tracer->AddSpan(tracer->serving_track(),
                    obs::SpanKind::kShardService, arrival, done,
                    query_record, shard_attempt);
  }
  if (auto* recorder = executor_->flight_recorder()) {
    recorder->AddSpan(recorder->serving_track(),
                      obs::SpanKind::kShardService, arrival, done,
                      query_record, shard_attempt);
  }

  const bool died_in_flight = crash_at_ != exec::kNever &&
                              arrival < crash_at_ && done > crash_at_;
  pin.Release();
  state.epochs->Collect();
  if (died_in_flight) {
    // The response never left the box. The work above still computed a
    // result natively, but the simulated machine lost it at crash_at_;
    // the pin release above models the process dying with its pins.
    ++killed_in_flight_;
    return reply;
  }
  ++served_;
  reply.responded = true;
  reply.result = std::move(result);
  reply.completed = done;
  return reply;
}

}  // namespace sparta::sim

// Deterministic discrete-event executor: the simulated multi-core.
//
// Executes the same job-queue-structured algorithms as the threaded
// executor, but on *virtual* workers with per-worker virtual clocks.
// Jobs are dispatched FIFO (by readiness time) to the least-loaded
// worker; the job body runs natively and accrues virtual time through
// the WorkerContext cost hooks (CPU, cache/coherence, locks, SSD pages).
// A query's latency is the completion time of its last job — so parallel
// speedup, lock serialization, cache-line ping-pong and I/O stalls all
// emerge from the algorithms' real behavior, deterministically and
// independently of host hardware. This is the substrate on which every
// figure of the paper is regenerated (see DESIGN.md §1).
//
// Fidelity note: workers interleave at *job* granularity (a job runs to
// completion natively while its virtual interval may overlap others').
// Jobs are posting-list segments of ~1K postings, i.e. tens of
// microseconds of virtual time, so shared-state staleness stays in the
// same order as on real hardware.
//
// Determinism note: result sets and work counts are bit-reproducible.
// Virtual latencies are reproducible to ~0.1%: the coherence model keys
// cache lines by real addresses, and heap-allocation alignment decides
// which lines small shared variables straddle run-to-run.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <queue>
#include <vector>

#include "exec/context.h"
#include "obs/flight_recorder.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "sim/coherence.h"
#include "sim/cost_model.h"
#include "sim/fault_injector.h"
#include "sim/page_cache.h"

namespace sparta::sim {

class RaceDetector;

struct SimConfig {
  int num_workers = 12;
  CostModel costs;
  /// Page-cache capacity in bytes; 0 = unbounded (index fits in RAM).
  std::uint64_t page_cache_bytes = 0;
  /// Modeled per-query memory budget; exceeding it makes ChargeMemory
  /// return false (the "crashed due to lack of memory" cells).
  std::int64_t memory_budget_bytes =
      std::numeric_limits<std::int64_t>::max();
  /// Runs the deterministic race detector alongside the cost model (see
  /// sim/race_detector.h). Detection hooks charge no virtual time;
  /// result sets and reports are unaffected, and latencies agree with
  /// detector-off runs up to the heap-layout jitter noted above (the
  /// detector's shadow allocations shift coherence-line addresses).
  bool race_check = false;
  /// Seeded deterministic fault plan (see sim/fault_injector.h). The
  /// default plan is inert: no injector is constructed and every fault
  /// hook reduces to a null check, so fault-free runs stay bit-identical
  /// to builds without the fault layer.
  FaultConfig faults;
  /// Query-lifecycle tracing (see obs/trace.h). Off by default: no
  /// tracer is constructed and every emission site reduces to a null
  /// check, so untraced runs stay bit-identical to builds without the
  /// observability layer. Trace hooks never charge virtual time, so
  /// traced runs produce the same results and latencies; event payloads
  /// avoid addresses, so with an address-independent cost model
  /// (costs.coherence_miss == costs.l1_hit) the exported trace is
  /// byte-identical across runs of the same seed.
  obs::TraceConfig trace;
  /// Contention + virtual-time sampling profiler (see obs/profiler.h).
  /// Off by default: no profiler is constructed and every hook reduces
  /// to a null check, so unprofiled runs stay bit-identical to builds
  /// without the profiling layer. Profiler hooks never charge virtual
  /// time; with profiling on, coherence lines of registered ranges are
  /// keyed structure-relative instead of by heap address, so the same
  /// seed yields byte-identical contention reports and folded stacks
  /// (and latencies lose the ~0.1% allocator-layout jitter noted above,
  /// at the price of differing from profiler-off runs unless the cost
  /// model is address-independent: costs.coherence_miss == costs.l1_hit).
  obs::ProfilerConfig profile;
  /// Always-on flight recorder (see obs/flight_recorder.h). Off by
  /// default: no recorder is constructed and every emission site
  /// reduces to a null check, so recorder-off runs stay bit-identical
  /// to builds without it. Unlike the tracer, the recorder models its
  /// own cost: each machine-context event charges
  /// `flight.record_cost_ns` of virtual time, so recorder-on runs are
  /// deterministically slower by exactly the recording overhead (the
  /// bench_obs_overhead gate keeps that under 5%).
  obs::FlightRecorderConfig flight;
};

class SimExecutor {
 public:
  explicit SimExecutor(SimConfig config);
  ~SimExecutor();

  SimExecutor(const SimExecutor&) = delete;
  SimExecutor& operator=(const SimExecutor&) = delete;

  /// Creates a query that owns the machine from "now": all worker clocks
  /// are synchronized to a common barrier time, which becomes the
  /// query's start (latency mode). Also resets coherence tracking.
  std::unique_ptr<exec::QueryContext> CreateQuery();

  /// Creates a query admitted at time `start` while the machine keeps
  /// running (throughput mode; no barrier, no coherence reset).
  std::unique_ptr<exec::QueryContext> CreateQueryAt(exec::VirtualTime start);

  /// Runs submitted jobs until none remain. `admit`, when provided, is
  /// invoked whenever queued jobs < num_workers (i.e. some workers are
  /// idle — the paper's FCFS scheduling rule, §5.1) with the current
  /// idle time; it may submit more work and returns false once there is
  /// nothing left to admit.
  void Drain(const std::function<bool(exec::VirtualTime)>& admit = nullptr);

  /// Max over worker clocks.
  exec::VirtualTime GlobalTime() const;
  /// Min over worker clocks (when the next worker would go idle).
  exec::VirtualTime IdleTime() const;

  /// Synchronizes all worker clocks to GlobalTime() and returns it.
  exec::VirtualTime SyncBarrier();

  /// Raises every worker clock to at least `t`. Used when a simulated
  /// node rejoins the cluster: its machine was dark between crash and
  /// restart, so all of its workers resume no earlier than the restart
  /// instant. No-op for clocks already past `t`.
  void AdvanceTo(exec::VirtualTime t);

  PageCache& page_cache() { return page_cache_; }
  CoherenceModel& coherence() { return coherence_; }
  const SimConfig& config() const { return config_; }

  /// Non-null iff `SimConfig::race_check` is set.
  RaceDetector* race_detector() const { return race_detector_.get(); }

  /// Non-null iff `SimConfig::faults.enabled()`. Exposes the fault log
  /// for determinism tests and the degradation benchmark.
  FaultInjector* fault_injector() const { return fault_injector_.get(); }

  /// Non-null iff `SimConfig::trace.enabled`. Tracks 0..W-1 are the
  /// workers, W the scheduler (queue waits), W+1 the serving layer.
  obs::Tracer* tracer() const { return tracer_.get(); }

  /// Non-null iff `SimConfig::profile.enabled()`.
  obs::Profiler* profiler() const { return profiler_.get(); }

  /// Non-null iff `SimConfig::flight.enabled`. Same track layout as the
  /// tracer: 0..W-1 workers, W scheduler, W+1 serving.
  obs::FlightRecorder* flight_recorder() const {
    return flight_recorder_.get();
  }

 private:
  friend class SimQuery;
  friend class SimWorkerContext;
  friend class SimLock;

  struct SimQueryState;
  struct Job {
    exec::JobFn fn;
    exec::VirtualTime ready = 0;
    std::uint64_t seq = 0;
    /// Race-detector fork token (0 = external submission, no fork edge).
    std::uint64_t fork = 0;
    std::shared_ptr<SimQueryState> query;
  };
  struct JobLater {
    bool operator()(const Job& a, const Job& b) const {
      if (a.ready != b.ready) return a.ready > b.ready;
      return a.seq > b.seq;
    }
  };

  void SubmitJob(std::shared_ptr<SimQueryState> query, exec::JobFn fn);
  int PickWorker() const;

  SimConfig config_;
  std::vector<exec::VirtualTime> clocks_;
  std::priority_queue<Job, std::vector<Job>, JobLater> jobs_;
  std::uint64_t next_seq_ = 0;
  CoherenceModel coherence_;
  PageCache page_cache_;
  std::unique_ptr<RaceDetector> race_detector_;
  std::unique_ptr<FaultInjector> fault_injector_;
  std::unique_ptr<obs::Tracer> tracer_;
  std::unique_ptr<obs::Profiler> profiler_;
  std::unique_ptr<obs::FlightRecorder> flight_recorder_;
  /// Deterministic ids stamped into trace events in place of addresses.
  std::uint64_t next_query_id_ = 0;
  std::uint64_t next_lock_id_ = 0;

  /// Worker currently executing a job (-1 outside Drain); used to stamp
  /// readiness of jobs submitted from inside jobs.
  int current_worker_ = -1;
};

}  // namespace sparta::sim

// Network fabric cost model for the simulated cluster.
//
// Nodes exchange messages (shard requests, shard responses) over
// point-to-point links priced latency + size/bandwidth, the same
// two-parameter model ScaleStore uses for its RDMA fabric and the
// natural network analogue of the SSD model's seek + streaming split.
// The fabric itself is pure arithmetic — deterministic, stateless —
// while everything that can go *wrong* with a message (injected delay,
// drop, partition) is drawn from the cluster's seeded FaultInjector in
// event order, so fault runs replay bit-identically (DESIGN.md §7).
//
// Per-link overrides express asymmetric topologies: a slow or lossy
// link to one replica, a cross-rack hop with higher base latency. The
// coordinator endpoint is addressed as kCoordinatorNode.
#pragma once

#include <cstdint>
#include <vector>

#include "exec/context.h"

namespace sparta::sim {

/// The coordinator's endpoint id in link addressing (node ids are >= 0).
inline constexpr int kCoordinatorNode = -1;

/// One direction of one link: base propagation+switching latency plus a
/// streaming bandwidth term.
struct LinkModel {
  /// One-way base latency (per message, size-independent).
  exec::VirtualTime latency_ns = 50'000;  // 50 us: same-DC RTT/2
  /// Streaming bandwidth in bytes per nanosecond (1.25 == 10 Gbit/s).
  double bytes_per_ns = 1.25;
};

/// Override of the default link for the (src, dst) pair, directional.
struct LinkOverride {
  int src = kCoordinatorNode;
  int dst = 0;
  LinkModel link;
};

struct FabricConfig {
  LinkModel default_link;
  std::vector<LinkOverride> overrides;
};

class Fabric {
 public:
  explicit Fabric(FabricConfig config) : config_(std::move(config)) {}

  /// The link model in effect for src -> dst.
  const LinkModel& Link(int src, int dst) const;

  /// Virtual transfer time of a `bytes`-sized message src -> dst
  /// (latency + bytes/bandwidth), before any injected network faults.
  exec::VirtualTime TransferTime(int src, int dst,
                                 std::uint64_t bytes) const;

  const FabricConfig& config() const { return config_; }

 private:
  FabricConfig config_;
};

}  // namespace sparta::sim

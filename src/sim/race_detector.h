// Deterministic hybrid lockset + vector-clock race detector.
//
// Piggybacks on the simulator's existing instrumentation surface:
//   * CoherenceModel::Read/Write — every SharedAccess-hinted access to a
//     small hot shared variable (UB entries, flags, thresholds);
//   * WorkerContext::ShadowAccess — zero-cost detector-only events for
//     granular structures priced through StructureAccess (the docMap's
//     stripe tables);
//   * SimLock Lock/Unlock        — lockset maintenance plus FastTrack
//     release→acquire happens-before edges;
//   * SubmitJob/Drain            — fork edges from a submitting job to
//     the jobs it spawns (Algorithm 1's self-replenishing segments).
//
// Because the discrete-event executor runs jobs in a deterministic host
// order, the detector is deterministic too: the same query produces the
// same report set on every run — which is what makes it usable as a CI
// gate (ThreadSanitizer, by contrast, only flags the interleavings it
// happens to observe).
//
// Shadow state per address (Eraser/FastTrack lineage):
//   * last-writer epoch (worker, clock) + the lockset held at the write;
//   * a read-share set: per reading worker, the read epoch and lockset.
// Two accesses to the same address race when (a) neither happens-before
// the other under the fork/lock-edge vector clocks AND (b) their
// locksets are disjoint. Violations are reported with the address,
// offending workers, access kinds and both held locksets.
//
// False-positive policy: intentional benign races on atomics (the
// paper's lazy UB reads, done flags, pBMW's shared Θ) are suppressed via
// QueryContext::AnnotateBenignRace allowlist ranges; suppressed
// detections are counted, not reported. See DESIGN.md §6.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <set>
#include <string>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "sim/coherence.h"
#include "util/serial_domain.h"
#include "util/thread_annotations.h"

namespace sparta::sim {

/// One detected data-race / lock-discipline violation: an unordered,
/// lockset-disjoint pair of accesses to the same address.
struct RaceReport {
  const void* addr = nullptr;
  /// Label of the annotated range containing `addr` (empty if none).
  std::string label;
  /// Byte offset of `addr` within the labeled range (0 if unlabeled).
  std::ptrdiff_t offset = 0;

  int prior_worker = -1;
  int worker = -1;
  exec::AccessKind prior_kind = exec::AccessKind::kRead;
  exec::AccessKind kind = exec::AccessKind::kRead;
  /// Stable lock ids (assigned in first-acquire order) held at each
  /// access — deterministic across runs, unlike lock addresses.
  std::vector<int> prior_locks;
  std::vector<int> locks;

  /// Address-free rendering: identical across runs of the same query
  /// (heap addresses are not reproducible; everything else is).
  std::string Describe() const;
};

class RaceDetector {
 public:
  explicit RaceDetector(int num_workers);

  // --- event hooks (wired by SimExecutor) ------------------------------

  /// Access to `addr` by `worker` (from CoherenceModel or ShadowAccess).
  void OnAccess(int worker, const void* addr, exec::AccessKind kind);
  /// Lock acquire: joins the lock's clock into the worker's and pushes
  /// the lock onto the worker's held set.
  void OnLockAcquire(int worker, const void* lock);
  /// Lock release: publishes the worker's clock into the lock's.
  void OnLockRelease(int worker, const void* lock);
  /// Fork edge source: snapshots the submitting worker's clock. Returns
  /// a token to pass to OnJobStart; 0 = no edge (external submission).
  std::uint64_t OnJobSubmit(int worker);
  /// Fork edge sink: joins the snapshot taken at submit time into the
  /// worker about to run the job.
  void OnJobStart(int worker, std::uint64_t fork_token);
  /// Declares that every critical section completed so far under `token`
  /// (a lock used as a release point) happens-before this worker's next
  /// access — the docMap freeze protocol's acquire side (DESIGN.md §6).
  void OnSyncAcquire(int worker, const void* token);

  // --- annotations ------------------------------------------------------

  /// Allowlists [addr, addr+bytes): detections there are counted as
  /// suppressed instead of reported.
  void AllowRange(const void* addr, std::size_t bytes, std::string label);
  /// Labels [addr, addr+bytes) for reporting without suppressing.
  void LabelRange(const void* addr, std::size_t bytes, std::string label);

  // --- results ----------------------------------------------------------

  /// All unsuppressed violations, in detection order (deterministic).
  const std::vector<RaceReport>& reports() const {
    const util::SerialGuard guard(domain_);
    return reports_;
  }
  /// Count of detections inside allowlisted ranges.
  std::uint64_t suppressed() const {
    const util::SerialGuard guard(domain_);
    return suppressed_;
  }

  /// Drops all shadow/synchronization state and annotations (reports
  /// persist). Called between latency-mode queries: heap addresses are
  /// recycled, so stale epochs must not leak across queries.
  void ResetShadow();

 private:
  using Clock = std::uint64_t;
  using VectorClock = std::array<Clock, kMaxSimWorkers>;
  using LockSet = std::vector<const void*>;

  struct AccessRecord {
    Clock clock = 0;
    LockSet locks;
  };
  struct Shadow {
    int writer = -1;
    AccessRecord write;
    /// Latest read per worker since the last write.
    std::vector<std::pair<int, AccessRecord>> reads;
  };
  struct Range {
    std::uintptr_t lo = 0;
    std::uintptr_t hi = 0;
    std::string label;
    bool allow = false;
  };

  const Range* FindRange(const void* addr) const SPARTA_REQUIRES(domain_);
  int LockId(const void* lock) SPARTA_REQUIRES(domain_);
  /// True if the recorded access happens-before `worker`'s current epoch.
  bool OrderedBefore(const AccessRecord& prior, int prior_worker,
                     int worker) const SPARTA_REQUIRES(domain_);
  static bool Disjoint(const LockSet& a, const LockSet& b);
  void Report(const void* addr, int prior_worker,
              exec::AccessKind prior_kind, const AccessRecord& prior,
              int worker, exec::AccessKind kind) SPARTA_REQUIRES(domain_);
  std::vector<int> LockIds(const LockSet& locks) SPARTA_REQUIRES(domain_);

  /// The detector runs on the simulator's single host thread; every
  /// public hook enters this domain, and all shadow state is guarded.
  mutable util::SerialDomain domain_;
  int num_workers_;
  std::array<VectorClock, kMaxSimWorkers> vc_ SPARTA_GUARDED_BY(domain_){};
  std::array<LockSet, kMaxSimWorkers> held_ SPARTA_GUARDED_BY(domain_);
  /// Release clocks of locks and sync tokens.
  std::unordered_map<const void*, VectorClock> sync_vc_
      SPARTA_GUARDED_BY(domain_);
  std::unordered_map<std::uint64_t, VectorClock> fork_vc_
      SPARTA_GUARDED_BY(domain_);
  std::uint64_t next_fork_ SPARTA_GUARDED_BY(domain_) = 0;

  std::unordered_map<const void*, Shadow> shadow_ SPARTA_GUARDED_BY(domain_);
  std::vector<Range> ranges_ SPARTA_GUARDED_BY(domain_);
  std::unordered_map<const void*, int> lock_ids_ SPARTA_GUARDED_BY(domain_);

  /// Dedup: one report per (addr, worker pair, kind pair).
  std::set<std::tuple<const void*, int, int, int, int>> seen_
      SPARTA_GUARDED_BY(domain_);
  std::vector<RaceReport> reports_ SPARTA_GUARDED_BY(domain_);
  std::uint64_t suppressed_ SPARTA_GUARDED_BY(domain_) = 0;
};

}  // namespace sparta::sim

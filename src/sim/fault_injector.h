// Deterministic fault injection for the simulated machine.
//
// A seeded fault plan perturbs the discrete-event executor the way a
// flaky production box perturbs a real one: worker stalls (stragglers,
// charged as virtual-time freezes at job dispatch), SSD read-latency
// spikes and transient read errors (retried with exponential backoff,
// priced in virtual time, escalating to StopCause::kFault once the
// retry budget is exhausted), lock-holder preemption (the release is
// delayed, so waiters stall), and mid-query memory-budget squeezes
// (ChargeMemory starts failing partway through a query).
//
// Determinism: all draws come from one util::Rng consumed in the
// executor's (deterministic) event order, so the same SimConfig — seed
// included — produces a bit-identical fault log, virtual-time trace,
// statuses, and result sets. That makes fault runs CI-gateable exactly
// like the race detector (DESIGN.md §7). With a default FaultConfig the
// injector is not even constructed and every fault path compiles down
// to a null-pointer check, preserving pre-fault-layer traces bit for
// bit.
#pragma once

#include <cstdint>
#include <vector>

#include "exec/context.h"
#include "util/rng.h"

namespace sparta::sim {

struct FaultConfig {
  /// Seed of the fault plan. Two runs with the same config replay the
  /// same faults at the same virtual times.
  std::uint64_t seed = 1;

  // --- worker stalls (stragglers) ---
  /// Probability that a job dispatch freezes its worker first (an OS
  /// preemption / frequency dip / noisy neighbor).
  double stall_prob = 0.0;
  /// Stall length drawn uniformly from [stall_ns/2, 3*stall_ns/2).
  exec::VirtualTime stall_ns = 2 * exec::kMillisecond;

  // --- storage faults ---
  /// Probability that an SSD page read takes a latency spike on top of
  /// its device cost (GC pause / queueing, Lin et al. 2019).
  double io_spike_prob = 0.0;
  exec::VirtualTime io_spike_ns = 400'000;  // 0.4 ms
  /// Probability that an SSD page read fails transiently. Each failed
  /// attempt re-pays the device cost plus an exponentially growing
  /// backoff; after io_retry_limit failed attempts the read escalates
  /// to StopCause::kFault instead of blocking forever.
  double io_error_prob = 0.0;
  int io_retry_limit = 3;
  exec::VirtualTime io_retry_backoff_ns = 20'000;  // doubles per attempt

  // --- lock-holder preemption ---
  /// Probability that a lock holder is preempted just before release,
  /// extending the hold (and every waiter's stall) by lock_preempt_ns.
  double lock_preempt_prob = 0.0;
  exec::VirtualTime lock_preempt_ns = 100'000;  // 0.1 ms

  // --- live-index merge faults ---
  /// Probability that a merge crashes right before its segment write
  /// (power loss / OOM-kill mid-merge). The merge aborts, the published
  /// snapshot stays, and the frozen delta is retried later.
  double merge_abort_prob = 0.0;
  /// Probability that the merge's segment write is torn: the temporary
  /// file is corrupted after writing, so checksum validation must reject
  /// it and the publish rolls back (build-then-swap never promotes it).
  double torn_write_prob = 0.0;

  // --- memory-budget squeeze ---
  /// If set (!= kNever): once a query has been running this long, its
  /// memory budget is multiplied by mem_squeeze_factor (a co-tenant
  /// ballooning mid-query). Queries over the squeezed budget take the
  /// kOom path — with anytime semantics, returning their partial top-k.
  exec::VirtualTime mem_squeeze_after = exec::kNever;
  double mem_squeeze_factor = 1.0;

  // --- network faults (cluster serving; sim/fabric.h) ---
  /// Probability that one fabric message takes an extra queueing delay
  /// on top of its link cost (congested switch, kernel softirq storm).
  double net_delay_prob = 0.0;
  /// Delay drawn uniformly from [net_delay_ns/2, 3*net_delay_ns/2).
  exec::VirtualTime net_delay_ns = 500'000;  // 0.5 ms
  /// Probability that one fabric message is silently dropped. The
  /// coordinator only learns via its per-shard deadline.
  double net_drop_prob = 0.0;

  // --- network partition (deterministic window, no draw) ---
  /// During [partition_from, partition_until), every message between a
  /// node in `partition_nodes` (bitmask of node ids; the coordinator is
  /// never partitioned) and any endpoint outside the set is dropped.
  exec::VirtualTime partition_from = exec::kNever;
  exec::VirtualTime partition_until = exec::kNever;
  std::uint64_t partition_nodes = 0;

  // --- node crash/restart (deterministic schedule, no draw) ---
  /// If crash_node >= 0: that node fail-stops at crash_at — in-flight
  /// shard requests never answer, snapshot pins are released — and, if
  /// restart_at != kNever, rejoins at restart_at with a cold cache.
  int crash_node = -1;
  exec::VirtualTime crash_at = exec::kNever;
  exec::VirtualTime restart_at = exec::kNever;

  /// True when any fault source is active; a config with all sources
  /// off never constructs an injector, keeping fault-free runs
  /// bit-identical to pre-fault-layer builds.
  bool enabled() const {
    return stall_prob > 0.0 || io_spike_prob > 0.0 || io_error_prob > 0.0 ||
           lock_preempt_prob > 0.0 || merge_abort_prob > 0.0 ||
           torn_write_prob > 0.0 || mem_squeeze_after != exec::kNever ||
           net_delay_prob > 0.0 || net_drop_prob > 0.0 ||
           partition_from != exec::kNever || crash_node >= 0;
  }

  /// True when `node` is inside the partitioned set at time `now`.
  bool Partitioned(int node, exec::VirtualTime now) const {
    return partition_from != exec::kNever && now >= partition_from &&
           now < partition_until && node >= 0 && node < 64 &&
           (partition_nodes >> node) & 1;
  }
};

class FaultInjector {
 public:
  enum class Kind : std::uint8_t {
    kStall,
    kIoSpike,
    kIoError,
    kLockPreempt,
    kMemSqueeze,
    // Appended (not inserted) so pre-live-update fault logs and golden
    // traces keep their numeric values.
    kMergeAbort,
    kTornWrite,
    // Appended for cluster serving. For network kinds, Event::worker
    // holds the *destination node id* of the affected message
    // (kCoordinatorNode = -1 for responses headed to the coordinator);
    // for kNodeCrash/kNodeRestart it holds the node id.
    kNetDelay,
    kNetDrop,
    kPartitionDrop,
    kNodeCrash,
    kNodeRestart,
  };

  /// One injected fault, in injection order. `cost` is the virtual time
  /// charged (for kIoError: per-read total of retries + backoff; for
  /// kMemSqueeze: 0).
  struct Event {
    Kind kind;
    int worker;
    exec::VirtualTime at;
    exec::VirtualTime cost;

    friend bool operator==(const Event&, const Event&) = default;
  };

  explicit FaultInjector(const FaultConfig& config)
      : config_(config), rng_(config.seed) {}

  /// Straggler probe at job dispatch. Returns the stall to charge
  /// (0 = none).
  exec::VirtualTime OnJobDispatch(int worker, exec::VirtualTime now);

  /// Latency-spike probe for one SSD page read (cache misses only).
  exec::VirtualTime OnSsdRead(int worker, exec::VirtualTime now);

  /// Transient-error probe for one SSD page read: the number of
  /// consecutive failed attempts, capped at io_retry_limit + 1 (a value
  /// above io_retry_limit means the read escalates). `extra_cost` is
  /// logged for the event; the caller computes and charges it.
  int IoFailures();
  void LogIoError(int worker, exec::VirtualTime now,
                  exec::VirtualTime extra_cost);

  /// Lock-holder-preemption probe at lock release. Returns the extra
  /// hold time to charge (0 = none).
  exec::VirtualTime OnLockRelease(int worker, exec::VirtualTime now);

  /// Merge-crash probe, drawn once per merge right before its segment
  /// write. True = the merge aborts (logged as kMergeAbort).
  bool OnMergeAbort(int worker, exec::VirtualTime now);

  /// Torn-write probe, drawn once per merge segment write. True = the
  /// written temporary is corrupted before validation (kTornWrite).
  bool OnMergeWrite(int worker, exec::VirtualTime now);

  /// Records a memory-budget squeeze taking effect on a query.
  void LogMemSqueeze(int worker, exec::VirtualTime now);

  /// Per-message network probe, called once per fabric send in the
  /// cluster's deterministic event order. Checks the partition window
  /// first (no draw), then drop, then delay — at most two RNG draws per
  /// message, so the fault stream replays bit-identically per seed.
  struct NetFault {
    /// Extra delay to add to the link transfer time (0 = none).
    exec::VirtualTime delay = 0;
    /// True = the message never arrives; the sender learns nothing.
    bool dropped = false;
  };
  NetFault OnNetMessage(int src_node, int dst_node, exec::VirtualTime now);

  /// Records a scheduled node fail-stop / rejoin (config-driven, not
  /// drawn — logged so fault logs narrate the full cluster timeline).
  void LogNodeCrash(int node, exec::VirtualTime at);
  void LogNodeRestart(int node, exec::VirtualTime at);

  const FaultConfig& config() const { return config_; }
  const std::vector<Event>& events() const { return events_; }
  std::uint64_t injected() const { return events_.size(); }

 private:
  /// One deterministic Bernoulli draw.
  bool Draw(double p) { return p > 0.0 && rng_.NextDouble() < p; }

  FaultConfig config_;
  util::Rng rng_;
  std::vector<Event> events_;
};

}  // namespace sparta::sim

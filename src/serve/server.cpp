#include "serve/server.h"

#include <algorithm>
#include <deque>

#include "obs/trace.h"
#include "util/common.h"

namespace sparta::serve {
namespace {

using topk::AdmissionOutcome;

/// A failed completion from the breaker's point of view: the machine
/// mangled the query (fault escalation, OOM). Deadline degradation is a
/// policy outcome, not a machine failure, and must not trip the breaker.
bool IsMachineFailure(topk::ResultStatus status) {
  return status == topk::ResultStatus::kPartialAfterFault ||
         status == topk::ResultStatus::kOom;
}

struct Decision {
  AdmissionOutcome outcome = AdmissionOutcome::kAdmitted;
  bool probe = false;
  /// Breaker state observed at decision time (kClosed when disabled),
  /// so the serving loops can trace state flips without re-reading the
  /// (time-advancing, non-const) breaker.
  CircuitBreaker::State breaker_state = CircuitBreaker::State::kClosed;
};

/// Admission + breaker policy shared by the sim and threaded paths; all
/// timestamps are caller-provided, so this is exactly as deterministic
/// as its inputs.
class PolicyState {
 public:
  explicit PolicyState(const ServeConfig& config)
      : config_(config),
        ctrl_(config.admission, config.slo),
        breaker_(config.breaker) {}

  Decision Decide(exec::VirtualTime arrival) {
    Decision d;
    bool half_open = false;
    if (config_.breaker_enabled) {
      d.breaker_state = breaker_.state(arrival);
      switch (d.breaker_state) {
        case CircuitBreaker::State::kOpen:
          d.outcome = AdmissionOutcome::kBreakerDropped;
          return d;
        case CircuitBreaker::State::kHalfOpen:
          if (!breaker_.WouldProbe(arrival)) {
            d.outcome = AdmissionOutcome::kBreakerDropped;
            return d;
          }
          half_open = true;
          break;
        case CircuitBreaker::State::kClosed:
          break;
      }
    }
    d.outcome = ctrl_.Decide(arrival);
    if (d.outcome == AdmissionOutcome::kAdmitted && half_open) {
      // Claim the probe slot only for queries that clear the queue too,
      // so a rejected arrival cannot leak the slot.
      const bool ok = breaker_.Admit(arrival);
      SPARTA_CHECK(ok);
      d.probe = true;
    }
    return d;
  }

  void OnDispatch(exec::VirtualTime now) { ctrl_.OnDispatch(now); }

  void OnComplete(exec::VirtualTime completion, exec::VirtualTime service,
                  topk::ResultStatus status, bool probe) {
    ctrl_.OnComplete(completion, service);
    if (config_.breaker_enabled) {
      if (IsMachineFailure(status)) {
        breaker_.OnFailure(completion, probe);
      } else {
        breaker_.OnSuccess(completion, probe);
      }
    }
  }

  AdmissionController& ctrl() { return ctrl_; }
  const CircuitBreaker& breaker() const { return breaker_; }

 private:
  const ServeConfig& config_;
  AdmissionController ctrl_;
  CircuitBreaker breaker_;
};

/// Serving-track trace emission shared by the sim and threaded paths.
/// Null tracer → every call is a no-op. Admission waits become spans
/// [arrival, dispatch]; policy outcomes become instants at their
/// decision time; rung / breaker-state instants fire only on change.
struct ServeTrace {
  obs::Tracer* tracer = nullptr;
  int track = 0;
  std::size_t last_rung = 0;
  CircuitBreaker::State last_state = CircuitBreaker::State::kClosed;

  explicit ServeTrace(obs::Tracer* t) : tracer(t) {
    if (tracer != nullptr) track = tracer->serving_track();
  }

  void OnDecision(std::size_t record, exec::VirtualTime arrival,
                  const Decision& d, bool breaker_enabled) {
    if (tracer == nullptr) return;
    if (breaker_enabled && d.breaker_state != last_state) {
      tracer->AddInstant(track, obs::InstantKind::kBreakerState, arrival,
                         static_cast<std::uint64_t>(d.breaker_state));
      last_state = d.breaker_state;
    }
    switch (d.outcome) {
      case AdmissionOutcome::kRejectedFull:
        tracer->AddInstant(track, obs::InstantKind::kAdmissionReject,
                           arrival, record);
        break;
      case AdmissionOutcome::kShedPredictedWait:
        tracer->AddInstant(track, obs::InstantKind::kAdmissionShed,
                           arrival, record);
        break;
      case AdmissionOutcome::kBreakerDropped:
        tracer->AddInstant(track, obs::InstantKind::kBreakerDrop, arrival,
                           record);
        break;
      case AdmissionOutcome::kAdmitted:
        break;
    }
  }

  void OnDispatch(std::size_t record, exec::VirtualTime arrival,
                  exec::VirtualTime now, std::size_t rung) {
    if (tracer == nullptr) return;
    tracer->AddSpan(track, obs::SpanKind::kAdmissionWait, arrival, now,
                    record, rung);
    if (rung != last_rung) {
      tracer->AddInstant(track, obs::InstantKind::kLadderRung, now, rung,
                         record);
      last_rung = rung;
    }
  }
};

/// Fills the per-query records shared fields and computes aggregates.
void Finalize(ServeResult& result, const PolicyState& policy,
              exec::VirtualTime slo) {
  result.offered = result.queries.size();
  for (const ServedQuery& q : result.queries) {
    result.horizon = std::max(result.horizon, q.arrival);
    switch (q.outcome) {
      case AdmissionOutcome::kRejectedFull:
        ++result.rejected_full;
        continue;
      case AdmissionOutcome::kShedPredictedWait:
        ++result.shed;
        continue;
      case AdmissionOutcome::kBreakerDropped:
        ++result.breaker_dropped;
        continue;
      case AdmissionOutcome::kAdmitted:
        break;
    }
    ++result.admitted;
    if (q.completion < 0) continue;
    ++result.completed;
    result.queue_wait_ns.Add(q.QueueWait());
    result.e2e_ns.Add(q.EndToEnd());
    result.horizon = std::max(result.horizon, q.completion);
    if (q.result.degraded()) ++result.degraded;
    if (q.result.status == topk::ResultStatus::kPartialAfterFault) {
      ++result.faulted;
    }
    if (q.result.status == topk::ResultStatus::kOom) {
      ++result.oom;
    } else if (slo == exec::kNever || q.EndToEnd() <= slo) {
      ++result.goodput;
    }
  }
  result.breaker_trips = policy.breaker().trips();
  result.breaker_probes = policy.breaker().probes();
}

}  // namespace

ServeResult Server::ServeOnSim(sim::SimExecutor& executor,
                               std::span<const std::vector<TermId>> queries,
                               const topk::SearchParams& base_params) {
  SPARTA_CHECK(!queries.empty());
  const auto arrivals = GenerateArrivals(config_.arrivals);
  ServeResult result;
  result.queries.resize(arrivals.size());
  result.rung_dispatches.assign(
      std::max<std::size_t>(1, config_.ladder.num_rungs()), 0);
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    result.queries[i].arrival = arrivals[i];
    result.queries[i].query_index = i % queries.size();
  }

  PolicyState policy(config_);
  ServeTrace strace(executor.tracer());

  struct Flight {
    std::size_t record = 0;
    std::unique_ptr<exec::QueryContext> ctx;
    std::unique_ptr<topk::QueryRun> run;
  };
  std::vector<Flight> flights;
  flights.reserve(arrivals.size());
  std::vector<std::size_t> active;  // unharvested indices into flights
  std::deque<std::size_t> queue;    // admitted records awaiting dispatch
  std::size_t next_arrival = 0;

  // Completions feed the drain-rate EWMA and the breaker before any
  // decision at or after their completion time. A started query with
  // zero outstanding jobs is finished (jobs only beget jobs while
  // running); batches are processed in completion order so the
  // inter-departure estimate sees real spacing.
  const auto harvest = [&]() {
    std::vector<std::size_t> done;
    for (std::size_t i = 0; i < active.size();) {
      Flight& f = flights[active[i]];
      if (f.ctx->outstanding_jobs() == 0) {
        done.push_back(active[i]);
        active[i] = active.back();
        active.pop_back();
      } else {
        ++i;
      }
    }
    std::sort(done.begin(), done.end(),
              [&](std::size_t a, std::size_t b) {
                const auto ta = flights[a].ctx->end_time();
                const auto tb = flights[b].ctx->end_time();
                return ta != tb ? ta < tb
                                : flights[a].record < flights[b].record;
              });
    for (const std::size_t i : done) {
      Flight& f = flights[i];
      ServedQuery& rec = result.queries[f.record];
      rec.completion = f.ctx->end_time();
      rec.result = f.run->TakeResult();
      rec.result.stats.latency = rec.completion - rec.dispatch;
      rec.result.stats.queue_wait = rec.QueueWait();
      rec.result.stats.admission_outcome = AdmissionOutcome::kAdmitted;
      policy.OnComplete(rec.completion, rec.completion - rec.dispatch,
                        rec.result.status, rec.probe);
    }
  };

  const auto decide = [&](std::size_t idx) {
    ServedQuery& rec = result.queries[idx];
    const Decision d = policy.Decide(rec.arrival);
    rec.outcome = d.outcome;
    rec.probe = d.probe;
    rec.result.stats.admission_outcome = d.outcome;
    strace.OnDecision(idx, rec.arrival, d, config_.breaker_enabled);
    if (d.outcome == AdmissionOutcome::kAdmitted) {
      queue.push_back(idx);
      result.max_queue_depth =
          std::max(result.max_queue_depth, queue.size());
    }
  };

  const auto dispatch = [&](exec::VirtualTime now) {
    const std::size_t rec_idx = queue.front();
    queue.pop_front();
    policy.OnDispatch(now);
    ServedQuery& rec = result.queries[rec_idx];
    rec.dispatch = now;
    // Rung from the post-dispatch occupancy: the pressure the *next*
    // arrival would see, which is what this query's service time
    // contributes to.
    const std::size_t rung =
        config_.ladder.PickRung(policy.ctrl().Occupancy());
    rec.rung = rung;
    ++result.rung_dispatches[std::min(rung,
                                      result.rung_dispatches.size() - 1)];
    strace.OnDispatch(rec_idx, rec.arrival, now, rung);
    topk::SearchParams params = base_params;
    if (config_.deadline_from_slo && config_.slo != exec::kNever) {
      // Slack against the *budgeted* SLO (headroom applied): a query
      // dispatched late gets a deadline that still lands it inside the
      // SLO with margin, not exactly on the boundary.
      const exec::VirtualTime slack = std::max<exec::VirtualTime>(
          1, policy.ctrl().BudgetedSlo() - rec.QueueWait());
      params = config_.ladder.Apply(rung, base_params, config_.slo, slack);
    }
    Flight f;
    f.record = rec_idx;
    f.ctx = executor.CreateQueryAt(now);
    if (params.deadline != exec::kNever) {
      f.ctx->set_deadline(now + params.deadline);
    }
    f.run = algo_.Prepare(index_, queries[rec.query_index], params, *f.ctx);
    f.run->Start();
    active.push_back(flights.size());
    flights.push_back(std::move(f));
  };

  const auto admit = [&](exec::VirtualTime now) -> bool {
    harvest();
    while (next_arrival < arrivals.size() &&
           arrivals[next_arrival] <= now) {
      decide(next_arrival++);
    }
    if (!queue.empty()) {
      dispatch(now);
    } else if (next_arrival < arrivals.size()) {
      // Idle capacity and only future arrivals: bring the next one in
      // on its own schedule (it finds an empty queue, zero wait).
      const exec::VirtualTime at = arrivals[next_arrival];
      decide(next_arrival++);
      if (!queue.empty()) dispatch(at);
    }
    return next_arrival < arrivals.size() || !queue.empty();
  };
  executor.Drain(admit);
  harvest();
  SPARTA_CHECK(queue.empty() && next_arrival == arrivals.size());
  SPARTA_CHECK(active.empty());

  Finalize(result, policy, config_.slo);
  return result;
}

ServeResult Server::ServeOnThreads(
    exec::ThreadedExecutor& executor,
    std::span<const std::vector<TermId>> queries,
    const topk::SearchParams& base_params) {
  SPARTA_CHECK(!queries.empty());
  const auto arrivals = GenerateArrivals(config_.arrivals);
  ServeResult result;
  result.queries.resize(arrivals.size());
  result.rung_dispatches.assign(
      std::max<std::size_t>(1, config_.ladder.num_rungs()), 0);
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    result.queries[i].arrival = arrivals[i];
    result.queries[i].query_index = i % queries.size();
  }

  PolicyState policy(config_);
  // Serving-track events use the emulated serving timeline (arrival
  // schedule + measured service times), self-consistent on their own
  // track even though worker tracks run on the wall clock.
  ServeTrace strace(executor.tracer());
  std::deque<std::size_t> queue;
  std::size_t next_arrival = 0;
  // The pool serves one query at a time (pool-per-query, the paper's
  // latency mode); the serving timeline merges the virtual arrival
  // schedule with measured wall-clock service times.
  exec::VirtualTime server_free = 0;

  const auto decide = [&](std::size_t idx) {
    ServedQuery& rec = result.queries[idx];
    const Decision d = policy.Decide(rec.arrival);
    rec.outcome = d.outcome;
    rec.probe = d.probe;
    rec.result.stats.admission_outcome = d.outcome;
    strace.OnDecision(idx, rec.arrival, d, config_.breaker_enabled);
    if (d.outcome == AdmissionOutcome::kAdmitted) {
      queue.push_back(idx);
      result.max_queue_depth =
          std::max(result.max_queue_depth, queue.size());
    }
  };

  while (next_arrival < arrivals.size() || !queue.empty()) {
    const exec::VirtualTime next_at = next_arrival < arrivals.size()
                                          ? arrivals[next_arrival]
                                          : exec::kNever;
    if (queue.empty() || server_free > next_at) {
      decide(next_arrival++);
      continue;
    }
    const std::size_t rec_idx = queue.front();
    queue.pop_front();
    ServedQuery& rec = result.queries[rec_idx];
    const exec::VirtualTime start = std::max(server_free, rec.arrival);
    policy.OnDispatch(start);
    rec.dispatch = start;
    const std::size_t rung =
        config_.ladder.PickRung(policy.ctrl().Occupancy());
    rec.rung = rung;
    ++result.rung_dispatches[std::min(rung,
                                      result.rung_dispatches.size() - 1)];
    strace.OnDispatch(rec_idx, rec.arrival, start, rung);
    topk::SearchParams params = base_params;
    if (config_.deadline_from_slo && config_.slo != exec::kNever) {
      // Slack against the *budgeted* SLO (headroom applied): a query
      // dispatched late gets a deadline that still lands it inside the
      // SLO with margin, not exactly on the boundary.
      const exec::VirtualTime slack = std::max<exec::VirtualTime>(
          1, policy.ctrl().BudgetedSlo() - rec.QueueWait());
      params = config_.ladder.Apply(rung, base_params, config_.slo, slack);
    }
    auto ctx = executor.CreateQuery();
    if (params.deadline != exec::kNever) {
      // The threaded clock starts at 0 per query, so the relative
      // budget is the absolute deadline.
      ctx->set_deadline(params.deadline);
    }
    auto run = algo_.Prepare(index_, queries[rec.query_index], params, *ctx);
    run->Start();
    ctx->RunToCompletion();
    rec.result = run->TakeResult();
    const exec::VirtualTime service =
        std::max<exec::VirtualTime>(1, ctx->end_time());
    rec.completion = start + service;
    server_free = rec.completion;
    rec.result.stats.latency = service;
    rec.result.stats.queue_wait = rec.QueueWait();
    rec.result.stats.admission_outcome = AdmissionOutcome::kAdmitted;
    policy.OnComplete(rec.completion, service, rec.result.status,
                      rec.probe);
  }

  Finalize(result, policy, config_.slo);
  return result;
}

void AddServeMetrics(const ServeResult& result,
                     obs::MetricsRegistry& reg) {
  reg.GetCounter("serve.offered").Add(result.offered);
  reg.GetCounter("serve.admitted").Add(result.admitted);
  reg.GetCounter("serve.rejected_full").Add(result.rejected_full);
  reg.GetCounter("serve.shed").Add(result.shed);
  reg.GetCounter("serve.breaker_dropped").Add(result.breaker_dropped);
  reg.GetCounter("serve.completed").Add(result.completed);
  reg.GetCounter("serve.degraded").Add(result.degraded);
  reg.GetCounter("serve.faulted").Add(result.faulted);
  reg.GetCounter("serve.oom").Add(result.oom);
  reg.GetCounter("serve.goodput").Add(result.goodput);
  reg.GetCounter("serve.breaker.trips").Add(result.breaker_trips);
  reg.GetCounter("serve.breaker.probes").Add(result.breaker_probes);
  reg.GetGauge("serve.max_queue_depth")
      .Set(static_cast<std::int64_t>(result.max_queue_depth));
  for (std::size_t r = 0; r < result.rung_dispatches.size(); ++r) {
    reg.GetCounter("serve.rung." + std::to_string(r) + ".dispatches")
        .Add(result.rung_dispatches[r]);
  }
  reg.GetHistogram("serve.e2e_ns").Merge(result.e2e_ns);
  reg.GetHistogram("serve.queue_wait_ns").Merge(result.queue_wait_ns);
}

}  // namespace sparta::serve

#include "serve/server.h"

#include <algorithm>
#include <deque>

#include "obs/trace.h"
#include "serve/policy.h"
#include "util/common.h"

namespace sparta::serve {
namespace {

using topk::AdmissionOutcome;

}  // namespace

ServeResult Server::ServeOnSim(sim::SimExecutor& executor,
                               std::span<const std::vector<TermId>> queries,
                               const topk::SearchParams& base_params) {
  SPARTA_CHECK(!queries.empty());
  const auto arrivals = GenerateArrivals(config_.arrivals);
  ServeResult result;
  result.queries.resize(arrivals.size());
  result.rung_dispatches.assign(
      std::max<std::size_t>(1, config_.ladder.num_rungs()), 0);
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    result.queries[i].arrival = arrivals[i];
    result.queries[i].query_index = i % queries.size();
  }

  PolicyState policy(config_);
  ServeTrace strace(executor.tracer());
  obs::FlightRecorder* recorder = executor.flight_recorder();
  std::unique_ptr<SloMonitor> monitor;
  if (config_.slo_monitor.enabled) {
    monitor = std::make_unique<SloMonitor>(config_.slo_monitor,
                                           config_.slo);
  }
  std::uint64_t breaker_trips_seen = 0;

  struct Flight {
    std::size_t record = 0;
    std::unique_ptr<exec::QueryContext> ctx;
    std::unique_ptr<topk::QueryRun> run;
  };
  std::vector<Flight> flights;
  flights.reserve(arrivals.size());
  std::vector<std::size_t> active;  // unharvested indices into flights
  std::deque<std::size_t> queue;    // admitted records awaiting dispatch
  std::size_t next_arrival = 0;

  // Fills a freshly-triggered machine postmortem with the serving
  // loop's state. Read-only (PeekState), so capture never perturbs the
  // run.
  const auto capture = [&](obs::Postmortem* pm, exec::VirtualTime now) {
    if (pm == nullptr) return;
    pm->state.push_back("queue=" + std::to_string(queue.size()) +
                        " active=" + std::to_string(active.size()) +
                        " arrivals_seen=" + std::to_string(next_arrival));
    if (config_.breaker_enabled) {
      const CircuitBreaker& b = policy.breaker();
      pm->state.push_back(
          std::string("breaker=") +
          CircuitBreaker::StateName(b.PeekState(now)) +
          " trips=" + std::to_string(b.trips()));
    }
    obs::MetricsRegistry reg;
    reg.GetGauge("serve.queue_depth")
        .Set(static_cast<std::int64_t>(queue.size()));
    reg.GetGauge("serve.active")
        .Set(static_cast<std::int64_t>(active.size()));
    reg.GetCounter("serve.arrivals_seen").Add(next_arrival);
    pm->metrics = reg.Snapshot();
  };

  // Completions feed the drain-rate EWMA and the breaker before any
  // decision at or after their completion time. A started query with
  // zero outstanding jobs is finished (jobs only beget jobs while
  // running); batches are processed in completion order so the
  // inter-departure estimate sees real spacing.
  const auto harvest = [&]() {
    std::vector<std::size_t> done;
    for (std::size_t i = 0; i < active.size();) {
      Flight& f = flights[active[i]];
      if (f.ctx->outstanding_jobs() == 0) {
        done.push_back(active[i]);
        active[i] = active.back();
        active.pop_back();
      } else {
        ++i;
      }
    }
    std::sort(done.begin(), done.end(),
              [&](std::size_t a, std::size_t b) {
                const auto ta = flights[a].ctx->end_time();
                const auto tb = flights[b].ctx->end_time();
                return ta != tb ? ta < tb
                                : flights[a].record < flights[b].record;
              });
    for (const std::size_t i : done) {
      Flight& f = flights[i];
      ServedQuery& rec = result.queries[f.record];
      rec.completion = f.ctx->end_time();
      rec.result = f.run->TakeResult();
      rec.result.stats.latency = rec.completion - rec.dispatch;
      rec.result.stats.queue_wait = rec.QueueWait();
      rec.result.stats.admission_outcome = AdmissionOutcome::kAdmitted;
      policy.OnComplete(rec.completion, rec.completion - rec.dispatch,
                        rec.result.status, rec.probe);
      if (recorder != nullptr) {
        // Machine anomalies freeze the recorder with the evidence (the
        // query's job/io spans) still in the rings.
        obs::Postmortem* pm = nullptr;
        if (rec.result.status == topk::ResultStatus::kOom) {
          pm = recorder->Trigger(obs::AnomalyKind::kOom, rec.completion,
                                 f.record);
        } else if (rec.result.status ==
                   topk::ResultStatus::kPartialAfterFault) {
          pm = recorder->Trigger(obs::AnomalyKind::kPartialAfterFault,
                                 rec.completion, f.record);
        }
        capture(pm, rec.completion);
      }
      if (config_.breaker_enabled &&
          policy.breaker().trips() > breaker_trips_seen) {
        breaker_trips_seen = policy.breaker().trips();
        if (monitor != nullptr) {
          monitor->OnBreakerState(rec.completion, 1);
        }
        if (recorder != nullptr) {
          recorder->AddInstant(recorder->serving_track(),
                               obs::InstantKind::kBreakerState,
                               rec.completion, breaker_trips_seen);
          capture(recorder->Trigger(obs::AnomalyKind::kBreakerOpen,
                                    rec.completion, breaker_trips_seen),
                  rec.completion);
        }
      }
      if (monitor != nullptr) {
        const bool good =
            rec.result.status != topk::ResultStatus::kOom &&
            (config_.slo == exec::kNever || rec.EndToEnd() <= config_.slo);
        const SloMonitor::Breach breach =
            monitor->OnCompletion(rec.completion, rec.EndToEnd(), good);
        if (breach.fired) {
          if (strace.tracer != nullptr) {
            strace.tracer->AddInstant(strace.track,
                                      obs::InstantKind::kSloBreach,
                                      rec.completion, breach.burn_pm,
                                      breach.bucket);
          }
          if (recorder != nullptr) {
            recorder->AddInstant(recorder->serving_track(),
                                 obs::InstantKind::kSloBreach,
                                 rec.completion, breach.burn_pm,
                                 breach.bucket);
            capture(recorder->Trigger(obs::AnomalyKind::kSloBreach,
                                      rec.completion, breach.burn_pm,
                                      breach.bucket),
                    rec.completion);
          }
        }
      }
    }
  };

  const auto decide = [&](std::size_t idx) {
    ServedQuery& rec = result.queries[idx];
    const Decision d = policy.Decide(rec.arrival);
    rec.outcome = d.outcome;
    rec.probe = d.probe;
    rec.result.stats.admission_outcome = d.outcome;
    strace.OnDecision(idx, rec.arrival, d, config_.breaker_enabled);
    if (monitor != nullptr) monitor->OnOutcome(rec.arrival, d.outcome);
    if (d.outcome == AdmissionOutcome::kAdmitted) {
      queue.push_back(idx);
      result.max_queue_depth =
          std::max(result.max_queue_depth, queue.size());
    }
  };

  const auto dispatch = [&](exec::VirtualTime now) {
    const std::size_t rec_idx = queue.front();
    queue.pop_front();
    policy.OnDispatch(now);
    ServedQuery& rec = result.queries[rec_idx];
    rec.dispatch = now;
    // Rung from the post-dispatch occupancy: the pressure the *next*
    // arrival would see, which is what this query's service time
    // contributes to.
    const std::size_t rung =
        config_.ladder.PickRung(policy.ctrl().Occupancy());
    rec.rung = rung;
    ++result.rung_dispatches[std::min(rung,
                                      result.rung_dispatches.size() - 1)];
    strace.OnDispatch(rec_idx, rec.arrival, now, rung);
    topk::SearchParams params = base_params;
    if (config_.deadline_from_slo && config_.slo != exec::kNever) {
      // Slack against the *budgeted* SLO (headroom applied): a query
      // dispatched late gets a deadline that still lands it inside the
      // SLO with margin, not exactly on the boundary.
      const exec::VirtualTime slack = std::max<exec::VirtualTime>(
          1, policy.ctrl().BudgetedSlo() - rec.QueueWait());
      params = config_.ladder.Apply(rung, base_params, config_.slo, slack);
    }
    Flight f;
    f.record = rec_idx;
    f.ctx = executor.CreateQueryAt(now);
    if (params.deadline != exec::kNever) {
      f.ctx->set_deadline(now + params.deadline);
    }
    f.run = algo_.Prepare(index_, queries[rec.query_index], params, *f.ctx);
    f.run->Start();
    active.push_back(flights.size());
    flights.push_back(std::move(f));
  };

  const auto admit = [&](exec::VirtualTime now) -> bool {
    harvest();
    while (next_arrival < arrivals.size() &&
           arrivals[next_arrival] <= now) {
      decide(next_arrival++);
    }
    if (!queue.empty()) {
      dispatch(now);
    } else if (next_arrival < arrivals.size()) {
      // Idle capacity and only future arrivals: bring the next one in
      // on its own schedule (it finds an empty queue, zero wait).
      const exec::VirtualTime at = arrivals[next_arrival];
      decide(next_arrival++);
      if (!queue.empty()) dispatch(at);
    }
    return next_arrival < arrivals.size() || !queue.empty();
  };
  executor.Drain(admit);
  harvest();
  SPARTA_CHECK(queue.empty() && next_arrival == arrivals.size());
  SPARTA_CHECK(active.empty());

  FinalizeServeResult(result, policy, config_.slo);
  if (monitor != nullptr) {
    result.slo_breaches = monitor->breaches();
    result.series = monitor->series();
  }
  if (recorder != nullptr) result.anomalies = recorder->anomalies();
  return result;
}

ServeResult Server::ServeOnThreads(
    exec::ThreadedExecutor& executor,
    std::span<const std::vector<TermId>> queries,
    const topk::SearchParams& base_params) {
  SPARTA_CHECK(!queries.empty());
  const auto arrivals = GenerateArrivals(config_.arrivals);
  ServeResult result;
  result.queries.resize(arrivals.size());
  result.rung_dispatches.assign(
      std::max<std::size_t>(1, config_.ladder.num_rungs()), 0);
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    result.queries[i].arrival = arrivals[i];
    result.queries[i].query_index = i % queries.size();
  }

  PolicyState policy(config_);
  // Serving-track events use the emulated serving timeline (arrival
  // schedule + measured service times), self-consistent on their own
  // track even though worker tracks run on the wall clock.
  ServeTrace strace(executor.tracer());
  std::unique_ptr<SloMonitor> monitor;
  if (config_.slo_monitor.enabled) {
    monitor = std::make_unique<SloMonitor>(config_.slo_monitor,
                                           config_.slo);
  }
  std::deque<std::size_t> queue;
  std::size_t next_arrival = 0;
  // The pool serves one query at a time (pool-per-query, the paper's
  // latency mode); the serving timeline merges the virtual arrival
  // schedule with measured wall-clock service times.
  exec::VirtualTime server_free = 0;

  const auto decide = [&](std::size_t idx) {
    ServedQuery& rec = result.queries[idx];
    const Decision d = policy.Decide(rec.arrival);
    rec.outcome = d.outcome;
    rec.probe = d.probe;
    rec.result.stats.admission_outcome = d.outcome;
    strace.OnDecision(idx, rec.arrival, d, config_.breaker_enabled);
    if (monitor != nullptr) monitor->OnOutcome(rec.arrival, d.outcome);
    if (d.outcome == AdmissionOutcome::kAdmitted) {
      queue.push_back(idx);
      result.max_queue_depth =
          std::max(result.max_queue_depth, queue.size());
    }
  };

  while (next_arrival < arrivals.size() || !queue.empty()) {
    const exec::VirtualTime next_at = next_arrival < arrivals.size()
                                          ? arrivals[next_arrival]
                                          : exec::kNever;
    if (queue.empty() || server_free > next_at) {
      decide(next_arrival++);
      continue;
    }
    const std::size_t rec_idx = queue.front();
    queue.pop_front();
    ServedQuery& rec = result.queries[rec_idx];
    const exec::VirtualTime start = std::max(server_free, rec.arrival);
    policy.OnDispatch(start);
    rec.dispatch = start;
    const std::size_t rung =
        config_.ladder.PickRung(policy.ctrl().Occupancy());
    rec.rung = rung;
    ++result.rung_dispatches[std::min(rung,
                                      result.rung_dispatches.size() - 1)];
    strace.OnDispatch(rec_idx, rec.arrival, start, rung);
    topk::SearchParams params = base_params;
    if (config_.deadline_from_slo && config_.slo != exec::kNever) {
      // Slack against the *budgeted* SLO (headroom applied): a query
      // dispatched late gets a deadline that still lands it inside the
      // SLO with margin, not exactly on the boundary.
      const exec::VirtualTime slack = std::max<exec::VirtualTime>(
          1, policy.ctrl().BudgetedSlo() - rec.QueueWait());
      params = config_.ladder.Apply(rung, base_params, config_.slo, slack);
    }
    auto ctx = executor.CreateQuery();
    if (params.deadline != exec::kNever) {
      // The threaded clock starts at 0 per query, so the relative
      // budget is the absolute deadline.
      ctx->set_deadline(params.deadline);
    }
    auto run = algo_.Prepare(index_, queries[rec.query_index], params, *ctx);
    run->Start();
    ctx->RunToCompletion();
    rec.result = run->TakeResult();
    const exec::VirtualTime service =
        std::max<exec::VirtualTime>(1, ctx->end_time());
    rec.completion = start + service;
    server_free = rec.completion;
    rec.result.stats.latency = service;
    rec.result.stats.queue_wait = rec.QueueWait();
    rec.result.stats.admission_outcome = AdmissionOutcome::kAdmitted;
    policy.OnComplete(rec.completion, service, rec.result.status,
                      rec.probe);
    if (monitor != nullptr) {
      const bool good =
          rec.result.status != topk::ResultStatus::kOom &&
          (config_.slo == exec::kNever || rec.EndToEnd() <= config_.slo);
      const SloMonitor::Breach breach =
          monitor->OnCompletion(rec.completion, rec.EndToEnd(), good);
      if (breach.fired && strace.tracer != nullptr) {
        strace.tracer->AddInstant(strace.track,
                                  obs::InstantKind::kSloBreach,
                                  rec.completion, breach.burn_pm,
                                  breach.bucket);
      }
    }
  }

  FinalizeServeResult(result, policy, config_.slo);
  if (monitor != nullptr) {
    result.slo_breaches = monitor->breaches();
    result.series = monitor->series();
  }
  return result;
}

void AddServeMetrics(const ServeResult& result,
                     obs::MetricsRegistry& reg) {
  reg.GetCounter("serve.offered").Add(result.offered);
  reg.GetCounter("serve.admitted").Add(result.admitted);
  reg.GetCounter("serve.rejected_full").Add(result.rejected_full);
  reg.GetCounter("serve.shed").Add(result.shed);
  reg.GetCounter("serve.breaker_dropped").Add(result.breaker_dropped);
  reg.GetCounter("serve.completed").Add(result.completed);
  reg.GetCounter("serve.degraded").Add(result.degraded);
  reg.GetCounter("serve.faulted").Add(result.faulted);
  reg.GetCounter("serve.oom").Add(result.oom);
  reg.GetCounter("serve.goodput").Add(result.goodput);
  reg.GetCounter("serve.breaker.trips").Add(result.breaker_trips);
  reg.GetCounter("serve.breaker.probes").Add(result.breaker_probes);
  reg.GetGauge("serve.max_queue_depth")
      .Set(static_cast<std::int64_t>(result.max_queue_depth));
  for (std::size_t r = 0; r < result.rung_dispatches.size(); ++r) {
    reg.GetCounter("serve.rung." + std::to_string(r) + ".dispatches")
        .Add(result.rung_dispatches[r]);
  }
  reg.GetHistogram("serve.e2e_ns").Merge(result.e2e_ns);
  reg.GetHistogram("serve.queue_wait_ns").Merge(result.queue_wait_ns);
}

}  // namespace sparta::serve

// Serving policy machinery shared by the serving loops.
//
// Extracted (verbatim, behavior-preserving) from server.cpp's anonymous
// namespace so the live-update serving loop (serve/live.cpp) and the
// policy unit tests can drive exactly the production decision paths:
// admission + breaker decisions (PolicyState), serving-track trace
// emission (ServeTrace), and per-run aggregate computation
// (FinalizeServeResult).
#pragma once

#include <algorithm>
#include <cstdint>

#include "obs/trace.h"
#include "serve/server.h"
#include "util/common.h"

namespace sparta::serve {

/// A failed completion from the breaker's point of view: the machine
/// mangled the query (fault escalation, OOM). Deadline degradation is a
/// policy outcome, not a machine failure, and must not trip the breaker.
inline bool IsMachineFailure(topk::ResultStatus status) {
  return status == topk::ResultStatus::kPartialAfterFault ||
         status == topk::ResultStatus::kOom;
}

struct Decision {
  topk::AdmissionOutcome outcome = topk::AdmissionOutcome::kAdmitted;
  bool probe = false;
  /// Breaker state observed at decision time (kClosed when disabled),
  /// so the serving loops can trace state flips without re-reading the
  /// (time-advancing, non-const) breaker.
  CircuitBreaker::State breaker_state = CircuitBreaker::State::kClosed;
};

/// Admission + breaker policy shared by the sim and threaded paths; all
/// timestamps are caller-provided, so this is exactly as deterministic
/// as its inputs.
class PolicyState {
 public:
  explicit PolicyState(const ServeConfig& config)
      : config_(config),
        ctrl_(config.admission, config.slo),
        breaker_(config.breaker) {}

  Decision Decide(exec::VirtualTime arrival) {
    Decision d;
    bool half_open = false;
    if (config_.breaker_enabled) {
      d.breaker_state = breaker_.state(arrival);
      switch (d.breaker_state) {
        case CircuitBreaker::State::kOpen:
          d.outcome = topk::AdmissionOutcome::kBreakerDropped;
          return d;
        case CircuitBreaker::State::kHalfOpen:
          if (!breaker_.WouldProbe(arrival)) {
            d.outcome = topk::AdmissionOutcome::kBreakerDropped;
            return d;
          }
          half_open = true;
          break;
        case CircuitBreaker::State::kClosed:
          break;
      }
    }
    d.outcome = ctrl_.Decide(arrival);
    if (d.outcome == topk::AdmissionOutcome::kAdmitted && half_open) {
      // Claim the probe slot only for queries that clear the queue too,
      // so a rejected arrival cannot leak the slot.
      const bool ok = breaker_.Admit(arrival);
      SPARTA_CHECK(ok);
      d.probe = true;
    }
    return d;
  }

  void OnDispatch(exec::VirtualTime now) { ctrl_.OnDispatch(now); }

  void OnComplete(exec::VirtualTime completion, exec::VirtualTime service,
                  topk::ResultStatus status, bool probe) {
    ctrl_.OnComplete(completion, service);
    if (config_.breaker_enabled) {
      if (IsMachineFailure(status)) {
        breaker_.OnFailure(completion, probe);
      } else {
        breaker_.OnSuccess(completion, probe);
      }
    }
  }

  AdmissionController& ctrl() { return ctrl_; }
  const CircuitBreaker& breaker() const { return breaker_; }

 private:
  const ServeConfig& config_;
  AdmissionController ctrl_;
  CircuitBreaker breaker_;
};

/// Serving-track trace emission shared by the sim and threaded paths.
/// Null tracer → every call is a no-op. Admission waits become spans
/// [arrival, dispatch]; policy outcomes become instants at their
/// decision time; rung / breaker-state instants fire only on change.
struct ServeTrace {
  obs::Tracer* tracer = nullptr;
  int track = 0;
  std::size_t last_rung = 0;
  CircuitBreaker::State last_state = CircuitBreaker::State::kClosed;

  explicit ServeTrace(obs::Tracer* t) : tracer(t) {
    if (tracer != nullptr) track = tracer->serving_track();
  }

  void OnDecision(std::size_t record, exec::VirtualTime arrival,
                  const Decision& d, bool breaker_enabled) {
    if (tracer == nullptr) return;
    if (breaker_enabled && d.breaker_state != last_state) {
      tracer->AddInstant(track, obs::InstantKind::kBreakerState, arrival,
                         static_cast<std::uint64_t>(d.breaker_state));
      last_state = d.breaker_state;
    }
    switch (d.outcome) {
      case topk::AdmissionOutcome::kRejectedFull:
        tracer->AddInstant(track, obs::InstantKind::kAdmissionReject,
                           arrival, record);
        break;
      case topk::AdmissionOutcome::kShedPredictedWait:
        tracer->AddInstant(track, obs::InstantKind::kAdmissionShed,
                           arrival, record);
        break;
      case topk::AdmissionOutcome::kBreakerDropped:
        tracer->AddInstant(track, obs::InstantKind::kBreakerDrop, arrival,
                           record);
        break;
      case topk::AdmissionOutcome::kAdmitted:
        break;
    }
  }

  void OnDispatch(std::size_t record, exec::VirtualTime arrival,
                  exec::VirtualTime now, std::size_t rung) {
    if (tracer == nullptr) return;
    tracer->AddSpan(track, obs::SpanKind::kAdmissionWait, arrival, now,
                    record, rung);
    if (rung != last_rung) {
      tracer->AddInstant(track, obs::InstantKind::kLadderRung, now, rung,
                         record);
      last_rung = rung;
    }
  }
};

/// Fills the per-query records' shared fields and computes aggregates.
inline void FinalizeServeResult(ServeResult& result,
                                const PolicyState& policy,
                                exec::VirtualTime slo) {
  result.offered = result.queries.size();
  for (const ServedQuery& q : result.queries) {
    result.horizon = std::max(result.horizon, q.arrival);
    switch (q.outcome) {
      case topk::AdmissionOutcome::kRejectedFull:
        ++result.rejected_full;
        continue;
      case topk::AdmissionOutcome::kShedPredictedWait:
        ++result.shed;
        continue;
      case topk::AdmissionOutcome::kBreakerDropped:
        ++result.breaker_dropped;
        continue;
      case topk::AdmissionOutcome::kAdmitted:
        break;
    }
    ++result.admitted;
    if (q.completion < 0) continue;
    ++result.completed;
    result.queue_wait_ns.Add(q.QueueWait());
    result.e2e_ns.Add(q.EndToEnd());
    result.horizon = std::max(result.horizon, q.completion);
    if (q.result.degraded()) ++result.degraded;
    if (q.result.status == topk::ResultStatus::kPartialAfterFault) {
      ++result.faulted;
    }
    if (q.result.status == topk::ResultStatus::kOom) {
      ++result.oom;
    } else if (slo == exec::kNever || q.EndToEnd() <= slo) {
      ++result.goodput;
    }
  }
  result.breaker_trips = policy.breaker().trips();
  result.breaker_probes = policy.breaker().probes();
}

}  // namespace sparta::serve

// Windowed SLO monitor: burn rate over the serving timeline.
//
// A run-level goodput number says whether the SLO held *on average*; an
// operator needs to know the moment it started failing. The monitor
// buckets every admission outcome and completion into an
// obs::TimeSeries (per virtual second by default) and maintains a
// rolling-window *burn rate*: the observed SLO-violation fraction
// divided by the budgeted one (1 - target). Burn 1.0 means the error
// budget is being spent exactly at the sustainable rate; the alert
// fires when burn crosses `burn_alert` with enough samples in the
// window, and latches until burn drops back under the line so a
// sustained breach reports once, not once per completion.
//
// The monitor is policy-free glue: it owns the series and the breach
// arithmetic but emits nothing itself — the serving loops translate a
// returned Breach into a tracer kSloBreach instant and a flight-
// recorder anomaly trigger (serve/server.cpp, serve/coordinator.cpp).
// Everything is keyed by caller-provided virtual timestamps, so the
// monitor is deterministic given its inputs and unit-testable without
// an executor (tests/test_obs.cpp).
#pragma once

#include <cstdint>

#include "exec/context.h"
#include "obs/timeseries.h"
#include "topk/result.h"

namespace sparta::serve {

struct SloMonitorConfig {
  bool enabled = false;
  /// Series bucket width (also the burn-rate evaluation grain).
  exec::VirtualTime bucket_ns = 1'000'000'000;
  /// Rolling window, in buckets, for the burn rate.
  int window_buckets = 5;
  /// SLO attainment target: the budgeted violation fraction is
  /// 1 - target (e.g. 0.95 budgets 5% of completions over the SLO).
  double target = 0.95;
  /// Breach when burn >= this multiple of the budgeted rate.
  double burn_alert = 2.0;
  /// Completions required in the window before the alert may fire.
  std::uint64_t min_samples = 20;
};

class SloMonitor {
 public:
  /// A newly-fired breach (burn crossed the alert line).
  struct Breach {
    bool fired = false;
    /// Burn rate in per-mille (1000 = spending budget exactly).
    std::uint64_t burn_pm = 0;
    std::uint64_t bucket = 0;
  };

  /// `slo_ns` is the end-to-end SLO completions are judged against.
  SloMonitor(const SloMonitorConfig& config, exec::VirtualTime slo_ns);

  /// Records one arrival's admission outcome.
  void OnOutcome(exec::VirtualTime at, topk::AdmissionOutcome outcome);

  /// Records one completed query: its end-to-end latency and whether it
  /// counted toward goodput (full quality within the SLO). Returns a
  /// Breach with fired=true when this completion pushes the windowed
  /// burn rate over the alert line.
  Breach OnCompletion(exec::VirtualTime at, exec::VirtualTime e2e,
                      bool good);

  /// Level series for breaker state (count of open breakers).
  void OnBreakerState(exec::VirtualTime at, std::int64_t open_count);

  /// Burn rate in per-mille over the window ending at `at`'s bucket.
  std::uint64_t BurnPerMille(exec::VirtualTime at) const;

  const obs::TimeSeries& series() const { return series_; }
  std::uint64_t breaches() const { return breaches_; }
  const SloMonitorConfig& config() const { return config_; }

 private:
  SloMonitorConfig config_;
  exec::VirtualTime slo_ns_;
  obs::TimeSeries series_;
  std::uint64_t breaches_ = 0;
  /// Alert latch: set while burn >= alert, cleared when it recovers.
  bool latched_ = false;
};

}  // namespace sparta::serve

// Circuit breaker: stop feeding a machine that is failing queries.
//
// Fault storms (an SSD throwing persistent read errors, a straggling
// worker pool) make admitted queries come back kPartialAfterFault/kOom.
// Serving through the storm wastes queue capacity on degraded answers;
// the breaker instead trips after `failure_threshold` failures inside a
// sliding window, drops arrivals while open (kBreakerDropped — cheap,
// immediate), and after a cooloff half-opens: single probe queries are
// let through one at a time, and `probe_successes_to_close` consecutive
// successes close the circuit again (one probe failure re-opens it).
//
// All transitions are keyed by caller-provided timestamps — virtual
// time under the simulator ("breaker timers on the virtual clock"),
// wall time on threads — so the state machine is deterministic given
// its inputs and unit-testable without any executor.
#pragma once

#include <cstdint>
#include <deque>

#include "exec/context.h"
#include "util/serial_domain.h"
#include "util/thread_annotations.h"

namespace sparta::serve {

struct BreakerConfig {
  /// Failures within `window_ns` that trip the breaker.
  int failure_threshold = 8;
  exec::VirtualTime window_ns = 50 * exec::kMillisecond;
  /// Open-state cooloff before half-opening.
  exec::VirtualTime open_ns = 20 * exec::kMillisecond;
  /// Consecutive probe successes needed to close from half-open.
  int probe_successes_to_close = 3;
};

class CircuitBreaker {
 public:
  enum class State : std::uint8_t { kClosed, kOpen, kHalfOpen };

  explicit CircuitBreaker(const BreakerConfig& config) : config_(config) {}

  /// Current state after advancing timers to `now`.
  State state(exec::VirtualTime now);

  /// The state an observer at `now` would see, WITHOUT advancing the
  /// machine (state() latches open→half-open as a side effect). Used by
  /// postmortem capture so that dumping a snapshot never perturbs the
  /// serving loop's deterministic replay.
  State PeekState(exec::VirtualTime now) const {
    const util::SerialGuard guard(domain_);
    if (state_ == State::kOpen && now >= opened_at_ + config_.open_ns) {
      return State::kHalfOpen;
    }
    return state_;
  }

  /// Name for state lines in postmortems ("closed"/"open"/"half-open").
  static const char* StateName(State s) {
    switch (s) {
      case State::kClosed: return "closed";
      case State::kOpen: return "open";
      case State::kHalfOpen: return "half-open";
    }
    return "?";
  }

  /// Arrival gate. Closed: always true. Open: false. Half-open: true
  /// for one probe at a time (the probe slot frees on its completion).
  /// A true return in half-open state claims the probe slot — the
  /// caller must report that query's completion with probe = true.
  bool Admit(exec::VirtualTime now);

  /// Whether an Admit() at `now` would be a probe (call before Admit to
  /// tag the query).
  bool WouldProbe(exec::VirtualTime now) {
    const util::SerialGuard guard(domain_);
    return StateLocked(now) == State::kHalfOpen && !probe_in_flight_;
  }

  /// Completion callbacks for admitted queries. Every `Admit`ted query
  /// must report exactly one of these, with `probe` echoing what
  /// WouldProbe() said at its admission (stragglers admitted before a
  /// trip report probe = false and never touch the probe slot).
  void OnSuccess(exec::VirtualTime now, bool probe = false);
  void OnFailure(exec::VirtualTime now, bool probe = false);

  std::uint64_t trips() const {
    const util::SerialGuard guard(domain_);
    return trips_;
  }
  std::uint64_t probes() const {
    const util::SerialGuard guard(domain_);
    return probes_;
  }

 private:
  State StateLocked(exec::VirtualTime now) SPARTA_REQUIRES(domain_);
  void Trip(exec::VirtualTime now) SPARTA_REQUIRES(domain_);

  /// One serving loop drives the whole state machine; the SerialDomain
  /// capability makes that single-mutator contract checkable.
  mutable util::SerialDomain domain_;
  BreakerConfig config_;  // immutable after construction
  State state_ SPARTA_GUARDED_BY(domain_) = State::kClosed;
  /// Failure timestamps inside the sliding window (closed state).
  std::deque<exec::VirtualTime> failures_ SPARTA_GUARDED_BY(domain_);
  exec::VirtualTime opened_at_ SPARTA_GUARDED_BY(domain_) = 0;
  bool probe_in_flight_ SPARTA_GUARDED_BY(domain_) = false;
  int probe_successes_ SPARTA_GUARDED_BY(domain_) = 0;
  std::uint64_t trips_ SPARTA_GUARDED_BY(domain_) = 0;
  std::uint64_t probes_ SPARTA_GUARDED_BY(domain_) = 0;
};

}  // namespace sparta::serve

// Deadline-aware admission control for the serving layer.
//
// Two defenses keep an overloaded tier's queue honest:
//  * reject-on-full — the admission queue is bounded; an arrival that
//    finds it full is turned away immediately (cheap for the server,
//    fast feedback for the client) instead of growing an unbounded
//    backlog;
//  * estimated-wait shedding — even a non-full queue can be a lie: if
//    the predicted wait already forfeits the end-to-end SLO, serving
//    the query burns capacity on an answer nobody will use. The
//    controller predicts wait as queue_depth x the EWMA inter-departure
//    gap (departure spacing is what a FCFS queue drains at, regardless
//    of how much intra-query parallelism each query gets) and sheds
//    arrivals whose predicted completion would land past the SLO.
//
// The controller is pure bookkeeping over timestamps handed to it by
// the caller (virtual time under the simulator, wall time on threads),
// so the same code path is exercised by both executors and is exactly
// as deterministic as its inputs.
#pragma once

#include <cstddef>
#include <cstdint>

#include "exec/context.h"
#include "topk/result.h"
#include "util/serial_domain.h"
#include "util/thread_annotations.h"

namespace sparta::serve {

struct AdmissionConfig {
  /// Bound on queries waiting for dispatch (in-flight queries are not
  /// counted). Arrivals beyond it are rejected.
  std::size_t queue_capacity = 64;
  /// Shed arrivals whose predicted wait + service lands past the SLO.
  bool shed_predicted_wait = true;
  /// EWMA smoothing for the inter-departure and service estimates.
  double ewma_alpha = 0.2;
  /// Fraction of the SLO the shedder budgets for. Admission targets
  /// predicted completion within headroom x SLO, so the queue settles
  /// where completions land comfortably *inside* the SLO instead of
  /// straddling it (prediction noise would otherwise push half the
  /// admitted tail just past the boundary, serving work that no longer
  /// counts as goodput).
  double slo_headroom = 1.0;
  /// Estimates used until the first completions are observed.
  exec::VirtualTime initial_departure_gap_ns = exec::kMillisecond;
  exec::VirtualTime initial_service_ns = exec::kMillisecond;
};

/// Tracks queue depth and drain-rate estimates; decides per arrival.
/// All state lives in one SerialDomain: the serving loop (one
/// SimExecutor drain pass, or the single dispatcher thread) is the only
/// mutator, and the capability makes that contract checkable.
class AdmissionController {
 public:
  AdmissionController(const AdmissionConfig& config, exec::VirtualTime slo)
      : config_(config), slo_(slo),
        departure_gap_(static_cast<double>(config.initial_departure_gap_ns)),
        service_(static_cast<double>(config.initial_service_ns)) {}

  /// Decision for one arrival at time `now`. kAdmitted increments the
  /// queue depth; the caller must pair it with OnDispatch() when the
  /// query leaves the queue. Breaker verdicts are layered on by the
  /// caller *before* consulting the queue (an open breaker drops
  /// traffic regardless of queue state).
  topk::AdmissionOutcome Decide(exec::VirtualTime now);

  /// The queued query picked for execution (depth decrements).
  void OnDispatch(exec::VirtualTime now);

  /// A dispatched query finished; updates the inter-departure EWMA (the
  /// drain-rate signal) and the service-time EWMA.
  void OnComplete(exec::VirtualTime now, exec::VirtualTime service_ns);

  /// Shard-aware capacity scaling (cluster serving): the coordinator
  /// sets this to the live fraction of its backend, shrinking the
  /// effective queue bound — a half-dead cluster drains at half the
  /// rate, so admitting a full queue just converts rejects into SLO
  /// misses. Scale is clamped to [0, 1]; effective capacity never drops
  /// below 1 while any backend is alive.
  void SetCapacityScale(double scale);

  std::size_t queue_depth() const {
    const util::SerialGuard guard(domain_);
    return queue_depth_;
  }
  /// Queue bound currently enforced (capacity x scale).
  std::size_t EffectiveCapacity() const {
    const util::SerialGuard guard(domain_);
    return EffectiveCapacityLocked();
  }
  /// Queue occupancy in [0, 1] — the degradation ladder's input.
  double Occupancy() const {
    const util::SerialGuard guard(domain_);
    const std::size_t capacity = EffectiveCapacityLocked();
    return capacity == 0 ? 0.0
                         : static_cast<double>(queue_depth_) /
                               static_cast<double>(capacity);
  }
  /// Predicted wait for an arrival joining the queue now.
  exec::VirtualTime PredictedWait() const {
    const util::SerialGuard guard(domain_);
    return PredictedWaitLocked();
  }
  exec::VirtualTime EstimatedService() const {
    const util::SerialGuard guard(domain_);
    return EstimatedServiceLocked();
  }
  exec::VirtualTime slo() const { return slo_; }
  /// The end-to-end budget admission and dispatch actually aim for:
  /// headroom x SLO (the SLO itself when headroom is 1).
  exec::VirtualTime BudgetedSlo() const {
    if (slo_ == exec::kNever) return exec::kNever;
    return static_cast<exec::VirtualTime>(config_.slo_headroom *
                                          static_cast<double>(slo_));
  }

 private:
  exec::VirtualTime PredictedWaitLocked() const SPARTA_REQUIRES(domain_) {
    return static_cast<exec::VirtualTime>(
        static_cast<double>(queue_depth_) * departure_gap_);
  }
  exec::VirtualTime EstimatedServiceLocked() const SPARTA_REQUIRES(domain_) {
    return static_cast<exec::VirtualTime>(service_);
  }
  std::size_t EffectiveCapacityLocked() const SPARTA_REQUIRES(domain_) {
    if (capacity_scale_ >= 1.0) return config_.queue_capacity;
    if (capacity_scale_ <= 0.0) return 0;
    const auto scaled = static_cast<std::size_t>(
        static_cast<double>(config_.queue_capacity) * capacity_scale_);
    return scaled > 0 ? scaled : 1;
  }

  mutable util::SerialDomain domain_;
  AdmissionConfig config_;   // immutable after construction
  exec::VirtualTime slo_;    // immutable after construction
  std::size_t queue_depth_ SPARTA_GUARDED_BY(domain_) = 0;
  /// Live-backend fraction set by the cluster coordinator; 1 otherwise.
  double capacity_scale_ SPARTA_GUARDED_BY(domain_) = 1.0;
  /// EWMA of completion spacing, ns.
  double departure_gap_ SPARTA_GUARDED_BY(domain_);
  /// EWMA of per-query service time, ns.
  double service_ SPARTA_GUARDED_BY(domain_);
  exec::VirtualTime last_departure_ SPARTA_GUARDED_BY(domain_) = -1;
};

}  // namespace sparta::serve

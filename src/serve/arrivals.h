// Seeded open-loop arrival processes for the serving layer.
//
// A closed-loop driver (MeasureThroughput) admits a query whenever a
// worker frees up, so the system is never pushed past its own capacity.
// Real traffic does not wait for permission: queries arrive on their own
// schedule and pile up when the machine falls behind. These generators
// produce that schedule — a sorted vector of absolute virtual arrival
// times — deterministically from a seed, so overload experiments replay
// bit-identically (same property the fault plans have, DESIGN.md §7).
//
// Two processes:
//  * Poisson — i.i.d. exponential gaps at `rate_qps`; the memoryless
//    baseline of every queueing model.
//  * Bursty (2-state MMPP) — a Markov-modulated Poisson process that
//    alternates exponential calm/burst sojourns; within each state
//    arrivals are Poisson at the state's rate. Burst-state rate is
//    `burst_rate_factor` times the calm rate, and rates are normalized
//    so the long-run mean equals `rate_qps` — the same offered load as
//    the Poisson plan, delivered in squalls.
#pragma once

#include <cstdint>
#include <vector>

#include "exec/context.h"

namespace sparta::serve {

enum class ArrivalKind : std::uint8_t { kPoisson, kBursty };

struct ArrivalConfig {
  ArrivalKind kind = ArrivalKind::kPoisson;
  /// Seed of the arrival plan; same config => bit-identical schedule.
  std::uint64_t seed = 1;
  /// Long-run mean offered load, queries per (virtual) second. Must be
  /// positive.
  double rate_qps = 1000.0;
  /// Number of arrivals to generate.
  std::size_t count = 100;

  // --- bursty (MMPP) shape, ignored for kPoisson ---
  /// Burst-state arrival rate as a multiple of the calm-state rate.
  double burst_rate_factor = 8.0;
  /// Long-run fraction of time spent in the burst state, in (0, 1).
  double burst_time_fraction = 0.1;
  /// Mean burst sojourn (exponential); calm sojourns are scaled so the
  /// state occupancy matches burst_time_fraction.
  exec::VirtualTime mean_burst_ns = 5 * exec::kMillisecond;
};

/// Absolute arrival times (virtual ns, starting after 0), sorted
/// nondecreasing, deterministic per config.
std::vector<exec::VirtualTime> GenerateArrivals(const ArrivalConfig& config);

}  // namespace sparta::serve

#include "serve/slo_monitor.h"

namespace sparta::serve {

SloMonitor::SloMonitor(const SloMonitorConfig& config,
                       exec::VirtualTime slo_ns)
    : config_(config), slo_ns_(slo_ns),
      series_(obs::TimeSeriesConfig{config.bucket_ns}) {}

void SloMonitor::OnOutcome(exec::VirtualTime at,
                           topk::AdmissionOutcome outcome) {
  series_.AddCount("offered", at);
  switch (outcome) {
    case topk::AdmissionOutcome::kAdmitted:
      series_.AddCount("admitted", at);
      break;
    case topk::AdmissionOutcome::kRejectedFull:
      series_.AddCount("rejected_full", at);
      break;
    case topk::AdmissionOutcome::kShedPredictedWait:
      series_.AddCount("shed", at);
      break;
    case topk::AdmissionOutcome::kBreakerDropped:
      series_.AddCount("breaker_dropped", at);
      break;
  }
}

SloMonitor::Breach SloMonitor::OnCompletion(exec::VirtualTime at,
                                            exec::VirtualTime e2e,
                                            bool good) {
  series_.AddCount("completed", at);
  series_.AddSample("e2e", at, e2e);
  if (good) series_.AddCount("goodput", at);
  if (slo_ns_ != exec::kNever && e2e > slo_ns_) {
    series_.AddCount("slo_violation", at);
  }

  Breach breach;
  breach.bucket = series_.BucketOf(at);
  breach.burn_pm = BurnPerMille(at);
  series_.SetLevel("burn_pm", at,
                   static_cast<std::int64_t>(breach.burn_pm));

  // Count the window's completions for the min-samples gate.
  std::uint64_t total = 0;
  const std::size_t end = series_.BucketOf(at);
  const std::size_t begin =
      end + 1 >= static_cast<std::size_t>(config_.window_buckets)
          ? end + 1 - static_cast<std::size_t>(config_.window_buckets)
          : 0;
  for (std::size_t b = begin; b <= end; ++b) {
    total += series_.Count("completed", b);
  }

  const std::uint64_t alert_pm =
      static_cast<std::uint64_t>(config_.burn_alert * 1000.0);
  const bool over = total >= config_.min_samples &&
                    breach.burn_pm >= alert_pm;
  if (over && !latched_) {
    latched_ = true;
    ++breaches_;
    breach.fired = true;
  } else if (!over) {
    latched_ = false;
  }
  return breach;
}

void SloMonitor::OnBreakerState(exec::VirtualTime at,
                                std::int64_t open_count) {
  series_.SetLevel("breakers_open", at, open_count);
}

std::uint64_t SloMonitor::BurnPerMille(exec::VirtualTime at) const {
  const std::size_t end = series_.BucketOf(at);
  const std::size_t begin =
      end + 1 >= static_cast<std::size_t>(config_.window_buckets)
          ? end + 1 - static_cast<std::size_t>(config_.window_buckets)
          : 0;
  std::uint64_t total = 0;
  std::uint64_t violations = 0;
  for (std::size_t b = begin; b <= end; ++b) {
    total += series_.Count("completed", b);
    violations += series_.Count("slo_violation", b);
  }
  if (total == 0) return 0;
  const double budget = 1.0 - config_.target;
  if (budget <= 0.0) return violations > 0 ? 1'000'000 : 0;
  const double burn = (static_cast<double>(violations) /
                       static_cast<double>(total)) /
                      budget;
  return static_cast<std::uint64_t>(burn * 1000.0 + 0.5);
}

}  // namespace sparta::serve

#include "serve/coordinator.h"

#include <algorithm>
#include <queue>
#include <utility>

#include "serve/policy.h"
#include "util/common.h"

namespace sparta::serve {

using exec::VirtualTime;

Cluster::Cluster(const index::ShardedIndex& sharded,
                 const ClusterConfig& config)
    : sharded_(sharded), config_(config), fabric_(config.fabric) {
  SPARTA_CHECK(sharded.num_shards() == config.num_shards);
  SPARTA_CHECK(config.num_nodes >= 1 && config.num_nodes <= 64);
  SPARTA_CHECK(config.replication >= 1 &&
               config.replication <= config.num_nodes);
  for (int n = 0; n < config.num_nodes; ++n) {
    sim::NodeConfig nc;
    nc.id = n;
    nc.sim = config.node_sim;
    // Salt the node-local fault seed so the same plan applied to every
    // node still yields node-distinct (but replayable) fault streams.
    if (nc.sim.faults.enabled()) {
      nc.sim.faults.seed += static_cast<std::uint64_t>(n);
    }
    for (const ClusterConfig::NodeFaults& nf : config.node_faults) {
      if (nf.node == n) nc.sim.faults = nf.faults;
    }
    nodes_.push_back(std::make_unique<sim::Node>(nc));
  }
  for (int s = 0; s < sharded.num_shards(); ++s) {
    for (int r = 0; r < config.replication; ++r) {
      node(ReplicaNode(s, r))
          .HostShard(s, sharded.shards[static_cast<std::size_t>(s)]);
    }
  }
  const sim::FaultConfig& nf = config.net_faults;
  if (nf.crash_node >= 0) {
    SPARTA_CHECK(nf.crash_node < config.num_nodes);
    SPARTA_CHECK(nf.crash_at != exec::kNever);
    node(nf.crash_node).ScheduleCrash(nf.crash_at, nf.restart_at);
  }
  if (nf.enabled()) injector_ = std::make_unique<sim::FaultInjector>(nf);
  if (config.trace.enabled) {
    tracer_ = std::make_unique<obs::Tracer>(config.num_nodes);
  }
  if (config.flight.enabled) {
    flight_recorder_ = std::make_unique<obs::FlightRecorder>(
        config.num_nodes, config.flight);
  }
}

bool Cluster::NodeReachable(int n, VirtualTime now) const {
  return nodes_[static_cast<std::size_t>(n)]->up(now) &&
         !config_.net_faults.Partitioned(n, now);
}

namespace {

// Modeled wire sizes: a request is a term list plus framing, a response
// a top-k entry list. Only ratios matter — they price large responses
// above small requests in the fabric's bandwidth term.
constexpr std::uint64_t kMsgBytesBase = 64;
constexpr std::uint64_t kReqBytesPerTerm = 8;
constexpr std::uint64_t kRespBytesPerHit = 16;

enum class EventType : std::uint8_t {
  kArrival,
  kSend,     ///< (re)send one shard attempt
  kReply,    ///< shard response reached the coordinator
  kTimeout,  ///< per-attempt deadline expired
  kHedge,    ///< hedge timer fired
  kCrash,    ///< scheduled node fail-stop (log/trace only)
  kRestart,  ///< scheduled node rejoin (log/trace only)
};

struct Event {
  VirtualTime at = 0;
  std::uint64_t seq = 0;
  EventType type = EventType::kArrival;
  std::size_t record = 0;
  int shard = 0;
  std::size_t attempt = 0;  ///< kReply/kTimeout
  int node = 0;             ///< kReply sender; kCrash/kRestart subject
  std::size_t reply = 0;    ///< kReply: index into the reply store
  bool hedge = false;       ///< kSend
};

struct EventLater {
  bool operator()(const Event& a, const Event& b) const {
    if (a.at != b.at) return a.at > b.at;
    return a.seq > b.seq;
  }
};

struct Attempt {
  int replica = 0;  ///< replica ordinal
  int node = -1;
  bool probe = false;
  bool hedge = false;
  /// Breaker outcome delivered (first of reply/timeout wins).
  bool reported = false;
};

struct ShardProgress {
  bool answered = false;
  /// Answered, or every attempt exhausted — the query stops waiting.
  bool resolved = false;
  bool hedge_sent = false;
  int started = 0;  ///< non-hedge attempts consumed
  int next_replica = 0;
  int outstanding = 0;  ///< sent attempts not yet reported
  std::vector<Attempt> attempts;
  topk::SearchResult result;  ///< shard-local ids, valid iff answered
};

struct QueryState {
  bool dispatched = false;
  bool finalized = false;
  VirtualTime dispatch = 0;
  int unresolved = 0;
  std::vector<ShardProgress> shards;
};

/// The whole scatter-gather run: one global deterministic event loop.
class ServeLoop {
 public:
  ServeLoop(Cluster& cluster, const topk::Algorithm& algo,
            std::span<const std::vector<TermId>> queries,
            const topk::SearchParams& base_params,
            std::span<const VirtualTime> arrivals)
      : cluster_(cluster),
        cfg_(cluster.config()),
        algo_(algo),
        queries_(queries),
        params_(base_params),
        arrivals_(arrivals),
        ctrl_(cfg_.admission, cfg_.slo),
        injector_(cluster.fault_injector()),
        tracer_(cluster.tracer()),
        recorder_(cluster.flight_recorder()) {
    SPARTA_CHECK(!queries_.empty());
    if (cfg_.slo_monitor.enabled) {
      monitor_ = std::make_unique<SloMonitor>(cfg_.slo_monitor, cfg_.slo);
    }
    breakers_.reserve(static_cast<std::size_t>(cfg_.num_shards));
    for (int s = 0; s < cfg_.num_shards; ++s) {
      std::vector<CircuitBreaker> row;
      row.reserve(static_cast<std::size_t>(cfg_.replication));
      for (int r = 0; r < cfg_.replication; ++r) {
        row.emplace_back(cfg_.breaker);
      }
      breakers_.push_back(std::move(row));
    }
  }

  ClusterServeResult Run() {
    out_.queries.resize(arrivals_.size());
    states_.resize(arrivals_.size());
    for (std::size_t i = 0; i < arrivals_.size(); ++i) {
      out_.queries[i].query_index = i % queries_.size();
      out_.queries[i].arrival = arrivals_[i];
      Push({.at = arrivals_[i], .type = EventType::kArrival, .record = i});
    }
    const sim::FaultConfig& nf = cfg_.net_faults;
    if (nf.crash_node >= 0) {
      Push({.at = nf.crash_at,
            .type = EventType::kCrash,
            .node = nf.crash_node});
      if (nf.restart_at != exec::kNever) {
        Push({.at = nf.restart_at,
              .type = EventType::kRestart,
              .node = nf.crash_node});
      }
    }
    while (!events_.empty()) {
      const Event ev = events_.top();
      events_.pop();
      Handle(ev);
    }
    FinalizeAggregates();
    return std::move(out_);
  }

 private:
  void Push(Event ev) {
    ev.seq = next_seq_++;
    events_.push(ev);
  }

  void Handle(const Event& ev) {
    switch (ev.type) {
      case EventType::kArrival:
        OnArrival(ev.record, ev.at);
        break;
      case EventType::kSend:
        SendAttempt(ev.record, ev.shard, ev.at, ev.hedge);
        break;
      case EventType::kReply:
        OnReply(ev);
        break;
      case EventType::kTimeout:
        OnTimeout(ev);
        break;
      case EventType::kHedge:
        OnHedge(ev.record, ev.shard, ev.at);
        break;
      case EventType::kCrash:
        if (injector_ != nullptr) injector_->LogNodeCrash(ev.node, ev.at);
        if (tracer_ != nullptr) {
          tracer_->AddInstant(tracer_->scheduler_track(),
                              obs::InstantKind::kNodeCrash, ev.at,
                              static_cast<std::uint64_t>(ev.node));
        }
        if (recorder_ != nullptr) {
          recorder_->AddInstant(recorder_->scheduler_track(),
                                obs::InstantKind::kNodeCrash, ev.at,
                                static_cast<std::uint64_t>(ev.node));
          CapturePostmortem(
              recorder_->Trigger(obs::AnomalyKind::kNodeCrash, ev.at,
                                 static_cast<std::uint64_t>(ev.node)),
              ev.at);
        }
        break;
      case EventType::kRestart:
        if (injector_ != nullptr) injector_->LogNodeRestart(ev.node, ev.at);
        if (tracer_ != nullptr) {
          tracer_->AddInstant(tracer_->scheduler_track(),
                              obs::InstantKind::kNodeRestart, ev.at,
                              static_cast<std::uint64_t>(ev.node));
        }
        if (recorder_ != nullptr) {
          recorder_->AddInstant(recorder_->scheduler_track(),
                                obs::InstantKind::kNodeRestart, ev.at,
                                static_cast<std::uint64_t>(ev.node));
        }
        break;
    }
  }

  double LiveFraction(VirtualTime now) const {
    int reachable = 0;
    for (int n = 0; n < cluster_.num_nodes(); ++n) {
      if (cluster_.NodeReachable(n, now)) ++reachable;
    }
    return static_cast<double>(reachable) /
           static_cast<double>(cluster_.num_nodes());
  }

  void OnArrival(std::size_t record, VirtualTime now) {
    ServedQuery& q = out_.queries[record];
    if (cfg_.shard_aware_admission) {
      ctrl_.SetCapacityScale(LiveFraction(now));
    }
    const topk::AdmissionOutcome outcome = ctrl_.Decide(now);
    q.outcome = outcome;
    q.result.stats.admission_outcome = outcome;
    if (monitor_ != nullptr) monitor_->OnOutcome(now, outcome);
    if (tracer_ != nullptr &&
        outcome != topk::AdmissionOutcome::kAdmitted) {
      tracer_->AddInstant(
          tracer_->serving_track(),
          outcome == topk::AdmissionOutcome::kRejectedFull
              ? obs::InstantKind::kAdmissionReject
              : obs::InstantKind::kAdmissionShed,
          now, record);
    }
    if (recorder_ != nullptr &&
        outcome != topk::AdmissionOutcome::kAdmitted) {
      recorder_->AddInstant(
          recorder_->serving_track(),
          outcome == topk::AdmissionOutcome::kRejectedFull
              ? obs::InstantKind::kAdmissionReject
              : obs::InstantKind::kAdmissionShed,
          now, record);
    }
    if (outcome != topk::AdmissionOutcome::kAdmitted) return;
    pending_.push_back(record);
    TryDispatch(now);
  }

  void TryDispatch(VirtualTime now) {
    while (inflight_ < cfg_.max_inflight && !pending_.empty()) {
      const std::size_t record = pending_.front();
      pending_.erase(pending_.begin());
      ctrl_.OnDispatch(now);
      ++inflight_;
      ServedQuery& sq = out_.queries[record];
      sq.dispatch = now;
      if (tracer_ != nullptr) {
        tracer_->AddSpan(tracer_->serving_track(),
                         obs::SpanKind::kAdmissionWait, sq.arrival, now,
                         record, 0);
      }
      if (recorder_ != nullptr) {
        recorder_->AddSpan(recorder_->serving_track(),
                           obs::SpanKind::kAdmissionWait, sq.arrival, now,
                           record, 0);
      }
      QueryState& q = states_[record];
      q.dispatched = true;
      q.dispatch = now;
      q.unresolved = cfg_.num_shards;
      q.shards.resize(static_cast<std::size_t>(cfg_.num_shards));
      for (int s = 0; s < cfg_.num_shards; ++s) {
        SendAttempt(record, s, now, /*hedge=*/false);
        if (cfg_.hedge_delay != exec::kNever && cfg_.replication > 1) {
          Push({.at = now + cfg_.hedge_delay,
                .type = EventType::kHedge,
                .record = record,
                .shard = s});
        }
      }
    }
  }

  /// Node-side search budget for one attempt: the coordinator's
  /// per-attempt deadline minus the round-trip estimate, floored at
  /// half the deadline so a slow link never starves the search itself.
  VirtualTime NodeBudget(int node, std::size_t num_terms) const {
    const std::uint64_t req =
        kMsgBytesBase + kReqBytesPerTerm * num_terms;
    const std::uint64_t resp =
        kMsgBytesBase +
        kRespBytesPerHit * static_cast<std::uint64_t>(params_.k);
    const VirtualTime rtt =
        cluster_.fabric().TransferTime(sim::kCoordinatorNode, node, req) +
        cluster_.fabric().TransferTime(node, sim::kCoordinatorNode, resp);
    const VirtualTime floor = cfg_.shard_deadline / 2;
    return cfg_.shard_deadline - rtt > floor ? cfg_.shard_deadline - rtt
                                             : floor;
  }

  void SendAttempt(std::size_t record, int shard, VirtualTime now,
                   bool hedge) {
    QueryState& q = states_[record];
    ShardProgress& sp = q.shards[static_cast<std::size_t>(shard)];
    if (q.finalized || sp.answered || sp.resolved) return;

    // Pick the next replica whose breaker will take traffic.
    int chosen = -1;
    bool probe = false;
    for (int i = 0; i < cfg_.replication; ++i) {
      const int r = (sp.next_replica + i) % cfg_.replication;
      if (!cfg_.breaker_enabled) {
        chosen = r;
        break;
      }
      CircuitBreaker& b = Breaker(shard, r);
      const CircuitBreaker::State st = b.state(now);
      if (st == CircuitBreaker::State::kOpen) continue;
      if (st == CircuitBreaker::State::kHalfOpen) {
        if (!b.WouldProbe(now)) continue;
        const bool ok = b.Admit(now);
        SPARTA_CHECK(ok);
        probe = true;
      }
      chosen = r;
      break;
    }
    if (chosen < 0) {
      // Every replica's breaker refused: fail this attempt immediately
      // instead of waiting out a timeout on a known-dead backend.
      ++out_.breaker_skips;
      if (!hedge) {
        ++sp.started;
        MaybeRetryOrExhaust(record, shard, now);
      }
      return;
    }
    sp.next_replica = (chosen + 1) % cfg_.replication;
    const int node = cluster_.ReplicaNode(shard, chosen);
    const std::size_t attempt_idx = sp.attempts.size();
    sp.attempts.push_back(
        {.replica = chosen, .node = node, .probe = probe, .hedge = hedge});
    if (!hedge) ++sp.started;
    ++sp.outstanding;
    ++out_.rpcs_sent;
    if (hedge) {
      ++out_.hedges_sent;
      if (tracer_ != nullptr) {
        tracer_->AddInstant(tracer_->serving_track(),
                            obs::InstantKind::kShardHedge, now, record,
                            static_cast<std::uint64_t>(shard));
      }
      if (recorder_ != nullptr) {
        recorder_->AddInstant(recorder_->serving_track(),
                              obs::InstantKind::kShardHedge, now, record,
                              static_cast<std::uint64_t>(shard));
      }
    }
    // Every attempt owns exactly one timeout; attempts are resolved by
    // their reply or their timeout, whichever lands first, so no
    // breaker report or probe slot can leak.
    Push({.at = now + cfg_.shard_deadline,
          .type = EventType::kTimeout,
          .record = record,
          .shard = shard,
          .attempt = attempt_idx});

    const std::vector<TermId>& terms =
        queries_[out_.queries[record].query_index];
    const std::uint64_t req_bytes =
        kMsgBytesBase + kReqBytesPerTerm * terms.size();
    VirtualTime node_arrival =
        now + cluster_.fabric().TransferTime(sim::kCoordinatorNode, node,
                                             req_bytes);
    if (injector_ != nullptr) {
      const sim::FaultInjector::NetFault f =
          injector_->OnNetMessage(sim::kCoordinatorNode, node, now);
      if (f.dropped) {
        TraceNetDrop(record, shard, now);
        return;  // the timeout is the only way the coordinator learns
      }
      node_arrival += f.delay;
    }

    topk::SearchParams node_params = params_;
    node_params.deadline = NodeBudget(node, terms.size());
    // Correlation payload: query record + packed (shard, attempt). The
    // same pair rides the cluster-side kShardRpc/kShardService spans
    // below and the node's machine-local trace, so per-machine traces
    // join the cluster trace without guessing.
    const std::uint64_t shard_attempt =
        obs::PackShardAttempt(shard, attempt_idx);
    sim::Node::ShardReply reply = cluster_.node(node).Execute(
        shard, algo_, terms, node_params, node_arrival, record,
        shard_attempt);
    if (!reply.responded) return;  // down or died mid-request

    // sparta-lint: allow(result-status) size-only read to price the
    // response on the wire; OnReply judges this result's status when
    // the reply event lands (IsMachineFailure drives the breaker).
    const std::uint64_t resp_hits = reply.result.entries.size();
    const std::uint64_t resp_bytes = kMsgBytesBase + kRespBytesPerHit * resp_hits;
    VirtualTime reply_arrival =
        reply.completed + cluster_.fabric().TransferTime(
                              node, sim::kCoordinatorNode, resp_bytes);
    if (injector_ != nullptr) {
      const sim::FaultInjector::NetFault f = injector_->OnNetMessage(
          node, sim::kCoordinatorNode, reply.completed);
      if (f.dropped) {
        TraceNetDrop(record, shard, reply.completed);
        return;
      }
      reply_arrival += f.delay;
    }
    const std::size_t reply_idx = replies_.size();
    replies_.push_back(std::move(reply.result));
    // Parent/child pair on the node's track: the rpc span covers send →
    // reply arrival, its service child node arrival → response out.
    // Both carry (record, shard_attempt), so the child links causally
    // to exactly one parent even when a retry and a hedge overlap
    // (obs/critical_path.h walks this DAG).
    if (tracer_ != nullptr) {
      tracer_->AddSpan(node, obs::SpanKind::kShardRpc, now, reply_arrival,
                       record, shard_attempt);
      tracer_->AddSpan(node, obs::SpanKind::kShardService, node_arrival,
                       reply.completed, record, shard_attempt);
    }
    if (recorder_ != nullptr) {
      recorder_->AddSpan(node, obs::SpanKind::kShardRpc, now,
                         reply_arrival, record, shard_attempt);
      recorder_->AddSpan(node, obs::SpanKind::kShardService, node_arrival,
                         reply.completed, record, shard_attempt);
    }
    Push({.at = reply_arrival,
          .type = EventType::kReply,
          .record = record,
          .shard = shard,
          .attempt = attempt_idx,
          .node = node,
          .reply = reply_idx});
  }

  void TraceNetDrop(std::size_t record, int shard, VirtualTime at) {
    ++out_.net_drops;
    if (tracer_ != nullptr) {
      tracer_->AddInstant(tracer_->scheduler_track(),
                          obs::InstantKind::kNetDrop, at, record,
                          static_cast<std::uint64_t>(shard));
    }
    if (recorder_ != nullptr) {
      recorder_->AddInstant(recorder_->scheduler_track(),
                            obs::InstantKind::kNetDrop, at, record,
                            static_cast<std::uint64_t>(shard));
    }
  }

  CircuitBreaker& Breaker(int shard, int replica) {
    return breakers_[static_cast<std::size_t>(shard)]
                    [static_cast<std::size_t>(replica)];
  }

  /// Count of replica breakers an observer at `now` would see open.
  std::int64_t OpenBreakers(VirtualTime now) const {
    std::int64_t open = 0;
    for (const auto& row : breakers_) {
      for (const CircuitBreaker& b : row) {
        if (b.PeekState(now) == CircuitBreaker::State::kOpen) ++open;
      }
    }
    return open;
  }

  void ReportAttempt(int shard, Attempt& a, VirtualTime now, bool success) {
    if (a.reported) return;
    a.reported = true;
    if (cfg_.breaker_enabled) {
      CircuitBreaker& b = Breaker(shard, a.replica);
      const std::uint64_t trips_before = b.trips();
      if (success) {
        b.OnSuccess(now, a.probe);
      } else {
        b.OnFailure(now, a.probe);
      }
      if (b.trips() > trips_before) {
        // The breaker just opened: a backend went from degraded to
        // refused. Worth a state instant and a frozen postmortem.
        if (tracer_ != nullptr) {
          tracer_->AddInstant(tracer_->serving_track(),
                              obs::InstantKind::kBreakerState, now,
                              static_cast<std::uint64_t>(shard),
                              static_cast<std::uint64_t>(a.replica));
        }
        if (monitor_ != nullptr) {
          monitor_->OnBreakerState(now, OpenBreakers(now));
        }
        if (recorder_ != nullptr) {
          recorder_->AddInstant(recorder_->serving_track(),
                                obs::InstantKind::kBreakerState, now,
                                static_cast<std::uint64_t>(shard),
                                static_cast<std::uint64_t>(a.replica));
          CapturePostmortem(
              recorder_->Trigger(obs::AnomalyKind::kBreakerOpen, now,
                                 static_cast<std::uint64_t>(shard),
                                 static_cast<std::uint64_t>(a.replica)),
              now);
        }
      }
    }
  }

  void OnReply(const Event& ev) {
    QueryState& q = states_[ev.record];
    ShardProgress& sp = q.shards[static_cast<std::size_t>(ev.shard)];
    Attempt& a = sp.attempts[ev.attempt];
    topk::SearchResult result = std::move(replies_[ev.reply]);
    // The replica responded; whether its *machine* mangled the query
    // decides the breaker verdict (deadline partials are policy, not
    // failure — same rule as the single-machine tier).
    const bool was_reported = a.reported;
    ReportAttempt(ev.shard, a, ev.at, !IsMachineFailure(result.status));
    if (!was_reported) --sp.outstanding;
    ++out_.rpcs_answered;
    // Drop if another attempt already answered (hedge/duplicate lost)
    // or the shard was given up by retry exhaustion — an exhausted
    // shard already surrendered its unresolved slot, so a late reply
    // resurrecting it would decrement the count a second time and
    // finalize the query while other shards are still in flight. The
    // timeout failed the attempt; late data stays dropped.
    if (q.finalized || sp.answered || sp.resolved) return;
    sp.answered = true;
    sp.resolved = true;
    sp.result = std::move(result);
    if (a.hedge) ++out_.hedges_won;
    SPARTA_CHECK(q.unresolved > 0);
    --q.unresolved;
    if (q.unresolved == 0) Finalize(ev.record, ev.at);
  }

  void OnTimeout(const Event& ev) {
    QueryState& q = states_[ev.record];
    ShardProgress& sp = q.shards[static_cast<std::size_t>(ev.shard)];
    Attempt& a = sp.attempts[ev.attempt];
    if (a.reported) return;  // its reply beat the deadline
    ReportAttempt(ev.shard, a, ev.at, /*success=*/false);
    --sp.outstanding;
    ++out_.rpc_timeouts;
    if (tracer_ != nullptr) {
      tracer_->AddInstant(tracer_->serving_track(),
                          obs::InstantKind::kShardTimeout, ev.at, ev.record,
                          static_cast<std::uint64_t>(ev.shard));
    }
    if (recorder_ != nullptr) {
      recorder_->AddInstant(recorder_->serving_track(),
                            obs::InstantKind::kShardTimeout, ev.at,
                            ev.record,
                            static_cast<std::uint64_t>(ev.shard));
    }
    if (q.finalized || sp.answered) return;
    MaybeRetryOrExhaust(ev.record, ev.shard, ev.at);
  }

  /// A shard attempt just died. Retry on the next replica after the
  /// backoff while attempts remain; otherwise, once nothing is in
  /// flight, give the shard up and let the query finish without it.
  void MaybeRetryOrExhaust(std::size_t record, int shard, VirtualTime now) {
    QueryState& q = states_[record];
    ShardProgress& sp = q.shards[static_cast<std::size_t>(shard)];
    if (sp.answered || sp.resolved) return;
    if (sp.started < cfg_.attempts_per_shard) {
      ++out_.retries;
      Push({.at = now + cfg_.retry_backoff,
            .type = EventType::kSend,
            .record = record,
            .shard = shard});
      return;
    }
    if (sp.outstanding > 0) return;  // a hedge may still answer
    sp.resolved = true;
    --q.unresolved;
    if (q.unresolved == 0) Finalize(record, now);
  }

  void OnHedge(std::size_t record, int shard, VirtualTime now) {
    QueryState& q = states_[record];
    ShardProgress& sp = q.shards[static_cast<std::size_t>(shard)];
    if (q.finalized || sp.answered || sp.resolved || sp.hedge_sent) return;
    sp.hedge_sent = true;
    SendAttempt(record, shard, now, /*hedge=*/true);
  }

  void Finalize(std::size_t record, VirtualTime now) {
    QueryState& q = states_[record];
    SPARTA_CHECK(!q.finalized);
    q.finalized = true;
    ServedQuery& sq = out_.queries[record];

    topk::SearchResult merged;
    std::uint32_t answered = 0;
    double coverage = 0.0;
    for (int s = 0; s < cfg_.num_shards; ++s) {
      const ShardProgress& sp = q.shards[static_cast<std::size_t>(s)];
      if (!sp.answered) continue;
      ++answered;
      coverage +=
          cluster_.sharded().infos[static_cast<std::size_t>(s)].doc_fraction;
      for (const topk::ResultEntry& e : sp.result.entries) {
        merged.entries.push_back(
            {cluster_.sharded().ToGlobal(s, e.doc), e.score});
      }
      merged.status = std::max(merged.status, sp.result.status);
      merged.stats.postings_processed += sp.result.stats.postings_processed;
      merged.stats.postings_total += sp.result.stats.postings_total;
      merged.stats.heap_inserts += sp.result.stats.heap_inserts;
      merged.stats.docmap_peak_entries +=
          sp.result.stats.docmap_peak_entries;
      merged.stats.random_accesses += sp.result.stats.random_accesses;
      merged.stats.io_retries += sp.result.stats.io_retries;
      merged.stats.faults_injected += sp.result.stats.faults_injected;
    }
    topk::CanonicalizeResult(merged.entries);
    if (merged.entries.size() > static_cast<std::size_t>(params_.k)) {
      merged.entries.resize(static_cast<std::size_t>(params_.k));
    }
    const auto total = static_cast<std::uint32_t>(cfg_.num_shards);
    if (answered < total) {
      merged.status = topk::ResultStatus::kShardsDegraded;
    }
    merged.stats.shards_answered = answered;
    merged.stats.shards_total = total;
    merged.stats.shard_coverage = answered == total ? 1.0 : coverage;
    merged.stats.latency = now - q.dispatch;
    merged.stats.queue_wait = q.dispatch - sq.arrival;
    merged.stats.admission_outcome = topk::AdmissionOutcome::kAdmitted;
    sq.completion = now;
    sq.result = std::move(merged);

    // Anomalous result statuses freeze the flight recorder the moment
    // the degraded answer is produced, while the evidence (recent rpc
    // spans, timeouts, breaker state) is still in the rings.
    if (recorder_ != nullptr) {
      const topk::ResultStatus st = sq.result.status;
      obs::Postmortem* pm = nullptr;
      if (st == topk::ResultStatus::kShardsDegraded) {
        pm = recorder_->Trigger(obs::AnomalyKind::kShardsDegraded, now,
                                record, answered);
      } else if (st == topk::ResultStatus::kOom) {
        pm = recorder_->Trigger(obs::AnomalyKind::kOom, now, record);
      } else if (st == topk::ResultStatus::kPartialAfterFault) {
        pm = recorder_->Trigger(obs::AnomalyKind::kPartialAfterFault, now,
                                record);
      }
      CapturePostmortem(pm, now);
    }
    if (monitor_ != nullptr) {
      const bool good =
          sq.result.stats.shard_coverage == 1.0 &&
          sq.result.status != topk::ResultStatus::kOom &&
          (cfg_.slo == exec::kNever || sq.EndToEnd() <= cfg_.slo);
      const SloMonitor::Breach breach =
          monitor_->OnCompletion(now, sq.EndToEnd(), good);
      if (breach.fired) {
        if (tracer_ != nullptr) {
          tracer_->AddInstant(tracer_->serving_track(),
                              obs::InstantKind::kSloBreach, now,
                              breach.burn_pm, breach.bucket);
        }
        if (recorder_ != nullptr) {
          recorder_->AddInstant(recorder_->serving_track(),
                                obs::InstantKind::kSloBreach, now,
                                breach.burn_pm, breach.bucket);
          CapturePostmortem(
              recorder_->Trigger(obs::AnomalyKind::kSloBreach, now,
                                 breach.burn_pm, breach.bucket),
              now);
        }
      }
    }

    ctrl_.OnComplete(now, now - q.dispatch);
    SPARTA_CHECK(inflight_ > 0);
    --inflight_;
    TryDispatch(now);
  }

  /// Fills a freshly-triggered capture with the coordinator's view of
  /// the world: per-node liveness, per-replica breaker state, loop
  /// depth, and the running scatter-gather counters. Read-only
  /// (PeekState, no timer advances), so capturing never perturbs the
  /// deterministic replay.
  void CapturePostmortem(obs::Postmortem* pm, VirtualTime now) {
    if (pm == nullptr) return;
    for (int n = 0; n < cluster_.num_nodes(); ++n) {
      sim::Node& node = cluster_.node(n);
      std::string line = "node=" + std::to_string(n);
      line += " reachable=";
      line += cluster_.NodeReachable(n, now) ? "1" : "0";
      line += " served=" + std::to_string(node.served());
      line += " killed=" + std::to_string(node.killed_in_flight());
      line += " restarts=" + std::to_string(node.cold_restarts());
      pm->state.push_back(std::move(line));
    }
    if (cfg_.breaker_enabled) {
      for (int s = 0; s < cfg_.num_shards; ++s) {
        for (int r = 0; r < cfg_.replication; ++r) {
          const CircuitBreaker& b =
              breakers_[static_cast<std::size_t>(s)]
                       [static_cast<std::size_t>(r)];
          std::string line = "shard=" + std::to_string(s);
          line += " replica=" + std::to_string(r);
          line += " node=" + std::to_string(cluster_.ReplicaNode(s, r));
          line += " breaker=";
          line += CircuitBreaker::StateName(b.PeekState(now));
          line += " trips=" + std::to_string(b.trips());
          pm->state.push_back(std::move(line));
        }
      }
    }
    pm->state.push_back("inflight=" + std::to_string(inflight_) +
                        " pending=" + std::to_string(pending_.size()));
    obs::MetricsRegistry reg;
    reg.GetCounter("cluster.rpcs.sent").Add(out_.rpcs_sent);
    reg.GetCounter("cluster.rpcs.answered").Add(out_.rpcs_answered);
    reg.GetCounter("cluster.rpcs.timeouts").Add(out_.rpc_timeouts);
    reg.GetCounter("cluster.rpcs.retries").Add(out_.retries);
    reg.GetCounter("cluster.hedges.sent").Add(out_.hedges_sent);
    reg.GetCounter("cluster.hedges.won").Add(out_.hedges_won);
    reg.GetCounter("cluster.breaker.skips").Add(out_.breaker_skips);
    reg.GetCounter("cluster.net.drops").Add(out_.net_drops);
    reg.GetGauge("cluster.inflight")
        .Set(static_cast<std::int64_t>(inflight_));
    reg.GetGauge("cluster.pending")
        .Set(static_cast<std::int64_t>(pending_.size()));
    if (cfg_.breaker_enabled) {
      reg.GetGauge("cluster.breakers.open").Set(OpenBreakers(now));
    }
    pm->metrics = reg.Snapshot();
  }

  void FinalizeAggregates() {
    out_.offered = out_.queries.size();
    for (const ServedQuery& sq : out_.queries) {
      out_.horizon = std::max(out_.horizon, sq.arrival);
      switch (sq.outcome) {
        case topk::AdmissionOutcome::kRejectedFull:
          ++out_.rejected_full;
          continue;
        case topk::AdmissionOutcome::kShedPredictedWait:
          ++out_.shed;
          continue;
        case topk::AdmissionOutcome::kBreakerDropped:
        case topk::AdmissionOutcome::kAdmitted:
          break;
      }
      ++out_.admitted;
      if (sq.completion < 0) continue;
      ++out_.completed;
      out_.horizon = std::max(out_.horizon, sq.completion);
      out_.e2e_ns.Add(sq.EndToEnd());
      out_.queue_wait_ns.Add(sq.QueueWait());
      const double coverage = sq.result.stats.shard_coverage;
      out_.coverage_pm.Add(static_cast<std::int64_t>(coverage * 1000.0));
      out_.min_coverage = std::min(out_.min_coverage, coverage);
      if (sq.result.degraded()) ++out_.degraded;
      if (sq.result.status == topk::ResultStatus::kShardsDegraded) {
        ++out_.shards_degraded;
      }
      if (coverage == 1.0 &&
          sq.result.status != topk::ResultStatus::kOom &&
          (cfg_.slo == exec::kNever || sq.EndToEnd() <= cfg_.slo)) {
        ++out_.goodput;
      }
    }
    for (auto& row : breakers_) {
      for (CircuitBreaker& b : row) {
        out_.breaker_trips += b.trips();
        out_.breaker_probes += b.probes();
      }
    }
    if (monitor_ != nullptr) {
      out_.slo_breaches = monitor_->breaches();
      out_.series = monitor_->series();
    }
    if (recorder_ != nullptr) out_.anomalies = recorder_->anomalies();
  }

  Cluster& cluster_;
  const ClusterConfig& cfg_;
  const topk::Algorithm& algo_;
  std::span<const std::vector<TermId>> queries_;
  const topk::SearchParams& params_;
  std::span<const VirtualTime> arrivals_;

  AdmissionController ctrl_;
  sim::FaultInjector* injector_;
  obs::Tracer* tracer_;
  obs::FlightRecorder* recorder_;
  std::unique_ptr<SloMonitor> monitor_;
  /// breakers_[shard][replica ordinal].
  std::vector<std::vector<CircuitBreaker>> breakers_;

  std::priority_queue<Event, std::vector<Event>, EventLater> events_;
  std::uint64_t next_seq_ = 0;
  std::vector<QueryState> states_;
  std::vector<topk::SearchResult> replies_;
  std::vector<std::size_t> pending_;
  std::size_t inflight_ = 0;

  ClusterServeResult out_;
};

}  // namespace

ClusterServeResult Coordinator::Serve(
    std::span<const std::vector<TermId>> queries,
    const topk::SearchParams& base_params) {
  const std::vector<VirtualTime> arrivals =
      GenerateArrivals(cluster_.config().arrivals);
  return Serve(queries, base_params, arrivals);
}

ClusterServeResult Coordinator::Serve(
    std::span<const std::vector<TermId>> queries,
    const topk::SearchParams& base_params,
    std::span<const VirtualTime> arrivals) {
  ServeLoop loop(cluster_, algo_, queries, base_params, arrivals);
  return loop.Run();
}

std::vector<topk::SearchResult> SearchOnCluster(
    Cluster& cluster, const topk::Algorithm& algo,
    std::span<const std::vector<TermId>> queries,
    const topk::SearchParams& params) {
  const ClusterConfig& cfg = cluster.config();
  // One query at a time: space arrivals past the worst-case resolution
  // time (every attempt timing out plus backoffs, with slack), so no
  // two queries ever overlap on the timeline.
  VirtualTime spacing =
      static_cast<VirtualTime>(cfg.attempts_per_shard) *
          (cfg.shard_deadline + cfg.retry_backoff) +
      20 * exec::kMillisecond;
  // A hedge fires hedge_delay after dispatch and owns a full deadline
  // of its own, so it can outlive every regular attempt.
  if (cfg.hedge_delay != exec::kNever && cfg.replication > 1) {
    spacing += cfg.hedge_delay + cfg.shard_deadline;
  }
  // Injected network delays push sends and replies later; each message
  // draws < 1.5 * net_delay_ns extra (request + reply per attempt).
  if (cfg.net_faults.net_delay_prob > 0.0) {
    spacing += 3 * cfg.net_faults.net_delay_ns;
  }
  std::vector<VirtualTime> arrivals;
  arrivals.reserve(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    arrivals.push_back(static_cast<VirtualTime>(i + 1) * spacing);
  }
  ServeLoop loop(cluster, algo, queries, params, arrivals);
  ClusterServeResult run = loop.Run();
  std::vector<topk::SearchResult> results;
  results.reserve(queries.size());
  for (ServedQuery& sq : run.queries) {
    results.push_back(std::move(sq.result));
  }
  return results;
}

void AddClusterMetrics(const ClusterServeResult& result,
                       obs::MetricsRegistry& reg) {
  reg.GetCounter("cluster.offered").Add(result.offered);
  reg.GetCounter("cluster.admitted").Add(result.admitted);
  reg.GetCounter("cluster.rejected_full").Add(result.rejected_full);
  reg.GetCounter("cluster.shed").Add(result.shed);
  reg.GetCounter("cluster.completed").Add(result.completed);
  reg.GetCounter("cluster.degraded").Add(result.degraded);
  reg.GetCounter("cluster.shards_degraded").Add(result.shards_degraded);
  reg.GetCounter("cluster.goodput").Add(result.goodput);
  reg.GetCounter("cluster.rpcs.sent").Add(result.rpcs_sent);
  reg.GetCounter("cluster.rpcs.answered").Add(result.rpcs_answered);
  reg.GetCounter("cluster.rpcs.timeouts").Add(result.rpc_timeouts);
  reg.GetCounter("cluster.rpcs.retries").Add(result.retries);
  reg.GetCounter("cluster.hedges.sent").Add(result.hedges_sent);
  reg.GetCounter("cluster.hedges.won").Add(result.hedges_won);
  reg.GetCounter("cluster.breaker.skips").Add(result.breaker_skips);
  reg.GetCounter("cluster.breaker.trips").Add(result.breaker_trips);
  reg.GetCounter("cluster.breaker.probes").Add(result.breaker_probes);
  reg.GetCounter("cluster.net.drops").Add(result.net_drops);
  reg.GetHistogram("cluster.e2e_ns").Merge(result.e2e_ns);
  reg.GetHistogram("cluster.queue_wait_ns").Merge(result.queue_wait_ns);
  reg.GetHistogram("cluster.coverage_pm").Merge(result.coverage_pm);
}

}  // namespace sparta::serve

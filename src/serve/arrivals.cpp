#include "serve/arrivals.h"

#include <algorithm>
#include <cmath>

#include "util/common.h"
#include "util/rng.h"

namespace sparta::serve {
namespace {

/// Exponential gap with mean 1/rate_per_ns, in whole nanoseconds (>= 1
/// so schedules stay strictly increasing and replay comparisons are not
/// confused by zero-length gaps).
exec::VirtualTime ExpGap(util::Rng& rng, double rate_per_ns) {
  const double gap = -std::log(rng.NextDoublePositive()) / rate_per_ns;
  const double clamped =
      std::min(gap, static_cast<double>(exec::kNever) / 4.0);
  return std::max<exec::VirtualTime>(
      1, static_cast<exec::VirtualTime>(std::llround(clamped)));
}

std::vector<exec::VirtualTime> Poisson(const ArrivalConfig& config,
                                       util::Rng& rng) {
  const double rate_per_ns = config.rate_qps / 1e9;
  std::vector<exec::VirtualTime> out;
  out.reserve(config.count);
  exec::VirtualTime t = 0;
  for (std::size_t i = 0; i < config.count; ++i) {
    t += ExpGap(rng, rate_per_ns);
    out.push_back(t);
  }
  return out;
}

std::vector<exec::VirtualTime> Bursty(const ArrivalConfig& config,
                                      util::Rng& rng) {
  SPARTA_CHECK(config.burst_rate_factor >= 1.0);
  SPARTA_CHECK(config.burst_time_fraction > 0.0 &&
               config.burst_time_fraction < 1.0);
  SPARTA_CHECK(config.mean_burst_ns > 0);
  // Normalize state rates so the long-run mean is rate_qps:
  //   pi_b * (factor * calm) + (1 - pi_b) * calm = rate.
  const double pi_b = config.burst_time_fraction;
  const double calm_qps =
      config.rate_qps / (1.0 + pi_b * (config.burst_rate_factor - 1.0));
  const double calm_per_ns = calm_qps / 1e9;
  const double burst_per_ns = calm_per_ns * config.burst_rate_factor;
  // Occupancy pi_b = mean_burst / (mean_burst + mean_calm).
  const double mean_burst = static_cast<double>(config.mean_burst_ns);
  const double mean_calm = mean_burst * (1.0 - pi_b) / pi_b;

  std::vector<exec::VirtualTime> out;
  out.reserve(config.count);
  exec::VirtualTime t = 0;
  bool in_burst = false;
  // End of the current state's sojourn; the first calm sojourn starts
  // at 0.
  exec::VirtualTime state_end = ExpGap(rng, 1.0 / mean_calm);
  while (out.size() < config.count) {
    const double rate = in_burst ? burst_per_ns : calm_per_ns;
    const exec::VirtualTime next = t + ExpGap(rng, rate);
    if (next >= state_end) {
      // The state flips before this arrival materializes: discard the
      // draw (memorylessness makes the restart exact) and continue from
      // the flip point in the other state.
      t = state_end;
      in_burst = !in_burst;
      state_end =
          t + ExpGap(rng, 1.0 / (in_burst ? mean_burst : mean_calm));
      continue;
    }
    t = next;
    out.push_back(t);
  }
  return out;
}

}  // namespace

std::vector<exec::VirtualTime> GenerateArrivals(
    const ArrivalConfig& config) {
  SPARTA_CHECK(config.rate_qps > 0.0);
  util::Rng rng(config.seed);
  switch (config.kind) {
    case ArrivalKind::kPoisson:
      return Poisson(config, rng);
    case ArrivalKind::kBursty:
      return Bursty(config, rng);
  }
  return {};
}

}  // namespace sparta::serve

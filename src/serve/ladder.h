// Adaptive degradation ladder: trade recall for drain rate as queue
// pressure rises.
//
// Bruch et al. show that bounded-recall execution is the scaling lever
// for sparse retrieval; PR 2's anytime machinery gives every algorithm
// an honest way to stop early (deadline -> best-so-far top-k tagged
// kDeadlineDegraded). The ladder turns that knob automatically: each
// rung maps a queue-occupancy band to a per-query deadline budget (a
// fraction of the SLO) and optionally to cheaper approximation
// parameters (TA-family delta, pBMW's f, pJASS's p). Under light load
// queries run at full quality; as the admission queue fills, deadlines
// tighten and approximations coarsen, so service time shrinks exactly
// when capacity is scarce — degraded answers stay honest because they
// ride the existing ResultStatus paths.
#pragma once

#include <cstddef>
#include <vector>

#include "exec/context.h"
#include "topk/params.h"

namespace sparta::serve {

struct DegradationRung {
  /// Rung applies while queue occupancy >= this (rungs sorted ascending;
  /// the last matching rung wins).
  double min_occupancy = 0.0;
  /// Per-query deadline budget as a fraction of the SLO (<= 1; the
  /// dispatcher additionally caps it by the query's remaining slack).
  double deadline_fraction = 1.0;
  /// TA-family early-stop delta as a fraction of the rung deadline
  /// (0 = leave SearchParams::delta untouched).
  double delta_fraction = 0.0;
  /// Multiplier on pBMW's threshold-relaxation f (1 = untouched).
  double f_scale = 1.0;
  /// Multiplier on pJASS's scanned-postings fraction p (1 = untouched;
  /// values < 1 scan less).
  double p_scale = 1.0;
};

/// Sharing contract (DESIGN.md §11): immutable after construction —
/// rungs_ is set once and only read thereafter, so the ladder is safely
/// shared across workers with no capability at all.
class DegradationLadder {
 public:
  /// No rungs = ladder disabled: every dispatch uses rung 0 semantics
  /// (full SLO deadline, untouched params).
  DegradationLadder() = default;
  explicit DegradationLadder(std::vector<DegradationRung> rungs);

  /// The default four-rung ladder used by the overload benchmark:
  ///   occupancy < 0.25 : full SLO budget, exact params;
  ///   >= 0.25          : 60% budget;
  ///   >= 0.50          : 35% budget, delta = 1/2 deadline, f x2, p x0.7;
  ///   >= 0.75          : 15% budget, delta = 1/4 deadline, f x4, p x0.4.
  static DegradationLadder Default();

  bool enabled() const { return !rungs_.empty(); }
  std::size_t num_rungs() const { return rungs_.size(); }

  /// Index of the rung governing `occupancy` (0 when disabled).
  std::size_t PickRung(double occupancy) const;

  /// Applies rung `rung` to `base`: sets params.deadline to the rung's
  /// budget (capped by `slack`, the query's remaining time before its
  /// SLO expires) and coarsens the approximation knobs. With the ladder
  /// disabled, the deadline is min(slo, slack) and params are untouched.
  topk::SearchParams Apply(std::size_t rung,
                           const topk::SearchParams& base,
                           exec::VirtualTime slo,
                           exec::VirtualTime slack) const;

 private:
  std::vector<DegradationRung> rungs_;
};

}  // namespace sparta::serve

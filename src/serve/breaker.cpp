#include "serve/breaker.h"

namespace sparta::serve {

CircuitBreaker::State CircuitBreaker::state(exec::VirtualTime now) {
  const util::SerialGuard guard(domain_);
  return StateLocked(now);
}

CircuitBreaker::State CircuitBreaker::StateLocked(exec::VirtualTime now) {
  if (state_ == State::kOpen && now >= opened_at_ + config_.open_ns) {
    state_ = State::kHalfOpen;
    probe_in_flight_ = false;
    probe_successes_ = 0;
  }
  return state_;
}

void CircuitBreaker::Trip(exec::VirtualTime now) {
  state_ = State::kOpen;
  opened_at_ = now;
  failures_.clear();
  probe_in_flight_ = false;
  probe_successes_ = 0;
  ++trips_;
}

bool CircuitBreaker::Admit(exec::VirtualTime now) {
  const util::SerialGuard guard(domain_);
  switch (StateLocked(now)) {
    case State::kClosed:
      return true;
    case State::kOpen:
      return false;
    case State::kHalfOpen:
      if (probe_in_flight_) return false;
      probe_in_flight_ = true;
      ++probes_;
      return true;
  }
  return false;
}

void CircuitBreaker::OnSuccess(exec::VirtualTime now, bool probe) {
  const util::SerialGuard guard(domain_);
  if (probe && state_ == State::kHalfOpen) {
    probe_in_flight_ = false;
    if (++probe_successes_ >= config_.probe_successes_to_close) {
      state_ = State::kClosed;
      failures_.clear();
      probe_successes_ = 0;
    }
    return;
  }
  (void)now;  // non-probe successes carry no timer information.
}

void CircuitBreaker::OnFailure(exec::VirtualTime now, bool probe) {
  const util::SerialGuard guard(domain_);
  if (probe && state_ == State::kHalfOpen) {
    // The machine is still sick: back to a full cooloff.
    Trip(now);
    return;
  }
  if (state_ != State::kClosed) return;  // already open; nothing to learn
  failures_.push_back(now);
  const exec::VirtualTime horizon = now - config_.window_ns;
  while (!failures_.empty() && failures_.front() < horizon) {
    failures_.pop_front();
  }
  if (static_cast<int>(failures_.size()) >= config_.failure_threshold) {
    Trip(now);
  }
}

}  // namespace sparta::serve

#include "serve/admission.h"

#include "util/common.h"

namespace sparta::serve {

topk::AdmissionOutcome AdmissionController::Decide(exec::VirtualTime now) {
  (void)now;  // decisions are state-based; `now` documents the instant.
  const util::SerialGuard guard(domain_);
  if (queue_depth_ >= EffectiveCapacityLocked()) {
    return topk::AdmissionOutcome::kRejectedFull;
  }
  if (config_.shed_predicted_wait && slo_ != exec::kNever) {
    // Admitting is only useful if the query can still finish inside its
    // SLO after waiting behind the current backlog.
    const exec::VirtualTime predicted =
        PredictedWaitLocked() + EstimatedServiceLocked();
    if (predicted > BudgetedSlo()) {
      return topk::AdmissionOutcome::kShedPredictedWait;
    }
  }
  ++queue_depth_;
  return topk::AdmissionOutcome::kAdmitted;
}

void AdmissionController::SetCapacityScale(double scale) {
  const util::SerialGuard guard(domain_);
  capacity_scale_ = scale < 0.0 ? 0.0 : (scale > 1.0 ? 1.0 : scale);
}

void AdmissionController::OnDispatch(exec::VirtualTime now) {
  (void)now;
  const util::SerialGuard guard(domain_);
  SPARTA_CHECK(queue_depth_ > 0);
  --queue_depth_;
}

void AdmissionController::OnComplete(exec::VirtualTime now,
                                     exec::VirtualTime service_ns) {
  const util::SerialGuard guard(domain_);
  const double alpha = config_.ewma_alpha;
  if (last_departure_ >= 0 && now > last_departure_) {
    const auto gap = static_cast<double>(now - last_departure_);
    departure_gap_ = (1.0 - alpha) * departure_gap_ + alpha * gap;
  }
  last_departure_ = now;
  if (service_ns > 0) {
    service_ =
        (1.0 - alpha) * service_ + alpha * static_cast<double>(service_ns);
  }
}

}  // namespace sparta::serve

// The open-loop serving layer: what the benchmark driver cannot say.
//
// MeasureThroughput is closed-loop — a new query is admitted only when
// workers free up, so the system is never pushed past saturation and
// "queries per second" is the only statement it can make. A serving
// tier lives or dies past that point: arrivals keep coming at their own
// (offered) rate, queue wait becomes part of every query's latency, and
// the difference between a 10% overload degrading gracefully and
// melting down is policy, not throughput. This layer models that tier
// on either executor:
//
//   arrivals (serve/arrivals.h)  — seeded Poisson / bursty schedules;
//   admission (serve/admission.h) — bounded queue, reject-on-full,
//       estimated-wait shedding against the end-to-end SLO;
//   ladder (serve/ladder.h)      — queue pressure tightens per-query
//       deadlines / approximation knobs via PR 2's anytime machinery;
//   breaker (serve/breaker.h)    — fault storms trip a circuit breaker
//       that half-opens with probe queries.
//
// On the simulator everything runs on the virtual clock inside one
// SimExecutor::Drain pass (arrival events, breaker timers, queue waits)
// and is deterministic per seed. On real threads the same policy code
// runs against wall-clock service times with the pool dedicated to one
// query at a time (the paper's latency mode), which exercises identical
// decision paths minus cross-query interference.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "exec/threaded_executor.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "serve/admission.h"
#include "serve/arrivals.h"
#include "serve/breaker.h"
#include "serve/ladder.h"
#include "serve/slo_monitor.h"
#include "sim/sim_executor.h"
#include "topk/algorithm.h"
#include "util/histogram.h"

namespace sparta::serve {

struct ServeConfig {
  ArrivalConfig arrivals;
  AdmissionConfig admission;
  /// End-to-end SLO (queue wait + service time), kNever = none. Drives
  /// estimated-wait shedding, ladder deadline budgets, and goodput.
  exec::VirtualTime slo = 20 * exec::kMillisecond;
  /// Degradation ladder; a default-constructed (disabled) ladder
  /// dispatches every query with the full SLO budget and untouched
  /// parameters.
  DegradationLadder ladder;
  /// When false, dispatch never sets a per-query deadline (the
  /// unprotected configuration: queries always run to completion).
  bool deadline_from_slo = true;
  /// Circuit breaker; disabled by default (the breaker only matters
  /// under fault injection).
  bool breaker_enabled = false;
  BreakerConfig breaker;
  /// Windowed SLO burn-rate monitor (serve/slo_monitor.h); breaches
  /// feed the machine flight recorder's kSloBreach trigger when the
  /// executor carries one.
  SloMonitorConfig slo_monitor;
};

/// Per-query accounting record, in arrival order.
struct ServedQuery {
  /// Index into the query span handed to Serve* (arrival i runs query
  /// i mod queries.size()).
  std::size_t query_index = 0;
  exec::VirtualTime arrival = 0;
  /// Dispatch/completion on the serving clock; -1 for unadmitted.
  exec::VirtualTime dispatch = -1;
  exec::VirtualTime completion = -1;
  topk::AdmissionOutcome outcome = topk::AdmissionOutcome::kAdmitted;
  /// Ladder rung applied at dispatch (0 when the ladder is disabled).
  std::size_t rung = 0;
  /// Admitted as a half-open circuit-breaker probe.
  bool probe = false;
  /// Search result; meaningful only for admitted queries. stats carries
  /// queue_wait and admission_outcome.
  topk::SearchResult result;

  exec::VirtualTime QueueWait() const {
    return dispatch >= 0 ? dispatch - arrival : 0;
  }
  exec::VirtualTime EndToEnd() const {
    return completion >= 0 ? completion - arrival : 0;
  }
};

struct ServeResult {
  std::vector<ServedQuery> queries;

  // Aggregates over the run.
  std::size_t offered = 0;
  std::size_t admitted = 0;
  std::size_t rejected_full = 0;
  std::size_t shed = 0;
  std::size_t breaker_dropped = 0;
  std::size_t completed = 0;  ///< admitted queries that finished
  std::size_t degraded = 0;   ///< deadline- or fault-degraded results
  std::size_t faulted = 0;    ///< kPartialAfterFault results
  std::size_t oom = 0;
  /// Admitted, non-OOM, end-to-end latency within the SLO.
  std::size_t goodput = 0;
  std::size_t max_queue_depth = 0;
  std::vector<std::size_t> rung_dispatches;
  std::uint64_t breaker_trips = 0;
  std::uint64_t breaker_probes = 0;

  util::Histogram e2e_ns;         ///< admitted: queue wait + service
  util::Histogram queue_wait_ns;  ///< admitted
  /// Last completion (or last arrival if nothing completed): the run's
  /// time horizon for rate computations.
  exec::VirtualTime horizon = 0;

  // Observability plane (populated when the respective config is on).
  /// SLO burn-rate alerts fired by the monitor.
  std::uint64_t slo_breaches = 0;
  /// Flight-recorder anomaly triggers on the machine executor.
  std::uint64_t anomalies = 0;
  /// Per-bucket health series from the SLO monitor (empty when off).
  obs::TimeSeries series;

  double GoodputQps() const {
    return horizon > 0 ? static_cast<double>(goodput) /
                             (static_cast<double>(horizon) / 1e9)
                       : 0.0;
  }
};

class Server {
 public:
  Server(const index::InvertedIndex& index, const topk::Algorithm& algo,
         ServeConfig config)
      : index_(index), algo_(algo), config_(std::move(config)) {}

  const ServeConfig& config() const { return config_; }

  /// Open-loop run on the simulated machine (virtual clock,
  /// deterministic per seed). The executor's page cache is NOT reset —
  /// callers decide cache state, as with the driver's other modes.
  ServeResult ServeOnSim(sim::SimExecutor& executor,
                         std::span<const std::vector<TermId>> queries,
                         const topk::SearchParams& base_params);

  /// Same policy paths on real threads: admitted queries run one at a
  /// time with the whole pool (pool-per-query), the serving timeline is
  /// emulated from measured wall-clock service times.
  ServeResult ServeOnThreads(exec::ThreadedExecutor& executor,
                             std::span<const std::vector<TermId>> queries,
                             const topk::SearchParams& base_params);

 private:
  const index::InvertedIndex& index_;
  const topk::Algorithm& algo_;
  ServeConfig config_;
};

/// Folds a finished run's aggregates into the metrics registry under the
/// "serve." prefix (counters for every admission outcome, per-rung
/// dispatch counts, breaker trips/probes; histograms for end-to-end and
/// queue-wait latency).
void AddServeMetrics(const ServeResult& result, obs::MetricsRegistry& reg);

}  // namespace sparta::serve

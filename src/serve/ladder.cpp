#include "serve/ladder.h"

#include <algorithm>

#include "util/common.h"

namespace sparta::serve {

DegradationLadder::DegradationLadder(std::vector<DegradationRung> rungs)
    : rungs_(std::move(rungs)) {
  SPARTA_CHECK(!rungs_.empty());
  SPARTA_CHECK(rungs_.front().min_occupancy == 0.0);
  for (std::size_t i = 1; i < rungs_.size(); ++i) {
    SPARTA_CHECK(rungs_[i].min_occupancy > rungs_[i - 1].min_occupancy);
  }
  for (const auto& rung : rungs_) {
    SPARTA_CHECK(rung.deadline_fraction > 0.0 &&
                 rung.deadline_fraction <= 1.0);
    SPARTA_CHECK(rung.delta_fraction >= 0.0 && rung.delta_fraction <= 1.0);
    SPARTA_CHECK(rung.f_scale >= 1.0);
    SPARTA_CHECK(rung.p_scale > 0.0 && rung.p_scale <= 1.0);
  }
}

DegradationLadder DegradationLadder::Default() {
  return DegradationLadder({
      {.min_occupancy = 0.0, .deadline_fraction = 1.0},
      {.min_occupancy = 0.25, .deadline_fraction = 0.6},
      {.min_occupancy = 0.50,
       .deadline_fraction = 0.35,
       .delta_fraction = 0.5,
       .f_scale = 2.0,
       .p_scale = 0.7},
      {.min_occupancy = 0.75,
       .deadline_fraction = 0.15,
       .delta_fraction = 0.25,
       .f_scale = 4.0,
       .p_scale = 0.4},
  });
}

std::size_t DegradationLadder::PickRung(double occupancy) const {
  if (rungs_.empty()) return 0;
  std::size_t pick = 0;
  for (std::size_t i = 0; i < rungs_.size(); ++i) {
    if (occupancy >= rungs_[i].min_occupancy) pick = i;
  }
  return pick;
}

topk::SearchParams DegradationLadder::Apply(std::size_t rung,
                                            const topk::SearchParams& base,
                                            exec::VirtualTime slo,
                                            exec::VirtualTime slack) const {
  topk::SearchParams params = base;
  exec::VirtualTime budget = slo;
  if (!rungs_.empty()) {
    SPARTA_CHECK(rung < rungs_.size());
    const DegradationRung& r = rungs_[rung];
    budget = static_cast<exec::VirtualTime>(
        r.deadline_fraction * static_cast<double>(slo));
    if (r.delta_fraction > 0.0) {
      const auto delta = static_cast<exec::VirtualTime>(
          r.delta_fraction * static_cast<double>(budget));
      params.delta = std::min(params.delta, std::max<exec::VirtualTime>(
                                                delta, 1));
    }
    params.f *= r.f_scale;
    params.p = std::max(0.01, params.p * r.p_scale);
  }
  // Deadline-aware: a query that already burned queue wait gets only its
  // remaining slack, never a budget past its SLO.
  budget = std::min(budget, slack);
  params.deadline = std::max<exec::VirtualTime>(budget, 1);
  return params;
}

}  // namespace sparta::serve

#include "serve/live.h"

#include <algorithm>
#include <deque>
#include <functional>
#include <memory>
#include <utility>

#include "core/snapshot_search.h"
#include "index/epoch.h"
#include "obs/trace.h"
#include "serve/policy.h"
#include "util/common.h"
#include "util/serial_domain.h"

namespace sparta::serve {
namespace {

using topk::AdmissionOutcome;

/// Driving state of one background merge, shared by its chunk jobs.
struct MergeState {
  std::unique_ptr<exec::QueryContext> ctx;
  index::IndexSnapshot snap;  ///< the {main, frozen} pair being folded
  std::uint64_t total_postings = 0;
  std::uint64_t charged = 0;
  std::uint64_t chunk_index = 0;
  exec::VirtualTime begin = 0;
  /// Self-replenishing chunk job (set once after construction).
  std::function<void(exec::WorkerContext&)> chunk;
};

}  // namespace

LiveServeResult LiveServer::ServeOnSim(
    sim::SimExecutor& executor,
    std::span<const std::vector<TermId>> queries,
    std::span<const IngestDoc> docs,
    const topk::SearchParams& base_params) {
  SPARTA_CHECK(!queries.empty());
  const auto arrivals = GenerateArrivals(config_.serve.arrivals);
  std::vector<exec::VirtualTime> doc_arrivals;
  if (!docs.empty() && config_.ingest.arrivals.count > 0) {
    doc_arrivals = GenerateArrivals(config_.ingest.arrivals);
  }

  LiveServeResult result;
  result.docs_offered = doc_arrivals.size();
  ServeResult& serve = result.serve;
  serve.queries.resize(arrivals.size());
  serve.rung_dispatches.assign(
      std::max<std::size_t>(1, config_.serve.ladder.num_rungs()), 0);
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    serve.queries[i].arrival = arrivals[i];
    serve.queries[i].query_index = i % queries.size();
  }

  PolicyState policy(config_.serve);
  ServeTrace strace(executor.tracer());

  // The shared epoch lock: the release point of the snapshot-reclamation
  // protocol. Reader jobs shadow-READ their pinned epoch under it and
  // merge/refresh jobs shadow-WRITE reclaimed epochs under it, so on
  // race_check runs the detector proves reclamation never races a
  // pinned reader. The owning context is never started; it only exists
  // to mint a lock that outlives every per-query context.
  auto lock_owner = executor.CreateQueryAt(0);
  auto epoch_lock = lock_owner->MakeLock();
  index::EpochManager& epochs = live_.epochs();

  struct Flight {
    std::size_t record = 0;
    std::unique_ptr<exec::QueryContext> ctx;
    std::unique_ptr<topk::QueryRun> run;
    index::EpochManager::Pin pin;
  };
  std::vector<Flight> flights;
  flights.reserve(arrivals.size());
  std::vector<std::size_t> active;  // unharvested indices into flights
  std::deque<std::size_t> queue;    // admitted records awaiting dispatch
  std::vector<std::unique_ptr<exec::QueryContext>> ingest_flights;
  std::vector<std::shared_ptr<MergeState>> merge_flights;
  std::size_t next_arrival = 0;
  std::size_t next_doc = 0;
  bool merge_active = false;

  // Emits the reclaim instant for a Collect(worker) sweep. Callers hold
  // the epoch lock.
  const auto trace_reclaim = [&](exec::WorkerContext& worker,
                                 std::size_t reclaimed) {
    if (reclaimed == 0) return;
    if (auto* tracer = worker.tracer()) {
      tracer->AddInstant(worker.worker_id(),
                         obs::InstantKind::kEpochReclaim, worker.TraceNow(),
                         reclaimed, epochs.current_epoch());
    }
  };

  // One ingest event: a single job on its own context that adds the doc
  // to the active delta and, past the refresh threshold, freezes +
  // publishes it. All writer-domain work happens inside the job, so the
  // ingest cost lands on a simulated worker like any query work.
  const auto ingest_at = [&](exec::VirtualTime at, std::size_t i) {
    auto ctx = executor.CreateQueryAt(at);
    ctx->Submit([&, i](exec::WorkerContext& worker) {
      const IngestDoc& doc = docs[i % docs.size()];
      const util::SerialGuard guard(live_.writer());
      worker.ChargePostings(doc.terms.size());
      worker.StructureAccessMany(
          (live_.buffered_postings() + doc.terms.size()) *
              sizeof(index::RawPosting),
          /*write_shared=*/false, doc.terms.size());
      live_.Add(doc.terms, doc.doc_len);
      ++result.docs_ingested;
      if (live_.buffered_docs() <
          static_cast<std::uint32_t>(config_.ingest.refresh_every_docs)) {
        return;
      }
      const std::uint32_t fdocs = live_.buffered_docs();
      const std::uint64_t fpostings = live_.buffered_postings();
      const exec::VirtualTime f0 = worker.TraceNow();
      if (!live_.Refresh()) return;  // deferred: merge in flight
      // Freeze cost: every buffered posting is scored and re-bucketed.
      worker.ChargePostings(fpostings);
      if (auto* tracer = worker.tracer()) {
        tracer->AddSpan(worker.worker_id(), obs::SpanKind::kDeltaFreeze,
                        f0, worker.TraceNow(), fdocs, fpostings);
      }
      const exec::CtxLockGuard epoch_guard(*epoch_lock, worker);
      trace_reclaim(worker, epochs.Collect(worker));
    });
    ingest_flights.push_back(std::move(ctx));
  };

  // Begins a background merge when the frozen delta is big enough: a
  // chain of self-replenishing chunk jobs charging the fold's posting
  // and sequential-I/O cost, then a final publish step that draws the
  // injected merge faults and commits (or rolls back) build-then-swap.
  const auto maybe_start_merge = [&](exec::VirtualTime now) {
    if (!config_.ingest.merge_enabled || merge_active) return;
    auto state = std::make_shared<MergeState>();
    {
      const util::SerialGuard guard(live_.writer());
      if (!live_.CanMerge() ||
          live_.frozen_docs() <
              static_cast<std::uint32_t>(config_.ingest.merge_min_docs)) {
        return;
      }
      state->snap = live_.BeginMerge();
    }
    merge_active = true;
    state->total_postings = state->snap.main->total_postings() +
                            state->snap.delta->total_postings();
    state->begin = now;
    state->ctx = executor.CreateQueryAt(now);
    state->chunk = [&, state](exec::WorkerContext& worker) {
      const std::uint64_t remaining =
          state->total_postings - state->charged;
      const std::uint64_t n = std::min<std::uint64_t>(
          std::max<std::uint64_t>(1, config_.ingest.merge_chunk_postings),
          remaining);
      const exec::VirtualTime c0 = worker.TraceNow();
      if (n > 0) {
        // Fold cost: decode + re-emit n postings, reading the sources
        // sequentially through the page-cache model.
        worker.ChargePostings(n);
        worker.IoSequential(state->charged * sizeof(index::Posting),
                            n * sizeof(index::Posting));
        state->charged += n;
      }
      if (auto* tracer = worker.tracer()) {
        tracer->AddSpan(worker.worker_id(), obs::SpanKind::kMergeBuild, c0,
                        worker.TraceNow(), state->chunk_index, n);
      }
      ++state->chunk_index;
      if (state->charged < state->total_postings) {
        state->ctx->Submit(state->chunk);
        return;
      }

      // Final step: draw the seeded merge faults, fold, and commit.
      bool abort_fault = false;
      bool torn_fault = false;
      if (auto* injector = executor.fault_injector()) {
        abort_fault = injector->OnMergeAbort(worker.worker_id(),
                                             worker.Now());
        if (!abort_fault) {
          torn_fault = injector->OnMergeWrite(worker.worker_id(),
                                              worker.Now());
        }
      }
      MergeRecord record;
      record.begin = state->begin;
      record.docs = state->snap.num_docs();
      {
        const util::SerialGuard guard(live_.writer());
        index::InvertedIndex merged = index::MergeSegments(
            *state->snap.main, *state->snap.delta);
        record.outcome = live_.CommitMerge(std::move(merged), abort_fault,
                                           torn_fault);
      }
      record.end = worker.TraceNow();
      record.epoch = epochs.current_epoch();
      if (auto* tracer = worker.tracer()) {
        if (record.outcome == index::MergeOutcome::kCommitted) {
          tracer->AddInstant(worker.worker_id(),
                             obs::InstantKind::kMergePublish, record.end,
                             record.epoch, record.docs);
        } else {
          tracer->AddInstant(worker.worker_id(),
                             obs::InstantKind::kMergeAbort, record.end,
                             record.epoch,
                             static_cast<std::uint64_t>(record.outcome));
        }
      }
      result.merges.push_back(record);
      {
        const exec::CtxLockGuard epoch_guard(*epoch_lock, worker);
        trace_reclaim(worker, epochs.Collect(worker));
      }
      merge_active = false;
    };
    state->ctx->Submit(state->chunk);
    merge_flights.push_back(std::move(state));
  };

  const auto harvest = [&]() {
    std::vector<std::size_t> done;
    for (std::size_t i = 0; i < active.size();) {
      Flight& f = flights[active[i]];
      if (f.ctx->outstanding_jobs() == 0) {
        done.push_back(active[i]);
        active[i] = active.back();
        active.pop_back();
      } else {
        ++i;
      }
    }
    std::sort(done.begin(), done.end(),
              [&](std::size_t a, std::size_t b) {
                const auto ta = flights[a].ctx->end_time();
                const auto tb = flights[b].ctx->end_time();
                return ta != tb ? ta < tb
                                : flights[a].record < flights[b].record;
              });
    for (const std::size_t i : done) {
      Flight& f = flights[i];
      ServedQuery& rec = serve.queries[f.record];
      rec.completion = f.ctx->end_time();
      rec.result = f.run->TakeResult();
      rec.result.stats.latency = rec.completion - rec.dispatch;
      rec.result.stats.queue_wait = rec.QueueWait();
      rec.result.stats.admission_outcome = AdmissionOutcome::kAdmitted;
      f.pin.Release();  // the drained query unpins its snapshot
      policy.OnComplete(rec.completion, rec.completion - rec.dispatch,
                        rec.result.status, rec.probe);
    }
    std::erase_if(ingest_flights, [](const auto& ctx) {
      return ctx->outstanding_jobs() == 0;
    });
    // A drained merge's chunk closure captures its own MergeState
    // (shared_ptr) so the chain can resubmit itself; clear it here to
    // break that cycle, or the state (and its pinned snapshot) leaks.
    std::erase_if(merge_flights, [](const auto& state) {
      if (state->ctx->outstanding_jobs() != 0) return false;
      state->chunk = nullptr;
      return true;
    });
  };

  const auto decide = [&](std::size_t idx) {
    ServedQuery& rec = serve.queries[idx];
    const Decision d = policy.Decide(rec.arrival);
    rec.outcome = d.outcome;
    rec.probe = d.probe;
    rec.result.stats.admission_outcome = d.outcome;
    strace.OnDecision(idx, rec.arrival, d, config_.serve.breaker_enabled);
    if (d.outcome == AdmissionOutcome::kAdmitted) {
      queue.push_back(idx);
      serve.max_queue_depth =
          std::max(serve.max_queue_depth, queue.size());
    }
  };

  const auto dispatch = [&](exec::VirtualTime now) {
    const std::size_t rec_idx = queue.front();
    queue.pop_front();
    policy.OnDispatch(now);
    ServedQuery& rec = serve.queries[rec_idx];
    rec.dispatch = now;
    const std::size_t rung =
        config_.serve.ladder.PickRung(policy.ctrl().Occupancy());
    rec.rung = rung;
    ++serve.rung_dispatches[std::min(rung,
                                     serve.rung_dispatches.size() - 1)];
    strace.OnDispatch(rec_idx, rec.arrival, now, rung);
    topk::SearchParams params = base_params;
    if (config_.serve.deadline_from_slo &&
        config_.serve.slo != exec::kNever) {
      const exec::VirtualTime slack = std::max<exec::VirtualTime>(
          1, policy.ctrl().BudgetedSlo() - rec.QueueWait());
      params = config_.serve.ladder.Apply(rung, base_params,
                                          config_.serve.slo, slack);
    }
    Flight f;
    f.record = rec_idx;
    f.ctx = executor.CreateQueryAt(now);
    if (params.deadline != exec::kNever) {
      f.ctx->set_deadline(now + params.deadline);
    }
    // Pin the published snapshot for the query's whole run; a first job
    // shadow-READs the pinned epoch under the epoch lock so race_check
    // runs verify the reclamation discipline.
    f.pin = live_.AcquireSnapshot();
    const std::uint64_t pinned_epoch = f.pin->epoch;
    f.ctx->Submit([&, pinned_epoch](exec::WorkerContext& worker) {
      const exec::CtxLockGuard epoch_guard(*epoch_lock, worker);
      epochs.ShadowPin(worker, pinned_epoch);
    });
    f.run = core::PrepareSnapshotRun(algo_, *f.pin,
                                     queries[rec.query_index], params,
                                     *f.ctx);
    f.run->Start();
    active.push_back(flights.size());
    flights.push_back(std::move(f));
  };

  const auto admit = [&](exec::VirtualTime now) -> bool {
    harvest();
    // Due events in time order; doc events before query events on ties
    // (a doc visible at t is searchable by a query arriving at t).
    while (true) {
      const exec::VirtualTime nd = next_doc < doc_arrivals.size()
                                       ? doc_arrivals[next_doc]
                                       : exec::kNever;
      const exec::VirtualTime nq = next_arrival < arrivals.size()
                                       ? arrivals[next_arrival]
                                       : exec::kNever;
      if (nd <= now && nd <= nq) {
        ingest_at(nd, next_doc++);
        continue;
      }
      if (nq <= now) {
        decide(next_arrival++);
        continue;
      }
      break;
    }
    maybe_start_merge(now);
    if (!queue.empty()) {
      dispatch(now);
    } else {
      // Idle capacity and only future events: bring the next one in on
      // its own schedule.
      const exec::VirtualTime nd = next_doc < doc_arrivals.size()
                                       ? doc_arrivals[next_doc]
                                       : exec::kNever;
      const exec::VirtualTime nq = next_arrival < arrivals.size()
                                       ? arrivals[next_arrival]
                                       : exec::kNever;
      if (nd != exec::kNever && nd <= nq) {
        ingest_at(nd, next_doc++);
      } else if (nq != exec::kNever) {
        decide(next_arrival++);
        if (!queue.empty()) dispatch(nq);
      }
    }
    return next_doc < doc_arrivals.size() ||
           next_arrival < arrivals.size() || !queue.empty();
  };
  executor.Drain(admit);
  harvest();
  SPARTA_CHECK(queue.empty() && next_arrival == arrivals.size());
  SPARTA_CHECK(active.empty());
  SPARTA_CHECK(next_doc == doc_arrivals.size());
  SPARTA_CHECK(ingest_flights.empty());
  SPARTA_CHECK(!merge_active);

  FinalizeServeResult(serve, policy, config_.serve.slo);

  {
    const util::SerialGuard guard(live_.writer());
    result.refreshes = live_.refreshes();
    result.merges_committed = live_.merges_committed();
    result.merges_aborted = live_.merges_aborted();
    result.torn_writes = live_.torn_writes();
  }
  // Host-side sweep of anything the last in-job Collect couldn't see
  // yet (no shadow events: nothing races after the drain).
  epochs.Collect();
  result.epochs_published = epochs.current_epoch();
  result.epochs_reclaimed = epochs.reclaimed();

  for (std::size_t i = 0; i < result.merges.size(); ++i) {
    if (result.merges[i].outcome == index::MergeOutcome::kCommitted) {
      continue;
    }
    for (std::size_t j = i + 1; j < result.merges.size(); ++j) {
      if (result.merges[j].outcome == index::MergeOutcome::kCommitted) {
        result.recovery_ns.push_back(result.merges[j].end -
                                     result.merges[i].end);
        break;
      }
    }
  }
  return result;
}

void AddLiveServeMetrics(const LiveServeResult& result,
                         obs::MetricsRegistry& reg) {
  AddServeMetrics(result.serve, reg);
  reg.GetCounter("live.docs.offered").Add(result.docs_offered);
  reg.GetCounter("live.docs.ingested").Add(result.docs_ingested);
  reg.GetCounter("live.refreshes").Add(result.refreshes);
  reg.GetCounter("live.merges.committed").Add(result.merges_committed);
  reg.GetCounter("live.merges.aborted").Add(result.merges_aborted);
  reg.GetCounter("live.merges.torn_writes").Add(result.torn_writes);
  reg.GetCounter("live.epochs.published").Add(result.epochs_published);
  reg.GetCounter("live.epochs.reclaimed").Add(result.epochs_reclaimed);
  util::Histogram recovery;
  for (const exec::VirtualTime ns : result.recovery_ns) recovery.Add(ns);
  reg.GetHistogram("live.recovery_ns").Merge(recovery);
}

}  // namespace sparta::serve

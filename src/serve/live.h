// Live serving: queries and document ingest on one simulated machine.
//
// The plain Server assumes a frozen index. This loop serves the same
// open-loop query traffic *while documents arrive*: ingest events land
// in a LiveIndex's active delta, periodic refreshes publish new
// snapshots, and background merges fold the frozen delta into a new
// main segment — all as jobs on the same SimExecutor, so merge work is
// background load the admission controller and degradation ladder see
// as queue pressure, exactly like any other work (DESIGN.md §12).
//
// Consistency protocol per query: the dispatch path pins the published
// snapshot (EpochManager::Acquire), a first job shadow-READs the pinned
// epoch's slot under the shared epoch CtxLock, and the query searches
// the pinned {main, delta} pair through core::PrepareSnapshotRun. Merge
// publication and epoch reclamation run in merge jobs under the same
// lock (shadow-WRITE per reclaimed epoch), so the deterministic race
// detector checks the reclamation protocol on every race_check run.
//
// Crash consistency: each merge's final job draws the injected
// merge-abort / torn-write faults from the executor's seeded fault plan
// and routes them through LiveIndex::CommitMerge, which publishes
// build-then-swap or rolls back to the last good snapshot. Both
// outcomes land in the trace (merge.publish / merge.abort instants) and
// in MergeRecords, from which recovery time is measured.
//
// Determinism: with ingest disabled (zero docs) this loop reduces to
// the plain serving loop — same decisions, same trace — and with
// ingest enabled every run is bit-reproducible per (arrival seed, fault
// seed) pair.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "index/delta_segment.h"
#include "index/live_index.h"
#include "obs/metrics.h"
#include "serve/server.h"
#include "sim/sim_executor.h"
#include "topk/algorithm.h"

namespace sparta::serve {

/// One incoming document of the ingest stream (arrival i ingests doc
/// i mod docs.size(), mirroring the query span convention).
struct IngestDoc {
  std::vector<index::TermCount> terms;  ///< sorted by term id, unique
  std::uint32_t doc_len = 0;
};

struct IngestConfig {
  /// Document arrival schedule (count = documents offered). Seeded
  /// independently of the query schedule.
  ArrivalConfig arrivals;
  /// Freeze + publish the active delta once it holds this many docs.
  std::size_t refresh_every_docs = 64;
  /// Begin a background merge once the frozen delta holds this many
  /// docs (and no merge is in flight).
  std::size_t merge_min_docs = 256;
  /// Virtual postings charged per merge chunk job — the granularity at
  /// which merge work interleaves with query jobs.
  std::uint64_t merge_chunk_postings = 4096;
  /// Master switch for background merges (refreshes still publish).
  bool merge_enabled = true;
};

struct LiveServeConfig {
  ServeConfig serve;
  IngestConfig ingest;
};

/// One background merge attempt, on the serving clock.
struct MergeRecord {
  exec::VirtualTime begin = 0;
  exec::VirtualTime end = 0;
  index::MergeOutcome outcome = index::MergeOutcome::kCommitted;
  /// Epoch published by the commit (unchanged published epoch for
  /// aborted / torn-write attempts).
  std::uint64_t epoch = 0;
  /// Docs the merged segment would hold.
  std::uint32_t docs = 0;
};

struct LiveServeResult {
  ServeResult serve;

  std::size_t docs_offered = 0;
  std::size_t docs_ingested = 0;
  std::uint64_t refreshes = 0;
  std::uint64_t merges_committed = 0;
  std::uint64_t merges_aborted = 0;
  std::uint64_t torn_writes = 0;
  /// Final published epoch / total snapshots reclaimed.
  std::uint64_t epochs_published = 0;
  std::uint64_t epochs_reclaimed = 0;

  std::vector<MergeRecord> merges;
  /// Per failed merge attempt: virtual ns from the failure to the next
  /// committed publish (the bench's recovery-time metric). Failures
  /// never recovered within the run are excluded.
  std::vector<exec::VirtualTime> recovery_ns;

  /// True when [t0, t1] overlaps any merge attempt's [begin, end].
  bool OverlapsMerge(exec::VirtualTime t0, exec::VirtualTime t1) const {
    for (const MergeRecord& m : merges) {
      if (t0 <= m.end && m.begin <= t1) return true;
    }
    return false;
  }
};

/// Serves query traffic against a LiveIndex while ingesting documents,
/// all on one SimExecutor Drain pass. The LiveIndex's writer domain is
/// entered only from ingest/merge jobs and the (serialized) admission
/// loop; readers pin snapshots through the epoch manager.
class LiveServer {
 public:
  LiveServer(index::LiveIndex& live, const topk::Algorithm& algo,
             LiveServeConfig config)
      : live_(live), algo_(algo), config_(std::move(config)) {}

  const LiveServeConfig& config() const { return config_; }

  LiveServeResult ServeOnSim(sim::SimExecutor& executor,
                             std::span<const std::vector<TermId>> queries,
                             std::span<const IngestDoc> docs,
                             const topk::SearchParams& base_params);

 private:
  index::LiveIndex& live_;
  const topk::Algorithm& algo_;
  LiveServeConfig config_;
};

/// Folds serve aggregates (AddServeMetrics) plus the live counters into
/// the registry under the "live." prefix.
void AddLiveServeMetrics(const LiveServeResult& result,
                         obs::MetricsRegistry& reg);

}  // namespace sparta::serve

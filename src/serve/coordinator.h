// Sharded scatter-gather serving that survives failures (DESIGN.md §13).
//
// A Cluster is N simulated nodes (sim/node.h) hosting a doc-partitioned
// index (index/sharding.h) with R-way replication — shard s's replica r
// lives on node (s + r) % N, the classic chained-declustering placement
// that spreads a dead node's load over all survivors. The Coordinator
// runs the open-loop serving tier over that cluster on one global
// discrete-event timeline:
//
//   admission  — the single-machine AdmissionController, with its
//       effective queue capacity scaled by the live-node fraction
//       (shard-aware admission: a half-dead cluster drains at half the
//       rate, so keeping the full queue only converts rejects into SLO
//       misses);
//   scatter    — one RPC per shard over the fabric cost model
//       (sim/fabric.h), each carrying a node-side deadline derived from
//       the per-attempt budget so nodes return honest partials instead
//       of blowing the coordinator's timeout;
//   failure    — per-replica circuit breakers fail fast past known-dead
//       replicas; per-attempt timeouts retry the next replica with
//       backoff; an optional hedge duplicates the request to another
//       replica when the primary is slow (straggler defense);
//   gather     — per-shard top-k lists are rebased to global doc ids
//       and merged; shards that never answered make the response an
//       honest partial: ResultStatus::kShardsDegraded with the covered
//       corpus fraction in QueryStats::shard_coverage. A query is never
//       *failed* by a backend fault — the contract is "always answer,
//       say how much of the corpus the answer saw".
//
// Determinism: every source of variation is seeded — node machines,
// arrival schedule, and one cluster-level FaultInjector whose network
// draws (delay, drop) happen in global event order, while partitions
// and crashes are config-scheduled windows that consume no randomness.
// The same ClusterConfig therefore replays bit-identical results,
// coverage, fault logs and traces (tests/test_cluster.cpp).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "index/sharding.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "serve/admission.h"
#include "serve/arrivals.h"
#include "serve/breaker.h"
#include "serve/server.h"
#include "serve/slo_monitor.h"
#include "sim/fabric.h"
#include "sim/fault_injector.h"
#include "sim/node.h"
#include "topk/algorithm.h"
#include "util/histogram.h"

namespace sparta::serve {

struct ClusterConfig {
  /// Cluster shape. Shards are placed shard s, replica r -> node
  /// (s + r) % num_nodes; replication > num_nodes is meaningless.
  int num_shards = 4;
  int num_nodes = 4;
  int replication = 1;

  /// Template for every node's machine. Each node's fault seed is
  /// salted with its id so node-local fault plans differ across nodes
  /// but stay deterministic.
  sim::SimConfig node_sim;
  /// Per-node fault-plan overrides (e.g. one stall-prone straggler).
  struct NodeFaults {
    int node = 0;
    sim::FaultConfig faults;
  };
  std::vector<NodeFaults> node_faults;

  /// Link cost model.
  sim::FabricConfig fabric;
  /// Cluster-level fault plan: network delay/drop draws plus the
  /// partition window and node crash/restart schedule. Node-*local*
  /// faults (stalls, IO) belong in node_sim/node_faults.
  sim::FaultConfig net_faults;

  // --- scatter-gather policy ---
  /// Per-attempt budget at the coordinator, send to reply; an attempt
  /// without a reply by then is declared dead and the next replica is
  /// tried. Also bounds the node-side search deadline (minus the
  /// round-trip estimate), so nodes answer honestly within it.
  exec::VirtualTime shard_deadline = 10 * exec::kMillisecond;
  /// Send attempts per shard per query, first try included.
  int attempts_per_shard = 2;
  /// Wait between an attempt's death and the retry send.
  exec::VirtualTime retry_backoff = 500'000;  // 0.5 ms
  /// If set (!= kNever) and the shard has > 1 replica: duplicate an
  /// unanswered request to the next replica after this delay; first
  /// reply wins. The straggler defense (Dean & Barroso, tail at scale).
  exec::VirtualTime hedge_delay = exec::kNever;

  // --- coordinator policy ---
  ArrivalConfig arrivals;
  AdmissionConfig admission;
  /// End-to-end SLO (queue wait + scatter-gather), kNever = none.
  exec::VirtualTime slo = 50 * exec::kMillisecond;
  /// Scale admission capacity by the live-node fraction.
  bool shard_aware_admission = true;
  /// Queries scattered concurrently; others wait in the admission queue.
  std::size_t max_inflight = 8;
  /// Per-replica circuit breakers (replica = (shard, node) assignment).
  bool breaker_enabled = true;
  BreakerConfig breaker;

  /// Cluster trace: tracks 0..num_nodes-1 are the nodes (kShardRpc
  /// parent spans and their kShardService children, correlated on
  /// (record, PackShardAttempt(shard, attempt))), the scheduler track
  /// carries fabric/node-lifecycle events, the serving track the
  /// coordinator's policy events.
  obs::TraceConfig trace;
  /// Cluster flight recorder (same track layout as the trace). All
  /// coordinator-side emission is off any machine clock and charges
  /// nothing, so recorder-on cluster runs stay bit-identical to
  /// recorder-off ones; anomaly triggers freeze postmortems
  /// (kShardsDegraded / kPartialAfterFault / kOom results, breaker
  /// trips, node crashes, SLO breaches).
  obs::FlightRecorderConfig flight;
  /// Windowed SLO burn-rate monitor over the serving timeline; its
  /// breach alerts feed the flight recorder's kSloBreach trigger.
  SloMonitorConfig slo_monitor;
};

/// Aggregates of one cluster serving run; `queries` reuses the
/// single-machine ServedQuery record (coverage lives in
/// result.stats.shard_coverage).
struct ClusterServeResult {
  std::vector<ServedQuery> queries;

  std::size_t offered = 0;
  std::size_t admitted = 0;
  std::size_t rejected_full = 0;
  std::size_t shed = 0;
  std::size_t completed = 0;
  /// Results merged from fewer than all shards (kShardsDegraded).
  std::size_t shards_degraded = 0;
  /// Any degraded status (deadline, fault, OOM, shards).
  std::size_t degraded = 0;
  /// Admitted, full-coverage, within the SLO.
  std::size_t goodput = 0;

  // Scatter-gather accounting.
  std::uint64_t rpcs_sent = 0;
  std::uint64_t rpcs_answered = 0;
  std::uint64_t rpc_timeouts = 0;
  std::uint64_t retries = 0;
  std::uint64_t hedges_sent = 0;
  /// Hedged replies that answered their shard first.
  std::uint64_t hedges_won = 0;
  /// Attempts resolved instantly because every candidate replica's
  /// breaker refused (fail-fast on known-dead replicas).
  std::uint64_t breaker_skips = 0;
  std::uint64_t breaker_trips = 0;
  /// Half-open probe attempts across all replica breakers.
  std::uint64_t breaker_probes = 0;
  /// Messages lost to injected drops or the partition window.
  std::uint64_t net_drops = 0;

  util::Histogram e2e_ns;
  util::Histogram queue_wait_ns;
  /// Per-query corpus coverage in per-mille (1000 = full).
  util::Histogram coverage_pm;
  double min_coverage = 1.0;
  exec::VirtualTime horizon = 0;

  // Observability plane (populated when the respective config is on).
  /// SLO burn-rate alerts fired by the monitor.
  std::uint64_t slo_breaches = 0;
  /// Flight-recorder anomaly triggers (counts past max_postmortems too).
  std::uint64_t anomalies = 0;
  /// Per-bucket health series from the SLO monitor (empty when off).
  obs::TimeSeries series;

  double GoodputQps() const {
    return horizon > 0 ? static_cast<double>(goodput) /
                             (static_cast<double>(horizon) / 1e9)
                       : 0.0;
  }
};

/// The simulated cluster: nodes, shard placement, fabric, and the
/// cluster-level fault plan. Owns no query state — Coordinator does.
class Cluster {
 public:
  /// `sharded.num_shards()` must equal config.num_shards; shards are
  /// replicated onto nodes at construction (cold caches everywhere).
  Cluster(const index::ShardedIndex& sharded, const ClusterConfig& config);

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  int num_shards() const { return sharded_.num_shards(); }
  int replication() const { return config_.replication; }
  /// Node hosting shard `shard`'s replica ordinal `r`.
  int ReplicaNode(int shard, int r) const {
    return (shard + r) % num_nodes();
  }

  sim::Node& node(int id) { return *nodes_[static_cast<std::size_t>(id)]; }
  const index::ShardedIndex& sharded() const { return sharded_; }
  const ClusterConfig& config() const { return config_; }
  const sim::Fabric& fabric() const { return fabric_; }
  /// Non-null iff config.net_faults.enabled().
  sim::FaultInjector* fault_injector() { return injector_.get(); }
  /// Non-null iff config.trace.enabled.
  obs::Tracer* tracer() { return tracer_.get(); }
  /// Non-null iff config.flight.enabled. Same track layout as tracer().
  obs::FlightRecorder* flight_recorder() { return flight_recorder_.get(); }

  /// True when `node` can be reached and is up at `now` (crash schedule
  /// + partition window; used for shard-aware admission scaling).
  bool NodeReachable(int node, exec::VirtualTime now) const;

 private:
  const index::ShardedIndex& sharded_;
  ClusterConfig config_;
  std::vector<std::unique_ptr<sim::Node>> nodes_;
  sim::Fabric fabric_;
  std::unique_ptr<sim::FaultInjector> injector_;
  std::unique_ptr<obs::Tracer> tracer_;
  std::unique_ptr<obs::FlightRecorder> flight_recorder_;
};

/// Scatter-gather serving over a Cluster on one global event timeline.
class Coordinator {
 public:
  Coordinator(Cluster& cluster, const topk::Algorithm& algo)
      : cluster_(cluster), algo_(algo) {}

  /// Open-loop run: arrivals from config.arrivals (arrival i runs query
  /// i mod queries.size()), deterministic per config.
  ClusterServeResult Serve(std::span<const std::vector<TermId>> queries,
                           const topk::SearchParams& base_params);

  /// Same, with an explicit arrival schedule (sorted, virtual ns).
  ClusterServeResult Serve(std::span<const std::vector<TermId>> queries,
                           const topk::SearchParams& base_params,
                           std::span<const exec::VirtualTime> arrivals);

 private:
  Cluster& cluster_;
  const topk::Algorithm& algo_;
};

/// Closed-loop convenience for tests: serves the given queries one at a
/// time (arrival spacing wide enough that they never overlap) and
/// returns the merged per-query results in query order.
std::vector<topk::SearchResult> SearchOnCluster(
    Cluster& cluster, const topk::Algorithm& algo,
    std::span<const std::vector<TermId>> queries,
    const topk::SearchParams& params);

/// Folds a finished cluster run into the registry under "cluster."
/// (admission outcomes, RPC/retry/hedge counters, coverage, latency).
void AddClusterMetrics(const ClusterServeResult& result,
                       obs::MetricsRegistry& reg);

}  // namespace sparta::serve

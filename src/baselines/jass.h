// JASS / pJASS — score-order accumulation (Lin & Trotman; Mackenzie,
// Scholer & Culpepper; §5.2.1).
//
// Workers traverse the impact-ordered posting lists in segments and add
// each posting's score to a shared per-document accumulator protected by
// a granular lock. There is no threshold and no pruning: the heap is
// built once, when traversal ends. Early termination is the heuristic p:
// stop after scanning a fraction p of the query terms' postings
// (p = 1 is exact; its exact variant is known to be inefficient).
#pragma once

#include "topk/algorithm.h"

namespace sparta::algos {

class Jass final : public topk::Algorithm {
 public:
  /// `parallel_name` selects the display name; the implementation is the
  /// same engine (sequential JASS is pJASS on one worker).
  explicit Jass(bool parallel_name = true)
      : name_(parallel_name ? "pJASS" : "JASS") {}

  std::string_view name() const override { return name_; }

  std::unique_ptr<topk::QueryRun> Prepare(const index::InvertedIndex& idx,
                                          std::vector<TermId> terms,
                                          const topk::SearchParams& params,
                                          exec::QueryContext& ctx)
      const override;

 private:
  std::string_view name_;
};

}  // namespace sparta::algos

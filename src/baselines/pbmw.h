// pBMW — parallel Block-Max WAND (Rojas, Gil-Costa & Marin; §5.2.1).
//
// The document space is split into 2x(num workers) equal docid ranges;
// range jobs are drawn from the common job queue. Each worker keeps a
// thread-local heap and threshold Θ_T, periodically promoting
// min(Θ_T, Θ_global) to max(Θ_T, Θ_global) so slower workers catch up.
// When all range jobs finish, a merge job combines the local heaps.
// The approximation knob is the threshold-relaxation factor f.
#pragma once

#include "topk/algorithm.h"

namespace sparta::algos {

class PBmw final : public topk::Algorithm {
 public:
  std::string_view name() const override { return "pBMW"; }

  std::unique_ptr<topk::QueryRun> Prepare(const index::InvertedIndex& idx,
                                          std::vector<TermId> terms,
                                          const topk::SearchParams& params,
                                          exec::QueryContext& ctx)
      const override;
};

}  // namespace sparta::algos

// MaxScore (Turtle & Flood '95): the classic document-order pruning
// algorithm (§3.1). Sequential; included as the third member of the
// document-order family for baseline completeness and cross-checking.
#pragma once

#include "topk/algorithm.h"

namespace sparta::algos {

class MaxScore final : public topk::Algorithm {
 public:
  std::string_view name() const override { return "MaxScore"; }

  std::unique_ptr<topk::QueryRun> Prepare(const index::InvertedIndex& idx,
                                          std::vector<TermId> terms,
                                          const topk::SearchParams& params,
                                          exec::QueryContext& ctx)
      const override;
};

}  // namespace sparta::algos

// TA Random-Access variant (Fagin et al.), parallelized — pRA (§5.2.2).
//
// Workers traverse impact-ordered lists in segments; every *new*
// document encountered is fully scored immediately via random access to
// the other terms' doc-ordered lists (the "secondary index" — which is
// why RA doubles the index footprint, §3.2). Fully scored documents go
// into one shared heap. Stopping is RA's UBStop (Eq. 1) — by then every
// potential winner has been fully scored — plus the Δ heuristic for the
// approximate variant. Stopping detection is done by the workers
// themselves (no dedicated task): "RA's stopping detection is
// lightweight ... all workers check the UBStop condition" (§5.2.2).
#pragma once

#include "topk/algorithm.h"

namespace sparta::algos {

class RandomAccessTA final : public topk::Algorithm {
 public:
  /// `private_accumulators` buffers the seen-set membership test in a
  /// per-worker map and resolves it in stripe-homogeneous batches at
  /// segment boundaries (DESIGN.md §14) — same first-encounter-wins
  /// semantics and random-access count, a fraction of the `seen_`
  /// stripe-lock traffic. The display name gains a "+acc" suffix.
  explicit RandomAccessTA(bool parallel_name = true,
                          bool private_accumulators = false)
      : name_(private_accumulators ? "pRA+acc"
                                   : (parallel_name ? "pRA" : "TA-RA")),
        private_accumulators_(private_accumulators) {}

  std::string_view name() const override { return name_; }

  std::unique_ptr<topk::QueryRun> Prepare(const index::InvertedIndex& idx,
                                          std::vector<TermId> terms,
                                          const topk::SearchParams& params,
                                          exec::QueryContext& ctx)
      const override;

 private:
  std::string_view name_;
  bool private_accumulators_;
};

}  // namespace sparta::algos

#include "baselines/bmw.h"

#include <algorithm>
#include <vector>

#include "baselines/cursor.h"
#include "obs/trace.h"

namespace sparta::algos {
namespace {

using exec::WorkerContext;

/// Promotes the slower of (local, global) threshold to the faster one —
/// the pBMW Θ-sharing rule: "Thread T periodically compares Θ to its
/// local Θ_T and promotes the smaller of the two to max(Θ_T, Θ)".
Score SyncTheta(std::atomic<Score>* shared, Score local,
                WorkerContext& w) {
  if (shared == nullptr) return local;
  w.SharedAccess(shared, exec::AccessKind::kRead);
  Score global = shared->load(std::memory_order_relaxed);
  if (local > global) {
    while (global < local &&
           !shared->compare_exchange_weak(global, local,
                                          std::memory_order_relaxed)) {
    }
    w.SharedAccess(shared, exec::AccessKind::kWrite);
    return local;
  }
  return global;
}

}  // namespace

void BmwScan(const index::InvertedIndex& idx, std::span<const TermId> terms,
             topk::TopKHeap& heap, const BmwScanParams& params,
             WorkerContext& w, BmwScanStats& stats) {
  SPARTA_CHECK(params.f >= 1.0);
  const std::size_t m = terms.size();
  SPARTA_CHECK(m >= 1);
  obs::SpanScope scan_span(w, obs::SpanKind::kPostingsScan,
                           params.trace_spans);

  std::vector<DocOrderCursor> cursors;
  cursors.reserve(m);
  for (const TermId t : terms) cursors.emplace_back(idx, t);
  for (auto& c : cursors) {
    if (params.range_begin > 0) {
      c.NextGEQ(params.range_begin, w);
    } else {
      c.Prime(w);
    }
  }

  // Sorted-by-docid view over the cursors (WAND's pivoting order).
  std::vector<DocOrderCursor*> order;
  order.reserve(m);
  for (auto& c : cursors) order.push_back(&c);

  // Local threshold Θ_T: at least the local heap's Θ, possibly promoted
  // from the shared one.
  Score theta_local = heap.threshold();
  std::uint32_t since_sync = 0;

  std::vector<std::uint64_t> start_positions;
  start_positions.reserve(m);
  for (const auto& c : cursors) start_positions.push_back(c.position());

  std::uint32_t since_poll = 0;
  for (;;) {
    // Anytime poll: check deadline / escalated faults every few pivots so
    // a stopped scan still leaves a valid (partial) heap behind.
    if (++since_poll >= 32) {
      since_poll = 0;
      if (w.ShouldStop()) {
        stats.stopped = exec::MergeStopCause(stats.stopped, w.stop_cause());
        break;
      }
    }
    std::sort(order.begin(), order.end(),
              [](const DocOrderCursor* a, const DocOrderCursor* b) {
                return a->doc() < b->doc();
              });
    // Pivot bookkeeping: cursor sort + prefix-bound scan over m cursors.
    w.Charge(static_cast<exec::VirtualTime>(m) * 8);

    const Score theta_prune = static_cast<Score>(
        static_cast<double>(theta_local) * params.f);

    // Find the pivot: the first prefix whose term-level upper bounds
    // could beat the (relaxed) threshold.
    Score acc = 0;
    std::size_t pivot = m;
    for (std::size_t r = 0; r < m; ++r) {
      if (order[r]->exhausted()) break;
      acc += order[r]->max_score();
      if (acc > theta_prune) {
        pivot = r;
        break;
      }
    }
    if (pivot == m) break;  // nothing left can beat Θ
    const DocId pivot_doc = order[pivot]->doc();
    if (pivot_doc == kInvalidDoc || pivot_doc >= params.range_end) break;

    if (order[0]->doc() == pivot_doc) {
      // All cursors [0..pivot] are aligned on pivot_doc — and possibly
      // more: cursors beyond the pivot sitting on the same doc also
      // contribute to its score, so the aligned set must include them
      // for the block bound to be a true upper bound on pivot_doc.
      if (params.use_block_max) {
        std::size_t last_aligned = pivot;
        while (last_aligned + 1 < m &&
               !order[last_aligned + 1]->exhausted() &&
               order[last_aligned + 1]->doc() == pivot_doc) {
          ++last_aligned;
        }
        Score block_acc = 0;
        for (std::size_t r = 0; r <= last_aligned; ++r) {
          block_acc += order[r]->block_max();
        }
        if (block_acc <= theta_prune) {
          // Shallow move: no doc before the nearest block boundary can
          // beat the threshold on these terms.
          DocId next = kInvalidDoc;
          for (std::size_t r = 0; r <= last_aligned; ++r) {
            next = std::min(next, order[r]->block_last_doc());
          }
          DocId target = next == kInvalidDoc ? kInvalidDoc : next + 1;
          if (last_aligned + 1 < m && !order[last_aligned + 1]->exhausted()) {
            target = std::min(target, order[last_aligned + 1]->doc());
          }
          target = std::max(target, pivot_doc + 1);
          for (std::size_t r = 0; r <= last_aligned; ++r) {
            order[r]->NextGEQ(target, w);
          }
          continue;
        }
      }
      // Full evaluation of pivot_doc ("fully scoring each document
      // before moving to the next", §3.1).
      Score score = 0;
      std::size_t matched = 0;
      for (std::size_t r = 0; r < m && !order[r]->exhausted() &&
                              order[r]->doc() == pivot_doc;
           ++r) {
        score += order[r]->score();
        order[r]->Next(w);
        ++matched;
      }
      ++stats.scored;
      w.Charge(20 + 6 * static_cast<exec::VirtualTime>(matched));
      if (score > heap.threshold()) {
        if (heap.Insert({score, pivot_doc})) {
          ++stats.heap_inserts;
          if (params.tracer != nullptr) {
            params.tracer->OnHeapUpdate(w.Now(), pivot_doc, score);
          }
        }
        theta_local = std::max(theta_local, heap.threshold());
      }
      if (++since_sync >= params.sync_interval) {
        since_sync = 0;
        theta_local = SyncTheta(params.shared_theta,
                                std::max(theta_local, heap.threshold()), w);
      }
    } else {
      // Not aligned: move the lagging cursors up to the pivot.
      for (std::size_t r = 0; r < pivot; ++r) {
        if (order[r]->doc() < pivot_doc) order[r]->NextGEQ(pivot_doc, w);
      }
    }
  }
  // Final promotion so later jobs of this query see our Θ.
  SyncTheta(params.shared_theta, std::max(theta_local, heap.threshold()),
            w);
  // Postings accounting, clamped to this scan's docid range: shallow
  // moves target block boundaries and may leave a cursor far past
  // range_end, and those skipped tail postings belong to the *next*
  // range job — counting raw position deltas double-counts them across
  // jobs (pBMW could then report postings_processed > postings_total).
  // The clamp is bookkeeping only; traversal and cost charges are
  // untouched.
  std::uint64_t counted = 0;
  for (std::size_t i = 0; i < m; ++i) {
    const auto list = idx.Term(terms[i]).doc_order;
    std::uint64_t cap = list.size();
    if (params.range_end != kInvalidDoc) {
      cap = static_cast<std::uint64_t>(
          std::lower_bound(list.begin(), list.end(), params.range_end,
                           [](const index::Posting& p, DocId d) {
                             return p.doc < d;
                           }) -
          list.begin());
    }
    const std::uint64_t pos =
        std::min<std::uint64_t>(cursors[i].position(), cap);
    const std::uint64_t start =
        std::min<std::uint64_t>(start_positions[i], cap);
    counted += pos - start;
  }
  stats.postings += counted;
  scan_span.set_args(terms[0], counted);
}

namespace {

class BmwRun final : public topk::QueryRun {
 public:
  BmwRun(const index::InvertedIndex& idx, std::vector<TermId> terms,
         const topk::SearchParams& params, exec::QueryContext& ctx,
         bool use_block_max)
      : idx_(idx),
        terms_(std::move(terms)),
        params_(params),
        ctx_(ctx),
        use_block_max_(use_block_max),
        heap_(params.k) {}

  void Start() override {
    ctx_.Submit([this](WorkerContext& w) {
      BmwScanParams scan;
      scan.use_block_max = use_block_max_;
      scan.f = params_.f;
      scan.range_end = idx_.num_docs();
      scan.tracer = params_.tracer;
      scan.trace_spans = params_.trace.enabled;
      BmwScan(idx_, terms_, heap_, scan, w, stats_);
    });
  }

  topk::SearchResult TakeResult() override {
    topk::SearchResult result;
    result.entries = heap_.Extract();
    result.status = topk::StatusFromStopCause(stats_.stopped);
    result.stats.postings_processed = stats_.postings;
    for (const TermId t : terms_) {
      result.stats.postings_total += idx_.Term(t).doc_order.size();
    }
    result.stats.heap_inserts = stats_.heap_inserts;
    return result;
  }

 private:
  const index::InvertedIndex& idx_;
  std::vector<TermId> terms_;
  topk::SearchParams params_;
  exec::QueryContext& ctx_;
  bool use_block_max_;
  topk::TopKHeap heap_;
  BmwScanStats stats_;
};

}  // namespace

std::unique_ptr<topk::QueryRun> BlockMaxWand::Prepare(
    const index::InvertedIndex& idx, std::vector<TermId> terms,
    const topk::SearchParams& params, exec::QueryContext& ctx) const {
  return std::make_unique<BmwRun>(idx, std::move(terms), params, ctx,
                                  use_block_max_);
}

}  // namespace sparta::algos

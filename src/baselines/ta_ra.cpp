#include "baselines/ta_ra.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <memory>

#include "obs/trace.h"
#include "topk/doc_heap.h"
#include "topk/doc_map.h"
#include "topk/local_accumulator.h"
#include "util/padded.h"
#include "util/racy.h"
#include "util/thread_annotations.h"

namespace sparta::algos {
namespace {

using exec::AccessKind;
using exec::VirtualTime;
using exec::WorkerContext;
using index::Posting;

class RaRun final : public topk::QueryRun {
 public:
  RaRun(const index::InvertedIndex& idx, std::vector<TermId> terms,
        const topk::SearchParams& params, exec::QueryContext& ctx,
        bool private_accumulators)
      : idx_(idx),
        terms_(std::move(terms)),
        params_(params),
        ctx_(ctx),
        private_accumulators_(private_accumulators),
        m_(terms_.size()),
        ub_(m_),
        seen_(ctx, /*num_terms=*/0),
        heap_(params.k),
        heap_lock_(ctx.MakeLock()),
        positions_(m_, 0),
        heap_upd_time_(static_cast<std::size_t>(ctx.numa_domains())) {
    SPARTA_CHECK(m_ >= 1);
    for (std::size_t i = 0; i < m_; ++i) {
      ub_[i].store(static_cast<Score>(idx_.Term(terms_[i]).max_score),
                   std::memory_order_relaxed);
    }
    // Lock-free by design: lazy UB updates, the done flag and the
    // Δ-stopping timestamp — the Racy<> declarations pair these runtime
    // registrations with the static exemption (DESIGN.md §11).
    ub_.RegisterBenign(ctx, "ra.UB");
    done_.RegisterBenign(ctx, "ra.done");
    // Δ timestamp sharded per NUMA domain, one padded word each (same
    // layout as Sparta's; a single domain is the original word).
    for (auto& shard : heap_upd_time_) {
      shard->store(ctx.start_time(), std::memory_order_relaxed);
      shard.get().RegisterBenign(ctx, "ra.updTime");
      ctx.RegisterContentionRange(&shard, sizeof(shard), "heap.updTime");
    }
    // Contention-profiler registry, same structure names as Sparta's so
    // the per-structure reports line up side by side (the `seen_` docMap
    // registers its own stripes).
    ctx.RegisterContentionRange(ub_.data(), m_ * sizeof(ub_[0]), "UB");
    ctx.RegisterContentionRange(&done_, sizeof(done_), "done.flag");
    ctx.RegisterContentionRange(heap_lock_.get(), 1, "heap.lock");
    if (private_accumulators_) {
      accumulators_.reserve(static_cast<std::size_t>(ctx.num_workers()));
      for (int w = 0; w < ctx.num_workers(); ++w) {
        accumulators_.emplace_back(topk::AccumulatorMode::kStore,
                                   /*num_terms=*/0);
      }
    }
  }

  void Start() override {
    for (std::size_t i = 0; i < m_; ++i) {
      ctx_.Submit([this, i](WorkerContext& w) { ProcessTerm(i, w); });
    }
  }

  // TSA-exempt: harvests heap_ without heap_lock_ — valid only after the
  // executor drained every job, when no worker can still be inserting.
  topk::SearchResult TakeResult() override SPARTA_NO_THREAD_SAFETY_ANALYSIS {
    topk::SearchResult result;
    // Anytime: the heap holds fully-scored documents even after OOM or a
    // deadline stop, so always return the best-so-far entries.
    result.entries = heap_.Extract();
    if (oom_.load()) {
      result.status = topk::ResultStatus::kOom;
    } else {
      result.status = topk::StatusFromStopCause(
          stop_cause_.load(std::memory_order_relaxed));
    }
    result.stats.postings_processed = postings_.load();
    for (const TermId t : terms_) {
      result.stats.postings_total += idx_.Term(t).impact_order.size();
    }
    result.stats.random_accesses = random_accesses_.load();
    result.stats.docmap_peak_entries = seen_.PeakSize();
    return result;
  }

 private:
  /// Lock-free Θ peek (TA's pre-insert check and Eq. 1). TSA-exempt:
  /// heap_ is guarded by heap_lock_, but Θ is published through an
  /// atomic and stale reads are safe (a stale Θ only admits extras).
  Score Theta() const SPARTA_NO_THREAD_SAFETY_ANALYSIS {
    return heap_.threshold();
  }

  void RecordStop(exec::StopCause cause) {
    exec::StopCause prev = stop_cause_.load(std::memory_order_relaxed);
    while (exec::MergeStopCause(prev, cause) != prev &&
           !stop_cause_.compare_exchange_weak(
               prev, exec::MergeStopCause(prev, cause),
               std::memory_order_acq_rel)) {
    }
  }

  /// Full document score: the traversed posting plus a random-access
  /// lookup per other term (one random SSD page each on a disk-resident
  /// index — pRA's Achilles' heel, §5.3.2). The total is symmetric in
  /// which term's traversal triggers it, so deferring it across a merge
  /// changes nothing but the moment the I/O is charged.
  Score FullScore(std::size_t from_term, DocId doc, Score posting_score,
                  WorkerContext& w) {
    Score sum = posting_score;
    for (std::size_t j = 0; j < m_; ++j) {
      if (j == from_term) continue;
      const auto view = idx_.Term(terms_[j]);
      sum += static_cast<Score>(idx_.RandomAccessScore(terms_[j], doc));
      // The page touched sits at roughly the docid-proportional position
      // of the doc-ordered list.
      const auto est_pos = static_cast<std::uint64_t>(
          static_cast<double>(view.df()) *
          (static_cast<double>(doc) /
           static_cast<double>(idx_.num_docs())));
      w.IoRandom(view.doc_order_file_offset + est_pos * sizeof(Posting));
      w.Charge(30);  // binary search within the page
      random_accesses_.fetch_add(1, std::memory_order_relaxed);
    }
    return sum;
  }

  /// Heap offer for a fully-scored document (shared by the per-posting
  /// and the merge path).
  void OfferHeap(DocId doc, Score score, WorkerContext& w) {
    if (score <= Theta()) return;
    const exec::CtxLockGuard guard(*heap_lock_, w);
    if (heap_.Insert({score, doc})) {
      TouchHeapUpdTime(w);
      if (params_.tracer != nullptr) {
        params_.tracer->OnHeapUpdate(w.Now(), doc, score);
      }
    }
  }

  /// Records a heap change on this worker's own NUMA domain's word.
  void TouchHeapUpdTime(WorkerContext& w) {
    auto& shard = heap_upd_time_[static_cast<std::size_t>(w.numa_domain())];
    shard->store(w.Now(), std::memory_order_relaxed);
  }

  /// Most recent heap change across all domains (the Δ-stopping read).
  VirtualTime LastHeapUpdTime() const {
    VirtualTime latest = 0;
    for (const auto& shard : heap_upd_time_) {
      latest = std::max(latest, shard->load(std::memory_order_relaxed));
    }
    return latest;
  }

  /// Segment-end merge of the buffered membership tests: one batched
  /// stripe pass decides first-encounter winners; only winners pay the
  /// random accesses. Returns false on memory exhaustion (the partial
  /// merge stays — honest kOom).
  [[nodiscard]] bool MergeSeen(WorkerContext& w) {
    auto& acc = accumulators_[static_cast<std::size_t>(w.worker_id())];
    if (acc.Empty()) return true;
    std::vector<topk::PendingScore> winners;
    const auto stats = acc.MergeInto(
        seen_, w,
        [&](std::span<const topk::PendingScore> group,
            topk::DocType* /*d*/, bool inserted, Score /*folded*/) {
          // "Only the first takes effect": a group that found an
          // existing entry lost the race to another worker's merge.
          if (inserted) winners.push_back(group.front());
        });
    for (const topk::PendingScore& p : winners) {
      OfferHeap(p.doc,
                FullScore(static_cast<std::size_t>(p.term), p.doc, p.score,
                          w),
                w);
    }
    return !stats.oom;
  }

  void ProcessTerm(std::size_t i, WorkerContext& w) {
    if (done_.load(std::memory_order_acquire)) return;
    if (w.ShouldStop()) {
      // Anytime: latch the cause and stop; the heap already holds every
      // fully-scored document seen so far.
      RecordStop(w.stop_cause());
      done_.store(true, std::memory_order_release);
      w.SharedAccess(&done_, AccessKind::kWrite);
      return;
    }
    const auto view = idx_.Term(terms_[i]);
    const auto list = view.impact_order;
    const std::size_t begin = positions_[i];
    const std::size_t end =
        std::min<std::size_t>(begin + params_.seg_size, list.size());
    if (begin >= end) return;

    obs::SpanScope scan_span(w, obs::SpanKind::kPostingsScan,
                             params_.trace.enabled);
    w.IoSequential(view.impact_order_file_offset + begin * sizeof(Posting),
                   (end - begin) * sizeof(Posting));
    Score last_score = ub_[i].load(std::memory_order_relaxed);
    std::size_t processed = 0;
    for (std::size_t j = begin; j < end; ++j) {
      if (done_.load(std::memory_order_acquire)) break;
      const Posting posting = list[j];
      last_score = static_cast<Score>(posting.score);
      ++processed;

      if (private_accumulators_) {
        // Buffer the membership test; the batched merge at segment end
        // resolves first-encounter winners against the shared set.
        if (!accumulators_[static_cast<std::size_t>(w.worker_id())].Add(
                posting.doc, static_cast<std::int32_t>(i),
                static_cast<Score>(posting.score), w)) {
          (void)MergeSeen(w);  // keep what fits — honest kOom partial
          oom_.store(true);
          done_.store(true, std::memory_order_release);
          return;
        }
        continue;
      }

      // Only the first encounter scores a document ("the implementation
      // allows only the first to take effect").
      const auto res = seen_.GetOrCreate(posting.doc, w);
      if (res.oom) {
        oom_.store(true);
        done_.store(true, std::memory_order_release);
        return;
      }
      if (!res.inserted) continue;

      OfferHeap(posting.doc,
                FullScore(i, posting.doc,
                          static_cast<Score>(posting.score), w),
                w);
    }
    positions_[i] = begin + processed;
    postings_.fetch_add(processed, std::memory_order_relaxed);
    w.ChargePostings(processed);
    scan_span.set_args(terms_[i], processed);

    // Segment boundary: resolve the buffered membership tests and score
    // the winners *before* publishing UB and running the stop checks —
    // UBStop's "every potential winner is fully scored by now" argument
    // needs no document parked unscored in a private buffer.
    if (private_accumulators_ && !MergeSeen(w)) {
      oom_.store(true);
      done_.store(true, std::memory_order_release);
      return;
    }

    ub_[i].store(positions_[i] >= list.size() ? 0 : last_score,
                 std::memory_order_relaxed);
    w.SharedAccess(&ub_[i], AccessKind::kWrite);

    // Worker-side stopping checks (Eq. 1; Δ heap-stability heuristic).
    Score ub_sum = 0;
    for (std::size_t r = 0; r < m_; ++r) {
      w.SharedAccess(&ub_[r], AccessKind::kRead);
      ub_sum += ub_[r].load(std::memory_order_relaxed);
    }
    const VirtualTime upd = LastHeapUpdTime();
    const bool delta_stop = params_.delta != exec::kNever &&
                            upd + params_.delta < w.Now();
    if (ub_sum <= Theta() || delta_stop) {
      done_.store(true, std::memory_order_release);
      w.SharedAccess(&done_, AccessKind::kWrite);
      return;
    }
    if (positions_[i] < list.size()) {
      ctx_.Submit([this, i](WorkerContext& w2) { ProcessTerm(i, w2); });
    }
  }

  const index::InvertedIndex& idx_;
  std::vector<TermId> terms_;
  topk::SearchParams params_;
  exec::QueryContext& ctx_;
  const bool private_accumulators_;
  std::size_t m_;

  /// Racy<> by design: pRA's lazy UB array, updated lock-free (§5.3).
  util::Racy<topk::UpperBounds> ub_;
  topk::ConcurrentDocMap seen_;  // scored-document set
  topk::TopKHeap heap_ SPARTA_GUARDED_BY(*heap_lock_);
  std::unique_ptr<exec::CtxLock> heap_lock_;

  std::vector<std::size_t> positions_;
  /// Racy<> by design: written under heap_lock_, read lock-free by the
  /// Δ-stopping check. One padded word per NUMA domain (DESIGN.md §14).
  std::vector<util::Padded<util::Racy<std::atomic<VirtualTime>>>>
      heap_upd_time_;
  /// Per-worker private buffers (empty unless private_accumulators_);
  /// each worker touches only its own entry, indexed by worker_id.
  std::vector<topk::LocalAccumulator> accumulators_;
  /// Racy<> by design: the done flag, polled lock-free at loop heads.
  util::Racy<std::atomic<bool>> done_{false};
  std::atomic<bool> oom_{false};
  std::atomic<exec::StopCause> stop_cause_{exec::StopCause::kNone};
  std::atomic<std::uint64_t> postings_{0};
  std::atomic<std::uint64_t> random_accesses_{0};
};

}  // namespace

std::unique_ptr<topk::QueryRun> RandomAccessTA::Prepare(
    const index::InvertedIndex& idx, std::vector<TermId> terms,
    const topk::SearchParams& params, exec::QueryContext& ctx) const {
  return std::make_unique<RaRun>(idx, std::move(terms), params, ctx,
                                 private_accumulators_);
}

}  // namespace sparta::algos

#include "baselines/jass.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <unordered_map>

#include "obs/trace.h"
#include "topk/doc_map.h"
#include "topk/doc_heap.h"
#include "util/thread_annotations.h"

namespace sparta::algos {
namespace {

using exec::VirtualTime;
using exec::WorkerContext;
using index::Posting;

/// Modeled per-accumulator footprint: a ConcurrentHashMap node plus the
/// paper's per-document lock object (§5.2.1) — noticeably heavier than
/// the NRA family's entries, and the reason pJASS is the first to hit
/// the memory wall on the big corpus ("pJASS intentionally avoids
/// pruning and maintains a huge in-memory document map", §6).
constexpr std::int64_t kJassEntryBytes = 136;

class JassRun final : public topk::QueryRun {
 public:
  JassRun(const index::InvertedIndex& idx, std::vector<TermId> terms,
          const topk::SearchParams& params, exec::QueryContext& ctx)
      : idx_(idx),
        terms_(std::move(terms)),
        params_(params),
        ctx_(ctx),
        accumulators_(ctx, /*num_terms=*/0, kJassEntryBytes),
        heap_(params.k),
        positions_(terms_.size(), 0),
        active_terms_(static_cast<int>(terms_.size())) {
    SPARTA_CHECK(params_.p > 0.0 && params_.p <= 1.0);
    std::uint64_t total = 0;
    for (const TermId t : terms_) total += idx_.Entry(t).df;
    budget_ = static_cast<std::uint64_t>(
        params_.p * static_cast<double>(total));
    budget_ = std::max<std::uint64_t>(budget_, 1);
    if (params_.tracer != nullptr) {
      trace_lock_ = ctx.MakeLock();
      ctx.RegisterContentionRange(trace_lock_.get(), 1, "jass.traceLock");
    }
  }

  void Start() override {
    for (std::size_t i = 0; i < terms_.size(); ++i) {
      ctx_.Submit([this, i](WorkerContext& w) { ProcessTerm(i, w); });
    }
  }

  topk::SearchResult TakeResult() override {
    topk::SearchResult result;
    // Anytime: the finalize sweep ran even on OOM/deadline/fault, so the
    // heap always holds the best-so-far accumulators.
    result.entries = heap_.Extract();
    if (oom_.load()) {
      result.status = topk::ResultStatus::kOom;
    } else {
      result.status = topk::StatusFromStopCause(
          stop_cause_.load(std::memory_order_relaxed));
    }
    result.stats.postings_processed = postings_.load();
    for (const TermId t : terms_) {
      result.stats.postings_total += idx_.Term(t).impact_order.size();
    }
    result.stats.docmap_peak_entries = accumulators_.PeakSize();
    return result;
  }

 private:
  void ProcessTerm(std::size_t i, WorkerContext& w) {
    if (done_.load(std::memory_order_acquire) ||
        finalize_started_.load(std::memory_order_acquire)) {
      return;
    }
    if (w.ShouldStop()) {
      // Deadline or escalated fault: record why and jump straight to the
      // finalize sweep so the partial accumulators become a top-k.
      RecordStop(w.stop_cause());
      StartFinalize();
      return;
    }
    const auto view = idx_.Term(terms_[i]);
    const auto list = view.impact_order;
    const std::size_t begin = positions_[i];
    const std::size_t end =
        std::min<std::size_t>(begin + params_.seg_size, list.size());

    if (begin < end) {
      obs::SpanScope scan_span(w, obs::SpanKind::kPostingsScan,
                               params_.trace.enabled);
      w.IoSequential(
          view.impact_order_file_offset + begin * sizeof(Posting),
          (end - begin) * sizeof(Posting));
      std::size_t consumed = 0;
      for (std::size_t j = begin; j < end; ++j) {
        if (done_.load(std::memory_order_acquire)) break;
        const Posting posting = list[j];
        ++consumed;
        const auto res = accumulators_.AddScore(
            posting.doc, static_cast<Score>(posting.score), w);
        if (res.oom) {
          // Out of budget: stop accumulating but still finalize, so the
          // caller gets the best-so-far top-k tagged kOom.
          oom_.store(true);
          StartFinalize();
          return;
        }
        if (params_.tracer != nullptr && res.doc != nullptr) {
          TraceAccumulation(res.doc, w);
        }
      }
      // Count and charge only what the loop actually consumed: a done_
      // flag raised mid-segment (threaded mode) used to leave the whole
      // [begin, end) window charged and counted, drifting
      // postings_processed past the postings actually read.
      positions_[i] = begin + consumed;
      const auto processed = static_cast<std::uint64_t>(consumed);
      scan_span.set_args(terms_[i], processed);
      w.ChargePostings(processed);
      const auto total =
          postings_.fetch_add(processed, std::memory_order_relaxed) +
          processed;
      if (total >= budget_) {
        StartFinalize();
        return;
      }
    }

    if (positions_[i] >= list.size()) {
      // This term is exhausted; when the last term finishes, finalize.
      if (active_terms_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        StartFinalize();
      }
      return;
    }
    ctx_.Submit([this, i](WorkerContext& w2) { ProcessTerm(i, w2); });
  }

  void RecordStop(exec::StopCause cause) {
    exec::StopCause prev = stop_cause_.load(std::memory_order_relaxed);
    while (exec::MergeStopCause(prev, cause) != prev &&
           !stop_cause_.compare_exchange_weak(
               prev, exec::MergeStopCause(prev, cause),
               std::memory_order_acq_rel)) {
    }
  }

  void StartFinalize() {
    if (finalize_started_.exchange(true)) return;
    ctx_.Submit([this](WorkerContext& w) {
      // Build the top-k heap from the accumulators in one pass. The map
      // may still see stragglers mid-segment, hence the locked sweep.
      obs::SpanScope span(w, obs::SpanKind::kFinalize,
                          params_.trace.enabled);
      std::size_t scanned = 0;
      accumulators_.ForEachLocked(
          [&](topk::DocType* d) {
            ++scanned;
            heap_.Insert(
                {d->lb.load(std::memory_order_relaxed), d->id()});
          },
          w);
      w.StructureAccessMany(accumulators_.ApproxBytes(),
                            /*write_shared=*/false, scanned);
      w.Charge(static_cast<VirtualTime>(scanned) * 4);
      span.set_args(scanned);
      done_.store(true, std::memory_order_release);
    });
  }

  void TraceAccumulation(topk::DocType* d, WorkerContext& w) {
    // Tracing-only shadow of the accumulated top-k: reconstructs
    // "recall over time" curves without changing the algorithm (JASS
    // proper has no online heap). Deduplicated per document — a plain
    // heap of (value, doc) pairs would fill with stale duplicates of
    // growing accumulators and inflate its threshold past the true kth.
    const Score lb = d->lb.load(std::memory_order_relaxed);
    if (lb <= trace_threshold_.load(std::memory_order_relaxed)) return;
    const exec::CtxLockGuard guard(*trace_lock_, w);
    trace_best_[d->id()] = lb;
    params_.tracer->OnHeapUpdate(w.Now(), d->id(), lb);
    if (++trace_updates_ % 256 == 0 &&
        trace_best_.size() > static_cast<std::size_t>(params_.k)) {
      // Refresh the threshold: kth largest tracked value.
      std::vector<Score> values;
      values.reserve(trace_best_.size());
      // sparta-lint: allow(unordered-iter) order-insensitive: the values
      // feed nth_element, whose result is a set-property of the map.
      for (const auto& [doc, score] : trace_best_) {
        values.push_back(score);
      }
      const auto kth = values.begin() + (params_.k - 1);
      std::nth_element(values.begin(), kth, values.end(),
                       std::greater<>());
      trace_threshold_.store(*kth, std::memory_order_relaxed);
    }
  }

  const index::InvertedIndex& idx_;
  std::vector<TermId> terms_;
  topk::SearchParams params_;
  exec::QueryContext& ctx_;

  topk::ConcurrentDocMap accumulators_;
  topk::TopKHeap heap_;
  std::vector<std::size_t> positions_;
  std::uint64_t budget_ = 0;

  std::atomic<std::uint64_t> postings_{0};
  std::atomic<int> active_terms_;
  std::atomic<bool> finalize_started_{false};
  std::atomic<bool> done_{false};
  std::atomic<bool> oom_{false};
  std::atomic<exec::StopCause> stop_cause_{exec::StopCause::kNone};

  std::unordered_map<DocId, Score> trace_best_
      SPARTA_GUARDED_BY(*trace_lock_);
  std::atomic<Score> trace_threshold_{0};
  std::uint64_t trace_updates_ SPARTA_GUARDED_BY(*trace_lock_) = 0;
  std::unique_ptr<exec::CtxLock> trace_lock_;
};

}  // namespace

std::unique_ptr<topk::QueryRun> Jass::Prepare(
    const index::InvertedIndex& idx, std::vector<TermId> terms,
    const topk::SearchParams& params, exec::QueryContext& ctx) const {
  return std::make_unique<JassRun>(idx, std::move(terms), params, ctx);
}

}  // namespace sparta::algos

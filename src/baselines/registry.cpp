#include "baselines/registry.h"

#include "baselines/bmw.h"
#include "baselines/jass.h"
#include "baselines/maxscore.h"
#include "baselines/pbmw.h"
#include "baselines/pnra.h"
#include "baselines/snra.h"
#include "baselines/ta_ra.h"
#include "core/sparta.h"

namespace sparta::algos {

std::unique_ptr<topk::Algorithm> MakeAlgorithm(std::string_view name) {
  if (name == "Sparta") return std::make_unique<core::Sparta>();
  if (name == "Sparta+acc") {
    core::SpartaOptions options;
    options.private_accumulators = true;
    options.name = "Sparta+acc";
    return std::make_unique<core::Sparta>(options);
  }
  if (name == "pNRA") return std::make_unique<PNra>();
  if (name == "sNRA") return std::make_unique<SNra>();
  if (name == "TA-NRA") return std::make_unique<SNra>(false);
  if (name == "pRA") return std::make_unique<RandomAccessTA>();
  if (name == "pRA+acc") {
    return std::make_unique<RandomAccessTA>(true,
                                            /*private_accumulators=*/true);
  }
  if (name == "TA-RA") return std::make_unique<RandomAccessTA>(false);
  if (name == "pBMW") return std::make_unique<PBmw>();
  if (name == "pJASS") return std::make_unique<Jass>();
  if (name == "JASS") return std::make_unique<Jass>(false);
  if (name == "BMW") return std::make_unique<BlockMaxWand>(true);
  if (name == "WAND") return std::make_unique<BlockMaxWand>(false);
  if (name == "MaxScore") return std::make_unique<MaxScore>();
  return nullptr;
}

std::vector<std::string_view> PaperAlgorithms() {
  return {"Sparta", "pNRA", "sNRA", "pRA", "pBMW", "pJASS"};
}

std::vector<std::string_view> AllAlgorithms() {
  return {"Sparta", "Sparta+acc", "pNRA", "sNRA", "pRA", "pRA+acc",
          "pBMW",   "pJASS",      "TA-RA", "TA-NRA", "JASS", "BMW",
          "WAND",   "MaxScore"};
}

}  // namespace sparta::algos

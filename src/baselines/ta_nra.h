// Sequential NRA (Fagin et al.'s No-Random-Access TA, §3.2) over a
// document shard — the building block of sNRA (shared-nothing NRA) and
// usable standalone as the sequential TA-NRA baseline.
//
// Classic NRA with the standard candidate-set optimizations of the
// sequential literature (Mamoulis et al.): round-robin traversal of the
// impact-ordered lists, partial-score candidates with lower/upper
// bounds, a lower-bound top-k heap, insert cutoff once UBStop (Eq. 1)
// holds, and the two-part safe stopping rule (Eq. 1 + Eq. 2).
#pragma once

#include <vector>

#include "exec/context.h"
#include "index/types.h"
#include "topk/params.h"
#include "topk/result.h"

namespace sparta::algos {

struct NraShardInput {
  struct TermList {
    /// Impact-ordered postings restricted to the shard's docid range.
    std::vector<index::Posting> postings;
    /// Synthetic byte offset of this shard-list in the shard's index
    /// file, for the I/O model.
    std::uint64_t io_offset = 0;
  };
  std::vector<TermList> lists;
  int k = 100;
  exec::VirtualTime delta = exec::kNever;
  std::uint32_t seg_size = 1024;
  topk::HeapTracer* tracer = nullptr;
  /// Emit one obs postings.scan span per traversed segment (no-op unless
  /// the executor also has tracing enabled).
  bool trace_spans = false;
};

struct NraShardOutput {
  std::vector<topk::ResultEntry> topk;  ///< canonical order, lb scores
  bool oom = false;
  /// Why the scan stopped early (deadline / escalated fault); kNone when
  /// it ran to a safe stopping condition.
  exec::StopCause stopped = exec::StopCause::kNone;
  std::uint64_t postings = 0;
  std::uint64_t postings_total = 0;  ///< shard-list postings available
  std::uint64_t peak_candidates = 0;
};

/// Runs the whole shard to completion within the calling job, charging
/// costs to `w`. Thread-local by construction: no shared state.
NraShardOutput NraShardScan(const NraShardInput& input,
                            exec::WorkerContext& w);

}  // namespace sparta::algos

#include "baselines/snra.h"

#include <atomic>
#include <memory>

#include "baselines/ta_nra.h"
#include "obs/trace.h"
#include "topk/doc_heap.h"

namespace sparta::algos {
namespace {

using exec::WorkerContext;
using index::Posting;

class SNraRun final : public topk::QueryRun {
 public:
  SNraRun(const index::InvertedIndex& idx, std::vector<TermId> terms,
          const topk::SearchParams& params, exec::QueryContext& ctx,
          int num_shards)
      : idx_(idx),
        terms_(std::move(terms)),
        params_(params),
        ctx_(ctx),
        num_shards_(num_shards),
        shards_left_(num_shards),
        outputs_(static_cast<std::size_t>(num_shards)),
        merged_(params.k) {
    SPARTA_CHECK(num_shards_ >= 1);
  }

  void Start() override {
    // Partition every term's impact-ordered list by docid range. The
    // partitioning itself models the paper's *offline* index sharding,
    // so it is not charged to query time.
    const DocId n = idx_.num_docs();
    const DocId range =
        (n + static_cast<DocId>(num_shards_) - 1) /
        static_cast<DocId>(num_shards_);
    inputs_.resize(static_cast<std::size_t>(num_shards_));
    for (int s = 0; s < num_shards_; ++s) {
      auto& input = inputs_[static_cast<std::size_t>(s)];
      input.k = params_.k;
      input.delta = params_.delta;
      input.seg_size = params_.seg_size;
      input.tracer = params_.tracer;
      input.trace_spans = params_.trace.enabled;
      input.lists.resize(terms_.size());
    }
    for (std::size_t i = 0; i < terms_.size(); ++i) {
      const auto view = idx_.Term(terms_[i]);
      for (const Posting& p : view.impact_order) {
        const int s = static_cast<int>(p.doc / range);
        inputs_[static_cast<std::size_t>(s)].lists[i].postings.push_back(p);
      }
      for (int s = 0; s < num_shards_; ++s) {
        // Each shard has its own on-disk index; give every (term, shard)
        // slice a distinct page region beyond the unified index file.
        inputs_[static_cast<std::size_t>(s)].lists[i].io_offset =
            idx_.SizeBytes() * static_cast<std::uint64_t>(s + 1) +
            view.impact_order_file_offset;
      }
    }
    for (int s = 0; s < num_shards_; ++s) {
      ctx_.Submit([this, s](WorkerContext& w) { RunShard(s, w); });
    }
  }

  topk::SearchResult TakeResult() override {
    topk::SearchResult result;
    // Anytime: stopped shards still contributed their partial heaps to
    // the merge, so the merged top-k is always returned.
    result.entries = merged_.Extract();
    exec::StopCause stop = exec::StopCause::kNone;
    for (const auto& o : outputs_) {
      result.stats.postings_processed += o.postings;
      result.stats.postings_total += o.postings_total;
      result.stats.docmap_peak_entries += o.peak_candidates;
      stop = exec::MergeStopCause(stop, o.stopped);
    }
    result.status = oom_.load() ? topk::ResultStatus::kOom
                                : topk::StatusFromStopCause(stop);
    return result;
  }

 private:
  void RunShard(int s, WorkerContext& w) {
    auto& out = outputs_[static_cast<std::size_t>(s)];
    out = NraShardScan(inputs_[static_cast<std::size_t>(s)], w);
    if (out.oom) oom_.store(true);
    if (shards_left_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      ctx_.Submit([this](WorkerContext& mw) {
        obs::SpanScope span(mw, obs::SpanKind::kMerge,
                            params_.trace.enabled);
        span.set_args(outputs_.size());
        for (const auto& o : outputs_) {
          for (const auto& e : o.topk) merged_.Insert({e.score, e.doc});
        }
        mw.Charge(static_cast<exec::VirtualTime>(num_shards_) *
                  static_cast<exec::VirtualTime>(params_.k) * 4);
      });
    }
  }

  const index::InvertedIndex& idx_;
  std::vector<TermId> terms_;
  topk::SearchParams params_;
  exec::QueryContext& ctx_;
  int num_shards_;

  std::vector<NraShardInput> inputs_;
  std::atomic<int> shards_left_;
  std::vector<NraShardOutput> outputs_;
  std::atomic<bool> oom_{false};
  topk::TopKHeap merged_;
};

}  // namespace

std::unique_ptr<topk::QueryRun> SNra::Prepare(
    const index::InvertedIndex& idx, std::vector<TermId> terms,
    const topk::SearchParams& params, exec::QueryContext& ctx) const {
  const int shards = single_shard_ ? 1 : ctx.num_workers();
  return std::make_unique<SNraRun>(idx, std::move(terms), params, ctx,
                                   shards);
}

}  // namespace sparta::algos

#include "baselines/pbmw.h"

#include <atomic>
#include <memory>
#include <vector>

#include "baselines/bmw.h"
#include "obs/trace.h"
#include "util/racy.h"

namespace sparta::algos {
namespace {

using exec::WorkerContext;

class PBmwRun final : public topk::QueryRun {
 public:
  PBmwRun(const index::InvertedIndex& idx, std::vector<TermId> terms,
          const topk::SearchParams& params, exec::QueryContext& ctx)
      : idx_(idx),
        terms_(std::move(terms)),
        params_(params),
        ctx_(ctx),
        merged_(params.k) {
    const int workers = ctx.num_workers();
    num_jobs_ = 2 * workers;  // paper: jobs = 2 x worker threads
    jobs_left_.store(num_jobs_, std::memory_order_relaxed);
    local_heaps_.reserve(static_cast<std::size_t>(workers));
    for (int i = 0; i < workers; ++i) local_heaps_.emplace_back(params.k);
    local_stats_.resize(static_cast<std::size_t>(workers));
    // The shared Θ is a deliberately lock-free atomic (§5.2.2); the
    // Racy<> declaration pairs this runtime registration with the
    // static exemption (DESIGN.md §11).
    shared_theta_.RegisterBenign(ctx, "pbmw.theta");
    ctx.RegisterContentionRange(&shared_theta_, sizeof(shared_theta_),
                                "bmw.theta");
  }

  void Start() override {
    const DocId n = idx_.num_docs();
    const DocId range = (n + static_cast<DocId>(num_jobs_) - 1) /
                        static_cast<DocId>(num_jobs_);
    for (int j = 0; j < num_jobs_; ++j) {
      const DocId begin = static_cast<DocId>(j) * range;
      const DocId end = std::min<DocId>(begin + range, n);
      ctx_.Submit([this, begin, end](WorkerContext& w) {
        RunRange(begin, end, w);
      });
    }
  }

  topk::SearchResult TakeResult() override {
    topk::SearchResult result;
    result.entries = merged_.Extract();
    exec::StopCause stop = exec::StopCause::kNone;
    for (const auto& s : local_stats_) {
      result.stats.postings_processed += s.postings;
      result.stats.heap_inserts += s.heap_inserts;
      stop = exec::MergeStopCause(stop, s.stopped);
    }
    result.status = topk::StatusFromStopCause(stop);
    for (const TermId t : terms_) {
      result.stats.postings_total += idx_.Term(t).doc_order.size();
    }
    return result;
  }

 private:
  void RunRange(DocId begin, DocId end, WorkerContext& w) {
    auto& stats = local_stats_[static_cast<std::size_t>(w.worker_id())];
    if (w.ShouldStop()) {
      // Anytime: skip this range entirely, but still fall through to the
      // jobs_left_ decrement so the merge of already-built heaps runs.
      stats.stopped = exec::MergeStopCause(stats.stopped, w.stop_cause());
    } else if (begin < end) {
      auto& heap =
          local_heaps_[static_cast<std::size_t>(w.worker_id())];
      BmwScanParams scan;
      scan.f = params_.f;
      scan.range_begin = begin;
      scan.range_end = end;
      scan.shared_theta = &shared_theta_;
      scan.tracer = params_.tracer;
      scan.trace_spans = params_.trace.enabled;
      BmwScan(idx_, terms_, heap, scan, w, stats);
    }
    if (jobs_left_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last range done: merge the local heaps (lightweight, done as its
      // own job so the merge cost lands on the query's critical path).
      ctx_.Submit([this](WorkerContext& mw) {
        obs::SpanScope span(mw, obs::SpanKind::kMerge,
                            params_.trace.enabled);
        span.set_args(local_heaps_.size());
        for (const auto& heap : local_heaps_) merged_.Merge(heap);
        mw.Charge(static_cast<exec::VirtualTime>(local_heaps_.size()) *
                  static_cast<exec::VirtualTime>(params_.k) * 4);
      });
    }
  }

  const index::InvertedIndex& idx_;
  std::vector<TermId> terms_;
  topk::SearchParams params_;
  exec::QueryContext& ctx_;

  int num_jobs_ = 0;
  std::atomic<int> jobs_left_{0};
  /// Racy<> by design: every range job reads and raises Θ lock-free.
  util::Racy<std::atomic<Score>> shared_theta_{0};
  std::vector<topk::TopKHeap> local_heaps_;
  std::vector<BmwScanStats> local_stats_;
  topk::TopKHeap merged_;
};

}  // namespace

std::unique_ptr<topk::QueryRun> PBmw::Prepare(
    const index::InvertedIndex& idx, std::vector<TermId> terms,
    const topk::SearchParams& params, exec::QueryContext& ctx) const {
  return std::make_unique<PBmwRun>(idx, std::move(terms), params, ctx);
}

}  // namespace sparta::algos

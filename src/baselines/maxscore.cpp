#include "baselines/maxscore.h"

#include <algorithm>
#include <vector>

#include "baselines/cursor.h"
#include "topk/doc_heap.h"

namespace sparta::algos {
namespace {

using exec::WorkerContext;

class MaxScoreRun final : public topk::QueryRun {
 public:
  MaxScoreRun(const index::InvertedIndex& idx, std::vector<TermId> terms,
              const topk::SearchParams& params, exec::QueryContext& ctx)
      : idx_(idx),
        terms_(std::move(terms)),
        params_(params),
        ctx_(ctx),
        heap_(params.k) {}

  void Start() override {
    ctx_.Submit([this](WorkerContext& w) { Scan(w); });
  }

  topk::SearchResult TakeResult() override {
    topk::SearchResult result;
    // sparta-lint: allow(result-status) the scan loop has no early-exit
    // points (it never observes stop causes), so the default kComplete
    // is always accurate for what this producer returns.
    result.entries = heap_.Extract();
    result.stats.postings_processed = postings_;
    result.stats.heap_inserts = heap_inserts_;
    return result;
  }

 private:
  void Scan(WorkerContext& w) {
    const std::size_t m = terms_.size();
    std::vector<DocOrderCursor> cursors;
    cursors.reserve(m);
    for (const TermId t : terms_) cursors.emplace_back(idx_, t);
    for (auto& c : cursors) c.Prime(w);

    // Terms ordered by increasing max score; cum_[j] = sum of the j+1
    // smallest term bounds. The first `essential_` terms whose cumulative
    // bound exceeds Θ must be traversed; the rest are probe-only.
    std::vector<std::size_t> by_bound(m);
    for (std::size_t i = 0; i < m; ++i) by_bound[i] = i;
    std::sort(by_bound.begin(), by_bound.end(),
              [&](std::size_t a, std::size_t b) {
                return cursors[a].max_score() < cursors[b].max_score();
              });
    std::vector<Score> cum(m);
    Score acc = 0;
    for (std::size_t j = 0; j < m; ++j) {
      acc += cursors[by_bound[j]].max_score();
      cum[j] = acc;
    }

    // first_essential = smallest j with cum[j] > Θ.
    std::size_t first_essential = 0;
    auto refresh_split = [&] {
      const Score theta = heap_.threshold();
      while (first_essential < m && cum[first_essential] <= theta) {
        ++first_essential;
      }
    };

    for (;;) {
      refresh_split();
      if (first_essential >= m) break;  // no term combination can win

      // Candidate: the smallest docid among essential cursors.
      DocId d = kInvalidDoc;
      for (std::size_t j = first_essential; j < m; ++j) {
        d = std::min(d, cursors[by_bound[j]].doc());
      }
      if (d == kInvalidDoc) break;

      // Score essential terms at d.
      Score score = 0;
      for (std::size_t j = first_essential; j < m; ++j) {
        auto& c = cursors[by_bound[j]];
        if (c.doc() == d) {
          score += c.score();
          c.Next(w);
        }
      }
      ++scored_;
      // Probe non-essential terms from the largest bound down, pruning
      // with the remaining-bound test.
      bool viable = true;
      for (std::size_t j = first_essential; j-- > 0;) {
        if (score + cum[j] <= heap_.threshold()) {
          viable = false;
          break;
        }
        auto& c = cursors[by_bound[j]];
        c.NextGEQ(d, w);
        if (c.doc() == d) score += c.score();
      }
      if (viable && score > heap_.threshold()) {
        if (heap_.Insert({score, d})) {
          ++heap_inserts_;
          if (params_.tracer != nullptr) {
            params_.tracer->OnHeapUpdate(w.Now(), d, score);
          }
        }
      }
      w.Charge(static_cast<exec::VirtualTime>(m) * 2);
    }
    for (const auto& c : cursors) postings_ += c.position();
  }

  const index::InvertedIndex& idx_;
  std::vector<TermId> terms_;
  topk::SearchParams params_;
  exec::QueryContext& ctx_;
  topk::TopKHeap heap_;
  std::uint64_t postings_ = 0;
  std::uint64_t scored_ = 0;
  std::uint64_t heap_inserts_ = 0;
};

}  // namespace

std::unique_ptr<topk::QueryRun> MaxScore::Prepare(
    const index::InvertedIndex& idx, std::vector<TermId> terms,
    const topk::SearchParams& params, exec::QueryContext& ctx) const {
  return std::make_unique<MaxScoreRun>(idx, std::move(terms), params, ctx);
}

}  // namespace sparta::algos

// Document-order posting-list cursors with skipping, shared by the
// document-order algorithm family (MaxScore / WAND / BMW / pBMW, §3.1).
//
// A cursor walks one term's doc-ordered posting list. NextGEQ() uses the
// block-max metadata for block-level skipping and only charges I/O for
// blocks actually decoded — the essence of BMW's advantage (skipped
// blocks are never read from disk).
#pragma once

#include <algorithm>
#include <span>

#include "exec/context.h"
#include "index/block_max.h"
#include "index/inverted_index.h"

namespace sparta::algos {

class DocOrderCursor {
 public:
  DocOrderCursor(const index::InvertedIndex& idx, TermId term)
      : view_(idx.Term(term)) {}

  /// Current docid, or kInvalidDoc when exhausted.
  DocId doc() const {
    return pos_ < view_.doc_order.size() ? view_.doc_order[pos_].doc
                                         : kInvalidDoc;
  }

  Score score() const {
    SPARTA_CHECK(pos_ < view_.doc_order.size());
    return static_cast<Score>(view_.doc_order[pos_].score);
  }

  /// Term-level score upper bound (for WAND/MaxScore pivoting).
  Score max_score() const { return static_cast<Score>(view_.max_score); }

  bool exhausted() const { return pos_ >= view_.doc_order.size(); }

  /// Upper bound within the block containing the current position.
  Score block_max() const {
    const auto b = pos_ / index::kBlockSize;
    SPARTA_CHECK(b < view_.blocks.size());
    return static_cast<Score>(view_.blocks[b].max_score);
  }

  /// Last docid of the current block (the shallow-move boundary).
  DocId block_last_doc() const {
    const auto b = pos_ / index::kBlockSize;
    SPARTA_CHECK(b < view_.blocks.size());
    return view_.blocks[b].last_doc;
  }

  /// Charges the read of the first block (call once before traversal).
  void Prime(exec::WorkerContext& w) {
    if (!exhausted()) {
      TouchBlock(0, std::min<std::size_t>(index::kBlockSize,
                                          view_.doc_order.size()),
                 w);
    }
  }

  /// Advances to the first posting with docid >= target, skipping whole
  /// blocks via the metadata. Charges I/O only for the block decoded.
  void NextGEQ(DocId target, exec::WorkerContext& w) {
    if (exhausted() || doc() >= target) return;
    const std::size_t block = index::FindBlock(view_.blocks, target);
    if (block >= view_.blocks.size()) {
      pos_ = view_.doc_order.size();
      return;
    }
    const std::size_t block_begin = block * index::kBlockSize;
    const std::size_t block_end = std::min<std::size_t>(
        block_begin + index::kBlockSize, view_.doc_order.size());
    TouchBlock(block_begin, block_end, w);
    // Binary search inside the decoded block.
    const auto first = view_.doc_order.begin() +
                       static_cast<std::ptrdiff_t>(
                           std::max(block_begin, pos_));
    const auto last =
        view_.doc_order.begin() + static_cast<std::ptrdiff_t>(block_end);
    const auto it = std::lower_bound(
        first, last, target,
        [](const index::Posting& p, DocId d) { return p.doc < d; });
    pos_ = static_cast<std::size_t>(it - view_.doc_order.begin());
    w.ChargePostings(1);
    w.Charge(12);  // block lookup + in-block binary search
  }

  /// Advances by one posting.
  void Next(exec::WorkerContext& w) {
    SPARTA_CHECK(!exhausted());
    ++pos_;
    if (!exhausted() && pos_ % index::kBlockSize == 0) {
      TouchBlock(pos_, std::min<std::size_t>(pos_ + index::kBlockSize,
                                             view_.doc_order.size()),
                 w);
    }
    w.ChargePostings(1);
  }

  const index::TermView& view() const { return view_; }
  std::size_t position() const { return pos_; }

 private:
  void TouchBlock(std::size_t begin, std::size_t end,
                  exec::WorkerContext& w) {
    if (begin == last_touched_block_begin_) return;
    last_touched_block_begin_ = begin;
    w.IoSequential(view_.doc_order_file_offset +
                       begin * sizeof(index::Posting),
                   (end - begin) * sizeof(index::Posting));
  }

  index::TermView view_;
  std::size_t pos_ = 0;
  std::size_t last_touched_block_begin_ =
      std::numeric_limits<std::size_t>::max();
};

}  // namespace sparta::algos
